#!/bin/sh
# Repo verification: build, tier-1 tests, and a short multicore stress smoke
# with invariant checks (conservation, capacity bound, slot lifecycle).
# Uses only packages a standard dev switch already has; exits non-zero on
# any failure. CI runs exactly this script.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest (tier-1) =="
dune runtest

echo "== pools_lint (concurrency-discipline static analysis) =="
dune exec bin/pools_lint.exe -- check lib

echo "== pools_lint interleave (DPOR Mc_segment schedule check) =="
# The scenario count is derived from the registry itself (interleave
# --count), not hard-coded here: the run must cover exactly the scenarios
# the binary declares, so a lost scenario is a count mismatch, not a
# silently smaller run.
expected=$(dune exec bin/pools_lint.exe -- interleave --count)
interleave_start=$(date +%s)
interleave_out=$(dune exec bin/pools_lint.exe -- interleave)
interleave_elapsed=$(( $(date +%s) - interleave_start ))
echo "$interleave_out"
scenarios=$(echo "$interleave_out" | sed -n 's/^pools_lint interleave: \([0-9]*\) scenarios.*/\1/p')
if [ -z "$scenarios" ] || [ "$scenarios" -ne "$expected" ]; then
  echo "check.sh: expected $expected interleave scenarios, saw '${scenarios:-none}'" >&2
  exit 1
fi
# Wall-clock budget: the reduction is the only thing keeping the deeper
# scenarios enumerable, so a blown budget means DPOR regressed (or a
# scenario grew past what it buys back).
interleave_budget=120
if [ "$interleave_elapsed" -gt "$interleave_budget" ]; then
  echo "check.sh: interleave took ${interleave_elapsed}s, budget ${interleave_budget}s" >&2
  exit 1
fi
echo "check.sh: interleave took ${interleave_elapsed}s (budget ${interleave_budget}s)"

echo "== mc-stress smoke (all kinds, bounded + unbounded) =="
dune exec bin/pools_bench.exe -- mc-stress --domains 4 --seconds 0.5 --capacity 32

echo "== mc-stress smoke (hinted hand-off under a sparse mix) =="
dune exec bin/pools_bench.exe -- mc-stress --domains 4 --seconds 0.3 \
  -k hinted --workload mix=0.35,initial=8

echo "== mc-throughput smoke (fast path vs all-mutex baseline) =="
dune exec bin/pools_bench.exe -- mc-throughput --domains 2 --seconds 0.2 \
  --out BENCH_mcpool_smoke.json

echo "== mc-throughput smoke (hinted hand-off, sparse mix) =="
dune exec bin/pools_bench.exe -- mc-throughput --domains 2 --seconds 0.2 \
  --kind hinted --workload sparse --out BENCH_mcpool_hinted_smoke.json

echo "== mc-throughput smoke (topology-aware vs distance-oblivious, two-group) =="
# The committed topo/two_group.topo drives both this real-domain run and
# the simulator's topology experiment — one locality model, two worlds.
dune exec bin/pools_bench.exe -- mc-throughput --domains 4 --seconds 0.2 \
  --kind linear --workload sparse --topology topo/two_group.topo \
  --out BENCH_mctopo_smoke.json

echo "== mc-trace smoke (traced run, event/telemetry reconciliation) =="
dune exec bin/pools_bench.exe -- mc-trace --domains 3 --seconds 0.3 \
  --workload mix=0.4,initial=11 --out TRACE_mcpool_smoke.json

echo "== mc-app smoke (minimax + n-queens on real domains, pool vs stack) =="
# Tiny parameters: the full grid is the committed BENCH_mcapp.json; this
# only proves the scheduler wiring (answers checked against the sequential
# references, task conservation enforced — a mismatch is exit 1).
dune exec bin/pools_bench.exe -- mc-app --domains 1,2 --plies 1 --queens 6 \
  --fork-depth 2 --repeats 1 --out BENCH_mcapp_smoke.json

echo "== examples smoke (they must run, not just build) =="
# task_scheduler exits non-zero if the 1-domain and N-domain runs disagree
# on the task count or checksum; the others assert their answers inline.
dune exec examples/quickstart.exe > /dev/null
dune exec examples/sim_tour.exe > /dev/null
dune exec examples/task_scheduler.exe > /dev/null
dune exec examples/game_search.exe > /dev/null
dune exec examples/backtracking.exe > /dev/null

echo "== timing discipline (no wall-clock timing outside Cpool_util.Clock) =="
# Examples and harnesses must time with the monotonic Clock; gettimeofday
# jumps under NTP and once fed negative deltas into the stats. Only the
# Clock's own documentation may mention it.
if grep -rn "Unix\.gettimeofday" --include="*.ml" --include="*.mli" \
  bin lib examples bench test | grep -v "lib/util/clock.mli"; then
  echo "check.sh: Unix.gettimeofday outside Cpool_util.Clock (use Clock.now_ns)" >&2
  exit 1
fi

echo "== mc-siege smoke (open-loop breaking-point search, 2 domains) =="
dune exec bin/pools_bench.exe -- mc-siege --domains 2 --kind linear \
  --workload siege,arrival=poisson:500,duration=0.05,arrangement=balanced:1 \
  --max-rate 2000 --bisect 0 --out BENCH_mcsiege_smoke.json

echo "== json-check (benchmark artifacts parse and validate) =="
# The topology artifact's near/far steal split is validated here too
# (near_steals + far_steals must equal steals in every topology cell).
dune exec bin/pools_bench.exe -- json-check BENCH_mcpool_smoke.json
dune exec bin/pools_bench.exe -- json-check BENCH_mcpool_hinted_smoke.json
dune exec bin/pools_bench.exe -- json-check BENCH_mctopo_smoke.json
dune exec bin/pools_bench.exe -- json-check TRACE_mcpool_smoke.json
dune exec bin/pools_bench.exe -- json-check BENCH_mcsiege_smoke.json
dune exec bin/pools_bench.exe -- json-check BENCH_mcapp_smoke.json

echo "== siege-diff gate (fresh smoke vs itself, then the committed baseline) =="
# Self-diff must always be clean — it exercises the pairing and threshold
# logic without rerunning anything.
dune exec bin/pools_bench.exe -- siege-diff BENCH_mcsiege_smoke.json \
  --fresh BENCH_mcsiege_smoke.json
# The committed baseline is rerun cell by cell (its cells carry their own
# config); thresholds live in the artifact and are generous for CI noise.
dune exec bin/pools_bench.exe -- siege-diff BENCH_mcsiege.json
rm -f BENCH_mcpool_smoke.json BENCH_mcpool_hinted_smoke.json \
  BENCH_mctopo_smoke.json TRACE_mcpool_smoke.json BENCH_mcsiege_smoke.json \
  BENCH_mcapp_smoke.json

echo "== usage-error exit codes (pools_bench, PR 7 convention) =="
# mc-throughput must reject nonsense flags with a usage error on stderr
# and exit 2 (0 = clean, 1 = findings, 2 = usage).
for bad in "--domains 0" "--seconds=-1" "--topology nonexistent.topo"; do
  if dune exec bin/pools_bench.exe -- mc-throughput $bad --out /dev/null \
    >/dev/null 2>&1; then
    echo "check.sh: mc-throughput $bad should have failed" >&2
    exit 1
  fi
  status=0
  dune exec bin/pools_bench.exe -- mc-throughput $bad --out /dev/null \
    >/dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: mc-throughput $bad exited $status, expected 2" >&2
    exit 1
  fi
done
# An unknown workload spec must exit 2 and list the valid forms on stderr
# (the one parser serves mc-stress, mc-throughput and mc-siege alike).
for cmd in mc-stress mc-throughput mc-siege; do
  status=0
  err=$(dune exec bin/pools_bench.exe -- "$cmd" --workload bogus \
    2>&1 >/dev/null) || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: $cmd --workload bogus exited $status, expected 2" >&2
    exit 1
  fi
  case "$err" in
  *"mix="*) ;;
  *)
    echo "check.sh: $cmd --workload bogus error does not list valid forms" >&2
    exit 1
    ;;
  esac
done

echo "check.sh: all green"
