#!/bin/sh
# Repo verification: build, tier-1 tests, and a short multicore stress smoke
# with invariant checks (conservation, capacity bound, slot lifecycle).
# Uses only packages a standard dev switch already has; exits non-zero on
# any failure. CI runs exactly this script.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest (tier-1) =="
dune runtest

echo "== pools_lint (concurrency-discipline static analysis) =="
dune exec bin/pools_lint.exe -- check lib

echo "== pools_lint interleave (exhaustive Mc_segment schedule check) =="
# The scenario corpus must include the lock-free steal/MPSC races (11 as of
# the CAS-stealing PR); a shrinking count means a scenario was lost, not run.
interleave_out=$(dune exec bin/pools_lint.exe -- interleave)
echo "$interleave_out"
scenarios=$(echo "$interleave_out" | sed -n 's/^pools_lint interleave: \([0-9]*\) scenarios.*/\1/p')
if [ -z "$scenarios" ] || [ "$scenarios" -lt 11 ]; then
  echo "check.sh: expected >= 11 interleave scenarios, saw '${scenarios:-none}'" >&2
  exit 1
fi

echo "== mc-stress smoke (all kinds, bounded + unbounded) =="
dune exec bin/pools_bench.exe -- mc-stress --domains 4 --seconds 0.5 --capacity 32

echo "== mc-stress smoke (hinted hand-off under a sparse mix) =="
dune exec bin/pools_bench.exe -- mc-stress --domains 4 --seconds 0.3 \
  -k hinted --add-bias 0.35 --initial 32

echo "== mc-throughput smoke (fast path vs all-mutex baseline) =="
dune exec bin/pools_bench.exe -- mc-throughput --domains 2 --seconds 0.2 \
  --out BENCH_mcpool_smoke.json

echo "== mc-throughput smoke (hinted hand-off, sparse mix) =="
dune exec bin/pools_bench.exe -- mc-throughput --domains 2 --seconds 0.2 \
  --kind hinted --mixes sparse --out BENCH_mcpool_hinted_smoke.json

echo "== mc-trace smoke (traced run, event/telemetry reconciliation) =="
dune exec bin/pools_bench.exe -- mc-trace --domains 3 --seconds 0.3 \
  --add-bias 0.4 --initial 32 --out TRACE_mcpool_smoke.json

echo "== json-check (benchmark artifacts parse and validate) =="
dune exec bin/pools_bench.exe -- json-check BENCH_mcpool_smoke.json
dune exec bin/pools_bench.exe -- json-check BENCH_mcpool_hinted_smoke.json
dune exec bin/pools_bench.exe -- json-check TRACE_mcpool_smoke.json
rm -f BENCH_mcpool_smoke.json BENCH_mcpool_hinted_smoke.json TRACE_mcpool_smoke.json

echo "check.sh: all green"
