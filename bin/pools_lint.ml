(* Concurrency-discipline static analyzer + interleaving checker for the
   pool layers.

   Examples:
     pools_lint                      # lint lib/ (the default)
     pools_lint check lib bin
     pools_lint check --require-mli=false test/lint_fixtures
     pools_lint interleave           # enumerate Mc_segment schedules
     pools_lint rules                # describe the rules

   Exits non-zero on any finding or invariant violation. *)

open Cmdliner

let paths =
  let doc = "Files or directories to lint (default: $(b,lib))." in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"PATH" ~doc)

let require_mli =
  let doc = "Require a .mli next to every linted .ml (rule missing-mli)." in
  Arg.(value & opt bool true & info [ "require-mli" ] ~docv:"BOOL" ~doc)

let run_check paths require_mli =
  match Cpool_analysis.Lint_driver.lint_tree ~require_mli paths with
  | [] ->
    Format.printf "pools_lint: clean (%s)@." (String.concat ", " paths);
    0
  | findings ->
    Cpool_analysis.Lint_driver.report Format.std_formatter findings;
    Format.printf "pools_lint: %d finding(s)@." (List.length findings);
    1

let check_term = Term.(const run_check $ paths $ require_mli)

let check_cmd =
  let doc = "Lint sources against the concurrency-discipline rules R1-R5." in
  Cmd.v (Cmd.info "check" ~doc) check_term

let run_interleave () =
  match Cpool_analysis.Interleave.run_all Format.std_formatter with
  | outcomes ->
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 outcomes in
    Format.printf
      "pools_lint interleave: %d scenarios, %d schedules, all invariants hold@."
      (List.length outcomes) total;
    0
  | exception Failure msg ->
    Format.eprintf "pools_lint interleave: FAILED: %s@." msg;
    1

let interleave_cmd =
  let doc =
    "Exhaustively enumerate 2-3 thread interleavings of the real Mc_segment \
     code (shimmed Atomic/Mutex, bounded DFS over yield points) and check the \
     capacity and conservation invariants under every schedule."
  in
  Cmd.v (Cmd.info "interleave" ~doc) Term.(const run_interleave $ const ())

let run_rules () =
  List.iter print_endline
    [
      "raw-mutex            R1: Mutex.lock/unlock only inside with_* helpers";
      "non-atomic-rmw       R2: no Atomic.set x (... Atomic.get x ...), and no \
       get-then-set-constant in one function body; use \
       fetch_and_add/compare_and_set/exchange (CAS-retry loops are the \
       sanctioned idiom)";
      "blocking-under-lock  R3: no blocking call inside a with_* critical section";
      "ambient-random       R4: no global Random.* in lib/pool, lib/sim, \
       lib/mcpool, lib/analysis";
      "missing-mli          R5: every lib/ module declares an .mli";
      "bad-suppression      suppression comments need a known rule and a reason";
      "";
      "Suppress a finding on its line or the line below, naming the rule";
      "and a reason:  (* lint: allow non-atomic-rmw -- single writer *)";
    ];
  0

let rules_cmd =
  let doc = "List the lint rules and the suppression-comment syntax." in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const run_rules $ const ())

let () =
  let info =
    Cmd.info "pools_lint" ~version:"%%VERSION%%"
      ~doc:"Static analyzer and interleaving checker for the concurrent pools"
  in
  exit (Cmd.eval' (Cmd.group ~default:check_term info [ check_cmd; interleave_cmd; rules_cmd ]))
