(* Concurrency-discipline static analyzer + interleaving checker for the
   pool layers.

   Examples:
     pools_lint                      # lint lib/ (the default)
     pools_lint check lib bin
     pools_lint check --require-mli=false test/lint_fixtures
     pools_lint interleave           # model-check Mc_segment schedules (DPOR)
     pools_lint interleave --count   # print the scenario count and exit
     pools_lint dpor-stats           # DPOR vs exhaustive schedule counts
     pools_lint rules                # describe the rules

   Exit codes: 0 clean, 1 findings or invariant violations, 2 usage errors
   (unknown subcommand, bad flags, nonexistent paths). *)

open Cmdliner

let paths =
  let doc = "Files or directories to lint (default: $(b,lib))." in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"PATH" ~doc)

let require_mli =
  let doc = "Require a .mli next to every linted .ml (rule missing-mli)." in
  Arg.(value & opt bool true & info [ "require-mli" ] ~docv:"BOOL" ~doc)

let run_check paths require_mli =
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | missing ->
    if missing <> [] then begin
      (* A path that does not exist is a usage error, not a lint finding:
         keep exit 1 meaning "the code has problems". *)
      Format.eprintf "pools_lint: no such file or directory: %s@."
        (String.concat ", " missing);
      Format.eprintf "Usage: pools_lint [check] [--require-mli=BOOL] [PATH]...@.";
      2
    end
    else begin
      match Cpool_analysis.Lint_driver.lint_tree ~require_mli paths with
      | [] ->
        Format.printf "pools_lint: clean (%s)@." (String.concat ", " paths);
        0
      | findings ->
        Cpool_analysis.Lint_driver.report Format.std_formatter findings;
        Format.printf "pools_lint: %d finding(s)@." (List.length findings);
        1
    end

let check_term = Term.(const run_check $ paths $ require_mli)

let check_cmd =
  let doc = "Lint sources against the concurrency-discipline rules R1-R6." in
  Cmd.v (Cmd.info "check" ~doc) check_term

let count_only =
  let doc = "Print the number of scenarios and exit (for CI to derive its \
             expectations from, instead of hard-coding the count)." in
  Arg.(value & flag & info [ "count" ] ~doc)

let run_interleave count_only =
  if count_only then begin
    Format.printf "%d@." Cpool_analysis.Interleave.count;
    0
  end
  else
    match Cpool_analysis.Interleave.run_all Format.std_formatter with
    | outcomes ->
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 outcomes in
      Format.printf
        "pools_lint interleave: %d scenarios, %d schedules, all invariants hold@."
        (List.length outcomes) total;
      0
    | exception Failure msg ->
      Format.eprintf "pools_lint interleave: FAILED: %s@." msg;
      1

let interleave_cmd =
  let doc =
    "Model-check 2-4 thread interleavings of the real Mc_segment code \
     (shimmed Atomic/Mutex/Plain, DPOR-reduced DFS over labelled yield \
     points) and check the capacity, conservation, linearizability and \
     race-freedom properties under every schedule."
  in
  Cmd.v (Cmd.info "interleave" ~doc) Term.(const run_interleave $ count_only)

let exhaustive_cap =
  let doc = "Schedule bound for the exhaustive ground-truth runs; scenarios \
             past it report EXPLODED." in
  Arg.(value & opt int 1_000_000 & info [ "exhaustive-cap" ] ~docv:"N" ~doc)

let run_dpor_stats cap =
  match
    Cpool_analysis.Interleave.cross_validate Format.std_formatter;
    Cpool_analysis.Interleave.dpor_stats ~exhaustive_cap:cap ()
  with
  | stats ->
    Format.printf "@.%-18s %10s %10s %12s %10s@." "scenario" "dpor" "pruned"
      "exhaustive" "ratio";
    List.iter
      (fun (s : Cpool_analysis.Interleave.stat) ->
        match s.exhaustive with
        | Some ex ->
          Format.printf "%-18s %10d %10d %12d %9.1fx@." s.s_name s.dpor
            s.dpor_pruned ex
            (float_of_int ex /. float_of_int (max 1 s.dpor))
        | None ->
          Format.printf "%-18s %10d %10d %12s %10s@." s.s_name s.dpor
            s.dpor_pruned
            (Printf.sprintf ">%d" cap)
            "EXPLODED")
      stats;
    let reduced =
      List.for_all
        (fun (s : Cpool_analysis.Interleave.stat) ->
          match s.exhaustive with Some ex -> s.dpor < ex | None -> true)
        stats
    in
    if not reduced then begin
      Format.eprintf
        "pools_lint dpor-stats: FAILED: DPOR explored at least as many \
         schedules as the exhaustive DFS on some scenario@.";
      1
    end
    else 0
  | exception Failure msg ->
    Format.eprintf "pools_lint dpor-stats: FAILED: %s@." msg;
    1

let dpor_stats_cmd =
  let doc =
    "Cross-validate the DPOR reduction against the exhaustive DFS (verdicts \
     must agree, including on a seeded bug) and print per-scenario schedule \
     counts with reduction ratios."
  in
  Cmd.v (Cmd.info "dpor-stats" ~doc) Term.(const run_dpor_stats $ exhaustive_cap)

let run_rules () =
  List.iter print_endline
    [
      "raw-mutex            R1: Mutex.lock/unlock only inside with_* helpers";
      "non-atomic-rmw       R2: no Atomic.set x (... Atomic.get x ...), and no \
       get-then-set-constant in one function body; use \
       fetch_and_add/compare_and_set/exchange (CAS-retry loops are the \
       sanctioned idiom)";
      "blocking-under-lock  R3: no blocking call inside a with_* critical section";
      "ambient-random       R4: no global Random.* in lib/pool, lib/sim, \
       lib/mcpool, lib/analysis";
      "missing-mli          R5: every lib/ module declares an .mli";
      "raw-obj              R6: no Obj.magic/Obj.repr/Obj.obj outside the \
       sanctioned uniform-representation modules (mc_segment_core, sched)";
      "bad-suppression      suppression comments need a known rule and a reason";
      "";
      "Suppress a finding on its line or the line below, naming the rule";
      "and a reason:  (* lint: allow non-atomic-rmw -- single writer *)";
    ];
  0

let rules_cmd =
  let doc = "List the lint rules and the suppression-comment syntax." in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const run_rules $ const ())

let () =
  let info =
    Cmd.info "pools_lint" ~version:"%%VERSION%%"
      ~doc:"Static analyzer and interleaving checker for the concurrent pools"
  in
  (* Usage problems (unknown subcommand, malformed flags) exit 2, distinct
     from exit 1 = "the analysis found something". *)
  exit
    (Cmd.eval' ~term_err:2
       (Cmd.group ~default:check_term info
          [ check_cmd; interleave_cmd; dpor_stats_cmd; rules_cmd ]))
