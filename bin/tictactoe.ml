(* Self-play 4x4x4 tic-tac-toe with pool-parallel search — a demo of the
   whole stack on real domains.

   Each move, the legal successors of the current position are distributed
   to worker domains through an Mc_pool; every worker alpha-beta-searches
   its share and the best move wins. Run with:

     dune exec bin/tictactoe.exe -- --plies 3 --moves 8 *)

open Cmdliner
open Cpool_game

let best_move_parallel ~plies ~domains board =
  match Board.legal_moves board with
  | [] -> None
  | moves ->
    let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with segments = domains } in
    let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
    List.iter (Cpool_mc.Mc_pool.add pool handles.(0)) moves;
    let best = Atomic.make (min_int, -1) in
    let rec improve candidate =
      let current = Atomic.get best in
      if candidate > current && not (Atomic.compare_and_set best current candidate) then
        improve candidate
    in
    let worker i =
      Domain.spawn (fun () ->
          let h = handles.(i) in
          let rec go () =
            match Cpool_mc.Mc_pool.remove pool h with
            | Some move ->
              let value =
                -Minimax.alpha_beta_value ~plies:(max 0 (plies - 1)) (Board.play board move)
              in
              improve (value, move);
              go ()
            | None -> ()
          in
          go ();
          Cpool_mc.Mc_pool.deregister pool h)
    in
    let ds = List.init domains worker in
    List.iter Domain.join ds;
    let value, move = Atomic.get best in
    Some (move, value)

let play plies moves domains =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> min 8 (max 2 (Domain.recommended_domain_count ()))
  in
  Printf.printf "4x4x4 tic-tac-toe self-play: %d plies deep, %d domains, up to %d moves\n\n"
    plies domains moves;
  let rec step board move_number =
    if move_number > moves then print_endline "move limit reached"
    else
      match Board.winner board with
      | Some player -> Printf.printf "%s wins!\n" (Board.player_to_string player)
      | None -> (
        if Board.is_full board then print_endline "draw"
        else
          match best_move_parallel ~plies ~domains board with
          | None -> print_endline "no moves"
          | Some (move, value) ->
            let side = Board.player_to_string (Board.to_move board) in
            let x, y, z = Board.coords move in
            let board = Board.play board move in
            Printf.printf "move %d: %s plays (%d,%d,%d)  [minimax value %d]\n" move_number
              side x y z value;
            print_endline (Board.to_string board);
            step board (move_number + 1))
  in
  step Board.empty 1

let plies =
  Arg.(value & opt int 3 & info [ "plies" ] ~docv:"N" ~doc:"Search depth per move.")

let moves =
  Arg.(value & opt int 6 & info [ "moves" ] ~docv:"N" ~doc:"Maximum moves to play.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains (default: machine-dependent).")

let cmd =
  Cmd.v
    (Cmd.info "tictactoe" ~doc:"Pool-parallel 4x4x4 tic-tac-toe self-play")
    Term.(const play $ plies $ moves $ domains)

let () = exit (Cmd.eval cmd)
