(* Command-line driver: regenerate any paper experiment, or soak-test the
   real multicore pool.

   Examples:
     pools_bench list
     pools_bench run fig2 fig7 --preset quick
     pools_bench run all --trials 10
     pools_bench mc-stress --domains 8 --seconds 2
     pools_bench mc-stress --kind tree --mode bounded --capacity 32
     pools_bench mc-throughput --domains 4 --topology two-group:4
     pools_bench mc-throughput --topology topo/two_group.topo --domains 4

   Exit codes follow the pools_lint convention: 0 clean, 1 findings
   (invariant violations, invalid artifacts), 2 usage errors (bad flags,
   malformed values, nonexistent files). *)

open Cmdliner
open Cpool_experiments

(* A usage error: the command line itself is wrong. Mirrors pools_lint's
   treatment so exit 1 keeps meaning "the run found something". *)
let usage_error fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "pools_bench: %s@." msg;
      2)
    fmt

let apply_overrides cfg trials ops participants initial seed plies =
  let cfg = match trials with Some t -> { cfg with Exp_config.trials = t } | None -> cfg in
  let cfg = match ops with Some o -> { cfg with Exp_config.total_ops = o } | None -> cfg in
  let cfg =
    match participants with Some p -> { cfg with Exp_config.participants = p } | None -> cfg
  in
  let cfg =
    match initial with Some i -> { cfg with Exp_config.initial_elements = i } | None -> cfg
  in
  let cfg =
    match seed with Some s -> { cfg with Exp_config.base_seed = Int64.of_int s } | None -> cfg
  in
  match plies with Some p -> { cfg with Exp_config.app_plies = p } | None -> cfg

let preset_conv =
  let parse = function
    | "paper" -> Ok Exp_config.paper
    | "quick" -> Ok Exp_config.quick
    | s -> Error (`Msg (Printf.sprintf "unknown preset %S (expected paper or quick)" s))
  in
  let print fmt cfg = Format.pp_print_string fmt (Exp_config.name cfg) in
  Arg.conv (parse, print)

let preset =
  let doc = "Configuration preset: $(b,paper) (full fidelity, 10 trials) or $(b,quick)." in
  Arg.(value & opt preset_conv Exp_config.quick & info [ "preset"; "p" ] ~docv:"PRESET" ~doc)

let trials =
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Trials per data point.")

let ops =
  Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N" ~doc:"Operations per trial.")

let participants =
  Arg.(
    value
    & opt (some int) None
    & info [ "participants" ] ~docv:"N" ~doc:"Processors/segments in the pool.")

let initial =
  Arg.(
    value
    & opt (some int) None
    & info [ "initial" ] ~docv:"N" ~doc:"Initial elements in the pool.")

let seed =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"S" ~doc:"Base random seed.")

let plies =
  Arg.(
    value
    & opt (some int) None
    & info [ "plies" ] ~docv:"N" ~doc:"Application (tic-tac-toe) search depth.")

let experiments =
  let doc = "Experiments to run (see $(b,list)); $(b,all) runs every one." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let topo_file =
  let doc =
    "Topology file for the $(b,topology) experiment ($(b,Cpool_topology) format; \
     the same file $(b,mc-throughput --topology) accepts)."
  in
  Arg.(value & opt (some string) None & info [ "topo" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run preset trials ops participants initial seed plies topo_file names =
    (* Validate the topology file here so a bad path is a usage error, not
       an uncaught Failure out of the experiment. *)
    let topo_problem =
      match topo_file with
      | None -> None
      | Some file -> (
        match In_channel.with_open_bin file In_channel.input_all with
        | exception Sys_error msg -> Some msg
        | source -> (
          match Cpool_topology.parse source with
          | Error msg -> Some (Printf.sprintf "%s: %s" file msg)
          | Ok _ -> None))
    in
    match topo_problem with
    | Some msg -> usage_error "%s" msg
    | None ->
    let cfg = apply_overrides preset trials ops participants initial seed plies in
    let cfg = { cfg with Exp_config.topo_file } in
    let entries =
      if List.mem "all" names then Ok Registry.all
      else
        List.fold_left
          (fun acc name ->
            match (acc, Registry.find name) with
            | Error e, _ -> Error e
            | Ok entries, Some entry -> Ok (entries @ [ entry ])
            | Ok _, None ->
              Error
                (Printf.sprintf "unknown experiment %S; known: %s" name
                   (String.concat ", " Registry.ids)))
          (Ok []) names
    in
    match entries with
    | Error msg -> usage_error "%s" msg
    | Ok entries ->
      List.iter
        (fun entry ->
          Printf.printf "=== %s: %s ===\n%!" entry.Registry.id entry.Registry.title;
          print_endline (entry.Registry.run cfg);
          print_newline ())
        entries;
      0
  in
  let doc = "Regenerate paper experiments" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ preset $ trials $ ops $ participants $ initial $ seed $ plies $ topo_file
      $ experiments)

let list_cmd =
  let list () =
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const list $ const ())

(* --- mc-stress: multi-domain soak of the real pool, with invariants --- *)

(* One shared parser for every pool kind, via Cpool_intf.of_string — a typo
   is a hard CLI error (non-zero exit) carrying the valid-kind list, never
   a silently substituted default. [None] means "all". *)
let kind_conv =
  let parse = function
    | "all" -> Ok None
    | s -> (
      match Cpool_intf.of_string s with
      | Ok k -> Ok (Some k)
      | Error msg -> Error (`Msg (msg ^ ", or all")))
  in
  let print fmt = function
    | Some k -> Format.pp_print_string fmt (Cpool_intf.to_string k)
    | None -> Format.pp_print_string fmt "all"
  in
  Arg.conv (parse, print)

let mode_conv =
  let parse = function
    | ("both" | "bounded" | "unbounded") as s -> Ok s
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (expected both, bounded or unbounded)" s))
  in
  Arg.conv (parse, Format.pp_print_string)

(* One shared workload-spec parser for mc-stress, mc-throughput and
   mc-siege (Cpool_intf.Workload.of_string): a bad spec is a usage error
   on stderr (exit 2) carrying the full list of valid forms. *)
let workload_conv =
  let parse s =
    match Cpool_intf.Workload.of_string s with
    | Ok w -> Ok w
    | Error msg -> Error (`Msg msg)
  in
  let print fmt w = Format.pp_print_string fmt (Cpool_intf.Workload.to_string w) in
  Arg.conv (parse, print)

let workload_doc =
  "Workload spec: an optional preset ($(b,sufficient), $(b,sparse), \
   $(b,default), $(b,siege)) followed by comma-separated settings — \
   $(b,mix=F), $(b,initial=N) (per segment), $(b,duration=S), \
   $(b,arrival=closed|poisson:RATE|bursty:RATE:ON_MS:OFF_MS), \
   $(b,arrangement=uniform|balanced:K|unbalanced:K)."

(* A --seconds override rewrites every selected workload's duration, so
   scripts can scale a preset without restating the whole spec. *)
let override_seconds seconds workloads =
  match seconds with
  | None -> workloads
  | Some s ->
    List.map (fun w -> { w with Cpool_intf.Workload.duration_s = s }) workloads

let mc_stress_cmd =
  let domains =
    let doc = "Worker domains (= pool segments). Defaults to the recommended domain count." in
    Arg.(value & opt (some int) None & info [ "domains"; "d" ] ~docv:"N" ~doc)
  in
  let seconds =
    let doc = "Override the workload's duration (seconds per cell)." in
    Arg.(value & opt (some float) None & info [ "seconds"; "s" ] ~docv:"SEC" ~doc)
  in
  let stress_kind =
    let doc = "Search algorithm: $(b,linear), $(b,random), $(b,tree), $(b,hinted) or $(b,all)." in
    Arg.(value & opt kind_conv None & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let mode =
    let doc = "Capacity regime: $(b,unbounded), $(b,bounded) or $(b,both)." in
    Arg.(value & opt mode_conv "both" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let capacity =
    let doc = "Per-segment capacity for the bounded cells." in
    Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let workload =
    let doc = workload_doc ^ " Must be closed-loop and uniform." in
    Arg.(
      value
      & opt workload_conv Cpool_intf.Workload.default
      & info [ "workload"; "w" ] ~docv:"SPEC" ~doc)
  in
  let no_churn =
    Arg.(value & flag & info [ "no-churn" ] ~doc:"Disable register/deregister churn.")
  in
  let stress_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Base random seed.")
  in
  let stress_trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record per-domain event traces and cross-check the event-derived \
             steal/hint counts against the merged telemetry (extra invariants).")
  in
  let run domains seconds kind mode capacity workload no_churn seed trace =
    let domains =
      match domains with
      | Some d -> d
      | None -> min 8 (max 2 (Domain.recommended_domain_count ()))
    in
    let workload =
      List.hd (override_seconds seconds [ workload ])
    in
    if domains < 1 then usage_error "--domains must be at least 1"
    else if capacity < 1 then usage_error "--capacity must be at least 1"
    else if workload.Cpool_intf.Workload.duration_s <= 0.0 then
      usage_error "--seconds must be positive"
    else if not (Cpool_intf.Workload.closed workload) then
      usage_error
        "mc-stress is a closed-loop harness; open-loop arrivals belong to \
         mc-siege"
    else if workload.Cpool_intf.Workload.arrangement <> Cpool_intf.Workload.Uniform
    then
      usage_error
        "mc-stress runs a uniform arrangement; producer/consumer splits belong \
         to mc-siege"
    else
    let kinds = match kind with Some k -> [ k ] | None -> Cpool_intf.all in
    let capacities =
      match mode with
      | "unbounded" -> [ None ]
      | "bounded" -> [ Some capacity ]
      | _ -> [ None; Some capacity ]
    in
    let failures = ref 0 in
    List.iter
      (fun kind ->
        List.iter
          (fun capacity ->
            let cfg =
              {
                Cpool_mc.Mc_stress.domains;
                kind;
                capacity;
                workload;
                churn = not no_churn;
                seed;
                trace;
              }
            in
            let report = Cpool_mc.Mc_stress.run cfg in
            print_endline (Cpool_mc.Mc_stress.render report);
            if not (Cpool_mc.Mc_stress.passed report) then incr failures)
          capacities)
      kinds;
    if !failures = 0 then 0
    else begin
      Format.eprintf "pools_bench: %d stress cell(s) violated invariants@." !failures;
      1
    end
  in
  let doc = "Soak-test the real multicore pool and check its invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a randomized multi-domain add/remove mix (with optional \
         register/deregister churn) against every selected search algorithm, \
         bounded and unbounded, then drains to quiescence. Checks element \
         conservation, per-segment count consistency, the capacity bound (watched \
         concurrently), slot-leak freedom, and that the per-domain telemetry agrees \
         with ground truth. Exits non-zero if any invariant is violated.";
    ]
  in
  Cmd.v
    (Cmd.info "mc-stress" ~doc ~man)
    Term.(
      const run $ domains $ seconds $ stress_kind $ mode $ capacity $ workload
      $ no_churn $ stress_seed $ stress_trace)

(* --- mc-throughput: lock-free fast path vs all-mutex baseline --------- *)

(* A topology spec is resolved per --domains count, because the preset form
   scales with the pool while a file pins an exact node count. *)
type topo_spec = {
  spec : string;  (* what the user typed, for error messages *)
  resolve : int -> (Cpool_topology.t, string) result;
}

(* SPEC is either the synthetic preset [two-group:PENALTY[:UNIT_NS]] (scales
   to any domain count >= 2) or a path to a topology file in the
   Cpool_topology.parse format — the same file the simulator's topology
   experiment consumes, so one config drives both worlds. Parsed inside the
   term (not an Arg.conv) so every malformed spec, unreadable file and
   node-count mismatch is a usage error on stderr with exit 2. *)
let parse_topo_spec spec =
  match String.split_on_char ':' spec with
  | "two-group" :: rest -> (
    let preset_err =
      Printf.sprintf
        "bad preset %S (expected two-group:PENALTY or two-group:PENALTY:UNIT_NS)" spec
    in
    let mk =
      match rest with
      | [] -> Ok (fun nodes -> Cpool_topology.two_group ~nodes ())
      | [ p ] -> (
        match float_of_string_opt p with
        | Some p -> Ok (fun nodes -> Cpool_topology.two_group ~penalty:p ~nodes ())
        | None -> Error preset_err)
      | [ p; u ] -> (
        match (float_of_string_opt p, int_of_string_opt u) with
        | Some p, Some u ->
          Ok (fun nodes -> Cpool_topology.two_group ~penalty:p ~unit_ns:u ~nodes ())
        | _ -> Error preset_err)
      | _ -> Error preset_err
    in
    match mk with
    | Error _ as e -> e
    | Ok mk ->
      Ok
        {
          spec;
          resolve =
            (fun nodes ->
              match mk nodes with
              | t -> Ok t
              | exception Invalid_argument msg -> Error msg);
        })
  | _ -> (
    match In_channel.with_open_bin spec In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | source -> (
      match Cpool_topology.parse source with
      | Error msg -> Error (Printf.sprintf "%s: %s" spec msg)
      | Ok t ->
        Ok
          {
            spec;
            resolve =
              (fun nodes ->
                if Cpool_topology.nodes t = nodes then Ok t
                else
                  Error
                    (Printf.sprintf
                       "topology file %s describes %d nodes but --domains asks for %d"
                       spec (Cpool_topology.nodes t) nodes));
          }))

let mc_throughput_cmd =
  let domains =
    let doc = "Comma-separated worker-domain counts, one grid column each." in
    Arg.(value & opt (list int) [ 2; 8 ] & info [ "domains"; "d" ] ~docv:"N,.." ~doc)
  in
  let seconds =
    let doc = "Override every selected workload's duration (seconds per cell)." in
    Arg.(value & opt (some float) None & info [ "seconds"; "s" ] ~docv:"SEC" ~doc)
  in
  let bench_kind =
    let doc = "Search algorithm: $(b,linear), $(b,random), $(b,tree), $(b,hinted) or $(b,all)." in
    Arg.(value & opt kind_conv (Some Cpool_mc.Mc_pool.Linear) & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let workloads =
    let doc =
      workload_doc
      ^ " Repeatable, one grid row each; defaults to $(b,sufficient) and \
         $(b,sparse). Must be closed-loop."
    in
    Arg.(value & opt_all workload_conv [] & info [ "workload"; "w" ] ~docv:"SPEC" ~doc)
  in
  let capacity =
    let doc = "Per-segment capacity (omit for unbounded segments)." in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let no_baseline =
    Arg.(
      value & flag
      & info [ "no-baseline" ] ~doc:"Skip the all-mutex ($(b,fast_path:false)) twin cells.")
  in
  let out =
    let doc = "Write the JSON report to $(docv) (omit to skip the file)." in
    Arg.(
      value
      & opt (some string) (Some "BENCH_mcpool.json")
      & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let bench_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Base random seed.")
  in
  let trace_out =
    let doc =
      "Trace every worker and write Chrome trace-event JSON to $(docv) (one Chrome \
       process per cell; load at ui.perfetto.dev). Tracing adds a per-event \
       timestamp cost — leave it off for committed throughput numbers."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let topology =
    let doc =
      "Attach a locality model and benchmark topology-aware stealing against \
       its distance-oblivious twin. $(docv) is $(b,two-group:PENALTY) (or \
       $(b,two-group:PENALTY:UNIT_NS)) for the synthetic two-socket preset, or \
       a path to a topology file in the $(b,Cpool_topology) format — the same \
       file the simulator's $(b,topology) experiment reads."
    in
    Arg.(value & opt (some string) None & info [ "topology"; "t" ] ~docv:"SPEC" ~doc)
  in
  let run domains seconds kind workloads capacity no_baseline out seed trace_out topo_arg =
    (* Resolve the spec against every requested domain count up front, so a
       mismatched file or an unscalable preset is a usage error before any
       cell runs. *)
    let topo =
      match topo_arg with
      | None -> Ok None
      | Some spec -> (
        match parse_topo_spec spec with
        | Error _ as e -> e
        | Ok ts -> (
          match
            List.find_map
              (fun d ->
                if d < 1 then None
                else match ts.resolve d with Ok _ -> None | Error msg -> Some msg)
              domains
          with
          | Some msg -> Error msg
          | None -> Ok (Some ts)))
    in
    let workloads =
      if workloads = [] then
        [ Cpool_intf.Workload.sufficient; Cpool_intf.Workload.sparse ]
      else workloads
    in
    let workloads = override_seconds seconds workloads in
    if List.exists (fun d -> d < 1) domains || domains = [] then
      usage_error "--domains needs positive counts"
    else if (match seconds with Some s -> s <= 0.0 | None -> false) then
      usage_error "--seconds must be positive"
    else if
      List.exists (fun w -> not (Cpool_intf.Workload.closed w)) workloads
    then
      usage_error
        "mc-throughput is a closed-loop harness; open-loop arrivals belong to \
         mc-siege"
    else if (match capacity with Some c -> c < 1 | None -> false) then
      usage_error "--capacity must be at least 1"
    else
      match topo with
      | Error msg -> usage_error "%s" msg
      | Ok topo ->
    begin
      let kinds = match kind with Some k -> [ k ] | None -> Cpool_intf.all in
      let config =
        {
          Cpool_mc.Mc_bench.kinds;
          domain_counts = domains;
          workloads;
          baseline = not no_baseline;
          capacity;
          seed;
          trace = trace_out <> None;
          topo_of = Option.map (fun t -> t.resolve) topo;
        }
      in
      let results = Cpool_mc.Mc_bench.run config in
      print_string (Cpool_mc.Mc_bench.render results);
      (match out with
      | None -> ()
      | Some file ->
        let doc = Cpool_mc.Mc_bench.to_json config results in
        let oc = open_out file in
        output_string oc (Cpool_util.Json.to_string doc);
        close_out oc;
        Printf.printf "\nwrote %s (%d cells)\n" file (List.length results));
      (match trace_out with
      | None -> ()
      | Some file ->
        let doc = Cpool_mc.Mc_bench.to_chrome results in
        let events =
          List.fold_left
            (fun acc r -> acc + Cpool_mc.Mc_trace.total_recorded r.Cpool_mc.Mc_bench.traces)
            0 results
        in
        let oc = open_out file in
        output_string oc (Cpool_util.Json.to_string doc);
        close_out oc;
        Printf.printf "wrote %s (%d events recorded)\n" file events);
      0
    end
  in
  let doc = "Measure mc-pool throughput: lock-free fast path vs all-mutex baseline" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs fixed-duration randomized workloads over a grid of search kind × \
         domain count × operation mix (the paper's sufficient and sparse regimes), \
         each cell twice — with the segments' lock-free owner path and with the \
         all-mutex baseline — and reports ops/sec, sampled p50/p99 per-op latency, \
         fast-path vs locked-path hit counts and the batched-steal profile. With \
         $(b,--topology) the grid gains topology cells: each selected kind runs on \
         the emulated machine with near-first (topology-aware) policies and, unless \
         $(b,--no-baseline), with distance-oblivious ones — same latencies, blind \
         probe order — reporting the near/far steal split. The JSON report \
         (default $(b,BENCH_mcpool.json)) is the committed artifact.";
    ]
  in
  Cmd.v
    (Cmd.info "mc-throughput" ~doc ~man)
    Term.(
      const run $ domains $ seconds $ bench_kind $ workloads $ capacity $ no_baseline $ out
      $ bench_seed $ trace_out $ topology)

(* --- mc-trace: trace a real run and replay the paper's strip charts --- *)

let mc_trace_cmd =
  let domains =
    let doc = "Worker domains (= pool segments). Defaults to the recommended domain count." in
    Arg.(value & opt (some int) None & info [ "domains"; "d" ] ~docv:"N" ~doc)
  in
  let seconds =
    let doc = "Override the workload's duration (seconds to trace)." in
    Arg.(value & opt (some float) None & info [ "seconds"; "s" ] ~docv:"SEC" ~doc)
  in
  let trace_kind =
    let doc = "Search algorithm: $(b,linear), $(b,random), $(b,tree) or $(b,hinted)." in
    Arg.(
      value
      & opt kind_conv (Some Cpool_mc.Mc_pool.Hinted)
      & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let capacity =
    let doc = "Per-segment capacity (omit for unbounded segments)." in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let workload =
    let doc = workload_doc ^ " Must be closed-loop and uniform." in
    Arg.(
      value
      & opt workload_conv { Cpool_intf.Workload.default with mix = 0.4 }
      & info [ "workload"; "w" ] ~docv:"SPEC" ~doc)
  in
  let trace_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Base random seed.")
  in
  let out =
    let doc = "Write Chrome trace-event JSON to $(docv) (load at ui.perfetto.dev)." in
    Arg.(
      value & opt (some string) (Some "TRACE_mcpool.json") & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let buckets =
    let doc = "Time buckets of the segment-size strip chart." in
    Arg.(value & opt int 72 & info [ "buckets" ] ~docv:"N" ~doc)
  in
  let run domains seconds kind capacity workload seed out buckets =
    let domains =
      match domains with
      | Some d -> d
      | None -> min 8 (max 2 (Domain.recommended_domain_count ()))
    in
    let workload = List.hd (override_seconds seconds [ workload ]) in
    if domains < 1 then usage_error "--domains must be at least 1"
    else if workload.Cpool_intf.Workload.duration_s <= 0.0 then
      usage_error "--seconds must be positive"
    else if buckets < 1 then usage_error "--buckets must be at least 1"
    else if (match capacity with Some c -> c < 1 | None -> false) then
      usage_error "--capacity must be at least 1"
    else if not (Cpool_intf.Workload.closed workload) then
      usage_error
        "mc-trace is a closed-loop harness; open-loop arrivals belong to \
         mc-siege"
    else if workload.Cpool_intf.Workload.arrangement <> Cpool_intf.Workload.Uniform
    then usage_error "mc-trace runs a uniform arrangement"
    else begin
      let kind = match kind with Some k -> k | None -> Cpool_mc.Mc_pool.Hinted in
      let cfg =
        {
          Cpool_mc.Mc_stress.domains;
          kind;
          capacity;
          workload;
          churn = false;
          seed;
          trace = true;
        }
      in
      let report = Cpool_mc.Mc_stress.run cfg in
      print_endline (Cpool_mc.Mc_stress.render report);
      let traces = report.Cpool_mc.Mc_stress.traces in
      let counts = Cpool_mc.Mc_trace.counts traces in
      print_endline
        (Cpool_metrics.Render.table ~title:"event counts (drop-proof totals)"
           ~headers:[ "event"; "count" ]
           ~rows:
             (List.filter_map
                (fun (tag, n) ->
                  if n = 0 then None
                  else Some [ Cpool_mc.Mc_trace.tag_name tag; string_of_int n ])
                counts)
           ());
      let series = Cpool_mc.Mc_trace.size_series ~segments:domains traces in
      let grid = Cpool_metrics.Trace.grid series ~buckets in
      let labels = Array.init domains (fun i -> Printf.sprintf "seg%d" i) in
      print_endline
        (Cpool_metrics.Render.strip_chart
           ~title:
             (Printf.sprintf "segment size over time (%s, add-bias %.2f)"
                (Cpool_mc.Mc_stress.kind_name kind)
                workload.Cpool_intf.Workload.mix)
           ~labels grid);
      (match out with
      | None -> ()
      | Some file ->
        let doc = Cpool_mc.Mc_trace.to_chrome traces in
        let oc = open_out file in
        output_string oc (Cpool_util.Json.to_string doc);
        close_out oc;
        Printf.printf "wrote %s (%d events recorded, %d overwritten)\n" file
          (Cpool_mc.Mc_trace.total_recorded traces)
          (Cpool_mc.Mc_trace.total_dropped traces));
      if Cpool_mc.Mc_stress.passed report then 0
      else begin
        Format.eprintf "pools_bench: traced run violated invariants (see report above)@.";
        1
      end
    end
  in
  let doc = "Trace a real mc-pool run and replay the paper's segment-size charts" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs one traced mc-stress cell (churn off), cross-checks the event-derived \
         steal/hint counts against the merged telemetry, prints the drop-proof \
         per-event totals and the segment-size-over-time strip chart (the paper's \
         Figures 3-6, from a real run instead of the simulator), and writes Chrome \
         trace-event JSON for Perfetto. Exits non-zero if any invariant is violated.";
    ]
  in
  Cmd.v
    (Cmd.info "mc-trace" ~doc ~man)
    Term.(
      const run $ domains $ seconds $ trace_kind $ capacity $ workload
      $ trace_seed $ out $ buckets)

(* --- mc-siege: open-loop load harness and breaking-point finder ------- *)

let mc_siege_cmd =
  let domains =
    let doc = "Worker domains (= pool segments). Defaults to the recommended domain count." in
    Arg.(value & opt (some int) None & info [ "domains"; "d" ] ~docv:"N" ~doc)
  in
  let siege_kind =
    let doc = "Search algorithm: $(b,linear), $(b,random), $(b,tree), $(b,hinted) or $(b,all)." in
    Arg.(value & opt kind_conv None & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let workloads =
    let doc =
      workload_doc
      ^ " Repeatable, one saturation search each; defaults to the $(b,siege) \
         preset. Must be open-loop (a non-closed arrival); the spec's rate is \
         the ramp's starting load."
    in
    Arg.(value & opt_all workload_conv [] & info [ "workload"; "w" ] ~docv:"SPEC" ~doc)
  in
  let seconds =
    let doc = "Override every selected workload's duration (seconds per load point)." in
    Arg.(value & opt (some float) None & info [ "seconds"; "s" ] ~docv:"SEC" ~doc)
  in
  let capacity =
    let doc = "Per-segment capacity (omit for unbounded segments)." in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let topology =
    let doc =
      "Attach a locality model (remote-delay sweep): $(b,two-group:PENALTY) / \
       $(b,two-group:PENALTY:UNIT_NS) or a $(b,Cpool_topology) file — the same \
       specs mc-throughput accepts."
    in
    Arg.(value & opt (some string) None & info [ "topology"; "t" ] ~docv:"SPEC" ~doc)
  in
  let topo_blind =
    Arg.(
      value & flag
      & info [ "topo-blind" ]
          ~doc:
            "With $(b,--topology), run the distance-oblivious twin (same \
             emulated machine, distance-blind policies).")
  in
  let p99_bound =
    let doc = "p99 sojourn bound of the breaking-point test, in µs." in
    Arg.(value & opt float 10_000.0 & info [ "p99-bound-us" ] ~docv:"US" ~doc)
  in
  let max_rate =
    let doc = "Upper end of the load ramp, arrivals/s." in
    Arg.(value & opt float 1e6 & info [ "max-rate" ] ~docv:"RATE" ~doc)
  in
  let bisect =
    let doc = "Bisection refinements after the geometric ramp." in
    Arg.(value & opt int 3 & info [ "bisect" ] ~docv:"N" ~doc)
  in
  let siege_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Base random seed.")
  in
  let out =
    let doc = "Write the JSON curve to $(docv) (omit to skip the file)." in
    Arg.(
      value
      & opt (some string) (Some "BENCH_mcsiege.json")
      & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run domains kind workloads seconds capacity topo_arg topo_blind p99_bound
      max_rate bisect seed out =
    let domains =
      match domains with
      | Some d -> d
      | None -> min 8 (max 2 (Domain.recommended_domain_count ()))
    in
    let workloads =
      if workloads = [] then [ Cpool_intf.Workload.siege ] else workloads
    in
    let workloads = override_seconds seconds workloads in
    let arrangement_fits w =
      match w.Cpool_intf.Workload.arrangement with
      | Cpool_intf.Workload.Uniform -> true
      | Cpool_intf.Workload.Balanced k | Cpool_intf.Workload.Unbalanced k ->
        k < domains
    in
    let topo =
      match topo_arg with
      | None -> Ok None
      | Some spec ->
        Result.bind (parse_topo_spec spec) (fun ts ->
            Result.map Option.some (ts.resolve domains))
    in
    if domains < 2 then usage_error "--domains must be at least 2"
    else if (match seconds with Some s -> s <= 0.0 | None -> false) then
      usage_error "--seconds must be positive"
    else if (match capacity with Some c -> c < 1 | None -> false) then
      usage_error "--capacity must be at least 1"
    else if List.exists Cpool_intf.Workload.closed workloads then
      usage_error
        "mc-siege is open-loop: give the workload an arrival process \
         (arrival=poisson:RATE or arrival=bursty:RATE:ON_MS:OFF_MS)"
    else if not (List.for_all arrangement_fits workloads) then
      usage_error
        "the arrangement needs fewer producers than --domains (at least one \
         consumer)"
    else if not (p99_bound > 0.0) then usage_error "--p99-bound-us must be positive"
    else if bisect < 0 then usage_error "--bisect must be non-negative"
    else if
      List.exists
        (fun w ->
          match Cpool_intf.Workload.offered_rate w with
          | Some r -> r > max_rate
          | None -> false)
        workloads
    then usage_error "the workload's rate exceeds --max-rate"
    else
      match topo with
      | Error msg -> usage_error "%s" msg
      | Ok topology ->
        let kinds = match kind with Some k -> [ k ] | None -> Cpool_intf.all in
        let outcomes =
          List.concat_map
            (fun kind ->
              List.map
                (fun workload ->
                  Cpool_mc.Mc_siege.run
                    {
                      pool =
                        {
                          Cpool_mc.Mc_pool.Config.default with
                          segments = domains;
                          kind;
                          capacity;
                          topology;
                          topology_aware = not topo_blind;
                        };
                      workload;
                      seed;
                      p99_bound_us = p99_bound;
                      max_rate;
                      bisect_steps = bisect;
                    })
                workloads)
            kinds
        in
        print_string (Cpool_mc.Mc_siege.render outcomes);
        (match out with
        | None -> ()
        | Some file ->
          let doc = Cpool_mc.Mc_siege.to_json outcomes in
          let oc = open_out file in
          output_string oc (Cpool_util.Json.to_string doc);
          close_out oc;
          Printf.printf "wrote %s (%d cells)\n" file (List.length outcomes));
        0
  in
  let doc = "Open-loop siege: find each pool's breaking point under arrival-driven load" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives the real pool with an arrival process (Poisson or bursty \
         on/off) on an absolute schedule — the open-loop regime that exposes \
         queueing collapse, unlike the closed-loop mc-throughput where workers \
         can never outrun the pool. Producer domains (placed by the workload's \
         arrangement: balanced around the ring, unbalanced in contiguous \
         slots, or uniform everyone-produces) enqueue timestamps; consumers \
         record each element's sojourn into mergeable log-scaled histograms. \
         The offered load ramps geometrically from the workload's rate and \
         then bisects to the breaking point (p99 beyond the bound, backlog \
         not draining, rejected adds, or a lagging generator), emitting the \
         latency-under-load curve as $(b,BENCH_mcsiege.json) — the baseline \
         $(b,siege-diff) gates CI against.";
    ]
  in
  Cmd.v
    (Cmd.info "mc-siege" ~doc ~man)
    Term.(
      const run $ domains $ siege_kind $ workloads $ seconds $ capacity $ topology
      $ topo_blind $ p99_bound $ max_rate $ bisect $ siege_seed $ out)

(* --- mc-app: the paper's applications on real domains ------------------ *)

let mc_app_cmd =
  let module App = Cpool_game.Mc_app in
  let domains =
    let doc = "Comma-separated worker-domain counts, one grid column each." in
    Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "domains"; "d" ] ~docv:"N,.." ~doc)
  in
  let app_kind =
    let doc = "Pool kind to race against the stack: $(b,linear), $(b,random), $(b,tree), $(b,hinted) or $(b,all)." in
    Arg.(value & opt kind_conv None & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let app_plies =
    let doc = "Minimax search depth from the empty board." in
    Arg.(value & opt int App.default.App.plies & info [ "plies" ] ~docv:"N" ~doc)
  in
  let fork_plies =
    let doc = "Minimax fork frontier: plies that fork a future per move." in
    Arg.(value & opt int App.default.App.fork_plies & info [ "fork-plies" ] ~docv:"N" ~doc)
  in
  let queens =
    let doc = "N-queens board size." in
    Arg.(value & opt int App.default.App.queens & info [ "queens" ] ~docv:"N" ~doc)
  in
  let fork_depth =
    let doc = "N-queens fork frontier: rows that fork a future per placement." in
    Arg.(value & opt int App.default.App.fork_depth & info [ "fork-depth" ] ~docv:"N" ~doc)
  in
  let repeats =
    let doc = "Runs per cell; each cell keeps the fastest." in
    Arg.(value & opt int App.default.App.repeats & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let app_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Pool construction seed.")
  in
  let out =
    let doc = "Write the JSON report to $(docv) (omit to skip the file)." in
    Arg.(
      value
      & opt (some string) (Some "BENCH_mcapp.json")
      & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run domains kind plies fork_plies queens fork_depth repeats seed out =
    if domains = [] || List.exists (fun d -> d < 1) domains then
      usage_error "--domains needs positive counts"
    else if repeats < 1 then usage_error "--repeats must be at least 1"
    else begin
      let config =
        {
          App.kinds = (match kind with Some k -> [ k ] | None -> Cpool_intf.all);
          domain_counts = domains;
          plies;
          fork_plies;
          queens;
          fork_depth;
          repeats;
          seed = Int64.of_int seed;
        }
      in
      (* Mc_app and Mc_search validate the search parameters; surface their
         Invalid_argument as a usage error rather than a backtrace. *)
      match App.run config with
      | exception Invalid_argument msg -> usage_error "%s" msg
      | summary ->
        print_string (App.render summary);
        (match out with
        | None -> ()
        | Some file ->
          let doc = App.to_json summary in
          let oc = open_out file in
          output_string oc (Cpool_util.Json.to_string doc);
          close_out oc;
          Printf.printf "\nwrote %s (%d cells)\n" file (List.length summary.App.cells));
        let bad = List.filter (fun c -> not c.App.ok) summary.App.cells in
        if bad = [] then 0
        else begin
          List.iter
            (fun c ->
              Format.eprintf
                "pools_bench: %s on %s with %d domain(s): got %d, expected %d \
                 (%d of %d forked tasks processed)@."
                (App.app_to_string c.App.app)
                (App.scheduler_to_string c.App.scheduler)
                c.App.domains c.App.value c.App.expected c.App.tasks c.App.forked)
            bad;
          1
        end
    end
  in
  let doc = "Race minimax and n-queens on real domains: every pool kind vs the stack" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the paper's two applications — fixed-depth minimax on the 4x4x4 \
         board and n-queens backtracking — through the work-stealing task \
         scheduler on real OCaml 5 domains, once per scheduler (the global-lock \
         stack baseline plus every selected pool kind) per domain count, best \
         of $(b,--repeats) runs per cell. Every cell's answer is checked \
         against the sequential reference and the scheduler's task conservation \
         ($(b,processed = forked)); any mismatch fails the run with exit 1. The \
         JSON report (default $(b,BENCH_mcapp.json)) is the committed artifact \
         $(b,json-check) validates.";
    ]
  in
  Cmd.v
    (Cmd.info "mc-app" ~doc ~man)
    Term.(
      const run $ domains $ app_kind $ app_plies $ fork_plies $ queens $ fork_depth
      $ repeats $ app_seed $ out)

(* --- siege-diff: regression gate against the committed baseline -------- *)

let siege_diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Committed BENCH_mcsiege.json to gate against.")
  in
  let fresh =
    let doc =
      "Compare against this already-written fresh artifact instead of \
       rerunning the baseline's cells."
    in
    Arg.(value & opt (some string) None & info [ "fresh" ] ~docv:"FILE" ~doc)
  in
  let run baseline_file fresh_file =
    let read file =
      match In_channel.with_open_bin file In_channel.input_all with
      | exception Sys_error msg -> Error msg
      | source -> (
        match Cpool_util.Json.parse source with
        | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
        | Ok doc -> (
          match Cpool_mc.Mc_siege.validate_json doc with
          | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
          | Ok _ -> Ok doc))
    in
    match read baseline_file with
    | Error msg -> usage_error "%s" msg
    | Ok baseline -> (
      let fresh =
        match fresh_file with
        | Some file -> read file
        | None -> (
          (* Rerun every baseline cell with its own recorded config — the
             artifact carries everything needed to reproduce itself. *)
          let cells =
            Option.get
              (Cpool_util.Json.to_list
                 (Option.get (Cpool_util.Json.member "cells" baseline)))
          in
          let configs =
            List.fold_left
              (fun acc c ->
                Result.bind acc (fun cfgs ->
                    Result.map
                      (fun cfg -> cfg :: cfgs)
                      (Cpool_mc.Mc_siege.config_of_cell_json c)))
              (Ok []) cells
          in
          match configs with
          | Error msg -> Error (Printf.sprintf "%s: %s" baseline_file msg)
          | Ok cfgs ->
            let outcomes = List.rev_map Cpool_mc.Mc_siege.run cfgs in
            print_string (Cpool_mc.Mc_siege.render outcomes);
            Ok (Cpool_mc.Mc_siege.to_json outcomes))
      in
      match fresh with
      | Error msg -> usage_error "%s" msg
      | Ok fresh -> (
        match Cpool_mc.Mc_siege.diff ~baseline ~fresh with
        | Error msg -> usage_error "%s" msg
        | Ok [] ->
          Printf.printf "siege-diff: OK against %s\n" baseline_file;
          0
        | Ok regressions ->
          List.iter (fun r -> Format.eprintf "pools_bench: %s@." r) regressions;
          1))
  in
  let doc = "Gate a fresh mc-siege run against the committed baseline curve" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reruns every cell recorded in $(b,BASELINE) (or reads $(b,--fresh)) \
         and fails — exit 1 — when a cell went missing, its best surviving \
         throughput dropped more than the baseline's \
         $(b,max_throughput_drop_pct), or its p99 at the lightest load \
         inflated past $(b,max_p99_inflation_pct). The thresholds live in the \
         baseline artifact itself and are deliberately generous: the gate \
         catches collapses, not CI scatter.";
    ]
  in
  Cmd.v (Cmd.info "siege-diff" ~doc ~man) Term.(const run $ baseline $ fresh)

(* --- json-check: validate a benchmark artifact ------------------------- *)

let json_check_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"JSON report to check.")
  in
  let run file =
    let finding msg =
      Format.eprintf "pools_bench: %s: %s@." file msg;
      1
    in
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error msg -> usage_error "%s" msg
    | source -> (
      match Cpool_util.Json.parse source with
      | Error msg -> finding msg
      | Ok doc ->
        if Cpool_util.Json.member "traceEvents" doc <> None then (
          match Cpool_mc.Mc_trace.validate_chrome doc with
          | Error msg -> finding msg
          | Ok events ->
            Printf.printf "%s: valid Chrome trace, %d events\n" file events;
            0)
        else if
          Cpool_util.Json.member "benchmark" doc
          = Some (Cpool_util.Json.Str "mc-siege")
        then (
          match Cpool_mc.Mc_siege.validate_json doc with
          | Error msg -> finding msg
          | Ok cells ->
            Printf.printf "%s: valid mc-siege report, %d cells\n" file cells;
            0)
        else if
          Cpool_util.Json.member "benchmark" doc
          = Some (Cpool_util.Json.Str "mc-app")
        then (
          match Cpool_game.Mc_app.validate_json doc with
          | Error msg -> finding msg
          | Ok cells ->
            Printf.printf "%s: valid mc-app report, %d cells\n" file cells;
            0)
        else (
          match Cpool_mc.Mc_bench.validate_json doc with
          | Error msg -> finding msg
          | Ok cells ->
            Printf.printf "%s: valid mc-throughput report, %d cells\n" file cells;
            0))
  in
  Cmd.v
    (Cmd.info "json-check"
       ~doc:"Validate an mc-throughput, mc-siege, mc-app or Chrome trace JSON report")
    Term.(const run $ file)

let main =
  let doc = "Concurrent pools (Kotz & Ellis 1989) experiment driver" in
  let info = Cmd.info "pools_bench" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      run_cmd;
      list_cmd;
      mc_stress_cmd;
      mc_throughput_cmd;
      mc_app_cmd;
      mc_siege_cmd;
      siege_diff_cmd;
      mc_trace_cmd;
      json_check_cmd;
    ]

(* eval' maps the int our terms return straight to the exit code;
   Cmdliner's own parse errors exit 2 to match — including Arg.conv
   failures (e.g. a malformed --workload spec), which Cmdliner reports as
   [Exit.cli_error] rather than [term_err]. *)
let () =
  let code = Cmd.eval' ~term_err:2 main in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
