(* Command-line driver: regenerate any paper experiment.

   Examples:
     pools_bench list
     pools_bench run fig2 fig7 --preset quick
     pools_bench run all --trials 10
*)

open Cmdliner
open Cpool_experiments

let apply_overrides cfg trials ops participants initial seed plies =
  let cfg = match trials with Some t -> { cfg with Exp_config.trials = t } | None -> cfg in
  let cfg = match ops with Some o -> { cfg with Exp_config.total_ops = o } | None -> cfg in
  let cfg =
    match participants with Some p -> { cfg with Exp_config.participants = p } | None -> cfg
  in
  let cfg =
    match initial with Some i -> { cfg with Exp_config.initial_elements = i } | None -> cfg
  in
  let cfg =
    match seed with Some s -> { cfg with Exp_config.base_seed = Int64.of_int s } | None -> cfg
  in
  match plies with Some p -> { cfg with Exp_config.app_plies = p } | None -> cfg

let preset_conv =
  let parse = function
    | "paper" -> Ok Exp_config.paper
    | "quick" -> Ok Exp_config.quick
    | s -> Error (`Msg (Printf.sprintf "unknown preset %S (expected paper or quick)" s))
  in
  let print fmt cfg = Format.pp_print_string fmt (Exp_config.name cfg) in
  Arg.conv (parse, print)

let preset =
  let doc = "Configuration preset: $(b,paper) (full fidelity, 10 trials) or $(b,quick)." in
  Arg.(value & opt preset_conv Exp_config.quick & info [ "preset"; "p" ] ~docv:"PRESET" ~doc)

let trials =
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Trials per data point.")

let ops =
  Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N" ~doc:"Operations per trial.")

let participants =
  Arg.(
    value
    & opt (some int) None
    & info [ "participants" ] ~docv:"N" ~doc:"Processors/segments in the pool.")

let initial =
  Arg.(
    value
    & opt (some int) None
    & info [ "initial" ] ~docv:"N" ~doc:"Initial elements in the pool.")

let seed =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"S" ~doc:"Base random seed.")

let plies =
  Arg.(
    value
    & opt (some int) None
    & info [ "plies" ] ~docv:"N" ~doc:"Application (tic-tac-toe) search depth.")

let experiments =
  let doc = "Experiments to run (see $(b,list)); $(b,all) runs every one." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let run_cmd =
  let run preset trials ops participants initial seed plies names =
    let cfg = apply_overrides preset trials ops participants initial seed plies in
    let entries =
      if List.mem "all" names then Ok Registry.all
      else
        List.fold_left
          (fun acc name ->
            match (acc, Registry.find name) with
            | Error e, _ -> Error e
            | Ok entries, Some entry -> Ok (entries @ [ entry ])
            | Ok _, None ->
              Error
                (Printf.sprintf "unknown experiment %S; known: %s" name
                   (String.concat ", " Registry.ids)))
          (Ok []) names
    in
    match entries with
    | Error msg -> `Error (false, msg)
    | Ok entries ->
      List.iter
        (fun entry ->
          Printf.printf "=== %s: %s ===\n%!" entry.Registry.id entry.Registry.title;
          print_endline (entry.Registry.run cfg);
          print_newline ())
        entries;
      `Ok ()
  in
  let doc = "Regenerate paper experiments" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ preset $ trials $ ops $ participants $ initial $ seed $ plies $ experiments))

let list_cmd =
  let list () =
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Registry.id e.Registry.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const list $ const ())

let main =
  let doc = "Concurrent pools (Kotz & Ellis 1989) experiment driver" in
  let info = Cmd.info "pools_bench" ~version:"1.0.0" ~doc in
  Cmd.group info [ run_cmd; list_cmd ]

let () = exit (Cmd.eval main)
