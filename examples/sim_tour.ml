(* A tour of the NUMA simulator substrate itself.

   Run with: dune exec examples/sim_tour.exe

   The simulator behind the paper reproduction is a general-purpose
   discrete-event NUMA machine: processes pinned to nodes, shared memory
   words with home nodes, FIFO locks, deterministic randomness. This
   example measures two micro-effects directly, without any pool code:

   - remote accesses cost 4x local ones (the Butterfly ratio);
   - a lock homed on one node serialises contenders, and contended
     acquisitions are visible in the lock statistics. *)

open Cpool_sim

let remote_vs_local () =
  let engine = Engine.create ~nodes:4 ~seed:1L () in
  let local_cell = Memory.make ~home:0 0 in
  let remote_cell = Memory.make ~home:3 0 in
  let timings = ref (0.0, 0.0) in
  let _ =
    Engine.spawn engine ~node:0 ~name:"prober" (fun () ->
        let t0 = Engine.clock () in
        for _ = 1 to 1000 do
          ignore (Memory.read local_cell)
        done;
        let t1 = Engine.clock () in
        for _ = 1 to 1000 do
          ignore (Memory.read remote_cell)
        done;
        timings := (t1 -. t0, Engine.clock () -. t1))
  in
  assert (Engine.run engine = Engine.Completed);
  let local, remote = !timings in
  Printf.printf "1000 local reads: %6.0f us   1000 remote reads: %6.0f us   (ratio %.1fx)\n"
    local remote (remote /. local)

let lock_contention () =
  let engine = Engine.create ~nodes:8 ~seed:2L () in
  let lock = Lock.make ~home:0 in
  let finished = ref 0.0 in
  for i = 0 to 7 do
    ignore
      (Engine.spawn engine ~node:i ~name:(Printf.sprintf "worker%d" i) (fun () ->
           for _ = 1 to 50 do
             Lock.with_lock lock (fun () -> Engine.delay 10.0)
           done;
           finished := Float.max !finished (Engine.clock ())))
  done;
  assert (Engine.run engine = Engine.Completed);
  Printf.printf
    "8 workers x 50 critical sections of 10 us: done at %.0f us of virtual time\n" !finished;
  Printf.printf "lock acquisitions: %d, of which contended: %d\n" (Lock.acquisitions lock)
    (Lock.contended_acquisitions lock);
  (* 400 sections x 10 us is the serial floor; overheads put us above it. *)
  assert (!finished >= 4000.0)

let deterministic_replay () =
  let run () =
    let engine = Engine.create ~nodes:2 ~seed:99L () in
    let sum = ref 0 in
    let _ =
      Engine.spawn engine ~node:0 ~name:"roller" (fun () ->
          for _ = 1 to 10 do
            sum := !sum + Engine.random_int 100;
            Engine.delay (Engine.random_float 3.0)
          done)
    in
    ignore (Engine.run engine);
    (!sum, Engine.now engine)
  in
  let a = run () and b = run () in
  assert (a = b);
  Printf.printf "replay with the same seed: sum=%d at t=%.3f us, twice\n" (fst a) (snd a)

let () =
  remote_vs_local ();
  lock_contention ();
  deterministic_replay ()
