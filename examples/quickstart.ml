(* Quickstart: the multicore concurrent pool in five minutes.

   Run with: dune exec examples/quickstart.exe

   A pool is an unordered collection partitioned into per-worker segments:
   adds and removes are local until a worker's segment runs dry, at which
   point it steals half of someone else's segment. This file shows the
   single-domain API surface, then the same pool shared by four domains. *)

let single_domain () =
  print_endline "-- single domain --";
  let pool : string Cpool_mc.Mc_pool.t =
    Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with kind = Cpool_mc.Mc_pool.Linear; segments = 4 }
  in
  let me = Cpool_mc.Mc_pool.register pool in
  List.iter (Cpool_mc.Mc_pool.add pool me) [ "alpha"; "beta"; "gamma" ];
  Printf.printf "pool size after 3 adds: %d\n" (Cpool_mc.Mc_pool.size pool);
  (match Cpool_mc.Mc_pool.remove pool me with
  | Some x -> Printf.printf "removed: %s (most recent first, for locality)\n" x
  | None -> assert false);
  (* try_remove never blocks; remove blocks until elements appear or every
     registered worker is searching. *)
  (match Cpool_mc.Mc_pool.try_remove pool me with
  | Some x -> Printf.printf "try_remove: %s\n" x
  | None -> print_endline "try_remove: empty");
  Cpool_mc.Mc_pool.deregister pool me

let many_domains () =
  print_endline "-- four domains --";
  let domains = 4 in
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with segments = domains } in
  (* Register every worker up front so quiescence detection sees them all. *)
  let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
  let consumed = Atomic.make 0 in
  let worker i =
    Domain.spawn (fun () ->
        let h = handles.(i) in
        (* Each worker contributes 1000 elements, then everyone consumes
           until the pool is globally empty. *)
        for k = 1 to 1000 do
          Cpool_mc.Mc_pool.add pool h ((i * 1000) + k)
        done;
        let rec drain () =
          match Cpool_mc.Mc_pool.remove pool h with
          | Some _ ->
            Atomic.incr consumed;
            drain ()
          | None -> () (* pool confirmed empty: every worker was searching *)
        in
        drain ();
        Cpool_mc.Mc_pool.deregister pool h)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  Printf.printf "consumed %d of %d elements; %d steals balanced the load\n"
    (Atomic.get consumed) (domains * 1000)
    (Cpool_mc.Mc_pool.steals pool);
  assert (Atomic.get consumed = domains * 1000);
  assert (Cpool_mc.Mc_pool.size pool = 0)

let () =
  single_domain ();
  many_domains ();
  print_endline "quickstart done"
