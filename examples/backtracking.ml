(* Distributed backtracking over a concurrent pool — the DIB application
   shape the paper cites as real-world evidence (Finkel & Manber 1987).

   Run with: dune exec examples/backtracking.exe

   N-Queens enumeration has wildly irregular subtree sizes, which is what
   steal-half load balancing is for. The example solves it twice:

   1. On the simulated 16-processor Butterfly, comparing the pool against
      the global-lock stack work list (the paper's baseline).
   2. On real domains via Mc_pool, with the pool's quiescence detection
      ending the run. *)

open Cpool_game

let simulated () =
  let n = 8 in
  let problem = Nqueens.problem ~n in
  let solutions, nodes = Backtrack.sequential problem in
  Printf.printf "== simulated 16-processor machine: %d-queens (%d solutions, %d nodes)\n" n
    solutions nodes;
  List.iter
    (fun scheduler ->
      let report =
        Backtrack.solve problem { Backtrack.default_config with workers = 16; scheduler }
      in
      assert (report.Backtrack.solutions = solutions);
      Printf.printf "  %-12s %8.1f ms of virtual time\n"
        (Parallel.scheduler_to_string scheduler)
        (report.Backtrack.duration /. 1000.0))
    [
      Parallel.Pool_scheduler Cpool.Pool.Linear;
      Parallel.Pool_scheduler Cpool.Pool.Tree;
      Parallel.Stack_scheduler;
    ]

(* The same enumeration on real domains: states flow through an Mc_pool;
   a worker that draws [None] knows the whole tree is exhausted. *)
let on_domains () =
  let n = 10 in
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let problem = Nqueens.problem ~n in
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with segments = domains } in
  let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
  List.iter (Cpool_mc.Mc_pool.add pool handles.(0)) problem.Backtrack.roots;
  let solutions = Atomic.make 0 in
  let nodes = Atomic.make 0 in
  let since_ns = Cpool_util.Clock.now_ns () in
  let worker i =
    Domain.spawn (fun () ->
        let h = handles.(i) in
        let rec go () =
          match Cpool_mc.Mc_pool.remove pool h with
          | Some state ->
            Atomic.incr nodes;
            if problem.Backtrack.is_solution state then Atomic.incr solutions;
            List.iter (Cpool_mc.Mc_pool.add pool h) (problem.Backtrack.children state);
            go ()
          | None -> ()
        in
        go ();
        Cpool_mc.Mc_pool.deregister pool h)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  Printf.printf "== real domains: %d-queens on %d domains: %d solutions, %d nodes, %.2fs, %d steals\n"
    n domains (Atomic.get solutions) (Atomic.get nodes)
    (Cpool_util.Clock.elapsed_s ~since_ns)
    (Cpool_mc.Mc_pool.steals pool);
  assert (Nqueens.known_solutions n = Some (Atomic.get solutions))

let () =
  simulated ();
  on_domains ()
