(* Parallel game-tree search over a concurrent pool — the paper's Section
   4.4 application, in two forms:

   1. On real domains: the 64 opening moves of 4x4x4 tic-tac-toe are
      distributed through an Mc_pool; each worker alpha-beta-searches its
      moves and the results reduce to the best opening move.
   2. In the simulator: the same game searched by the paper's virtual
      16-processor machine, comparing the pool against the global-lock
      stack work list (speedup shapes of the paper).

   Run with: dune exec examples/game_search.exe *)

open Cpool_game

let best_opening_with_domains ~plies ~domains =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with segments = domains } in
  let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
  List.iter (Cpool_mc.Mc_pool.add pool handles.(0)) (Board.legal_moves Board.empty);
  let best = Atomic.make (min_int, -1) in
  let rec improve candidate =
    let current = Atomic.get best in
    if candidate > current && not (Atomic.compare_and_set best current candidate) then
      improve candidate
  in
  let worker i =
    Domain.spawn (fun () ->
        let h = handles.(i) in
        let rec go () =
          match Cpool_mc.Mc_pool.remove pool h with
          | Some move ->
            let value = -Minimax.alpha_beta_value ~plies (Board.play Board.empty move) in
            improve (value, move);
            go ()
          | None -> ()
        in
        go ();
        Cpool_mc.Mc_pool.deregister pool h)
  in
  let t0 = Unix.gettimeofday () in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  let elapsed = Unix.gettimeofday () -. t0 in
  let value, move = Atomic.get best in
  (move, value, elapsed, Cpool_mc.Mc_pool.steals pool)

let () =
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let plies = 3 in
  Printf.printf "== real domains: best opening move (alpha-beta %d plies below each root move)\n"
    plies;
  let move, value, elapsed, steals = best_opening_with_domains ~plies ~domains in
  let x, y, z = Board.coords move in
  Printf.printf "best opening: cell %d = (%d,%d,%d), value %d  [%d domains, %.2fs, %d steals]\n"
    move x y z value domains elapsed steals;

  Printf.printf "\n== simulated 16-processor machine: pool vs global-lock stack (2 plies)\n";
  let run scheduler =
    Parallel.analyse { Parallel.default_config with scheduler; plies = 2; workers = 16 }
  in
  let pool_report = run (Parallel.Pool_scheduler Cpool.Pool.Linear) in
  let stack_report = run Parallel.Stack_scheduler in
  Printf.printf "pool (linear): %8.1f ms of virtual time, %d positions\n"
    (pool_report.Parallel.duration /. 1000.0)
    pool_report.Parallel.leaves;
  Printf.printf "lock stack:    %8.1f ms of virtual time (%.0f%% slower)\n"
    (stack_report.Parallel.duration /. 1000.0)
    (100.0 *. ((stack_report.Parallel.duration /. pool_report.Parallel.duration) -. 1.0));
  assert (pool_report.Parallel.value = stack_report.Parallel.value)
