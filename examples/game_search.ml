(* Parallel game-tree search over a concurrent pool — the paper's Section
   4.4 application, in two forms:

   1. On real domains: the 64 opening moves of 4x4x4 tic-tac-toe become
      futures on the Mc_task work-stealing scheduler; each task
      alpha-beta-searches its move and the awaits reduce to the best
      opening move.
   2. In the simulator: the same game searched by the paper's virtual
      16-processor machine, comparing the pool against the global-lock
      stack work list (speedup shapes of the paper).

   Run with: dune exec examples/game_search.exe *)

open Cpool_game
module Mc_task = Cpool_tasks.Mc_task
module Clock = Cpool_util.Clock

let best_opening_with_domains ~plies ~domains =
  let t =
    Mc_task.of_config
      { Cpool_mc.Mc_pool.Config.default with segments = domains + 1 }
  in
  let since_ns = Clock.now_ns () in
  let futures =
    List.map
      (fun move ->
        ( move,
          Mc_task.fork t (fun () ->
              -Minimax.alpha_beta_value ~plies (Board.play Board.empty move)) ))
      (Board.legal_moves Board.empty)
  in
  let value, move =
    List.fold_left
      (fun best (move, fut) ->
        let candidate = (Mc_task.await fut, move) in
        if candidate > best then candidate else best)
      (min_int, -1) futures
  in
  let elapsed = Clock.elapsed_s ~since_ns in
  Mc_task.shutdown t;
  (move, value, elapsed, Mc_task.steals t)

let () =
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let plies = 3 in
  Printf.printf "== real domains: best opening move (alpha-beta %d plies below each root move)\n"
    plies;
  let move, value, elapsed, steals = best_opening_with_domains ~plies ~domains in
  let x, y, z = Board.coords move in
  Printf.printf "best opening: cell %d = (%d,%d,%d), value %d  [%d domains, %.2fs, %d steals]\n"
    move x y z value domains elapsed steals;

  Printf.printf "\n== simulated 16-processor machine: pool vs global-lock stack (2 plies)\n";
  let run scheduler =
    Parallel.analyse { Parallel.default_config with scheduler; plies = 2; workers = 16 }
  in
  let pool_report = run (Parallel.Pool_scheduler Cpool.Pool.Linear) in
  let stack_report = run Parallel.Stack_scheduler in
  Printf.printf "pool (linear): %8.1f ms of virtual time, %d positions\n"
    (pool_report.Parallel.duration /. 1000.0)
    pool_report.Parallel.leaves;
  Printf.printf "lock stack:    %8.1f ms of virtual time (%.0f%% slower)\n"
    (stack_report.Parallel.duration /. 1000.0)
    (100.0 *. ((stack_report.Parallel.duration /. pool_report.Parallel.duration) -. 1.0));
  assert (pool_report.Parallel.value = stack_report.Parallel.value)
