(* Dynamic task scheduling with a concurrent pool — the paper's motivating
   application shape ("the scheduling of dynamically-created tasks").

   Run with: dune exec examples/task_scheduler.exe

   A synthetic fork/join workload on the Mc_task work-stealing scheduler:
   every task burns some CPU and forks children down to a fixed depth, and
   futures join the subtree sizes back up to the root, so the awaited value
   is an end-to-end checksum of the traversal. The same workload runs on 1
   and on N domains for each pool kind; the example reports wall-clock
   speedup and steal counts, and exits non-zero if the two runs disagree on
   the checksum or on how many tasks the scheduler executed. *)

module Mc_task = Cpool_tasks.Mc_task
module Clock = Cpool_util.Clock

(* A tunable CPU burner (iterative, so the optimiser cannot remove it). *)
let burn n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 31) + i
  done;
  Sys.opaque_identity !acc |> ignore

(* One task: burn, then fork a child per fanout slot and sum their sizes. *)
let rec subtree t ~depth ~fanout ~work =
  burn work;
  if depth = 0 then 1
  else
    let children =
      List.init fanout (fun _ ->
          Mc_task.fork t (fun () -> subtree t ~depth:(depth - 1) ~fanout ~work))
    in
    List.fold_left (fun acc f -> acc + Mc_task.await f) 1 children

(* Seed: a three-level tree, fanout 8, 585 tasks of 200k iterations. *)
let run_workload ~kind ~domains =
  let t =
    Mc_task.of_config
      { Cpool_mc.Mc_pool.Config.default with kind; segments = domains + 1 }
  in
  let since_ns = Clock.now_ns () in
  let total =
    Mc_task.await (Mc_task.fork t (fun () -> subtree t ~depth:3 ~fanout:8 ~work:200_000))
  in
  let elapsed = Clock.elapsed_s ~since_ns in
  Mc_task.shutdown t;
  (elapsed, total, Mc_task.processed t, Mc_task.steals t)

let kind_name = Cpool_mc.Mc_pool.kind_to_string

let () =
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let failures = ref 0 in
  Printf.printf "fork/join workload, 1 vs %d domains\n" domains;
  Printf.printf "%-8s %12s %12s %8s %8s %8s\n" "search" "t1 (s)" "tN (s)" "speedup"
    "tasks" "steals";
  List.iter
    (fun kind ->
      let t1, total1, tasks1, _ = run_workload ~kind ~domains:1 in
      let tn, totaln, tasksn, steals = run_workload ~kind ~domains in
      (* The task graph is deterministic: both runs must execute exactly the
         same tree. A mismatch means the scheduler lost or duplicated work. *)
      if total1 <> totaln || tasks1 <> tasksn then begin
        Printf.eprintf
          "task_scheduler: %s: 1-domain run did %d tasks (checksum %d), %d-domain \
           run did %d (checksum %d)\n"
          (kind_name kind) tasks1 total1 domains tasksn totaln;
        incr failures
      end;
      Printf.printf "%-8s %12.3f %12.3f %8.2f %8d %8d\n" (kind_name kind) t1 tn
        (t1 /. tn) tasksn steals)
    [ Cpool_mc.Mc_pool.Linear; Cpool_mc.Mc_pool.Random; Cpool_mc.Mc_pool.Tree ];
  print_endline "(speedups depend on available cores; steals show the load balancing)";
  if !failures > 0 then exit 1
