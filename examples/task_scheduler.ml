(* Dynamic task scheduling with a concurrent pool — the paper's motivating
   application shape ("the scheduling of dynamically-created tasks").

   Run with: dune exec examples/task_scheduler.exe

   A synthetic fork/join workload: every task burns some CPU and may fork
   children; workers pull tasks from the pool, which doubles as the
   quiescence detector — when [remove] returns [None], the whole task graph
   is finished. We run the same workload on 1 and on N domains and report
   wall-clock speedup and steal counts for each search algorithm. *)

type task = { depth : int; fanout : int; work : int }

(* A tunable CPU burner (iterative, so the optimiser cannot remove it). *)
let burn n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 31) + i
  done;
  Sys.opaque_identity !acc |> ignore

let run_workload ~kind ~domains =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with kind; segments = domains } in
  let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
  let processed = Atomic.make 0 in
  (* Seed: a three-level tree, fanout 8, ~585 tasks of 200k iterations. *)
  Cpool_mc.Mc_pool.add pool handles.(0) { depth = 3; fanout = 8; work = 200_000 };
  let t0 = Unix.gettimeofday () in
  let worker i =
    Domain.spawn (fun () ->
        let h = handles.(i) in
        let rec go () =
          match Cpool_mc.Mc_pool.remove pool h with
          | Some task ->
            burn task.work;
            Atomic.incr processed;
            if task.depth > 0 then
              for _ = 1 to task.fanout do
                Cpool_mc.Mc_pool.add pool h { task with depth = task.depth - 1 }
              done;
            go ()
          | None -> ()
        in
        go ();
        Cpool_mc.Mc_pool.deregister pool h)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  let elapsed = Unix.gettimeofday () -. t0 in
  (elapsed, Atomic.get processed, Cpool_mc.Mc_pool.steals pool)

let kind_name = Cpool_mc.Mc_pool.kind_to_string

let () =
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  Printf.printf "fork/join workload, 1 vs %d domains\n" domains;
  Printf.printf "%-8s %12s %12s %8s %8s\n" "search" "t1 (s)" "tN (s)" "speedup" "steals";
  List.iter
    (fun kind ->
      let t1, tasks1, _ = run_workload ~kind ~domains:1 in
      let tn, tasksn, steals = run_workload ~kind ~domains in
      assert (tasks1 = tasksn);
      Printf.printf "%-8s %12.3f %12.3f %8.2f %8d\n" (kind_name kind) t1 tn (t1 /. tn) steals)
    [ Cpool_mc.Mc_pool.Linear; Cpool_mc.Mc_pool.Random; Cpool_mc.Mc_pool.Tree ];
  print_endline "(speedups depend on available cores; steals show the load balancing)"
