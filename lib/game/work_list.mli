(** Work-list abstraction over which the parallel game search runs.

    The paper's application compares a concurrent pool against "a stack
    with a global lock for the work list". Both are exposed through this
    tiny interface so the scheduler is identical and only the distribution
    mechanism differs. All functions run inside simulated processes. *)

type 'a t = {
  join : unit -> unit;  (** Register the calling worker. *)
  leave : unit -> unit;  (** Deregister the calling worker. *)
  add : me:int -> 'a -> unit;  (** Contribute a task. *)
  remove : me:int -> 'a option;
      (** Take a task; [None] means the work is exhausted: every worker is
          idle and no task remains, so the worker should exit. *)
}

val of_pool : 'a Cpool.Pool.t -> 'a t
(** [of_pool pool] adapts a concurrent pool: removes that abort map to
    [None] (the pool's livelock detector doubles as quiescence detection
    for the task graph — an abort means every worker is searching and no
    task exists anywhere). *)

val global_stack : ?home:Cpool_sim.Topology.node -> unit -> 'a t * (unit -> int * int)
(** [global_stack ()] is the baseline: one stack guarded by one lock on
    node [home] (default 0), as in the paper's original program. [remove]
    spins on costed size reads while the stack is empty, returning [None]
    once every joined worker is idle with the stack empty. The second
    component reports the lock's [(acquisitions, contended)] counts when
    called. *)
