(** Parallel minimax over a shared work list (paper Section 4.4).

    "Each position is placed in a pool when it is generated. Processors
    repeatedly pull a position from the pool and possibly generate new
    positions to put in the pool." Internal nodes carry a pending-children
    counter and a negamax accumulator in simulated shared memory; the last
    child to complete folds its value into the parent and cascades upward,
    so the computed root value equals sequential minimax exactly.

    Workers exit when the work list reports exhaustion — the pool's
    livelock detector (or the stack's idle count) doubles as quiescence
    detection for the task graph. *)

type scheduler =
  | Pool_scheduler of Cpool.Pool.kind
      (** Concurrent pool with the given search algorithm. *)
  | Stack_scheduler  (** The paper's global-lock stack baseline. *)

val scheduler_to_string : scheduler -> string

type config = {
  workers : int;  (** Simulated processors (paper: 16). *)
  scheduler : scheduler;
  plies : int;  (** Search depth (paper: 3 = 249,984 positions). *)
  expand_cost : float;
      (** Local compute charged per child generated during expansion, us. *)
  leaf_cost : float;
      (** Local compute charged per leaf evaluation, us. These two model
          the real work a Butterfly node performed per board position;
          defaults are calibrated in the experiments so the stack baseline
          saturates near the paper's 10.7x speedup. *)
  seed : int64;
  cost : Cpool_sim.Topology.cost_model;
}

val default_config : config
(** 16 workers, linear pool, 3 plies, calibrated costs, Butterfly model. *)

type report = {
  value : int;  (** Root minimax value (negamax convention). *)
  leaves : int;  (** Leaf positions evaluated. *)
  tasks : int;  (** Total tasks processed (leaves + internal). *)
  duration : float;  (** Virtual completion time, us. *)
  pool_totals : Cpool.Pool.totals option;  (** Present for pool runs. *)
  stack_lock : (int * int) option;
      (** [(acquisitions, contended)] of the global lock, for stack runs. *)
}

val analyse : ?board:Board.t -> config -> report
(** [analyse config] searches from [board] (default {!Board.empty}) with
    [config.workers] simulated processors and returns the measured report.
    Raises [Invalid_argument] if [workers <= 0] or [plies < 0]. *)
