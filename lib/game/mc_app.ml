module Mc_task = Cpool_tasks.Mc_task
module Clock = Cpool_util.Clock
module Json = Cpool_util.Json

type app = Minimax | Nqueens

let app_to_string = function Minimax -> "minimax" | Nqueens -> "nqueens"

type scheduler = Stack | Pool of Cpool_intf.kind

let scheduler_to_string = function
  | Stack -> "stack"
  | Pool kind -> Cpool_intf.to_string kind

type config = {
  kinds : Cpool_intf.kind list;
  domain_counts : int list;
  plies : int;
  fork_plies : int;
  queens : int;
  fork_depth : int;
  repeats : int;
  seed : int64;
}

let default =
  {
    kinds = Cpool_intf.all;
    domain_counts = [ 1; 2; 4 ];
    plies = 3;
    fork_plies = 1;
    queens = 12;
    fork_depth = 3;
    repeats = 3;
    seed = 42L;
  }

type cell = {
  app : app;
  scheduler : scheduler;
  domains : int;
  elapsed_s : float;
  value : int;
  expected : int;
  ok : bool;
  tasks : int;
  forked : int;
  steals : int;
}

type summary = {
  config : config;
  seq_minimax_s : float;
  minimax_expected : int;
  seq_queens_s : float;
  queens_expected : int;
  queens_nodes : int;
  cells : cell list;
}

let make_scheduler config scheduler ~domains =
  match scheduler with
  | Stack -> Mc_task.lock_stack ~workers:domains
  | Pool kind ->
    (* One segment per worker plus the reserved submission slot. *)
    Mc_task.of_config
      {
        Cpool_mc.Mc_pool.Config.default with
        segments = domains + 1;
        kind;
        seed = config.seed;
      }

let run_cell config ~expected app scheduler ~domains =
  let once () =
    let t = make_scheduler config scheduler ~domains in
    let since_ns = Clock.now_ns () in
    let value =
      match app with
      | Minimax ->
        Mc_search.minimax_value t ~fork_plies:config.fork_plies ~plies:config.plies
          Board.empty
      | Nqueens ->
        fst
          (Mc_search.nqueens_solutions ~fork_depth:config.fork_depth ~n:config.queens t)
    in
    let elapsed_s = Clock.elapsed_s ~since_ns in
    Mc_task.shutdown t;
    let tasks = Mc_task.processed t and forked = Mc_task.forked t in
    {
      app;
      scheduler;
      domains;
      elapsed_s;
      value;
      expected;
      ok = value = expected && tasks = forked;
      tasks;
      forked;
      steals = Mc_task.steals t;
    }
  in
  (* Best-of-N on a fresh scheduler each time: on a timesliced machine a
     single run is at the mercy of where the OS scheduler's rotation lands,
     and the minimum is the standard estimator for the undisturbed cost. A
     failing repeat (wrong answer or lost work) is kept in preference to
     any timing — correctness failures must survive into the artifact. *)
  let best = ref (once ()) in
  for _ = 2 to config.repeats do
    if !best.ok then begin
      let c = once () in
      if (not c.ok) || c.elapsed_s < !best.elapsed_s then best := c
    end
  done;
  !best

let run config =
  if config.domain_counts = [] then invalid_arg "Mc_app.run: no domain counts";
  List.iter
    (fun d -> if d < 1 then invalid_arg "Mc_app.run: domain counts must be positive")
    config.domain_counts;
  if config.repeats < 1 then invalid_arg "Mc_app.run: repeats must be positive";
  let since_ns = Clock.now_ns () in
  let minimax_expected = Minimax.value ~plies:config.plies Board.empty in
  let seq_minimax_s = Clock.elapsed_s ~since_ns in
  let since_ns = Clock.now_ns () in
  let queens_expected, queens_nodes =
    Backtrack.sequential (Nqueens.problem ~n:config.queens)
  in
  let seq_queens_s = Clock.elapsed_s ~since_ns in
  (match Nqueens.known_solutions config.queens with
  | Some k when k <> queens_expected ->
    invalid_arg "Mc_app.run: sequential n-queens disagrees with the published count"
  | _ -> ());
  let schedulers = Stack :: List.map (fun k -> Pool k) config.kinds in
  let cells =
    List.concat_map
      (fun (app, expected) ->
        List.concat_map
          (fun domains ->
            List.map
              (fun scheduler -> run_cell config ~expected app scheduler ~domains)
              schedulers)
          config.domain_counts)
      [ (Minimax, minimax_expected); (Nqueens, queens_expected) ]
  in
  {
    config;
    seq_minimax_s;
    minimax_expected;
    seq_queens_s;
    queens_expected;
    queens_nodes;
    cells;
  }

(* --- rendering --------------------------------------------------------- *)

let seq_time summary = function
  | Minimax -> summary.seq_minimax_s
  | Nqueens -> summary.seq_queens_s

let render summary =
  let buf = Buffer.create 4096 in
  let c = summary.config in
  Buffer.add_string buf
    (Printf.sprintf
       "mc-app: %d-ply minimax (fork %d plies) and %d-queens (fork %d rows), \
        best of %d\n"
       c.plies c.fork_plies c.queens c.fork_depth c.repeats);
  Buffer.add_string buf
    (Printf.sprintf "sequential: minimax %.3fs (value %d), queens %.3fs (%d solutions, %d nodes)\n\n"
       summary.seq_minimax_s summary.minimax_expected summary.seq_queens_s
       summary.queens_expected summary.queens_nodes);
  Buffer.add_string buf
    (Printf.sprintf "%-8s %-9s %7s %10s %8s %-5s %8s %8s\n" "app" "scheduler"
       "domains" "elapsed_s" "speedup" "ok" "tasks" "steals");
  List.iter
    (fun cell ->
      let seq = seq_time summary cell.app in
      let speedup = if cell.elapsed_s > 0. then seq /. cell.elapsed_s else Float.nan in
      Buffer.add_string buf
        (Printf.sprintf "%-8s %-9s %7d %10.4f %8.2f %-5b %8d %8d\n"
           (app_to_string cell.app)
           (scheduler_to_string cell.scheduler)
           cell.domains cell.elapsed_s speedup cell.ok cell.tasks cell.steals))
    summary.cells;
  (* Separation: stack elapsed over each kind's elapsed, per (app, domains). *)
  let find app scheduler domains =
    List.find_opt
      (fun cell ->
        cell.app = app && cell.scheduler = scheduler && cell.domains = domains)
      summary.cells
  in
  Buffer.add_string buf "\nseparation (stack elapsed / pool elapsed; > 1 means the pool wins):\n";
  Buffer.add_string buf (Printf.sprintf "%-8s %7s" "app" "domains");
  List.iter
    (fun kind -> Buffer.add_string buf (Printf.sprintf " %8s" (Cpool_intf.to_string kind)))
    c.kinds;
  Buffer.add_char buf '\n';
  List.iter
    (fun app ->
      List.iter
        (fun domains ->
          match find app Stack domains with
          | None -> ()
          | Some stack ->
            Buffer.add_string buf
              (Printf.sprintf "%-8s %7d" (app_to_string app) domains);
            List.iter
              (fun kind ->
                match find app (Pool kind) domains with
                | Some pool when pool.elapsed_s > 0. ->
                  Buffer.add_string buf
                    (Printf.sprintf " %8.2f" (stack.elapsed_s /. pool.elapsed_s))
                | _ -> Buffer.add_string buf (Printf.sprintf " %8s" "-"))
              c.kinds;
            Buffer.add_char buf '\n')
        c.domain_counts)
    [ Minimax; Nqueens ];
  Buffer.contents buf

(* --- JSON -------------------------------------------------------------- *)

let cell_to_json cell =
  Json.Assoc
    [
      ("app", Json.Str (app_to_string cell.app));
      ("scheduler", Json.Str (scheduler_to_string cell.scheduler));
      ("domains", Json.Int cell.domains);
      ("elapsed_s", Json.Float cell.elapsed_s);
      ("result", Json.Int cell.value);
      ("expected", Json.Int cell.expected);
      ("ok", Json.Bool cell.ok);
      ("tasks", Json.Int cell.tasks);
      ("forked", Json.Int cell.forked);
      ("steals", Json.Int cell.steals);
    ]

let to_json summary =
  let c = summary.config in
  Json.Assoc
    [
      ("benchmark", Json.Str "mc-app");
      ( "config",
        Json.Assoc
          [
            ( "kinds",
              Json.List
                (List.map (fun k -> Json.Str (Cpool_intf.to_string k)) c.kinds) );
            ( "domain_counts",
              Json.List (List.map (fun d -> Json.Int d) c.domain_counts) );
            ("plies", Json.Int c.plies);
            ("fork_plies", Json.Int c.fork_plies);
            ("queens", Json.Int c.queens);
            ("fork_depth", Json.Int c.fork_depth);
            ("repeats", Json.Int c.repeats);
            ("seed", Json.Int (Int64.to_int c.seed));
          ] );
      ( "sequential",
        Json.Assoc
          [
            ("minimax_s", Json.Float summary.seq_minimax_s);
            ("minimax_value", Json.Int summary.minimax_expected);
            ("queens_s", Json.Float summary.seq_queens_s);
            ("queens_solutions", Json.Int summary.queens_expected);
            ("queens_nodes", Json.Int summary.queens_nodes);
          ] );
      ("cells", Json.List (List.map cell_to_json summary.cells));
    ]

(* --- validation (the json-check side) ---------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let number name json =
  let* v = field name json in
  match Json.to_number v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let integer name json =
  let* v = field name json in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S is not an integer" name)

let string_field name json =
  let* v = field name json in
  match v with
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let validate_cell i cell =
  let where msg = Printf.sprintf "cell %d: %s" i msg in
  let res =
    let* app = string_field "app" cell in
    let* () =
      if app = "minimax" || app = "nqueens" then Ok ()
      else Error (Printf.sprintf "unknown app %S" app)
    in
    let* scheduler = string_field "scheduler" cell in
    let* () =
      if scheduler = "stack" then Ok ()
      else
        match Cpool_intf.of_string scheduler with
        | Ok _ -> Ok ()
        | Error _ -> Error (Printf.sprintf "unknown scheduler %S" scheduler)
    in
    let* domains = integer "domains" cell in
    let* () = if domains >= 1 then Ok () else Error "non-positive domains" in
    let* elapsed = number "elapsed_s" cell in
    let* () =
      if elapsed >= 0. && Float.is_finite elapsed then Ok ()
      else Error "elapsed_s is not a finite non-negative number"
    in
    let* value = integer "result" cell in
    let* expected = integer "expected" cell in
    let* tasks = integer "tasks" cell in
    let* forked = integer "forked" cell in
    let* steals = integer "steals" cell in
    let* ok = field "ok" cell in
    let* () =
      match ok with
      | Json.Bool true -> Ok ()
      | Json.Bool false -> Error "cell is marked not ok"
      | _ -> Error "field \"ok\" is not a boolean"
    in
    let* () =
      if value = expected then Ok ()
      else Error (Printf.sprintf "result %d does not match expected %d" value expected)
    in
    let* () =
      if tasks = forked then Ok ()
      else
        Error (Printf.sprintf "tasks %d does not match forked %d (lost work)" tasks forked)
    in
    let* () = if steals >= 0 then Ok () else Error "negative steals" in
    Ok ()
  in
  match res with Ok () -> Ok () | Error msg -> Error (where msg)

let validate_json json =
  let* benchmark = string_field "benchmark" json in
  let* () =
    if benchmark = "mc-app" then Ok ()
    else Error (Printf.sprintf "benchmark is %S, not \"mc-app\"" benchmark)
  in
  let* seq = field "sequential" json in
  let* _ = number "minimax_s" seq in
  let* _ = integer "minimax_value" seq in
  let* _ = number "queens_s" seq in
  let* solutions = integer "queens_solutions" seq in
  let* _ = integer "queens_nodes" seq in
  let* conf = field "config" json in
  let* repeats = integer "repeats" conf in
  let* () = if repeats >= 1 then Ok () else Error "non-positive repeats" in
  let* queens = integer "queens" conf in
  let* () =
    match Nqueens.known_solutions queens with
    | Some k when k <> solutions ->
      Error
        (Printf.sprintf "queens_solutions %d contradicts the published count %d for n=%d"
           solutions k queens)
    | _ -> Ok ()
  in
  let* cells = field "cells" json in
  match Json.to_list cells with
  | None -> Error "field \"cells\" is not a list"
  | Some [] -> Error "field \"cells\" is empty"
  | Some cells ->
    let rec check i = function
      | [] -> Ok i
      | cell :: rest ->
        let* () = validate_cell i cell in
        check (i + 1) rest
    in
    check 0 cells
