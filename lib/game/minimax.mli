(** Sequential game-tree search: minimax and alpha-beta.

    The reference implementation the parallel schedulers are validated
    against. Values follow the negamax convention: a position's value is
    from the perspective of the side to move. *)

val value : plies:int -> Board.t -> int
(** [value ~plies b] is the plain minimax value of [b] searched [plies]
    moves deep (the paper examines the first three moves). Decided
    positions and depth-0 positions take their static evaluation. Raises
    [Invalid_argument] if [plies < 0]. *)

val alpha_beta_value : plies:int -> Board.t -> int
(** [alpha_beta_value ~plies b] equals [value ~plies b], computed with
    alpha-beta pruning. *)

val positions_examined : plies:int -> Board.t -> int
(** [positions_examined ~plies b] counts the leaf positions a full minimax
    visits — 249,984 for three plies from the empty board (64 * 63 * 62),
    as the paper reports. *)

val best_move : plies:int -> Board.t -> int option
(** [best_move ~plies b] is a move maximising {!value} of the successor
    (for the side to move), or [None] if the position has no legal
    moves. *)
