(** The Figure 8 experiment on real domains: minimax and n-queens through
    {!Mc_search}, every pool kind against the global-lock stack baseline.

    Each grid cell builds a fresh scheduler ({!Cpool_tasks.Mc_task} on a
    pool of the cell's kind, or {!Cpool_tasks.Mc_task.lock_stack}), runs
    one application to completion, and checks the answer against the
    sequential reference computed once up front — a cell is [ok] only if
    its value is exactly the reference {e and} the scheduler conserved
    tasks ([processed = forked]). Timing uses the monotonic
    {!Cpool_util.Clock} and covers only the solve (scheduler spawn and
    shutdown excluded), so cells compare distribution mechanisms, not
    domain start-up cost. Results serialize to JSON ({!to_json}) for the
    committed [BENCH_mcapp.json] artifact; {!validate_json} is the
    [json-check] side. *)

type app = Minimax | Nqueens

val app_to_string : app -> string
(** ["minimax"] or ["nqueens"]. *)

type scheduler = Stack | Pool of Cpool_intf.kind
(** The stack baseline, or a pool-backed scheduler of the given kind. *)

val scheduler_to_string : scheduler -> string
(** ["stack"], or the pool kind's name. *)

type config = {
  kinds : Cpool_intf.kind list;  (** Pool kinds to sweep (stack always runs). *)
  domain_counts : int list;  (** Worker-domain counts to sweep. *)
  plies : int;  (** Minimax search depth from the empty board. *)
  fork_plies : int;  (** Minimax fork frontier ({!Mc_search.minimax_value}). *)
  queens : int;  (** N-queens board size. *)
  fork_depth : int;  (** Backtracking fork frontier. *)
  repeats : int;  (** Runs per cell; the cell keeps the fastest
                      (best-of-N damps OS-scheduler noise on a
                      timesliced machine). A repeat that fails its
                      correctness check is kept over any timing. *)
  seed : int64;  (** Pool construction seed. *)
}

val default : config
(** All four kinds; 1, 2 and 4 domains; 3-ply minimax forking 1 ply
    (64 coarse subtree tasks); 12-queens forking 3 rows (879 fine
    tasks); best of 3; seed 42. *)

type cell = {
  app : app;
  scheduler : scheduler;
  domains : int;
  elapsed_s : float;  (** Monotonic wall-clock of the fastest solve. *)
  value : int;  (** Minimax value, or the solution count. *)
  expected : int;  (** The sequential reference for the same parameters. *)
  ok : bool;  (** [value = expected] and [processed = forked]. *)
  tasks : int;  (** Tasks the scheduler processed. *)
  forked : int;  (** Tasks forked (must equal [tasks]). *)
  steals : int;  (** Pool steals ([0] for the stack). *)
}

type summary = {
  config : config;
  seq_minimax_s : float;  (** Sequential [Minimax.value] wall-clock. *)
  minimax_expected : int;
  seq_queens_s : float;  (** Sequential n-queens DFS wall-clock. *)
  queens_expected : int;  (** Solutions; checked against the published
                              count when {!Nqueens.known_solutions} has
                              one. *)
  queens_nodes : int;
  cells : cell list;
}

val run : config -> summary
(** Run the sequential references, then the full
    stack-plus-kinds × app × domains grid, in a deterministic order;
    each cell is the best of [config.repeats] runs on a fresh scheduler.
    Raises [Invalid_argument] on an empty [domain_counts], a non-positive
    domain count or repeat count, or parameters {!Mc_search} rejects. *)

val render : summary -> string
(** Human-readable report: the per-cell table (elapsed, speedup over the
    sequential reference, task and steal counts), then the
    pool-vs-stack separation table — for each (app, domains) pair, each
    kind's [stack elapsed / kind elapsed] (> 1 means the pool beat the
    global lock). *)

val to_json : summary -> Cpool_util.Json.t
(** The [BENCH_mcapp.json] document: ["benchmark": "mc-app"], the config,
    the sequential references, one object per cell. *)

val validate_json : Cpool_util.Json.t -> (int, string) result
(** Structural check for [json-check]: returns the cell count, or a
    description of the first malformed field. Beyond presence and types
    it enforces per cell that [ok] is [true], [value = expected] and
    [tasks = forked] — an artifact recording a wrong answer or lost work
    fails the check. *)
