let check_plies plies = if plies < 0 then invalid_arg "Minimax: plies must be non-negative"

let leaf board = Board.evaluate_for_side_to_move board

let rec negamax plies board =
  if plies = 0 || Board.winner board <> None then leaf board
  else
    match Board.legal_moves board with
    | [] -> leaf board
    | moves ->
      List.fold_left
        (fun best m -> max best (-negamax (plies - 1) (Board.play board m)))
        min_int moves

let value ~plies board =
  check_plies plies;
  negamax plies board

let rec negamax_ab plies alpha beta board =
  if plies = 0 || Board.winner board <> None then leaf board
  else
    match Board.legal_moves board with
    | [] -> leaf board
    | moves ->
      let rec scan alpha best = function
        | [] -> best
        | m :: rest ->
          let v = -negamax_ab (plies - 1) (-beta) (-alpha) (Board.play board m) in
          let best = max best v in
          let alpha = max alpha v in
          if alpha >= beta then best else scan alpha best rest
      in
      scan alpha min_int moves

let alpha_beta_value ~plies board =
  check_plies plies;
  negamax_ab plies min_int max_int board

let rec positions plies board =
  if plies = 0 || Board.winner board <> None then 1
  else
    match Board.legal_moves board with
    | [] -> 1
    | moves ->
      List.fold_left (fun acc m -> acc + positions (plies - 1) (Board.play board m)) 0 moves

let positions_examined ~plies board =
  check_plies plies;
  positions plies board

let best_move ~plies board =
  check_plies plies;
  match Board.legal_moves board with
  | [] -> None
  | moves ->
    let scored =
      List.map (fun m -> (-negamax (max 0 (plies - 1)) (Board.play board m), m)) moves
    in
    let best = List.fold_left max (List.hd scored) (List.tl scored) in
    Some (snd best)
