(** 4x4x4 three-dimensional tic-tac-toe board (paper Section 4.4).

    Cells are indexed 0..63; cell [(x, y, z)] has index [x + 4y + 16z].
    Four in a row along any of the 76 winning lines (48 axis rows, 24 face
    diagonals, 4 space diagonals) wins. Boards are immutable values backed
    by two bitboards, so they are cheap to copy into work-list tasks. *)

type player = X | O

val opponent : player -> player
val player_to_string : player -> string

type t
(** An immutable board position. *)

val size : int
(** Cells per side: 4. *)

val cells : int
(** Total cells: 64. *)

val empty : t
(** The initial position; [X] moves first. *)

val index : x:int -> y:int -> z:int -> int
(** [index ~x ~y ~z] is the cell index. Raises [Invalid_argument] if any
    coordinate is outside [\[0, 4)]. *)

val coords : int -> int * int * int
(** [coords i] inverts {!index}. Raises [Invalid_argument] if out of
    range. *)

val to_move : t -> player
(** [to_move b] is the side to move. *)

val cell : t -> int -> player option
(** [cell b i] is the occupant of cell [i], if any. *)

val move_count : t -> int
(** [move_count b] is the number of stones placed so far. *)

val play : t -> int -> t
(** [play b i] places the side-to-move's stone on empty cell [i]. Raises
    [Invalid_argument] if [i] is out of range or occupied. *)

val legal_moves : t -> int list
(** [legal_moves b] lists the empty cells in increasing index order;
    empty if the position already has a winner. *)

val winner : t -> player option
(** [winner b] is the player holding a complete line, if any. *)

val is_full : t -> bool

val lines : int array array
(** The 76 winning lines, each an array of 4 cell indices. *)

val evaluate : t -> int
(** [evaluate b] is a heuristic score from [X]'s perspective: the win
    score (+/- {!win_score}) for decided positions, otherwise a sum over
    open lines weighted exponentially by stone count — the classic
    minimax static evaluator (Horowitz & Sahni, the paper's reference
    [4]). *)

val evaluate_for_side_to_move : t -> int
(** [evaluate_for_side_to_move b] negates {!evaluate} for [O] to move —
    the negamax convention. *)

val win_score : int
(** Score of a decided position; strictly larger than any undecided
    evaluation. *)

val to_string : t -> string
(** Multi-line diagram, one 4x4 layer per z level. *)
