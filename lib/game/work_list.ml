open Cpool_sim

type 'a t = {
  join : unit -> unit;
  leave : unit -> unit;
  add : me:int -> 'a -> unit;
  remove : me:int -> 'a option;
}

let of_pool pool =
  {
    join = (fun () -> Cpool.Pool.join pool);
    leave = (fun () -> Cpool.Pool.leave pool);
    add = (fun ~me task -> Cpool.Pool.add pool ~me task);
    remove =
      (fun ~me ->
        match Cpool.Pool.remove pool ~me with
        | Cpool.Pool.Local task | Cpool.Pool.Stolen (task, _) -> Some task
        | Cpool.Pool.Empty _ -> None);
  }

let global_stack ?(home = 0) () =
  let lock = Lock.make ~home in
  let size = Memory.make ~home 0 in
  let idle = Memory.make ~home 0 in
  let joined = Memory.make ~home 0 in
  let items = Cpool_util.Vec.create () in
  (* Tasks (board positions) are copied through the central stack while the
     lock is held — the block transfer the original program paid on every
     push and pop. *)
  let transfer_words = 4 in
  let add ~me:_ task =
    Lock.with_lock lock (fun () ->
        ignore (Memory.fetch_add size 1);
        Engine.charge_n ~home (transfer_words - 1);
        Cpool_util.Vec.push items task)
  in
  let try_pop () =
    Lock.with_lock lock (fun () ->
        if Memory.read size = 0 then None
        else begin
          ignore (Memory.fetch_add size (-1));
          Engine.charge_n ~home (transfer_words - 1);
          Some (Cpool_util.Vec.pop_exn items)
        end)
  in
  let remove ~me:_ =
    let rec attempt () =
      match try_pop () with
      | Some task -> Some task
      | None -> spin ()
    and spin () =
      (* Declare ourselves idle, then watch the stack; when every joined
         worker is idle and nothing remains, the computation is over. *)
      ignore (Memory.fetch_add idle 1);
      let rec watch () =
        if Memory.read size > 0 then begin
          ignore (Memory.fetch_add idle (-1));
          attempt ()
        end
        else if Memory.read idle >= Memory.peek joined then begin
          ignore (Memory.fetch_add idle (-1));
          None
        end
        else watch ()
      in
      watch ()
    in
    attempt ()
  in
  let wl =
    {
      join = (fun () -> ignore (Memory.fetch_add joined 1));
      leave = (fun () -> ignore (Memory.fetch_add joined (-1)));
      add;
      remove;
    }
  in
  (wl, fun () -> (Lock.acquisitions lock, Lock.contended_acquisitions lock))
