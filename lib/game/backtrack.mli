(** Parallel backtracking over a shared work list — the DIB shape.

    The paper's external evidence (Section 4.4) is Finkel & Manber's DIB,
    "a distributed implementation of backtracking" that "relies heavily on
    a concurrent pools data structure for load balancing" and uses
    essentially the linear and random search algorithms. This module is
    that application shape: a search tree described by a successor
    function, explored by workers pulling nodes from a work list and
    pushing children back, counting solutions. Unlike minimax nothing
    propagates upward, so quiescence (the pool's abort, or the stack's
    idle count) is the entire termination story. *)

type 's problem = {
  roots : 's list;  (** Initial tree nodes. *)
  children : 's -> 's list;  (** Successors; [[]] makes a leaf. *)
  is_solution : 's -> bool;  (** Counted at every node where it holds. *)
}

val sequential : 's problem -> int * int
(** [sequential p] is [(solutions, nodes)] by plain depth-first search —
    the reference the parallel runs are checked against. *)

type config = {
  workers : int;
  scheduler : Parallel.scheduler;  (** Pool (any algorithm) or lock stack. *)
  expand_cost : float;  (** Simulated compute per child generated, us. *)
  visit_cost : float;  (** Simulated compute per node visited, us. *)
  seed : int64;
  cost : Cpool_sim.Topology.cost_model;
}

val default_config : config
(** 16 workers, linear pool, costs calibrated like the minimax
    application. *)

type report = {
  solutions : int;
  nodes : int;  (** Tree nodes visited (= tasks processed). *)
  duration : float;  (** Virtual completion time, us. *)
  pool_totals : Cpool.Pool.totals option;
}

val solve : 's problem -> config -> report
(** [solve p config] explores the whole tree on the simulated machine.
    Raises [Invalid_argument] on non-positive workers; the caller should
    check the result against {!sequential} (the tests do). *)
