open Cpool_sim

type scheduler = Pool_scheduler of Cpool.Pool.kind | Stack_scheduler

let scheduler_to_string = function
  | Pool_scheduler kind -> "pool/" ^ Cpool.Pool.kind_to_string kind
  | Stack_scheduler -> "stack"

type config = {
  workers : int;
  scheduler : scheduler;
  plies : int;
  expand_cost : float;
  leaf_cost : float;
  seed : int64;
  cost : Topology.cost_model;
}

let default_config =
  {
    workers = 16;
    scheduler = Pool_scheduler Cpool.Pool.Linear;
    plies = 3;
    expand_cost = 14.0;
    leaf_cost = 900.0;
    seed = 1L;
    cost = Topology.butterfly;
  }

type report = {
  value : int;
  leaves : int;
  tasks : int;
  duration : float;
  pool_totals : Cpool.Pool.totals option;
  stack_lock : (int * int) option;
}

(* A task is one board position awaiting expansion or evaluation. The
   bookkeeping cells live on the node of the worker that created the task,
   so completing a stolen task pays remote accesses — as block-transferring
   results did on the real machine. *)
type task = {
  board : Board.t;
  plies_left : int;
  parent : task option;
  pending : int Memory.t; (* children not yet completed *)
  acc : int Memory.t; (* running max of -(child value) *)
}

let analyse ?(board = Board.empty) config =
  if config.workers <= 0 then invalid_arg "Parallel.analyse: workers must be positive";
  if config.plies < 0 then invalid_arg "Parallel.analyse: plies must be non-negative";
  let engine = Engine.create ~cost:config.cost ~nodes:config.workers ~seed:config.seed () in
  let pool, work_list, lock_stats =
    match config.scheduler with
    | Pool_scheduler kind ->
      let pool =
        Cpool.Pool.create
          {
            Cpool.Pool.default_config with
            segments = config.workers;
            kind;
            profile = Cpool.Segment.Boxed;
          }
      in
      (Some pool, Work_list.of_pool pool, None)
    | Stack_scheduler ->
      let wl, stats = Work_list.global_stack () in
      (None, wl, Some stats)
  in
  let root_value = ref None in
  let leaves = ref 0 in
  let tasks_done = ref 0 in
  let mk_task ~home ~parent ~plies_left board =
    {
      board;
      plies_left;
      parent;
      pending = Memory.make ~home 0;
      acc = Memory.make ~home min_int;
    }
  in
  let rec complete task value =
    match task.parent with
    | None -> root_value := Some value
    | Some parent ->
      ignore (Memory.update parent.acc (fun v -> max v (-value)));
      let remaining_before = Memory.fetch_add parent.pending (-1) in
      if remaining_before = 1 then complete parent (Memory.peek parent.acc)
  in
  let is_leaf task =
    task.plies_left = 0 || Board.winner task.board <> None
    || Board.legal_moves task.board = []
  in
  let process me task =
    incr tasks_done;
    if is_leaf task then begin
      Engine.delay config.leaf_cost;
      incr leaves;
      complete task (Board.evaluate_for_side_to_move task.board)
    end
    else begin
      let moves = Board.legal_moves task.board in
      let children =
        List.map
          (fun m ->
            mk_task ~home:(Engine.self_node ()) ~parent:(Some task)
              ~plies_left:(task.plies_left - 1) (Board.play task.board m))
          moves
      in
      (* Pending must be set before any child becomes visible. *)
      Memory.write task.pending (List.length children);
      Engine.delay (config.expand_cost *. float_of_int (List.length children));
      List.iter (fun child -> work_list.Work_list.add ~me child) children
    end
  in
  let worker me () =
    work_list.Work_list.join ();
    (* Worker 0 seeds the root. *)
    if me = 0 then begin
      let root = mk_task ~home:0 ~parent:None ~plies_left:config.plies board in
      work_list.Work_list.add ~me root
    end;
    let rec loop () =
      match work_list.Work_list.remove ~me with
      | Some task ->
        process me task;
        loop ()
      | None -> ()
    in
    loop ();
    work_list.Work_list.leave ()
  in
  for i = 0 to config.workers - 1 do
    ignore (Engine.spawn engine ~node:i ~name:(Printf.sprintf "worker%d" i) (worker i))
  done;
  (match Engine.run engine with
  | Engine.Completed -> ()
  | Engine.Deadlocked names ->
    failwith ("Parallel.analyse: deadlock: " ^ String.concat "," names)
  | Engine.Hit_limit -> assert false);
  let value =
    match !root_value with
    | Some v -> v
    | None -> failwith "Parallel.analyse: workers exited before the root completed"
  in
  {
    value;
    leaves = !leaves;
    tasks = !tasks_done;
    duration = Engine.now engine;
    pool_totals = Option.map Cpool.Pool.totals pool;
    stack_lock = Option.map (fun f -> f ()) lock_stats;
  }
