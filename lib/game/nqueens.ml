type state = {
  n : int;
  placed : int; (* queens placed = row index of the next placement *)
  cols : int; (* bitmask of occupied columns *)
  diag_up : int; (* bitmask of attacked up-diagonals, shifted per row *)
  diag_down : int; (* bitmask of attacked down-diagonals *)
}

let initial ~n =
  if n < 1 || n > 30 then invalid_arg "Nqueens.initial: n out of [1, 30]";
  { n; placed = 0; cols = 0; diag_up = 0; diag_down = 0 }

let row s = s.placed

let children s =
  if s.placed = s.n then []
  else begin
    (* Free positions in this row: not a used column, not an attacked
       diagonal. The diagonal masks shift by one per row. *)
    let full = (1 lsl s.n) - 1 in
    let attacked = s.cols lor s.diag_up lor s.diag_down in
    let rec collect col acc =
      if col < 0 then acc
      else begin
        let bit = 1 lsl col in
        if attacked land bit = 0 then
          collect (col - 1)
            ({
               n = s.n;
               placed = s.placed + 1;
               cols = s.cols lor bit;
               diag_up = ((s.diag_up lor bit) lsl 1) land full;
               diag_down = (s.diag_down lor bit) lsr 1;
             }
            :: acc)
        else collect (col - 1) acc
      end
    in
    collect (s.n - 1) []
  end

let problem ~n =
  {
    Backtrack.roots = [ initial ~n ];
    children;
    is_solution = (fun s -> s.placed = s.n);
  }

let known_solutions = function
  | 1 -> Some 1
  | 2 | 3 -> Some 0
  | 4 -> Some 2
  | 5 -> Some 10
  | 6 -> Some 4
  | 7 -> Some 40
  | 8 -> Some 92
  | 9 -> Some 352
  | 10 -> Some 724
  | 11 -> Some 2680
  | 12 -> Some 14200
  | _ -> None
