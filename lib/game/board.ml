type player = X | O

let opponent = function X -> O | O -> X

let player_to_string = function X -> "X" | O -> "O"

type t = { x_stones : int64; o_stones : int64; stones : int }

let size = 4

let cells = 64

let empty = { x_stones = 0L; o_stones = 0L; stones = 0 }

let index ~x ~y ~z =
  if x < 0 || x >= size || y < 0 || y >= size || z < 0 || z >= size then
    invalid_arg "Board.index: coordinate out of range";
  x + (size * y) + (size * size * z)

let coords i =
  if i < 0 || i >= cells then invalid_arg "Board.coords: index out of range";
  (i mod size, i / size mod size, i / (size * size))

let to_move b = if b.stones land 1 = 0 then X else O

let bit i = Int64.shift_left 1L i

let occupied b = Int64.logor b.x_stones b.o_stones

let cell b i =
  if i < 0 || i >= cells then invalid_arg "Board.cell: index out of range";
  if Int64.logand b.x_stones (bit i) <> 0L then Some X
  else if Int64.logand b.o_stones (bit i) <> 0L then Some O
  else None

let move_count b = b.stones

(* The 76 winning lines of the 4x4x4 cube: 48 axis-parallel rows, 24 face
   diagonals (two per plane, four planes per axis, three axes), 4 space
   diagonals. *)
let lines =
  let line_of_points points =
    Array.of_list (List.map (fun (x, y, z) -> index ~x ~y ~z) points)
  in
  let range = [ 0; 1; 2; 3 ] in
  let axis_rows =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            [
              line_of_points (List.map (fun i -> (i, a, b)) range);
              line_of_points (List.map (fun i -> (a, i, b)) range);
              line_of_points (List.map (fun i -> (a, b, i)) range);
            ])
          range)
      range
  in
  let face_diagonals =
    List.concat_map
      (fun a ->
        [
          (* Diagonals of the z = a plane. *)
          line_of_points (List.map (fun i -> (i, i, a)) range);
          line_of_points (List.map (fun i -> (i, 3 - i, a)) range);
          (* Diagonals of the y = a plane. *)
          line_of_points (List.map (fun i -> (i, a, i)) range);
          line_of_points (List.map (fun i -> (i, a, 3 - i)) range);
          (* Diagonals of the x = a plane. *)
          line_of_points (List.map (fun i -> (a, i, i)) range);
          line_of_points (List.map (fun i -> (a, i, 3 - i)) range);
        ])
      range
  in
  let space_diagonals =
    [
      line_of_points (List.map (fun i -> (i, i, i)) range);
      line_of_points (List.map (fun i -> (i, i, 3 - i)) range);
      line_of_points (List.map (fun i -> (i, 3 - i, i)) range);
      line_of_points (List.map (fun i -> (3 - i, i, i)) range);
    ]
  in
  Array.of_list (axis_rows @ face_diagonals @ space_diagonals)

(* Bit masks of each line, and for each cell the lines through it — used to
   update win state incrementally. *)
let line_masks =
  Array.map (Array.fold_left (fun acc i -> Int64.logor acc (bit i)) 0L) lines

let holds_line stones =
  Array.exists (fun mask -> Int64.logand stones mask = mask) line_masks

let winner b =
  if holds_line b.x_stones then Some X else if holds_line b.o_stones then Some O else None

let is_full b = b.stones = cells

let play b i =
  if i < 0 || i >= cells then invalid_arg "Board.play: index out of range";
  if Int64.logand (occupied b) (bit i) <> 0L then invalid_arg "Board.play: cell occupied";
  match to_move b with
  | X -> { b with x_stones = Int64.logor b.x_stones (bit i); stones = b.stones + 1 }
  | O -> { b with o_stones = Int64.logor b.o_stones (bit i); stones = b.stones + 1 }

let legal_moves b =
  if winner b <> None then []
  else begin
    let taken = occupied b in
    let rec collect i acc =
      if i < 0 then acc
      else collect (i - 1) (if Int64.logand taken (bit i) = 0L then i :: acc else acc)
    in
    collect (cells - 1) []
  end

let win_score = 1_000_000

(* Popcount of a line intersection: at most 4 bits are set. *)
let rec popcount64 v acc =
  if v = 0L then acc else popcount64 (Int64.logand v (Int64.sub v 1L)) (acc + 1)

let evaluate b =
  match winner b with
  | Some X -> win_score
  | Some O -> -win_score
  | None ->
    (* For each line open to exactly one player, award 10^(stones-1). *)
    let score = ref 0 in
    Array.iter
      (fun mask ->
        let xs = popcount64 (Int64.logand b.x_stones mask) 0 in
        let os = popcount64 (Int64.logand b.o_stones mask) 0 in
        if os = 0 && xs > 0 then
          score := !score + (match xs with 1 -> 1 | 2 -> 10 | 3 -> 100 | _ -> 0)
        else if xs = 0 && os > 0 then
          score := !score - (match os with 1 -> 1 | 2 -> 10 | 3 -> 100 | _ -> 0))
      line_masks;
    !score

let evaluate_for_side_to_move b =
  match to_move b with X -> evaluate b | O -> -evaluate b

let to_string b =
  let buffer = Buffer.create 256 in
  for z = 0 to size - 1 do
    Buffer.add_string buffer (Printf.sprintf "z=%d\n" z);
    for y = 0 to size - 1 do
      for x = 0 to size - 1 do
        let c =
          match cell b (index ~x ~y ~z) with Some X -> 'X' | Some O -> 'O' | None -> '.'
        in
        Buffer.add_char buffer c;
        if x < size - 1 then Buffer.add_char buffer ' '
      done;
      Buffer.add_char buffer '\n'
    done
  done;
  Buffer.contents buffer
