open Cpool_sim

type 's problem = {
  roots : 's list;
  children : 's -> 's list;
  is_solution : 's -> bool;
}

let sequential p =
  let solutions = ref 0 and nodes = ref 0 in
  let rec visit state =
    incr nodes;
    if p.is_solution state then incr solutions;
    List.iter visit (p.children state)
  in
  List.iter visit p.roots;
  (!solutions, !nodes)

type config = {
  workers : int;
  scheduler : Parallel.scheduler;
  expand_cost : float;
  visit_cost : float;
  seed : int64;
  cost : Topology.cost_model;
}

let default_config =
  {
    workers = 16;
    scheduler = Parallel.Pool_scheduler Cpool.Pool.Linear;
    expand_cost = 14.0;
    visit_cost = 300.0;
    seed = 1L;
    cost = Topology.butterfly;
  }

type report = {
  solutions : int;
  nodes : int;
  duration : float;
  pool_totals : Cpool.Pool.totals option;
}

let solve p config =
  if config.workers <= 0 then invalid_arg "Backtrack.solve: workers must be positive";
  let engine = Engine.create ~cost:config.cost ~nodes:config.workers ~seed:config.seed () in
  let pool, work_list =
    match config.scheduler with
    | Parallel.Pool_scheduler kind ->
      let pool =
        Cpool.Pool.create
          {
            Cpool.Pool.default_config with
            segments = config.workers;
            kind;
            profile = Cpool.Segment.Boxed;
          }
      in
      (Some pool, Work_list.of_pool pool)
    | Parallel.Stack_scheduler ->
      let wl, _stats = Work_list.global_stack () in
      (None, wl)
  in
  let solutions = ref 0 and nodes = ref 0 in
  let worker me () =
    work_list.Work_list.join ();
    if me = 0 then List.iter (fun root -> work_list.Work_list.add ~me root) p.roots;
    let rec loop () =
      match work_list.Work_list.remove ~me with
      | Some state ->
        Engine.delay config.visit_cost;
        incr nodes;
        if p.is_solution state then incr solutions;
        let kids = p.children state in
        Engine.delay (config.expand_cost *. float_of_int (List.length kids));
        List.iter (fun kid -> work_list.Work_list.add ~me kid) kids;
        loop ()
      | None -> ()
    in
    loop ();
    work_list.Work_list.leave ()
  in
  for i = 0 to config.workers - 1 do
    ignore (Engine.spawn engine ~node:i ~name:(Printf.sprintf "bt%d" i) (worker i))
  done;
  (match Engine.run engine with
  | Engine.Completed -> ()
  | Engine.Deadlocked names -> failwith ("Backtrack.solve: deadlock: " ^ String.concat "," names)
  | Engine.Hit_limit -> assert false);
  {
    solutions = !solutions;
    nodes = !nodes;
    duration = Engine.now engine;
    pool_totals = Option.map Cpool.Pool.totals pool;
  }
