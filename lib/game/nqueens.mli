(** The N-Queens enumeration as a backtracking problem.

    A state is a prefix of rows with non-attacking queens, encoded with the
    standard column/diagonal bitmasks so successor generation is O(n). The
    canonical DIB-style workload: highly irregular subtree sizes, which is
    exactly what the pool's steal-half balancing is for. *)

type state

val initial : n:int -> state
(** [initial ~n] is the empty board for an [n x n] problem. Raises
    [Invalid_argument] unless [1 <= n <= 30]. *)

val row : state -> int
(** [row s] is the number of queens placed so far. *)

val problem : n:int -> state Backtrack.problem
(** [problem ~n] enumerates all complete placements; a solution is a state
    with [n] queens. *)

val known_solutions : int -> int option
(** [known_solutions n] is the published solution count for small [n]
    (1..12), used by tests and sanity checks. *)
