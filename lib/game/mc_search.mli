(** The paper's applications on real domains, via the task scheduler.

    {!Parallel} and {!Backtrack.solve} run minimax and backtracking on the
    {e simulated} machine; this module runs the same two workloads on real
    OCaml 5 domains through {!Cpool_tasks.Mc_task}, shaped so the parallel
    answer provably equals the sequential reference:

    - {!minimax_value} forks a future per move down to a fork-depth
      frontier and completes each frontier subtree with {!Minimax.value},
      so by induction it returns {e exactly} [Minimax.value ~plies b];
    - {!backtrack_count} forks per child down to a depth frontier and
      finishes each subtree with the same DFS as {!Backtrack.sequential},
      so solutions and node counts match it exactly.

    The fork frontier controls task grain: depth [d] over branching [b]
    yields ~[b^d] tasks, enough for steals to matter without drowning the
    run in scheduling overhead (Cilk's granularity story). *)

val minimax_value :
  Cpool_tasks.Mc_task.t -> ?fork_plies:int -> plies:int -> Board.t -> int
(** [minimax_value t ~plies b] is [Minimax.value ~plies b], computed by
    forking one future per legal move for the first [fork_plies] (default
    [2]) plies and searching the rest sequentially inside each task.
    Callable from outside the scheduler's workers (the caller's awaits
    only poll; the workers do all the searching). Raises
    [Invalid_argument] if [plies < 0] or [fork_plies < 0]. *)

val backtrack_count :
  Cpool_tasks.Mc_task.t -> ?fork_depth:int -> 's Backtrack.problem -> int * int
(** [backtrack_count t p] is [(solutions, nodes)], equal to
    [Backtrack.sequential p]: one future per tree node for the first
    [fork_depth] (default [3]) levels below the roots, plain DFS below
    that. Raises [Invalid_argument] if [fork_depth < 0]. *)

val nqueens_solutions :
  ?fork_depth:int -> n:int -> Cpool_tasks.Mc_task.t -> int * int
(** [nqueens_solutions ~n t] is {!backtrack_count} over
    [Nqueens.problem ~n] — [(solutions, nodes)], where [solutions] must
    equal [Nqueens.known_solutions n] for the published sizes. *)
