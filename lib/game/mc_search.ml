module Mc_task = Cpool_tasks.Mc_task

(* Fork a future per move while both budgets last, then drop into the
   sequential searcher. Equality with [Minimax.value] is by induction:
   the frontier calls ARE [Minimax.value], and above it negamax over the
   same move list combines the same subtree values. *)
let rec par_negamax t fork plies board =
  if fork = 0 || plies = 0 then Minimax.value ~plies board
  else
    match Board.legal_moves board with
    | [] -> Minimax.value ~plies board
    | moves ->
      let futures =
        List.map
          (fun move ->
            Mc_task.fork t (fun () ->
                -par_negamax t (fork - 1) (plies - 1) (Board.play board move)))
          moves
      in
      List.fold_left (fun best f -> max best (Mc_task.await f)) min_int futures

let minimax_value t ?(fork_plies = 2) ~plies board =
  if plies < 0 then invalid_arg "Mc_search.minimax_value: negative plies";
  if fork_plies < 0 then invalid_arg "Mc_search.minimax_value: negative fork_plies";
  par_negamax t fork_plies plies board

(* Below the fork frontier: the same DFS as Backtrack.sequential, but
   returning the counts so subtree tallies combine functionally. *)
let rec seq_visit (p : _ Backtrack.problem) state =
  let here = if p.is_solution state then 1 else 0 in
  List.fold_left
    (fun (sols, nodes) child ->
      let s, n = seq_visit p child in
      (sols + s, nodes + n))
    (here, 1) (p.children state)

let rec par_visit t fork (p : _ Backtrack.problem) state =
  if fork = 0 then seq_visit p state
  else
    let here = if p.is_solution state then 1 else 0 in
    let futures =
      List.map
        (fun child -> Mc_task.fork t (fun () -> par_visit t (fork - 1) p child))
        (p.children state)
    in
    List.fold_left
      (fun (sols, nodes) f ->
        let s, n = Mc_task.await f in
        (sols + s, nodes + n))
      (here, 1) futures

let backtrack_count t ?(fork_depth = 3) (p : _ Backtrack.problem) =
  if fork_depth < 0 then invalid_arg "Mc_search.backtrack_count: negative fork_depth";
  (* One future per root so even a single-root problem leaves the caller
     immediately and runs entirely on the workers. *)
  let futures =
    List.map (fun r -> Mc_task.fork t (fun () -> par_visit t fork_depth p r)) p.roots
  in
  List.fold_left
    (fun (sols, nodes) f ->
      let s, n = Mc_task.await f in
      (sols + s, nodes + n))
    (0, 0) futures

let nqueens_solutions ?fork_depth ~n t =
  backtrack_count t ?fork_depth (Nqueens.problem ~n)
