(** Section 4.2: the effect of balancing the producers.

    For each producer count and both arrangements, the quantities the paper
    discusses: mean add/remove/steal times, steal frequency, segments
    examined per steal and elements stolen per steal. Findings to
    reproduce: "Balancing the producers consistently lowered the average
    time for add operations, remove operations, and steals. ... The
    frequency of steals decreased ... There was, however, no consistent
    significant difference in the number of segments examined." *)

type cell = {
  add_time : float;
  remove_time : float;
  steal_time : float;
  steal_fraction : float;
  segments_per_steal : float;
  elements_per_steal : float;
}

type row = { producers : int; unbalanced : cell; balanced : cell }

type result = { kind : Cpool.Pool.kind; rows : row list }

val run : ?kind:Cpool.Pool.kind -> ?producer_counts:int list -> Exp_config.t -> result
(** Default algorithm: [Linear] (the paper's Section 4.2 walks through the
    linear case); default producer counts 1..participants-1. *)

val render : result -> string

val balanced_wins : result -> int * int
(** [(improved, total)] — at how many producer counts balancing strictly
    lowered the mean remove time (by more than 1%), of the rows where both
    sides have data. Remove time is where the paper's improvement
    concentrates (fewer, larger steals mean most removes stay local). *)
