open Cpool_workload
open Cpool_metrics

type result = {
  kind : Cpool.Pool.kind;
  balanced : bool;
  producers : int list;
  trace : Trace.t;
  producer_steals : (int * int) list;
  first_steal_time : (int * float option) list;
}

(* Time of the first size drop of >= 2 in [seg]'s series — its first steal. *)
let first_steal trace ~seg =
  let result = ref None in
  let prev = ref 0 in
  List.iter
    (fun (time, s, size) ->
      if s = seg then begin
        if !result = None && size <= !prev - 2 then result := Some time;
        prev := size
      end)
    (Trace.events trace);
  !result

let run ~kind ~balanced ?(producers = 5) cfg =
  let p = cfg.Exp_config.participants in
  let roles =
    if balanced then Role.balanced_producers ~participants:p ~producers
    else Role.contiguous_producers ~participants:p ~producers
  in
  let spec = Exp_config.spec cfg ~kind ~record_trace:true roles in
  let r = Driver.run spec in
  let trace =
    match r.Driver.trace with
    | Some t -> t
    | None -> assert false
  in
  let producer_positions = Role.producer_positions roles in
  {
    kind;
    balanced;
    producers = producer_positions;
    trace;
    producer_steals =
      List.map (fun seg -> (seg, Trace.steals_observed trace ~seg)) producer_positions;
    first_steal_time = List.map (fun seg -> (seg, first_steal trace ~seg)) producer_positions;
  }

let untouched_producers r =
  List.filter_map (fun (seg, steals) -> if steals = 0 then Some seg else None) r.producer_steals

let render ~figure r =
  let p = Trace.segments r.trace in
  let labels =
    Array.init p (fun i ->
        if List.mem i r.producers then Printf.sprintf "P%02d" i else Printf.sprintf "c%02d" i)
  in
  let grid = Trace.grid r.trace ~buckets:72 in
  let steal_rows =
    List.map
      (fun ((seg, n), (_, first)) ->
        [
          Printf.sprintf "producer %d" seg;
          string_of_int n;
          (match first with
          | Some t -> Printf.sprintf "%.0f ms" (t /. 1000.0)
          | None -> "never");
        ])
      (List.combine r.producer_steals r.first_steal_time)
  in
  String.concat "\n"
    [
      Printf.sprintf
        "%s -- segment sizes over time: %s algorithm, %d producers (%s arrangement)" figure
        (Cpool.Pool.kind_to_string r.kind)
        (List.length r.producers)
        (if r.balanced then "balanced" else "contiguous/unbalanced");
      Render.strip_chart ~labels grid;
      Render.table ~title:"Steals suffered by each producer's segment"
        ~headers:[ "segment"; "steals"; "first stolen at" ] ~rows:steal_rows ();
      (match untouched_producers r with
      | [] -> "every producer was stolen from"
      | untouched ->
        Printf.sprintf "producers never stolen from: %s"
          (String.concat ", " (List.map string_of_int untouched)));
    ]
