(** Extension experiment: time-varying workloads (paper Sections 3.3/3.5).

    "It is easy to imagine an application which has an initial phase with
    more than sufficient adds (as the pool is filled), a stable phase, and
    a more sparse termination phase (as the pool is emptied). Our
    experiments have essentially examined these phases separately." This
    experiment runs the three phases *back to back on one pool* and checks
    that each phase behaves like its standalone counterpart — plus a
    dynamic producer/consumer schedule where the producer set rotates
    between phases (Section 3.3's "the identity of the processes acting as
    producers may change dynamically over time"). *)

type phase_report = {
  name : string;
  op_time : float;
  steal_fraction : float;
  aborts : int;
  pool_size_after : int;
}

type result = {
  kind : Cpool.Pool.kind;
  lifecycle : phase_report list;  (** fill / stable / drain. *)
  rotation : phase_report list;  (** producer set rotated each phase. *)
}

val run : ?kind:Cpool.Pool.kind -> Exp_config.t -> result

val render : result -> string
