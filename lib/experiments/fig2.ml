open Cpool_workload
open Cpool_metrics

type point = {
  x_add_percent : float;
  op_time : float;
  steal_fraction : float;
  label : string;
}

type result = {
  kind : Cpool.Pool.kind;
  random_series : point list;
  producer_consumer_series : point list;
}

let measured_add_percent results =
  let adds, ops =
    List.fold_left
      (fun (adds, ops) r ->
        ( adds + r.Driver.pool_totals.Cpool.Pool.adds,
          ops + r.Driver.ops_performed ))
      (0, 0) results
  in
  if ops = 0 then Float.nan else 100.0 *. float_of_int adds /. float_of_int ops

let mean_steal_fraction results =
  let fractions = List.map Driver.steal_fraction results in
  let finite = List.filter Float.is_finite fractions in
  match finite with
  | [] -> Float.nan
  | _ -> List.fold_left ( +. ) 0.0 finite /. float_of_int (List.length finite)

let point_of_results ~label results =
  {
    x_add_percent = measured_add_percent results;
    op_time = Driver.mean_of (fun r -> r.Driver.op_time) results;
    steal_fraction = mean_steal_fraction results;
    label;
  }

let run ?(kind = Cpool.Pool.Tree) cfg =
  let p = cfg.Exp_config.participants in
  let random_series =
    List.init 11 (fun step ->
        let add_percent = 10 * step in
        let roles = Role.uniform_mix ~participants:p ~add_percent in
        let spec = Exp_config.spec cfg ~kind ~seed_offset:step roles in
        point_of_results
          ~label:(Printf.sprintf "random %d%% adds" add_percent)
          (Exp_config.trials cfg spec))
  in
  let producer_consumer_series =
    List.init (p + 1) (fun producers ->
        let roles = Role.contiguous_producers ~participants:p ~producers in
        let spec = Exp_config.spec cfg ~kind ~seed_offset:(100 + producers) roles in
        point_of_results
          ~label:(Printf.sprintf "%d producers" producers)
          (Exp_config.trials cfg spec))
  in
  { kind; random_series; producer_consumer_series }

let row_of_point p =
  [
    p.label;
    Render.float_cell p.x_add_percent;
    Render.float_cell (p.op_time /. 1000.0);
    Render.float_cell (100.0 *. p.steal_fraction);
  ]

let render r =
  let headers = [ "condition"; "% adds (measured)"; "op time (ms)"; "% removes stealing" ] in
  let table series title =
    Render.table ~title ~headers ~rows:(List.map row_of_point series) ()
  in
  let to_xy series =
    List.filter_map
      (fun p ->
        if Float.is_finite p.x_add_percent && Float.is_finite p.op_time then
          Some (p.x_add_percent, p.op_time /. 1000.0)
        else None)
      series
  in
  String.concat "\n"
    [
      Printf.sprintf
        "Figure 2 -- average operation time vs job mix (%s traversal algorithm)"
        (Cpool.Pool.kind_to_string r.kind);
      table r.random_series "Random operations model";
      table r.producer_consumer_series "Producer/consumer model (contiguous producers)";
      Render.chart ~title:"Average operation time (ms) vs percent adds"
        ~x_label:"percent of operations that were adds" ~y_label:"ms per operation"
        [
          ("random ops", to_xy r.random_series);
          ("producer/consumer", to_xy r.producer_consumer_series);
        ];
    ]
