open Cpool_workload
open Cpool_metrics

type row = { condition : string; atomic_probe : float; locking_probe : float }

type result = { kind : Cpool.Pool.kind; rows : row list }

let run ?(kind = Cpool.Pool.Tree) cfg =
  let p = cfg.Exp_config.participants in
  let conditions =
    List.map
      (fun add_percent ->
        ( Printf.sprintf "random %d%%" add_percent,
          Role.uniform_mix ~participants:p ~add_percent,
          1500 + add_percent ))
      [ 10; 30; 50; 70 ]
    @ List.map
        (fun producers ->
          ( Printf.sprintf "p/c %d prod (contiguous)" producers,
            Role.contiguous_producers ~participants:p ~producers,
            1600 + producers ))
        [ 1; 2; 5 ]
  in
  let measure locking_probes roles seed_offset =
    let base = Exp_config.spec cfg ~kind roles ~seed_offset in
    let spec =
      { base with Driver.pool = { base.Driver.pool with Cpool.Pool.locking_probes } }
    in
    Driver.mean_of (fun r -> r.Driver.op_time) (Exp_config.trials cfg spec)
  in
  {
    kind;
    rows =
      List.map
        (fun (condition, roles, seed_offset) ->
          {
            condition;
            atomic_probe = measure false roles seed_offset;
            locking_probe = measure true roles (seed_offset + 53);
          })
        conditions;
  }

let render r =
  let headers = [ "condition"; "atomic probes (us)"; "locking probes (us)"; "inflation" ] in
  let rows =
    List.map
      (fun row ->
        [
          row.condition;
          Render.float_cell row.atomic_probe;
          Render.float_cell row.locking_probe;
          (if Float.is_finite row.atomic_probe && row.atomic_probe > 0.0 then
             Printf.sprintf "%.1fx" (row.locking_probe /. row.atomic_probe)
           else "-");
        ])
      r.rows
  in
  String.concat "\n"
    [
      Printf.sprintf "Ablation -- locking vs atomic probes (%s algorithm)"
        (Cpool.Pool.kind_to_string r.kind);
      Render.table ~headers ~rows ();
      "Locking probes make searchers queue against the producers' own operations,";
      "inflating sparse-mix times toward the paper's measured magnitudes; the";
      "sparse-slow / sufficient-fast shape is unchanged.";
    ]
