(** Figures 3-6: segment sizes over time under the producer/consumer model.

    One traced run per figure: the linear (Figs 3-4) or tree (Figs 5-6)
    algorithm with 5 producers and 11 consumers, producers either contiguous
    (unbalanced, Figs 3 and 5) or spread out (balanced, Figs 4 and 6). The
    paper reads consumer *bunching* off these plots: with contiguous
    producers the consumers drain producer segments one at a time in ring
    order and some producers are never stolen from; balancing spreads the
    steals over all producers. *)

type result = {
  kind : Cpool.Pool.kind;
  balanced : bool;
  producers : int list;  (** Producer positions. *)
  trace : Cpool_metrics.Trace.t;
  producer_steals : (int * int) list;
      (** For each producer position, how many steals its segment suffered
          (size drops of two or more). *)
  first_steal_time : (int * float option) list;
      (** For each producer position, when its segment was first stolen
          from. With contiguous producers these times are staggered in ring
          order (the bunch drains one producer at a time); balanced
          arrangements are stolen from nearly simultaneously. *)
}

val run : kind:Cpool.Pool.kind -> balanced:bool -> ?producers:int -> Exp_config.t -> result
(** [run ~kind ~balanced cfg] performs one traced trial with [producers]
    (default 5) producers. *)

val render : figure:string -> result -> string
(** Strip chart of all segments over time, producers marked, plus the
    per-producer steal counts. *)

val untouched_producers : result -> int list
(** Producers whose segments were never stolen from — the paper's "producer
    4 is never stolen from" effect. *)
