open Cpool_workload
open Cpool_metrics

type cell = {
  op_time : float;
  segments_per_steal : float;
  elements_per_steal : float;
  steal_fraction : float;
}

type row = { condition : string; add_percent : int; by_kind : (Cpool.Pool.kind * cell) list }

type result = { random_rows : row list; balanced_pc_rows : row list }

let cell_of_trials results =
  let fractions = List.map Driver.steal_fraction results in
  let finite = List.filter Float.is_finite fractions in
  {
    op_time = Driver.mean_of (fun r -> r.Driver.op_time) results;
    segments_per_steal = Driver.mean_of (fun r -> r.Driver.segments_per_steal) results;
    elements_per_steal = Driver.mean_of (fun r -> r.Driver.elements_per_steal) results;
    steal_fraction =
      (match finite with
      | [] -> Float.nan
      | _ -> List.fold_left ( +. ) 0.0 finite /. float_of_int (List.length finite));
  }

let sweep cfg ~conditions =
  List.map
    (fun (condition, add_percent, roles, seed_offset) ->
      {
        condition;
        add_percent;
        by_kind =
          List.map
            (fun kind ->
              let spec = Exp_config.spec cfg ~kind ~seed_offset roles in
              (kind, cell_of_trials (Exp_config.trials cfg spec)))
            Cpool.Pool.all_kinds;
      })
    conditions

let run cfg =
  let p = cfg.Exp_config.participants in
  let random_conditions =
    List.init 11 (fun step ->
        let add_percent = 10 * step in
        ( Printf.sprintf "random %d%%" add_percent,
          add_percent,
          Role.uniform_mix ~participants:p ~add_percent,
          400 + step ))
  in
  let pc_conditions =
    (* Producer counts giving the same nominal mixes: k of p producers is
       100k/p% adds. *)
    List.init (p + 1) (fun producers ->
        ( Printf.sprintf "balanced p/c %d prod" producers,
          100 * producers / p,
          Role.balanced_producers ~participants:p ~producers,
          500 + producers ))
  in
  {
    random_rows = sweep cfg ~conditions:random_conditions;
    balanced_pc_rows = sweep cfg ~conditions:pc_conditions;
  }

let kind_cell row kind = List.assoc kind row.by_kind

let render_block ~title rows =
  let headers =
    [ "condition"; "linear ms"; "random ms"; "tree ms"; "segs/steal (lin)"; "segs/steal (rnd)";
      "segs/steal (tree)"; "elems/steal (lin)"; "elems/steal (rnd)"; "elems/steal (tree)" ]
  in
  let row_cells row =
    let c kind = kind_cell row kind in
    let lin = c Cpool.Pool.Linear and rnd = c Cpool.Pool.Random and tre = c Cpool.Pool.Tree in
    [
      row.condition;
      Render.float_cell (lin.op_time /. 1000.0);
      Render.float_cell (rnd.op_time /. 1000.0);
      Render.float_cell (tre.op_time /. 1000.0);
      Render.float_cell lin.segments_per_steal;
      Render.float_cell rnd.segments_per_steal;
      Render.float_cell tre.segments_per_steal;
      Render.float_cell lin.elements_per_steal;
      Render.float_cell rnd.elements_per_steal;
      Render.float_cell tre.elements_per_steal;
    ]
  in
  Render.table ~title ~headers ~rows:(List.map row_cells rows) ()

let render r =
  let chart rows title =
    let series kind =
      ( Cpool.Pool.kind_to_string kind,
        List.filter_map
          (fun row ->
            let c = kind_cell row kind in
            if Float.is_finite c.op_time then
              Some (float_of_int row.add_percent, c.op_time /. 1000.0)
            else None)
          rows )
    in
    Render.chart ~title ~x_label:"percent adds (nominal)" ~y_label:"ms per operation"
      (List.map series Cpool.Pool.all_kinds)
  in
  String.concat "\n"
    [
      "Section 4.3 -- comparison of search algorithms";
      render_block ~title:"Random operations model" r.random_rows;
      chart r.random_rows "Op time by algorithm (random model)";
      render_block ~title:"Balanced producer/consumer model" r.balanced_pc_rows;
      chart r.balanced_pc_rows "Op time by algorithm (balanced producer/consumer)";
    ]
