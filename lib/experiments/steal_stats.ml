open Cpool_workload
open Cpool_metrics

type cell = {
  add_time : float;
  remove_time : float;
  steal_time : float;
  steal_fraction : float;
  segments_per_steal : float;
  elements_per_steal : float;
}

type row = { producers : int; unbalanced : cell; balanced : cell }

type result = { kind : Cpool.Pool.kind; rows : row list }

let cell_of_trials results =
  let fractions = List.filter Float.is_finite (List.map Driver.steal_fraction results) in
  {
    add_time = Driver.mean_of (fun r -> r.Driver.add_time) results;
    remove_time = Driver.mean_of (fun r -> r.Driver.remove_time) results;
    steal_time = Driver.mean_of (fun r -> r.Driver.steal_time) results;
    steal_fraction =
      (match fractions with
      | [] -> Float.nan
      | _ -> List.fold_left ( +. ) 0.0 fractions /. float_of_int (List.length fractions));
    segments_per_steal = Driver.mean_of (fun r -> r.Driver.segments_per_steal) results;
    elements_per_steal = Driver.mean_of (fun r -> r.Driver.elements_per_steal) results;
  }

let measure cfg ~kind ~balanced ~producers ~seed_offset =
  let p = cfg.Exp_config.participants in
  let roles =
    if balanced then Role.balanced_producers ~participants:p ~producers
    else Role.contiguous_producers ~participants:p ~producers
  in
  cell_of_trials (Exp_config.trials cfg (Exp_config.spec cfg ~kind ~seed_offset roles))

let run ?(kind = Cpool.Pool.Linear) ?producer_counts cfg =
  let p = cfg.Exp_config.participants in
  let producer_counts =
    match producer_counts with
    | Some cs -> cs
    | None -> List.init (p - 1) (fun i -> i + 1)
  in
  {
    kind;
    rows =
      List.map
        (fun producers ->
          {
            producers;
            unbalanced =
              measure cfg ~kind ~balanced:false ~producers ~seed_offset:(800 + producers);
            balanced = measure cfg ~kind ~balanced:true ~producers ~seed_offset:(900 + producers);
          })
        producer_counts;
  }

let balanced_wins r =
  List.fold_left
    (fun (wins, total) row ->
      if Float.is_finite row.unbalanced.remove_time && Float.is_finite row.balanced.remove_time
      then
        ( (if row.balanced.remove_time < row.unbalanced.remove_time *. 0.99 then wins + 1
           else wins),
          total + 1 )
      else (wins, total))
    (0, 0) r.rows

let render r =
  let headers =
    [ "producers"; "arrangement"; "add us"; "remove us"; "steal us"; "% removes stealing";
      "segs/steal"; "elems/steal" ]
  in
  let cell_row producers name c =
    [
      string_of_int producers;
      name;
      Render.float_cell c.add_time;
      Render.float_cell c.remove_time;
      Render.float_cell c.steal_time;
      Render.float_cell (100.0 *. c.steal_fraction);
      Render.float_cell c.segments_per_steal;
      Render.float_cell c.elements_per_steal;
    ]
  in
  let rows =
    List.concat_map
      (fun row ->
        [
          cell_row row.producers "contiguous" row.unbalanced;
          cell_row row.producers "balanced" row.balanced;
        ])
      r.rows
  in
  let wins, total = balanced_wins r in
  String.concat "\n"
    [
      Printf.sprintf "Section 4.2 -- balancing the producers (%s algorithm)"
        (Cpool.Pool.kind_to_string r.kind);
      Render.table ~headers ~rows ();
      Printf.sprintf
        "balanced arrangement lowered mean remove time (>1%%) at %d of %d producer counts" wins
        total;
    ]
