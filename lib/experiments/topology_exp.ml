open Cpool_workload
open Cpool_metrics

type point = {
  scale : float;
  far : float;
  by_kind : (Cpool.Pool.kind * float) list;
}

type result = {
  source : string;
  topo : Cpool_topology.t;
  points : point list;
}

let scales = [ 0.0; 0.5; 1.0; 2.0 ]

let load cfg =
  match cfg.Exp_config.topo_file with
  | None -> (Cpool_topology.two_group ~nodes:4 (), "built-in two-group preset")
  | Some file -> (
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error msg -> failwith msg
    | source -> (
      match Cpool_topology.parse source with
      | Ok t -> (t, file)
      | Error msg -> failwith (Printf.sprintf "%s: %s" file msg)))

let sweep cfg topo ~roles ~seed_offset scales =
  List.map
    (fun scale ->
      let t = Cpool_topology.scale_remote topo scale in
      let cost = Cpool_sim.Topology.with_topology t Cpool_sim.Topology.butterfly in
      {
        scale;
        far = Cpool_topology.max_distance t;
        by_kind =
          List.map
            (fun kind ->
              let spec = Exp_config.spec cfg ~kind ~seed_offset roles in
              let spec = { spec with Driver.cost } in
              (kind, Driver.mean_of (fun r -> r.Driver.op_time) (Exp_config.trials cfg spec)))
            Cpool.Pool.all_kinds;
      })
    scales

let run ?(scales = scales) cfg =
  let topo, source = load cfg in
  let p = Cpool_topology.nodes topo in
  let cfg = { cfg with Exp_config.participants = p } in
  let roles = Role.uniform_mix ~participants:p ~add_percent:30 in
  { source; topo; points = sweep cfg topo ~roles ~seed_offset:800 scales }

let slowdown r kind =
  let time scale =
    List.find_map
      (fun pt -> if pt.scale = scale then List.assoc_opt kind pt.by_kind else None)
      r.points
  in
  match (time 0.0, time 1.0) with
  | Some base, Some full when base > 0.0 -> full /. base
  | _ -> Float.nan

let render r =
  let headers =
    [ "remote scale"; "far dist"; "linear ms"; "random ms"; "tree ms"; "slowdown" ]
  in
  let base =
    match r.points with
    | { by_kind; _ } :: _ -> List.assoc Cpool.Pool.Linear by_kind
    | [] -> Float.nan
  in
  let rows =
    List.map
      (fun pt ->
        let v kind = List.assoc kind pt.by_kind /. 1000.0 in
        [
          Printf.sprintf "%g" pt.scale;
          Printf.sprintf "%g" pt.far;
          Render.float_cell (v Cpool.Pool.Linear);
          Render.float_cell (v Cpool.Pool.Random);
          Render.float_cell (v Cpool.Pool.Tree);
          Printf.sprintf "%.2fx" (List.assoc Cpool.Pool.Linear pt.by_kind /. base);
        ])
      r.points
  in
  String.concat "\n"
    [
      Printf.sprintf "Topology sweep -- locality model %s (%s, %d nodes)"
        (Cpool_topology.label r.topo) r.source
        (Cpool_topology.nodes r.topo);
      Render.table
        ~title:"mean op time vs remote-penalty scale (30% adds, steal-heavy)"
        ~headers ~rows ();
      "remote scale k maps every distance d to 1 + (d - 1)k: 0 is a uniform machine,";
      "1 the declared topology, 2 doubles the remote penalty. slowdown is the linear";
      "algorithm's op time relative to the uniform machine -- the simulator's";
      "prediction for what the real-domain topology benchmark should measure.";
    ]
