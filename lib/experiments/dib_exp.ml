open Cpool_game
open Cpool_metrics

type row = {
  scheduler : Parallel.scheduler;
  workers : int;
  duration : float;
  speedup : float;
  steals : int;
}

type result = { n : int; solutions : int; nodes : int; rows : row list }

let schedulers =
  [
    Parallel.Pool_scheduler Cpool.Pool.Linear;
    Parallel.Pool_scheduler Cpool.Pool.Random;
    Parallel.Pool_scheduler Cpool.Pool.Tree;
    Parallel.Stack_scheduler;
  ]

let run cfg =
  let n = cfg.Exp_config.dib_n in
  let problem = Nqueens.problem ~n in
  let expected_solutions, expected_nodes = Backtrack.sequential problem in
  let rows =
    List.concat_map
      (fun scheduler ->
        let reports =
          List.map
            (fun workers ->
              let report =
                Backtrack.solve problem
                  {
                    Backtrack.default_config with
                    workers;
                    scheduler;
                    seed = cfg.Exp_config.base_seed;
                  }
              in
              if report.Backtrack.solutions <> expected_solutions then
                failwith
                  (Printf.sprintf "Dib: %s/%d found %d solutions, expected %d"
                     (Parallel.scheduler_to_string scheduler)
                     workers report.Backtrack.solutions expected_solutions);
              (workers, report))
            cfg.Exp_config.app_workers
        in
        let t1 =
          match reports with (_, first) :: _ -> first.Backtrack.duration | [] -> Float.nan
        in
        List.map
          (fun (workers, report) ->
            {
              scheduler;
              workers;
              duration = report.Backtrack.duration;
              speedup = t1 /. report.Backtrack.duration;
              steals =
                (match report.Backtrack.pool_totals with
                | Some t -> t.Cpool.Pool.steals
                | None -> 0);
            })
          reports)
      schedulers
  in
  { n; solutions = expected_solutions; nodes = expected_nodes; rows }

let render r =
  let headers = [ "scheduler"; "workers"; "elapsed (ms)"; "speedup"; "steals" ] in
  let rows =
    List.map
      (fun row ->
        [
          Parallel.scheduler_to_string row.scheduler;
          string_of_int row.workers;
          Render.float_cell (row.duration /. 1000.0);
          Render.float_cell row.speedup;
          string_of_int row.steals;
        ])
      r.rows
  in
  String.concat "\n"
    [
      Printf.sprintf
        "Second application (DIB shape) -- %d-queens backtracking: %d solutions, %d nodes" r.n
        r.solutions r.nodes;
      Render.table ~headers ~rows ();
      "Irregular subtrees are exactly what steal-half balancing is for: the pools";
      "stay near-linear while the global-lock stack saturates, matching the";
      "paper's report that DIB performed well with the simple search algorithms.";
    ]
