open Cpool_workload
open Cpool_metrics

type row = {
  condition : string;
  linear_op_time : float;
  hinted_op_time : float;
  delivery_fraction : float;
  linear_haul : float;
  hinted_haul : float;
}

type result = { rows : row list }

let measure cfg kind roles seed_offset =
  Exp_config.trials cfg (Exp_config.spec cfg ~kind roles ~seed_offset)

let run cfg =
  let p = cfg.Exp_config.participants in
  let conditions =
    List.map
      (fun producers ->
        ( Printf.sprintf "balanced p/c %d prod" producers,
          Role.balanced_producers ~participants:p ~producers,
          1200 + producers ))
      [ 1; 2; 3; 5 ]
    @ List.map
        (fun add_percent ->
          ( Printf.sprintf "random %d%%" add_percent,
            Role.uniform_mix ~participants:p ~add_percent,
            1300 + add_percent ))
        [ 10; 20; 30; 40 ]
  in
  let rows =
    List.map
      (fun (condition, roles, seed_offset) ->
        let linear = measure cfg Cpool.Pool.Linear roles seed_offset in
        let hinted = measure cfg Cpool.Pool.Hinted roles (seed_offset + 37) in
        let deliveries, adds =
          List.fold_left
            (fun (d, a) r ->
              ( d + r.Driver.pool_totals.Cpool.Pool.deliveries,
                a + r.Driver.pool_totals.Cpool.Pool.adds ))
            (0, 0) hinted
        in
        {
          condition;
          linear_op_time = Driver.mean_of (fun r -> r.Driver.op_time) linear;
          hinted_op_time = Driver.mean_of (fun r -> r.Driver.op_time) hinted;
          delivery_fraction =
            (if adds = 0 then Float.nan else float_of_int deliveries /. float_of_int adds);
          linear_haul = Driver.mean_of (fun r -> r.Driver.elements_per_steal) linear;
          hinted_haul = Driver.mean_of (fun r -> r.Driver.elements_per_steal) hinted;
        })
      conditions
  in
  { rows }

let render r =
  let headers =
    [ "condition"; "linear op us"; "hinted op us"; "% adds delivered"; "elems/steal (lin)";
      "elems/steal (hint)" ]
  in
  let rows =
    List.map
      (fun row ->
        [
          row.condition;
          Render.float_cell row.linear_op_time;
          Render.float_cell row.hinted_op_time;
          Render.float_cell (100.0 *. row.delivery_fraction);
          Render.float_cell row.linear_haul;
          Render.float_cell row.hinted_haul;
        ])
      r.rows
  in
  String.concat "\n"
    [
      "Extension (paper Section 5) -- hinted search vs plain linear";
      Render.table ~headers ~rows ();
      "Direct delivery forfeits the steal-half batching (compare the elems/steal";
      "columns) and adds pay the hint-board checks: the proposed extension loses";
      "to the simple linear algorithm on every steal-heavy workload.";
    ]
