(** Section 4.3: comparison of the three search algorithms.

    For each algorithm and both workload models the sweep reports mean
    operation time, segments examined per steal and elements stolen per
    steal. The paper's findings to reproduce: the three algorithms are
    nearly identical at sufficient mixes; at sparse mixes the tree
    algorithm's operation times compare unfavourably even though it
    examines *fewer* segments per steal and steals *more* elements. *)

type cell = {
  op_time : float;  (** Mean operation time, us. *)
  segments_per_steal : float;
  elements_per_steal : float;
  steal_fraction : float;
}

type row = {
  condition : string;  (** e.g. ["random 30% adds"]. *)
  add_percent : int;  (** Nominal mix of the condition. *)
  by_kind : (Cpool.Pool.kind * cell) list;
}

type result = { random_rows : row list; balanced_pc_rows : row list }

val run : Exp_config.t -> result
(** [run cfg] sweeps mixes 0..100 by 10 (random model) and producer counts
    (balanced producer/consumer model) for all three algorithms. *)

val render : result -> string
