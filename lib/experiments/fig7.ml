open Cpool_workload
open Cpool_metrics

type point = { producers : int; unbalanced : float; balanced : float }

type result = { kind : Cpool.Pool.kind; points : point list }

let elements_per_steal cfg ~kind ~balanced ~producers ~seed_offset =
  let p = cfg.Exp_config.participants in
  let roles =
    if balanced then Role.balanced_producers ~participants:p ~producers
    else Role.contiguous_producers ~participants:p ~producers
  in
  let spec = Exp_config.spec cfg ~kind ~seed_offset roles in
  Driver.mean_of (fun r -> r.Driver.elements_per_steal) (Exp_config.trials cfg spec)

let run ?(kind = Cpool.Pool.Tree) cfg =
  let p = cfg.Exp_config.participants in
  let points =
    List.init (p + 1) (fun producers ->
        {
          producers;
          unbalanced =
            elements_per_steal cfg ~kind ~balanced:false ~producers ~seed_offset:(200 + producers);
          balanced =
            elements_per_steal cfg ~kind ~balanced:true ~producers ~seed_offset:(300 + producers);
        })
  in
  { kind; points }

let render r =
  let rows =
    List.map
      (fun pt ->
        [
          string_of_int pt.producers;
          Render.float_cell pt.unbalanced;
          Render.float_cell pt.balanced;
        ])
      r.points
  in
  let series name get =
    List.filter_map
      (fun pt ->
        let v = get pt in
        if Float.is_finite v then Some (float_of_int pt.producers, v) else None)
      r.points
    |> fun pts -> (name, pts)
  in
  String.concat "\n"
    [
      Printf.sprintf
        "Figure 7 -- average elements stolen per steal vs producers (%s algorithm)"
        (Cpool.Pool.kind_to_string r.kind);
      Render.table
        ~headers:[ "producers"; "unbalanced (contiguous)"; "balanced" ]
        ~rows ();
      Render.chart ~title:"Elements stolen per steal" ~x_label:"number of producers"
        ~y_label:"elements per steal"
        [ series "unbalanced" (fun p -> p.unbalanced); series "balanced" (fun p -> p.balanced) ];
    ]
