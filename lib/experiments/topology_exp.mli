(** Topology sweep: the locality model's predicted cost of remoteness.

    Runs the simulator on the machine described by a {!Cpool_topology}
    (the [topo_file] of the config, or the built-in two-group preset) with
    the remote penalty scaled from "uniform machine" to "double the
    declared distance", and reports how mean operation time inflates. The
    same topology file drives [pools_bench mc-throughput --topology], so
    the table here is the prediction column of the predicted-vs-measured
    comparison in EXPERIMENTS.md. *)

type point = {
  scale : float;  (** Remote-penalty scale [k]: d becomes 1 + (d - 1)k. *)
  far : float;  (** The scaled topology's largest distance. *)
  by_kind : (Cpool.Pool.kind * float) list;  (** Mean op time, us. *)
}

type result = {
  source : string;  (** Where the topology came from (file or preset). *)
  topo : Cpool_topology.t;  (** The unscaled model. *)
  points : point list;
}

val scales : float list
(** Default remote-penalty scales: 0 (uniform), 0.5, 1 (as declared), 2. *)

val run : ?scales:float list -> Exp_config.t -> result
(** Runs with [participants] forced to the topology's node count so the
    simulated machine and the locality model agree. Raises [Failure] if
    the config's [topo_file] cannot be read or parsed. *)

val slowdown : result -> Cpool.Pool.kind -> float
(** [slowdown r kind] is the kind's mean op time at scale 1 relative to
    scale 0 — the predicted remote-penalty cost; [nan] if either point
    was not swept. *)

val render : result -> string
