(** Extension experiment: the Section 5 "hints" proposal, measured.

    The paper asks: "how might concurrent pools be modified so that
    searching processors leave hints in the pool, and elements added by
    another processor can be directed to the searching process[?]". This
    experiment implements that ({!Cpool.Pool.Hinted}: searchers announce on
    a hint board, adders deliver directly into an announced searcher's
    segment) and measures it against the plain linear algorithm on the
    steal-heavy workloads where it could plausibly help.

    Finding (recorded in EXPERIMENTS.md): direct delivery hands elements
    over one at a time, forfeiting the steal-half batching that lets a
    consumer bank elements for future local removes; adds also pay the
    hint-board checks. Hints lose to plain linear search on every sparse
    workload tested — the paper's broader moral ("the extra complexity
    need not pay off") extends to its own proposed extension. *)

type row = {
  condition : string;
  linear_op_time : float;
  hinted_op_time : float;
  delivery_fraction : float;  (** Deliveries / adds under [Hinted]. *)
  linear_haul : float;  (** Mean elements per steal, linear. *)
  hinted_haul : float;  (** Mean elements per steal, hinted. *)
}

type result = { rows : row list }

val run : Exp_config.t -> result

val render : result -> string
