(** Extension experiment: capacity-bounded segments.

    The paper's footnote: "the problem of an add operation encountering a
    full segment (if there is a limit imposed) could be handled in a
    symmetric fashion, adding remotely to a segment with sufficient
    capacity." This experiment imposes per-segment capacities on a
    growth-heavy workload (70% adds over the standard quota, so the pool
    tries to grow well past small bounds) and measures the symmetric
    spill mechanism: how often adds spill or get rejected, and what that
    does to add times. *)

type row = {
  capacity : int option;
  add_time : float;  (** Mean add time, us. *)
  spill_fraction : float;  (** Spilled adds / attempted adds. *)
  reject_fraction : float;  (** Rejected adds / attempted adds. *)
  final_fill : float;  (** Final pool size / total capacity ([nan] if unbounded). *)
}

type result = { kind : Cpool.Pool.kind; rows : row list }

val run : ?kind:Cpool.Pool.kind -> ?capacities:int list -> Exp_config.t -> result
(** Default capacities: 10, 20, 40, 80 per segment, plus unbounded. *)

val render : result -> string
