open Cpool_workload
open Cpool_metrics

type point = { delay : float; by_kind : (Cpool.Pool.kind * float) list }

type result = { random_model : point list; pc_model : point list }

let delays = [ 0.0; 1.0; 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ]

let sweep cfg ~roles ~seed_offset delays =
  List.map
    (fun delay ->
      {
        delay;
        by_kind =
          List.map
            (fun kind ->
              let spec =
                Exp_config.spec cfg ~kind ~extra_remote_delay:delay ~seed_offset roles
              in
              (kind, Driver.mean_of (fun r -> r.Driver.op_time) (Exp_config.trials cfg spec)))
            Cpool.Pool.all_kinds;
      })
    delays

let run ?(delays = delays) cfg =
  let p = cfg.Exp_config.participants in
  {
    random_model =
      sweep cfg ~roles:(Role.uniform_mix ~participants:p ~add_percent:30) ~seed_offset:600 delays;
    pc_model =
      sweep cfg
        ~roles:(Role.balanced_producers ~participants:p ~producers:(max 1 (5 * p / 16)))
        ~seed_offset:700 delays;
  }

let convergence_ratio point =
  let values = List.map snd point.by_kind in
  let lo = List.fold_left Float.min Float.infinity values in
  let hi = List.fold_left Float.max Float.neg_infinity values in
  if lo <= 0.0 || not (Float.is_finite lo) then Float.nan else (hi -. lo) /. lo

let render_block ~title points =
  let headers = [ "remote delay (us)"; "linear ms"; "random ms"; "tree ms"; "spread" ] in
  let rows =
    List.map
      (fun pt ->
        let v kind = List.assoc kind pt.by_kind /. 1000.0 in
        [
          Printf.sprintf "%g" pt.delay;
          Render.float_cell (v Cpool.Pool.Linear);
          Render.float_cell (v Cpool.Pool.Random);
          Render.float_cell (v Cpool.Pool.Tree);
          Printf.sprintf "%.1f%%" (100.0 *. convergence_ratio pt);
        ])
      points
  in
  Render.table ~title ~headers ~rows ()

let render r =
  String.concat "\n"
    [
      "Section 4.3 -- added remote-access delay sweep";
      render_block ~title:"Random operations model, 30% adds" r.random_model;
      render_block ~title:"Balanced producer/consumer model" r.pc_model;
      "spread = (slowest - fastest) / fastest across the three algorithms;";
      "the paper reports all three converging as the delay grows.";
    ]
