(** Name -> experiment mapping used by the CLI and the benchmark harness.

    Each entry regenerates one paper artifact (figure, table or reported
    result) and renders it as text. See DESIGN.md's experiment index. *)

type entry = {
  id : string;  (** Short name, e.g. ["fig2"]. *)
  title : string;  (** What paper artifact this regenerates. *)
  run : Exp_config.t -> string;  (** Execute and render. *)
}

val all : entry list
(** Every experiment, in paper order. *)

val ids : string list

val find : string -> entry option
(** [find id] looks an experiment up by [id]. *)
