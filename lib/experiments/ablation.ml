open Cpool_workload
open Cpool_metrics

type cell = { op_time : float; steal_time : float; elements_per_steal : float }

type row = { kind : Cpool.Pool.kind; counting : cell; boxed : cell }

type result = { rows : row list }

let cell_of_trials results =
  {
    op_time = Driver.mean_of (fun r -> r.Driver.op_time) results;
    steal_time = Driver.mean_of (fun r -> r.Driver.steal_time) results;
    elements_per_steal = Driver.mean_of (fun r -> r.Driver.elements_per_steal) results;
  }

let run ?(producers = 5) cfg =
  let p = cfg.Exp_config.participants in
  let roles = Role.balanced_producers ~participants:p ~producers:(min producers p) in
  let measure kind profile seed_offset =
    let cfg = { cfg with Exp_config.profile } in
    cell_of_trials (Exp_config.trials cfg (Exp_config.spec cfg ~kind ~seed_offset roles))
  in
  {
    rows =
      List.mapi
        (fun i kind ->
          {
            kind;
            counting = measure kind Cpool.Segment.Counting (1000 + i);
            boxed = measure kind Cpool.Segment.Boxed (1100 + i);
          })
        Cpool.Pool.all_kinds;
  }

(* Rankings only count as different when the algorithms' times differ by
   more than 10% — the profiles' op times are close and trial noise would
   otherwise flip ties. *)
let ranking_preserved r =
  let beats key a b = key a < key b *. 0.9 in
  let consistent a b =
    let c = (fun row -> row.counting.op_time) and x = (fun row -> row.boxed.op_time) in
    not ((beats c a b && beats x b a) || (beats c b a && beats x a b))
  in
  List.for_all (fun a -> List.for_all (consistent a) r.rows) r.rows

let render r =
  let headers =
    [ "algorithm"; "profile"; "op time us"; "steal time us"; "elems/steal" ]
  in
  let rows =
    List.concat_map
      (fun row ->
        let line name c =
          [
            Cpool.Pool.kind_to_string row.kind;
            name;
            Render.float_cell c.op_time;
            Render.float_cell c.steal_time;
            Render.float_cell c.elements_per_steal;
          ]
        in
        [ line "counting" row.counting; line "boxed" row.boxed ])
      r.rows
  in
  String.concat "\n"
    [
      "Ablation -- counting vs boxed segments (balanced p/c, 5 producers)";
      Render.table ~headers ~rows ();
      (if ranking_preserved r then
         "algorithm ranking by op time is identical under both profiles"
       else "WARNING: profiles change the algorithm ranking");
    ]
