open Cpool_game
open Cpool_metrics

type row = {
  scheduler : Parallel.scheduler;
  workers : int;
  duration : float;
  speedup : float;
  value : int;
  tasks : int;
}

type result = {
  plies : int;
  positions : int;
  sequential_value : int;
  rows : row list;
}

let schedulers =
  [
    Parallel.Pool_scheduler Cpool.Pool.Linear;
    Parallel.Pool_scheduler Cpool.Pool.Random;
    Parallel.Pool_scheduler Cpool.Pool.Tree;
    Parallel.Stack_scheduler;
  ]

let run cfg =
  let plies = cfg.Exp_config.app_plies in
  let sequential_value = Minimax.value ~plies Board.empty in
  let positions = Minimax.positions_examined ~plies Board.empty in
  let rows =
    List.concat_map
      (fun scheduler ->
        let reports =
          List.map
            (fun workers ->
              let report =
                Parallel.analyse
                  {
                    Parallel.default_config with
                    workers;
                    scheduler;
                    plies;
                    seed = cfg.Exp_config.base_seed;
                  }
              in
              if report.Parallel.value <> sequential_value then
                failwith
                  (Printf.sprintf
                     "Application: %s with %d workers computed %d, sequential says %d"
                     (Parallel.scheduler_to_string scheduler)
                     workers report.Parallel.value sequential_value);
              (workers, report))
            cfg.Exp_config.app_workers
        in
        (* Speedup is relative to the smallest worker count measured for the
           same scheduler (1 in the paper's sweep). *)
        let t1 =
          match reports with (_, first) :: _ -> first.Parallel.duration | [] -> Float.nan
        in
        List.map
          (fun (workers, report) ->
            {
              scheduler;
              workers;
              duration = report.Parallel.duration;
              speedup = t1 /. report.Parallel.duration;
              value = report.Parallel.value;
              tasks = report.Parallel.tasks;
            })
          reports)
      schedulers
  in
  { plies; positions; sequential_value; rows }

let find_row r scheduler workers =
  List.find_opt (fun row -> row.scheduler = scheduler && row.workers = workers) r.rows

let stack_slowdown_at ~workers r =
  let stack = find_row r Parallel.Stack_scheduler workers in
  let pool_times =
    List.filter_map
      (fun row ->
        match row.scheduler with
        | Parallel.Pool_scheduler _ when row.workers = workers -> Some row.duration
        | _ -> None)
      r.rows
  in
  match (stack, pool_times) with
  | Some s, _ :: _ -> s.duration /. List.fold_left Float.min Float.infinity pool_times
  | _ -> Float.nan

let render r =
  let headers = [ "scheduler"; "workers"; "elapsed (ms)"; "speedup"; "tasks" ] in
  let rows =
    List.map
      (fun row ->
        [
          Parallel.scheduler_to_string row.scheduler;
          string_of_int row.workers;
          Render.float_cell (row.duration /. 1000.0);
          Render.float_cell row.speedup;
          string_of_int row.tasks;
        ])
      r.rows
  in
  let speedup_series =
    List.map
      (fun scheduler ->
        ( Parallel.scheduler_to_string scheduler,
          List.filter_map
            (fun row ->
              if row.scheduler = scheduler then Some (float_of_int row.workers, row.speedup)
              else None)
            r.rows ))
      schedulers
  in
  let max_workers = List.fold_left (fun acc row -> max acc row.workers) 1 r.rows in
  String.concat "\n"
    [
      Printf.sprintf
        "Section 4.4 -- tic-tac-toe application: %d plies, %d leaf positions, minimax value %d"
        r.plies r.positions r.sequential_value;
      Render.table ~headers ~rows ();
      Render.chart ~title:"Speedup vs workers" ~x_label:"workers" ~y_label:"speedup"
        speedup_series;
      Printf.sprintf "stack elapsed / best pool elapsed at %d workers: %s" max_workers
        (Render.float_cell (stack_slowdown_at ~workers:max_workers r));
    ]
