open Cpool_workload

type t = {
  participants : int;
  total_ops : int;
  initial_elements : int;
  trials : int;
  base_seed : int64;
  profile : Cpool.Segment.profile;
  app_plies : int;
  app_workers : int list;
  dib_n : int;
  topo_file : string option;
}

let paper =
  {
    participants = 16;
    total_ops = 5000;
    initial_elements = 320;
    trials = 10;
    base_seed = 0x5EEDL;
    profile = Cpool.Segment.Counting;
    app_plies = 3;
    app_workers = [ 1; 2; 4; 8; 16 ];
    dib_n = 10;
    topo_file = None;
  }

let quick = { paper with trials = 3; app_plies = 2; dib_n = 8 }

let name t =
  if t = paper then "paper" else if t = quick then "quick" else "custom"

let spec t ?(kind = Cpool.Pool.Linear) ?(extra_remote_delay = 0.0) ?(record_trace = false)
    ?(seed_offset = 0) roles =
  {
    Driver.pool =
      {
        Cpool.Pool.default_config with
        segments = t.participants;
        kind;
        profile = t.profile;
        remote_op_delay = extra_remote_delay;
      };
    roles;
    total_ops = t.total_ops;
    initial_elements = t.initial_elements;
    seed = Int64.add t.base_seed (Int64.of_int (seed_offset * 7_919));
    cost = Cpool_sim.Topology.butterfly;
    record_trace;
  }

let trials t spec = Driver.run_trials ~trials:t.trials spec
