(** Ablation: locking vs lock-free probes.

    The paper's implementation locked a segment to examine it ("another
    source [of interference] is the locking at the leaves"), so at sparse
    mixes a crowd of searchers queues against the few producers' own adds,
    which is what drives its Figure 2 sparse times into the tens of
    milliseconds. Our default probes with an atomic size read (the modern
    idiom). This ablation measures both, on the Figure 2 workloads: the
    probe discipline changes the magnitude of the sparse-mix penalty
    substantially while leaving the shape — sparse slow, sufficient fast,
    crossover at 50% — intact. *)

type row = {
  condition : string;
  atomic_probe : float;  (** Mean op time with lock-free probes, us. *)
  locking_probe : float;  (** Mean op time with locking probes, us. *)
}

type result = { kind : Cpool.Pool.kind; rows : row list }

val run : ?kind:Cpool.Pool.kind -> Exp_config.t -> result

val render : result -> string
