(** Figure 2: average operation time vs job mix, tree traversal algorithm,
    random-operations vs producer/consumer models.

    The random model sweeps the add percentage 0..100 in steps of 10; the
    producer/consumer model sweeps the number of (contiguous) producers
    0..participants and is plotted against its measured add fraction, as the
    paper does ("the job mix was measured and the data was plotted on that
    scale"). *)

type point = {
  x_add_percent : float;  (** Measured percentage of adds. *)
  op_time : float;  (** Mean operation time over trials, us. *)
  steal_fraction : float;  (** Fraction of removes that stole. *)
  label : string;  (** Condition description (mix or producer count). *)
}

type result = {
  kind : Cpool.Pool.kind;
  random_series : point list;
  producer_consumer_series : point list;
}

val run : ?kind:Cpool.Pool.kind -> Exp_config.t -> result
(** [run cfg] sweeps both models with the given search algorithm (default
    [Tree], as in the figure). *)

val render : result -> string
(** Table plus ASCII chart in the style of the figure. *)
