open Cpool_workload
open Cpool_metrics

type phase_report = {
  name : string;
  op_time : float;
  steal_fraction : float;
  aborts : int;
  pool_size_after : int;
}

type result = {
  kind : Cpool.Pool.kind;
  lifecycle : phase_report list;
  rotation : phase_report list;
}

let report name r =
  {
    name;
    op_time = Sample.mean r.Driver.op_time;
    steal_fraction = Driver.steal_fraction r;
    aborts = r.Driver.aborts;
    pool_size_after = Array.fold_left ( + ) 0 r.Driver.final_sizes;
  }

let run ?(kind = Cpool.Pool.Linear) cfg =
  let p = cfg.Exp_config.participants in
  let ops = cfg.Exp_config.total_ops in
  let spec roles = Exp_config.spec cfg ~kind ~seed_offset:1700 roles in
  let base = spec (Role.uniform_mix ~participants:p ~add_percent:50) in
  (* A short fill, a stable middle, and a drain long enough to empty what
     the fill banked. *)
  let lifecycle_phases =
    [
      (ops / 5, Role.uniform_mix ~participants:p ~add_percent:80);
      (2 * ops / 5, Role.uniform_mix ~participants:p ~add_percent:50);
      (2 * ops / 5, Role.uniform_mix ~participants:p ~add_percent:10);
    ]
  in
  let lifecycle =
    List.map2 report
      [ "fill (80% adds)"; "stable (50% adds)"; "drain (10% adds)" ]
      (Driver.run_phases base lifecycle_phases)
  in
  (* Rotate a contiguous block of 4 producers a third of the ring each
     phase: consumers must re-discover the producers after each shift. *)
  let rotated offset =
    let roles = Array.make p Role.Consumer in
    for k = 0 to (p / 4) - 1 do
      roles.((offset + k) mod p) <- Role.Producer
    done;
    roles
  in
  let rotation_phases =
    [ (ops / 3, rotated 0); (ops / 3, rotated (p / 3)); (ops / 3, rotated (2 * p / 3)) ]
  in
  let rotation =
    List.map2 report
      [ "producers at 0.."; "rotated by p/3"; "rotated by 2p/3" ]
      (Driver.run_phases { base with Driver.seed = 1_234_567L } rotation_phases)
  in
  { kind; lifecycle; rotation }

let render_block title reports =
  let headers = [ "phase"; "op time us"; "% removes stealing"; "aborts"; "pool size after" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Render.float_cell r.op_time;
          Render.float_cell (100.0 *. r.steal_fraction);
          string_of_int r.aborts;
          string_of_int r.pool_size_after;
        ])
      reports
  in
  Render.table ~title ~headers ~rows ()

let render r =
  String.concat "\n"
    [
      Printf.sprintf "Extension (Sec 3.5) -- time-varying workloads (%s algorithm)"
        (Cpool.Pool.kind_to_string r.kind);
      render_block "Application lifecycle: fill, stable, drain (one continuous run)" r.lifecycle;
      render_block "Dynamic roles: the producer block rotates each phase" r.rotation;
      "Each phase behaves like the paper's standalone experiment at its mix: the";
      "fill phase is steal-free, the drain phase is steal- and abort-heavy, and";
      "rotating the producers re-creates the bunching transient at each shift.";
    ]
