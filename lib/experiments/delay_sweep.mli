(** Section 4.3: simulating higher-cost remote access architectures.

    "Delays were added to each remote operation ... from 1 usec per
    operation to 100 msec per operation." The paper's finding: the tree
    algorithm never beats linear or random, and as the delay grows all
    three converge — both for the random-operations model and the balanced
    producer/consumer model. *)

type point = { delay : float; by_kind : (Cpool.Pool.kind * float) list }
(** [delay] in us; values are mean operation times in us. *)

type result = {
  random_model : point list;  (** Random model, 30% adds (steal-heavy). *)
  pc_model : point list;  (** Balanced producer/consumer, 5 producers. *)
}

val delays : float list
(** The swept per-remote-operation delays, us: 0, 1, 10, 100, 1000, 10^4,
    10^5 (the last matching the paper's 100 msec). *)

val run : ?delays:float list -> Exp_config.t -> result

val render : result -> string

val convergence_ratio : point -> float
(** [convergence_ratio p] is (max - min) / min over the three algorithms'
    times at one delay — the paper's convergence shows this shrinking as
    the delay grows. *)
