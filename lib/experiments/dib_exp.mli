(** Second application: distributed backtracking (the DIB shape).

    The paper's closing evidence is Finkel & Manber's DIB, a backtracking
    system built on concurrent pools with "essentially the linear and
    random search algorithms", whose performance was "quite good"; the
    tree algorithm was never incorporated. This experiment recreates that
    setting with N-Queens enumeration: wildly irregular subtree sizes,
    pure fan-out (no upward propagation), all four schedulers across the
    worker sweep. Expected shapes: the three pools near-linear and
    indistinguishable; the global-lock stack saturating below them. *)

type row = {
  scheduler : Cpool_game.Parallel.scheduler;
  workers : int;
  duration : float;
  speedup : float;
  steals : int;  (** 0 for the stack scheduler. *)
}

type result = {
  n : int;
  solutions : int;
  nodes : int;
  rows : row list;
}

val run : Exp_config.t -> result
(** [run cfg] solves [cfg.dib_n]-queens under every scheduler and worker
    count, verifying each run against the sequential solution count. *)

val render : result -> string
