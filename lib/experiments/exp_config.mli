(** Shared configuration for the paper-reproduction experiments.

    {!paper} mirrors the published setup: 16 processors, 5000 operations
    per trial against 320 initial elements, ten averaged trials, counting
    segments. {!quick} trades trials and application depth for speed (CI
    and smoke runs) without changing any shape. *)

type t = {
  participants : int;  (** Pool segments = processes (paper: 16). *)
  total_ops : int;  (** Combined operation quota per trial (paper: 5000). *)
  initial_elements : int;  (** Prefill (paper: 320). *)
  trials : int;  (** Trials averaged per data point (paper: 10). *)
  base_seed : int64;
  profile : Cpool.Segment.profile;  (** Segment cost profile. *)
  app_plies : int;  (** Application search depth (paper: 3). *)
  app_workers : int list;  (** Worker counts for the speedup sweep. *)
  dib_n : int;  (** N-Queens size for the backtracking (DIB) experiment. *)
  topo_file : string option;
      (** Topology file ({!Cpool_topology.parse} format) for the topology
          experiment; [None] uses the built-in two-group preset. The same
          file feeds [pools_bench mc-throughput --topology]. *)
}

val paper : t
val quick : t

val name : t -> string
(** ["paper"] or ["quick"] (or ["custom"]). *)

val spec :
  t ->
  ?kind:Cpool.Pool.kind ->
  ?extra_remote_delay:float ->
  ?record_trace:bool ->
  ?seed_offset:int ->
  Cpool_workload.Role.t array ->
  Cpool_workload.Driver.spec
(** [spec t roles] builds a driver spec for one experimental condition.
    [extra_remote_delay] adds the Section 4.3 per-remote-operation delay;
    [seed_offset] decorrelates conditions that should not share random
    streams. *)

val trials : t -> Cpool_workload.Driver.spec -> Cpool_workload.Driver.result list
(** [trials t spec] runs [t.trials] independent trials of [spec]. *)
