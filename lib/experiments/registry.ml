type entry = { id : string; title : string; run : Exp_config.t -> string }

let trace_entry id ~kind ~balanced title =
  {
    id;
    title;
    run = (fun cfg -> Traces.render ~figure:title (Traces.run ~kind ~balanced cfg));
  }

let all =
  [
    {
      id = "fig2";
      title = "Figure 2: op time vs job mix (tree algorithm, both models)";
      run = (fun cfg -> Fig2.render (Fig2.run cfg));
    };
    trace_entry "fig3" ~kind:Cpool.Pool.Linear ~balanced:false
      "Figure 3: segment sizes, linear algorithm, 5 contiguous producers";
    trace_entry "fig4" ~kind:Cpool.Pool.Linear ~balanced:true
      "Figure 4: segment sizes, linear algorithm, 5 balanced producers";
    trace_entry "fig5" ~kind:Cpool.Pool.Tree ~balanced:false
      "Figure 5: segment sizes, tree algorithm, 5 contiguous producers";
    trace_entry "fig6" ~kind:Cpool.Pool.Tree ~balanced:true
      "Figure 6: segment sizes, tree algorithm, 5 balanced producers";
    {
      id = "fig7";
      title = "Figure 7: elements stolen per steal vs producers (errata labels)";
      run = (fun cfg -> Fig7.render (Fig7.run cfg));
    };
    {
      id = "compare";
      title = "Section 4.3: algorithm comparison across job mixes";
      run = (fun cfg -> Comparison.render (Comparison.run cfg));
    };
    {
      id = "delay";
      title = "Section 4.3: remote-access delay sweep";
      run = (fun cfg -> Delay_sweep.render (Delay_sweep.run cfg));
    };
    {
      id = "steals";
      title = "Section 4.2: balancing the producers (steal statistics)";
      run = (fun cfg -> Steal_stats.render (Steal_stats.run cfg));
    };
    {
      id = "app";
      title = "Section 4.4: tic-tac-toe application speedups";
      run = (fun cfg -> Application.render (Application.run cfg));
    };
    {
      id = "ablation";
      title = "Ablation: counting vs boxed segments";
      run = (fun cfg -> Ablation.render (Ablation.run cfg));
    };
    {
      id = "lockprobe";
      title = "Ablation: locking vs atomic probes (paper's leaf locking)";
      run = (fun cfg -> Lockprobe_exp.render (Lockprobe_exp.run cfg));
    };
    {
      id = "hints";
      title = "Extension (Sec 5): hinted search vs plain linear";
      run = (fun cfg -> Hints_exp.render (Hints_exp.run cfg));
    };
    {
      id = "bounded";
      title = "Extension (footnote): bounded segments with symmetric spill";
      run = (fun cfg -> Bounded_exp.render (Bounded_exp.run cfg));
    };
    {
      id = "phases";
      title = "Extension (Sec 3.5): fill/stable/drain phases and rotating producers";
      run = (fun cfg -> Phases_exp.render (Phases_exp.run cfg));
    };
    {
      id = "dib";
      title = "Second application: N-Queens backtracking (DIB shape)";
      run = (fun cfg -> Dib_exp.render (Dib_exp.run cfg));
    };
    {
      id = "topology";
      title = "Extension: locality-model remote-penalty sweep (see topo/)";
      run = (fun cfg -> Topology_exp.render (Topology_exp.run cfg));
    };
    {
      id = "classed";
      title = "Extension (Sec 5): distinguishable elements (classed pool)";
      run = (fun cfg -> Classed_exp.render (Classed_exp.run cfg));
    };
  ]

let ids = List.map (fun e -> e.id) all

let find id = List.find_opt (fun e -> e.id = id) all
