(** Extension experiment: distinguishable elements (paper Section 5).

    Measures what partitioning the pool into element classes costs: the
    same 16-process random-operations workload where each element carries
    one of [k] classes and every remove asks for a specific class, swept
    over [k]. With [k = 1] this is the plain pool; as [k] grows, a remove
    can only be satisfied by 1/k of the elements, so searches lengthen and
    more removes come back empty-handed — quantifying the price of
    distinguishability that the paper's open question implies. *)

type row = {
  classes : int;
  op_time : float;  (** Mean time per operation, us. *)
  miss_fraction : float;  (** Class-specific removes that found nothing. *)
  steals : int;
}

type result = { rows : row list }

val run : ?class_counts:int list -> Exp_config.t -> result
(** Default class counts: 1, 2, 4, 8. *)

val render : result -> string
