(** Figure 7 (errata-corrected): average elements stolen per steal vs the
    number of producers, tree traversal algorithm, unbalanced (contiguous)
    vs balanced producer arrangements.

    The errata reverses the published labels: the *balanced* arrangement
    steals more elements per steal. "By spreading out the producers,
    forcing the consumers to steal from all producers rather than one at a
    time, each steal is likely to find a greater number of elements." *)

type point = {
  producers : int;
  unbalanced : float;  (** Mean elements per steal, contiguous producers. *)
  balanced : float;  (** Mean elements per steal, balanced producers. *)
}

type result = { kind : Cpool.Pool.kind; points : point list }

val run : ?kind:Cpool.Pool.kind -> Exp_config.t -> result
(** [run cfg] sweeps producers 0..participants with both arrangements, as
    the figure's x-axis does (at 0 producers the only steals drain the
    initial fill; at [participants] producers nothing is removed, rendered
    as "-"). *)

val render : result -> string
