(** Ablation: counting vs boxed segments.

    The paper simplified segments to bare counters, noting that this
    "eliminated some remote operations (common to all three search
    strategies) such as the block transfer of stolen elements between
    processes" (Section 3.5). This ablation quantifies that choice: the
    same steal-heavy workload with and without per-element transfer
    charges. The gap grows with elements moved per steal and affects all
    three algorithms alike, supporting the paper's claim that the
    simplification does not change the algorithms' ranking. *)

type cell = { op_time : float; steal_time : float; elements_per_steal : float }

type row = {
  kind : Cpool.Pool.kind;
  counting : cell;
  boxed : cell;
}

type result = { rows : row list }

val run : ?producers:int -> Exp_config.t -> result
(** [run cfg] measures a balanced producer/consumer workload (default 5
    producers) under both segment profiles for each algorithm. *)

val render : result -> string

val ranking_preserved : result -> bool
(** Whether ordering the algorithms by mean operation time gives the same
    ranking under both profiles. *)
