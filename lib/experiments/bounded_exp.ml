open Cpool_workload
open Cpool_metrics

type row = {
  capacity : int option;
  add_time : float;
  spill_fraction : float;
  reject_fraction : float;
  final_fill : float;
}

type result = { kind : Cpool.Pool.kind; rows : row list }

let run ?(kind = Cpool.Pool.Linear) ?(capacities = [ 10; 20; 40; 80 ]) cfg =
  let p = cfg.Exp_config.participants in
  let roles = Role.uniform_mix ~participants:p ~add_percent:70 in
  let measure capacity seed_offset =
    let base = Exp_config.spec cfg ~kind roles ~seed_offset in
    let spec =
      { base with Driver.pool = { base.Driver.pool with Cpool.Pool.capacity } }
    in
    let results = Exp_config.trials cfg spec in
    let adds, spills, rejects, final =
      List.fold_left
        (fun (a, s, rj, f) r ->
          let t = r.Driver.pool_totals in
          ( a + t.Cpool.Pool.adds + t.Cpool.Pool.rejected_adds,
            s + t.Cpool.Pool.spills,
            rj + t.Cpool.Pool.rejected_adds,
            f + Array.fold_left ( + ) 0 r.Driver.final_sizes ))
        (0, 0, 0, 0) results
    in
    let attempted = float_of_int adds in
    {
      capacity;
      add_time = Driver.mean_of (fun r -> r.Driver.add_time) results;
      spill_fraction = (if adds = 0 then Float.nan else float_of_int spills /. attempted);
      reject_fraction = (if adds = 0 then Float.nan else float_of_int rejects /. attempted);
      final_fill =
        (match capacity with
        | None -> Float.nan
        | Some c ->
          float_of_int final /. float_of_int (List.length results * p * c));
    }
  in
  {
    kind;
    rows =
      List.mapi (fun i c -> measure (Some c) (1400 + i)) capacities
      @ [ measure None 1450 ];
  }

let render r =
  let headers =
    [ "capacity/segment"; "add time us"; "% adds spilled"; "% adds rejected"; "final fill" ]
  in
  let rows =
    List.map
      (fun row ->
        [
          (match row.capacity with Some c -> string_of_int c | None -> "unbounded");
          Render.float_cell row.add_time;
          Render.float_cell (100.0 *. row.spill_fraction);
          Render.float_cell (100.0 *. row.reject_fraction);
          (match row.capacity with
          | Some _ -> Printf.sprintf "%.0f%%" (100.0 *. row.final_fill)
          | None -> "-");
        ])
      r.rows
  in
  String.concat "\n"
    [
      Printf.sprintf
        "Extension (paper footnote) -- bounded segments with symmetric spill (%s, 70%% adds)"
        (Cpool.Pool.kind_to_string r.kind);
      Render.table ~headers ~rows ();
      "Tight bounds turn local adds into remote spills and finally rejects as the";
      "whole pool saturates; add times rise with the spill distance.";
    ]
