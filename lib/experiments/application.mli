(** Section 4.4: the tic-tac-toe application.

    Parallel minimax over the first [app_plies] moves of 4x4x4 tic-tac-toe
    (three plies = 249,984 positions), scheduled by each of the three pool
    algorithms and by the global-lock stack baseline, across a sweep of
    worker counts. Findings to reproduce: all three pools give nearly
    linear speedup (the paper: 14.6-15.4 at 16 processors), the stack
    reaches only ~10.7 and is ~40% slower in elapsed time at 16. *)

type row = {
  scheduler : Cpool_game.Parallel.scheduler;
  workers : int;
  duration : float;  (** Virtual elapsed time, us. *)
  speedup : float;  (** Relative to the same scheduler's 1-worker run. *)
  value : int;  (** Root minimax value (must agree across schedulers). *)
  tasks : int;
}

type result = {
  plies : int;
  positions : int;  (** Leaf positions examined (paper: 249,984 at 3). *)
  sequential_value : int;  (** Reference value from sequential minimax. *)
  rows : row list;
}

val run : Exp_config.t -> result
(** [run cfg] sweeps [cfg.app_workers] for all four schedulers at
    [cfg.app_plies]. Raises [Failure] if any run disagrees with the
    sequential minimax value — the parallel evaluation is checked, not
    assumed. *)

val render : result -> string

val stack_slowdown_at : workers:int -> result -> float
(** [stack_slowdown_at ~workers r] is stack time / best pool time at the
    given worker count (the paper reports ~1.4 at 16). *)
