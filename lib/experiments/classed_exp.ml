open Cpool_sim
open Cpool_metrics

type row = { classes : int; op_time : float; miss_fraction : float; steals : int }

type result = { rows : row list }

(* The classed pool has its own driver loop: roles are a uniform 50% mix
   and every remove requests a class drawn from the same distribution the
   adds use. *)
let one_trial cfg ~classes ~seed =
  let p = cfg.Exp_config.participants in
  let engine = Engine.create ~nodes:p ~seed () in
  let pool = Cpool.Classed.create ~classes ~participants:p () in
  (* Prefill evenly across segments and classes. *)
  let quota = Memory.make ~home:0 cfg.Exp_config.total_ops in
  let op_time = Sample.create () in
  let misses = ref 0 and removes = ref 0 in
  let body i () =
    Cpool.Classed.join pool;
    let continue = ref true in
    while !continue do
      if Memory.fetch_add quota (-1) <= 0 then continue := false
      else begin
        let cls = Engine.random_int classes in
        let t0 = Engine.clock () in
        if Engine.random_int 100 < 50 then Cpool.Classed.add pool ~me:i ~cls (Engine.random_int 1000)
        else begin
          incr removes;
          match Cpool.Classed.try_remove pool ~me:i ~cls with
          | Some _ -> ()
          | None -> incr misses
        end;
        Sample.add op_time (Engine.clock () -. t0)
      end
    done;
    Cpool.Classed.leave pool
  in
  for i = 0 to p - 1 do
    ignore (Engine.spawn engine ~node:i ~name:(Printf.sprintf "c%d" i) (body i))
  done;
  (match Engine.run engine with
  | Engine.Completed -> ()
  | Engine.Deadlocked names -> failwith ("Classed_exp: deadlock: " ^ String.concat "," names)
  | Engine.Hit_limit -> assert false);
  (Sample.mean op_time, !misses, !removes, Cpool.Classed.steals pool)

let run ?(class_counts = [ 1; 2; 4; 8 ]) cfg =
  let rows =
    List.map
      (fun classes ->
        let times, misses, removes, steals =
          List.fold_left
            (fun (ts, m, r, s) k ->
              let t, misses, removes, steals =
                one_trial cfg ~classes
                  ~seed:(Int64.add cfg.Exp_config.base_seed (Int64.of_int ((classes * 100) + k)))
              in
              (t :: ts, m + misses, r + removes, s + steals))
            ([], 0, 0, 0)
            (List.init cfg.Exp_config.trials Fun.id)
        in
        {
          classes;
          op_time = List.fold_left ( +. ) 0.0 times /. float_of_int (List.length times);
          miss_fraction =
            (if removes = 0 then Float.nan else float_of_int misses /. float_of_int removes);
          steals;
        })
      class_counts
  in
  { rows }

let render r =
  let headers = [ "classes"; "op time us"; "% removes missing"; "steals" ] in
  let rows =
    List.map
      (fun row ->
        [
          string_of_int row.classes;
          Render.float_cell row.op_time;
          Render.float_cell (100.0 *. row.miss_fraction);
          string_of_int row.steals;
        ])
      r.rows
  in
  String.concat "\n"
    [
      "Extension (Sec 5) -- distinguishable elements: cost of class-specific removes";
      Render.table ~headers ~rows ();
      "One class is the plain pool; with k classes a remove can use only 1/k of";
      "the elements, so misses and search traffic grow with k.";
    ]
