type 'a t = {
  home_node : Topology.node;
  mutable value : 'a;
  mutable access_count : int;
}

let make ~home value = { home_node = home; value; access_count = 0 }

let home c = c.home_node

let charge c =
  c.access_count <- c.access_count + 1;
  Engine.charge ~home:c.home_node

let read c =
  charge c;
  c.value

let write c v =
  charge c;
  c.value <- v

let fetch_add c d =
  charge c;
  let old = c.value in
  c.value <- old + d;
  old

let update c f =
  charge c;
  let old = c.value in
  c.value <- f old;
  old

let compare_and_set c ~expected ~desired =
  charge c;
  if c.value = expected then begin
    c.value <- desired;
    true
  end
  else false

let accesses c = c.access_count

let peek c = c.value

let poke c v = c.value <- v
