type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int }

(* A classic binary min-heap in a growable array. The dummy entry fills
   unused slots so the array can be of a concrete element type. *)

let initial_capacity = 64

let create () = { heap = [||]; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let key_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q needed =
  let capacity = max initial_capacity (Array.length q.heap) in
  let rec next c = if c >= needed then c else next (2 * c) in
  let capacity = next capacity in
  if capacity > Array.length q.heap then begin
    match q.size with
    | 0 ->
      (* No existing element to use as filler; delay allocation until the
         first [add] supplies one. *)
      ()
    | _ ->
      let filler = q.heap.(0) in
      let heap = Array.make capacity filler in
      Array.blit q.heap 0 heap 0 q.size;
      q.heap <- heap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if key_lt q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = i in
  let smallest =
    if left < q.size && key_lt q.heap.(left) q.heap.(smallest) then left
    else smallest
  in
  let smallest =
    if right < q.size && key_lt q.heap.(right) q.heap.(smallest) then right
    else smallest
  in
  if smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(smallest);
    q.heap.(smallest) <- tmp;
    sift_down q smallest
  end

let add q ~time ~seq payload =
  if Float.is_nan time then invalid_arg "Pqueue.add: NaN time";
  let entry = { time; seq; payload } in
  if q.size = Array.length q.heap then begin
    if q.size = 0 then q.heap <- Array.make initial_capacity entry
    else grow q (q.size + 1)
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.seq, top.payload)
  end

let peek q =
  if q.size = 0 then None
  else
    let top = q.heap.(0) in
    Some (top.time, top.seq, top.payload)

let clear q = q.size <- 0

let to_sorted_list q =
  let rec drain acc =
    match pop q with
    | None -> List.rev acc
    | Some e -> drain (e :: acc)
  in
  drain []
