type t = {
  home_node : Topology.node;
  mutable owner : Engine.pid option;
  waiters : (Engine.pid * Engine.wakeup option ref) Queue.t;
  mutable acquired : int;
  mutable contended : int;
}

let make ~home =
  { home_node = home; owner = None; waiters = Queue.create (); acquired = 0; contended = 0 }

let home l = l.home_node

let acquire l =
  let pid = Engine.self_pid () in
  if l.owner = Some pid then invalid_arg "Lock.acquire: lock already held";
  Engine.charge ~home:l.home_node;
  match l.owner with
  | None ->
    l.owner <- Some pid;
    l.acquired <- l.acquired + 1
  | Some _ ->
    l.contended <- l.contended + 1;
    (* Park until a release names us the owner; the ref lets [release]
       find the wakeup that [suspend] hands us. *)
    Engine.suspend (fun w -> Queue.push (pid, ref (Some w)) l.waiters);
    (* Resumed: the releaser set [owner] to us before waking. *)
    assert (l.owner = Some pid);
    l.acquired <- l.acquired + 1

let release l =
  let pid = Engine.self_pid () in
  if l.owner <> Some pid then invalid_arg "Lock.release: lock not held by caller";
  Engine.charge ~home:l.home_node;
  match Queue.take_opt l.waiters with
  | None -> l.owner <- None
  | Some (next_pid, cell) -> (
    l.owner <- Some next_pid;
    match !cell with
    | Some w ->
      cell := None;
      Engine.wake w
    | None -> assert false)

let with_lock l f =
  acquire l;
  match f () with
  | v ->
    release l;
    v
  | exception e ->
    release l;
    raise e

let holder l = l.owner

let acquisitions l = l.acquired

let contended_acquisitions l = l.contended
