(** Simulated shared memory cells with NUMA access costing.

    A cell lives on a home node; every operation performed from inside a
    simulated process first charges the appropriate local/remote access cost
    (during which other processes may run), then applies its primitive
    instantaneously — so plain reads and writes are individually atomic and
    the read-modify-write operations are atomic, exactly as on real
    shared-memory hardware. Sequences of operations interleave.

    The [peek]/[poke] observers bypass costing for instrumentation and test
    setup; they must not be used to model program behaviour. *)

type 'a t
(** A shared memory cell holding an ['a]. *)

val make : home:Topology.node -> 'a -> 'a t
(** [make ~home v] allocates a cell on node [home] with initial value [v]. *)

val home : 'a t -> Topology.node
(** [home c] is the cell's home node. *)

val read : 'a t -> 'a
(** [read c] charges one access and returns the value. *)

val write : 'a t -> 'a -> unit
(** [write c v] charges one access and stores [v]. *)

val fetch_add : int t -> int -> int
(** [fetch_add c d] charges one access, then atomically adds [d] and returns
    the previous value. *)

val update : 'a t -> ('a -> 'a) -> 'a
(** [update c f] charges one access, then atomically replaces the value [v]
    with [f v], returning the previous [v]. *)

val compare_and_set : 'a t -> expected:'a -> desired:'a -> bool
(** [compare_and_set c ~expected ~desired] charges one access, then
    atomically installs [desired] if the current value equals [expected]
    (structural equality), returning whether it did. *)

val accesses : 'a t -> int
(** [accesses c] counts costed operations performed on [c] so far. *)

val peek : 'a t -> 'a
(** [peek c] reads without charging; for instrumentation only. *)

val poke : 'a t -> 'a -> unit
(** [poke c v] writes without charging; for test setup only. *)
