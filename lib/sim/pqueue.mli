(** Minimum priority queue keyed by [(time, sequence)] pairs.

    The event queue of the simulator. Keys order first by time and then by a
    monotonically increasing sequence number, so simultaneous events pop in
    insertion order and every simulation run is deterministic. *)

type 'a t
(** A mutable min-heap of ['a] payloads. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
(** [length q] is the number of queued elements. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [length q = 0]. *)

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** [add q ~time ~seq x] inserts [x] with key [(time, seq)].
    Raises [Invalid_argument] if [time] is NaN. *)

val pop : 'a t -> (float * int * 'a) option
(** [pop q] removes and returns the minimum-key entry, or [None] if empty. *)

val peek : 'a t -> (float * int * 'a) option
(** [peek q] is the minimum-key entry without removing it. *)

val clear : 'a t -> unit
(** [clear q] removes every element. *)

val to_sorted_list : 'a t -> (float * int * 'a) list
(** [to_sorted_list q] drains [q], returning all entries in key order. *)
