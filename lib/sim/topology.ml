type node = int

type cost_model = {
  local_cost : float;
  remote_ratio : float;
  remote_extra : float;
  compute_per_op : float;
}

let butterfly =
  { local_cost = 2.0; remote_ratio = 4.0; remote_extra = 0.0; compute_per_op = 40.0 }

let with_remote_extra remote_extra m = { m with remote_extra }

let access_cost m ~from ~home =
  if from = home then m.local_cost
  else (m.remote_ratio *. m.local_cost) +. m.remote_extra

let validate m =
  let non_negative name v =
    if Float.is_nan v || v < 0.0 then Error (name ^ " must be non-negative") else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = non_negative "local_cost" m.local_cost in
  let* () = non_negative "remote_extra" m.remote_extra in
  let* () = non_negative "compute_per_op" m.compute_per_op in
  if Float.is_nan m.remote_ratio || m.remote_ratio < 1.0 then
    Error "remote_ratio must be >= 1.0"
  else Ok ()
