type node = int

type cost_model = {
  local_cost : float;
  remote_ratio : float;
  remote_extra : float;
  compute_per_op : float;
  topo : Cpool_topology.t option;
}

let butterfly =
  {
    local_cost = 2.0;
    remote_ratio = 4.0;
    remote_extra = 0.0;
    compute_per_op = 40.0;
    topo = None;
  }

let with_remote_extra remote_extra m = { m with remote_extra }
let with_topology topo m = { m with topo = Some topo }

let access_cost m ~from ~home =
  match m.topo with
  | Some topo when from < Cpool_topology.nodes topo && home < Cpool_topology.nodes topo ->
    (* The shared topology refines the flat two-level model: distance is a
       multiplier on the local cost, with [remote_extra] still charged on
       any off-node access (the loosely-coupled delay sweeps compose). *)
    let d = Cpool_topology.distance topo ~from ~to_:home in
    let extra = if from = home then 0.0 else m.remote_extra in
    (d *. m.local_cost) +. extra
  | _ ->
    if from = home then m.local_cost
    else (m.remote_ratio *. m.local_cost) +. m.remote_extra

let validate m =
  let non_negative name v =
    if Float.is_nan v || v < 0.0 then Error (name ^ " must be non-negative") else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = non_negative "local_cost" m.local_cost in
  let* () = non_negative "remote_extra" m.remote_extra in
  let* () = non_negative "compute_per_op" m.compute_per_op in
  if Float.is_nan m.remote_ratio || m.remote_ratio < 1.0 then
    Error "remote_ratio must be >= 1.0"
  else Ok ()
