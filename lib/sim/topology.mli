(** NUMA cost model: what a memory access costs, by locality.

    The simulated machine follows the paper's Butterfly model: every memory
    word lives on some node ("home"); a process on the same node pays
    [local_cost] per access, a process elsewhere pays
    [remote_ratio *. local_cost +. remote_extra]. The paper reports remote
    accesses roughly 4x local on the Butterfly, and adds artificial
    [remote_extra] delays (1 us .. 100 ms) to emulate loosely coupled
    architectures. Times are in microseconds throughout the simulator. *)

type node = int
(** Processor-node identifier, in [\[0, nodes)]. *)

type cost_model = {
  local_cost : float;  (** Cost of one local memory access, in us. *)
  remote_ratio : float;  (** Remote-to-local cost ratio (Butterfly: 4.0). *)
  remote_extra : float;
      (** Additional delay charged per remote access, in us; 0 on the real
          Butterfly, swept upward in the delay experiments. *)
  compute_per_op : float;
      (** Fixed local computation charged once per pool operation (argument
          setup, bookkeeping); calibrates absolute operation times. *)
  topo : Cpool_topology.t option;
      (** Optional shared locality model. When present, an access from node
          [f] to a word homed on [h] costs
          [Cpool_topology.distance topo ~from:f ~to_:h *. local_cost]
          (plus [remote_extra] when [f <> h]); the flat
          [remote_ratio]-based model applies otherwise. The same config
          file that builds this also drives [Mc_pool ~topology], which is
          what lets EXPERIMENTS.md compare predicted vs. measured
          remote-penalty curves. *)
}

val butterfly : cost_model
(** The default model calibrated to the paper: [local_cost = 2.0],
    [remote_ratio = 4.0], [remote_extra = 0.0], [compute_per_op = 40.0],
    which yields uncontended add times near 70 us and remove times near
    110 us as reported in Section 4.3. *)

val with_remote_extra : float -> cost_model -> cost_model
(** [with_remote_extra d m] is [m] with [remote_extra = d]. *)

val with_topology : Cpool_topology.t -> cost_model -> cost_model
(** [with_topology topo m] is [m] with its access costs driven by the
    shared locality model [topo]. *)

val access_cost : cost_model -> from:node -> home:node -> float
(** [access_cost m ~from ~home] is the cost of one access to a word homed on
    [home] issued by a process on [from]. *)

val validate : cost_model -> (unit, string) result
(** [validate m] checks every field is finite and non-negative and
    [remote_ratio >= 1.0]. *)
