type pid = int

(* Debug tracing; enable with Logs.Src.set_level Engine.log_src (Some Debug). *)
let log_src = Logs.Src.create "cpool.sim.engine" ~doc:"Discrete-event engine tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Not_in_process

exception Process_failure of string * exn

type proc = {
  pid : pid;
  node : Topology.node;
  name : string;
  rng : Rng.t;
  mutable finished : bool;
}

type t = {
  mutable time : float;
  mutable seq : int;
  events : (unit -> unit) Pqueue.t;
  cost : Topology.cost_model;
  node_count : int;
  rng : Rng.t;
  mutable next_pid : int;
  mutable live : int; (* spawned, not yet finished *)
  mutable executed : int;
  parked : (pid, string) Hashtbl.t;
}

type env = { engine : t; proc : proc }

(* The three fundamental effects; everything else is derived. [Env] carries
   the process's identity and engine so that context operations need no
   global state. *)
type wakeup = { mutable fired : bool; resume : unit -> unit }

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (wakeup -> unit) -> unit Effect.t
  | Env : env Effect.t

let create ?(cost = Topology.butterfly) ~nodes ~seed () =
  if nodes <= 0 then invalid_arg "Engine.create: nodes must be positive";
  (match Topology.validate cost with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.create: " ^ msg));
  (match cost.Topology.topo with
  | Some topo when Cpool_topology.nodes topo < nodes ->
    invalid_arg
      (Printf.sprintf
         "Engine.create: topology describes %d nodes but the machine has %d"
         (Cpool_topology.nodes topo) nodes)
  | _ -> ());
  {
    time = 0.0;
    seq = 0;
    events = Pqueue.create ();
    cost;
    node_count = nodes;
    rng = Rng.create seed;
    next_pid = 0;
    live = 0;
    executed = 0;
    parked = Hashtbl.create 16;
  }

let nodes t = t.node_count

let cost_model t = t.cost

let now t = t.time

let events_executed t = t.executed

let schedule t ~at thunk =
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.add t.events ~time:at ~seq thunk

let spawn t ~node ~name body =
  if node < 0 || node >= t.node_count then
    invalid_arg "Engine.spawn: node out of range";
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  t.live <- t.live + 1;
  Log.debug (fun m -> m "t=%.3f spawn pid=%d node=%d %s" t.time pid node name);
  let proc = { pid; node; name; rng = Rng.split t.rng; finished = false } in
  let env = { engine = t; proc } in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          proc.finished <- true;
          Log.debug (fun m -> m "t=%.3f finish pid=%d %s" t.time pid name);
          t.live <- t.live - 1);
      exnc = (fun e -> raise (Process_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                schedule t ~at:(t.time +. Float.max d 0.0) (fun () ->
                    Effect.Deep.continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Log.debug (fun m -> m "t=%.3f park pid=%d %s" t.time pid name);
                Hashtbl.replace t.parked pid name;
                let w =
                  {
                    fired = false;
                    resume =
                      (fun () ->
                        Log.debug (fun m -> m "t=%.3f wake pid=%d %s" t.time pid name);
                        Hashtbl.remove t.parked pid;
                        schedule t ~at:t.time (fun () -> Effect.Deep.continue k ()));
                  }
                in
                register w)
          | Env -> Some (fun k -> Effect.Deep.continue k env)
          | _ -> None);
    }
  in
  schedule t ~at:t.time (fun () -> Effect.Deep.match_with body () handler);
  pid

type outcome = Completed | Deadlocked of string list | Hit_limit

let run ?(limit = Float.infinity) t =
  let rec loop () =
    match Pqueue.peek t.events with
    | None ->
      if Hashtbl.length t.parked > 0 then begin
        let stuck = Hashtbl.fold (fun _ name acc -> name :: acc) t.parked [] in
        let stuck = List.sort String.compare stuck in
        Log.warn (fun m ->
            m "t=%.3f deadlock: %d process(es) parked forever: %s" t.time (List.length stuck)
              (String.concat ", " stuck));
        Deadlocked stuck
      end
      else Completed
    | Some (time, _, _) when time > limit -> Hit_limit
    | Some (time, _, _) ->
      let thunk =
        match Pqueue.pop t.events with
        | Some (_, _, thunk) -> thunk
        | None -> assert false
      in
      t.time <- Float.max t.time time;
      t.executed <- t.executed + 1;
      thunk ();
      loop ()
  in
  loop ()

let env () = try Effect.perform Env with Effect.Unhandled _ -> raise Not_in_process

let self_pid () = (env ()).proc.pid

let self_node () = (env ()).proc.node

let self_name () = (env ()).proc.name

let clock () = (env ()).engine.time

let delay d = try Effect.perform (Delay d) with Effect.Unhandled _ -> raise Not_in_process

let charge ~home =
  let { engine; proc } = env () in
  delay (Topology.access_cost engine.cost ~from:proc.node ~home)

let charge_n ~home n =
  let { engine; proc } = env () in
  let unit_cost = Topology.access_cost engine.cost ~from:proc.node ~home in
  delay (unit_cost *. float_of_int n)

let random_int n = Rng.int (env ()).proc.rng n

let random_float x = Rng.float (env ()).proc.rng x

let random_bool () = Rng.bool (env ()).proc.rng

let suspend register =
  try Effect.perform (Suspend register) with Effect.Unhandled _ -> raise Not_in_process

let wake w =
  if w.fired then invalid_arg "Engine.wake: wakeup already fired";
  w.fired <- true;
  w.resume ()
