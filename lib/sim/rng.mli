(** Deterministic pseudo-random number generator (re-exported from
    {!Cpool_util.Rng}; see there for documentation). *)

include module type of Cpool_util.Rng
