(** Discrete-event simulation engine with coroutine processes.

    A simulated multiprocessor: processes are plain OCaml functions pinned to
    a node; they advance virtual time by performing effects ({!delay},
    {!charge}, {!suspend}) that the engine interprets. The engine executes
    events in virtual-time order with deterministic tie-breaking, so a run is
    a pure function of the seed. All times are in microseconds.

    Functions documented as "inside a process" may only be called from within
    a function passed to {!spawn} during {!run}; elsewhere they raise
    [Not_in_process]. *)

type t
(** A simulation engine instance. *)

val log_src : Logs.src
(** The engine's log source ([cpool.sim.engine]). Spawns, completions,
    parks, wakes and deadlocks are logged at debug/warning level; enable
    with [Logs.Src.set_level Engine.log_src (Some Logs.Debug)] and a
    reporter. Logging never affects virtual time or determinism. *)

type pid = int
(** Process identifier, unique within an engine. *)

exception Not_in_process
(** Raised by process-context operations called outside a process. *)

exception Process_failure of string * exn
(** [Process_failure (name, exn)]: process [name] raised [exn]. *)

val create : ?cost:Topology.cost_model -> nodes:int -> seed:int64 -> unit -> t
(** [create ~nodes ~seed ()] is an engine simulating [nodes] processor nodes.
    [cost] defaults to {!Topology.butterfly}. Raises [Invalid_argument] if
    [nodes <= 0] or the cost model does not validate. *)

val nodes : t -> int
(** [nodes t] is the node count given at creation. *)

val cost_model : t -> Topology.cost_model
(** [cost_model t] is the engine's NUMA cost model. *)

val now : t -> float
(** [now t] is the current virtual time (callable from anywhere). *)

val events_executed : t -> int
(** [events_executed t] counts scheduler events processed so far. *)

val spawn : t -> node:Topology.node -> name:string -> (unit -> unit) -> pid
(** [spawn t ~node ~name body] registers a process to start at the current
    virtual time. Raises [Invalid_argument] if [node] is out of range. *)

type outcome =
  | Completed  (** Every spawned process ran to completion. *)
  | Deadlocked of string list
      (** The event queue drained while these processes were still suspended
          waiting for a wake-up that can no longer arrive. *)
  | Hit_limit
      (** The time limit passed to {!run} elapsed with work remaining. *)

val run : ?limit:float -> t -> outcome
(** [run t] executes events until the queue drains or virtual time would
    exceed [limit] (default: no limit). Re-raises process exceptions wrapped
    in {!Process_failure}. May be called repeatedly: processes spawned after
    a [run] are picked up by the next [run]. *)

(** {1 Process context operations} *)

val self_pid : unit -> pid
(** [self_pid ()] is the running process's identifier. *)

val self_node : unit -> Topology.node
(** [self_node ()] is the node the running process is pinned to. *)

val self_name : unit -> string
(** [self_name ()] is the running process's name. *)

val clock : unit -> float
(** [clock ()] is the current virtual time, inside a process. *)

val delay : float -> unit
(** [delay d] advances the process's virtual time by [max d 0.]; other
    processes may run in between. *)

val charge : home:Topology.node -> unit
(** [charge ~home] delays for the cost of one memory access to a word homed
    on [home], per the engine's cost model. *)

val charge_n : home:Topology.node -> int -> unit
(** [charge_n ~home n] charges [n] consecutive accesses. *)

val random_int : int -> int
(** [random_int n] draws uniformly from [\[0, n)] using the process's private
    deterministic stream. *)

val random_float : float -> float
(** [random_float x] draws uniformly from [\[0, x)]. *)

val random_bool : unit -> bool
(** [random_bool ()] is a fair coin flip from the process's stream. *)

type wakeup
(** A one-shot handle that resumes a suspended process. *)

val suspend : (wakeup -> unit) -> unit
(** [suspend register] parks the running process after calling
    [register w]; the process resumes (at the waker's virtual time) when
    some other process calls [wake w]. [register] must store [w] somewhere a
    waker will find it and must not call [wake] itself. *)

val wake : wakeup -> unit
(** [wake w] schedules the suspended process to resume at the current
    virtual time. Raises [Invalid_argument] if [w] was already woken. *)
