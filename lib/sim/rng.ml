(* Re-export: the generator lives in Cpool_util so that non-simulation
   libraries (the multicore pool) can share it. *)
include Cpool_util.Rng
