(** Simulated FIFO mutual-exclusion locks.

    A lock word lives on a home node; acquiring charges one access to that
    word (remote for most contenders, as on the Butterfly), and contended
    acquirers queue in FIFO order — an idealised queue lock. Waiting time
    under contention is the paper's main source of inter-process
    interference, and is captured exactly by the grant schedule; the busy
    cycles a real spinlock would burn are not modelled (documented in
    DESIGN.md). *)

type t
(** A simulated lock. *)

val make : home:Topology.node -> t
(** [make ~home] is a free lock whose word is homed on [home]. *)

val home : t -> Topology.node
(** [home l] is the lock word's home node. *)

val acquire : t -> unit
(** [acquire l] charges one access, then either takes the free lock or
    blocks until granted in FIFO order. Raises [Invalid_argument] if the
    calling process already holds [l] (the simulated machines have no
    recursive locks). *)

val release : t -> unit
(** [release l] charges one access and passes the lock to the oldest waiter,
    if any. Raises [Invalid_argument] if the caller does not hold [l]. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock l f] runs [f] under [l], releasing on exception too. *)

val holder : t -> Engine.pid option
(** [holder l] is the current holder, for instrumentation. *)

val acquisitions : t -> int
(** [acquisitions l] counts successful acquires so far. *)

val contended_acquisitions : t -> int
(** [contended_acquisitions l] counts acquires that had to wait. *)
