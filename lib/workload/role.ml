type t = Mixed of int | Producer | Consumer

let to_string = function
  | Mixed p -> Printf.sprintf "mixed(%d%% adds)" p
  | Producer -> "producer"
  | Consumer -> "consumer"

let check_participants participants =
  if participants <= 0 then invalid_arg "Role: participants must be positive"

let check_producers participants producers =
  check_participants participants;
  if producers < 0 || producers > participants then
    invalid_arg "Role: producers out of range"

let uniform_mix ~participants ~add_percent =
  check_participants participants;
  if add_percent < 0 || add_percent > 100 then invalid_arg "Role: add_percent out of [0, 100]";
  Array.make participants (Mixed add_percent)

let contiguous_producers ~participants ~producers =
  check_producers participants producers;
  Array.init participants (fun i -> if i < producers then Producer else Consumer)

let balanced_producers ~participants ~producers =
  check_producers participants producers;
  let roles = Array.make participants Consumer in
  (* Place producer k at round(k * participants / producers): as evenly
     spaced around the ring as integer positions allow. *)
  for k = 0 to producers - 1 do
    roles.(k * participants / producers) <- Producer
  done;
  (* Integer rounding can collide only if producers > participants, which
     is excluded; every slot above is distinct because k * n / p is
     strictly increasing for p <= n. *)
  roles

let producer_positions roles =
  Array.to_list roles
  |> List.mapi (fun i r -> (i, r))
  |> List.filter_map (fun (i, r) -> match r with Producer -> Some i | Mixed _ | Consumer -> None)

let effective_add_percent roles =
  let total =
    Array.fold_left
      (fun acc r -> acc + match r with Producer -> 100 | Consumer -> 0 | Mixed p -> p)
      0 roles
  in
  total / Array.length roles
