open Cpool_sim
open Cpool
open Cpool_metrics

type spec = {
  pool : Pool.config;
  roles : Role.t array;
  total_ops : int;
  initial_elements : int;
  seed : int64;
  cost : Topology.cost_model;
  record_trace : bool;
}

let default_spec =
  {
    pool = Pool.default_config;
    roles = Role.uniform_mix ~participants:16 ~add_percent:50;
    total_ops = 5000;
    initial_elements = 320;
    seed = 1L;
    cost = Topology.butterfly;
    record_trace = false;
  }

type result = {
  add_time : Sample.t;
  remove_time : Sample.t;
  steal_time : Sample.t;
  op_time : Sample.t;
  abort_time : Sample.t;
  segments_per_steal : Sample.t;
  elements_per_steal : Sample.t;
  aborts : int;
  ops_performed : int;
  pool_totals : Pool.totals;
  duration : float;
  trace : Trace.t option;
  final_sizes : int array;
}

let steal_fraction r =
  if r.pool_totals.Pool.removes = 0 then Float.nan
  else float_of_int r.pool_totals.Pool.steals /. float_of_int r.pool_totals.Pool.removes

(* Mutable per-phase measurement accumulator. *)
type phase_acc = {
  acc_add : Sample.t;
  acc_remove : Sample.t;
  acc_steal : Sample.t;
  acc_op : Sample.t;
  acc_abort : Sample.t;
  acc_segments : Sample.t;
  acc_elements : Sample.t;
  mutable acc_aborts : int;
  mutable acc_ops : int;
  mutable acc_start : float;
  mutable acc_end : float;
  mutable acc_snapshot : int array; (* segment sizes when the phase quota drained *)
}

let fresh_acc p =
  {
    acc_add = Sample.create ();
    acc_remove = Sample.create ();
    acc_steal = Sample.create ();
    acc_op = Sample.create ();
    acc_abort = Sample.create ();
    acc_segments = Sample.create ();
    acc_elements = Sample.create ();
    acc_aborts = 0;
    acc_ops = 0;
    acc_start = Float.infinity;
    acc_end = 0.0;
    acc_snapshot = Array.make p 0;
  }

let validate_phase p k (ops, roles) =
  if ops < 0 then invalid_arg (Printf.sprintf "Driver: phase %d has a negative quota" k);
  if Array.length roles <> p then
    invalid_arg (Printf.sprintf "Driver: phase %d needs one role per participant" k)

(* The core: run [phases] back to back on one pool. *)
let execute spec phases =
  let p = spec.pool.Pool.segments in
  List.iteri (validate_phase p) phases;
  if spec.initial_elements < 0 then invalid_arg "Driver.run: negative initial fill";
  let engine = Engine.create ~cost:spec.cost ~nodes:p ~seed:spec.seed () in
  let trace = if spec.record_trace then Some (Trace.create ~segments:p) else None in
  let on_size_change ~seg ~size =
    match trace with
    | Some t -> Trace.record t ~time:(Engine.now engine) ~seg ~size
    | None -> ()
  in
  let pool = Pool.create ~on_size_change spec.pool in
  (* Spread the initial fill evenly; a remainder goes to low segments. *)
  let base = spec.initial_elements / p and extra = spec.initial_elements mod p in
  Pool.prefill pool (fun i -> i) ~per_segment:base;
  for i = 0 to extra - 1 do
    Pool.prefill_segment pool ~seg:i ((base * p) + i)
  done;
  let phases = Array.of_list phases in
  let nphases = Array.length phases in
  let quotas = Array.map (fun (ops, _) -> Memory.make ~home:0 ops) phases in
  let accs = Array.init nphases (fun _ -> fresh_acc p) in
  let body i () =
    Pool.join pool;
    for k = 0 to nphases - 1 do
      let _, roles = phases.(k) in
      let acc = accs.(k) in
      let continue = ref true in
      while !continue do
        let before = Memory.fetch_add quotas.(k) (-1) in
        if before <= 0 then continue := false
        else begin
          if before = 1 then begin
            (* Last unit of this phase: snapshot the segment sizes as the
               phase boundary state. *)
            acc.acc_snapshot <- Array.init p (Pool.size_of_segment pool)
          end;
          acc.acc_ops <- acc.acc_ops + 1;
          let is_add =
            match roles.(i) with
            | Role.Producer -> true
            | Role.Consumer -> false
            | Role.Mixed percent -> Engine.random_int 100 < percent
          in
          let t0 = Engine.clock () in
          acc.acc_start <- Float.min acc.acc_start t0;
          (if is_add then begin
             let outcome = Pool.add_bounded pool ~me:i (Engine.random_int 1_000_000) in
             let dt = Engine.clock () -. t0 in
             Sample.add acc.acc_op dt;
             match outcome with
             | Pool.Added_locally | Pool.Spilled _ | Pool.Delivered _ ->
               Sample.add acc.acc_add dt
             | Pool.Rejected ->
               (* A full pool: the failed attempt still consumed quota and
                  time, like an aborted remove. *)
               ()
           end
           else
             match Pool.remove pool ~me:i with
             | Pool.Local _ ->
               let dt = Engine.clock () -. t0 in
               Sample.add acc.acc_remove dt;
               Sample.add acc.acc_op dt
             | Pool.Stolen (_, stats) ->
               let dt = Engine.clock () -. t0 in
               Sample.add acc.acc_remove dt;
               Sample.add acc.acc_steal dt;
               Sample.add acc.acc_op dt;
               Sample.add_int acc.acc_segments stats.Steal.segments_examined;
               Sample.add_int acc.acc_elements stats.Steal.elements_stolen
             | Pool.Empty _ ->
               let dt = Engine.clock () -. t0 in
               Sample.add acc.acc_abort dt;
               Sample.add acc.acc_op dt;
               acc.acc_aborts <- acc.acc_aborts + 1);
          acc.acc_end <- Float.max acc.acc_end (Engine.clock ())
        end
      done
    done;
    Pool.leave pool
  in
  for i = 0 to p - 1 do
    ignore (Engine.spawn engine ~node:i ~name:(Printf.sprintf "proc%d" i) (body i))
  done;
  (match Engine.run engine with
  | Engine.Completed -> ()
  | Engine.Deadlocked names ->
    failwith ("Driver.run: simulation deadlocked: " ^ String.concat "," names)
  | Engine.Hit_limit -> assert false);
  (* Convert accumulators to results. Per-phase totals are reconstructed
     from the per-phase samples (adds/removes/steals/aborts are recorded
     per phase); counters only the pool tracks (spills, deliveries,
     rejects) are reported as 0 per phase — single-phase [run] substitutes
     the pool's exact totals. *)
  let all_totals = Pool.totals pool in
  let results = ref [] in
  for k = nphases - 1 downto 0 do
    let acc = accs.(k) in
    let phase_totals =
      {
        Pool.adds = Sample.n acc.acc_add;
        removes = Sample.n acc.acc_remove;
        steals = Sample.n acc.acc_steal;
        aborts = acc.acc_aborts;
        spills = 0;
        deliveries = 0;
        rejected_adds = 0;
        segments_examined = int_of_float (Sample.total acc.acc_segments);
        elements_stolen = int_of_float (Sample.total acc.acc_elements);
      }
    in
    results :=
      {
        add_time = acc.acc_add;
        remove_time = acc.acc_remove;
        steal_time = acc.acc_steal;
        op_time = acc.acc_op;
        abort_time = acc.acc_abort;
        segments_per_steal = acc.acc_segments;
        elements_per_steal = acc.acc_elements;
        aborts = acc.acc_aborts;
        ops_performed = acc.acc_ops;
        pool_totals = phase_totals;
        duration =
          (if Float.is_finite acc.acc_start then acc.acc_end -. acc.acc_start else 0.0);
        trace;
        final_sizes =
          (if k = nphases - 1 then Array.init p (Pool.size_of_segment pool)
           else acc.acc_snapshot);
      }
      :: !results
  done;
  (!results, all_totals, Engine.now engine, pool)

let run spec =
  if Array.length spec.roles <> spec.pool.Pool.segments then
    invalid_arg "Driver.run: one role per participant required";
  if spec.total_ops < 0 then invalid_arg "Driver.run: negative quota";
  match execute spec [ (spec.total_ops, spec.roles) ] with
  | [ result ], all_totals, now, pool ->
    (* For a single phase the pool's own totals are exact (they include
       spills/deliveries/rejects); prefer them. *)
    {
      result with
      pool_totals = all_totals;
      duration = now;
      final_sizes =
        Array.init spec.pool.Pool.segments (Cpool.Pool.size_of_segment pool);
    }
  | _ -> assert false

let run_phases spec phases =
  if phases = [] then invalid_arg "Driver.run_phases: no phases";
  let results, _, _, _ = execute spec phases in
  results

let run_trials ~trials spec =
  if trials <= 0 then invalid_arg "Driver.run_trials: trials must be positive";
  List.init trials (fun k ->
      run { spec with seed = Int64.add spec.seed (Int64.of_int (k * 1_000_003)) })

let mean_of field results =
  let means =
    List.filter_map
      (fun r ->
        let s = field r in
        if Sample.is_empty s then None else Some (Sample.mean s))
      results
  in
  match means with
  | [] -> Float.nan
  | _ -> List.fold_left ( +. ) 0.0 means /. float_of_int (List.length means)
