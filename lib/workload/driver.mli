(** The experiment driver: one measured pool run (paper Section 3.4).

    Spawns one simulated process per participant; processes draw operations
    according to their roles and keep operating "until the combined total
    number of operations reached the desired amount" — a shared fetch-add
    quota, itself a remote access for most processes, as in the paper. The
    pool starts nearly empty (320 elements against 5000 operations in the
    paper's configuration), forcing dependence on concurrently added
    elements. *)

type spec = {
  pool : Cpool.Pool.config;
  roles : Role.t array;  (** One role per participant. *)
  total_ops : int;  (** Combined operation quota (paper: 5000). *)
  initial_elements : int;
      (** Elements prefilled, spread evenly over segments (paper: 320). *)
  seed : int64;
  cost : Cpool_sim.Topology.cost_model;
  record_trace : bool;  (** Record segment sizes over time (Figures 3-6). *)
}

val default_spec : spec
(** The paper's stress configuration: 16 participants, linear search,
    counting segments, 5000 ops, 320 initial elements, Butterfly costs,
    uniform 50% mix, no trace. *)

(** Everything measured in one trial. *)
type result = {
  add_time : Cpool_metrics.Sample.t;  (** Time of each add, us. *)
  remove_time : Cpool_metrics.Sample.t;
      (** Time of each successful remove (local or stolen), us. *)
  steal_time : Cpool_metrics.Sample.t;
      (** Time of each remove that required a steal, us. *)
  op_time : Cpool_metrics.Sample.t;
      (** Time of every operation, including removes that aborted on an
          empty pool — Figure 2's metric (at sparse mixes the long
          searches of failed removes dominate, as in the paper). *)
  abort_time : Cpool_metrics.Sample.t;
      (** Time of each remove that aborted. *)
  segments_per_steal : Cpool_metrics.Sample.t;
      (** Segments examined by each successful steal. *)
  elements_per_steal : Cpool_metrics.Sample.t;
      (** Elements obtained by each successful steal (Figure 7's metric). *)
  aborts : int;  (** Removes that aborted on a confirmed-empty pool. *)
  ops_performed : int;  (** Operations charged against the quota. *)
  pool_totals : Cpool.Pool.totals;
  duration : float;  (** Virtual time from start to last process exit. *)
  trace : Cpool_metrics.Trace.t option;  (** Present iff [record_trace]. *)
  final_sizes : int array;  (** Segment sizes when the run ended. *)
}

val steal_fraction : result -> float
(** [steal_fraction r] is the fraction of successful removes that required
    a steal ("the percentage of remove operations that required a steal, in
    effect, the frequency of steal operations"); [nan] if no removes. *)

val run : spec -> result
(** [run spec] executes one complete trial on a fresh engine. Raises
    [Invalid_argument] if [roles] length differs from the participant
    count, or quotas/fills are negative. *)

val run_phases : spec -> (int * Role.t array) list -> result list
(** [run_phases spec phases] runs the phases back to back on one pool and
    engine — the paper's observation that real workloads have "an initial
    phase with more than sufficient adds (as the pool is filled), a stable
    phase, and a more sparse termination phase" (Section 3.5), and that
    producer/consumer roles "may change dynamically over time" (Section
    3.3). Each phase [(ops, roles)] has its own shared quota and its own
    measurements; pool contents carry across phases. [spec.roles] and
    [spec.total_ops] are ignored. Results are per-phase, in order. Raises
    [Invalid_argument] on an empty phase list or mismatched role arrays. *)

val run_trials : trials:int -> spec -> result list
(** [run_trials ~trials spec] runs [trials] independent trials whose seeds
    derive from [spec.seed] (the paper averages ten). *)

val mean_of : (result -> Cpool_metrics.Sample.t) -> result list -> float
(** [mean_of field results] averages [Sample.mean (field r)] over the
    trials that have data, weighting trials equally as the paper does;
    [nan] if none do. *)
