(** Process roles and producer arrangements (paper Sections 3.3 and 4.2).

    In the random-operations model every process performs the same mix of
    adds and removes; in the producer/consumer model each process is fixed
    as a producer (only adds) or consumer (only removes) for the whole run.
    The paper shows the *arrangement* of producers matters: contiguous
    producers cause consumer bunching, spread-out ("balanced") producers
    fix it. *)

type t =
  | Mixed of int
      (** [Mixed percent]: each operation is an add with probability
          [percent]/100, a remove otherwise. *)
  | Producer  (** Only performs adds. *)
  | Consumer  (** Only performs removes. *)

val to_string : t -> string

val uniform_mix : participants:int -> add_percent:int -> t array
(** [uniform_mix ~participants ~add_percent] assigns every process the same
    job mix. Raises [Invalid_argument] if [add_percent] is outside
    [\[0, 100\]] or [participants <= 0]. *)

val contiguous_producers : participants:int -> producers:int -> t array
(** [contiguous_producers ~participants ~producers] places the producers in
    positions [0 .. producers-1] — the paper's unbalanced arrangement, where
    "all consumers will encounter the same producer first". Raises
    [Invalid_argument] unless [0 <= producers <= participants]. *)

val balanced_producers : participants:int -> producers:int -> t array
(** [balanced_producers ~participants ~producers] spreads the producers as
    evenly as possible around the ring (e.g. 5 producers among 16 processes
    occupy positions 0, 3, 6, 9, 12 — "the segments of all producers
    (processes 0 2 4 8 12) are accessed" in the paper's 5-producer figure).
    Raises [Invalid_argument] unless [0 <= producers <= participants]. *)

val producer_positions : t array -> int list
(** [producer_positions roles] lists the indices assigned [Producer]. *)

val effective_add_percent : t array -> int
(** [effective_add_percent roles] is the overall percentage of operations
    that are adds if every process issues operations at the same rate — the
    x-axis the paper uses to plot producer/consumer runs alongside random
    ones in Figure 2 (k producers of n give 100k/n% adds). [Mixed] roles
    contribute their own percentage. *)
