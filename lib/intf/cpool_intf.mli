(** The shared pool interface: one [kind] type for every pool.

    Both the simulated pool ({!Cpool.Pool}) and the real multicore pool
    ({!Cpool_mc.Mc_pool}) implement the same four search algorithms, so
    they re-export this single [kind] — callers, CLIs and configs name an
    algorithm once and use it against either implementation. *)

type kind =
  | Linear  (** Ring scan from the last successful segment (paper §3.1). *)
  | Random  (** Uniform random probes (paper §3.2). *)
  | Tree  (** Manber's tournament-tree walk (paper §3.3). *)
  | Hinted
      (** Linear search plus a hint board: an empty-handed searcher
          announces itself and adders deliver elements directly into its
          segment (paper §5). *)

val all : kind list
(** Every kind, in presentation order: [Linear; Random; Tree; Hinted]. *)

val to_string : kind -> string
(** Lowercase names: ["linear"], ["random"], ["tree"], ["hinted"]. *)

val of_string : string -> (kind, string) result
(** Case-insensitive inverse of {!to_string}; [Error] carries a message
    listing the valid kinds. *)
