(** The shared pool interface: one [kind] type for every pool.

    Both the simulated pool ({!Cpool.Pool}) and the real multicore pool
    ({!Cpool_mc.Mc_pool}) implement the same four search algorithms, so
    they re-export this single [kind] — callers, CLIs and configs name an
    algorithm once and use it against either implementation. *)

type kind =
  | Linear  (** Ring scan from the last successful segment (paper §3.1). *)
  | Random  (** Uniform random probes (paper §3.2). *)
  | Tree  (** Manber's tournament-tree walk (paper §3.3). *)
  | Hinted
      (** Linear search plus a hint board: an empty-handed searcher
          announces itself and adders deliver elements directly into its
          segment (paper §5). *)

val all : kind list
(** Every kind, in presentation order: [Linear; Random; Tree; Hinted]. *)

val to_string : kind -> string
(** Lowercase names: ["linear"], ["random"], ["tree"], ["hinted"]. *)

val of_string : string -> (kind, string) result
(** Case-insensitive inverse of {!to_string}; [Error] carries a message
    listing the valid kinds. *)

(** A workload scenario spec shared by every driver (mc-stress,
    mc-throughput, mc-siege): op mix, initial sparsity, arrival process,
    duration and producer arrangement, with one [of_string]/[to_string]
    pair so any cell is reproducible from a single printed string. *)
module Workload : sig
  (** How load arrives. [Closed] is the classic closed loop (workers spin
      as fast as the pool allows); the open-loop processes draw
      inter-arrival gaps independently of pool latency, which is what
      exposes queueing collapse. *)
  type arrival =
    | Closed
    | Poisson of float  (** arrivals/s across all producers. *)
    | Bursty of { rate : float; on_ms : float; off_ms : float }
        (** On/off Markov process: exponential on/off sojourns with the
            given mean durations; [rate] is the long-run average
            arrivals/s, so bursts run at [rate * (on + off) / on]. *)

  (** Who produces. [Uniform]: every worker both adds and removes
      (closed-loop style). [Balanced k]: [k] producers spread evenly
      around the segment ring, the rest consume. [Unbalanced k]: [k]
      producers packed into contiguous low slots (the paper's skewed
      arrangement — with a topology, all in one locality group). *)
  type arrangement = Uniform | Balanced of int | Unbalanced of int

  type t = {
    mix : float;  (** Add fraction in [0, 1] for closed-loop ops. *)
    initial : int;  (** Elements prefilled per segment. *)
    arrival : arrival;
    duration_s : float;  (** Seconds of load. *)
    arrangement : arrangement;
  }

  val default : t
  (** Closed loop, mix 0.5, 32 initial per segment, 1 s, uniform. *)

  val sufficient : t
  (** The paper's well-stocked regime: mix 0.65, 256 initial. *)

  val sparse : t
  (** The paper's starved regime: mix 0.35, 8 initial. *)

  val siege : t
  (** Open-loop starting cell: Poisson 2000/s, 2 balanced producers,
      0.3 s, empty start. *)

  val closed : t -> bool
  (** Whether the arrival process is [Closed]. *)

  val sparse_regime : t -> bool
  (** [mix < 0.5] — drivers use this to pick remove-heavy behaviour
      (e.g. blocking removes in the throughput harness). *)

  val offered_rate : t -> float option
  (** The open-loop offered load in arrivals/s; [None] when closed. *)

  val with_rate : t -> float -> t
  (** Replace the offered rate (the saturation search's sweep variable).
      Raises [Invalid_argument] on a closed workload. *)

  val mix_label : t -> string
  (** ["sufficient"] / ["sparse"] for the canonical mix+initial pairs,
      else ["mix0.4/init16"]-style — the label benchmark JSON carries. *)

  val label : t -> string
  (** Human-oriented cell label: {!mix_label} plus any non-default
      arrival and arrangement. *)

  val to_string : t -> string
  (** Canonical spec string; round-trips through {!of_string}. *)

  val of_string : string -> (t, string) result
  (** Parse a spec: an optional preset name ([default], [sufficient],
      [sparse], [siege]) followed by comma-separated [key=value] settings
      ([mix=F], [initial=N], [duration=S],
      [arrival=closed|poisson:RATE|bursty:RATE:ON_MS:OFF_MS],
      [arrangement=uniform|balanced:K|unbalanced:K]). Case-insensitive;
      later settings override earlier ones. [Error] carries a message
      followed by {!valid_forms}. *)

  val valid_forms : string
  (** Multi-line help text listing every accepted form; CLIs print it on
      stderr when a spec fails to parse. *)

  val equal : t -> t -> bool
end
