type kind = Linear | Random | Tree | Hinted

let all = [ Linear; Random; Tree; Hinted ]

let to_string = function
  | Linear -> "linear"
  | Random -> "random"
  | Tree -> "tree"
  | Hinted -> "hinted"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "linear" -> Ok Linear
  | "random" -> Ok Random
  | "tree" -> Ok Tree
  | "hinted" -> Ok Hinted
  | _ ->
    Error
      (Printf.sprintf "unknown pool kind %S (valid kinds: %s)" s
         (String.concat ", " (List.map to_string all)))

module Workload = struct
  type arrival =
    | Closed
    | Poisson of float
    | Bursty of { rate : float; on_ms : float; off_ms : float }

  type arrangement = Uniform | Balanced of int | Unbalanced of int

  type t = {
    mix : float;
    initial : int;
    arrival : arrival;
    duration_s : float;
    arrangement : arrangement;
  }

  let default =
    {
      mix = 0.5;
      initial = 32;
      arrival = Closed;
      duration_s = 1.0;
      arrangement = Uniform;
    }

  (* The paper's two closed-loop regimes: sufficient keeps every segment
     stocked, sparse runs the pool dry so removes mostly probe and steal. *)
  let sufficient = { default with mix = 0.65; initial = 256 }

  let sparse = { default with mix = 0.35; initial = 8 }

  (* The open-loop siege starting cell: two producers spread across the
     ring, everyone else consumes, arrivals Poisson at a deliberately easy
     rate (the saturation search ramps from here). *)
  let siege =
    {
      default with
      initial = 0;
      arrival = Poisson 2000.0;
      duration_s = 0.3;
      arrangement = Balanced 2;
    }

  let closed t = t.arrival = Closed

  let sparse_regime t = t.mix < 0.5

  let offered_rate t =
    match t.arrival with
    | Closed -> None
    | Poisson r -> Some r
    | Bursty { rate; _ } -> Some rate

  let with_rate t rate =
    match t.arrival with
    | Closed -> invalid_arg "Workload.with_rate: closed-loop workload"
    | Poisson _ -> { t with arrival = Poisson rate }
    | Bursty b -> { t with arrival = Bursty { b with rate } }

  let arrival_to_string = function
    | Closed -> "closed"
    | Poisson r -> Printf.sprintf "poisson:%g" r
    | Bursty { rate; on_ms; off_ms } ->
      Printf.sprintf "bursty:%g:%g:%g" rate on_ms off_ms

  let arrangement_to_string = function
    | Uniform -> "uniform"
    | Balanced k -> Printf.sprintf "balanced:%d" k
    | Unbalanced k -> Printf.sprintf "unbalanced:%d" k

  let to_string t =
    Printf.sprintf "mix=%g,initial=%d,arrival=%s,duration=%g,arrangement=%s"
      t.mix t.initial (arrival_to_string t.arrival) t.duration_s
      (arrangement_to_string t.arrangement)

  let mix_label t =
    if t.mix = sufficient.mix && t.initial = sufficient.initial then "sufficient"
    else if t.mix = sparse.mix && t.initial = sparse.initial then "sparse"
    else Printf.sprintf "mix%g/init%d" t.mix t.initial

  let label t =
    let base = mix_label t in
    let base =
      match t.arrival with
      | Closed -> base
      | a -> base ^ "+" ^ arrival_to_string a
    in
    match t.arrangement with
    | Uniform -> base
    | a -> base ^ "/" ^ arrangement_to_string a

  let valid_forms =
    String.concat "\n"
      [
        "a workload spec is a comma-separated list of key=value settings,";
        "optionally starting with a preset name:";
        "  presets:      sufficient  (65% adds, 256 initial per segment)";
        "                sparse      (35% adds, 8 initial per segment)";
        "                default     (50% adds, 32 initial per segment)";
        "                siege       (open-loop: poisson:2000, balanced:2, 0.3 s)";
        "  mix=F         add fraction in [0, 1] (the closed-loop op mix)";
        "  initial=N     elements prefilled per segment";
        "  duration=S    seconds of load (positive)";
        "  arrival=A     closed | poisson:RATE | bursty:RATE:ON_MS:OFF_MS";
        "                (RATE in arrivals/s across all producers)";
        "  arrangement=R uniform | balanced:K | unbalanced:K  (K producers)";
        "examples: \"sparse\", \"sufficient,duration=2\",";
        "          \"arrival=poisson:8000,arrangement=balanced:2,duration=0.5\"";
      ]

  let err fmt = Printf.ksprintf (fun msg -> Error (msg ^ "\n" ^ valid_forms)) fmt

  let parse_float ~what s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Ok f
    | Some _ | None -> err "%s: %S is not a finite number" what s

  let parse_arrival s =
    match String.split_on_char ':' s with
    | [ "closed" ] -> Ok Closed
    | [ "poisson"; r ] -> (
      match parse_float ~what:"arrival rate" r with
      | Ok rate when rate > 0.0 -> Ok (Poisson rate)
      | Ok _ -> err "arrival rate must be positive in %S" s
      | Error _ as e -> e)
    | [ "bursty"; r; on_ms; off_ms ] -> (
      match
        ( parse_float ~what:"arrival rate" r,
          parse_float ~what:"burst on_ms" on_ms,
          parse_float ~what:"burst off_ms" off_ms )
      with
      | Ok rate, Ok on_ms, Ok off_ms ->
        if rate > 0.0 && on_ms > 0.0 && off_ms > 0.0 then
          Ok (Bursty { rate; on_ms; off_ms })
        else err "bursty rate/on_ms/off_ms must all be positive in %S" s
      | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) -> e)
    | _ -> err "bad arrival %S" s

  let parse_arrangement s =
    let producers what k =
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok k
      | Some _ | None -> err "%s needs a positive producer count, got %S" what k
    in
    match String.split_on_char ':' s with
    | [ "uniform" ] -> Ok Uniform
    | [ "balanced"; k ] -> Result.map (fun k -> Balanced k) (producers "balanced" k)
    | [ "unbalanced"; k ] ->
      Result.map (fun k -> Unbalanced k) (producers "unbalanced" k)
    | _ -> err "bad arrangement %S" s

  let preset = function
    | "default" -> Some default
    | "sufficient" -> Some sufficient
    | "sparse" -> Some sparse
    | "siege" -> Some siege
    | _ -> None

  let of_string s =
    let ( let* ) = Result.bind in
    let tokens =
      List.filter (fun tok -> tok <> "")
        (List.map String.trim
           (String.split_on_char ',' (String.lowercase_ascii (String.trim s))))
    in
    let base, settings =
      match tokens with
      | first :: rest when not (String.contains first '=') -> (
        match preset first with
        | Some w -> (Ok w, rest)
        | None -> (err "unknown workload preset %S" first, rest))
      | _ -> (Ok default, tokens)
    in
    let* base = base in
    let apply acc tok =
      let* w = acc in
      match String.index_opt tok '=' with
      | None -> err "expected key=value, got %S" tok
      | Some i -> (
        let key = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        match key with
        | "mix" ->
          let* mix = parse_float ~what:"mix" v in
          if mix >= 0.0 && mix <= 1.0 then Ok { w with mix }
          else err "mix must be in [0, 1], got %g" mix
        | "initial" -> (
          match int_of_string_opt v with
          | Some initial when initial >= 0 -> Ok { w with initial }
          | Some _ | None -> err "initial must be a non-negative count, got %S" v)
        | "duration" ->
          let* duration_s = parse_float ~what:"duration" v in
          if duration_s > 0.0 then Ok { w with duration_s }
          else err "duration must be positive, got %g" duration_s
        | "arrival" ->
          let* arrival = parse_arrival v in
          Ok { w with arrival }
        | "arrangement" ->
          let* arrangement = parse_arrangement v in
          Ok { w with arrangement }
        | _ -> err "unknown workload key %S" key)
    in
    if tokens = [] then err "empty workload spec"
    else List.fold_left apply (Ok base) settings

  let equal = ( = )
end
