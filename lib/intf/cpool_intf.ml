type kind = Linear | Random | Tree | Hinted

let all = [ Linear; Random; Tree; Hinted ]

let to_string = function
  | Linear -> "linear"
  | Random -> "random"
  | Tree -> "tree"
  | Hinted -> "hinted"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "linear" -> Ok Linear
  | "random" -> Ok Random
  | "tree" -> Ok Tree
  | "hinted" -> Ok Hinted
  | _ ->
    Error
      (Printf.sprintf "unknown pool kind %S (valid kinds: %s)" s
         (String.concat ", " (List.map to_string all)))
