(* Shared locality model: one description of "which segments are close"
   consumed by both the simulator cost model (lib/sim/topology.ml) and the
   real multicore pool (Mc_pool ~topology).

   Distances are multipliers on the cost of a local access: the diagonal is
   exactly 1.0 and every off-diagonal entry is >= 1.0 (the paper's Butterfly
   is ~4x). Groups (sockets) are the connected components of the
   distance-1.0 graph. [unit_ns] converts one distance unit above local into
   nanoseconds for the real-domain emulation of remote latency. *)

type source =
  | Groups of { sizes : int list; near : float; far : float }
  | Matrix

type t = {
  nodes : int;
  group_of : int array;
  dist : float array array;
  unit_ns : int;
  source : source;
}

let default_unit_ns = 1_000

let nodes t = t.nodes
let unit_ns t = t.unit_ns
let group t i = t.group_of.(i)
let distance t ~from ~to_ = t.dist.(from).(to_)
let near t i j = t.group_of.(i) = t.group_of.(j)

let groups t =
  Array.fold_left (fun acc g -> max acc (g + 1)) 0 t.group_of

let max_distance t =
  Array.fold_left
    (fun acc row -> Array.fold_left max acc row)
    1.0 t.dist

let ( let* ) r f = Result.bind r f

let check_unit_ns u =
  if u <= 0 then Error "unit_ns must be positive" else Ok u

(* Groups as connected components of the dist = 1.0 graph, numbered in
   first-seen node order so group ids are deterministic. *)
let derive_groups dist =
  let n = Array.length dist in
  let group_of = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if group_of.(i) < 0 then begin
      let g = !next in
      incr next;
      let rec flood i =
        group_of.(i) <- g;
        for j = 0 to n - 1 do
          if group_of.(j) < 0 && dist.(i).(j) = 1.0 then flood j
        done
      in
      flood i
    end
  done;
  group_of

let of_matrix ?(unit_ns = default_unit_ns) m =
  let n = Array.length m in
  let* unit_ns = check_unit_ns unit_ns in
  if n = 0 then Error "matrix must be non-empty"
  else if Array.exists (fun row -> Array.length row <> n) m then
    Error "matrix must be square"
  else begin
    let dist = Array.map Array.copy m in
    let bad = ref None in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let d = dist.(i).(j) in
        if not (Float.is_finite d) || (i = j && d <> 1.0) then
          bad := Some "diagonal entries must be 1.0 and finite"
        else if i <> j && d < 1.0 then
          bad := Some "off-diagonal distances must be >= 1.0"
        else if dist.(j).(i) <> d then bad := Some "matrix must be symmetric"
      done
    done;
    match !bad with
    | Some msg -> Error msg
    | None ->
      Ok { nodes = n; group_of = derive_groups dist; dist; unit_ns;
           source = Matrix }
  end

let of_groups ?(near = 1.0) ?(far = 4.0) ?(unit_ns = default_unit_ns) sizes =
  let* unit_ns = check_unit_ns unit_ns in
  if sizes = [] then Error "groups must be non-empty"
  else if List.exists (fun s -> s <= 0) sizes then
    Error "group sizes must be positive"
  else if not (Float.is_finite near) || near < 1.0 then
    Error "near distance must be >= 1.0"
  else if not (Float.is_finite far) || far < near then
    Error "far distance must be >= the near distance"
  else begin
    let n = List.fold_left ( + ) 0 sizes in
    let group_of = Array.make n 0 in
    let i = ref 0 in
    List.iteri
      (fun g size ->
        for _ = 1 to size do
          group_of.(!i) <- g;
          incr i
        done)
      sizes;
    let dist =
      Array.init n (fun i ->
          Array.init n (fun j ->
              if i = j then 1.0
              else if group_of.(i) = group_of.(j) then near
              else far))
    in
    (* [derive_groups] only sees near = 1.0 pairs as one component; keep the
       declared grouping (it is what affinity placement should follow even
       when near > 1.0). *)
    Ok { nodes = n; group_of; dist; unit_ns; source = Groups { sizes; near; far } }
  end

let two_group ?(penalty = 4.0) ?unit_ns ~nodes () =
  if nodes < 2 then invalid_arg "Cpool_topology.two_group: nodes must be >= 2";
  let half = nodes / 2 in
  match of_groups ?unit_ns ~near:1.0 ~far:penalty [ half; nodes - half ] with
  | Ok t -> t
  | Error msg -> invalid_arg ("Cpool_topology.two_group: " ^ msg)

let scale_remote t k =
  if not (Float.is_finite k) || k < 0.0 then
    invalid_arg "Cpool_topology.scale_remote: scale must be >= 0";
  let remap d = 1.0 +. ((d -. 1.0) *. k) in
  let dist =
    Array.mapi
      (fun i row -> Array.mapi (fun j d -> if i = j then 1.0 else remap d) row)
      t.dist
  in
  let source =
    match t.source with
    | Groups { sizes; near; far } ->
      Groups { sizes; near = remap near; far = remap far }
    | Matrix -> Matrix
  in
  { t with dist; source }

(* Probe orders ------------------------------------------------------- *)

let near_first_order t ~from =
  let n = t.nodes in
  let order = Array.init n (fun i -> i) in
  let key j =
    (* Own slot first (offset 0 at distance 1.0), then ascending distance,
       ties broken by ring offset so the order is deterministic. *)
    (t.dist.(from).(j), (j - from + n) mod n)
  in
  Array.sort (fun a b -> compare (key a) (key b)) order;
  order

(* Spans of equal distance within [near_first_order], excluding position 0
   (the probing slot itself stays pinned first). Used to shuffle Random-kind
   probes inside each distance bucket without breaking near-before-far. *)
let distance_spans t ~from order =
  let n = t.nodes in
  let spans = ref [] in
  let start = ref 1 in
  for i = 2 to n do
    let boundary =
      i = n
      || t.dist.(from).(order.(i)) <> t.dist.(from).(order.(!start))
    in
    if boundary then begin
      if i - !start > 1 then spans := (!start, i - !start) :: !spans;
      start := i
    end
  done;
  List.rev !spans

(* Nodes sorted by (group, index): clusters each group contiguously, for
   mapping segments onto tree leaves so subtrees are locality groups. *)
let group_major_order t =
  let order = Array.init t.nodes (fun i -> i) in
  Array.sort
    (fun a b -> compare (t.group_of.(a), a) (t.group_of.(b), b))
    order;
  order

(* Parsing ------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of_line line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: not a number: %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" what s)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let parse text =
  let lines =
    String.split_on_char '\n' text |> List.map tokens_of_line
    |> List.filter (fun l -> l <> [])
  in
  let sizes = ref None
  and near = ref None
  and far = ref None
  and unit_ns = ref None
  and rows = ref []
  and in_matrix = ref false
  and err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let set what r v =
    match !r with
    | Some _ -> fail (Printf.sprintf "duplicate %s line" what)
    | None -> r := Some v
  in
  List.iter
    (fun line ->
      if !err <> None then ()
      else
        match line with
        | "groups" :: raw ->
          in_matrix := false;
          (match map_result (parse_int "groups") raw with
          | Ok [] -> fail "groups: expected at least one size"
          | Ok sz -> set "groups" sizes sz
          | Error e -> fail e)
        | [ "near"; raw ] -> (
          in_matrix := false;
          match parse_float "near" raw with
          | Ok v -> set "near" near v
          | Error e -> fail e)
        | [ "far"; raw ] -> (
          in_matrix := false;
          match parse_float "far" raw with
          | Ok v -> set "far" far v
          | Error e -> fail e)
        | [ "unit_ns"; raw ] -> (
          in_matrix := false;
          match parse_int "unit_ns" raw with
          | Ok v -> set "unit_ns" unit_ns v
          | Error e -> fail e)
        | [ "matrix" ] ->
          if !rows <> [] then fail "duplicate matrix line";
          in_matrix := true
        | raw when !in_matrix -> (
          match map_result (parse_float "matrix") raw with
          | Ok row -> rows := Array.of_list row :: !rows
          | Error e -> fail e)
        | tok :: _ -> fail (Printf.sprintf "unknown directive %S" tok)
        | [] -> ())
    lines;
  match !err with
  | Some msg -> Error msg
  | None -> (
    let unit_ns = Option.value !unit_ns ~default:default_unit_ns in
    match (!sizes, List.rev !rows) with
    | Some _, _ :: _ -> Error "cannot combine groups and matrix"
    | None, [] -> Error "expected a groups or matrix directive"
    | Some sizes, [] ->
      of_groups ?near:!near ?far:!far ~unit_ns sizes
    | None, rows ->
      if !near <> None || !far <> None then
        Error "near/far apply only to groups topologies"
      else of_matrix ~unit_ns (Array.of_list rows))

let to_string t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# cpool topology (%d nodes, %d groups)" t.nodes (groups t);
  (match t.source with
  | Groups { sizes; near; far } ->
    line "groups %s" (String.concat " " (List.map string_of_int sizes));
    line "near %g" near;
    line "far %g" far
  | Matrix ->
    line "matrix";
    Array.iter
      (fun row ->
        line "%s"
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "%g") row))))
      t.dist);
  line "unit_ns %d" t.unit_ns;
  Buffer.contents b

let label t =
  match t.source with
  | Groups { sizes; far; _ } ->
    Printf.sprintf "groups:%s:far%g"
      (String.concat "+" (List.map string_of_int sizes))
      far
  | Matrix -> Printf.sprintf "matrix:%dx%d" t.nodes t.nodes

let equal a b =
  a.nodes = b.nodes && a.group_of = b.group_of && a.dist = b.dist
  && a.unit_ns = b.unit_ns
