(** Shared locality model for the pools: socket/core groups or an explicit
    symmetric distance matrix, consumed by both the simulator cost model
    ({!Cpool_sim.Topology}) and the real multicore pool
    ([Mc_pool.create ~topology]).

    A distance is a multiplier on the cost of one local access: the
    diagonal is exactly [1.0] and off-diagonal entries are [>= 1.0] (the
    paper's Butterfly pays ~4x for remote). Groups are locality domains
    (sockets): for matrix topologies they are derived as the connected
    components of the distance-[1.0] graph; for group topologies they are
    as declared. [unit_ns] converts one distance unit above local into
    nanoseconds when the real pool emulates remote latency. *)

type t

val default_unit_ns : int
(** Emulated cost of one distance unit above local, in ns ([1_000]). *)

(** {1 Constructors} *)

val of_groups :
  ?near:float -> ?far:float -> ?unit_ns:int -> int list -> (t, string) result
(** [of_groups sizes] is a topology of [List.length sizes] locality groups
    with the given node counts; nodes in the same group are [near] apart
    (default [1.0]), nodes in different groups [far] apart (default [4.0],
    the Butterfly ratio). Rejects empty or non-positive sizes,
    [near < 1.0], [far < near], and non-positive [unit_ns]. *)

val of_matrix : ?unit_ns:int -> float array array -> (t, string) result
(** [of_matrix m] is a topology described by an explicit distance matrix.
    Rejects empty or non-square or asymmetric matrices, diagonals other
    than [1.0], off-diagonal entries [< 1.0], and non-finite entries. *)

val two_group : ?penalty:float -> ?unit_ns:int -> nodes:int -> unit -> t
(** [two_group ~nodes ()] is the synthetic CI preset: two groups of
    [nodes / 2] and [nodes - nodes / 2] nodes, distance [1.0] within a
    group and [penalty] (default [4.0]) across. Raises [Invalid_argument]
    if [nodes < 2] or the penalty is invalid. *)

val scale_remote : t -> float -> t
(** [scale_remote t k] maps every off-diagonal distance [d] to
    [1.0 +. (d -. 1.0) *. k], preserving the group structure: [k = 0]
    makes the machine uniform, [k = 1] is [t] itself, [k = 2] doubles the
    remote surcharge. Raises [Invalid_argument] on negative or non-finite
    [k]. *)

(** {1 Accessors} *)

val nodes : t -> int
val groups : t -> int
(** Number of locality groups. *)

val group : t -> int -> int
(** [group t i] is the locality-group id of node [i], in [[0, groups t)]. *)

val distance : t -> from:int -> to_:int -> float
val near : t -> int -> int -> bool
(** [near t i j] is [true] iff [i] and [j] share a locality group. *)

val max_distance : t -> float
val unit_ns : t -> int

(** {1 Probe orders} *)

val near_first_order : t -> from:int -> int array
(** [near_first_order t ~from] is a deterministic permutation of
    [0 .. nodes t - 1]: [from] first, then ascending distance from [from],
    ties broken by ring offset. This is the aware probe order for
    Linear/Hinted search and for steal sweeps. *)

val distance_spans : t -> from:int -> int array -> (int * int) list
(** [distance_spans t ~from order] lists the [(offset, length)] spans of
    equal distance within [order] (as produced by {!near_first_order}),
    excluding position 0 and spans of length 1 — the regions a randomized
    prober may shuffle without breaking near-before-far. *)

val group_major_order : t -> int array
(** Permutation of nodes sorted by (group, index): clusters each locality
    group contiguously, used to place segments on tree leaves so subtrees
    coincide with groups. *)

(** {1 Config files} *)

val parse : string -> (t, string) result
(** [parse text] reads the line-based config format ([#] starts a
    comment): either a groups form —
    {v
groups 2 2
near 1.0
far 4.0
unit_ns 1000
    v}
    or an explicit matrix form —
    {v
matrix
1 4
4 1
unit_ns 1000
    v}
    [near]/[far]/[unit_ns] are optional with the constructor defaults;
    validation matches {!of_groups} / {!of_matrix}. *)

val to_string : t -> string
(** Renders [t] in the {!parse} format; [parse (to_string t)] round-trips
    to an {!equal} topology. *)

val label : t -> string
(** Short human label for bench cells, e.g. ["groups:2+2:far4"]. *)

val equal : t -> t -> bool
