type t = { seg_count : int; events : (float * int * int) Cpool_util.Vec.t }

let create ~segments =
  if segments <= 0 then invalid_arg "Trace.create: segments must be positive";
  { seg_count = segments; events = Cpool_util.Vec.create () }

let segments t = t.seg_count

let record t ~time ~seg ~size =
  if seg < 0 || seg >= t.seg_count then invalid_arg "Trace.record: segment out of range";
  Cpool_util.Vec.push t.events (time, seg, size)

let events t = Cpool_util.Vec.to_list t.events

let event_count t = Cpool_util.Vec.length t.events

let duration t =
  let d = ref 0.0 in
  Cpool_util.Vec.iter (fun (time, _, _) -> d := Float.max !d time) t.events;
  !d

let grid t ~buckets =
  if buckets <= 0 then invalid_arg "Trace.grid: buckets must be positive";
  let g = Array.make_matrix t.seg_count buckets 0 in
  let total = duration t in
  if total > 0.0 then begin
    let bucket_of time =
      min (buckets - 1) (int_of_float (Float.floor (time /. total *. float_of_int buckets)))
    in
    (* Write each event's size into its bucket (later events in the same
       bucket overwrite earlier ones)... *)
    let written = Array.make_matrix t.seg_count buckets false in
    Cpool_util.Vec.iter
      (fun (time, seg, size) ->
        let b = bucket_of time in
        g.(seg).(b) <- size;
        written.(seg).(b) <- true)
      t.events;
    (* ... then carry the last known size forward through silent buckets. *)
    for seg = 0 to t.seg_count - 1 do
      let last = ref 0 in
      for b = 0 to buckets - 1 do
        if written.(seg).(b) then last := g.(seg).(b) else g.(seg).(b) <- !last
      done
    done
  end;
  g

let peak_size t =
  let peak = ref 0 in
  Cpool_util.Vec.iter (fun (_, _, size) -> peak := max !peak size) t.events;
  !peak

let steals_observed t ~seg =
  let prev = ref 0 and count = ref 0 in
  Cpool_util.Vec.iter
    (fun (_, s, size) ->
      if s = seg then begin
        if size <= !prev - 2 then incr count;
        prev := size
      end)
    t.events;
  !count
