(** Plain-text rendering of tables, line charts and segment strips.

    The benchmark harness reproduces the paper's figures as ASCII output:
    {!table} for tabulated results, {!chart} for the x/y figures (Figures 2
    and 7, the delay sweep), and {!strip_chart} for the segment-size-over-
    time plots (Figures 3-6). *)

val table : ?title:string -> headers:string list -> rows:string list list -> unit -> string
(** [table ~headers ~rows ()] lays out a column-aligned table. Rows shorter
    than [headers] are padded with empty cells. *)

val chart :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [chart series] plots each named series of [(x, y)] points on a shared
    canvas with per-series markers and a legend. Returns a note instead of
    a canvas when no finite points exist. Default size 72x20 characters. *)

val strip_chart :
  ?width:int -> ?title:string -> labels:string array -> int array array -> string
(** [strip_chart ~labels grid] renders one text row per segment: each cell
    of [grid.(seg)] (a time bucket, see {!Trace.grid}) maps to a density
    character, darker meaning larger, normalised by the grid's maximum.
    Raises [Invalid_argument] if [labels] and [grid] lengths differ. *)

val float_cell : float -> string
(** [float_cell x] formats a measurement for a table cell: ["-"] for NaN,
    otherwise a compact fixed-point form. *)
