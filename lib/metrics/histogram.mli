(** Fixed-bucket histograms over a bounded range, linear or log-scaled.

    Used to summarise distributions (steal sizes, search lengths, siege
    sojourn latencies) in the bench output. Observations outside the range
    clamp into the first or last bin. Histograms of the same shape merge,
    so per-domain recorders can be combined after workers quiesce and
    percentiles read without ever storing samples. *)

type t

type scale = Linear | Log

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] divides [\[lo, hi)] into [bins] equal bins.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** [create_log ~lo ~hi ~bins] divides [\[lo, hi)] into [bins]
    geometrically equal bins (constant width in log space), the right
    shape for latency distributions spanning decades. Raises
    [Invalid_argument] if [bins <= 0], [lo <= 0] or [hi <= lo]. *)

val scale : t -> scale

val add : t -> float -> unit
(** [add h x] increments the bin containing [x] (clamped to the range). *)

val count : t -> int
(** [count h] is the total number of observations. *)

val merge : t -> t -> unit
(** [merge a b] adds [b]'s counts into [a]. Raises [Invalid_argument]
    when the histograms differ in scale, range or bin count. *)

val percentile : t -> float -> float
(** [percentile h p] estimates the [p]-th percentile ([0 <= p <= 100]) by
    walking the cumulative counts and interpolating within the target bin
    — linearly for [Linear] histograms, geometrically for [Log] ones, so
    the estimate's relative error is bounded by the bin width. [nan] on an
    empty histogram. Raises [Invalid_argument] if [p] is out of range. *)

val bin_count : t -> int -> int
(** [bin_count h i] is the number of observations in bin [i]. Raises
    [Invalid_argument] if out of range. *)

val bin_bounds : t -> int -> float * float
(** [bin_bounds h i] is the half-open interval of bin [i]. *)

val bins : t -> int
(** [bins h] is the number of bins. *)

val to_rows : t -> (string * int) list
(** [to_rows h] renders each bin as [("[lo, hi)", count)], for tables. *)
