(** Fixed-width histograms over a bounded range.

    Used to summarise distributions (steal sizes, search lengths) in the
    bench output. Observations outside the range clamp into the first or
    last bin. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] divides [\[lo, hi)] into [bins] equal bins.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** [add h x] increments the bin containing [x] (clamped to the range). *)

val count : t -> int
(** [count h] is the total number of observations. *)

val bin_count : t -> int -> int
(** [bin_count h i] is the number of observations in bin [i]. Raises
    [Invalid_argument] if out of range. *)

val bin_bounds : t -> int -> float * float
(** [bin_bounds h i] is the half-open interval of bin [i]. *)

val bins : t -> int
(** [bins h] is the number of bins. *)

val to_rows : t -> (string * int) list
(** [to_rows h] renders each bin as [("[lo, hi)", count)], for tables. *)
