type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { scale = Linear; lo; hi; counts = Array.make bins 0; total = 0 }

let create_log ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_log: bins must be positive";
  if not (lo > 0.0) then invalid_arg "Histogram.create_log: lo must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create_log: hi must exceed lo";
  { scale = Log; lo; hi; counts = Array.make bins 0; total = 0 }

let scale h = h.scale

let bins h = Array.length h.counts

(* Bin index of [x] before clamping; callers clamp to [0, bins-1]. *)
let index h x =
  let b = float_of_int (Array.length h.counts) in
  match h.scale with
  | Linear -> int_of_float (Float.floor ((x -. h.lo) /. (h.hi -. h.lo) *. b))
  | Log ->
    if x <= h.lo then -1
    else int_of_float (Float.floor (b *. log (x /. h.lo) /. log (h.hi /. h.lo)))

let add h x =
  let b = Array.length h.counts in
  let i = max 0 (min (b - 1) (index h x)) in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1

let count h = h.total

let check h i name = if i < 0 || i >= Array.length h.counts then invalid_arg name

let bin_count h i =
  check h i "Histogram.bin_count: out of range";
  h.counts.(i)

let bin_bounds h i =
  check h i "Histogram.bin_bounds: out of range";
  let b = float_of_int (Array.length h.counts) in
  match h.scale with
  | Linear ->
    let width = (h.hi -. h.lo) /. b in
    (h.lo +. (float_of_int i *. width), h.lo +. (float_of_int (i + 1) *. width))
  | Log ->
    let ratio = h.hi /. h.lo in
    ( h.lo *. (ratio ** (float_of_int i /. b)),
      h.lo *. (ratio ** (float_of_int (i + 1) /. b)) )

let same_shape a b =
  a.scale = b.scale && a.lo = b.lo && a.hi = b.hi
  && Array.length a.counts = Array.length b.counts

let merge a b =
  if not (same_shape a b) then
    invalid_arg "Histogram.merge: histograms have different shapes";
  Array.iteri (fun i c -> a.counts.(i) <- a.counts.(i) + c) b.counts;
  a.total <- a.total + b.total

let percentile h p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Histogram.percentile: p must be in [0, 100]";
  if h.total = 0 then Float.nan
  else begin
    let target = p /. 100.0 *. float_of_int h.total in
    let i = ref 0 and seen = ref 0 in
    let n = Array.length h.counts in
    while !i < n - 1 && float_of_int (!seen + h.counts.(!i)) < target do
      seen := !seen + h.counts.(!i);
      incr i
    done;
    let lo, hi = bin_bounds h !i in
    let in_bin = h.counts.(!i) in
    if in_bin = 0 then lo
    else
      let frac = (target -. float_of_int !seen) /. float_of_int in_bin in
      let frac = Float.max 0.0 (Float.min 1.0 frac) in
      match h.scale with
      | Linear -> lo +. (frac *. (hi -. lo))
      | Log -> lo *. ((hi /. lo) ** frac)
  end

let to_rows h =
  List.init (Array.length h.counts) (fun i ->
      let lo, hi = bin_bounds h i in
      (Printf.sprintf "[%g, %g)" lo hi, h.counts.(i)))
