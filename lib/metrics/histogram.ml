type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins h = Array.length h.counts

let add h x =
  let b = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int b in
  let i = int_of_float (Float.floor ((x -. h.lo) /. width)) in
  let i = max 0 (min (b - 1) i) in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1

let count h = h.total

let check h i name = if i < 0 || i >= Array.length h.counts then invalid_arg name

let bin_count h i =
  check h i "Histogram.bin_count: out of range";
  h.counts.(i)

let bin_bounds h i =
  check h i "Histogram.bin_bounds: out of range";
  let width = (h.hi -. h.lo) /. float_of_int (Array.length h.counts) in
  (h.lo +. (float_of_int i *. width), h.lo +. (float_of_int (i + 1) *. width))

let to_rows h =
  List.init (Array.length h.counts) (fun i ->
      let lo, hi = bin_bounds h i in
      (Printf.sprintf "[%g, %g)" lo hi, h.counts.(i)))
