type t = {
  values : float Cpool_util.Vec.t;
  mutable nan_count : int;
  mutable sorted : float array option;
}

let create () = { values = Cpool_util.Vec.create (); nan_count = 0; sorted = None }

let add s x =
  if Float.is_nan x then s.nan_count <- s.nan_count + 1
  else begin
    Cpool_util.Vec.push s.values x;
    s.sorted <- None
  end

let nan_count s = s.nan_count

let add_int s n = add s (float_of_int n)

let n s = Cpool_util.Vec.length s.values

let is_empty s = n s = 0

let fold f acc s =
  let acc = ref acc in
  Cpool_util.Vec.iter (fun x -> acc := f !acc x) s.values;
  !acc

let total s = fold ( +. ) 0.0 s

let mean s = if is_empty s then Float.nan else total s /. float_of_int (n s)

let stddev s =
  let count = n s in
  if count = 0 then Float.nan
  else if count = 1 then 0.0
  else begin
    let m = mean s in
    let sum_sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 s in
    sqrt (sum_sq /. float_of_int (count - 1))
  end

let min_value s = if is_empty s then Float.nan else fold Float.min Float.infinity s

let max_value s = if is_empty s then Float.nan else fold Float.max Float.neg_infinity s

let sorted s =
  match s.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list (Cpool_util.Vec.to_list s.values) in
    Array.sort Float.compare a;
    s.sorted <- Some a;
    a

let percentile s p =
  if p < 0.0 || p > 100.0 then invalid_arg "Sample.percentile: p out of [0, 100]";
  if is_empty s then Float.nan
  else begin
    let a = sorted s in
    let count = Array.length a in
    if count = 1 then a.(0)
    else begin
      (* Linear interpolation between closest ranks. *)
      let rank = p /. 100.0 *. float_of_int (count - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (count - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end
  end

let median s = percentile s 50.0

let values s = Cpool_util.Vec.to_list s.values

let merge a b =
  let s = create () in
  Cpool_util.Vec.iter (add s) a.values;
  Cpool_util.Vec.iter (add s) b.values;
  s.nan_count <- a.nan_count + b.nan_count;
  s
