type t = (string * int) list

let of_list pairs =
  List.fold_left
    (fun acc (label, n) ->
      let rec bump = function
        | [] -> [ (label, n) ]
        | (l, m) :: rest when String.equal l label -> (l, m + n) :: rest
        | p :: rest -> p :: bump rest
      in
      bump acc)
    [] pairs

let to_rows t = t

let labels t = List.map fst t

let get t label = match List.assoc_opt label t with Some n -> n | None -> 0

let merge a b = of_list (a @ b)

let merge_all ts = List.fold_left merge [] ts

let is_empty t = t = []

let render ?title t =
  Render.table ?title ~headers:[ "counter"; "count" ]
    ~rows:(List.map (fun (l, n) -> [ l; string_of_int n ]) t)
    ()
