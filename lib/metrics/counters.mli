(** Labelled event counters that merge by summation.

    The snapshot type behind per-worker telemetry: each worker accumulates
    its own plain counters privately (no sharing on the hot path), converts
    them to a [Counters.t] on demand, and the reader merges any number of
    snapshots into one — per-domain rows and pool-wide totals come from the
    same data. Label order is preserved (first occurrence wins), so merged
    tables keep a stable row order. *)

type t

val of_list : (string * int) list -> t
(** [of_list pairs] builds a counter set; duplicate labels are summed,
    keeping the first occurrence's position. *)

val to_rows : t -> (string * int) list
(** [to_rows t] lists the counters in label order, for tables. *)

val labels : t -> string list

val get : t -> string -> int
(** [get t label] is the count for [label], [0] when absent. *)

val merge : t -> t -> t
(** [merge a b] sums matching labels; labels only in one side keep their
    count. [a]'s label order comes first. *)

val merge_all : t list -> t
(** [merge_all ts] folds {!merge} over [ts] ([is_empty] result for []). *)

val is_empty : t -> bool

val render : ?title:string -> t -> string
(** [render t] is a two-column ASCII table via {!Render.table}. *)
