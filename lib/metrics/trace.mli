(** Segment-size-over-time traces (Figures 3-6 of the paper).

    Every segment mutation is recorded as an event [(time, segment, size)];
    the grid view resamples the run onto equal time buckets for rendering
    or comparison. *)

type t

val create : segments:int -> t
(** [create ~segments] is an empty trace for [segments] segments. Raises
    [Invalid_argument] if [segments <= 0]. *)

val segments : t -> int

val record : t -> time:float -> seg:int -> size:int -> unit
(** [record t ~time ~seg ~size] logs that segment [seg] reached [size] at
    virtual time [time]. Times must be non-decreasing per segment (they
    are, coming from a simulation run). Raises [Invalid_argument] if [seg]
    is out of range. *)

val events : t -> (float * int * int) list
(** [events t] lists all events in recording order. *)

val event_count : t -> int

val duration : t -> float
(** [duration t] is the time of the last event (0 if none). *)

val grid : t -> buckets:int -> int array array
(** [grid t ~buckets] is a [segments x buckets] matrix: cell [(s, b)] holds
    segment [s]'s size at the end of time bucket [b] (carrying the last
    known size forward, starting from 0). Raises [Invalid_argument] if
    [buckets <= 0]. *)

val peak_size : t -> int
(** [peak_size t] is the largest size ever recorded (0 if none). *)

val steals_observed : t -> seg:int -> int
(** [steals_observed t ~seg] counts events where segment [seg]'s size
    dropped by two or more at once — the signature of a steal (a plain
    remove drops it by one). *)
