let float_cell x =
  if Float.is_nan x then "-"
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let pad width s =
  let missing = width - String.length s in
  if missing <= 0 then s else s ^ String.make missing ' '

let table ?title ~headers ~rows () =
  let columns = List.length headers in
  let normalise row =
    let len = List.length row in
    if len >= columns then row else row @ List.init (columns - len) (fun _ -> "")
  in
  let rows = List.map normalise rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  (* Trailing spaces from padding the last column are dropped. *)
  let rec trim_right s =
    let len = String.length s in
    if len > 0 && s.[len - 1] = ' ' then trim_right (String.sub s 0 (len - 1)) else s
  in
  let render_row cells = trim_right (String.concat "  " (List.map2 pad widths cells)) in
  let rule = String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  let buffer = Buffer.create 256 in
  Option.iter (fun t -> Buffer.add_string buffer (t ^ "\n")) title;
  Buffer.add_string buffer (render_row headers);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer rule;
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer (render_row row);
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '~' |]

let chart ?(width = 72) ?(height = 20) ?title ?x_label ?y_label series =
  let finite (x, y) = Float.is_finite x && Float.is_finite y in
  let points = List.concat_map (fun (_, pts) -> List.filter finite pts) series in
  match points with
  | [] -> "(chart: no data)\n"
  | _ ->
    let xs = List.map fst points and ys = List.map snd points in
    let x_min = List.fold_left Float.min Float.infinity xs in
    let x_max = List.fold_left Float.max Float.neg_infinity xs in
    let y_min = Float.min 0.0 (List.fold_left Float.min Float.infinity ys) in
    let y_max = List.fold_left Float.max Float.neg_infinity ys in
    let y_max = if y_max = y_min then y_min +. 1.0 else y_max in
    let x_span = if x_max = x_min then 1.0 else x_max -. x_min in
    let canvas = Array.make_matrix height width ' ' in
    let plot marker (x, y) =
      let col =
        int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
      in
      let row =
        int_of_float
          (Float.round ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1)))
      in
      let col = max 0 (min (width - 1) col) in
      let row = height - 1 - max 0 (min (height - 1) row) in
      canvas.(row).(col) <- marker
    in
    List.iteri
      (fun i (_, pts) ->
        let marker = markers.(i mod Array.length markers) in
        List.iter (fun p -> if finite p then plot marker p) pts)
      series;
    let buffer = Buffer.create 2048 in
    Option.iter (fun t -> Buffer.add_string buffer (t ^ "\n")) title;
    Option.iter (fun l -> Buffer.add_string buffer ("y: " ^ l ^ "\n")) y_label;
    let y_axis_width = 10 in
    Array.iteri
      (fun r line ->
        let label =
          if r = 0 then Printf.sprintf "%*.4g |" (y_axis_width - 2) y_max
          else if r = height - 1 then Printf.sprintf "%*.4g |" (y_axis_width - 2) y_min
          else String.make (y_axis_width - 1) ' ' ^ "|"
        in
        Buffer.add_string buffer label;
        Buffer.add_string buffer (String.init width (fun c -> line.(c)));
        Buffer.add_char buffer '\n')
      canvas;
    Buffer.add_string buffer (String.make (y_axis_width - 1) ' ' ^ "+");
    Buffer.add_string buffer (String.make width '-');
    Buffer.add_char buffer '\n';
    let x_min_text = Printf.sprintf "%.4g" x_min in
    let x_max_text = Printf.sprintf "%.4g" x_max in
    let gap = max 1 (width - String.length x_min_text - String.length x_max_text) in
    Buffer.add_string buffer
      (String.make y_axis_width ' ' ^ x_min_text ^ String.make gap ' ' ^ x_max_text ^ "\n");
    Option.iter
      (fun l -> Buffer.add_string buffer (String.make y_axis_width ' ' ^ "x: " ^ l ^ "\n"))
      x_label;
    List.iteri
      (fun i (name, _) ->
        Buffer.add_string buffer
          (Printf.sprintf "  %c = %s\n" markers.(i mod Array.length markers) name))
      series;
    Buffer.contents buffer

let density = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let strip_chart ?(width = 72) ?title ~labels grid =
  if Array.length labels <> Array.length grid then
    invalid_arg "Render.strip_chart: labels/grid mismatch";
  let peak = Array.fold_left (fun acc row -> Array.fold_left max acc row) 1 grid in
  let label_width = Array.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let buffer = Buffer.create 2048 in
  Option.iter (fun t -> Buffer.add_string buffer (t ^ "\n")) title;
  Array.iteri
    (fun seg row ->
      let buckets = Array.length row in
      Buffer.add_string buffer (pad label_width labels.(seg));
      Buffer.add_string buffer " |";
      for c = 0 to width - 1 do
        (* Nearest-bucket resampling onto the requested width. *)
        let b = if buckets = 0 then 0 else c * buckets / width in
        let v = if buckets = 0 then 0 else row.(min b (buckets - 1)) in
        let level =
          if v <= 0 then 0
          else 1 + (v * (Array.length density - 2) / peak)
        in
        Buffer.add_char buffer density.(min level (Array.length density - 1))
      done;
      Buffer.add_string buffer "|\n")
    grid;
  Buffer.add_string buffer
    (Printf.sprintf "%s  (time ->; darkest = %d elements)\n" (String.make label_width ' ') peak);
  Buffer.contents buffer
