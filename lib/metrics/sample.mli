(** Collected numeric samples with summary statistics.

    Stores every observation (operation times, steal sizes, ...) so that
    percentiles are exact; the experiment scale of the paper (thousands of
    operations per trial) makes this cheap. *)

type t

val create : unit -> t
(** [create ()] is an empty sample. *)

val add : t -> float -> unit
(** [add s x] records the observation [x]. A NaN observation is excluded
    from the sample (it would otherwise poison every statistic — with the
    former polymorphic sort a single NaN silently corrupted all
    percentiles) and flagged in {!nan_count} instead. *)

val nan_count : t -> int
(** [nan_count s] is how many NaN observations were rejected by {!add}
    (summed by {!merge}). A non-zero value marks an upstream measurement
    problem; the remaining statistics are computed over the finite data. *)

val add_int : t -> int -> unit
(** [add_int s n] records [float_of_int n]. *)

val n : t -> int
(** [n s] is the number of observations. *)

val is_empty : t -> bool

val mean : t -> float
(** [mean s] is the arithmetic mean; [nan] when empty. *)

val stddev : t -> float
(** [stddev s] is the sample standard deviation (n-1 denominator); [0.] for
    fewer than two observations, [nan] when empty. *)

val min_value : t -> float
(** [min_value s] is the smallest observation; [nan] when empty. *)

val max_value : t -> float
(** [max_value s] is the largest observation; [nan] when empty. *)

val total : t -> float
(** [total s] is the sum of all observations. *)

val percentile : t -> float -> float
(** [percentile s p] is the [p]-th percentile ([0. <= p <= 100.]) by linear
    interpolation between closest ranks; [nan] when empty. Raises
    [Invalid_argument] if [p] is out of range. *)

val median : t -> float
(** [median s] is [percentile s 50.]. *)

val values : t -> float list
(** [values s] lists the observations in insertion order. *)

val merge : t -> t -> t
(** [merge a b] is a fresh sample containing the observations of both. *)
