(** Shared vocabulary of the steal machinery.

    Kept in its own module so segments, search strategies and the pool
    agree on one set of types without a dependency cycle. *)

(** What a locked steal attempt extracted from a victim segment. *)
type 'a loot =
  | Nothing  (** The victim was empty under the lock. *)
  | Single of 'a
      (** The victim held exactly one element, which is taken directly (the
          paper: "unless there is only one element in the remote segment, in
          which case that element is taken immediately"). *)
  | Batch of 'a * 'a list
      (** [Batch (x, rest)]: the victim held [n >= 2] elements; the thief
          removed up to [ceil n/2] — [x] satisfies the pending remove and
          [rest] is deposited into the thief's own segment. *)

(** Statistics of one completed search, feeding the paper's measurements. *)
type stats = {
  segments_examined : int;
      (** Probes performed before elements were found (or the search
          aborted). *)
  elements_stolen : int;
      (** Total elements moved by the steal, including the one returned;
          0 if aborted. *)
}

(** Result of a whole search-and-steal, as returned by a search strategy.
    The caller (the pool) deposits [rest] into the thief's own segment. *)
type 'a outcome =
  | Found of { element : 'a; rest : 'a list; stats : stats }
  | Aborted of stats
      (** Livelock detection fired: every active participant was searching
          and a confirmation sweep found nothing. *)

val loot_size : 'a loot -> int
(** [loot_size l] is the number of elements [l] carries. *)

val found : examined:int -> 'a loot -> 'a outcome
(** [found ~examined loot] is the [Found] outcome for a non-empty [loot].
    Raises [Invalid_argument] on [Nothing]. *)

val aborted : examined:int -> 'a outcome
(** [aborted ~examined] is the empty-pool outcome. *)
