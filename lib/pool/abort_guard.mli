(** Confirmation sweep before aborting a search.

    The paper's livelock rule — abort when every active participant is
    searching — is racy: a searcher may not yet have examined the one
    segment that still holds elements (certain for the random algorithm,
    possible for the tree when rounds restart). Before aborting, the
    searches therefore sweep every segment once, deterministically. While
    all participants are searching nobody adds, so a clean sweep proves the
    pool empty; finding elements turns the abort into a normal steal. The
    sweep charges ordinary probe costs and only runs on the (rare) abort
    path. *)

val confirm_or_steal :
  ?remote_op_delay:float ->
  ?max_take:int ->
  'a Segment.t array ->
  start:int ->
  examined:int ->
  ('a Steal.loot * int * int, int) result
(** [confirm_or_steal segments ~start ~examined] probes all segments once,
    beginning at [start]. Returns [Ok (loot, position, examined')] on the
    first successful steal, or [Error examined'] when every segment proved
    empty; [examined'] includes the sweep's probes. [remote_op_delay] and
    [max_take] are the calling search's parameters. *)
