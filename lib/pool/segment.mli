(** One per-processor segment of a concurrent pool (simulated).

    A segment is a locked collection of elements homed on its owner's node.
    Following the paper (Section 3.2) the *counting* profile represents the
    segment as "a single counter that is atomically added to, subtracted
    from, or split in half": element payloads ride along for free and block
    transfer of stolen elements is not charged. The *boxed* profile charges
    one access per element moved, restoring the cost the paper notes its
    simplification eliminated.

    All operations must run inside a simulated process; they charge the
    caller local or remote access costs and serialise under the segment's
    lock, which is where the paper's inter-process interference arises. *)

type profile =
  | Counting  (** Per-element transfer costs not charged (paper's setup). *)
  | Boxed  (** One access charged per element moved. *)

type 'a t
(** A segment holding elements of type ['a]. *)

val make :
  ?on_size_change:(int -> unit) ->
  ?capacity:int ->
  ?locking_probes:bool ->
  home:Cpool_sim.Topology.node ->
  id:int ->
  profile ->
  'a t
(** [make ~home ~id profile] is an empty segment homed on [home].
    [on_size_change] is invoked (costlessly) with the new size after every
    mutation, for the segment-size traces of Figures 3-6. [capacity]
    bounds the segment (default unbounded): {!try_add} refuses to exceed
    it and {!steal_half} respects [max_take]; {!deposit} may transiently
    overshoot under races (a soft bound — see the paper's footnote on
    full segments, handled "in a symmetric fashion"). Raises
    [Invalid_argument] if [capacity <= 0].

    [locking_probes] (default false) makes {!probe} acquire the segment
    lock around its read, as the paper's own implementation did ("another
    source is the locking at the leaves") — searching processes then queue
    against the owner's adds/removes, which is what drove the paper's
    sparse-mix times into the tens of milliseconds. The default models a
    modern atomic size read. *)

val id : 'a t -> int
(** [id s] is the identifier given at creation (= owner index). *)

val home : 'a t -> Cpool_sim.Topology.node
(** [home s] is the node the segment lives on. *)

val size_free : 'a t -> int
(** [size_free s] reads the current size without charging (instrumentation
    and tests only). *)

val probe : 'a t -> int
(** [probe s] is a costed, unlocked read of the size — what a searching
    process does to decide whether to attempt a steal. *)

val capacity : 'a t -> int option
(** [capacity s] is the bound given at creation, if any. *)

val probe_spare : 'a t -> int
(** [probe_spare s] is a costed, unlocked read of the spare capacity
    ([max_int] when unbounded) — what a spilling process does to decide
    whether to attempt a remote add. *)

val add : 'a t -> 'a -> unit
(** [add s x] inserts [x] under the segment lock, ignoring any capacity
    (used by the unbounded experiments and by steal banking). *)

val try_add : 'a t -> 'a -> bool
(** [try_add s x] inserts [x] under the lock unless that would exceed the
    capacity; returns whether it did. Always succeeds when unbounded. *)

val try_remove : 'a t -> 'a option
(** [try_remove s] removes an arbitrary element under the lock, or returns
    [None] if the segment is empty. *)

val steal_half : ?max_take:int -> 'a t -> 'a Steal.loot
(** [steal_half s] locks [s] and removes [min (ceil n/2) max_take] of its
    [n] elements ([Nothing] if [n = 0], the sole element if [n = 1]). The
    thief deposits the remainder into its own segment afterwards with
    {!deposit}; victim and thief segments are never locked simultaneously,
    which rules out steal/steal deadlock. [max_take] defaults to
    unlimited; a bounded thief passes its spare capacity + 1. *)

val prefill_one : 'a t -> 'a -> unit
(** [prefill_one s x] inserts [x] without charging costs or locking;
    initialises a pool before a run (may be called outside a process). *)

val deposit : 'a t -> 'a list -> unit
(** [deposit s xs] adds all of [xs] under one lock acquisition (the thief
    banking the stolen remainder into its own segment). *)

val lock_stats : 'a t -> int * int
(** [lock_stats s] is [(acquisitions, contended_acquisitions)] of the
    segment lock, for interference analysis. *)
