open Cpool_sim

(* Heap layout over a full binary tree with [leaves] = 2^k leaves:
   node 0 is the root, node i has children 2i+1 and 2i+2 and parent
   (i-1)/2; leaf j occupies index leaves-1+j. Segments beyond the real
   participant count are phantom leaves that are permanently empty. *)

type 'a t = {
  segments : 'a Segment.t array;
  termination : Termination.t;
  remote_op_delay : float;
  max_take_for : int -> int; (* steal-size cap for a bounded thief *)
  leaves : int;
  rounds : int Memory.t array; (* one round counter per tree node *)
  locks : Lock.t array; (* internal nodes only; protects children's counters *)
  my_round : int array; (* per participant *)
  last_leaf : int array; (* per participant: most recently visited leaf *)
  started : bool array; (* first search starts at the home leaf *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let leaf_index t j = t.leaves - 1 + j

let span t i =
  (* Number of leaves under node i = leaves / 2^depth(i). *)
  let rec depth i acc = if i = 0 then acc else depth ((i - 1) / 2) (acc + 1) in
  t.leaves lsr depth i 0

let create ?(remote_op_delay = 0.0) ?(max_take_for = fun _ -> max_int) segments termination =
  let p = Array.length segments in
  if p = 0 then invalid_arg "Search_tree.create: no segments";
  let leaves = next_pow2 p 1 in
  let node_count = (2 * leaves) - 1 in
  let home_of_tree_node i =
    if i >= leaves - 1 then begin
      (* Leaf: co-located with its segment; phantoms round-robin. *)
      let j = i - (leaves - 1) in
      if j < p then Segment.home segments.(j) else j mod p
    end
    else i mod p
  in
  {
    segments;
    termination;
    remote_op_delay;
    max_take_for;
    leaves;
    rounds = Array.init node_count (fun i -> Memory.make ~home:(home_of_tree_node i) 0);
    locks = Array.init (leaves - 1) (fun i -> Lock.make ~home:(home_of_tree_node i));
    my_round = Array.make p 1;
    last_leaf = Array.init p Fun.id;
    started = Array.make p false;
  }

let leaf_count t = t.leaves

let round_of_leaf_free t j = Memory.peek t.rounds.(leaf_index t j)

let my_round_free t i = t.my_round.(i)

let search t ~me =
  let p = Array.length t.segments in
  Termination.begin_search t.termination;
  let finish outcome =
    Termination.end_search t.termination;
    outcome
  in
  let rec visit_leaf j examined =
    t.last_leaf.(me) <- j;
    let examined = examined + 1 in
    if j < p then begin
      let seg = t.segments.(j) in
      if Probe.costed ~delay:t.remote_op_delay seg > 0 then begin
        match Segment.steal_half ~max_take:(t.max_take_for me) seg with
        | Steal.Nothing -> empty_leaf j examined
        | loot -> finish (Steal.found ~examined loot)
      end
      else empty_leaf j examined
    end
    else begin
      (* Phantom leaf: examining it costs one access to its counter word,
         plus the per-remote-operation delay if that word is remote. *)
      let cell = t.rounds.(leaf_index t j) in
      if t.remote_op_delay > 0.0 && Memory.home cell <> Engine.self_node () then
        Engine.delay t.remote_op_delay;
      ignore (Memory.read cell);
      empty_leaf j examined
    end
  and empty_leaf j examined =
    (* The livelock check runs after every failed leaf probe; a
       confirmation sweep proves the pool empty before aborting (see
       Abort_guard). *)
    if Termination.should_abort t.termination then begin
      match
        Abort_guard.confirm_or_steal ~remote_op_delay:t.remote_op_delay
          ~max_take:(t.max_take_for me) t.segments ~start:me ~examined
      with
      | Ok (loot, found_pos, examined) ->
        t.last_leaf.(me) <- found_pos;
        finish (Steal.found ~examined loot)
      | Error examined -> finish (Steal.aborted ~examined)
    end
    else if t.leaves = 1 then begin
      (* The tree is a single leaf: the whole tree is empty, start a new
         round at our own (only) leaf. *)
      t.my_round.(me) <- t.my_round.(me) + 1;
      visit_leaf me examined
    end
    else ascend ((leaf_index t j - 1) / 2) (leaf_index t j) examined
  and ascend v child examined =
    (* [child]'s subtree was just found empty; decide where to go by
       comparing round counters under [v]'s lock (paper: counters are
       examined and modified atomically). *)
    let left = (2 * v) + 1 and right = (2 * v) + 2 in
    (* One logical access of a (remote) superimposed-tree node. *)
    if t.remote_op_delay > 0.0 && Lock.home t.locks.(v) <> Engine.self_node () then
      Engine.delay t.remote_op_delay;
    Lock.acquire t.locks.(v);
    let left_round = Memory.read t.rounds.(left) in
    let right_round = Memory.read t.rounds.(right) in
    let newest = max left_round right_round in
    if newest > t.my_round.(me) then begin
      (* Case 3: we are behind; adopt the newer round, restart at home. *)
      Lock.release t.locks.(v);
      t.my_round.(me) <- newest;
      visit_leaf me examined
    end
    else begin
      Memory.write t.rounds.(child) t.my_round.(me);
      let sibling_round = if child = left then right_round else left_round in
      Lock.release t.locks.(v);
      if sibling_round = t.my_round.(me) then
        if v = 0 then begin
          (* Case 2 at the root: the whole tree is empty this round. *)
          t.my_round.(me) <- t.my_round.(me) + 1;
          visit_leaf me examined
        end
        else ascend ((v - 1) / 2) v examined
      else begin
        (* Case 1: the sibling subtree has not been marked empty as
           recently — descend to the matching descendant of the last
           leaf visited. *)
        let matching = t.last_leaf.(me) lxor span t child in
        visit_leaf matching examined
      end
    end
  in
  let start =
    if t.started.(me) then t.last_leaf.(me)
    else begin
      t.started.(me) <- true;
      me
    end
  in
  visit_leaf start 0
