(** Probing a segment during a search, with the Section 4.3 delay.

    The delay-sweep experiments charge an extra delay per {e logical}
    remote operation — one per attempt to steal from a remote segment —
    on top of the per-access NUMA costs. *)

open Cpool_sim

let is_remote seg = Segment.home seg <> Engine.self_node ()

(** [costed ~delay seg] reads [seg]'s size as a steal attempt, charging the
    extra per-remote-operation [delay] when [seg] is remote. *)
let costed ~delay seg =
  if delay > 0.0 && is_remote seg then Engine.delay delay;
  Segment.probe seg
