(** Manber's tree search algorithm (paper Section 2.1).

    A binary tree is superimposed on the segments, one segment per leaf.
    Every subtree carries a *round counter* recording the last round in
    which it was completely traversed and found empty; every process keeps
    its own round number. Ascending from an exhausted subtree, a process
    compares counters under the parent's lock and either

    + descends to the {e matching descendant} in the sibling subtree (the
      leaf in the symmetric position of the last leaf visited) when the
      sibling was marked empty less recently — case 1;
    + keeps ascending when the sibling is just as recently empty — case 2
      (at the root it instead starts a new round at its own leaf);
    + or, discovering it is a round behind, adopts the newer round and
      restarts at its own leaf — case 3.

    The segment count is padded to the next power of two with permanently
    empty phantom leaves so the tree is full, as the paper assumes. Leaf
    counters are homed with their segments; internal nodes are distributed
    round-robin over the nodes ("this tree must reside somewhere ... it is
    likely to be remote for most of the processors"). *)

type 'a t

val create :
  ?remote_op_delay:float ->
  ?max_take_for:(int -> int) ->
  'a Segment.t array ->
  Termination.t ->
  'a t
(** [create segments termination] ([remote_op_delay], default 0, is charged
    once per logical remote operation during searches — see
    {!Pool.config.remote_op_delay}; [max_take_for me], default unlimited,
    caps how many elements participant [me] steals at once — a bounded
    thief passes its spare capacity + 1) superimposes the tree. Raises
    [Invalid_argument] on an empty array. *)

val search : 'a t -> me:int -> 'a Steal.outcome
(** [search t ~me] runs one tree search on behalf of participant [me]. The
    first search starts at [me]'s own leaf, later ones at the last leaf
    visited. Charges all lock, counter and probe costs; aborts when every
    participant is searching. *)

val leaf_count : 'a t -> int
(** [leaf_count t] is the padded (power-of-two) number of leaves. *)

val round_of_leaf_free : 'a t -> int -> int
(** [round_of_leaf_free t j] reads leaf [j]'s round counter without charging
    (tests and instrumentation). *)

val my_round_free : 'a t -> int -> int
(** [my_round_free t i] is participant [i]'s private round number (tests). *)
