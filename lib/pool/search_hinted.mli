(** Hinted search: the linear algorithm extended with the paper's Section 5
    proposal.

    Before searching, the process {e announces} itself on the hint board
    ({!Hints}); adders that see waiters deliver elements straight into the
    announcer's segment. The search therefore re-probes its own (local,
    cheap) segment between remote probes, and retracts its announcement on
    any exit. Deliveries surface as one-element finds whose search ended at
    the home segment. *)

type 'a t

val create :
  ?remote_op_delay:float ->
  ?max_take_for:(int -> int) ->
  hints:Hints.t ->
  'a Segment.t array ->
  Termination.t ->
  'a t
(** [create ~hints segments termination] builds the search state; the same
    [hints] board must be consulted by the pool's adds for deliveries to
    happen. Raises [Invalid_argument] on an empty array. *)

val search : 'a t -> me:int -> 'a Steal.outcome
(** [search t ~me] announces, searches (own segment first, then the ring),
    and retracts. Aborts exactly as the linear search does. *)
