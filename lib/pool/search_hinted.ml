type 'a t = {
  segments : 'a Segment.t array;
  termination : Termination.t;
  hints : Hints.t;
  remote_op_delay : float;
  max_take_for : int -> int;
  last_found : int array;
}

let create ?(remote_op_delay = 0.0) ?(max_take_for = fun _ -> max_int) ~hints segments
    termination =
  let p = Array.length segments in
  if p = 0 then invalid_arg "Search_hinted.create: no segments";
  { segments; termination; hints; remote_op_delay; max_take_for; last_found = Array.init p Fun.id }

let search t ~me =
  let p = Array.length t.segments in
  Termination.begin_search t.termination;
  Hints.announce t.hints ~me;
  let finish outcome =
    (* Whoever clears the flag owns the waiter-count decrement; a false
       retract means an adder claimed us and its delivery lands (or already
       landed) in our segment, where a later remove will find it. *)
    ignore (Hints.retract t.hints ~me);
    Termination.end_search t.termination;
    outcome
  in
  let own = t.segments.(me) in
  let rec probe_at pos examined =
    (* A delivery may have landed at home since the last step: the home
       probe is local and cheap, so check it before every remote probe. *)
    let examined = examined + 1 in
    if Segment.probe own > 0 then begin
      match Segment.steal_half ~max_take:(t.max_take_for me) own with
      | Steal.Nothing -> remote pos examined
      | loot -> finish (Steal.found ~examined loot)
    end
    else remote pos examined
  and remote pos examined =
    if pos = me then next pos examined
    else begin
      let seg = t.segments.(pos) in
      let examined = examined + 1 in
      if Probe.costed ~delay:t.remote_op_delay seg > 0 then begin
        match Segment.steal_half ~max_take:(t.max_take_for me) seg with
        | Steal.Nothing -> next pos examined
        | loot ->
          t.last_found.(me) <- pos;
          finish (Steal.found ~examined loot)
      end
      else next pos examined
    end
  and next pos examined =
    if Termination.should_abort t.termination then begin
      match
        Abort_guard.confirm_or_steal ~remote_op_delay:t.remote_op_delay
          ~max_take:(t.max_take_for me) t.segments ~start:((pos + 1) mod p) ~examined
      with
      | Ok (loot, found_pos, examined) ->
        t.last_found.(me) <- found_pos;
        finish (Steal.found ~examined loot)
      | Error examined -> finish (Steal.aborted ~examined)
    end
    else probe_at ((pos + 1) mod p) examined
  in
  probe_at t.last_found.(me) 0
