(** The concurrent pool: a distributed unordered collection (simulated).

    One segment per participant, homed on that participant's node. Adds and
    removes run in the local segment; a remove that finds its segment empty
    searches remote segments with the configured algorithm and steals
    roughly half of the first non-empty segment found (Manber 1986; paper
    Section 2). All operations must run inside the owning participant's
    simulated process. *)

type kind = Cpool_intf.kind = Linear | Random | Tree | Hinted
(** The shared algorithm type ({!Cpool_intf.kind}), re-exported so the old
    [Pool.Linear]-style constructors keep compiling. [Hinted] is the
    paper's Section 5 extension: linear search plus a hint board —
    searchers announce themselves and adders deliver elements directly
    into a waiting searcher's segment (see {!Hints}). *)

val kind_to_string : kind -> string
(** Deprecated alias for {!Cpool_intf.to_string}. *)

val kind_of_string : string -> (kind, string) result
(** Alias for {!Cpool_intf.of_string}. *)

val all_kinds : kind list
(** The paper's three algorithms: [Linear; Random; Tree]. *)

val all_kinds_extended : kind list
(** {!all_kinds} plus [Hinted] (= {!Cpool_intf.all}). *)

type config = {
  segments : int;  (** Number of segments = participants, one per node. *)
  kind : kind;  (** Search algorithm for steals. *)
  profile : Segment.profile;
      (** [Counting] reproduces the paper's simplified segments; [Boxed]
          charges per-element block transfer. *)
  add_overhead : float;
      (** Fixed local compute charged by every add, in us; calibrates the
          ~70 us uncontended add of Section 4.3. *)
  remove_overhead : float;
      (** Fixed local compute charged by every remove (~110 us). *)
  remote_op_delay : float;
      (** Extra delay charged once per *logical* remote operation during a
          search — each probe/steal attempt on a remote segment and each
          access of a remote tree node — reproducing the paper's Section
          4.3 sweep ("delays were added to each remote operation (attempt
          to steal from a segment) and to each access of nodes in the
          superimposed tree"). Distinct from
          {!Cpool_sim.Topology.cost_model.remote_extra}, which applies to
          every remote memory word access. Default 0. *)
  capacity : int option;
      (** Per-segment capacity (default unbounded). When set, adds that
          find the local segment full spill to a remote segment with spare
          capacity — the paper's footnote: "the problem of an add
          operation encountering a full segment ... could be handled in a
          symmetric fashion, adding remotely to a segment with sufficient
          capacity" — and steals cap their take at the thief's spare
          capacity + 1. *)
  locking_probes : bool;
      (** When true, search probes acquire the victim segment's lock for
          their size read, as the paper's implementation did — searchers
          then queue against the owner's operations. Default false
          (atomic read). See the [lockprobe] experiment. *)
}

val default_config : config
(** 16 segments, [Linear], [Counting], overheads calibrated to the
    paper's reported uncontended operation times. *)

type 'a t

(** How a remove was satisfied. *)
type 'a removal =
  | Local of 'a  (** Served from the caller's own segment. *)
  | Stolen of 'a * Steal.stats  (** Required a search; stats describe it. *)
  | Empty of Steal.stats
      (** The search aborted: every active participant was searching. *)

(** Aggregate pool statistics (uncosted bookkeeping). *)
type totals = {
  adds : int;  (** Successful adds, local + spilled. *)
  removes : int;  (** Successful removes, local + stolen. *)
  steals : int;  (** Removes that required a successful steal. *)
  aborts : int;  (** Removes that aborted on an empty pool. *)
  spills : int;  (** Adds that landed in a remote segment (bounded pools). *)
  deliveries : int;
      (** Adds delivered directly to an announced searcher ([Hinted]). *)
  rejected_adds : int;  (** Adds that found every segment full. *)
  segments_examined : int;  (** Summed over all searches. *)
  elements_stolen : int;  (** Summed over all steals. *)
}

val create :
  ?on_size_change:(seg:int -> size:int -> unit) ->
  ?home_of:(int -> Cpool_sim.Topology.node) ->
  config ->
  'a t
(** [create config] builds the pool data structure (engine-free setup; no
    costs charged). [home_of] maps participant index to node (default:
    identity — participant [i]'s segment lives on node [i]).
    [on_size_change ~seg ~size] fires after every segment mutation, for the
    Figure 3-6 traces. Raises [Invalid_argument] if [segments <= 0] or
    [capacity <= 0] (the same validation {!Mc_pool.create} applies). *)

val config : 'a t -> config

val join : 'a t -> unit
(** [join t] registers the calling process as an active participant; must
    be called before its first operation. *)

val leave : 'a t -> unit
(** [leave t] deregisters the calling process; call when done so that
    searches by the remaining participants can detect emptiness. *)

(** How an add was satisfied. *)
type add_outcome =
  | Added_locally
  | Spilled of int  (** Landed in the given remote segment (bounded pools). *)
  | Delivered of int  (** Handed directly to the given waiting searcher ([Hinted]). *)
  | Rejected  (** Every segment was full; the element was not inserted. *)

val add : 'a t -> me:int -> 'a -> unit
(** [add t ~me x] inserts [x] into participant [me]'s segment (spilling on
    a bounded pool). Raises [Failure] if the whole pool is full — only
    possible with [capacity] set; use {!add_bounded} to handle that case
    gracefully. *)

val add_bounded : 'a t -> me:int -> 'a -> add_outcome
(** [add_bounded t ~me x] inserts [x] locally when there is room,
    otherwise searches the ring for a segment with spare capacity (costed
    probes, as a steal search charges). On an unbounded pool this is
    always [Added_locally]. *)

val remove : 'a t -> me:int -> 'a removal
(** [remove t ~me] takes an arbitrary element, stealing if the local
    segment is empty. *)

val prefill : 'a t -> (int -> 'a) -> per_segment:int -> unit
(** [prefill t f ~per_segment] loads [per_segment] elements into every
    segment without charging costs — initialises the pool before a run
    (the paper starts with 320 elements over 16 segments). *)

val prefill_segment : 'a t -> seg:int -> 'a -> unit
(** [prefill_segment t ~seg x] loads one element into segment [seg] without
    charging costs (uneven initial fills). *)

val size_of_segment : 'a t -> int -> int
(** [size_of_segment t i] is segment [i]'s size, uncosted (tests/traces). *)

val total_size : 'a t -> int
(** [total_size t] sums all segment sizes, uncosted. *)

val totals : 'a t -> totals
(** [totals t] is the aggregate operation statistics so far. *)

val segment_lock_stats : 'a t -> int -> int * int
(** [segment_lock_stats t i] is [(acquisitions, contended)] for segment
    [i]'s lock. *)
