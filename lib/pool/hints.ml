open Cpool_sim

type t = { waiters : int Memory.t; flags : bool Memory.t array }

let create ~home ~home_of ~participants =
  if participants <= 0 then invalid_arg "Hints.create: participants must be positive";
  {
    waiters = Memory.make ~home 0;
    flags = Array.init participants (fun i -> Memory.make ~home:(home_of i) false);
  }

let announce t ~me =
  Memory.write t.flags.(me) true;
  ignore (Memory.fetch_add t.waiters 1)

let retract t ~me =
  if Memory.compare_and_set t.flags.(me) ~expected:true ~desired:false then begin
    ignore (Memory.fetch_add t.waiters (-1));
    true
  end
  else false

let waiters_hint t = Memory.read t.waiters

let claim_waiter t ~me =
  let p = Array.length t.flags in
  let rec scan i =
    if i = p then None
    else begin
      let candidate = (me + i) mod p in
      (* Cheap read first; the atomic claim only on a likely hit. *)
      if
        Memory.read t.flags.(candidate)
        && Memory.compare_and_set t.flags.(candidate) ~expected:true ~desired:false
      then begin
        ignore (Memory.fetch_add t.waiters (-1));
        Some candidate
      end
      else scan (i + 1)
    end
  in
  scan 1

let announced_free t i = Memory.peek t.flags.(i)

let waiters_free t = Memory.peek t.waiters
