type 'a t = {
  segments : 'a Segment.t array;
  termination : Termination.t;
  remote_op_delay : float;
  max_take_for : int -> int; (* steal-size cap for a bounded thief *)
  last_found : int array; (* per participant: ring position of the last successful steal *)
}

let create ?(remote_op_delay = 0.0) ?(max_take_for = fun _ -> max_int) segments termination =
  let p = Array.length segments in
  if p = 0 then invalid_arg "Search_linear.create: no segments";
  { segments; termination; remote_op_delay; max_take_for; last_found = Array.init p Fun.id }

let search t ~me =
  let p = Array.length t.segments in
  Termination.begin_search t.termination;
  let finish outcome =
    Termination.end_search t.termination;
    outcome
  in
  let rec probe_at pos examined =
    let seg = t.segments.(pos) in
    let examined = examined + 1 in
    if Probe.costed ~delay:t.remote_op_delay seg > 0 then begin
      match Segment.steal_half ~max_take:(t.max_take_for me) seg with
      | Steal.Nothing ->
        (* Raced: drained between probe and lock. Keep travelling. *)
        next pos examined
      | loot ->
        t.last_found.(me) <- pos;
        finish (Steal.found ~examined loot)
    end
    else next pos examined
  and next pos examined =
    (* Livelock detection consults the shared counter after every failed
       probe, as the paper's shared-count scheme does; the confirmation
       sweep then distinguishes a genuinely empty pool from an unluckily
       ordered search (see Abort_guard). *)
    if Termination.should_abort t.termination then begin
      match
        Abort_guard.confirm_or_steal ~remote_op_delay:t.remote_op_delay
          ~max_take:(t.max_take_for me) t.segments ~start:((pos + 1) mod p) ~examined
      with
      | Ok (loot, found_pos, examined) ->
        t.last_found.(me) <- found_pos;
        finish (Steal.found ~examined loot)
      | Error examined -> finish (Steal.aborted ~examined)
    end
    else probe_at ((pos + 1) mod p) examined
  in
  probe_at t.last_found.(me) 0
