open Cpool_sim

type 'a t = {
  segments : 'a Segment.t array;
  termination : Termination.t;
  remote_op_delay : float;
  max_take_for : int -> int; (* steal-size cap for a bounded thief *)
}

let create ?(remote_op_delay = 0.0) ?(max_take_for = fun _ -> max_int) segments termination =
  if Array.length segments = 0 then invalid_arg "Search_random.create: no segments";
  { segments; termination; remote_op_delay; max_take_for }

let search t ~me =
  let p = Array.length t.segments in
  Termination.begin_search t.termination;
  let finish outcome =
    Termination.end_search t.termination;
    outcome
  in
  let rec probe examined =
    let seg = t.segments.(Engine.random_int p) in
    let examined = examined + 1 in
    if Probe.costed ~delay:t.remote_op_delay seg > 0 then begin
      match Segment.steal_half ~max_take:(t.max_take_for me) seg with
      | Steal.Nothing -> continue examined
      | loot -> finish (Steal.found ~examined loot)
    end
    else continue examined
  and continue examined =
    (* Consult the livelock detector after every failed probe; random
       probes guarantee no coverage, so a confirmation sweep decides
       (see Abort_guard). *)
    if Termination.should_abort t.termination then begin
      match
        Abort_guard.confirm_or_steal ~remote_op_delay:t.remote_op_delay
          ~max_take:(t.max_take_for me) t.segments ~start:0 ~examined
      with
      | Ok (loot, _, examined) -> finish (Steal.found ~examined loot)
      | Error examined -> finish (Steal.aborted ~examined)
    end
    else probe examined
  in
  probe 0
