open Cpool_sim

(* The shared algorithm type: one [kind] for the simulated and the real
   pool, re-exported so [Pool.Linear] etc. keep compiling. *)
type kind = Cpool_intf.kind = Linear | Random | Tree | Hinted

let kind_to_string = Cpool_intf.to_string

let kind_of_string = Cpool_intf.of_string

let all_kinds = [ Linear; Random; Tree ]

let all_kinds_extended = all_kinds @ [ Hinted ]

type config = {
  segments : int;
  kind : kind;
  profile : Segment.profile;
  add_overhead : float;
  remove_overhead : float;
  remote_op_delay : float;
  capacity : int option;
  locking_probes : bool;
}

let default_config =
  {
    segments = 16;
    kind = Linear;
    profile = Segment.Counting;
    add_overhead = 64.0;
    remove_overhead = 102.0;
    remote_op_delay = 0.0;
    capacity = None;
    locking_probes = false;
  }

type 'a strategy =
  | Linear_search of 'a Search_linear.t
  | Random_search of 'a Search_random.t
  | Tree_search of 'a Search_tree.t
  | Hinted_search of 'a Search_hinted.t

type totals = {
  adds : int;
  removes : int;
  steals : int;
  aborts : int;
  spills : int;
  deliveries : int;
  rejected_adds : int;
  segments_examined : int;
  elements_stolen : int;
}

type 'a t = {
  cfg : config;
  segments : 'a Segment.t array;
  termination : Termination.t;
  strategy : 'a strategy;
  hints : Hints.t option;
  mutable stats : totals;
}

type 'a removal = Local of 'a | Stolen of 'a * Steal.stats | Empty of Steal.stats

type add_outcome = Added_locally | Spilled of int | Delivered of int | Rejected

let create ?(on_size_change = fun ~seg:_ ~size:_ -> ()) ?(home_of = Fun.id) (cfg : config) =
  if cfg.segments <= 0 then invalid_arg "Pool.create: segments must be positive";
  (match cfg.capacity with
  | Some c when c <= 0 -> invalid_arg "Pool.create: capacity must be positive"
  | Some _ | None -> ());
  let segments =
    Array.init cfg.segments (fun i ->
        Segment.make
          ~on_size_change:(fun size -> on_size_change ~seg:i ~size)
          ?capacity:cfg.capacity ~locking_probes:cfg.locking_probes ~home:(home_of i) ~id:i
          cfg.profile)
  in
  (* The shared searcher counters live with segment 0, like any other
     centralised word on the machine. *)
  let termination = Termination.create ~home:(home_of 0) in
  let hints =
    match cfg.kind with
    | Hinted -> Some (Hints.create ~home:(home_of 0) ~home_of ~participants:cfg.segments)
    | Linear | Random | Tree -> None
  in
  let strategy =
    let remote_op_delay = cfg.remote_op_delay in
    (* A bounded thief caps its take at its spare capacity plus the element
       it returns immediately; the spare is read uncosted because it is a
       sizing heuristic, not a correctness decision (deposits tolerate a
       racy overshoot). *)
    let max_take_for =
      match cfg.capacity with
      | None -> fun _ -> max_int
      | Some c -> fun me -> 1 + max 0 (c - Segment.size_free segments.(me))
    in
    match cfg.kind with
    | Linear ->
      Linear_search (Search_linear.create ~remote_op_delay ~max_take_for segments termination)
    | Random ->
      Random_search (Search_random.create ~remote_op_delay ~max_take_for segments termination)
    | Tree -> Tree_search (Search_tree.create ~remote_op_delay ~max_take_for segments termination)
    | Hinted ->
      let hints = match hints with Some h -> h | None -> assert false in
      Hinted_search
        (Search_hinted.create ~remote_op_delay ~max_take_for ~hints segments termination)
  in
  {
    cfg;
    segments;
    termination;
    strategy;
    hints;
    stats =
      {
        adds = 0;
        removes = 0;
        steals = 0;
        aborts = 0;
        spills = 0;
        deliveries = 0;
        rejected_adds = 0;
        segments_examined = 0;
        elements_stolen = 0;
      };
  }

let config t = t.cfg

let join t = Termination.join t.termination

let leave t = Termination.leave t.termination

let check_me t me name =
  if me < 0 || me >= t.cfg.segments then invalid_arg (name ^ ": participant out of range")

(* A hinted add first checks the waiter count; on a hit it claims a waiter
   and deposits straight into that searcher's segment. *)
let try_deliver t ~me x =
  match t.hints with
  | None -> None
  | Some hints ->
    if Hints.waiters_hint hints > 0 then begin
      match Hints.claim_waiter hints ~me with
      | Some w ->
        let target = t.segments.(w) in
        let delivered =
          match t.cfg.capacity with
          | None ->
            Segment.add target x;
            true
          | Some _ -> Segment.try_add target x
        in
        if delivered then begin
          t.stats <-
            { t.stats with adds = t.stats.adds + 1; deliveries = t.stats.deliveries + 1 };
          Some w
        end
        else
          (* The claimed waiter's segment is full (bounded pool): the hint
             is consumed without a delivery; the searcher just keeps
             searching. Fall through to the normal add path. *)
          None
      | None -> None
    end
    else None

let add_bounded t ~me x =
  check_me t me "Pool.add";
  Engine.delay t.cfg.add_overhead;
  match try_deliver t ~me x with
  | Some w -> Delivered w
  | None -> (
  match t.cfg.capacity with
  | None ->
    Segment.add t.segments.(me) x;
    t.stats <- { t.stats with adds = t.stats.adds + 1 };
    Added_locally
  | Some _ ->
    if Segment.try_add t.segments.(me) x then begin
      t.stats <- { t.stats with adds = t.stats.adds + 1 };
      Added_locally
    end
    else begin
      (* The local segment is full: spill around the ring to the first
         segment with spare capacity (probe costed, then a locked
         re-check, mirroring the steal search's probe-then-lock). *)
      let p = t.cfg.segments in
      let rec spill i =
        if i = p then begin
          t.stats <- { t.stats with rejected_adds = t.stats.rejected_adds + 1 };
          Rejected
        end
        else begin
          let pos = (me + i) mod p in
          if Segment.probe_spare t.segments.(pos) > 0 && Segment.try_add t.segments.(pos) x
          then begin
            t.stats <- { t.stats with adds = t.stats.adds + 1; spills = t.stats.spills + 1 };
            Spilled pos
          end
          else spill (i + 1)
        end
      in
      spill 1
    end)

let add t ~me x =
  match add_bounded t ~me x with
  | Added_locally | Spilled _ | Delivered _ -> ()
  | Rejected -> failwith "Pool.add: pool is full"

let run_search t ~me =
  match t.strategy with
  | Linear_search s -> Search_linear.search s ~me
  | Random_search s -> Search_random.search s ~me
  | Tree_search s -> Search_tree.search s ~me
  | Hinted_search s -> Search_hinted.search s ~me

let remove t ~me =
  check_me t me "Pool.remove";
  Engine.delay t.cfg.remove_overhead;
  match Segment.try_remove t.segments.(me) with
  | Some x ->
    t.stats <- { t.stats with removes = t.stats.removes + 1 };
    Local x
  | None -> (
    match run_search t ~me with
    | Steal.Found { element; rest; stats } ->
      Segment.deposit t.segments.(me) rest;
      t.stats <-
        {
          t.stats with
          removes = t.stats.removes + 1;
          steals = t.stats.steals + 1;
          segments_examined = t.stats.segments_examined + stats.segments_examined;
          elements_stolen = t.stats.elements_stolen + stats.elements_stolen;
        };
      Stolen (element, stats)
    | Steal.Aborted stats ->
      t.stats <-
        {
          t.stats with
          aborts = t.stats.aborts + 1;
          segments_examined = t.stats.segments_examined + stats.segments_examined;
        };
      Empty stats)

let prefill t f ~per_segment =
  if per_segment < 0 then invalid_arg "Pool.prefill: negative count";
  Array.iteri
    (fun i seg ->
      for k = 0 to per_segment - 1 do
        Segment.prefill_one seg (f ((i * per_segment) + k))
      done)
    t.segments

let prefill_segment t ~seg x =
  if seg < 0 || seg >= t.cfg.segments then
    invalid_arg "Pool.prefill_segment: out of range";
  Segment.prefill_one t.segments.(seg) x

let size_of_segment t i =
  if i < 0 || i >= t.cfg.segments then invalid_arg "Pool.size_of_segment: out of range";
  Segment.size_free t.segments.(i)

let total_size t = Array.fold_left (fun acc s -> acc + Segment.size_free s) 0 t.segments

let totals t = t.stats

let segment_lock_stats t i =
  if i < 0 || i >= t.cfg.segments then invalid_arg "Pool.segment_lock_stats: out of range";
  Segment.lock_stats t.segments.(i)
