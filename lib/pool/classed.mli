(** Distinguishable elements: the paper's second open question (Section 5),
    "How might pools be extended to handle distinguishable elements?"

    Answer implemented here: partition each segment by element {e class}
    (task type, priority band, ...). Every class keeps its own counter per
    segment, so probes stay one memory access and steals still move
    ceil(n/2) of a single class; locality is preserved because a class's
    elements are still spread across all segments with local adds.

    Semantics follow from the termination analysis: "all participants are
    searching" proves the {e whole} pool stays empty, but cannot prove a
    single class will stay empty while producers of other classes are
    active. Per-class removal is therefore a bounded search
    ({!try_remove}: own segment, then one ring pass), and only
    {!remove_any} — which accepts every class — may use the full abort
    protocol. Callers needing to block on one class loop on
    {!try_remove} with their own back-off policy.

    Search strategy is linear, per the paper's conclusion that the simple
    algorithms suffice. *)

type 'a t

val create :
  ?home_of:(int -> Cpool_sim.Topology.node) ->
  ?add_overhead:float ->
  ?remove_overhead:float ->
  classes:int ->
  participants:int ->
  unit ->
  'a t
(** [create ~classes ~participants ()] builds the pool; overheads default
    to the calibrated {!Pool.default_config} values. Raises
    [Invalid_argument] if [classes <= 0] or [participants <= 0]. *)

val classes : 'a t -> int
val participants : 'a t -> int

val join : 'a t -> unit
(** Register the calling process (see {!Pool.join}). *)

val leave : 'a t -> unit

val add : 'a t -> me:int -> cls:int -> 'a -> unit
(** [add t ~me ~cls x] inserts [x] with class [cls] into [me]'s segment. *)

val try_remove : 'a t -> me:int -> cls:int -> 'a option
(** [try_remove t ~me ~cls] takes a class-[cls] element from the local
    segment, or steals half of the first segment holding that class found
    on one costed ring pass. [None] means no class-[cls] element was
    visible on this pass — not a proof the class is permanently empty. *)

val remove_any : 'a t -> me:int -> ('a * int) option
(** [remove_any t ~me] takes an element of any class (preferring the local
    segment, round-robin over classes), searching and stealing like
    {!Pool.remove}; [None] only after the all-searching abort condition
    and a confirming sweep over every class of every segment. *)

val size_of_class : 'a t -> int -> int
(** [size_of_class t cls] sums class [cls] across segments, uncosted. *)

val total_size : 'a t -> int

val steals : 'a t -> int
(** Successful steals so far (both entry points), uncosted. *)
