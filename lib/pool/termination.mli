(** Livelock detection for empty-pool searches.

    The paper (Section 3.2): if every segment empties and every process
    starts searching, none will ever add an element and the pool livelocks.
    "Our implementations keep a shared count of the processes looking for
    elements. When any process discovers that all the processes involved in
    the pool operations are looking (and therefore no process might be
    adding), it aborts its operation." This module is that shared-memory
    mechanism — deliberately not a distributed termination protocol, as the
    paper notes.

    We additionally track the number of *active participants* (processes
    that have joined and not yet left), so that searches also abort at the
    end of a run when the only processes still working are searchers. *)

type t

val create : home:Cpool_sim.Topology.node -> t
(** [create ~home] allocates the shared counters on node [home]. *)

val join : t -> unit
(** [join t] registers the calling process as an active participant
    (costed). *)

val leave : t -> unit
(** [leave t] deregisters the calling process (costed). *)

val begin_search : t -> unit
(** [begin_search t] increments the shared searching count (costed). Must be
    balanced by {!end_search}. *)

val end_search : t -> unit
(** [end_search t] decrements the shared searching count (costed). *)

val should_abort : t -> bool
(** [should_abort t] is a costed check, performed by a process that is
    itself searching, of whether every active participant is now searching —
    in which case no element can ever appear and the search must abort. *)

val active_free : t -> int
(** [active_free t] reads the participant count without charging (tests). *)

val searching_free : t -> int
(** [searching_free t] reads the searching count without charging (tests). *)
