(** The random search algorithm (paper Section 2.3).

    "Another simple algorithm chooses segments at random until it finds a
    non-empty segment to split." Probes draw from the calling process's
    deterministic random stream, with replacement, over all segments. *)

type 'a t

val create :
  ?remote_op_delay:float ->
  ?max_take_for:(int -> int) ->
  'a Segment.t array ->
  Termination.t ->
  'a t
(** [create segments termination] ([remote_op_delay], default 0, is charged
    once per logical remote operation during searches — see
    {!Pool.config.remote_op_delay}; [max_take_for me], default unlimited,
    caps how many elements participant [me] steals at once — a bounded
    thief passes its spare capacity + 1) builds the search state. Raises
    [Invalid_argument] on an empty array. *)

val search : 'a t -> me:int -> 'a Steal.outcome
(** [search t ~me] runs one search on behalf of participant [me]. Charges
    all probe/steal costs; aborts when every participant is searching. *)
