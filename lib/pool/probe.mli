(** Probing a segment during a search, with the Section 4.3 delay.

    The delay-sweep experiments charge an extra delay per {e logical}
    remote operation — one per attempt to steal from a remote segment —
    on top of the per-access NUMA costs. *)

val is_remote : 'a Segment.t -> bool
(** [is_remote seg] is whether [seg]'s home differs from the calling
    process's node. *)

val costed : delay:float -> 'a Segment.t -> int
(** [costed ~delay seg] reads [seg]'s size as a steal attempt, charging the
    extra per-remote-operation [delay] first when [seg] is remote. *)
