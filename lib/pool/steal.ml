(** Shared vocabulary of the steal machinery.

    Kept in its own module so segments, search strategies and the pool agree
    on one set of types without a dependency cycle. *)

(** What a locked steal attempt extracted from a victim segment. *)
type 'a loot =
  | Nothing  (** The victim was empty under the lock. *)
  | Single of 'a
      (** The victim held exactly one element, which is taken directly (the
          paper: "unless there is only one element in the remote segment, in
          which case that element is taken immediately"). *)
  | Batch of 'a * 'a list
      (** [Batch (x, rest)]: the victim held [n >= 2] elements; the thief
          removed [ceil n/2] of them — [x] satisfies the pending remove and
          [rest] is deposited into the thief's own segment. *)

(** Statistics of one completed search, feeding the paper's measurements. *)
type stats = {
  segments_examined : int;
      (** Leaf/segment probes performed before elements were found (or the
          search aborted). *)
  elements_stolen : int;
      (** Total elements moved by the steal, including the one returned; 0
          if aborted. *)
}

(** Result of a whole search-and-steal, as returned by a search strategy.
    The caller (the pool) deposits [rest] into the thief's own segment. *)
type 'a outcome =
  | Found of { element : 'a; rest : 'a list; stats : stats }
  | Aborted of stats
      (** Livelock detection fired: every active participant was searching,
          so no element can appear. *)

let loot_size = function
  | Nothing -> 0
  | Single _ -> 1
  | Batch (_, rest) -> 1 + List.length rest

let found ~examined loot =
  match loot with
  | Nothing -> invalid_arg "Steal.found: empty loot"
  | Single element ->
    Found { element; rest = []; stats = { segments_examined = examined; elements_stolen = 1 } }
  | Batch (element, rest) ->
    Found
      {
        element;
        rest;
        stats = { segments_examined = examined; elements_stolen = 1 + List.length rest };
      }

let aborted ~examined = Aborted { segments_examined = examined; elements_stolen = 0 }
