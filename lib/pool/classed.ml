open Cpool_sim

(* A class-aware segment: one lock, one counter and one payload stack per
   class. Counter reads/updates charge like any shared word; payload moves
   are free (counting profile, as the paper's experiments use). *)
type 'a seg = {
  home : Topology.node;
  lock : Lock.t;
  counts : int Memory.t array; (* per class *)
  items : 'a Cpool_util.Vec.t array; (* per class *)
}

type 'a t = {
  class_count : int;
  segs : 'a seg array;
  termination : Termination.t;
  add_overhead : float;
  remove_overhead : float;
  next_class : int array; (* per participant: remove_any round-robin *)
  mutable steal_count : int;
}

let create ?(home_of = Fun.id) ?(add_overhead = 64.0) ?(remove_overhead = 102.0) ~classes
    ~participants () =
  if classes <= 0 then invalid_arg "Classed.create: classes must be positive";
  if participants <= 0 then invalid_arg "Classed.create: participants must be positive";
  let mk_seg i =
    let home = home_of i in
    {
      home;
      lock = Lock.make ~home;
      counts = Array.init classes (fun _ -> Memory.make ~home 0);
      items = Array.init classes (fun _ -> Cpool_util.Vec.create ());
    }
  in
  {
    class_count = classes;
    segs = Array.init participants mk_seg;
    termination = Termination.create ~home:(home_of 0);
    add_overhead;
    remove_overhead;
    next_class = Array.make participants 0;
    steal_count = 0;
  }

let classes t = t.class_count

let participants t = Array.length t.segs

let join t = Termination.join t.termination

let leave t = Termination.leave t.termination

let check t ~me ~cls name =
  if me < 0 || me >= Array.length t.segs then invalid_arg (name ^ ": participant out of range");
  if cls < 0 || cls >= t.class_count then invalid_arg (name ^ ": class out of range")

let add t ~me ~cls x =
  check t ~me ~cls "Classed.add";
  Engine.delay t.add_overhead;
  let seg = t.segs.(me) in
  Lock.with_lock seg.lock (fun () ->
      ignore (Memory.fetch_add seg.counts.(cls) 1);
      Cpool_util.Vec.push seg.items.(cls) x)

(* Locked take of one class-[cls] element, if any. *)
let take_one seg cls =
  Lock.with_lock seg.lock (fun () ->
      if Memory.read seg.counts.(cls) = 0 then None
      else begin
        ignore (Memory.fetch_add seg.counts.(cls) (-1));
        Some (Cpool_util.Vec.pop_exn seg.items.(cls))
      end)

(* Locked steal of ceil(n/2) class-[cls] elements. *)
let steal_class seg cls =
  Lock.with_lock seg.lock (fun () ->
      let n = Memory.read seg.counts.(cls) in
      if n = 0 then Steal.Nothing
      else if n = 1 then begin
        ignore (Memory.fetch_add seg.counts.(cls) (-1));
        Steal.Single (Cpool_util.Vec.pop_exn seg.items.(cls))
      end
      else begin
        let h = (n + 1) / 2 in
        ignore (Memory.fetch_add seg.counts.(cls) (-h));
        match Cpool_util.Vec.take_last seg.items.(cls) h with
        | x :: rest -> Steal.Batch (x, rest)
        | [] -> assert false
      end)

let deposit seg cls xs =
  match xs with
  | [] -> ()
  | _ ->
    Lock.with_lock seg.lock (fun () ->
        ignore (Memory.fetch_add seg.counts.(cls) (List.length xs));
        Cpool_util.Vec.append_list seg.items.(cls) xs)

(* Probe then steal class [cls] at [pos]; bank any remainder at home. *)
let attempt t ~me ~cls pos =
  let seg = t.segs.(pos) in
  if Memory.read seg.counts.(cls) = 0 then None
  else begin
    match steal_class seg cls with
    | Steal.Nothing -> None
    | Steal.Single x ->
      t.steal_count <- t.steal_count + 1;
      Some x
    | Steal.Batch (x, rest) ->
      t.steal_count <- t.steal_count + 1;
      deposit t.segs.(me) cls rest;
      Some x
  end

let try_remove t ~me ~cls =
  check t ~me ~cls "Classed.try_remove";
  Engine.delay t.remove_overhead;
  match take_one t.segs.(me) cls with
  | Some x -> Some x
  | None ->
    let p = Array.length t.segs in
    let rec ring i =
      if i = p then None
      else
        match attempt t ~me ~cls ((me + i) mod p) with
        | Some x -> Some x
        | None -> ring (i + 1)
    in
    ring 1

(* One locked look at the local segment for any non-empty class, starting
   the class rotation at [start]. *)
let take_any_local t ~me ~start =
  let k = t.class_count in
  let seg = t.segs.(me) in
  Lock.with_lock seg.lock (fun () ->
      let rec scan j =
        if j = k then None
        else begin
          let cls = (start + j) mod k in
          if Memory.read seg.counts.(cls) > 0 then begin
            ignore (Memory.fetch_add seg.counts.(cls) (-1));
            Some (Cpool_util.Vec.pop_exn seg.items.(cls), cls)
          end
          else scan (j + 1)
        end
      in
      scan 0)

let remove_any t ~me =
  check t ~me ~cls:0 "Classed.remove_any";
  Engine.delay t.remove_overhead;
  let k = t.class_count in
  let p = Array.length t.segs in
  let start = t.next_class.(me) in
  t.next_class.(me) <- (start + 1) mod k;
  match take_any_local t ~me ~start with
  | Some found -> Some found
  | None ->
    Termination.begin_search t.termination;
    let finish r =
      Termination.end_search t.termination;
      r
    in
    (* Ring search over (segment, rotating class); abort via the shared
       count plus a confirming sweep over every class everywhere. *)
    let rec search pos j =
      let cls = (start + j) mod k in
      match if pos = me then None else attempt t ~me ~cls pos with
      | Some x -> finish (Some (x, cls))
      | None ->
        let pos, j = if j + 1 = k then ((pos + 1) mod p, 0) else (pos, j + 1) in
        if j = 0 && Termination.should_abort t.termination then begin
          match sweep 0 0 with
          | Some found -> finish (Some found)
          | None -> finish None
        end
        else search pos j
    and sweep i j =
      if i = p then None
      else begin
        let cls = (start + j) mod k in
        match attempt t ~me ~cls ((me + i) mod p) with
        | Some x -> Some (x, cls)
        | None -> if j + 1 = k then sweep (i + 1) 0 else sweep i (j + 1)
      end
    in
    search ((me + 1) mod p) 0

let size_of_class t cls =
  if cls < 0 || cls >= t.class_count then invalid_arg "Classed.size_of_class: class out of range";
  Array.fold_left (fun acc seg -> acc + Memory.peek seg.counts.(cls)) 0 t.segs

let total_size t =
  let sum = ref 0 in
  Array.iter
    (fun seg -> Array.iter (fun c -> sum := !sum + Memory.peek c) seg.counts)
    t.segs;
  !sum

let steals t = t.steal_count
