open Cpool_sim

type t = { searching : int Memory.t; active : int Memory.t }

let create ~home = { searching = Memory.make ~home 0; active = Memory.make ~home 0 }

let join t = ignore (Memory.fetch_add t.active 1)

let leave t = ignore (Memory.fetch_add t.active (-1))

let begin_search t = ignore (Memory.fetch_add t.searching 1)

let end_search t = ignore (Memory.fetch_add t.searching (-1))

let should_abort t =
  let searching = Memory.read t.searching in
  (* The two counters share a home node; one costed read covers the pair of
     words fetched together. *)
  let active = Memory.peek t.active in
  searching >= active

let active_free t = Memory.peek t.active

let searching_free t = Memory.peek t.searching
