(** Confirmation sweep before aborting a search.

    The paper's livelock rule — abort when every active participant is
    searching — is racy: a searcher may not yet have examined the one
    segment that still holds elements (certain for the random algorithm,
    possible for the tree when rounds restart). Before aborting, we
    therefore sweep every segment once, deterministically. While all
    participants are searching nobody adds, so a clean sweep proves the pool
    empty; finding elements turns the abort into a normal steal. The sweep
    charges ordinary probe costs and only runs on the (rare) abort path. *)

(** [confirm_or_steal segments ~start ~examined] probes all segments once,
    beginning at [start]. Returns [Ok (loot, position, examined')] on the
    first successful steal, or [Error examined'] when every segment proved
    empty; [examined'] includes the sweep's probes. *)
let confirm_or_steal ?(remote_op_delay = 0.0) ?(max_take = max_int) segments ~start ~examined =
  let p = Array.length segments in
  let rec go i examined =
    if i = p then Error examined
    else begin
      let pos = (start + i) mod p in
      let seg = segments.(pos) in
      let examined = examined + 1 in
      if Probe.costed ~delay:remote_op_delay seg > 0 then begin
        match Segment.steal_half ~max_take seg with
        | Steal.Nothing -> go (i + 1) examined
        | loot -> Ok (loot, pos, examined)
      end
      else go (i + 1) examined
    end
  in
  go 0 examined
