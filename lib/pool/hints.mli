(** The paper's first proposed extension (Section 5): "how might concurrent
    pools be modified so that searching processors leave hints in the pool,
    and elements added by another processor can be directed to the
    searching process."

    A searcher {e announces} itself on a per-participant flag word (homed
    on its own node) and bumps a shared waiter count; an adder that sees a
    non-zero count {e claims} a waiter — ring-scan of the flags, atomic
    clear — and deposits its element directly into that waiter's segment
    instead of its own. Whoever clears a flag (the claiming adder, or the
    searcher retracting after finding an element elsewhere) decrements the
    waiter count, so the count never drifts. *)

type t

val create :
  home:Cpool_sim.Topology.node -> home_of:(int -> Cpool_sim.Topology.node) -> participants:int -> t
(** [create ~home ~home_of ~participants] allocates the waiter count on
    [home] and participant [i]'s flag on [home_of i]. Raises
    [Invalid_argument] if [participants <= 0]. *)

val announce : t -> me:int -> unit
(** [announce t ~me] marks [me] as hungry (costed flag write + counter
    bump). Must be balanced by a successful {!retract} or by an adder's
    {!claim_waiter}. *)

val retract : t -> me:int -> bool
(** [retract t ~me] atomically clears [me]'s flag; returns whether this
    call cleared it (false means an adder already claimed [me] and a
    delivery is — or soon will be — in [me]'s segment). Decrements the
    waiter count when it clears. *)

val waiters_hint : t -> int
(** [waiters_hint t] is a costed read of the shared waiter count — what an
    adder checks before deciding to deliver. *)

val claim_waiter : t -> me:int -> int option
(** [claim_waiter t ~me] ring-scans the flags starting after [me] and
    atomically claims the first announced waiter (costed probes), skipping
    [me] itself. Returns the claimed participant, or [None] if everyone
    retracted in the meantime. *)

val announced_free : t -> int -> bool
(** [announced_free t i] reads [i]'s flag without charging (tests). *)

val waiters_free : t -> int
(** [waiters_free t] reads the count without charging (tests). *)
