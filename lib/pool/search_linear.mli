(** The linear search algorithm (paper Section 2.2).

    "The linear algorithm starts looking at the segment where it last found
    elements, and travels from one segment to the next segment, as if they
    were arranged in a ring, until it finds a non-empty segment to split."
    The first search of each process begins at its own segment. *)

type 'a t

val create :
  ?remote_op_delay:float ->
  ?max_take_for:(int -> int) ->
  'a Segment.t array ->
  Termination.t ->
  'a t
(** [create segments termination] ([remote_op_delay], default 0, is charged
    once per logical remote operation during searches — see
    {!Pool.config.remote_op_delay}; [max_take_for me], default unlimited,
    caps how many elements participant [me] steals at once — a bounded
    thief passes its spare capacity + 1) builds per-process search state for
    [Array.length segments] participants. Raises [Invalid_argument] on an
    empty array. *)

val search : 'a t -> me:int -> 'a Steal.outcome
(** [search t ~me] runs one search on behalf of participant [me] (inside
    [me]'s simulated process). Charges all probe/steal costs; maintains
    the shared searching count; aborts when every participant is
    searching. *)
