open Cpool_sim

type profile = Counting | Boxed

type 'a t = {
  seg_id : int;
  home_node : Topology.node;
  profile : profile;
  bound : int option;
  locking_probes : bool;
  lock : Lock.t;
  count : int Memory.t; (* authoritative size; every costed op touches it *)
  items : 'a Cpool_util.Vec.t; (* payloads, mirroring [count] *)
  on_size_change : int -> unit;
}

let make ?(on_size_change = fun _ -> ()) ?capacity ?(locking_probes = false) ~home ~id profile =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Segment.make: capacity must be positive"
  | Some _ | None -> ());
  {
    seg_id = id;
    home_node = home;
    profile;
    bound = capacity;
    locking_probes;
    lock = Lock.make ~home;
    count = Memory.make ~home 0;
    items = Cpool_util.Vec.create ();
    on_size_change;
  }

let capacity s = s.bound

let id s = s.seg_id

let home s = s.home_node

let size_free s = Memory.peek s.count

let probe s =
  if s.locking_probes then Lock.with_lock s.lock (fun () -> Memory.read s.count)
  else Memory.read s.count

(* Charge the per-element block-transfer cost in the boxed profile; the
   counting profile's split is a single counter operation (paper Sec 3.2). *)
let charge_transfer s n =
  match s.profile with
  | Counting -> ()
  | Boxed -> Engine.charge_n ~home:s.home_node n

let notify s = s.on_size_change (Memory.peek s.count)

let add s x =
  Lock.with_lock s.lock (fun () ->
      ignore (Memory.fetch_add s.count 1);
      charge_transfer s 1;
      Cpool_util.Vec.push s.items x;
      notify s)

let probe_spare s =
  let n = Memory.read s.count in
  match s.bound with None -> max_int | Some c -> max 0 (c - n)

let try_add s x =
  Lock.with_lock s.lock (fun () ->
      let n = Memory.read s.count in
      match s.bound with
      | Some c when n >= c -> false
      | Some _ | None ->
        ignore (Memory.fetch_add s.count 1);
        charge_transfer s 1;
        Cpool_util.Vec.push s.items x;
        notify s;
        true)

let try_remove s =
  Lock.with_lock s.lock (fun () ->
      let n = Memory.read s.count in
      if n = 0 then None
      else begin
        ignore (Memory.fetch_add s.count (-1));
        charge_transfer s 1;
        let x = Cpool_util.Vec.pop_exn s.items in
        notify s;
        Some x
      end)

let steal_half ?(max_take = max_int) s =
  if max_take < 1 then invalid_arg "Segment.steal_half: max_take must be >= 1";
  Lock.with_lock s.lock (fun () ->
      let n = Memory.read s.count in
      if n = 0 then Steal.Nothing
      else if n = 1 then begin
        ignore (Memory.fetch_add s.count (-1));
        charge_transfer s 1;
        let x = Cpool_util.Vec.pop_exn s.items in
        notify s;
        Steal.Single x
      end
      else begin
        let h = min ((n + 1) / 2) max_take in
        ignore (Memory.fetch_add s.count (-h));
        charge_transfer s h;
        let taken = Cpool_util.Vec.take_last s.items h in
        notify s;
        match taken with
        | x :: rest -> Steal.Batch (x, rest)
        | [] -> assert false
      end)

let prefill_one s x =
  Memory.poke s.count (Memory.peek s.count + 1);
  Cpool_util.Vec.push s.items x;
  notify s

let deposit s xs =
  match xs with
  | [] -> ()
  | _ ->
    let n = List.length xs in
    Lock.with_lock s.lock (fun () ->
        ignore (Memory.fetch_add s.count n);
        charge_transfer s n;
        Cpool_util.Vec.append_list s.items xs;
        notify s)

let lock_stats s = (Lock.acquisitions s.lock, Lock.contended_acquisitions s.lock)
