(* Work-stealing task scheduler on Mc_pool (see mc_task.mli for the
   design). Tasks are [unit -> unit] closures; the pool carries them
   between domains, and its quiescence detection — remove returning None
   only when every registered slot is searching an empty pool — doubles as
   the shutdown signal: the reserved submission slot stays registered
   while the scheduler is open, so workers can never conclude emptiness
   mid-run, and deregistering it at shutdown is what lets the drain
   finish. *)

type task = unit -> unit

(* The global-lock stack baseline (the paper's "stack with a global lock
   for the work list"), with the same quiescence story as the pool:
   [registered] counts workers plus the open submission slot, [searching]
   counts workers currently stuck on an empty stack, and remove concludes
   None only when the two meet under the lock. *)
type stack_impl = {
  lock : Mutex.t;
  mutable items : task list;
  mutable stk_registered : int;
  mutable stk_searching : int;
}

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

type backend =
  | Pool of task Cpool_mc.Mc_pool.t
  | Stack of stack_impl

(* A worker's identity on its backend: the pool hands out real handles,
   the stack only needs the registration count. *)
type wslot = Pool_slot of Cpool_mc.Mc_pool.handle | Stack_slot

type t = {
  backend : backend;
  submitter : wslot;
  submit_lock : Mutex.t;  (* guards [submitter_open] and the submitter slot *)
  mutable submitter_open : bool;
  max_workers : int;
  live : int Atomic.t;
  forked : int Atomic.t;
  started : int Atomic.t;
  processed : int Atomic.t;
  shrink_tokens : int Atomic.t;
  domains_lock : Mutex.t;  (* guards [domains] and [shut] *)
  mutable domains : unit Domain.t list;
  mutable shut : bool;
  label : string;
}

(* [ctx_lifo] is the worker's one-task LIFO slot: a fork parks its task
   here and displaces the previous occupant into the pool. The worker
   runs the newest task first (depth-first down the fork tree, so the
   resident queue stays the depth of the tree, not its breadth — the
   pool's segments are FIFO rings) while stealers still take the oldest,
   largest subtrees from the pool: the Chase-Lev execution order,
   recovered one layer up. The slot is drained before the worker ever
   blocks in [remove], so it is invisible to quiescence detection only
   while its owner is demonstrably active. *)
type ctx = { ctx_sched : t; ctx_wslot : wslot; mutable ctx_lifo : task option }

(* Which scheduler's worker (if any) the current domain is: lets [fork]
   use the worker's own segment and [await] help-run ready tasks. *)
let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* --- backend primitives ------------------------------------------------ *)

let stack_add s x = with_lock s.lock (fun () -> s.items <- x :: s.items)

let stack_try_remove s =
  with_lock s.lock (fun () ->
      match s.items with
      | [] -> None
      | x :: tl ->
        s.items <- tl;
        Some x)

(* Blocking remove with quiescence detection, mirroring Mc_pool.remove:
   spin politely while the stack is empty but someone registered is still
   active; None once every registered slot is searching over emptiness. *)
let stack_remove s =
  let searching = ref false in
  let enter () =
    if not !searching then begin
      s.stk_searching <- s.stk_searching + 1;
      searching := true
    end
  in
  let leave () =
    if !searching then begin
      s.stk_searching <- s.stk_searching - 1;
      searching := false
    end
  in
  let rec attempt () =
    let verdict =
      with_lock s.lock (fun () ->
          match s.items with
          | x :: tl ->
            s.items <- tl;
            leave ();
            `Got x
          | [] ->
            enter ();
            if s.stk_searching >= s.stk_registered then begin
              leave ();
              `Quiesced
            end
            else `Spin)
    in
    match verdict with
    | `Got x -> Some x
    | `Quiesced -> None
    | `Spin ->
      Domain.cpu_relax ();
      attempt ()
  in
  attempt ()

let stack_register s =
  with_lock s.lock (fun () -> s.stk_registered <- s.stk_registered + 1);
  Stack_slot

let stack_deregister s =
  with_lock s.lock (fun () -> s.stk_registered <- s.stk_registered - 1)

let b_add t slot x =
  match (t.backend, slot) with
  | Pool pool, Pool_slot h -> Cpool_mc.Mc_pool.add pool h x
  | Stack s, Stack_slot -> stack_add s x
  | _ -> assert false

let b_remove t slot =
  match (t.backend, slot) with
  | Pool pool, Pool_slot h -> Cpool_mc.Mc_pool.remove pool h
  | Stack s, Stack_slot -> stack_remove s
  | _ -> assert false

(* Work-first helping order: the owner's segment first — in a fork/join
   tree the children a worker just forked sit right there, behind the
   segment's lock-free owner path — and only then a full (stealing)
   search pass. The stack has one list, so local and global coincide. *)
let b_try_remove t slot =
  match (t.backend, slot) with
  | Pool pool, Pool_slot h -> (
    match Cpool_mc.Mc_pool.try_remove_local pool h with
    | Some _ as got -> got
    | None -> Cpool_mc.Mc_pool.try_remove pool h)
  | Stack s, Stack_slot -> stack_try_remove s
  | _ -> assert false

let b_register t =
  match t.backend with
  | Pool pool -> Pool_slot (Cpool_mc.Mc_pool.register pool)
  | Stack s -> stack_register s

let b_deregister t slot =
  match (t.backend, slot) with
  | Pool pool, Pool_slot h -> Cpool_mc.Mc_pool.deregister pool h
  | Stack s, Stack_slot -> stack_deregister s
  | _ -> assert false

(* --- tasks and workers ------------------------------------------------- *)

let run_task t task =
  Atomic.incr t.started;
  task ();
  Atomic.incr t.processed

(* CAS-claim one pending retirement request, the sanctioned RMW idiom. *)
let rec claim_shrink_token t =
  let n = Atomic.get t.shrink_tokens in
  n > 0 && (Atomic.compare_and_set t.shrink_tokens n (n - 1) || claim_shrink_token t)

(* Take the worker's LIFO slot, if occupied. *)
let take_lifo ctx =
  match ctx.ctx_lifo with
  | Some _ as got ->
    ctx.ctx_lifo <- None;
    got
  | None -> None

let worker_loop t slot =
  let ctx = { ctx_sched = t; ctx_wslot = slot; ctx_lifo = None } in
  Domain.DLS.set ctx_key (Some ctx);
  let rec go () =
    if claim_shrink_token t then
      (* Retiring: anything parked in the LIFO slot must go back to the
         pool or it would leave with us. *)
      match take_lifo ctx with None -> () | Some task -> b_add t slot task
    else
      match take_lifo ctx with
      | Some task ->
        run_task t task;
        go ()
      | None -> (
        (* The slot is empty here, so blocking in [remove] is safe: this
           worker hides no work from quiescence detection. *)
        match b_remove t slot with
        | Some task ->
          run_task t task;
          go ()
        | None -> () (* quiescence: submission closed, everything drained *))
  in
  go ();
  b_deregister t slot;
  Atomic.decr t.live

let enqueue t task =
  match Domain.DLS.get ctx_key with
  | Some ctx when ctx.ctx_sched == t ->
    Atomic.incr t.forked;
    (* Newest task into the LIFO slot; the displaced one becomes
       stealable pool work. *)
    (match ctx.ctx_lifo with
    | None -> ()
    | Some prev -> b_add t ctx.ctx_wslot prev);
    ctx.ctx_lifo <- Some task
  | _ ->
    with_lock t.submit_lock (fun () ->
        if not t.submitter_open then
          invalid_arg "Mc_task.fork: scheduler is shut down";
        Atomic.incr t.forked;
        b_add t t.submitter task)

(* --- futures ----------------------------------------------------------- *)

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = { fsched : t; cell : 'a state Atomic.t }

let fork t f =
  let cell = Atomic.make Pending in
  enqueue t (fun () ->
      (* Publish exactly once; the single store is the synchronization
         point awaiters read through. *)
      match f () with
      | v -> Atomic.set cell (Done v)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Atomic.set cell (Failed (e, bt)));
  { fsched = t; cell }

(* Waiting must not starve whoever is computing the future: spin briefly
   for cheap futures, then yield the core in short sleep slices. On an
   oversubscribed machine (more domains than cores) a busy-wait here
   competes with the worker actually producing the value and inverts the
   speedup. *)
let backoff spins =
  if spins < 512 then Domain.cpu_relax () else Unix.sleepf 0.0002

let await fut =
  let t = fut.fsched in
  let rec wait spins =
    match Atomic.get fut.cell with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
      (match Domain.DLS.get ctx_key with
      | Some ctx when ctx.ctx_sched == t -> (
        (* Help-first: a worker blocked on a future runs other ready
           tasks — its own LIFO slot first (the deepest fork), then the
           pool — so nested fork/join can never deadlock a bounded
           fleet. Only when there is nothing to help with does it back
           off like an external awaiter. *)
        let next =
          match take_lifo ctx with
          | Some _ as got -> got
          | None ->
            (* Sweep the pool only when something is actually queued
               (forked but not yet started). Without the gate an awaiter
               with nothing to help re-scans every segment per poll —
               pure overhead that competes with the worker computing the
               value it is waiting for. *)
            if Atomic.get t.forked - Atomic.get t.started > 0 then
              b_try_remove t ctx.ctx_wslot
            else None
        in
        match next with
        | Some task ->
          run_task t task;
          wait 0
        | None ->
          backoff spins;
          wait (spins + 1))
      | _ ->
        backoff spins;
        wait (spins + 1))
  in
  wait 0

let join futs = List.map await futs

(* --- construction, elasticity, shutdown -------------------------------- *)

let spawn_worker t slot =
  Atomic.incr t.live;
  let d = Domain.spawn (fun () -> worker_loop t slot) in
  t.domains <- d :: t.domains

let start t workers =
  with_lock t.domains_lock (fun () ->
      for _ = 1 to workers do
        spawn_worker t (b_register t)
      done);
  t

let of_config ?workers cfg =
  let segments = cfg.Cpool_mc.Mc_pool.Config.segments in
  if segments < 2 then
    invalid_arg
      "Mc_task.of_config: need at least 2 segments (workers + the \
       submission slot)";
  let workers = match workers with Some w -> w | None -> segments - 1 in
  if workers < 1 || workers > segments - 1 then
    invalid_arg "Mc_task.of_config: workers must be in 1 .. segments - 1";
  let pool : task Cpool_mc.Mc_pool.t = Cpool_mc.Mc_pool.of_config cfg in
  (* The last slot is the submission slot; registering it here is what
     keeps the pool non-quiescent (workers blocked in remove keep
     waiting) until shutdown deregisters it. *)
  let submitter = Pool_slot (Cpool_mc.Mc_pool.register_at pool (segments - 1)) in
  start
    {
      backend = Pool pool;
      submitter;
      submit_lock = Mutex.create ();
      submitter_open = true;
      max_workers = segments - 1;
      live = Atomic.make 0;
      forked = Atomic.make 0;
      started = Atomic.make 0;
      processed = Atomic.make 0;
      shrink_tokens = Atomic.make 0;
      domains_lock = Mutex.create ();
      domains = [];
      shut = false;
      label = Cpool_intf.to_string cfg.Cpool_mc.Mc_pool.Config.kind;
    }
    workers

let lock_stack ~workers =
  if workers < 1 then invalid_arg "Mc_task.lock_stack: workers must be positive";
  let s =
    { lock = Mutex.create (); items = []; stk_registered = 0; stk_searching = 0 }
  in
  let submitter = stack_register s in
  start
    {
      backend = Stack s;
      submitter;
      submit_lock = Mutex.create ();
      submitter_open = true;
      max_workers = max_int;
      live = Atomic.make 0;
      forked = Atomic.make 0;
      started = Atomic.make 0;
      processed = Atomic.make 0;
      shrink_tokens = Atomic.make 0;
      domains_lock = Mutex.create ();
      domains = [];
      shut = false;
      label = "stack";
    }
    workers

let grow t n =
  if n < 0 then invalid_arg "Mc_task.grow: negative count";
  with_lock t.domains_lock (fun () ->
      if t.shut then invalid_arg "Mc_task.grow: scheduler is shut down";
      let added = ref 0 in
      (try
         for _ = 1 to n do
           if Atomic.get t.live >= t.max_workers then raise Exit;
           (* Register from here and hand the slot to the new domain —
              Mc_pool.register raises Failure when every slot is claimed
              (a retiring worker may not have released its slot yet). *)
           let slot = b_register t in
           spawn_worker t slot;
           incr added
         done
       with
      | Exit -> ()
      | Failure _ -> ());
      !added)

let shrink t n =
  if n <= 0 then 0
  else begin
    let target = min n (max 0 (Atomic.get t.live - 1)) in
    if target > 0 then begin
      ignore (Atomic.fetch_and_add t.shrink_tokens target);
      (* Nudge tasks wake workers blocked in remove so they reach the
         token check; survivors run them as no-ops. *)
      for _ = 1 to target do
        enqueue t ignore
      done
    end;
    target
  end

let shutdown t =
  let already =
    with_lock t.domains_lock (fun () ->
        let a = t.shut in
        t.shut <- true;
        a)
  in
  if not already then begin
    (* Closing and deregistering under the one lock so a concurrent fork
       can never use the submitter slot after it is gone. *)
    with_lock t.submit_lock (fun () ->
        if t.submitter_open then begin
          t.submitter_open <- false;
          b_deregister t t.submitter
        end);
    (* No further grow can run (shut is set), so the domain list is
       final; join outside any lock. *)
    List.iter Domain.join t.domains
  end

let live_workers t = Atomic.get t.live
let max_workers t = t.max_workers
let label t = t.label
let forked t = Atomic.get t.forked
let processed t = Atomic.get t.processed

let steals t =
  match t.backend with Pool pool -> Cpool_mc.Mc_pool.steals pool | Stack _ -> 0
