(** Work-stealing task scheduler with futures, on the multicore pool.

    The paper's capstone is an application result: dynamically created
    tasks scheduled through a concurrent pool beat a global-lock stack
    work list (Figure 8, ~15x vs ~10.7x on 16 processors). This module is
    that scheduler as a library on real OCaml 5 domains, in the spirit of
    classic work-stealing runtimes (Blumofe & Leiserson's Cilk): tasks are
    closures flowing through an {!Cpool_mc.Mc_pool} — adds stay in the
    forking worker's segment, idle workers steal half a segment at a time,
    and on a [Hinted] pool an idle worker {e parks} on the hint board
    instead of spin-searching, woken by the next fork delivered straight
    into its segment.

    {2 Lifecycle}

    A scheduler built by {!of_config} owns the pool and its worker
    domains. The pool's {e last} segment slot is reserved as the
    submission slot: {!fork} from outside any worker enqueues through it
    (serialized by a lock), and because that slot stays registered while
    the scheduler is open, the pool can never look quiescent to the
    workers mid-run — blocked workers keep waiting for work instead of
    exiting. {!shutdown} deregisters the submission slot, so once the
    last task drains, the pool's own quiescence detection (every
    registered worker searching an empty pool) tells every worker to
    exit; shutdown then joins their domains. A pool with [segments = n]
    therefore drives at most [n - 1] workers.

    {2 Blocking discipline}

    {!await} inside a task {e helps}: while its future is unresolved the
    worker runs other ready tasks from the pool, so a bounded worker
    fleet can never deadlock on nested fork/join. {!await} outside any
    worker polls with an escalating backoff (spin, then short sleeps) and
    runs nothing — the measured parallelism of a run is exactly the
    worker count.

    {2 Elasticity}

    {!grow} registers fresh slots and spawns new worker domains mid-run;
    {!shrink} retires workers cooperatively (each retiree deregisters,
    releasing its slot for a later {!grow}) — the churn-safe
    register/deregister lifecycle is what makes this sound. Every task is
    counted: at {!shutdown}, [processed t = forked t] even across
    grow/shrink churn, or the scheduler lost work. *)

type t
(** A scheduler: a task pool (or the global-lock stack baseline) plus its
    worker domains. *)

type 'a future
(** The eventual result of a forked computation. *)

val of_config : ?workers:int -> Cpool_mc.Mc_pool.Config.t -> t
(** [of_config cfg] builds a pool-backed scheduler from the consolidated
    pool options — kind, seed, capacity, topology, tracing all inherited
    verbatim ([cfg.segments] must count the reserved submission slot, so
    topology files keep matching node-for-segment). Spawns [workers]
    worker domains (default, and maximum, [cfg.segments - 1]). Raises
    [Invalid_argument] if [cfg.segments < 2], [workers < 1] or
    [workers > cfg.segments - 1], plus anything
    {!Cpool_mc.Mc_pool.of_config} rejects. *)

val lock_stack : workers:int -> t
(** [lock_stack ~workers] is the paper's baseline: one LIFO work list
    guarded by one global lock, behind the identical scheduler machinery
    (same futures, same helping await, same quiescence-by-deregistration
    shutdown), so a benchmark compares only the distribution mechanism.
    Raises [Invalid_argument] if [workers < 1]. *)

val fork : t -> (unit -> 'a) -> 'a future
(** [fork t f] schedules [f] and returns its future. Inside a worker the
    task lands in that worker's own segment (cheap, stealable); outside,
    it goes through the submission slot. An exception raised by [f] is
    captured with its backtrace and re-raised by {!await}. Raises
    [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** [await fut] returns the future's value, running other ready tasks
    while it is unresolved when called from a worker (see the blocking
    discipline above). If the forked computation raised, the exception is
    re-raised here with the original backtrace ([Printexc.raise_with_backtrace]). *)

val join : 'a future list -> 'a list
(** [join futs] awaits each future in order. *)

val grow : t -> int -> int
(** [grow t n] spawns up to [n] additional worker domains, stopping early
    at the slot limit; returns how many actually started. Raises
    [Invalid_argument] if [n < 0] or after {!shutdown}. *)

val shrink : t -> int -> int
(** [shrink t n] asks up to [n] workers to retire, always leaving at
    least one; returns how many were asked. Retirement is cooperative — a
    worker exits at its next scheduling point (a no-op nudge task is
    enqueued per retirement so idle workers wake to notice) — so
    [live_workers] lags the request briefly. *)

val live_workers : t -> int
(** Workers currently running (a racy snapshot; retirements in flight may
    not have landed). *)

val max_workers : t -> int
(** The ceiling {!grow} can reach: [segments - 1] for a pool scheduler,
    unbounded for the stack baseline. *)

val label : t -> string
(** ["linear"], ["random"], ["tree"], ["hinted"] or ["stack"] — for
    reports. *)

val forked : t -> int
(** Tasks enqueued so far (including {!shrink} nudges). *)

val processed : t -> int
(** Tasks executed so far. After {!shutdown}, must equal {!forked} — the
    task-conservation identity the tests pin. *)

val steals : t -> int
(** Successful pool steals ([0] for the stack baseline). *)

val shutdown : t -> unit
(** [shutdown t] closes submission, waits for every queued task to drain,
    and joins all worker domains (including retired ones). Idempotent.
    Must not be called from inside a task. The counters remain readable
    afterwards. *)
