(** Growable array (the stdlib gains [Dynarray] only in OCaml 5.2).

    Amortised O(1) push/pop at the end; used as the backing store for pool
    segments and work lists. Not thread-safe: callers synchronise.

    Removal ([pop], [pop_exn], [take_last], [swap_remove], [clear]) never
    retains a reference to a removed element: vacated slots are overwritten
    (or the backing array dropped when the vector empties), so removed
    elements are immediately reclaimable by the GC. *)

type 'a t
(** A growable array of ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val of_list : 'a list -> 'a t
(** [of_list xs] contains the elements of [xs] in order. *)

val length : 'a t -> int
(** [length v] is the number of elements. *)

val is_empty : 'a t -> bool
(** [is_empty v] is [length v = 0]. *)

val push : 'a t -> 'a -> unit
(** [push v x] appends [x]. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty. *)

val pop_exn : 'a t -> 'a
(** [pop_exn v] is [pop v]; raises [Invalid_argument] if empty. *)

val get : 'a t -> int -> 'a
(** [get v i] is element [i]. Raises [Invalid_argument] if out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces element [i]. Raises [Invalid_argument] if out of
    bounds. *)

val take_last : 'a t -> int -> 'a list
(** [take_last v n] removes the last [min n (length v)] elements and returns
    them (most recently pushed first). *)

val append_list : 'a t -> 'a list -> unit
(** [append_list v xs] pushes each element of [xs] in order. *)

val clear : 'a t -> unit
(** [clear v] removes all elements. *)

val to_list : 'a t -> 'a list
(** [to_list v] is the elements in index order. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f v] applies [f] to each element in index order. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes element [i] in O(1) by swapping the last
    element into its place; returns the removed element. Raises
    [Invalid_argument] if out of bounds. *)
