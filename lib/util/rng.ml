type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy g = { state = g.state }

(* splitmix64 mixing function (Steele, Lea & Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next_int64 g in
  (* Mix once more so parent and child streams differ even for seed 0. *)
  { state = mix64 seed }

let bits g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n land (n - 1) = 0 then bits g land (n - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let max_usable = 0x3FFFFFFFFFFFFFFF - (0x3FFFFFFFFFFFFFFF mod n) in
    let rec draw () =
      let v = bits g in
      if v >= max_usable then draw () else v mod n
    in
    draw ()
  end

let float g x =
  (* 53 random bits scaled to [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int v /. 9007199254740992.0 *. x

let bool g = Int64.logand (next_int64 g) 1L = 1L

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
