/* Monotonic clock for the benchmark and tracing layers.
 *
 * Returns nanoseconds since an arbitrary epoch as an unboxed OCaml int
 * (63 bits on 64-bit platforms: enough for ~146 years of uptime), so the
 * binding can be [@@noalloc] and safe to call on hot paths.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and settimeofday; where it is
 * unavailable the stub degrades to gettimeofday, and the OCaml callers
 * keep their defensive negative-delta guards for exactly that case. */

#include <caml/mlvalues.h>

#if defined(_WIN32)
#include <windows.h>
#else
#include <time.h>
#include <sys/time.h>
#endif

CAMLprim value cpool_clock_now_ns(value unit)
{
  (void)unit;
#if defined(_WIN32)
  {
    static LARGE_INTEGER freq;
    LARGE_INTEGER now;
    if (freq.QuadPart == 0)
      QueryPerformanceFrequency(&freq);
    QueryPerformanceCounter(&now);
    return Val_long((intnat)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
  }
#else
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
  }
#endif
}
