type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length v = v.size

let is_empty v = v.size = 0

(* Grow a non-empty vector; an existing element serves as filler so no dummy
   value is required. *)
let grow v =
  let new_capacity = max 8 (2 * Array.length v.data) in
  let data = Array.make new_capacity v.data.(0) in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then
    if v.size = 0 then v.data <- Array.make 8 x else grow v;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

(* Clear the just-vacated slot at [v.size] so the GC can reclaim the
   element: without this, popped (boxed) elements stay reachable from
   [v.data] until the slot happens to be overwritten — a space leak that
   pins pool items for arbitrarily long. A live element serves as the
   filler (the same trick [grow] uses); when the vector empties there is
   none, so drop the whole backing array.

   Invariant: every slot at index >= [v.size] aliases [v.data.(0)] (both
   [push]'s initial [Array.make] and [grow] establish it for the fresh
   tail). Operations that replace the element at index 0 must refresh the
   whole tail ([refresh_filler]), or the out-of-range slots would keep
   the displaced element alive. *)
let release_slot v =
  if v.size = 0 then v.data <- [||] else v.data.(v.size) <- v.data.(0)

let refresh_filler v =
  if v.size = 0 then v.data <- [||]
  else Array.fill v.data v.size (Array.length v.data - v.size) v.data.(0)

let pop v =
  if v.size = 0 then None
  else begin
    v.size <- v.size - 1;
    let x = v.data.(v.size) in
    release_slot v;
    Some x
  end

let pop_exn v =
  match pop v with
  | Some x -> x
  | None -> invalid_arg "Vec.pop_exn: empty"

let check_bounds v i name = if i < 0 || i >= v.size then invalid_arg name

let get v i =
  check_bounds v i "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  check_bounds v i "Vec.set: index out of bounds";
  v.data.(i) <- x;
  if i = 0 then refresh_filler v

let take_last v n =
  let n = min n v.size in
  let rec take acc k = if k = 0 then acc else take (pop_exn v :: acc) (k - 1) in
  List.rev (take [] n)

let append_list v xs = List.iter (push v) xs

let clear v =
  v.size <- 0;
  v.data <- [||]

let to_list v = List.init v.size (fun i -> v.data.(i))

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let swap_remove v i =
  check_bounds v i "Vec.swap_remove: index out of bounds";
  let x = v.data.(i) in
  v.size <- v.size - 1;
  v.data.(i) <- v.data.(v.size);
  if i = 0 then refresh_filler v else release_slot v;
  x
