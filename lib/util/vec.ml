type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length v = v.size

let is_empty v = v.size = 0

(* Grow a non-empty vector; an existing element serves as filler so no dummy
   value is required. *)
let grow v =
  let new_capacity = max 8 (2 * Array.length v.data) in
  let data = Array.make new_capacity v.data.(0) in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then
    if v.size = 0 then v.data <- Array.make 8 x else grow v;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let pop v =
  if v.size = 0 then None
  else begin
    v.size <- v.size - 1;
    Some v.data.(v.size)
  end

let pop_exn v =
  match pop v with
  | Some x -> x
  | None -> invalid_arg "Vec.pop_exn: empty"

let check_bounds v i name = if i < 0 || i >= v.size then invalid_arg name

let get v i =
  check_bounds v i "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  check_bounds v i "Vec.set: index out of bounds";
  v.data.(i) <- x

let take_last v n =
  let n = min n v.size in
  let rec take acc k = if k = 0 then acc else take (pop_exn v :: acc) (k - 1) in
  List.rev (take [] n)

let append_list v xs = List.iter (push v) xs

let clear v = v.size <- 0

let to_list v = List.init v.size (fun i -> v.data.(i))

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let swap_remove v i =
  check_bounds v i "Vec.swap_remove: index out of bounds";
  let x = v.data.(i) in
  v.size <- v.size - 1;
  v.data.(i) <- v.data.(v.size);
  x
