(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator — random search probes, job-mix
    draws, workload shuffles — draws from an explicit generator so that a run
    is a pure function of its seed. Splitmix64 passes BigCrush, is trivially
    splittable, and needs no global state. *)

type t
(** A mutable generator. *)

val create : int64 -> t
(** [create seed] is a fresh generator. Distinct seeds give independent
    streams for practical purposes. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g]; the two then evolve
    independently. *)

val split : t -> t
(** [split g] derives a new independent generator from [g], advancing [g].
    Used to give each simulated process its own stream. *)

val next_int64 : t -> int64
(** [next_int64 g] is the next raw 64-bit output. *)

val bits : t -> int
(** [bits g] is a non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place g a] applies a Fisher-Yates shuffle to [a]. *)
