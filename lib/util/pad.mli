(** Best-effort cache-line padding for per-domain hot state.

    OCaml cannot force alignment, but it can keep two domains' hot records
    out of the {e same} line: {!copy_as_padded} reallocates a record (or any
    plain tag-0 block, including ['a Atomic.t]) into a heap block oversized
    by {!cache_line_words}, so neighbouring allocations — typically the next
    domain's counterpart record — start at least a cache line later. This is
    the technique multicore libraries use to kill false sharing between
    per-domain atomics allocated back to back. *)

val cache_line_words : int
(** Spare words appended to a padded block — 16 words = 128 bytes, covering
    a 64-byte line plus the adjacent-line prefetcher's pair. *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded x] is a shallow copy of [x] in an oversized heap block.
    Mutable fields stay mutable; the copy is the value to retain (the
    original is garbage). Immediates and non-tag-0 blocks (closures, float
    arrays, …) are returned unchanged. *)
