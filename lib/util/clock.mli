(** Shared monotonic clock.

    Wall-clock time ([Unix.gettimeofday]) jumps when NTP steps the clock,
    which turns benchmark latency samples negative and moves run deadlines
    — the bug class this module exists to remove. {!now_ns} reads
    [CLOCK_MONOTONIC] (Mtime-style monotonic ticks) through a [@@noalloc]
    C stub, falling back to [gettimeofday] only on platforms without a
    monotonic source; callers that must survive that fallback keep a
    defensive negative-delta guard.

    Timestamps are nanoseconds since an {e arbitrary} epoch as a native
    [int] (63 bits: ~146 years), so differences are plain integer
    subtraction with no allocation — cheap enough for per-event trace
    stamping ({!Mc_trace}-style fixed-slot buffers) and per-batch
    benchmark timing. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary epoch. Never decreases on
    platforms with a monotonic clock; comparable only within one process
    run. *)

val now_s : unit -> float
(** {!now_ns} in seconds (same arbitrary epoch). *)

val elapsed_s : since_ns:int -> float
(** [elapsed_s ~since_ns] is the seconds elapsed since the earlier
    {!now_ns} reading [since_ns]; clamped to [0.] so a fallback clock step
    can never yield a negative duration. *)

val ns_of_s : float -> int
(** [ns_of_s s] converts a duration in seconds to nanoseconds (rounded). *)
