type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Assoc of (string * t) list

(* ---- building ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no NaN/infinity literals; emit null rather than invalid text. *)
  if not (Float.is_finite f) then None
  else
    let s = Printf.sprintf "%.12g" f in
    (* "%g" can print a bare integer ("3"), which would parse back as Int;
       keep the float-ness visible. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then Some s
    else Some (s ^ ".0")

let rec write buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    Buffer.add_string buf (match float_repr f with Some s -> s | None -> "null")
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        write buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Assoc [] -> Buffer.add_string buf "{}"
  | Assoc fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        escape buf k;
        Buffer.add_string buf ": ";
        write buf (indent + 2) item)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------------- *)

exception Parse_failure of int * string

type cursor = { src : string; mutable pos : int }

let failp c fmt = Printf.ksprintf (fun m -> raise (Parse_failure (c.pos, m))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> failp c "expected %C, found %C" ch x
  | None -> failp c "expected %C, found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else failp c "invalid literal (expected %s)" word

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> failp c "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then failp c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when Uchar.is_valid code ->
          Buffer.add_utf_8_uchar buf (Uchar.of_int code)
        | Some _ | None -> failp c "invalid \\u escape %s" hex);
        c.pos <- c.pos + 4
      | Some ch -> failp c "invalid escape \\%C" ch
      | None -> failp c "unterminated escape");
      advance c;
      go ()
    | Some ch when Char.code ch < 0x20 -> failp c "raw control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.src start (c.pos - start) in
  let floatish = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text in
  if floatish then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> failp c "invalid number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f (* out of int range *)
      | None -> failp c "invalid number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> failp c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Assoc []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> failp c "expected ',' or '}' in object"
      in
      Assoc (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> failp c "expected ',' or ']' in array"
      in
      List (items [])
    end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> failp c "unexpected character %C" ch

let parse src =
  let c = { src; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    (match peek c with
    | Some ch -> failp c "trailing garbage starting with %C" ch
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Parse_failure (pos, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

(* ---- accessors --------------------------------------------------------- *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
