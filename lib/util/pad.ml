(* OCaml gives no control over allocation alignment, so "padding to a cache
   line" here means oversizing the heap block: a copy with [pad_words] spare
   fields keeps the next allocation at least a line away, which is what
   stops two domains' hot records from landing on the same line. The spare
   fields are initialised to unit by [Obj.new_block], so the GC scans them
   harmlessly. *)

let cache_line_words = 16

let copy_as_padded (type a) (x : a) : a =
  (* lint: allow raw-obj -- padding relocates a block it never reinterprets *)
  let r = Obj.repr x in
  (* Only plain tag-0 blocks (records, tuples, refs, atomics) are safe to
     relocate field-by-field; anything else keeps its original block. *)
  if Obj.is_int r || Obj.tag r <> 0 then x
  else begin
    let n = Obj.size r in
    let padded = Obj.new_block 0 (n + cache_line_words) in
    for i = 0 to n - 1 do
      Obj.set_field padded i (Obj.field r i)
    done;
    (* lint: allow raw-obj -- same value, same type: only the block size changed *)
    (Obj.obj padded : a)
  end
