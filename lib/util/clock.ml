external now_ns : unit -> int = "cpool_clock_now_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) *. 1e-9

let elapsed_s ~since_ns = Float.max 0.0 (float_of_int (now_ns () - since_ns) *. 1e-9)

let ns_of_s s = int_of_float (Float.round (s *. 1e9))
