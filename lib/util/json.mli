(** Minimal JSON: enough to write and re-validate benchmark artefacts
    ([BENCH_*.json]) without an external dependency.

    {!to_string} emits pretty-printed, standards-valid JSON (non-finite
    floats become [null]); {!parse} is a strict recursive-descent reader of
    the full JSON grammar that round-trips everything {!to_string}
    produces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** [to_string v] renders [v] with two-space indentation and a trailing
    newline. NaN and infinite floats are emitted as [null]. *)

val parse : string -> (t, string) result
(** [parse s] reads one JSON value spanning all of [s] (trailing whitespace
    allowed). Numbers without [.]/[e] parse as [Int], others as [Float];
    the error string carries the byte offset of the failure. *)

val member : string -> t -> t option
(** [member key v] is field [key] of an [Assoc], else [None]. *)

val to_list : t -> t list option

val to_number : t -> float option
(** [to_number v] is the numeric value of an [Int] or [Float]. *)
