(** Multicore concurrent pool for OCaml 5 domains.

    The practical counterpart of the simulated {!Cpool.Pool}: an unordered
    collection partitioned into per-worker segments. A worker's adds and
    removes stay in its own segment; when that runs dry the worker steals
    roughly half of the first non-empty segment its search algorithm finds
    (Manber's concurrent pools, evaluated by Kotz & Ellis 1989 — their
    result that the simple linear/random searches suffice motivates
    [Linear] as the default here).

    Typical use: create with one segment per worker domain, {!register}
    once in each domain, then {!add}/{!remove} freely. All operations are
    thread-safe; [remove] returning [None] means the pool was confirmed
    empty while every registered worker was simultaneously searching — the
    natural quiescence signal for task-graph workloads. *)

type kind = Cpool_intf.kind = Linear | Random | Tree | Hinted
(** The shared algorithm type ({!Cpool_intf.kind}), re-exported so the old
    [Mc_pool.Linear]-style constructors keep compiling. [Hinted] is linear
    search plus a hint board ({!Mc_hints}): a searcher that sweeps every
    segment empty publishes a claimable hint and parks, and adds deliver
    elements straight into a parked searcher's segment before touching
    their own (paper §5). *)

val kind_to_string : kind -> string
(** Deprecated alias for {!Cpool_intf.to_string}. *)

val kind_of_string : string -> (kind, string) result
(** Alias for {!Cpool_intf.of_string}. *)

val all_kinds : kind list
(** Alias for {!Cpool_intf.all}. *)

type 'a t

type handle
(** A worker's identity: its segment slot plus search state. Handles are
    not thread-safe; use each handle from one domain at a time. *)

(** Pool construction options, consolidated in one record so call sites
    read [{ Config.default with segments = 8; kind = Hinted }] instead of
    threading eight optional keywords, and harness configs can embed a
    pool spec as a plain value. *)
module Config : sig
  type t = {
    segments : int;  (** Segment slots; one per worker domain. *)
    kind : kind;  (** Search algorithm; [Linear] by default. *)
    seed : int64;
        (** Drives the [Random] search's probe sequence deterministically
            per handle. *)
    capacity : int option;
        (** Per-segment bound; [None] (default) is unbounded. Full adds
            spill to the first segment with room, and a thief reserves
            spare room in its own segment before stealing so the banked
            remainder always fits (no segment ever exceeds its capacity,
            even transiently). *)
    fast_path : bool;
        (** Enable the segments' lock-free owner path (default [true]);
            [false] is the all-mutex baseline used for benchmarking. *)
    trace : bool;
        (** Give every handle a per-domain {!Mc_trace} event ring
            (default [false]); when off, handles share the no-op
            {!Mc_trace.disabled} tracer and pay one predictable branch
            per recording site. *)
    trace_capacity : int;
        (** Event-ring slots per handle (default [8192], rounded up to a
            power of two). *)
    topology : Cpool_topology.t option;
        (** Attach the shared locality model: segment [i] is homed on
            topology node [i], remote probes, steals, spills and hint
            deliveries pay an emulated busy-wait latency of
            [(distance - 1) * unit_ns] per access, and the near/far
            {!Mc_stats} counters come alive. *)
    topology_aware : bool;
        (** With a topology, let the search policies exploit the model
            (default [true]) — Linear/Hinted scan in near-first order,
            Random shuffles only within equal-distance buckets, Tree maps
            locality groups onto contiguous leaf subtrees, spills fill
            near segments first, and hinted adders claim near parked
            searchers before far ones. Aware searchers also escalate
            reluctantly: three of every four failed search passes scan
            only the near prefix of the probe order, and every fourth
            goes the full distance. [false] is the distance-oblivious
            twin: same emulated machine, distance-blind policies — the
            benchmark baseline. *)
  }

  val default : t
  (** One [Linear] segment, seed [42L], unbounded, fast path on, no
      trace, no topology. Build pools as record updates of this. *)
end

val of_config : Config.t -> 'a t
(** [of_config c] builds a pool from the consolidated options. Raises
    [Invalid_argument] if [c.segments <= 0], [c.capacity <= Some 0],
    [c.trace_capacity <= 0], or the topology's node count differs from
    [c.segments]. *)

val create :
  ?kind:kind ->
  ?seed:int64 ->
  ?capacity:int ->
  ?fast_path:bool ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?topology:Cpool_topology.t ->
  ?topology_aware:bool ->
  segments:int ->
  unit ->
  'a t
[@@alert
  deprecated
    "Use Mc_pool.of_config { Config.default with segments = ... } instead; \
     the keyword create is a thin wrapper kept for transition."]
(** [create ~segments ()] is
    [of_config { Config.default with segments; ... }] — the historical
    keyword interface, kept as a deprecated wrapper. Defaults and
    validation are exactly {!Config.default} and {!of_config}'s. *)

val segments : 'a t -> int

val kind : 'a t -> kind

val topology : 'a t -> Cpool_topology.t option
(** The locality model the pool was created with, if any. *)

val topology_aware : 'a t -> bool
(** Whether the search policies exploit the topology; [false] for pools
    without one and for the distance-oblivious twin. *)

val probe_order : 'a t -> slot:int -> int array
(** [probe_order t ~slot] is the sequence of segments one full search pass
    from [slot] examines — always a permutation of [0 .. segments t - 1].
    Near-first for topology-aware pools (for [Random], a representative
    bucket-shuffled draw seeded like the slot's handle; for [Tree], the
    group-major leaf placement), the plain ring otherwise. Raises
    [Invalid_argument] if [slot] is out of range. *)

val register : 'a t -> handle
(** [register t] claims the next free segment slot. Raises [Failure] when
    all slots are claimed. *)

val register_at : 'a t -> int -> handle
(** [register_at t i] claims slot [i] explicitly (for tests and pinned
    layouts). Raises [Invalid_argument] if out of range; slots may be
    claimed at most once. *)

val slot : handle -> int
(** [slot h] is the segment index the handle owns. *)

val deregister : 'a t -> handle -> unit
(** [deregister t h] removes the worker from quiescence accounting: a
    worker that stops calling the pool MUST deregister, or blocked
    {!remove} calls in other workers can never conclude the pool is empty.
    The slot is released for a future {!register} (the seed version leaked
    it, so register/deregister churn eventually exhausted every slot); the
    handle must not be used afterwards. Elements left in the segment remain
    stealable. Raises [Invalid_argument] if [h] was already
    deregistered. *)

val claimed_count : 'a t -> int
(** [claimed_count t] is how many slots are currently claimed (taken under
    the registration lock; exact whenever no registration is mid-flight).
    After every worker deregisters it must be [0] — the stress harness's
    slot-leak invariant. *)

val registered : 'a t -> int
(** [registered t] is the current number of registered workers (a racy
    snapshot). *)

val add : 'a t -> handle -> 'a -> unit
(** [add t h x] inserts [x] into [h]'s segment (spilling on a bounded
    pool). Raises [Failure] when every segment is full — only possible
    with [capacity]; use {!try_add} to handle that case. *)

val try_add : 'a t -> handle -> 'a -> bool
(** [try_add t h x] inserts locally, spilling around the ring on a bounded
    pool; [false] when the whole pool is full. *)

val try_remove_local : 'a t -> handle -> 'a option
(** [try_remove_local t h] removes from [h]'s own segment only. *)

val remove : 'a t -> handle -> 'a option
(** [remove t h] removes an arbitrary element, searching and stealing if
    [h]'s segment is empty; blocks (spinning politely) while the pool is
    empty but some registered worker is still active, and returns [None]
    only once every registered worker is searching and a full sweep
    confirmed emptiness. On a [Hinted] pool the block parks on the hint
    board instead of re-sweeping: the searcher publishes a claimable hint,
    polls its own segment with exponential backoff between sweep rounds,
    and is woken by an adder delivering straight into its segment. A parked
    searcher still counts as "searching empty", so quiescence detection is
    unchanged. *)

val try_remove : 'a t -> handle -> 'a option
(** [try_remove t h] is like {!remove} but never blocks: one search pass
    over the segments; [None] if nothing was found. *)

val size : 'a t -> int
(** [size t] sums segment sizes (a racy snapshot). *)

val segment_sizes : 'a t -> int array
(** [segment_sizes t] snapshots every segment's occupied capacity
    lock-free. On a bounded pool no entry can exceed the capacity, at any
    moment — the invariant the stress harness watches concurrently. *)

val steals : 'a t -> int
(** [steals t] counts successful steals so far (monotonic, approximate
    under heavy contention only in its read timing). *)

(** {2 Telemetry and checking} *)

val stats_of_handle : handle -> Mc_stats.t
(** [stats_of_handle h] is the worker's live telemetry. Only [h]'s domain
    writes it; other domains may read it racily or merge it after the
    worker quiesces. *)

val tracing : 'a t -> bool
(** [tracing t] is whether the pool was created with [~trace:true]. *)

val trace_of_handle : handle -> Mc_trace.t
(** [trace_of_handle h] is the worker's event ring ({!Mc_trace.disabled}
    on an untraced pool). Single-writer: read it after [h]'s domain
    quiesces. *)

val traces : 'a t -> Mc_trace.t list
(** [traces t] is every tracer the pool ever issued (deregistered handles
    included, mirroring {!stats}); empty on an untraced pool. Merge with
    {!Mc_trace.merge} / export with {!Mc_trace.to_chrome} after the
    workers quiesce. *)

val segment_stats : 'a t -> Mc_stats.t array
(** [segment_stats t] is each segment's live path telemetry (fast vs
    locked ring operations, inbox adds, batched-steal sizes), indexed by
    slot. Racy while workers run; exact at quiescence. *)

val stats : 'a t -> Mc_stats.t
(** [stats t] merges the telemetry of every handle the pool ever issued
    (including deregistered ones) and every segment's path counters into a
    fresh snapshot, so totals are conserved across register/deregister
    churn. Exact at quiescence, racy while workers are running. *)

val check_segments : 'a t -> bool
(** [check_segments t] verifies every segment's count/content/capacity
    invariant (see {!Mc_segment.invariant_ok}); call at quiescence. *)
