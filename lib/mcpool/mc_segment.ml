type 'a t = {
  seg_id : int;
  bound : int option;
  mutex : Mutex.t;
  items : 'a Cpool_util.Vec.t;
  count : int Atomic.t; (* mirrors [Vec.length items]; read lock-free *)
}

let make ?capacity ~id () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mc_segment.make: capacity must be positive"
  | Some _ | None -> ());
  {
    seg_id = id;
    bound = capacity;
    mutex = Mutex.create ();
    items = Cpool_util.Vec.create ();
    count = Atomic.make 0;
  }

let id s = s.seg_id

let size s = Atomic.get s.count

let with_lock s f =
  Mutex.lock s.mutex;
  match f () with
  | v ->
    Mutex.unlock s.mutex;
    v
  | exception e ->
    Mutex.unlock s.mutex;
    raise e

let add s x =
  with_lock s (fun () ->
      Cpool_util.Vec.push s.items x;
      Atomic.incr s.count)

let try_add s x =
  with_lock s (fun () ->
      match s.bound with
      | Some c when Cpool_util.Vec.length s.items >= c -> false
      | Some _ | None ->
        Cpool_util.Vec.push s.items x;
        Atomic.incr s.count;
        true)

let spare s =
  match s.bound with None -> max_int | Some c -> max 0 (c - Atomic.get s.count)

let try_remove s =
  if Atomic.get s.count = 0 then None
  else
    with_lock s (fun () ->
        match Cpool_util.Vec.pop s.items with
        | Some x ->
          Atomic.decr s.count;
          Some x
        | None -> None)

let steal_half ?(max_take = max_int) s =
  if max_take < 1 then invalid_arg "Mc_segment.steal_half: max_take must be >= 1";
  with_lock s (fun () ->
      let n = Cpool_util.Vec.length s.items in
      if n = 0 then Cpool.Steal.Nothing
      else if n = 1 then begin
        let x = Cpool_util.Vec.pop_exn s.items in
        Atomic.decr s.count;
        Cpool.Steal.Single x
      end
      else begin
        let h = min ((n + 1) / 2) max_take in
        let taken = Cpool_util.Vec.take_last s.items h in
        Atomic.set s.count (n - h);
        match taken with
        | x :: rest -> Cpool.Steal.Batch (x, rest)
        | [] -> assert false
      end)

let deposit s xs =
  match xs with
  | [] -> ()
  | _ ->
    with_lock s (fun () ->
        Cpool_util.Vec.append_list s.items xs;
        Atomic.set s.count (Cpool_util.Vec.length s.items))
