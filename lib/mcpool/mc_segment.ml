(* The hardware instantiation of the segment: Stdlib Atomic + Mutex.
   All the logic lives in Mc_segment_core so the interleaving checker can
   run the identical code on instrumented primitives. *)
include Mc_segment_core.Make (Mc_prim.Real)
