(** Claimable hint board for the [Hinted] search algorithm (paper §5).

    One slot per segment. A searcher that swept every segment empty
    {!publish}es its slot and parks; an adder {!try_claim}s any published
    slot with a single CAS, deposits its element into that searcher's
    segment (through the segment's spill inbox) and {!release}s the slot.
    The searcher leaves the parked state by {!retract}ing its hint — and
    when the retract CAS loses, by waiting for the winning adder's release
    and checking its own segment for the delivery.

    The board is atomics-only: no caller ever holds a lock while touching
    it, so the hand-off's lock order is simply "board transition, then (for
    the delivering adder) the one target-segment mutex inside [spill_add]".

    Like {!Mc_segment_core}, the protocol is a functor over {!Mc_prim.S} so
    the interleaving checker can enumerate every schedule of the shipped
    code; [include Make (Mc_prim.Real)] below is what {!Mc_pool} runs. *)

module type HINTS = sig
  type t

  (** What a searcher's {!retract} observed. *)
  type retract_outcome =
    | Retracted  (** The hint was withdrawn unclaimed. *)
    | Claim_pending
        (** An adder's claim won the CAS race: a delivery is in flight into
            the searcher's segment. Await {!is_free}, then poll the
            segment. *)

  val create : slots:int -> unit -> t
  (** One slot per segment. Raises [Invalid_argument] if [slots <= 0]. *)

  val slots : t -> int

  val waiters : t -> int
  (** Conservative count of published hints — the adders' cheap "anyone
      parked?" read. May lag the board by a transition in either direction;
      exact at quiescence. *)

  val publish : t -> int -> unit
  (** [publish t i] marks slot [i] claimable. Only slot [i]'s owner (the
      searcher registered on segment [i]) may call it, and only when the
      slot is [Free]. *)

  val try_claim : ?order:int array -> t -> from:int -> int option
  (** [try_claim t ~from] scans the ring starting after slot [from] (the
      claimer's own slot is never examined) and CAS-claims the first
      published hint. [Some w] obliges the caller to attempt the delivery
      into segment [w] and then {!release} [w]. [?order] overrides the scan
      order with an explicit slot permutation (topology-aware pools pass
      the claimer's near-first order so nearby parked searchers are claimed
      before far ones); [from] is still skipped. *)

  val release : t -> int -> unit
  (** [release t w] frees a slot the caller claimed, after the delivery
      attempt (successful or not). *)

  val retract : t -> int -> retract_outcome
  (** [retract t i] withdraws slot [i]'s published hint. Owner-only. *)

  val is_published : t -> int -> bool

  val is_free : t -> int -> bool
  (** After a [Claim_pending] retract, [is_free t i] turning true means the
      winning adder released the slot — its delivery attempt is complete. *)

  val published_count : t -> int
  (** Exact scan of the board (checker/debug; racy while workers run). *)
end

module Make (P : Mc_prim.S) : HINTS

include HINTS
