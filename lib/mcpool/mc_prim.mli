(** Synchronisation primitives the multicore segment is written against.

    {!Mc_segment_core} takes these as a functor parameter so the exact same
    segment code can run either on the hardware primitives ({!Real}) or on
    the interleaving checker's instrumented shims
    ([Cpool_analysis.Sched.Prim]), which turn every primitive operation into
    a scheduling point and let a bounded DFS enumerate all interleavings. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t

  val make_padded : 'a -> 'a t
  (** Like [make], but placed so that neighbouring allocations do not share
      its cache line (best-effort: see [Cpool_util.Pad]). Use for per-domain
      hot atomics written from different domains. *)

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val exchange : 'a t -> 'a -> 'a
  (** [exchange r v] installs [v] and returns the previous value, atomically.
      The single-step drain of the MPSC spill inbox: the owner swaps the
      whole stack for [[]] without a window where pushes could be lost. *)

  val fetch_and_add : int t -> int -> int

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** [compare_and_set r seen v] installs [v] iff the current value is
      physically equal to [seen]; returns whether it did. The building block
      for bound-exact capacity claims. *)
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
end

(** A tracked plain (non-atomic) mutable cell. Shared mutable state that is
    deliberately unsynchronized — the ring's element slots, the owner-only
    scrub cursor — lives in [Plain.t] rather than bare [mutable] fields so
    the interleaving checker's shim can feed every access to its
    happens-before race detector: an access the protocol does not actually
    order gets reported instead of silently relying on luck. *)
module type PLAIN = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val racy_get : 'a t -> 'a
  (** A sanctioned racy read: the caller certifies the value is treated as
      garbage unless a subsequent CAS (or equivalent) validates that no
      conflicting write intervened — the copy-then-claim window copy. The
      checker exempts it from race reporting; [get]/[set] stay checked. *)
end

module type S = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
  module Plain : PLAIN
end

(** The hardware primitives: [Stdlib.Atomic], [Stdlib.Mutex], and a bare
    mutable record field for [Plain]; [make_padded] additionally re-homes
    the atomic in a padded heap block. *)
module Real : sig
  module Atomic : ATOMIC with type 'a t = 'a Stdlib.Atomic.t
  module Mutex : MUTEX with type t = Stdlib.Mutex.t
  module Plain : PLAIN
end
