(** Open-loop load harness and breaking-point finder for {!Mc_pool}.

    Where mc-stress and mc-throughput are closed loops — workers issue the
    next operation as soon as the previous one returns, so the pool can
    never fall behind by construction — the siege drives the pool with an
    {e arrival process}: producer domains draw inter-arrival gaps from a
    Poisson or bursty (on/off Markov) process on the monotonic
    {!Cpool_util.Clock} and hold an absolute schedule, so a slow enqueue
    shows up as lateness and queueing rather than silently thinning the
    offered load. Elements are enqueue timestamps; the consuming side
    prices each element's full sojourn (add to remove, in µs) into a
    per-domain log-scaled {!Cpool_metrics.Histogram}, merged after the
    join — p50/p90/p99/p99.9 without ever storing samples.

    On top of single points sits the saturation search: ramp the offered
    load geometrically from the workload's rate until a point {e breaks}
    (p99 beyond the bound, backlog not draining, adds rejected, generator
    lagging, or nothing completing), then bisect the last-good/first-bad
    bracket in log space. The emitted latency-under-load curve is the
    [BENCH_mcsiege.json] artifact; {!validate_json} checks it structurally
    and {!diff} gates CI against the committed baseline. *)

(** Inter-arrival gap generators, exposed for statistical tests. *)
module Arrival : sig
  type t

  val create :
    Cpool_intf.Workload.arrival -> rate:float -> rng:Cpool_util.Rng.t -> t
  (** [create arrival ~rate ~rng] draws gaps for an average of [rate]
      arrivals/s: exponential gaps for [Poisson]; for [Bursty] an on/off
      Markov process with exponential sojourns of the given mean
      durations, running hotter than [rate] while on (scaled by the
      inverse duty cycle) so the long-run average still meets [rate].
      Raises [Invalid_argument] on [Closed] or a non-positive rate. *)

  val next_gap_ns : t -> int
  (** The next inter-arrival gap in nanoseconds ([>= 1]); bursty gaps
      include any off-window the process slept through. *)
end

type config = {
  pool : Mc_pool.Config.t;
      (** Pool under siege; [segments] is the domain count (one domain per
          segment, producers and consumers assigned by the workload's
          arrangement). *)
  workload : Cpool_intf.Workload.t;
      (** Must be open-loop ([arrival <> Closed]). Its rate is the
          saturation search's starting load; [arrangement] maps domains to
          roles — [Balanced k] spreads [k] producers around the ring,
          [Unbalanced k] packs them into the low slots, [Uniform] makes
          every domain produce and consume. *)
  seed : int;
  p99_bound_us : float;  (** Latency bound of the breaking-point test. *)
  max_rate : float;  (** Upper end of the ramp, arrivals/s. *)
  bisect_steps : int;  (** Bisection refinements after the ramp. *)
}

val default : config
(** 4 domains, linear, {!Cpool_intf.Workload.siege} (Poisson 2000/s, two
    balanced producers, 0.3 s), p99 bound 10 ms, ramp to 1e6/s, 3
    bisections. *)

type point = {
  offered : float;  (** Offered load, arrivals/s across all producers. *)
  duration : float;  (** Measured wall-clock including the drain. *)
  generated : int;  (** Arrivals the producers delivered. *)
  completed : int;  (** Sojourns recorded (drain and prefill included). *)
  rejected : int;  (** Adds bounced by a capacity bound. *)
  backlog : int;  (** Pool size at the deadline instant, pre-drain. *)
  lagged : int;  (** Arrivals delivered more than 5 ms behind schedule. *)
  throughput : float;  (** [completed / duration]. *)
  p50_us : float;  (** Sojourn percentiles, µs; [nan] when nothing completed. *)
  p90_us : float;
  p99_us : float;
  p999_us : float;
  broken : bool;  (** The breaking-point predicate's verdict. *)
}

type outcome = {
  config : config;
  points : point list;  (** The curve, ascending offered load. *)
  saturation_rate : float option;
      (** Lowest offered load that broke; [None] if the pool held to
          [max_rate]. *)
  max_good_rate : float option;
      (** Highest offered load that held; [None] if even the starting
          rate broke. *)
}

val run_point : config -> float -> point
(** [run_point cfg offered] runs one open-loop cell at the given offered
    load (overriding the workload's rate). *)

val run : config -> outcome
(** The saturation search: geometric ramp from the workload's rate (×2
    per step, capped at [max_rate]) until a point breaks, then
    [bisect_steps] geometric bisections of the last-good/first-bad
    bracket. Raises [Invalid_argument] on a closed-loop workload, an
    arrangement without at least one producer and one consumer, a
    starting rate above [max_rate], or a non-positive [p99_bound_us]. *)

val is_broken : config -> point -> bool
(** The breaking-point predicate: no completions despite arrivals,
    rejected adds > 5% of arrivals, deadline backlog > max(64, 20% of
    arrivals), generator lag > 10% of arrivals, or p99 above
    [p99_bound_us]. *)

val cell_label : outcome -> string
(** E.g. ["hinted/4d/mix0.5/init0+poisson:2000/balanced:2"]. *)

val render : outcome list -> string
(** Human-readable latency-under-load tables plus one saturation verdict
    line per cell. *)

val default_max_throughput_drop_pct : float
(** siege-diff threshold written into fresh artifacts (75%). *)

val default_max_p99_inflation_pct : float
(** siege-diff threshold written into fresh artifacts (900%). *)

val to_json : outcome list -> Cpool_util.Json.t
(** The [BENCH_mcsiege.json] document: benchmark tag, the siege-diff
    thresholds, and one cell per outcome (config — with the full
    [topology_config] text when present, so {!config_of_cell_json} can
    reconstruct and rerun the cell — curve points, saturation rates). *)

val validate_json : Cpool_util.Json.t -> (int, string) result
(** Structural check behind [json-check]: benchmark tag, numeric
    thresholds, and per cell — parseable kind/workload/topology, a
    non-empty strictly-increasing curve within [max_rate], numeric point
    counters with [p50 <= p99] whenever the point completed work, a
    boolean [broken] verdict per point, and a [saturation_rate] inside
    the swept range. Returns the cell count. *)

val config_of_cell_json : Cpool_util.Json.t -> (config, string) result
(** Rebuild a runnable {!config} from one artifact cell — the siege-diff
    rerun path. *)

val diff :
  baseline:Cpool_util.Json.t ->
  fresh:Cpool_util.Json.t ->
  (string list, string) result
(** [diff ~baseline ~fresh] validates both documents and compares cells
    pairwise (keyed on kind, workload, domains and topology):
    [Ok regressions] lists every baseline cell missing from the fresh
    run, every cell whose best surviving throughput dropped more than the
    baseline's [max_throughput_drop_pct], and every cell whose p99 at the
    lightest load inflated past [max_p99_inflation_pct] — empty means the
    gate passes. [Error] means a document was malformed. *)
