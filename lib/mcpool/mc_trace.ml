type tag =
  | Add
  | Remove
  | Spill
  | Steal_probe
  | Steal_claim
  | Steal_transfer
  | Sweep
  | Hint_publish
  | Hint_claim
  | Hint_deliver
  | Hint_expire
  | Park
  | Wake
  | Mpsc_push
  | Mpsc_drain
  | Far_probe

let all_tags =
  [
    Add; Remove; Spill; Steal_probe; Steal_claim; Steal_transfer; Sweep;
    Hint_publish; Hint_claim; Hint_deliver; Hint_expire; Park; Wake;
    Mpsc_push; Mpsc_drain; Far_probe;
  ]

let tag_index = function
  | Add -> 0
  | Remove -> 1
  | Spill -> 2
  | Steal_probe -> 3
  | Steal_claim -> 4
  | Steal_transfer -> 5
  | Sweep -> 6
  | Hint_publish -> 7
  | Hint_claim -> 8
  | Hint_deliver -> 9
  | Hint_expire -> 10
  | Park -> 11
  | Wake -> 12
  | Mpsc_push -> 13
  | Mpsc_drain -> 14
  | Far_probe -> 15

let tag_of_index = function
  | 0 -> Add
  | 1 -> Remove
  | 2 -> Spill
  | 3 -> Steal_probe
  | 4 -> Steal_claim
  | 5 -> Steal_transfer
  | 6 -> Sweep
  | 7 -> Hint_publish
  | 8 -> Hint_claim
  | 9 -> Hint_deliver
  | 10 -> Hint_expire
  | 11 -> Park
  | 12 -> Wake
  | 13 -> Mpsc_push
  | 14 -> Mpsc_drain
  | 15 -> Far_probe
  | _ -> invalid_arg "Mc_trace.tag_of_index"

let tag_count = List.length all_tags

let tag_name = function
  | Add -> "add"
  | Remove -> "remove"
  | Spill -> "spill"
  | Steal_probe -> "steal-probe"
  | Steal_claim -> "steal-claim"
  | Steal_transfer -> "steal-transfer"
  | Sweep -> "sweep"
  | Hint_publish -> "hint-publish"
  | Hint_claim -> "hint-claim"
  | Hint_deliver -> "hint-deliver"
  | Hint_expire -> "hint-expire"
  | Park -> "park"
  | Wake -> "wake"
  | Mpsc_push -> "mpsc-push"
  | Mpsc_drain -> "mpsc-drain"
  | Far_probe -> "far-probe"

type t = {
  on : bool;
  dom : int;
  cap : int; (* ring slots, a power of two; 0 only for [disabled] *)
  mask : int;
  ts : int array;
  tg : int array;
  p1 : int array;
  p2 : int array;
  tag_counts : int array; (* drop-proof per-tag totals *)
  tag_arg_totals : int array; (* drop-proof per-tag sums of a2 *)
  mutable head : int; (* records ever written; slot = head land mask *)
}

let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

let create ?(capacity = 8192) ~domain () =
  if capacity <= 0 then invalid_arg "Mc_trace.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  (* Padded like Mc_stats: a tracer's hot stores must not false-share with
     its neighbour domain's. *)
  Cpool_util.Pad.copy_as_padded
    {
      on = true;
      dom = domain;
      cap;
      mask = cap - 1;
      ts = Array.make cap 0;
      tg = Array.make cap 0;
      p1 = Array.make cap 0;
      p2 = Array.make cap 0;
      tag_counts = Array.make tag_count 0;
      tag_arg_totals = Array.make tag_count 0;
      head = 0;
    }

let disabled =
  {
    on = false;
    dom = -1;
    cap = 0;
    mask = 0;
    ts = [||];
    tg = [||];
    p1 = [||];
    p2 = [||];
    tag_counts = Array.make tag_count 0;
    tag_arg_totals = Array.make tag_count 0;
    head = 0;
  }

let enabled t = t.on

let domain t = t.dom

let capacity t = t.cap

let record t tag ~a1 ~a2 =
  if t.on then begin
    let i = t.head land t.mask in
    t.ts.(i) <- Cpool_util.Clock.now_ns ();
    let k = tag_index tag in
    t.tg.(i) <- k;
    t.p1.(i) <- a1;
    t.p2.(i) <- a2;
    t.tag_counts.(k) <- t.tag_counts.(k) + 1;
    t.tag_arg_totals.(k) <- t.tag_arg_totals.(k) + a2;
    t.head <- t.head + 1
  end

let recorded t = t.head

let dropped t = max 0 (t.head - t.cap)

let count t tag = t.tag_counts.(tag_index tag)

let arg_total t tag = t.tag_arg_totals.(tag_index tag)

type event = { ts_ns : int; ev_domain : int; tag : tag; a1 : int; a2 : int }

let events t =
  let n = min t.head t.cap in
  List.init n (fun k ->
      let i = (t.head - n + k) land t.mask in
      {
        ts_ns = t.ts.(i);
        ev_domain = t.dom;
        tag = tag_of_index t.tg.(i);
        a1 = t.p1.(i);
        a2 = t.p2.(i);
      })

let merge tracers =
  let all = List.concat_map events tracers in
  List.stable_sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with
      | 0 -> compare a.ev_domain b.ev_domain
      | c -> c)
    all

let counts tracers =
  List.map
    (fun tag -> (tag, List.fold_left (fun acc t -> acc + count t tag) 0 tracers))
    all_tags

let arg_totals tracers =
  List.map
    (fun tag -> (tag, List.fold_left (fun acc t -> acc + arg_total t tag) 0 tracers))
    all_tags

let total_recorded tracers = List.fold_left (fun acc t -> acc + recorded t) 0 tracers

let total_dropped tracers = List.fold_left (fun acc t -> acc + dropped t) 0 tracers

(* ---- exporters --------------------------------------------------------- *)

module J = Cpool_util.Json

(* A size observation: which segment's occupancy did this event see? *)
let observed_size e =
  match e.tag with
  | Add | Remove | Spill | Steal_probe -> Some (e.a1, e.a2)
  | Steal_claim | Steal_transfer | Sweep | Hint_publish | Hint_claim
  | Hint_deliver | Hint_expire | Park | Wake | Mpsc_push | Mpsc_drain
  | Far_probe ->
    None

let chrome_us ~t0 e = float_of_int (e.ts_ns - t0) /. 1e3

let chrome_instant ~pid ~t0 e =
  J.Assoc
    [
      ("name", J.Str (tag_name e.tag));
      ("cat", J.Str "mcpool");
      ("ph", J.Str "i");
      ("s", J.Str "t");
      ("ts", J.Float (chrome_us ~t0 e));
      ("pid", J.Int pid);
      ("tid", J.Int e.ev_domain);
      ("args", J.Assoc [ ("a1", J.Int e.a1); ("a2", J.Int e.a2) ]);
    ]

let chrome_counter ~pid ~t0 e ~seg ~size =
  J.Assoc
    [
      ("name", J.Str (Printf.sprintf "seg%d size" seg));
      ("cat", J.Str "mcpool");
      ("ph", J.Str "C");
      ("ts", J.Float (chrome_us ~t0 e));
      ("pid", J.Int pid);
      ("tid", J.Int e.ev_domain);
      ("args", J.Assoc [ ("size", J.Int size) ]);
    ]

let process_name ~pid label =
  J.Assoc
    [
      ("name", J.Str "process_name");
      ("cat", J.Str "__metadata");
      ("ph", J.Str "M");
      ("ts", J.Float 0.0);
      ("pid", J.Int pid);
      ("tid", J.Int 0);
      ("args", J.Assoc [ ("name", J.Str label) ]);
    ]

let chrome_doc groups =
  let merged = List.map (fun (pid, label, tracers) -> (pid, label, merge tracers)) groups in
  let t0 =
    List.fold_left
      (fun acc (_, _, events) ->
        List.fold_left (fun acc e -> min acc e.ts_ns) acc events)
      max_int merged
  in
  let events =
    List.concat_map
      (fun (pid, label, events) ->
        let meta = match label with None -> [] | Some l -> [ process_name ~pid l ] in
        meta
        @ List.concat_map
            (fun e ->
              let instant = chrome_instant ~pid ~t0 e in
              match observed_size e with
              | Some (seg, size) -> [ instant; chrome_counter ~pid ~t0 e ~seg ~size ]
              | None -> [ instant ])
            events)
      merged
  in
  J.Assoc [ ("traceEvents", J.List events); ("displayTimeUnit", J.Str "ns") ]

let to_chrome_groups groups =
  chrome_doc (List.map (fun (pid, tracers) -> (pid, None, tracers)) groups)

let to_chrome_labeled groups =
  chrome_doc (List.mapi (fun i (label, tracers) -> (i + 1, Some label, tracers)) groups)

let to_chrome ?(pid = 1) tracers = to_chrome_groups [ (pid, tracers) ]

let validate_chrome doc =
  let ( let* ) = Result.bind in
  let* events =
    match J.member "traceEvents" doc with
    | Some (J.List es) -> Ok es
    | Some _ -> Error "field \"traceEvents\" is not a list"
    | None -> Error "missing field \"traceEvents\""
  in
  let str_field i ev name =
    match J.member name ev with
    | Some (J.Str _) -> Ok ()
    | Some _ | None ->
      Error (Printf.sprintf "event %d: missing string field %S" i name)
  in
  let num_field i ev name =
    match J.member name ev with
    | Some v -> (
      match J.to_number v with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "event %d: field %S is not a number" i name))
    | None -> Error (Printf.sprintf "event %d: missing numeric field %S" i name)
  in
  let rec check i = function
    | [] -> Ok (List.length events)
    | ev :: rest ->
      let* () = str_field i ev "name" in
      let* () = str_field i ev "ph" in
      let* () = num_field i ev "ts" in
      let* () = num_field i ev "pid" in
      let* () = num_field i ev "tid" in
      check (i + 1) rest
  in
  check 0 events

let size_series ~segments tracers =
  let trace = Cpool_metrics.Trace.create ~segments in
  let merged = merge tracers in
  let t0 = match merged with [] -> 0 | e :: _ -> e.ts_ns in
  List.iter
    (fun e ->
      match observed_size e with
      | Some (seg, size) ->
        Cpool_metrics.Trace.record trace
          ~time:(float_of_int (e.ts_ns - t0) *. 1e-9)
          ~seg ~size
      | None -> ())
    merged;
  trace
