(* The shared algorithm type: one [kind] for the simulated and the real
   pool, re-exported so [Mc_pool.Linear] etc. keep compiling. *)
type kind = Cpool_intf.kind = Linear | Random | Tree | Hinted

let kind_to_string = Cpool_intf.to_string

let kind_of_string = Cpool_intf.of_string

let all_kinds = Cpool_intf.all

type tree = {
  leaves : int;
  rounds : int Atomic.t array; (* heap layout, as in the simulated pool *)
  node_locks : Mutex.t array; (* internal nodes; protect children's counters *)
}

(* Everything derived from the shared locality model at [create] time, so
   the hot path only does array reads. Segment [i] is homed on topology
   node [i]; [aware = false] is the distance-oblivious twin, which pays the
   same emulated latencies but keeps the distance-blind probe orders — the
   bench baseline that isolates the ordering policy from the machine. *)
type topo_info = {
  topology : Cpool_topology.t;
  aware : bool;
  far : bool array array; (* slot -> seg -> outside the slot's group *)
  delay_ns : int array array; (* slot -> seg -> emulated ns per remote access *)
  order : int array array; (* slot -> probe order (near-first when aware) *)
  near_len : int array; (* slot -> length of order's within-group prefix *)
  spans : (int * int) list array; (* slot -> shuffleable equal-distance runs *)
  seg_of_leaf : int array; (* aware Tree: leaf position -> segment, -1 pad *)
  leaf_of_seg : int array; (* aware Tree: segment -> leaf position *)
}

type 'a t = {
  pool_kind : kind;
  bound : int option;
  segs : 'a Mc_segment.t array;
  registration : Mutex.t;
  claimed : bool array;
  mutable handle_stats : Mc_stats.t list; (* every handle ever claimed; under [registration] *)
  mutable handle_traces : Mc_trace.t list; (* ditto, when tracing is on *)
  searching : int Atomic.t;
  registered : int Atomic.t;
  steal_count : int Atomic.t;
  seed : int64;
  tree : tree option;
  hints : Mc_hints.t option; (* the Hinted kind's claimable hint board *)
  topo : topo_info option;
  trace_on : bool;
  trace_capacity : int;
}

type handle = {
  pool_slot : int;
  rng : Cpool_util.Rng.t;
  stats : Mc_stats.t;
  tracer : Mc_trace.t; (* [Mc_trace.disabled] unless the pool traces *)
  mutable hunt_probes : int; (* segments examined since the current hunt began *)
  mutable active : bool;
  mutable last_found : int;
  mutable last_leaf : int;
  mutable my_round : int;
  mutable started : bool;
  mutable pass_tick : int; (* aware search passes so far; drives escalation *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

(* Busy-wait for [ns] nanoseconds: the emulated latency of a remote access
   on the synthetic topology (real NUMA stalls the core too, it does not
   yield). A plain loop on the monotonic clock, never called under a lock. *)
let spin_ns ns =
  if ns > 0 then begin
    let deadline = Cpool_util.Clock.now_ns () + ns in
    while Cpool_util.Clock.now_ns () < deadline do
      Domain.cpu_relax ()
    done
  end

let make_topo_info ~segments ~tree ~aware topology =
  if Cpool_topology.nodes topology <> segments then
    invalid_arg
      (Printf.sprintf
         "Mc_pool.of_config: topology describes %d nodes but the pool has %d \
          segments"
         (Cpool_topology.nodes topology) segments);
  let order =
    Array.init segments (fun s ->
        if aware then Cpool_topology.near_first_order topology ~from:s
        else Array.init segments (fun i -> (s + i) mod segments))
  in
  let spans =
    Array.init segments (fun s ->
        if aware then Cpool_topology.distance_spans topology ~from:s order.(s)
        else [])
  in
  let far =
    Array.init segments (fun i ->
        Array.init segments (fun j -> not (Cpool_topology.near topology i j)))
  in
  let near_len =
    (* The near-first order puts the slot's whole group (own slot included)
       in a prefix; its length is where near-only passes stop probing. *)
    Array.init segments (fun s ->
        Array.fold_left (fun n j -> if far.(s).(j) then n else n + 1) 0 order.(s))
  in
  let unit_ns = float_of_int (Cpool_topology.unit_ns topology) in
  let delay_ns =
    Array.init segments (fun i ->
        Array.init segments (fun j ->
            let d = Cpool_topology.distance topology ~from:i ~to_:j in
            int_of_float (Float.round ((d -. 1.0) *. unit_ns))))
  in
  let seg_of_leaf, leaf_of_seg =
    match tree with
    | Some tr when aware ->
      (* Cluster each locality group on a contiguous leaf range so the
         Manber subtrees coincide with sockets: a searcher exhausts its
         own group's subtree before the round structure walks it across. *)
      let placement = Cpool_topology.group_major_order topology in
      let sol = Array.make tr.leaves (-1) in
      Array.iteri (fun pos s -> sol.(pos) <- s) placement;
      let los = Array.make segments 0 in
      Array.iteri (fun pos s -> if s >= 0 then los.(s) <- pos) sol;
      (sol, los)
    | _ -> ([||], [||])
  in
  { topology; aware; far; delay_ns; order; near_len; spans; seg_of_leaf; leaf_of_seg }

module Config = struct
  type t = {
    segments : int;
    kind : kind;
    seed : int64;
    capacity : int option;
    fast_path : bool;
    trace : bool;
    trace_capacity : int;
    topology : Cpool_topology.t option;
    topology_aware : bool;
  }

  let default =
    {
      segments = 1;
      kind = Linear;
      seed = 42L;
      capacity = None;
      fast_path = true;
      trace = false;
      trace_capacity = 8192;
      topology = None;
      topology_aware = true;
    }
end

let of_config (c : Config.t) =
  let { Config.segments; kind; seed; capacity; fast_path; trace; trace_capacity;
        topology; topology_aware } = c in
  if segments <= 0 then
    invalid_arg "Mc_pool.of_config: segments must be positive";
  (match capacity with
  | Some c when c <= 0 ->
    invalid_arg "Mc_pool.of_config: capacity must be positive"
  | Some _ | None -> ());
  if trace_capacity <= 0 then
    invalid_arg "Mc_pool.of_config: trace_capacity must be positive";
  let tree =
    match kind with
    | Tree ->
      let leaves = next_pow2 segments 1 in
      Some
        {
          leaves;
          rounds = Array.init ((2 * leaves) - 1) (fun _ -> Atomic.make 0);
          node_locks = Array.init (max 0 (leaves - 1)) (fun _ -> Mutex.create ());
        }
    | Linear | Random | Hinted -> None
  in
  let hints =
    match kind with
    | Hinted -> Some (Mc_hints.create ~slots:segments ())
    | Linear | Random | Tree -> None
  in
  let topo =
    Option.map (make_topo_info ~segments ~tree ~aware:topology_aware) topology
  in
  {
    pool_kind = kind;
    bound = capacity;
    segs = Array.init segments (fun id -> Mc_segment.make ?capacity ~fast_path ~id ());
    registration = Mutex.create ();
    claimed = Array.make segments false;
    handle_stats = [];
    handle_traces = [];
    searching = Atomic.make 0;
    registered = Atomic.make 0;
    steal_count = Atomic.make 0;
    seed;
    tree;
    hints;
    topo;
    trace_on = trace;
    trace_capacity;
  }

let create ?(kind = Linear) ?(seed = 42L) ?capacity ?(fast_path = true)
    ?(trace = false) ?(trace_capacity = 8192) ?topology
    ?(topology_aware = true) ~segments () =
  of_config
    {
      Config.segments;
      kind;
      seed;
      capacity;
      fast_path;
      trace;
      trace_capacity;
      topology;
      topology_aware;
    }

let segments t = Array.length t.segs

let kind t = t.pool_kind

let topology t = Option.map (fun ti -> ti.topology) t.topo

let topology_aware t = match t.topo with Some ti -> ti.aware | None -> false

(* Leaf-position <-> segment translation for the Tree walk. Identity unless
   the pool is topology-aware (then leaves follow the group-major
   placement); [h.last_leaf] always holds a leaf {e position}. *)
let leaf_pos t s =
  match t.topo with
  | Some ti when Array.length ti.leaf_of_seg > 0 -> ti.leaf_of_seg.(s)
  | _ -> s

let leaf_seg t p j =
  match t.topo with
  | Some ti when Array.length ti.seg_of_leaf > 0 -> ti.seg_of_leaf.(j)
  | _ -> if j < p then j else -1

let shuffle_span rng a off len =
  for i = len - 1 downto 1 do
    let j = Cpool_util.Rng.int rng (i + 1) in
    let tmp = a.(off + i) in
    a.(off + i) <- a.(off + j);
    a.(off + j) <- tmp
  done

let mk_handle t slot =
  {
    pool_slot = slot;
    rng = Cpool_util.Rng.create (Int64.add t.seed (Int64.of_int slot));
    stats = Mc_stats.create ();
    tracer =
      (if t.trace_on then Mc_trace.create ~capacity:t.trace_capacity ~domain:slot ()
       else Mc_trace.disabled);
    hunt_probes = 0;
    active = true;
    last_found = slot;
    last_leaf = leaf_pos t slot;
    my_round = 1;
    started = false;
    pass_tick = 0;
  }

let probe_order t ~slot =
  let p = Array.length t.segs in
  if slot < 0 || slot >= p then invalid_arg "Mc_pool.probe_order: slot out of range";
  match (t.pool_kind, t.topo) with
  | Tree, Some ti when ti.aware && Array.length ti.seg_of_leaf > 0 ->
    let out = Array.make p 0 in
    let k = ref 0 in
    Array.iter
      (fun s ->
        if s >= 0 then begin
          out.(!k) <- s;
          incr k
        end)
      ti.seg_of_leaf;
    out
  | Random, Some ti when ti.aware ->
    (* A representative draw: the same span shuffle a searcher on [slot]
       performs, seeded like its handle rng. *)
    let base = Array.copy ti.order.(slot) in
    let rng = Cpool_util.Rng.create (Int64.add t.seed (Int64.of_int slot)) in
    List.iter (fun (off, len) -> shuffle_span rng base off len) ti.spans.(slot);
    base
  | _, Some ti -> Array.copy ti.order.(slot)
  | _, None -> Array.init p (fun i -> (slot + i) mod p)

(* The one place the registration mutex is taken: every caller goes through
   here so the lock is released even when the body raises (slot scans and
   range checks do). *)
let with_registration t f =
  Mutex.lock t.registration;
  match f () with
  | v ->
    Mutex.unlock t.registration;
    v
  | exception e ->
    Mutex.unlock t.registration;
    raise e

let claim t pick =
  let h =
    with_registration t (fun () ->
        let slot = pick () in
        t.claimed.(slot) <- true;
        let h = mk_handle t slot in
        t.handle_stats <- h.stats :: t.handle_stats;
        if t.trace_on then t.handle_traces <- h.tracer :: t.handle_traces;
        h)
  in
  Atomic.incr t.registered;
  h

let register t =
  claim t (fun () ->
      let rec scan i =
        if i = Array.length t.claimed then failwith "Mc_pool.register: all slots claimed"
        else if not t.claimed.(i) then i
        else scan (i + 1)
      in
      scan 0)

let register_at t i =
  claim t (fun () ->
      if i < 0 || i >= Array.length t.claimed then
        invalid_arg "Mc_pool.register_at: slot out of range";
      if t.claimed.(i) then invalid_arg "Mc_pool.register_at: slot already claimed";
      i)

let slot h = h.pool_slot

let deregister t h =
  with_registration t (fun () ->
      if not h.active then
        invalid_arg "Mc_pool.deregister: handle already deregistered";
      h.active <- false;
      (* Release the slot, or register/deregister churn leaks slots until
         every registration fails with "all slots claimed". *)
      t.claimed.(h.pool_slot) <- false);
  Atomic.decr t.registered

let claimed_count t =
  with_registration t (fun () ->
      Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.claimed)

let registered t = Atomic.get t.registered

(* The Hinted hand-off's add side: claim a parked searcher and deposit
   straight into its segment's spill inbox, skipping our own segment. The
   cheap [waiters] read keeps the non-parked common case at one load; a
   claim against a full bounded segment aborts the delivery (the claim is
   still consumed — the searcher re-publishes on its next backoff round)
   and falls through to the normal add path. *)
let try_deliver t h x =
  match t.hints with
  | None -> false
  | Some board ->
    let order =
      (* Near-first claim order: a topology-aware adder hands off to a
         parked searcher in its own group before waking a far one. *)
      match t.topo with
      | Some ti when ti.aware -> Some ti.order.(h.pool_slot)
      | _ -> None
    in
    Mc_hints.waiters board > 0
    && (match Mc_hints.try_claim ?order board ~from:h.pool_slot with
       | None -> false
       | Some w ->
         Mc_stats.note_hint_claimed h.stats;
         Mc_trace.record h.tracer Mc_trace.Hint_claim ~a1:w ~a2:0;
         (match t.topo with
         | Some ti -> spin_ns ti.delay_ns.(h.pool_slot).(w)
         | None -> ());
         let delivered = Mc_segment.spill_add t.segs.(w) x in
         Mc_hints.release board w;
         if delivered then begin
           Mc_stats.note_hint_delivered h.stats;
           Mc_stats.note_spill h.stats;
           if Mc_trace.enabled h.tracer then begin
             Mc_trace.record h.tracer Mc_trace.Hint_deliver ~a1:w ~a2:0;
             Mc_trace.record h.tracer Mc_trace.Mpsc_push ~a1:w ~a2:0;
             Mc_trace.record h.tracer Mc_trace.Spill ~a1:w
               ~a2:(Mc_segment.size t.segs.(w))
           end
         end;
         delivered)

let try_add t h x =
  if try_deliver t h x then true
  else
  match t.bound with
  | None ->
    Mc_segment.add t.segs.(h.pool_slot) x;
    Mc_stats.note_add h.stats;
    if Mc_trace.enabled h.tracer then
      Mc_trace.record h.tracer Mc_trace.Add ~a1:h.pool_slot
        ~a2:(Mc_segment.size t.segs.(h.pool_slot));
    true
  | Some _ ->
    if Mc_segment.try_add t.segs.(h.pool_slot) x then begin
      Mc_stats.note_add h.stats;
      if Mc_trace.enabled h.tracer then
        Mc_trace.record h.tracer Mc_trace.Add ~a1:h.pool_slot
          ~a2:(Mc_segment.size t.segs.(h.pool_slot));
      true
    end
    else begin
      (* Spill around the ring to the first segment with room. *)
      let p = Array.length t.segs in
      let rec spill i =
        if i = p then begin
          Mc_stats.note_add_fail h.stats;
          false
        end
        else begin
          (* Foreign segments take spill traffic through their inbox
             ([spill_add]); only the owning domain may touch a ring. *)
          let pos =
            match t.topo with
            | Some ti when ti.aware -> ti.order.(h.pool_slot).(i)
            | _ -> (h.pool_slot + i) mod p
          in
          if Mc_segment.spare t.segs.(pos) > 0 && Mc_segment.spill_add t.segs.(pos) x
          then begin
            (match t.topo with
            | Some ti -> spin_ns ti.delay_ns.(h.pool_slot).(pos)
            | None -> ());
            Mc_stats.note_spill h.stats;
            if Mc_trace.enabled h.tracer then begin
              Mc_trace.record h.tracer Mc_trace.Mpsc_push ~a1:pos ~a2:0;
              Mc_trace.record h.tracer Mc_trace.Spill ~a1:pos
                ~a2:(Mc_segment.size t.segs.(pos))
            end;
            true
          end
          else spill (i + 1)
        end
      in
      spill 1
    end

let add t h x = if not (try_add t h x) then failwith "Mc_pool.add: pool is full"

let try_remove_local t h =
  let seg = t.segs.(h.pool_slot) in
  let traced = Mc_trace.enabled h.tracer in
  (* The drain counters are owner-written plain fields and this handle IS
     the owner, so the before/after delta is exact, not racy: it detects
     whether this pop folded the spill inbox into the ring. *)
  let sstats = Mc_segment.stats seg in
  let drains0 = if traced then Mc_stats.inbox_drains sstats else 0 in
  let drained0 = if traced then Mc_stats.inbox_drained sstats else 0 in
  let r = Mc_segment.try_remove seg in
  if traced && Mc_stats.inbox_drains sstats > drains0 then
    Mc_trace.record h.tracer Mc_trace.Mpsc_drain ~a1:h.pool_slot
      ~a2:(Mc_stats.inbox_drained sstats - drained0);
  match r with
  | Some x ->
    Mc_stats.note_local_remove h.stats;
    if traced then
      Mc_trace.record h.tracer Mc_trace.Remove ~a1:h.pool_slot
        ~a2:(Mc_segment.size seg);
    Some x
  | None -> None

let record_steal t h pos ~elements =
  Atomic.incr t.steal_count;
  h.last_found <- pos;
  h.last_leaf <- leaf_pos t pos;
  Mc_stats.note_steal h.stats ~probes:h.hunt_probes ~elements;
  (* The transfer-size sample lives on the thief's handle (single writer);
     the victim segment cannot record it without a serialization point. *)
  Mc_stats.note_steal_batch h.stats elements;
  (match t.topo with
  | None -> ()
  | Some ti ->
    Mc_stats.note_steal_locality h.stats ~far:ti.far.(h.pool_slot).(pos)
      ~elements;
    (* Moving [elements] elements out of a remote segment is [elements]
       remote accesses on the synthetic machine. *)
    spin_ns (ti.delay_ns.(h.pool_slot).(pos) * elements));
  Mc_trace.record h.tracer Mc_trace.Steal_claim ~a1:pos ~a2:elements;
  h.hunt_probes <- 0

(* Examine segment [pos]; on success bank the steal's remainder into our own
   segment and return the element. On a bounded pool the room is reserved
   before the steal, so the bank always fits and no segment ever exceeds its
   capacity — the seed version sized the take from an unlocked [spare] read
   and then deposited unconditionally, so two racing thieves (or a thief
   racing spill-adds) could overfill a segment. *)
let attempt_steal t h pos =
  let victim = t.segs.(pos) in
  h.hunt_probes <- h.hunt_probes + 1;
  Mc_stats.note_probe h.stats;
  (match t.topo with
  | None -> ()
  | Some ti ->
    (* Probing a remote segment pays the emulated latency before the size
       read lands, aware or not — the topology is the machine, the probe
       order is the policy. *)
    let far = ti.far.(h.pool_slot).(pos) in
    Mc_stats.note_probe_locality h.stats ~far;
    let d = ti.delay_ns.(h.pool_slot).(pos) in
    if far then Mc_trace.record h.tracer Mc_trace.Far_probe ~a1:pos ~a2:d;
    spin_ns d);
  let vsize = Mc_segment.size victim in
  Mc_trace.record h.tracer Mc_trace.Steal_probe ~a1:pos ~a2:vsize;
  if vsize = 0 then None
  else
    match t.bound with
    | None -> (
      match Mc_segment.steal_half victim with
      | Cpool.Steal.Nothing -> None
      | Cpool.Steal.Single x ->
        record_steal t h pos ~elements:1;
        Some x
      | Cpool.Steal.Batch (x, rest) ->
        (match Mc_segment.deposit t.segs.(h.pool_slot) rest with
        | [] -> ()
        | _ :: _ -> assert false (* unbounded deposit never rejects *));
        let banked = List.length rest in
        Mc_trace.record h.tracer Mc_trace.Steal_transfer ~a1:h.pool_slot ~a2:banked;
        record_steal t h pos ~elements:(1 + banked);
        Some x)
    | Some _ ->
      let own = t.segs.(h.pool_slot) in
      let want = (Mc_segment.size victim + 1) / 2 in
      let reserved = Mc_segment.reserve own (max 0 (want - 1)) in
      (match Mc_segment.steal_half ~max_take:(reserved + 1) victim with
      | Cpool.Steal.Nothing ->
        Mc_segment.refill own ~reserved [];
        None
      | Cpool.Steal.Single x ->
        Mc_segment.refill own ~reserved [];
        record_steal t h pos ~elements:1;
        Some x
      | Cpool.Steal.Batch (x, rest) ->
        Mc_segment.refill own ~reserved rest;
        let banked = List.length rest in
        Mc_trace.record h.tracer Mc_trace.Steal_transfer ~a1:h.pool_slot ~a2:banked;
        record_steal t h pos ~elements:(1 + banked);
        Some x)

(* One full deterministic pass over every segment; the confirmation step
   before reporting the pool empty. *)
let sweep t h =
  Mc_stats.note_sweep h.stats;
  Mc_trace.record h.tracer Mc_trace.Sweep ~a1:h.pool_slot ~a2:0;
  let p = Array.length t.segs in
  let seg_at =
    (* Aware sweeps also go near-first: both orders start at the sweeper's
       own slot, so the empty-confirmation coverage is identical. *)
    match t.topo with
    | Some ti when ti.aware -> fun i -> ti.order.(h.pool_slot).(i)
    | _ -> fun i -> (h.pool_slot + i) mod p
  in
  let rec go i =
    if i = p then None
    else
      match attempt_steal t h (seg_at i) with
      | Some x -> Some x
      | None -> go (i + 1)
  in
  go 0

let with_node_lock tree v f =
  Mutex.lock tree.node_locks.(v);
  match f () with
  | r ->
    Mutex.unlock tree.node_locks.(v);
    r
  | exception e ->
    Mutex.unlock tree.node_locks.(v);
    raise e

(* Reluctant escalation: most aware search passes stay inside the
   searcher's locality group (the near prefix of its probe order) and only
   every [escalate_every]-th pass crosses the group boundary. Failed far
   probes are the dominant cost of a starved NUMA pool — every one stalls
   the core for the emulated remote latency — and a near-only pass can
   never conclude emptiness anyway: that is [sweep]'s job, and sweeps
   always cover every segment, so quiescence detection is unaffected. An
   element parked in a far segment is found at most [escalate_every - 1]
   passes late. *)
let escalate_every = 4

let pass_limit h ti =
  let tick = h.pass_tick in
  h.pass_tick <- tick + 1;
  if tick mod escalate_every = 0 then Array.length ti.order.(h.pool_slot)
  else ti.near_len.(h.pool_slot)

(* One algorithm-specific search pass; None does not mean empty, only that
   this pass failed. *)
let rec search_pass t h =
  let p = Array.length t.segs in
  let aware = match t.topo with Some ti -> ti.aware | None -> false in
  match t.pool_kind with
  | (Linear | Hinted) when aware ->
    (* Near-first scan: own slot, then ascending distance. The aware order
       replaces the last-found restart — locality beats the temporal hint
       on a machine where far probes cost real latency. *)
    let ti = Option.get t.topo in
    let ord = ti.order.(h.pool_slot) in
    let limit = pass_limit h ti in
    let rec go i =
      if i = limit then None
      else
        match attempt_steal t h ord.(i) with
        | Some x -> Some x
        | None -> go (i + 1)
    in
    go 0
  | Linear | Hinted ->
    (* Hinted is linear search plus the hint board; the pass itself is the
       same ring scan. *)
    let rec ring i =
      if i = p then None
      else
        match attempt_steal t h ((h.last_found + i) mod p) with
        | Some x -> Some x
        | None -> ring (i + 1)
    in
    ring 0
  | Random when aware ->
    (* Still randomized, but only within each distance bucket: every full
       pass probes a permutation of all segments, near buckets before far
       (near-only passes stop at the group boundary). *)
    let ti = Option.get t.topo in
    let ord = Array.copy ti.order.(h.pool_slot) in
    List.iter
      (fun (off, len) -> shuffle_span h.rng ord off len)
      ti.spans.(h.pool_slot);
    let limit = pass_limit h ti in
    let rec go i =
      if i = limit then None
      else
        match attempt_steal t h ord.(i) with
        | Some x -> Some x
        | None -> go (i + 1)
    in
    go 0
  | Random ->
    let rec probe i =
      if i = p then None
      else
        match attempt_steal t h (Cpool_util.Rng.int h.rng p) with
        | Some x -> Some x
        | None -> probe (i + 1)
    in
    probe 0
  | Tree when aware -> (
    let ti = Option.get t.topo in
    let limit = pass_limit h ti in
    if limit < p then begin
      (* Near-only pass: under the group-major leaf placement the
         searcher's subtree is exactly its locality group, so a
         within-group pass is the near prefix scan; the round protocol
         only matters for whole-tree emptiness claims, which near passes
         never make. *)
      let ord = ti.order.(h.pool_slot) in
      let rec go i =
        if i = limit then None
        else
          match attempt_steal t h ord.(i) with
          | Some x -> Some x
          | None -> go (i + 1)
      in
      go 0
    end
    else tree_pass t h)
  | Tree -> tree_pass t h

(* Manber's walk, one round: returns when an element is found or when this
   process concludes the whole tree is empty for its round. *)
and tree_pass t h =
  let tree = match t.tree with Some tree -> tree | None -> assert false in
  let p = Array.length t.segs in
  let leaf_index j = tree.leaves - 1 + j in
  let span i =
    let rec depth i acc = if i = 0 then acc else depth ((i - 1) / 2) (acc + 1) in
    tree.leaves lsr depth i 0
  in
  let rec visit_leaf j =
    (* [j] is a leaf position; the segment living there follows the
       group-major placement when the pool is topology-aware (identity
       otherwise), so each subtree covers one locality group. *)
    h.last_leaf <- j;
    let s = leaf_seg t p j in
    match if s >= 0 then attempt_steal t h s else None with
    | Some x -> Some x
    | None ->
      if tree.leaves = 1 then begin
        h.my_round <- h.my_round + 1;
        None
      end
      else ascend ((leaf_index j - 1) / 2) (leaf_index j)
  and ascend v child =
    let left = (2 * v) + 1 and right = (2 * v) + 2 in
    (* Decide under the node lock, recurse after releasing it — the same
       lock scope as the hand-over-hand original, but exception-safe. *)
    let decision =
      with_node_lock tree v (fun () ->
          let left_round = Atomic.get tree.rounds.(left) in
          let right_round = Atomic.get tree.rounds.(right) in
          let newest = max left_round right_round in
          if newest > h.my_round then `Restart newest
          else begin
            Atomic.set tree.rounds.(child) h.my_round;
            `Sibling (if child = left then right_round else left_round)
          end)
    in
    match decision with
    | `Restart newest ->
      h.my_round <- newest;
      visit_leaf (leaf_pos t h.pool_slot)
    | `Sibling sibling_round ->
      if sibling_round = h.my_round then
        if v = 0 then begin
          (* Whole tree empty this round: the pass ends. *)
          h.my_round <- h.my_round + 1;
          None
        end
        else ascend ((v - 1) / 2) v
      else visit_leaf (h.last_leaf lxor span child)
  in
  let start =
    if h.started then h.last_leaf
    else begin
      h.started <- true;
      leaf_pos t h.pool_slot
    end
  in
  visit_leaf start

let try_remove t h =
  h.hunt_probes <- 0;
  match try_remove_local t h with
  | Some x -> Some x
  | None -> (
    match search_pass t h with
    | Some x -> Some x
    | None -> sweep t h)

(* Idle-searcher backoff, shared by the plain and hinted hunts: spin this
   many iterations before escalating to sleep slices of this length. *)
let park_spin_iters = 256

let park_sleep_s = 5e-5

let plain_hunt t h =
  let rec hunt waited =
    match search_pass t h with
    | Some x -> Some x
    | None ->
      if Atomic.get t.searching >= Atomic.get t.registered then begin
        (* Everyone is searching: a clean sweep proves the pool empty. *)
        match sweep t h with
        | Some x -> Some x
        | None ->
          Mc_stats.note_empty_confirm h.stats;
          None
      end
      else begin
        Mc_stats.note_spin h.stats;
        (* Same escalation as the hinted parking discipline below: spin
           briefly (work from a truly parallel adder lands within the
           window), then sleep between search passes. The sleep matters
           beyond politeness — a domain blocked in [sleepf] sits in a
           blocking section, so it neither burns the producer's timeslice
           on an oversubscribed machine nor forces its scheduling into
           every stop-the-world GC barrier. *)
        if waited < park_spin_iters then Domain.cpu_relax ()
        else Unix.sleepf park_sleep_s;
        hunt (waited + 1)
      end
  in
  hunt 0

(* Parking discipline for the Hinted hunt. A parked searcher spins briefly
   (a hand-off from a truly parallel adder lands within the spin window)
   and then sleeps between polls: when domains are oversubscribed the sleep
   is what actually hands the timeslice to the adder that will wake us. The
   publish budget doubles, up to a cap, each time it expires with nothing
   seen — exponential backoff between sweep rounds, so the loosely-coupled
   regime re-sweeps at a geometric cadence instead of spinning. *)
let park_budget_base = 64

let park_budget_cap = 4096

let hinted_hunt t h board =
  let me = h.pool_slot in
  let rec round budget =
    match search_pass t h with
    | Some x -> Some x
    | None ->
      if Atomic.get t.searching >= Atomic.get t.registered then quiesce_unparked ()
      else begin
        Mc_hints.publish board me;
        Mc_stats.note_hint_published h.stats;
        if Mc_trace.enabled h.tracer then begin
          Mc_trace.record h.tracer Mc_trace.Hint_publish ~a1:me ~a2:0;
          Mc_trace.record h.tracer Mc_trace.Park ~a1:me ~a2:budget
        end;
        park budget 0
      end
  (* Parked: our hint is on the board. Leave only through a retract (or,
     when the retract CAS loses to a claim, through the claiming adder's
     release) so the slot is always Free again before this hunt returns. *)
  and park budget waited =
    if not (Mc_hints.is_published board me) then claimed_wake budget 0
    else if Mc_segment.size t.segs.(me) > 0 then unpark budget
    else if Atomic.get t.searching >= Atomic.get t.registered then quiesce_parked budget
    else if waited >= budget then expire budget
    else begin
      Mc_stats.note_spin h.stats;
      if waited < park_spin_iters then Domain.cpu_relax () else Unix.sleepf park_sleep_s;
      park budget (waited + 1)
    end
  and unpark budget =
    (* Work arrived in our own segment (a plain spill, or a delivery racing
       ahead of our poll): take the hint down first. *)
    match Mc_hints.retract board me with
    | Mc_hints.Retracted ->
      Mc_stats.note_hint_expired h.stats;
      Mc_trace.record h.tracer Mc_trace.Hint_expire ~a1:me ~a2:0;
      take_local_or_resweep ()
    | Mc_hints.Claim_pending -> claimed_wake budget 0
  and claimed_wake budget waited =
    (* An adder's claim beat our retract: its delivery attempt finishes in
       a bounded number of its own steps, marked by the slot's release. *)
    if Mc_hints.is_free board me then take_local_or_resweep ()
    else begin
      Mc_stats.note_spin h.stats;
      if waited < park_spin_iters then Domain.cpu_relax () else Unix.sleepf park_sleep_s;
      claimed_wake budget (waited + 1)
    end
  and expire budget =
    match Mc_hints.retract board me with
    | Mc_hints.Retracted ->
      Mc_stats.note_hint_expired h.stats;
      if Mc_trace.enabled h.tracer then begin
        Mc_trace.record h.tracer Mc_trace.Hint_expire ~a1:me ~a2:0;
        Mc_trace.record h.tracer Mc_trace.Wake ~a1:me ~a2:0
      end;
      round (min park_budget_cap (2 * budget))
    | Mc_hints.Claim_pending -> claimed_wake budget 0
  and quiesce_parked budget =
    (* Everyone is searching — but our own hint must come down before the
       confirming sweep, or an adder-to-be could still claim it. A lost
       retract means such an adder exists, so the pool is not quiescent
       after all: absorb the delivery instead. *)
    match Mc_hints.retract board me with
    | Mc_hints.Retracted ->
      Mc_stats.note_hint_expired h.stats;
      if Mc_trace.enabled h.tracer then begin
        Mc_trace.record h.tracer Mc_trace.Hint_expire ~a1:me ~a2:0;
        Mc_trace.record h.tracer Mc_trace.Wake ~a1:me ~a2:0
      end;
      quiesce_unparked ()
    | Mc_hints.Claim_pending -> claimed_wake budget 0
  and quiesce_unparked () =
    match sweep t h with
    | Some x -> Some x
    | None ->
      Mc_stats.note_empty_confirm h.stats;
      None
  and take_local_or_resweep () =
    Mc_trace.record h.tracer Mc_trace.Wake ~a1:me ~a2:0;
    match try_remove_local t h with
    | Some x -> Some x
    | None ->
      (* The element we woke for was stolen first (or the delivery was
         aborted): the pool is active, so restart with a fresh budget. *)
      round park_budget_base
  in
  round park_budget_base

let remove t h =
  h.hunt_probes <- 0;
  match try_remove_local t h with
  | Some x -> Some x
  | None ->
    Atomic.incr t.searching;
    (* A parked hinted searcher keeps this increment: "searching empty" is
       exactly what parking means, so quiescence detection stays exact. *)
    let result =
      match t.hints with
      | Some board -> hinted_hunt t h board
      | None -> plain_hunt t h
    in
    Atomic.decr t.searching;
    result

let size t = Array.fold_left (fun acc s -> acc + Mc_segment.size s) 0 t.segs

let segment_sizes t = Array.map Mc_segment.size t.segs

let steals t = Atomic.get t.steal_count

let stats_of_handle h = h.stats

let tracing t = t.trace_on

let trace_of_handle h = h.tracer

let traces t = with_registration t (fun () -> t.handle_traces)

let segment_stats t =
  Array.map (fun s -> Mc_segment.stats s) t.segs

let stats t =
  let all = with_registration t (fun () -> t.handle_stats) in
  (* Handle stats carry the search-side counters, segment stats the
     path-side ones; the field sets are disjoint, so merging double-counts
     nothing. *)
  let merged = Mc_stats.merge_all all in
  Array.fold_left (fun acc s -> Mc_stats.merge acc (Mc_segment.stats s)) merged t.segs

let check_segments t = Array.for_all Mc_segment.invariant_ok t.segs
