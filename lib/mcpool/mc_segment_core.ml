module type SEG = sig
  type 'a atomic
  type mutex
  type 'a t

  val make : ?capacity:int -> ?fast_path:bool -> id:int -> unit -> 'a t
  val id : 'a t -> int
  val capacity : 'a t -> int option
  val size : 'a t -> int
  val add : 'a t -> 'a -> unit
  val try_add : 'a t -> 'a -> bool
  val spill_add : 'a t -> 'a -> bool
  val spare : 'a t -> int
  val try_remove : 'a t -> 'a option
  val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
  val deposit : 'a t -> 'a list -> 'a list
  val reserve : 'a t -> int -> int
  val refill : 'a t -> reserved:int -> 'a list -> unit
  val stats : 'a t -> Mc_stats.t
  val invariant_ok : 'a t -> bool
  val debug_counts : 'a t -> int * int
end

module Make (P : Mc_prim.S) = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex

  type 'a atomic = 'a Atomic.t
  type mutex = Mutex.t

  (* Ring slots hold [Obj.repr]ed elements: one physical representation
     serves every ['a], so a vacated slot can be cleared with an immediate
     (no dummy ['a] needed) and float elements are safe (['a array] would
     flatten them and crash on an immediate filler). A [vacant] slot is
     never read back as ['a]; the protocol below guarantees it. *)
  let vacant : Obj.t = Obj.repr 0

  let initial_ring = 8

  (* The segment is a ring deque plus a small mutex-protected inbox.

     [ring] is a power-of-two array indexed modulo its length by three
     monotonically increasing cursors, [commit <= top <= bottom]:

       [top, bottom)   elements visible for stealing (oldest at [top]);
       [commit, top)   a steal window claimed but not yet copied out;
       anything outside [commit, bottom) is vacant.

     Roles:
     - The OWNER (the one domain the pool assigns this segment to) pushes
       and pops at [bottom] without the mutex; it is the only writer of
       [bottom] and of ring slots.
     - STEALERS serialize on [mutex]; they are the only writers of [top]
       and [commit], and they only vacate slots, never fill them.
     - Foreign adds (the pool's spill traffic) append to [inbox] under
       [mutex] — two lock-free writers at [bottom] would be unsound.

     [count] is the logical size: ring elements + inbox elements +
     outstanding reservations. Increments happen before the element is
     visible and decrements after it is taken, so [count >= stored] always;
     on a bounded segment every increment goes through a CAS that refuses
     to exceed the bound, so capacity holds at every instant even against
     the lock-free owner.

     Publication (OCaml 5 memory model): the owner's plain slot store is
     made visible by the subsequent atomic [bottom] store; a stealer that
     reads that [bottom] value therefore sees the slot contents. The same
     edge in reverse runs through [commit]: stealers vacate slots before
     atomically advancing [commit], and the owner checks [commit] before
     reusing those slots. *)
  type 'a t = {
    seg_id : int;
    bound : int option;
    fast_path : bool; (* false = all-mutex baseline, for benchmarking *)
    mutex : Mutex.t;
    mutable ring : Obj.t array; (* replaced only by the owner, under [mutex] *)
    top : int Atomic.t;
    commit : int Atomic.t;
    bottom : int Atomic.t;
    inbox : 'a Cpool_util.Vec.t;
    count : int Atomic.t;
    seg_stats : Mc_stats.t; (* path counters; see Mc_stats writer discipline *)
  }

  let make ?capacity ?(fast_path = true) ~id () =
    (match capacity with
    | Some c when c <= 0 -> invalid_arg "Mc_segment.make: capacity must be positive"
    | Some _ | None -> ());
    {
      seg_id = id;
      bound = capacity;
      fast_path;
      mutex = Mutex.create ();
      ring = Array.make initial_ring vacant;
      top = Atomic.make_padded 0;
      commit = Atomic.make_padded 0;
      bottom = Atomic.make_padded 0;
      inbox = Cpool_util.Vec.create ();
      count = Atomic.make_padded 0;
      seg_stats = Mc_stats.create ();
    }

  let id s = s.seg_id

  let capacity s = s.bound

  let size s = Atomic.get s.count

  let spare s =
    match s.bound with None -> max_int | Some c -> max 0 (c - Atomic.get s.count)

  let stats s = s.seg_stats

  let with_lock s f =
    Mutex.lock s.mutex;
    match f () with
    | v ->
      Mutex.unlock s.mutex;
      v
    | exception e ->
      Mutex.unlock s.mutex;
      raise e

  let shift_count s d = ignore (Atomic.fetch_and_add s.count d)

  (* Claim up to [k] units of capacity with a CAS loop, returning the amount
     claimed. CAS (rather than check-then-add) is what keeps the bound
     exact: no interleaving of claimants — including the lock-free owner —
     can push [count] past [c], even transiently. *)
  let rec claim_up_to s ~bound:c k =
    let cur = Atomic.get s.count in
    let granted = min k (max 0 (c - cur)) in
    if granted = 0 then 0
    else if Atomic.compare_and_set s.count cur (cur + granted) then granted
    else claim_up_to s ~bound:c k

  let slot ring i = i land (Array.length ring - 1)

  let take_slot ring i =
    let x = Obj.obj ring.(i) in
    ring.(i) <- vacant;
    x

  (* Owner-only, under [mutex]: replace the ring so [extra] more pushes fit.
     With the lock held no steal window is in flight, so [commit = top] and
     [top, bottom) is exactly the live range to carry over. *)
  let grow_locked s ~extra =
    let t = Atomic.get s.top and b = Atomic.get s.bottom in
    let needed = b - t + extra in
    let cap = ref (max initial_ring (Array.length s.ring)) in
    while needed > !cap do
      cap := 2 * !cap
    done;
    if !cap > Array.length s.ring then begin
      let old = s.ring in
      let fresh = Array.make !cap vacant in
      for i = t to b - 1 do
        fresh.(i land (!cap - 1)) <- old.(slot old i)
      done;
      s.ring <- fresh
    end

  (* Owner batch store of [n >= 1] elements, published with ONE atomic
     [bottom] store. Room is judged against [commit], the physical free
     boundary: a stale (small) read of [commit] only makes the check
     conservative. Returns whether the locked path was taken. *)
  let push_many s xs n =
    let b = Atomic.get s.bottom in
    let store () =
      List.iteri (fun i x -> s.ring.(slot s.ring (b + i)) <- Obj.repr x) xs;
      (* lint: allow non-atomic-rmw -- bottom has a single writer (the owner domain); this publishes its own read *)
      Atomic.set s.bottom (b + n)
    in
    if s.fast_path && b + n - Atomic.get s.commit <= Array.length s.ring then begin
      store ();
      false
    end
    else begin
      with_lock s (fun () ->
          if b + n - Atomic.get s.commit > Array.length s.ring then
            grow_locked s ~extra:n;
          store ());
      true
    end

  let note_push s locked =
    if locked then Mc_stats.note_locked_push s.seg_stats
    else Mc_stats.note_fast_push s.seg_stats

  let push_one s x = note_push s (push_many s [ x ] 1)

  let add s x =
    (* Count first, store second: [count >= stored] must hold at every
       instant or a concurrent steal's decrement could drive it negative. *)
    shift_count s 1;
    push_one s x

  let try_add s x =
    match s.bound with
    | None ->
      add s x;
      true
    | Some c ->
      if claim_up_to s ~bound:c 1 = 0 then false
      else begin
        push_one s x;
        true
      end

  (* Foreign add (the pool's spill path): only the owner may touch the ring,
     so other domains append to the mutex-protected inbox. Capacity is
     claimed before the element is stored, like every other increment. *)
  let spill_add s x =
    let claimed =
      match s.bound with
      | None ->
        shift_count s 1;
        true
      | Some c -> claim_up_to s ~bound:c 1 = 1
    in
    claimed
    &&
    (with_lock s (fun () ->
         Cpool_util.Vec.push s.inbox x;
         Mc_stats.note_inbox_add s.seg_stats);
     true)

  (* Owner slow path: pop under the mutex. With the lock held no steal is in
     flight, so a plain bottom decrement is safe; the inbox is the fallback
     once the ring is dry. *)
  let pop_locked s =
    with_lock s (fun () ->
        Mc_stats.note_locked_pop s.seg_stats;
        let t = Atomic.get s.top and b = Atomic.get s.bottom in
        if b > t then begin
          let b' = b - 1 in
          (* lint: allow non-atomic-rmw -- bottom's only writer is the owner, and stealers are excluded by the held mutex *)
          Atomic.set s.bottom b';
          let x : 'a = take_slot s.ring (slot s.ring b') in
          shift_count s (-1);
          Some x
        end
        else
          match Cpool_util.Vec.pop s.inbox with
          | Some x ->
            shift_count s (-1);
            Some x
          | None -> None)

  (* Owner fast pop: decrement [bottom] first, then look at [top]. If more
     than one element separates them, no stealer can reach slot [b' ] (a
     steal window never extends past the [bottom] the stealer re-reads after
     claiming — see [steal_from_ring]), so the owner takes it with no lock.
     Otherwise restore [bottom] and let the mutex arbitrate the tail. *)
  let pop_fast s =
    let b = Atomic.get s.bottom in
    let b' = b - 1 in
    (* lint: allow non-atomic-rmw -- bottom has a single writer (the owner domain); stealers only read it *)
    Atomic.set s.bottom b';
    let t = Atomic.get s.top in
    if b' > t then begin
      let x : 'a = take_slot s.ring (slot s.ring b') in
      shift_count s (-1);
      Mc_stats.note_fast_pop s.seg_stats;
      Some x
    end
    else begin
      (* lint: allow non-atomic-rmw -- restoring the owner's own decrement; no other domain writes bottom *)
      Atomic.set s.bottom b;
      pop_locked s
    end

  let try_remove s =
    if Atomic.get s.count = 0 then None
    else if s.fast_path then pop_fast s
    else pop_locked s

  (* Under [mutex]: claim a window of up to half the ring in one batched
     transfer. The claim protocol against the lock-free owner:

       1. claim:      top := t + w          (stealers own [top])
       2. revalidate: b2 := bottom          (re-read AFTER the claim)
       3. shrink:     top := t + w',  w' = clamp(b2 - t)

     Any owner pop racing step 1 either (a) saw the new [top] and retreated
     to the mutex we hold, or (b) its bottom decrement is ordered before
     our step-2 read — its store precedes its [top] read, which preceded
     our claim store (all SC atomics). Either way the final window
     [t, t + w') and the slots owner pops touched are disjoint, so the copy
     can proceed with no per-element synchronisation. [commit] advances
     only after the copy, keeping owner pushes out of the window. *)
  let steal_from_ring s max_take =
    let t = Atomic.get s.top in
    let b = Atomic.get s.bottom in
    let n = b - t in
    if n <= 0 then []
    else begin
      let w = min ((n + 1) / 2) max_take in
      (* lint: allow non-atomic-rmw -- top is written only under the segment mutex, which this code holds *)
      Atomic.set s.top (t + w);
      let b2 = Atomic.get s.bottom in
      let w = max 0 (min w (b2 - t)) in
      (* lint: allow non-atomic-rmw -- top is written only under the segment mutex, which this code holds *)
      Atomic.set s.top (t + w);
      let out = ref [] in
      for i = t + w - 1 downto t do
        out := (take_slot s.ring (slot s.ring i) : 'a) :: !out
      done;
      Atomic.set s.commit (t + w);
      if w > 0 then shift_count s (-w);
      !out
    end

  let steal_half ?(max_take = max_int) s =
    if max_take < 1 then invalid_arg "Mc_segment.steal_half: max_take must be >= 1";
    with_lock s (fun () ->
        let taken = steal_from_ring s max_take in
        let taken =
          if taken <> [] then taken
          else begin
            (* Ring dry: split the spill inbox instead. *)
            let m = Cpool_util.Vec.length s.inbox in
            if m = 0 then []
            else begin
              let k = min ((m + 1) / 2) max_take in
              let xs = Cpool_util.Vec.take_last s.inbox k in
              shift_count s (-k);
              xs
            end
          end
        in
        match taken with
        | [] -> Cpool.Steal.Nothing
        | [ x ] ->
          Mc_stats.note_steal_batch s.seg_stats 1;
          Cpool.Steal.Single x
        | x :: rest ->
          Mc_stats.note_steal_batch s.seg_stats (1 + List.length rest);
          Cpool.Steal.Batch (x, rest))

  let deposit s xs =
    match xs with
    | [] -> []
    | _ ->
      let n = List.length xs in
      let fits, rejected =
        match s.bound with
        | None ->
          shift_count s n;
          (xs, [])
        | Some c ->
          let granted = claim_up_to s ~bound:c n in
          let rec split taken i rest =
            if i = granted then (List.rev taken, rest)
            else
              match rest with
              | [] -> (List.rev taken, [])
              | x :: tl -> split (x :: taken) (i + 1) tl
          in
          split [] 0 xs
      in
      (match fits with
      | [] -> ()
      | _ -> note_push s (push_many s fits (List.length fits)));
      rejected

  let reserve s k =
    if k < 0 then invalid_arg "Mc_segment.reserve: negative reservation";
    if k = 0 then 0
    else
      match s.bound with
      | None ->
        shift_count s k;
        k
      | Some c -> claim_up_to s ~bound:c k

  let refill s ~reserved xs =
    let n = List.length xs in
    if n > reserved then invalid_arg "Mc_segment.refill: more elements than reserved";
    if reserved = 0 then ()
    else begin
      (match xs with
      | [] -> ()
      | _ -> note_push s (push_many s xs n));
      (* Release the unused remainder of the reservation — after the store,
         so [count >= stored] is never violated. *)
      if n <> reserved then shift_count s (n - reserved)
    end

  let stored_now s =
    Atomic.get s.bottom - Atomic.get s.top + Cpool_util.Vec.length s.inbox

  let invariant_ok s =
    with_lock s (fun () ->
        let c = Atomic.get s.count in
        c = stored_now s
        && Atomic.get s.commit = Atomic.get s.top
        && (match s.bound with None -> true | Some b -> c <= b))

  let debug_counts s = (Atomic.get s.count, stored_now s)
end
