module type SEG = sig
  type 'a atomic
  type mutex
  type 'a t

  val make : ?capacity:int -> id:int -> unit -> 'a t
  val id : 'a t -> int
  val capacity : 'a t -> int option
  val size : 'a t -> int
  val add : 'a t -> 'a -> unit
  val try_add : 'a t -> 'a -> bool
  val spare : 'a t -> int
  val try_remove : 'a t -> 'a option
  val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
  val deposit : 'a t -> 'a list -> 'a list
  val reserve : 'a t -> int -> int
  val refill : 'a t -> reserved:int -> 'a list -> unit
  val invariant_ok : 'a t -> bool
  val debug_counts : 'a t -> int * int
end

module Make (P : Mc_prim.S) = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex

  type 'a atomic = 'a Atomic.t
  type mutex = Mutex.t

  type 'a t = {
    seg_id : int;
    bound : int option;
    mutex : Mutex.t;
    items : 'a Cpool_util.Vec.t;
    count : int Atomic.t;
        (* Vec.length items + outstanding reservations; read lock-free,
           written only under [mutex]. Never exceeds [bound]. *)
  }

  let make ?capacity ~id () =
    (match capacity with
    | Some c when c <= 0 -> invalid_arg "Mc_segment.make: capacity must be positive"
    | Some _ | None -> ());
    {
      seg_id = id;
      bound = capacity;
      mutex = Mutex.create ();
      items = Cpool_util.Vec.create ();
      count = Atomic.make 0;
    }

  let id s = s.seg_id

  let capacity s = s.bound

  let size s = Atomic.get s.count

  let with_lock s f =
    Mutex.lock s.mutex;
    match f () with
    | v ->
      Mutex.unlock s.mutex;
      v
    | exception e ->
      Mutex.unlock s.mutex;
      raise e

  (* All count updates are relative, so reservations (count > Vec length)
     survive interleaved adds/steals on the same segment. A true atomic RMW
     even though every write site holds [mutex]: lock-free readers see a
     single transition, and the update stays correct if a future write site
     appears outside the lock. *)
  let shift_count s d = ignore (Atomic.fetch_and_add s.count d)

  let add s x =
    with_lock s (fun () ->
        Cpool_util.Vec.push s.items x;
        shift_count s 1)

  let try_add s x =
    with_lock s (fun () ->
        match s.bound with
        | Some c when Atomic.get s.count >= c -> false
        | Some _ | None ->
          Cpool_util.Vec.push s.items x;
          shift_count s 1;
          true)

  let spare s =
    match s.bound with None -> max_int | Some c -> max 0 (c - Atomic.get s.count)

  let try_remove s =
    if Atomic.get s.count = 0 then None
    else
      with_lock s (fun () ->
          match Cpool_util.Vec.pop s.items with
          | Some x ->
            shift_count s (-1);
            Some x
          | None -> None)

  let steal_half ?(max_take = max_int) s =
    if max_take < 1 then invalid_arg "Mc_segment.steal_half: max_take must be >= 1";
    with_lock s (fun () ->
        let n = Cpool_util.Vec.length s.items in
        if n = 0 then Cpool.Steal.Nothing
        else if n = 1 then begin
          let x = Cpool_util.Vec.pop_exn s.items in
          shift_count s (-1);
          Cpool.Steal.Single x
        end
        else begin
          let h = min ((n + 1) / 2) max_take in
          let taken = Cpool_util.Vec.take_last s.items h in
          shift_count s (-h);
          match taken with
          | x :: rest -> Cpool.Steal.Batch (x, rest)
          | [] -> assert false
        end)

  let deposit s xs =
    match xs with
    | [] -> []
    | _ ->
      with_lock s (fun () ->
          match s.bound with
          | None ->
            Cpool_util.Vec.append_list s.items xs;
            shift_count s (List.length xs);
            []
          | Some c ->
            let room = max 0 (c - Atomic.get s.count) in
            let rec split taken i = function
              | rest when i = room -> (List.rev taken, rest)
              | [] -> (List.rev taken, [])
              | x :: rest -> split (x :: taken) (i + 1) rest
            in
            let fits, rejected = split [] 0 xs in
            Cpool_util.Vec.append_list s.items fits;
            shift_count s (List.length fits);
            rejected)

  let reserve s k =
    if k < 0 then invalid_arg "Mc_segment.reserve: negative reservation";
    if k = 0 then 0
    else
      with_lock s (fun () ->
          let r = min k (spare s) in
          shift_count s r;
          r)

  let refill s ~reserved xs =
    let n = List.length xs in
    if n > reserved then invalid_arg "Mc_segment.refill: more elements than reserved";
    if reserved = 0 then ()
    else
      with_lock s (fun () ->
          Cpool_util.Vec.append_list s.items xs;
          shift_count s (n - reserved))

  let invariant_ok s =
    with_lock s (fun () ->
        let c = Atomic.get s.count and len = Cpool_util.Vec.length s.items in
        c = len && match s.bound with None -> true | Some b -> c <= b)

  let debug_counts s = (Atomic.get s.count, Cpool_util.Vec.length s.items)
end
