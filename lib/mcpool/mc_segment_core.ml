module type SEG = sig
  type 'a atomic
  type mutex
  type 'a t

  val make : ?capacity:int -> ?fast_path:bool -> id:int -> unit -> 'a t
  val id : 'a t -> int
  val capacity : 'a t -> int option
  val size : 'a t -> int
  val add : 'a t -> 'a -> unit
  val try_add : 'a t -> 'a -> bool
  val spill_add : 'a t -> 'a -> bool
  val spare : 'a t -> int
  val try_remove : 'a t -> 'a option
  val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
  val deposit : 'a t -> 'a list -> 'a list
  val reserve : 'a t -> int -> int
  val refill : 'a t -> reserved:int -> 'a list -> unit
  val inbox_length : 'a t -> int
  val stats : 'a t -> Mc_stats.t
  val invariant_ok : 'a t -> bool
  val debug_counts : 'a t -> int * int
end

module Make (P : Mc_prim.S) = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex
  module Plain = P.Plain

  type 'a atomic = 'a Atomic.t
  type mutex = Mutex.t

  (* Ring slots hold [Obj.repr]ed elements: one physical representation
     serves every ['a], so a vacated slot can be cleared with an immediate
     (no dummy ['a] needed) and float elements are safe (['a array] would
     flatten them and crash on an immediate filler). A [vacant] slot is
     never read back as ['a]; the protocol below guarantees it. *)
  let vacant : Obj.t = Obj.repr 0

  let initial_ring = 8

  (* The segment is a lock-free SPMC FIFO ring plus a lock-free MPSC inbox.
     No operation takes the mutex when [fast_path] is on; the mutex exists
     only for the [fast_path:false] all-mutex baseline twin the throughput
     benchmark compares against.

     [ring] is a power-of-two array indexed modulo its length by two
     monotonically non-decreasing cursors, [top <= bottom]:

       [top, bottom)   live elements, oldest at [top].

     Roles:
     - The OWNER (the one domain the pool assigns this segment to) is the
       only writer of [bottom] and of ring slots: it stores a batch with
       plain writes and publishes it with one atomic [fetch_and_add] on
       [bottom]. [bottom] never decreases — the owner does not pop at the
       back.
     - ALL consumers — the owner's pop and every stealer — take from the
       FRONT by the same copy-then-claim protocol: read [t = top] and
       [b = bottom], copy slots [t, t + w) into a private buffer, then
       CAS [top : t -> t + w]. The CAS is the commit point; a failed CAS
       discards the buffer and retries. Consequently owner pops are FIFO
       (oldest first) — pools are unordered, so locality of the old LIFO
       pop is traded for a protocol with one cursor CAS and no
       claim/revalidate window.
     - FOREIGN ADDS (the pool's spill traffic) CAS-push onto [inbox], a
       Treiber stack of list cells. The owner drains it with a single
       [exchange] when its ring runs dry, reversing the batch so spill
       traffic stays FIFO end-to-end (push order = drain order = ring pop
       order). Stealers that find the ring dry may CAS-pop single cells —
       cells are fresh blocks, never re-pushed, so the physical-equality
       CAS cannot ABA.

     Why a torn copy is harmless: a consumer's copy races only the owner
     overwriting slots for indices [>= bottom]. The owner's room check
     bounds its writes to [x < top_read + length ring] for some [top_read]
     it observed; for such a write to alias a slot in a pending window
     [t, t + w) (all indices [< bottom <= x]), the index gap must be at
     least [length ring], forcing [top_read > t] — so [top] already moved
     past [t] and that window's CAS must fail. The garbage copy is held
     only as [Obj.t] and discarded, never converted.

     Ring growth is lock-free too: the owner builds a fresh array, copies
     the live range, and publishes it with one atomic exchange of [ring].
     Consumers snapshot [ring] once per attempt, AFTER reading the cursors:
     [bottom] is monotone, so every index in the snapshot's [t, b) window
     is present in whichever array version the consumer sees (the swap
     copies [<= top .. bottom) and later owner pushes store into the new
     array before publishing [bottom]).

     Space discipline: consumed slots keep their (dead) element reachable
     until cleared. Stealers never write slots, so the owner lazily vacates
     [scrub, top) during its own operations — skipping slots already
     recycled for a newer index — mirroring [Vec.release_slot].

     [count] is the logical size: ring elements + inbox elements +
     outstanding reservations. Increments happen before the element is
     visible and decrements after it is taken, so [count >= stored] always;
     on a bounded segment every increment goes through a CAS that refuses
     to exceed the bound, so capacity holds at every instant. *)
  (* Ring slots are tracked [Plain] cells, not bare array elements: slot
     reads and writes are exactly the shared plain accesses whose ordering
     the protocol must prove (owner store -> [bottom] publish -> consumer
     read), so routing them through [Plain] lets the checker's
     happens-before race detector certify that proof on the shipped code.
     The one deliberate exception — the consumer's pre-CAS window copy,
     whose value is garbage unless the [top] CAS validates it — reads
     through [Plain.racy_get]. *)
  type 'a t = {
    seg_id : int;
    bound : int option;
    fast_path : bool; (* false = all-mutex baseline, for benchmarking *)
    mutex : Mutex.t;
    ring : Obj.t Plain.t array Atomic.t; (* swapped only by the owner, on growth *)
    top : int Atomic.t;
    bottom : int Atomic.t;
    scrub : int Plain.t; (* owner-only: slots [scrub, top) may need clearing *)
    inbox : 'a list Atomic.t; (* MPSC Treiber stack of spilled elements *)
    count : int Atomic.t;
    seg_stats : Mc_stats.t; (* path counters; see Mc_stats writer discipline *)
  }

  let fresh_ring n = Array.init n (fun _ -> Plain.make vacant)

  let make ?capacity ?(fast_path = true) ~id () =
    (match capacity with
    | Some c when c <= 0 -> invalid_arg "Mc_segment.make: capacity must be positive"
    | Some _ | None -> ());
    {
      seg_id = id;
      bound = capacity;
      fast_path;
      mutex = Mutex.create ();
      ring = Atomic.make_padded (fresh_ring initial_ring);
      top = Atomic.make_padded 0;
      bottom = Atomic.make_padded 0;
      scrub = Plain.make 0;
      inbox = Atomic.make_padded [];
      count = Atomic.make_padded 0;
      seg_stats = Mc_stats.create ();
    }

  let id s = s.seg_id

  let capacity s = s.bound

  let size s = Atomic.get s.count

  let spare s =
    match s.bound with None -> max_int | Some c -> max 0 (c - Atomic.get s.count)

  let stats s = s.seg_stats

  let inbox_length s = List.length (Atomic.get s.inbox)

  let with_lock s f =
    Mutex.lock s.mutex;
    match f () with
    | v ->
      Mutex.unlock s.mutex;
      v
    | exception e ->
      Mutex.unlock s.mutex;
      raise e

  (* Every public operation runs through [serialized]: a no-op with the
     fast path on, the segment mutex otherwise. Under the mutex the same
     cursor code runs with every CAS uncontended, so the baseline measures
     the cost of serialization itself, not a second algorithm. *)
  let serialized s f = if s.fast_path then f () else with_lock s f

  let shift_count s d = ignore (Atomic.fetch_and_add s.count d)

  (* Claim up to [k] units of capacity with a CAS loop, returning the amount
     claimed. CAS (rather than check-then-add) is what keeps the bound
     exact: no interleaving of claimants — including the lock-free owner —
     can push [count] past [c], even transiently. *)
  let rec claim_up_to s ~bound:c k =
    let cur = Atomic.get s.count in
    let granted = min k (max 0 (c - cur)) in
    if granted = 0 then 0
    else if Atomic.compare_and_set s.count cur (cur + granted) then granted
    else claim_up_to s ~bound:c k

  let slot ring i = i land (Array.length ring - 1)

  (* Owner-only, lazy space-leak control: clear ring slots whose elements
     were claimed, so the GC can reclaim them (the Vec.release_slot
     discipline). A slot whose index was already recycled by a newer push
     (index < bottom - length) holds that newer element and must be left
     alone; a stealer's in-flight copy of a slot cleared here belongs to a
     window [top] has already passed, i.e. to a doomed CAS. *)
  let scrub_consumed s =
    let t = Atomic.get s.top in
    if Plain.get s.scrub < t then begin
      let ring = Atomic.get s.ring in
      let b = Atomic.get s.bottom in
      let from = max (Plain.get s.scrub) (b - Array.length ring) in
      for i = from to t - 1 do
        Plain.set ring.(slot ring i) vacant
      done;
      Plain.set s.scrub t
    end

  (* Owner-only lock-free ring replacement: build the fresh array, copy the
     live range, publish with one atomic swap. A consumer still holding the
     old array is unharmed — the owner never writes the old array again, and
     the [top] CAS decides whether its copy was current. A stale (small)
     read of [top] here only copies extra already-dead slots. *)
  let grow s ~extra =
    let old = Atomic.get s.ring in
    let t = Atomic.get s.top and b = Atomic.get s.bottom in
    let cap = ref (max initial_ring (2 * Array.length old)) in
    while b - t + extra > !cap do
      cap := 2 * !cap
    done;
    let fresh = fresh_ring !cap in
    for i = t to b - 1 do
      Plain.set fresh.(i land (!cap - 1)) (Plain.get old.(slot old i))
    done;
    Plain.set s.scrub t;
    ignore (Atomic.exchange s.ring fresh);
    fresh

  (* Owner batch store of [n >= 1] elements, published with ONE atomic
     add on [bottom] — [bottom]'s single writer is the owner, so the add
     is a store of [b + n], and the atomic write is what makes the plain
     slot stores visible to any consumer that reads the new [bottom].
     Room is judged against a fresh [top] read; a stale (small) value only
     makes the check conservative (grows early, never overwrites live). *)
  let push_many s xs n =
    scrub_consumed s;
    let b = Atomic.get s.bottom in
    let ring = Atomic.get s.ring in
    let ring =
      if b + n - Atomic.get s.top <= Array.length ring then ring
      else grow s ~extra:n
    in
    List.iteri (fun i x -> Plain.set ring.(slot ring (b + i)) (Obj.repr x)) xs;
    ignore (Atomic.fetch_and_add s.bottom n)

  let note_push s =
    if s.fast_path then Mc_stats.note_fast_push s.seg_stats
    else Mc_stats.note_locked_push s.seg_stats

  let push_one s x =
    push_many s [ x ] 1;
    note_push s

  let add s x =
    serialized s (fun () ->
        (* Count first, store second: [count >= stored] must hold at every
           instant or a concurrent steal's decrement could drive it
           negative. *)
        shift_count s 1;
        push_one s x)

  let try_add s x =
    serialized s (fun () ->
        match s.bound with
        | None ->
          shift_count s 1;
          push_one s x;
          true
        | Some c ->
          if claim_up_to s ~bound:c 1 = 0 then false
          else begin
            push_one s x;
            true
          end)

  (* Foreign add (the pool's spill path): only the owner may touch the
     ring, so other domains CAS-push onto the MPSC inbox. Capacity is
     claimed before the element is stored, like every other increment. *)
  let rec mpsc_push s x =
    let seen = Atomic.get s.inbox in
    if Atomic.compare_and_set s.inbox seen (x :: seen) then ()
    else begin
      Mc_stats.note_mpsc_retry s.seg_stats;
      mpsc_push s x
    end

  let spill_add s x =
    serialized s (fun () ->
        let claimed =
          match s.bound with
          | None ->
            shift_count s 1;
            true
          | Some c -> claim_up_to s ~bound:c 1 = 1
        in
        claimed
        && begin
          mpsc_push s x;
          Mc_stats.note_inbox_add s.seg_stats;
          true
        end)

  (* Take up to [want] elements from the ring front with one CAS on [top].
     Copy-then-claim: slots are read into a private [Obj.t] buffer FIRST;
     the CAS is the commit point; a failed CAS discards the buffer (which
     may hold garbage from a raced overwrite — see the overwrite note on
     the type) and retries; only after success are the copies converted.
     The ring snapshot comes AFTER the cursor reads so a concurrent swap
     cannot hide indices of [t, b) from it ([bottom] is monotone). *)
  let rec claim_ring : 'a. 'a t -> want:int -> halve:bool -> 'a list =
    fun s ~want ~halve ->
     let t = Atomic.get s.top in
     let b = Atomic.get s.bottom in
     let n = b - t in
     if n <= 0 then []
     else begin
       let w = min (if halve then (n + 1) / 2 else n) want in
       let ring = Atomic.get s.ring in
       let buf = Array.make w vacant in
       for i = 0 to w - 1 do
         (* Sanctioned racy read: a concurrent owner overwrite (recycled
            index) or scrub makes this copy garbage, but then [top] has
            moved past [t] and the CAS below fails, discarding it — see the
            overwrite note on the type. *)
         buf.(i) <- Plain.racy_get ring.(slot ring (t + i))
       done;
       if Atomic.compare_and_set s.top t (t + w) then begin
         shift_count s (-w);
         List.init w (fun i -> (Obj.obj buf.(i) : 'a))
       end
       else begin
         Mc_stats.note_top_cas_retry s.seg_stats;
         claim_ring s ~want ~halve
       end
     end

  (* Single-element take, the owner's pop in a task-scheduler loop where
     it runs once per task: the same copy-then-claim protocol as
     [claim_ring] with [w = 1], minus its window buffer and result list —
     an allocation-free hot path. The memory-ordering argument is
     unchanged: the slot is read through [racy_get] BEFORE the [top] CAS,
     and a raced overwrite means [top] already moved so the CAS fails and
     the garbage copy is discarded unconverted. *)
  let rec claim_one : 'a. 'a t -> 'a option =
    fun s ->
     let t = Atomic.get s.top in
     let b = Atomic.get s.bottom in
     if b - t <= 0 then None
     else begin
       let ring = Atomic.get s.ring in
       let x = Plain.racy_get ring.(slot ring t) in
       if Atomic.compare_and_set s.top t (t + 1) then begin
         shift_count s (-1);
         Some (Obj.obj x : 'a)
       end
       else begin
         Mc_stats.note_top_cas_retry s.seg_stats;
         claim_one s
       end
     end

  (* Owner drain: swap the whole MPSC stack out in one exchange, reverse it
     back to arrival order, and batch it into the FIFO ring — spill traffic
     is consumed oldest-first end-to-end. [count] is untouched: the
     elements only move between the two stores it already covers. *)
  let drain_inbox s =
    match Atomic.exchange s.inbox [] with
    | [] -> 0
    | xs ->
      let xs = List.rev xs in
      let n = List.length xs in
      push_many s xs n;
      Mc_stats.note_inbox_drain s.seg_stats ~elements:n;
      n

  let rec pop s =
    match claim_one s with
    | Some _ as r -> r
    | None -> if drain_inbox s = 0 then None else pop s

  let note_pop s =
    if s.fast_path then Mc_stats.note_fast_pop s.seg_stats
    else Mc_stats.note_locked_pop s.seg_stats

  let try_remove s =
    serialized s (fun () ->
        if Atomic.get s.count = 0 then begin
          (* Idle moment: finish clearing consumed slots (a no-op when
             already clean), so a drained segment pins no dead elements. *)
          scrub_consumed s;
          None
        end
        else
          match pop s with
          | Some _ as r ->
            note_pop s;
            r
          | None ->
            scrub_consumed s;
            None)

  (* Steal fallback when the ring is dry: lift single cells off the MPSC
     stack. Cells are fresh blocks and never re-pushed, so the
     physical-equality CAS cannot ABA; losing a race to the owner's
     exchange-drain just ends the walk early. *)
  let rec mpsc_pop s =
    match Atomic.get s.inbox with
    | [] -> None
    | x :: tl as seen ->
      if Atomic.compare_and_set s.inbox seen tl then Some x
      else begin
        Mc_stats.note_mpsc_retry s.seg_stats;
        mpsc_pop s
      end

  let steal_inbox s max_take =
    let m = List.length (Atomic.get s.inbox) in
    if m = 0 then []
    else begin
      let k = min ((m + 1) / 2) max_take in
      let rec take acc k =
        if k = 0 then List.rev acc
        else
          match mpsc_pop s with
          | None -> List.rev acc
          | Some x ->
            shift_count s (-1);
            take (x :: acc) (k - 1)
      in
      take [] k
    end

  let steal_half ?(max_take = max_int) s =
    if max_take < 1 then invalid_arg "Mc_segment.steal_half: max_take must be >= 1";
    serialized s (fun () ->
        let taken = claim_ring s ~want:max_take ~halve:true in
        let taken = if taken <> [] then taken else steal_inbox s max_take in
        match taken with
        | [] -> Cpool.Steal.Nothing
        | [ x ] -> Cpool.Steal.Single x
        | x :: rest -> Cpool.Steal.Batch (x, rest))

  let deposit s xs =
    match xs with
    | [] -> []
    | _ ->
      let n = List.length xs in
      serialized s (fun () ->
          let fits, rejected =
            match s.bound with
            | None ->
              shift_count s n;
              (xs, [])
            | Some c ->
              let granted = claim_up_to s ~bound:c n in
              let rec split taken i rest =
                if i = granted then (List.rev taken, rest)
                else
                  match rest with
                  | [] -> (List.rev taken, [])
                  | x :: tl -> split (x :: taken) (i + 1) tl
              in
              split [] 0 xs
          in
          (match fits with
          | [] -> ()
          | _ ->
            push_many s fits (List.length fits);
            note_push s);
          rejected)

  let reserve s k =
    if k < 0 then invalid_arg "Mc_segment.reserve: negative reservation";
    if k = 0 then 0
    else
      serialized s (fun () ->
          match s.bound with
          | None ->
            shift_count s k;
            k
          | Some c -> claim_up_to s ~bound:c k)

  let refill s ~reserved xs =
    let n = List.length xs in
    if n > reserved then invalid_arg "Mc_segment.refill: more elements than reserved";
    if reserved = 0 then ()
    else
      serialized s (fun () ->
          (match xs with
          | [] -> ()
          | _ ->
            push_many s xs n;
            note_push s);
          (* Release the unused remainder of the reservation — after the
             store, so [count >= stored] is never violated. *)
          if n <> reserved then shift_count s (n - reserved))

  let stored_now s =
    Atomic.get s.bottom - Atomic.get s.top + List.length (Atomic.get s.inbox)

  (* Quiescent-only: with no thread mid-operation there is nothing to
     stabilize with the mutex — the cursors and the count are read
     directly. [top <= bottom] is the cursor invariant ([bottom] is
     monotone and a claim never exceeds [bottom - top]); [scrub <= top]
     because the scrub cursor only chases [top]. *)
  let invariant_ok s =
    let t = Atomic.get s.top and b = Atomic.get s.bottom in
    let c = Atomic.get s.count in
    t <= b && Plain.get s.scrub <= t
    && c = stored_now s
    && match s.bound with None -> true | Some bd -> c <= bd

  let debug_counts s = (Atomic.get s.count, stored_now s)
end
