let bucket_limit = 512

type t = {
  mutable adds : int;
  mutable spills : int;
  mutable add_fails : int;
  mutable local_removes : int;
  mutable steals : int;
  mutable elements_stolen : int;
  mutable segments_examined : int;
  mutable steal_probes : int; (* probes attributed to successful steals *)
  mutable sweeps : int;
  mutable empty_confirms : int;
  mutable spins : int;
  (* Hint-board counters (the [Hinted] kind). Published/expired are bumped
     only by the parking searcher's own handle; claimed/delivered only by
     the claiming adder's handle — per-handle single-writer like the rest. *)
  mutable hints_published : int;
  mutable hints_claimed : int;
  mutable hints_delivered : int;
  mutable hints_expired : int;
  (* Segment-side path counters: which protocol path each ring operation
     took. Fast/locked push/pop and the drain counters are written only by
     the segment's owner domain (plain stores are enough); the remaining
     segment counters are bumped by whichever domain performed the
     operation — foreign spillers and stealers race on them, so they are
     genuine atomics ([Stdlib.Atomic], not the functor's shims: telemetry
     is not part of the verified protocol and must not add scheduling
     points to the interleave checker). *)
  mutable fast_pushes : int;
  mutable locked_pushes : int;
  mutable fast_pops : int;
  mutable locked_pops : int;
  mutable inbox_drains : int; (* owner inbox-to-ring transfers *)
  mutable inbox_drained : int; (* elements moved by those transfers *)
  inbox_adds : int Stdlib.Atomic.t; (* successful MPSC pushes, any domain *)
  top_cas_retries : int Stdlib.Atomic.t; (* failed claims of the ring's top cursor *)
  mpsc_retries : int Stdlib.Atomic.t; (* failed CASes on the inbox stack *)
  (* Steal-batch counters are bumped by the thief's own handle (single
     writer), not the victim segment — with lock-free stealing the victim
     side has no serialization point to hide racy plain increments behind. *)
  mutable batched_steals : int; (* steal transfers that moved >= 2 elements at once *)
  segs_per_steal : int array;
  elems_per_steal : int array;
  batch_sizes : int array; (* elements moved per successful steal transfer *)
  (* Locality split (only bumped when the pool has a topology). Near = the
     probed/robbed segment shares the prober's locality group; far = it
     does not. All four counters and both bucket arrays are written by the
     thief's own handle, single-writer like the batch counters above. *)
  mutable near_probes : int;
  mutable far_probes : int;
  mutable near_steals : int;
  mutable far_steals : int;
  near_batch_sizes : int array; (* elements per steal from a near segment *)
  far_batch_sizes : int array; (* elements per steal from a far segment *)
}

let create () =
  (* Padded: each domain's record must not share a cache line with its
     neighbour's, or the hot-path counter stores false-share. *)
  Cpool_util.Pad.copy_as_padded
    {
      adds = 0;
      spills = 0;
      add_fails = 0;
      local_removes = 0;
      steals = 0;
      elements_stolen = 0;
      segments_examined = 0;
      steal_probes = 0;
      sweeps = 0;
      empty_confirms = 0;
      spins = 0;
      hints_published = 0;
      hints_claimed = 0;
      hints_delivered = 0;
      hints_expired = 0;
      fast_pushes = 0;
      locked_pushes = 0;
      fast_pops = 0;
      locked_pops = 0;
      inbox_drains = 0;
      inbox_drained = 0;
      inbox_adds = Stdlib.Atomic.make 0;
      top_cas_retries = Stdlib.Atomic.make 0;
      mpsc_retries = Stdlib.Atomic.make 0;
      batched_steals = 0;
      segs_per_steal = Array.make (bucket_limit + 1) 0;
      elems_per_steal = Array.make (bucket_limit + 1) 0;
      batch_sizes = Array.make (bucket_limit + 1) 0;
      near_probes = 0;
      far_probes = 0;
      near_steals = 0;
      far_steals = 0;
      near_batch_sizes = Array.make (bucket_limit + 1) 0;
      far_batch_sizes = Array.make (bucket_limit + 1) 0;
    }

let bump buckets v =
  let i = if v < 0 then 0 else min v bucket_limit in
  buckets.(i) <- buckets.(i) + 1

let note_add s = s.adds <- s.adds + 1

let note_spill s = s.spills <- s.spills + 1

let note_add_fail s = s.add_fails <- s.add_fails + 1

let note_local_remove s = s.local_removes <- s.local_removes + 1

let note_probe s = s.segments_examined <- s.segments_examined + 1

let note_steal s ~probes ~elements =
  s.steals <- s.steals + 1;
  s.elements_stolen <- s.elements_stolen + elements;
  s.steal_probes <- s.steal_probes + probes;
  bump s.segs_per_steal probes;
  bump s.elems_per_steal elements

let note_sweep s = s.sweeps <- s.sweeps + 1

let note_empty_confirm s = s.empty_confirms <- s.empty_confirms + 1

let note_spin s = s.spins <- s.spins + 1

let note_hint_published s = s.hints_published <- s.hints_published + 1

let note_hint_claimed s = s.hints_claimed <- s.hints_claimed + 1

let note_hint_delivered s = s.hints_delivered <- s.hints_delivered + 1

let note_hint_expired s = s.hints_expired <- s.hints_expired + 1

let note_fast_push s = s.fast_pushes <- s.fast_pushes + 1

let note_locked_push s = s.locked_pushes <- s.locked_pushes + 1

let note_fast_pop s = s.fast_pops <- s.fast_pops + 1

let note_locked_pop s = s.locked_pops <- s.locked_pops + 1

let note_inbox_add s = Stdlib.Atomic.incr s.inbox_adds

let note_top_cas_retry s = Stdlib.Atomic.incr s.top_cas_retries

let note_mpsc_retry s = Stdlib.Atomic.incr s.mpsc_retries

let note_inbox_drain s ~elements =
  s.inbox_drains <- s.inbox_drains + 1;
  s.inbox_drained <- s.inbox_drained + elements

let inbox_adds s = Stdlib.Atomic.get s.inbox_adds

let top_cas_retries s = Stdlib.Atomic.get s.top_cas_retries

let mpsc_retries s = Stdlib.Atomic.get s.mpsc_retries

let inbox_drains s = s.inbox_drains

let inbox_drained s = s.inbox_drained

let note_steal_batch s n =
  if n >= 2 then s.batched_steals <- s.batched_steals + 1;
  bump s.batch_sizes n

let note_probe_locality s ~far =
  if far then s.far_probes <- s.far_probes + 1
  else s.near_probes <- s.near_probes + 1

let note_steal_locality s ~far ~elements =
  if far then begin
    s.far_steals <- s.far_steals + 1;
    bump s.far_batch_sizes elements
  end
  else begin
    s.near_steals <- s.near_steals + 1;
    bump s.near_batch_sizes elements
  end

let removes s = s.local_removes + s.steals

let merge a b =
  let s = create () in
  let blit dst src = Array.iteri (fun i n -> dst.(i) <- dst.(i) + n) src in
  s.adds <- a.adds + b.adds;
  s.spills <- a.spills + b.spills;
  s.add_fails <- a.add_fails + b.add_fails;
  s.local_removes <- a.local_removes + b.local_removes;
  s.steals <- a.steals + b.steals;
  s.elements_stolen <- a.elements_stolen + b.elements_stolen;
  s.segments_examined <- a.segments_examined + b.segments_examined;
  s.steal_probes <- a.steal_probes + b.steal_probes;
  s.sweeps <- a.sweeps + b.sweeps;
  s.empty_confirms <- a.empty_confirms + b.empty_confirms;
  s.spins <- a.spins + b.spins;
  s.hints_published <- a.hints_published + b.hints_published;
  s.hints_claimed <- a.hints_claimed + b.hints_claimed;
  s.hints_delivered <- a.hints_delivered + b.hints_delivered;
  s.hints_expired <- a.hints_expired + b.hints_expired;
  s.fast_pushes <- a.fast_pushes + b.fast_pushes;
  s.locked_pushes <- a.locked_pushes + b.locked_pushes;
  s.fast_pops <- a.fast_pops + b.fast_pops;
  s.locked_pops <- a.locked_pops + b.locked_pops;
  s.inbox_drains <- a.inbox_drains + b.inbox_drains;
  s.inbox_drained <- a.inbox_drained + b.inbox_drained;
  Stdlib.Atomic.set s.inbox_adds (inbox_adds a + inbox_adds b);
  Stdlib.Atomic.set s.top_cas_retries (top_cas_retries a + top_cas_retries b);
  Stdlib.Atomic.set s.mpsc_retries (mpsc_retries a + mpsc_retries b);
  s.batched_steals <- a.batched_steals + b.batched_steals;
  blit s.segs_per_steal a.segs_per_steal;
  blit s.segs_per_steal b.segs_per_steal;
  blit s.elems_per_steal a.elems_per_steal;
  blit s.elems_per_steal b.elems_per_steal;
  blit s.batch_sizes a.batch_sizes;
  blit s.batch_sizes b.batch_sizes;
  s.near_probes <- a.near_probes + b.near_probes;
  s.far_probes <- a.far_probes + b.far_probes;
  s.near_steals <- a.near_steals + b.near_steals;
  s.far_steals <- a.far_steals + b.far_steals;
  blit s.near_batch_sizes a.near_batch_sizes;
  blit s.near_batch_sizes b.near_batch_sizes;
  blit s.far_batch_sizes a.far_batch_sizes;
  blit s.far_batch_sizes b.far_batch_sizes;
  s

let merge_all ts = List.fold_left merge (create ()) ts

let counters s =
  Cpool_metrics.Counters.of_list
    [
      ("adds", s.adds);
      ("spill adds", s.spills);
      ("rejected adds", s.add_fails);
      ("local removes", s.local_removes);
      ("steals", s.steals);
      ("elements stolen", s.elements_stolen);
      ("segments examined", s.segments_examined);
      ("sweeps", s.sweeps);
      ("empty confirmations", s.empty_confirms);
      ("retry spins", s.spins);
      ("hints published", s.hints_published);
      ("hints claimed", s.hints_claimed);
      ("hints delivered", s.hints_delivered);
      ("hints expired", s.hints_expired);
      ("fast-path pushes", s.fast_pushes);
      ("locked pushes", s.locked_pushes);
      ("fast-path pops", s.fast_pops);
      ("locked pops", s.locked_pops);
      ("inbox adds", inbox_adds s);
      ("inbox drains", s.inbox_drains);
      ("inbox drained", s.inbox_drained);
      ("top CAS retries", top_cas_retries s);
      ("mpsc retries", mpsc_retries s);
      ("batched steals", s.batched_steals);
      ("near probes", s.near_probes);
      ("far probes", s.far_probes);
      ("near steals", s.near_steals);
      ("far steals", s.far_steals);
    ]

let sample_of buckets =
  let sample = Cpool_metrics.Sample.create () in
  Array.iteri
    (fun v n ->
      for _ = 1 to n do
        Cpool_metrics.Sample.add_int sample v
      done)
    buckets;
  sample

let segments_per_steal s = sample_of s.segs_per_steal

let elements_per_steal s = sample_of s.elems_per_steal

let steal_batch_sizes s = sample_of s.batch_sizes

let near_steal_batch_sizes s = sample_of s.near_batch_sizes

let far_steal_batch_sizes s = sample_of s.far_batch_sizes

let near_probes s = s.near_probes

let far_probes s = s.far_probes

let near_steals s = s.near_steals

let far_steals s = s.far_steals

let hints_published s = s.hints_published

let hints_claimed s = s.hints_claimed

let hints_delivered s = s.hints_delivered

let hints_expired s = s.hints_expired

let fast_path_ops s = s.fast_pushes + s.fast_pops

(* Spill (inbox) adds are no longer counted here: they are single-CAS
   lock-free pushes now, so only operations that actually took the segment
   mutex — the [fast_path:false] baseline — belong in the locked bucket. *)
let locked_path_ops s = s.locked_pushes + s.locked_pops

let fast_path_fraction s =
  let total = fast_path_ops s + locked_path_ops s in
  if total = 0 then Float.nan else float_of_int (fast_path_ops s) /. float_of_int total

let mean_segments_per_steal s =
  if s.steals = 0 then Float.nan
  else float_of_int s.steal_probes /. float_of_int s.steals

let mean_elements_per_steal s =
  if s.steals = 0 then Float.nan
  else float_of_int s.elements_stolen /. float_of_int s.steals

let steal_fraction s =
  let r = removes s in
  if r = 0 then Float.nan else float_of_int s.steals /. float_of_int r

let table_headers =
  [
    "worker"; "adds"; "spills"; "rejects"; "local rm"; "steals"; "elems stolen";
    "segs/steal"; "elems/steal"; "sweeps"; "confirms"; "spins";
  ]

let table_row name s =
  [
    name;
    string_of_int s.adds;
    string_of_int s.spills;
    string_of_int s.add_fails;
    string_of_int s.local_removes;
    string_of_int s.steals;
    string_of_int s.elements_stolen;
    Cpool_metrics.Render.float_cell (mean_segments_per_steal s);
    Cpool_metrics.Render.float_cell (mean_elements_per_steal s);
    string_of_int s.sweeps;
    string_of_int s.empty_confirms;
    string_of_int s.spins;
  ]

let path_table_headers =
  [
    "segment"; "fast push"; "locked push"; "fast pop"; "locked pop"; "inbox";
    "drains"; "cas retries"; "mpsc retries"; "fast %";
  ]

let mean_batch_size s =
  let total = ref 0 and n = ref 0 in
  Array.iteri
    (fun v k ->
      total := !total + (v * k);
      n := !n + k)
    s.batch_sizes;
  if !n = 0 then Float.nan else float_of_int !total /. float_of_int !n

let path_row name s =
  [
    name;
    string_of_int s.fast_pushes;
    string_of_int s.locked_pushes;
    string_of_int s.fast_pops;
    string_of_int s.locked_pops;
    string_of_int (inbox_adds s);
    string_of_int s.inbox_drains;
    string_of_int (top_cas_retries s);
    string_of_int (mpsc_retries s);
    Cpool_metrics.Render.float_cell (100.0 *. fast_path_fraction s);
  ]

let render_path_table ?title named =
  let rows = List.map (fun (name, s) -> path_row name s) named in
  let rows =
    match named with
    | [] | [ _ ] -> rows
    | _ -> rows @ [ path_row "TOTAL" (merge_all (List.map snd named)) ]
  in
  Cpool_metrics.Render.table ?title ~headers:path_table_headers ~rows ()

let render_table ?title named =
  let rows = List.map (fun (name, s) -> table_row name s) named in
  let rows =
    match named with
    | [] | [ _ ] -> rows
    | _ -> rows @ [ table_row "TOTAL" (merge_all (List.map snd named)) ]
  in
  Cpool_metrics.Render.table ?title ~headers:table_headers ~rows ()

let render ?title s = render_table ?title [ ("all", s) ]
