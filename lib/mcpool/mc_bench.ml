module Workload = Cpool_intf.Workload

type config = {
  kinds : Mc_pool.kind list;
  domain_counts : int list;
  workloads : Workload.t list;
  baseline : bool;
  capacity : int option;
  seed : int;
  trace : bool;
  topo_of : (int -> (Cpool_topology.t, string) result) option;
      (* Resolves a domain count to the topology for that grid column (a
         preset scales with the count; a config file only matches its own).
         When set, the topology cells — aware vs distance-oblivious twins —
         run in addition to the plain grid, into the same artifact. *)
}

let default =
  {
    kinds = [ Mc_pool.Linear ];
    domain_counts = [ 2; 8 ];
    workloads = [ Workload.sufficient; Workload.sparse ];
    baseline = true;
    capacity = None;
    seed = 42;
    trace = false;
    topo_of = None;
  }

type cell = {
  kind : Mc_pool.kind;
  domains : int;
  workload : Workload.t;
  fast_path : bool;
  topo : Cpool_topology.t option;
  aware : bool; (* meaningful only with [topo]: false = oblivious twin *)
}

type result = {
  cell : cell;
  duration : float;
  ops : int;
  ops_attempted : int;
  ops_per_sec : float;
  adds_ok : int;
  removes_ok : int;
  p50_us : float;
  p99_us : float;
  fast_ops : int;
  locked_ops : int;
  fast_fraction : float;
  steals : int;
  batched_steals : int;
  mean_batch : float;
  hints_published : int;
  hints_claimed : int;
  hints_delivered : int;
  hints_expired : int;
  near_steals : int;
  far_steals : int;
  near_probes : int;
  far_probes : int;
  mean_near_batch : float;
  mean_far_batch : float;
  traces : Mc_trace.t list;
}

type tally = {
  mutable t_ops : int;
  mutable t_adds : int;
  mutable t_removes : int;
  t_lat : Cpool_metrics.Sample.t; (* sampled per-op latency, µs *)
}

(* Latency sampling: every [sample_every]-th batch of [batch] ops is timed
   as a group and recorded as µs per op. Group timing is what makes sub-µs
   operations resolve, while a slow steal or lock inside the window still
   lifts that sample into the tail. All timing reads the monotonic
   [Cpool_util.Clock] — the wall clock jumps under NTP steps, which fed
   negative batch latencies into [Sample.add] and moved the run
   deadline. Each worker's sampling phase is drawn from its seeded [Rng]:
   a fixed phase (always the [sample_every]-th batch) aliases with
   periodic steal/backoff cycles and biases the latency distribution. *)
let batch = 16

let sample_every = 8

(* The phase mask below requires it. *)
let () = assert (sample_every > 0 && sample_every land (sample_every - 1) = 0)

let worker pool cell ~seed tally i barrier deadline_ns =
  let rng = Cpool_util.Rng.create (Int64.of_int ((seed * 6007) + i)) in
  let add_threshold = int_of_float (cell.workload.Workload.mix *. 1_000_000.0) in
  let sample_phase = Cpool_util.Rng.int rng sample_every in
  let h = Mc_pool.register_at pool i in
  Atomic.decr barrier;
  while Atomic.get barrier > 0 do
    Domain.cpu_relax ()
  done;
  (* Sparse cells use the blocking remove: the pool runs dry by design, so
     "what does a searcher do about an empty pool" — spin-searching
     (Linear/Random/Tree) vs parking on the hint board (Hinted) — is
     exactly the behaviour under test. Blocking removes can stall until a
     peer adds, so the deadline is checked every batch. Sufficient cells
     keep the non-blocking remove and the sparser deadline check. *)
  let blocking = Workload.sparse_regime cell.workload in
  let deadline_mask = if blocking then 0 else 15 in
  let batches = ref 0 in
  let running = ref true in
  while !running do
    incr batches;
    let timed = (!batches + sample_phase) land (sample_every - 1) = 0 in
    let t0 = if timed then Cpool_util.Clock.now_ns () else 0 in
    for _ = 1 to batch do
      tally.t_ops <- tally.t_ops + 1;
      if Cpool_util.Rng.int rng 1_000_000 < add_threshold then begin
        if Mc_pool.try_add pool h tally.t_ops then tally.t_adds <- tally.t_adds + 1
      end
      else
        match
          if blocking then Mc_pool.remove pool h else Mc_pool.try_remove pool h
        with
        | Some _ -> tally.t_removes <- tally.t_removes + 1
        | None -> ()
    done;
    if timed then begin
      let dt_ns = Cpool_util.Clock.now_ns () - t0 in
      (* A negative delta is impossible on a monotonic source; the guard
         survives the wall-clock fallback on clockless platforms. *)
      if dt_ns >= 0 then
        Cpool_metrics.Sample.add tally.t_lat
          (float_of_int dt_ns /. 1e3 /. float_of_int batch)
    end;
    if !batches land deadline_mask = 0 && Cpool_util.Clock.now_ns () >= deadline_ns
    then running := false
  done;
  Mc_pool.deregister pool h

(* Returns the number of add attempts it made: prefill pushes note paths on
   the segment stats like any other op, so the attempt count must join the
   workers' in the [ops_attempted] accounting. *)
let prefill pool ~capacity ~per_domain domains =
  let quota = match capacity with None -> per_domain | Some c -> min per_domain c in
  for s = 0 to domains - 1 do
    let h = Mc_pool.register_at pool s in
    for j = 1 to quota do
      ignore (Mc_pool.try_add pool h j)
    done;
    Mc_pool.deregister pool h
  done;
  quota * domains

let run_cell ?seconds ?(capacity = None) ?(seed = 42) ?(trace = false) cell =
  if cell.domains <= 0 then invalid_arg "Mc_bench.run_cell: domains must be positive";
  if not (Workload.closed cell.workload) then
    invalid_arg "Mc_bench.run_cell: the throughput harness is closed-loop only";
  let seconds =
    match seconds with Some s -> s | None -> cell.workload.Workload.duration_s
  in
  if seconds <= 0.0 then invalid_arg "Mc_bench.run_cell: seconds must be positive";
  let pool : int Mc_pool.t =
    Mc_pool.of_config
      {
        Mc_pool.Config.default with
        segments = cell.domains;
        kind = cell.kind;
        capacity;
        fast_path = cell.fast_path;
        trace;
        topology = cell.topo;
        topology_aware = cell.aware;
      }
  in
  let prefill_attempts =
    prefill pool ~capacity ~per_domain:cell.workload.Workload.initial cell.domains
  in
  let tallies =
    Array.init cell.domains (fun _ ->
        { t_ops = 0; t_adds = 0; t_removes = 0; t_lat = Cpool_metrics.Sample.create () })
  in
  let barrier = Atomic.make cell.domains in
  let t0_ns = Cpool_util.Clock.now_ns () in
  let deadline_ns = t0_ns + Cpool_util.Clock.ns_of_s seconds in
  let ds =
    List.init cell.domains (fun i ->
        Domain.spawn (fun () -> worker pool cell ~seed tallies.(i) i barrier deadline_ns))
  in
  List.iter Domain.join ds;
  let duration = Cpool_util.Clock.elapsed_s ~since_ns:t0_ns in
  let seg = Mc_stats.merge_all (Array.to_list (Mc_pool.segment_stats pool)) in
  (* Hint counters live on the handle side; [Mc_pool.stats] merges every
     handle ever issued (the workers just deregistered, so it is exact). *)
  let all = Mc_pool.stats pool in
  let lat =
    Array.fold_left
      (fun acc t -> Cpool_metrics.Sample.merge acc t.t_lat)
      (Cpool_metrics.Sample.create ())
      tallies
  in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let ops = sum (fun t -> t.t_ops) in
  {
    cell;
    duration;
    ops;
    ops_attempted = ops + prefill_attempts;
    ops_per_sec = float_of_int ops /. Float.max 1e-9 duration;
    adds_ok = sum (fun t -> t.t_adds);
    removes_ok = sum (fun t -> t.t_removes);
    p50_us = Cpool_metrics.Sample.median lat;
    p99_us = Cpool_metrics.Sample.percentile lat 99.0;
    fast_ops = Mc_stats.fast_path_ops seg;
    locked_ops = Mc_stats.locked_path_ops seg;
    fast_fraction = Mc_stats.fast_path_fraction seg;
    steals = Mc_pool.steals pool;
    (* Batch telemetry lives on the thief's handle now, so it comes from
       the merged handle stats, not the (victim) segment stats. *)
    batched_steals =
      Cpool_metrics.Counters.get (Mc_stats.counters all) "batched steals";
    mean_batch = Cpool_metrics.Sample.mean (Mc_stats.steal_batch_sizes all);
    hints_published = Mc_stats.hints_published all;
    hints_claimed = Mc_stats.hints_claimed all;
    hints_delivered = Mc_stats.hints_delivered all;
    hints_expired = Mc_stats.hints_expired all;
    near_steals = Mc_stats.near_steals all;
    far_steals = Mc_stats.far_steals all;
    near_probes = Mc_stats.near_probes all;
    far_probes = Mc_stats.far_probes all;
    mean_near_batch = Cpool_metrics.Sample.mean (Mc_stats.near_steal_batch_sizes all);
    mean_far_batch = Cpool_metrics.Sample.mean (Mc_stats.far_steal_batch_sizes all);
    traces = Mc_pool.traces pool;
  }

let run config =
  let protocols = if config.baseline then [ true; false ] else [ true ] in
  let grid =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun domains ->
            List.concat_map
              (fun workload ->
                List.map
                  (fun fast_path ->
                    run_cell ~capacity:config.capacity ~seed:config.seed
                      ~trace:config.trace
                      { kind; domains; workload; fast_path; topo = None; aware = true })
                  protocols)
              config.workloads)
          config.domain_counts)
      config.kinds
  in
  match config.topo_of with
  | None -> grid
  | Some topo_of ->
    (* Topology cells: always on the lock-free path; the twin dimension is
       aware vs distance-oblivious instead of fast vs mutex, so the
       comparison isolates the probe-ordering policy on the same emulated
       machine. The CLI pre-validates the spec, so a resolution failure
       here is a driver bug, not user error. *)
    let policies = if config.baseline then [ true; false ] else [ true ] in
    grid
    @ List.concat_map
        (fun kind ->
          List.concat_map
            (fun domains ->
              let topo =
                match topo_of domains with
                | Ok t -> t
                | Error msg -> failwith ("Mc_bench.run: " ^ msg)
              in
              List.concat_map
                (fun workload ->
                  List.map
                    (fun aware ->
                      run_cell ~capacity:config.capacity ~seed:config.seed
                        ~trace:config.trace
                        { kind; domains; workload; fast_path = true;
                          topo = Some topo; aware })
                    policies)
                config.workloads)
            config.domain_counts)
        config.kinds

let cell_label c =
  Printf.sprintf "%s/%dd/%s/%s%s" (Mc_stress.kind_name c.kind) c.domains
    (Workload.mix_label c.workload)
    (if c.fast_path then "fast" else "mutex")
    (match c.topo with
    | None -> ""
    | Some _ -> if c.aware then "/topo" else "/topo-blind")

let to_chrome results =
  Mc_trace.to_chrome_labeled
    (List.map (fun r -> (cell_label r.cell, r.traces)) results)

let render results =
  let buf = Buffer.create 1024 in
  let row r =
    [
      cell_label r.cell;
      Printf.sprintf "%.0f" r.ops_per_sec;
      Cpool_metrics.Render.float_cell r.p50_us;
      Cpool_metrics.Render.float_cell r.p99_us;
      Cpool_metrics.Render.float_cell (100.0 *. r.fast_fraction);
      string_of_int r.steals;
      string_of_int r.batched_steals;
      Cpool_metrics.Render.float_cell r.mean_batch;
      string_of_int r.hints_delivered;
    ]
  in
  Buffer.add_string buf
    (Cpool_metrics.Render.table ~title:"mc-throughput"
       ~headers:
         [
           "cell"; "ops/s"; "p50 µs"; "p99 µs"; "fast %"; "steals"; "batched";
           "elems/batch"; "deliv";
         ]
       ~rows:(List.map row results) ());
  (* Speedups: pair each fast cell with its all-mutex twin. *)
  let twins =
    List.filter_map
      (fun r ->
        if not r.cell.fast_path then None
        else
          List.find_opt
            (fun b -> (not b.cell.fast_path) && b.cell = { r.cell with fast_path = false })
            results
          |> Option.map (fun b -> (r, b)))
      results
  in
  if twins <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun (f, b) ->
        Buffer.add_string buf
          (Printf.sprintf "speedup %s: %.2fx over the all-mutex baseline (%.0f vs %.0f ops/s)\n"
             (cell_label { f.cell with fast_path = true })
             (f.ops_per_sec /. Float.max 1e-9 b.ops_per_sec)
             f.ops_per_sec b.ops_per_sec))
      twins
  end;
  (* The hinted hand-off's headline: Hinted vs Linear on otherwise
     identical cells (the paper's §5 comparison, sparse mix being the
     regime it targets). *)
  let hinted_vs_linear =
    List.filter_map
      (fun r ->
        if r.cell.kind <> Cpool_intf.Hinted then None
        else
          List.find_opt (fun l -> l.cell = { r.cell with kind = Cpool_intf.Linear }) results
          |> Option.map (fun l -> (r, l)))
      results
  in
  if hinted_vs_linear <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun (h, l) ->
        Buffer.add_string buf
          (Printf.sprintf "hinted vs linear %dd/%s/%s: %.2fx (%.0f vs %.0f ops/s)\n"
             h.cell.domains (Workload.mix_label h.cell.workload)
             (if h.cell.fast_path then "fast" else "mutex")
             (h.ops_per_sec /. Float.max 1e-9 l.ops_per_sec)
             h.ops_per_sec l.ops_per_sec))
      hinted_vs_linear
  end;
  (* Locality telemetry and the topology headline: aware vs the
     distance-oblivious twin on the same emulated machine. *)
  let topo_results = List.filter (fun r -> r.cell.topo <> None) results in
  if topo_results <> [] then begin
    Buffer.add_char buf '\n';
    let trow r =
      [
        cell_label r.cell;
        string_of_int r.near_probes;
        string_of_int r.far_probes;
        string_of_int r.near_steals;
        string_of_int r.far_steals;
        Cpool_metrics.Render.float_cell r.mean_near_batch;
        Cpool_metrics.Render.float_cell r.mean_far_batch;
      ]
    in
    Buffer.add_string buf
      (Cpool_metrics.Render.table ~title:"mc-topology near/far"
         ~headers:
           [
             "cell"; "near probes"; "far probes"; "near steals"; "far steals";
             "elems/near"; "elems/far";
           ]
         ~rows:(List.map trow topo_results) ());
    let topo_twins =
      List.filter_map
        (fun r ->
          if not r.cell.aware then None
          else
            List.find_opt (fun b -> b.cell = { r.cell with aware = false })
              topo_results
            |> Option.map (fun b -> (r, b)))
        topo_results
    in
    if topo_twins <> [] then begin
      Buffer.add_char buf '\n';
      List.iter
        (fun (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf
               "topology-aware %s: %.2fx over the distance-oblivious twin (%.0f vs %.0f ops/s)\n"
               (cell_label a.cell)
               (a.ops_per_sec /. Float.max 1e-9 b.ops_per_sec)
               a.ops_per_sec b.ops_per_sec))
        topo_twins
    end
  end;
  Buffer.contents buf

let json_of_result r =
  let topo_fields =
    match r.cell.topo with
    | None -> []
    | Some topo ->
      [
        ("topology", Cpool_util.Json.Str (Cpool_topology.label topo));
        ("topology_aware", Cpool_util.Json.Bool r.cell.aware);
        ("near_steals", Cpool_util.Json.Int r.near_steals);
        ("far_steals", Cpool_util.Json.Int r.far_steals);
        ("near_probes", Cpool_util.Json.Int r.near_probes);
        ("far_probes", Cpool_util.Json.Int r.far_probes);
        ("mean_near_batch", Cpool_util.Json.Float r.mean_near_batch);
        ("mean_far_batch", Cpool_util.Json.Float r.mean_far_batch);
      ]
  in
  Cpool_util.Json.Assoc
    ([
      ("kind", Cpool_util.Json.Str (Mc_stress.kind_name r.cell.kind));
      ("domains", Cpool_util.Json.Int r.cell.domains);
      ("mix", Cpool_util.Json.Str (Workload.mix_label r.cell.workload));
      ("workload", Cpool_util.Json.Str (Workload.to_string r.cell.workload));
      ("fast_path", Cpool_util.Json.Bool r.cell.fast_path);
      ("duration_s", Cpool_util.Json.Float r.duration);
      ("ops", Cpool_util.Json.Int r.ops);
      ("ops_attempted", Cpool_util.Json.Int r.ops_attempted);
      ("ops_per_sec", Cpool_util.Json.Float r.ops_per_sec);
      ("adds_ok", Cpool_util.Json.Int r.adds_ok);
      ("removes_ok", Cpool_util.Json.Int r.removes_ok);
      ("p50_us", Cpool_util.Json.Float r.p50_us);
      ("p99_us", Cpool_util.Json.Float r.p99_us);
      ("fast_ops", Cpool_util.Json.Int r.fast_ops);
      ("locked_ops", Cpool_util.Json.Int r.locked_ops);
      ("fast_fraction", Cpool_util.Json.Float r.fast_fraction);
      ("steals", Cpool_util.Json.Int r.steals);
      ("batched_steals", Cpool_util.Json.Int r.batched_steals);
      ("mean_batch", Cpool_util.Json.Float r.mean_batch);
      ("hints_published", Cpool_util.Json.Int r.hints_published);
      ("hints_claimed", Cpool_util.Json.Int r.hints_claimed);
      ("hints_delivered", Cpool_util.Json.Int r.hints_delivered);
      ("hints_expired", Cpool_util.Json.Int r.hints_expired);
    ]
    @ topo_fields)

let to_json config results =
  Cpool_util.Json.Assoc
    [
      ("benchmark", Cpool_util.Json.Str "mc-throughput");
      ( "workloads",
        Cpool_util.Json.List
          (List.map
             (fun w -> Cpool_util.Json.Str (Workload.to_string w))
             config.workloads) );
      ( "capacity",
        match config.capacity with
        | None -> Cpool_util.Json.Null
        | Some c -> Cpool_util.Json.Int c );
      ("seed", Cpool_util.Json.Int config.seed);
      ("cells", Cpool_util.Json.List (List.map json_of_result results));
    ]

let validate_json doc =
  let module J = Cpool_util.Json in
  let ( let* ) = Result.bind in
  let field obj name =
    match J.member name obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let number obj name =
    let* v = field obj name in
    match J.to_number v with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "field %S is not a number" name)
  in
  let* bench = field doc "benchmark" in
  let* () =
    match bench with
    | J.Str "mc-throughput" -> Ok ()
    | _ -> Error "field \"benchmark\" is not \"mc-throughput\""
  in
  let* cells = field doc "cells" in
  match J.to_list cells with
  | None -> Error "field \"cells\" is not a list"
  | Some cs ->
    let rec check i = function
      | [] -> Ok (List.length cs)
      | c :: rest ->
        let* () =
          List.fold_left
            (fun acc name ->
              let* () = acc in
              Result.map_error
                (fun e -> Printf.sprintf "cell %d: %s" i e)
                (number c name))
            (Ok ())
            [
              "domains"; "ops"; "ops_attempted"; "ops_per_sec"; "fast_ops";
              "locked_ops"; "steals"; "hints_published"; "hints_claimed";
              "hints_delivered"; "hints_expired";
            ]
        in
        (* Counter-accounting identities: the path counters count a subset
           of the attempted operations, so an artifact where they exceed
           the attempts is self-contradictory (the seed shipped one such
           cell: fast_ops > ops). *)
        let get name =
          match J.member name c with Some v -> J.to_number v | None -> None
        in
        let* () =
          match (get "fast_ops", get "locked_ops", get "ops", get "ops_attempted") with
          | Some f, Some l, Some o, Some a ->
            if f +. l > a then
              Error
                (Printf.sprintf
                   "cell %d: fast_ops %.0f + locked_ops %.0f > ops_attempted %.0f" i f
                   l a)
            else if o > a then
              Error (Printf.sprintf "cell %d: ops %.0f > ops_attempted %.0f" i o a)
            else Ok ()
          | _ -> Error (Printf.sprintf "cell %d: path counters are not numbers" i)
        in
        let* () =
          match J.member "fast_path" c with
          | Some (J.Bool _) -> Ok ()
          | Some _ | None ->
            Error (Printf.sprintf "cell %d: missing boolean \"fast_path\"" i)
        in
        (* Topology cells must carry the locality split, and it must tile
           the steal count exactly: every steal is near or far, nothing
           else. *)
        let* () =
          match J.member "topology" c with
          | None -> Ok ()
          | Some _ -> (
            let* () =
              match J.member "topology_aware" c with
              | Some (J.Bool _) -> Ok ()
              | Some _ | None ->
                Error
                  (Printf.sprintf "cell %d: missing boolean \"topology_aware\"" i)
            in
            let* () =
              List.fold_left
                (fun acc name ->
                  let* () = acc in
                  Result.map_error
                    (fun e -> Printf.sprintf "cell %d: %s" i e)
                    (number c name))
                (Ok ())
                [ "near_steals"; "far_steals"; "near_probes"; "far_probes" ]
            in
            match (get "near_steals", get "far_steals", get "steals") with
            | Some near, Some far, Some steals ->
              if near +. far <> steals then
                Error
                  (Printf.sprintf
                     "cell %d: near_steals %.0f + far_steals %.0f <> steals %.0f"
                     i near far steals)
              else Ok ()
            | _ ->
              Error (Printf.sprintf "cell %d: locality counters are not numbers" i))
        in
        check (i + 1) rest
    in
    check 0 cs
