(** Per-worker telemetry for the multicore pool.

    Each {!Mc_pool.handle} owns one [Mc_stats.t] and bumps plain mutable
    counters on the hot path — no atomics, no cross-domain sharing, so the
    instrumentation costs a handful of unshared stores per operation. The
    read side ({!merge}, {!counters}, the samples) converts snapshots into
    {!Cpool_metrics} values on demand, giving the real pool the same steal
    statistics the paper reports for the simulator: steal frequency,
    segments examined per steal, elements stolen per steal.

    Reading another domain's live stats is safe (all fields are word-sized)
    but yields a racy snapshot; merge after the workers have quiesced for
    exact totals. Per-steal distributions are bucketed exactly up to
    {!bucket_limit} and clamp above it — the means come from exact running
    totals and are never clamped. *)

type t

val bucket_limit : int
(** Largest per-steal observation recorded exactly in the distributions
    (larger values clamp into the top bucket). *)

val create : unit -> t

(** {2 Hot-path recording (called by [Mc_pool])} *)

val note_add : t -> unit
(** A successful add into the worker's own segment. *)

val note_spill : t -> unit
(** A successful add that spilled to another segment (bounded pools). *)

val note_add_fail : t -> unit
(** An add rejected because every segment was full. *)

val note_local_remove : t -> unit
(** A successful remove from the worker's own segment. *)

val note_probe : t -> unit
(** One remote segment examined during a steal search. *)

val note_steal : t -> probes:int -> elements:int -> unit
(** A successful steal that examined [probes] segments since the hunt
    began and obtained [elements] elements (the returned one plus the
    banked remainder). *)

val note_sweep : t -> unit
(** One full confirmation sweep over every segment. *)

val note_empty_confirm : t -> unit
(** A blocking remove that concluded the pool empty. *)

val note_spin : t -> unit
(** One polite retry ([Domain.cpu_relax] or a parked sleep) while waiting
    for quiescence or a hint delivery. *)

(** {2 Hint-board counters (the [Hinted] kind)}

    Published and expired are bumped only by the parking searcher's own
    handle; claimed and delivered only by the claiming adder's handle. At
    quiescence [published = claimed + expired] (every hint is eventually
    claimed by an adder or retracted by its searcher), and
    [delivered <= claimed] (a claim against a full bounded segment aborts
    the delivery). *)

val note_hint_published : t -> unit
(** A searcher that swept every segment empty published a hint and parked. *)

val note_hint_claimed : t -> unit
(** An adder CAS-claimed a published hint. *)

val note_hint_delivered : t -> unit
(** A claimed hint's element landed in the parked searcher's segment. *)

val note_hint_expired : t -> unit
(** A searcher retracted its own hint unclaimed (backoff round, local work
    arrived, or quiescence confirmation). *)

(** {2 Segment-side path counters (called by [Mc_segment])}

    These record which protocol path each ring operation took, making the
    lock-free fast path observable rather than asserted. Fast/locked
    push/pop and the drain counters are bumped only by the segment's owner
    domain (plain stores); inbox adds and the CAS-retry counters are bumped
    by whichever domain performed the operation and are backed by real
    atomics, so the lock-free spill and steal paths can report without a
    serialization point to hide behind. *)

val note_fast_push : t -> unit
(** An owner push that published with atomics only (no mutex). *)

val note_locked_push : t -> unit
(** An owner push (or batch) under the all-mutex baseline mode
    ([fast_path:false]). *)

val note_fast_pop : t -> unit
(** A successful owner pop completed without the mutex. *)

val note_locked_pop : t -> unit
(** A successful owner pop under the all-mutex baseline mode. *)

val note_inbox_add : t -> unit
(** A foreign (spill) add CAS-pushed onto the segment's MPSC inbox.
    Atomic: any domain may spill. *)

val note_top_cas_retry : t -> unit
(** A failed CAS claim of the ring's [top] cursor (contended pop or steal);
    the operation retried. Atomic: owner and stealers race on it. *)

val note_mpsc_retry : t -> unit
(** A failed CAS on the MPSC inbox stack (push or steal-pop); the operation
    retried. Atomic: any domain. *)

val note_inbox_drain : t -> elements:int -> unit
(** The owner swapped the whole inbox stack into the ring in one exchange,
    moving [elements] elements. Owner-only. *)

val note_steal_batch : t -> int -> unit
(** [note_steal_batch s n] records one steal transfer that moved [n >= 1]
    elements in a single batched claim; [n >= 2] also counts as a batched
    steal. Bumped on the {e thief's own handle} (single writer), not the
    victim segment. *)

val note_probe_locality : t -> far:bool -> unit
(** One steal probe classified by the pool topology: [far] iff the probed
    segment is outside the prober's locality group. Thief's own handle. *)

val note_steal_locality : t -> far:bool -> elements:int -> unit
(** One successful steal transfer of [elements] elements classified by the
    pool topology, also bucketed into the near/far batch-size
    distributions. Thief's own handle. *)

(** {2 Reading and merging} *)

val removes : t -> int
(** [removes s] is all successful removes: local + stolen. *)

val merge : t -> t -> t
(** [merge a b] is a fresh sum of both; neither argument is modified. *)

val merge_all : t list -> t

val counters : t -> Cpool_metrics.Counters.t
(** Every scalar counter as a merge-friendly labelled set. *)

val segments_per_steal : t -> Cpool_metrics.Sample.t
(** Distribution of segments examined per successful steal (the paper's
    Section 4.2 metric), reconstructed from the buckets. *)

val elements_per_steal : t -> Cpool_metrics.Sample.t
(** Distribution of elements obtained per steal (Figure 7's metric). *)

val steal_batch_sizes : t -> Cpool_metrics.Sample.t
(** Distribution of elements moved per single batched steal transfer,
    recorded on the victim segment's side. *)

val near_probes : t -> int

val far_probes : t -> int

val near_steals : t -> int

val far_steals : t -> int
(** Locality-classified probe/steal counts; all zero unless the pool was
    created with a topology. [near_steals + far_steals = steals] and
    [near_probes + far_probes] equals the total probe count whenever a
    topology is present. *)

val near_steal_batch_sizes : t -> Cpool_metrics.Sample.t

val far_steal_batch_sizes : t -> Cpool_metrics.Sample.t
(** Distance-bucketed batch telemetry: distribution of elements moved per
    steal, split by whether the victim was in the thief's locality group. *)

val hints_published : t -> int

val hints_claimed : t -> int

val hints_delivered : t -> int

val hints_expired : t -> int

val fast_path_ops : t -> int
(** Owner operations completed without the mutex. *)

val locked_path_ops : t -> int
(** Operations that took the segment mutex — only the [fast_path:false]
    baseline produces these now. Inbox adds are single-CAS lock-free and no
    longer count as locked. *)

val fast_path_fraction : t -> float
(** [fast_path_ops / (fast_path_ops + locked_path_ops)]; [nan] when no path
    was recorded. *)

val inbox_adds : t -> int
(** Successful MPSC inbox pushes (foreign spill adds). *)

val inbox_drains : t -> int
(** Owner exchange-drains of the inbox into the ring. *)

val inbox_drained : t -> int
(** Elements moved by those drains. *)

val top_cas_retries : t -> int
(** Failed CAS claims of the ring's [top] cursor. *)

val mpsc_retries : t -> int
(** Failed CASes on the MPSC inbox stack. *)

val mean_batch_size : t -> float
(** Mean elements moved per steal transfer ([nan] with none recorded). *)

val mean_segments_per_steal : t -> float
(** Exact mean from running totals ([nan] with no steals). *)

val mean_elements_per_steal : t -> float

val steal_fraction : t -> float
(** Fraction of successful removes that required a steal ([nan] with no
    removes). *)

val render : ?title:string -> t -> string
(** One-row summary table via {!Cpool_metrics.Render}. *)

val render_table : ?title:string -> (string * t) list -> string
(** Per-worker telemetry table, one row per named stats plus a TOTAL row
    when there are several. *)

val render_path_table : ?title:string -> (string * t) list -> string
(** Fast-path/locked-path table (pushes, pops, inbox adds/drains, CAS
    retries, fast-path percentage), one row per named stats — used with
    per-segment stats, where these counters live. *)
