(** Per-handle, lock-free event tracer for the multicore pool.

    {!Mc_stats} says {e how many} steals, hints and spills a run made;
    this module says {e when}. Each {!Mc_pool} handle owns one tracer: a
    fixed-capacity ring of [(monotonic_ns, tag, a1, a2)] records written
    with plain unshared stores by the handle's domain only — the same
    single-writer discipline as {!Mc_stats}, so recording allocates
    nothing and takes no lock (Blelloch-Wei-style constant-time per-thread
    slots). Timestamps come from {!Cpool_util.Clock}.

    When the ring is full the oldest record is overwritten and a drop
    counter advances — truncation is never silent ({!dropped}), and the
    per-tag running totals ({!count}, {!arg_total}) keep counting through
    overflow, so event-derived steal/hint counts reconcile exactly with
    {!Mc_stats} no matter how small the ring was.

    A disabled tracer ({!disabled}) records nothing: {!record} checks one
    flag and returns, so untraced runs pay a single predictable branch per
    recording site.

    After quiescence, {!merge} sorts the per-domain rings into one
    timeline, {!to_chrome} emits Chrome trace-event JSON (one [tid] track
    per domain; loadable in Perfetto), and {!size_series} rebuilds the
    simulator-compatible segment-size-over-time {!Cpool_metrics.Trace.t}
    so the paper's Figures 3-6 can be drawn from real runs. *)

(** What happened. The two integer payloads [a1]/[a2] per tag:
    - [Add], [Remove], [Spill]: segment touched, its size after the op;
    - [Steal_probe]: segment examined, its observed size;
    - [Steal_claim]: victim segment, elements taken (kept + banked);
    - [Steal_transfer]: thief's own segment, elements banked into it;
    - [Sweep]: the sweeper's slot, 0;
    - [Hint_publish], [Hint_expire], [Park], [Wake]: the searcher's slot, 0
      (for [Park]: the poll budget this round);
    - [Hint_claim], [Hint_deliver]: the claimed (parked searcher's) slot, 0;
    - [Mpsc_push]: the target segment of a lock-free spill push, 0;
    - [Mpsc_drain]: the owner's segment, elements folded from the inbox
      into the ring by that exchange-drain;
    - [Far_probe]: segment probed outside the prober's locality group, the
      emulated remote latency charged for it in ns (only emitted when the
      pool has a topology; one per far [Steal_probe]). *)
type tag =
  | Add
  | Remove
  | Spill
  | Steal_probe
  | Steal_claim
  | Steal_transfer
  | Sweep
  | Hint_publish
  | Hint_claim
  | Hint_deliver
  | Hint_expire
  | Park
  | Wake
  | Mpsc_push
  | Mpsc_drain
  | Far_probe

val all_tags : tag list

val tag_name : tag -> string
(** Stable kebab-case name (the Chrome event [name] field). *)

type t

val create : ?capacity:int -> domain:int -> unit -> t
(** [create ~domain ()] is an enabled tracer whose events carry [domain]
    as their timeline track (the handle's slot). [capacity] (default
    [8192]) is rounded up to a power of two. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val disabled : t
(** The shared no-op tracer: {!record} on it stores nothing, and every
    reader sees an empty, zero-count tracer. *)

val enabled : t -> bool

val domain : t -> int

val capacity : t -> int
(** Ring slots ([0] for {!disabled}). *)

val record : t -> tag -> a1:int -> a2:int -> unit
(** Stamp {!Cpool_util.Clock.now_ns} and append one record, overwriting
    the oldest when full. Single writer: only the owning domain may call
    it. No allocation, no lock, one enabled-flag branch when disabled. *)

val recorded : t -> int
(** Total records ever written (monotonic; survives overflow). *)

val dropped : t -> int
(** Records overwritten by ring overflow ([recorded - capacity] when
    positive). *)

val count : t -> tag -> int
(** Drop-proof running total of records with this tag. *)

val arg_total : t -> tag -> int
(** Drop-proof running sum of the [a2] payloads of this tag — e.g.
    [arg_total t Steal_claim] is the total elements this handle stole. *)

type event = {
  ts_ns : int;  (** {!Cpool_util.Clock} monotonic stamp. *)
  ev_domain : int;  (** The recording tracer's {!domain}. *)
  tag : tag;
  a1 : int;
  a2 : int;
}

val events : t -> event list
(** Surviving ring contents, oldest first (at most {!capacity}; the newest
    {!capacity} of {!recorded}). Read after the owner quiesces. *)

val merge : t list -> event list
(** All surviving events of every tracer, sorted by timestamp (ties by
    domain) into one timeline. *)

val counts : t list -> (tag * int) list
(** Summed drop-proof {!count} per tag over the tracers, every tag listed. *)

val arg_totals : t list -> (tag * int) list
(** Summed drop-proof {!arg_total} per tag. *)

val total_recorded : t list -> int

val total_dropped : t list -> int

(** {2 Exporters} *)

val to_chrome : ?pid:int -> t list -> Cpool_util.Json.t
(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope):
    every merged event becomes an instant event ([ph = "i"]) on track
    [tid = domain] of process [pid] (default [1]), with [ts] in
    microseconds rebased to the earliest event; size-carrying tags
    ([Add]/[Remove]/[Spill]/[Steal_probe]) additionally emit a counter
    event ([ph = "C"], name ["seg<i> size"]) so Perfetto draws the
    segment-size-over-time curves directly. Load via [ui.perfetto.dev]. *)

val to_chrome_groups : (int * t list) list -> Cpool_util.Json.t
(** Like {!to_chrome} for several pools in one file: each [(pid, tracers)]
    group becomes one Chrome process (the throughput benchmark maps one
    grid cell per pid). *)

val to_chrome_labeled : (string * t list) list -> Cpool_util.Json.t
(** {!to_chrome_groups} with pids assigned [1..n] in order and a
    [process_name] metadata event per group, so Perfetto shows each
    group's label (e.g. a benchmark cell name). *)

val validate_chrome : Cpool_util.Json.t -> (int, string) Stdlib.result
(** Structural check of a parsed Chrome trace document (the [json-check]
    subcommand): every entry of ["traceEvents"] must carry [name]/[ph]
    strings and numeric [ts]/[pid]/[tid]. Returns the event count. *)

val size_series : segments:int -> t list -> Cpool_metrics.Trace.t
(** Replay the merged size observations ([Add]/[Remove]/[Spill]/
    [Steal_probe]) into a simulator-compatible {!Cpool_metrics.Trace.t}
    (time in seconds from the first event), ready for
    {!Cpool_metrics.Trace.grid} and the Figures 3-6 strip charts. Raises
    [Invalid_argument] if an event names a segment [>= segments]. *)
