module Workload = Cpool_intf.Workload

(* Sojourn histograms: log-scaled from 0.1 µs to 10 s, 20 bins per decade.
   Every domain records into its own histogram; they merge after the join
   and percentiles come out of the buckets, so no run ever stores samples. *)
let sojourn_lo_us = 0.1

let sojourn_hi_us = 1e7

let sojourn_bins = 160

let sojourn_histogram () =
  Cpool_metrics.Histogram.create_log ~lo:sojourn_lo_us ~hi:sojourn_hi_us
    ~bins:sojourn_bins

module Arrival = struct
  type spec =
    | Poisson of { mean_gap_ns : float }
    | Bursty of {
        burst_gap_ns : float; (* mean gap while a burst is on *)
        on_mean_ns : float;
        off_mean_ns : float;
        mutable window_left_ns : float; (* rest of the current on-window *)
      }

  type t = { rng : Cpool_util.Rng.t; spec : spec }

  (* Exponential with the given mean; [1.0 -. u] keeps the log argument in
     (0, 1] so the draw is always finite. *)
  let exp_draw rng mean = -.mean *. log (1.0 -. Cpool_util.Rng.float rng 1.0)

  let create (a : Workload.arrival) ~rate ~rng =
    if not (rate > 0.0) then
      invalid_arg "Mc_siege.Arrival.create: rate must be positive";
    match a with
    | Workload.Closed ->
      invalid_arg "Mc_siege.Arrival.create: closed-loop workload"
    | Workload.Poisson _ -> { rng; spec = Poisson { mean_gap_ns = 1e9 /. rate } }
    | Workload.Bursty { on_ms; off_ms; _ } ->
      (* [rate] is the long-run average, so while a burst is on the
         instantaneous rate is scaled by the duty cycle's inverse. *)
      let on_mean_ns = on_ms *. 1e6 and off_mean_ns = off_ms *. 1e6 in
      let burst_rate = rate *. (on_mean_ns +. off_mean_ns) /. on_mean_ns in
      {
        rng;
        spec =
          Bursty
            {
              burst_gap_ns = 1e9 /. burst_rate;
              on_mean_ns;
              off_mean_ns;
              window_left_ns = exp_draw rng on_mean_ns;
            };
      }

  let next_gap_ns t =
    match t.spec with
    | Poisson { mean_gap_ns } ->
      max 1 (int_of_float (exp_draw t.rng mean_gap_ns))
    | Bursty b ->
      let gap = ref 0.0 in
      let arrival_gap = ref (exp_draw t.rng b.burst_gap_ns) in
      while !arrival_gap > b.window_left_ns do
        (* The on-window closes before this arrival lands: spend the rest
           of the window plus an off sojourn, then redraw from the start of
           the next window — the exponential is memoryless, so redrawing
           keeps the within-burst process Poisson. *)
        gap := !gap +. b.window_left_ns +. exp_draw t.rng b.off_mean_ns;
        b.window_left_ns <- exp_draw t.rng b.on_mean_ns;
        arrival_gap := exp_draw t.rng b.burst_gap_ns
      done;
      b.window_left_ns <- b.window_left_ns -. !arrival_gap;
      max 1 (int_of_float (gap.contents +. !arrival_gap))
end

type config = {
  pool : Mc_pool.Config.t;
  workload : Workload.t;
  seed : int;
  p99_bound_us : float;
  max_rate : float;
  bisect_steps : int;
}

let default =
  {
    pool = { Mc_pool.Config.default with segments = 4 };
    workload = Workload.siege;
    seed = 42;
    p99_bound_us = 10_000.0;
    max_rate = 1e6;
    bisect_steps = 3;
  }

type point = {
  offered : float; (* arrivals/s across all producers *)
  duration : float;
  generated : int;
  completed : int;
  rejected : int;
  backlog : int; (* pool size at the deadline instant *)
  lagged : int; (* arrivals the generator delivered > 5 ms late *)
  throughput : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  broken : bool;
}

type outcome = {
  config : config;
  points : point list; (* ascending offered load *)
  saturation_rate : float option; (* lowest broken offered load *)
  max_good_rate : float option; (* highest offered load that held *)
}

type role = Producer | Consumer | Both

let roles ~segments (arrangement : Workload.arrangement) =
  match arrangement with
  | Workload.Uniform -> Array.make segments Both
  | Workload.Balanced k ->
    if k >= segments then
      invalid_arg "Mc_siege.run: balanced producers must leave a consumer";
    let r = Array.make segments Consumer in
    (* Spread the producers evenly around the ring, so with a topology they
       land across locality groups. *)
    for j = 0 to k - 1 do
      r.(j * segments / k) <- Producer
    done;
    r
  | Workload.Unbalanced k ->
    if k >= segments then
      invalid_arg "Mc_siege.run: unbalanced producers must leave a consumer";
    let r = Array.make segments Consumer in
    (* Pack them into the contiguous low slots — one locality group when
       the topology has groups of that size (the paper's skewed case). *)
    for j = 0 to k - 1 do
      r.(j) <- Producer
    done;
    r

let validate cfg =
  if Workload.closed cfg.workload then
    invalid_arg "Mc_siege.run: the siege harness is open-loop only";
  ignore (roles ~segments:cfg.pool.Mc_pool.Config.segments cfg.workload.arrangement);
  if not (cfg.p99_bound_us > 0.0) then
    invalid_arg "Mc_siege.run: p99_bound_us must be positive";
  if cfg.bisect_steps < 0 then
    invalid_arg "Mc_siege.run: bisect_steps must be non-negative";
  match Workload.offered_rate cfg.workload with
  | Some r when r > cfg.max_rate ->
    invalid_arg "Mc_siege.run: the workload's rate exceeds max_rate"
  | Some _ -> ()
  | None -> invalid_arg "Mc_siege.run: the siege harness is open-loop only"

type tally = {
  mutable s_generated : int;
  mutable s_rejected : int;
  mutable s_lagged : int;
  mutable s_completed : int;
}

let lag_slack_ns = 5_000_000

(* One domain per segment. Producers run the absolute schedule
   [next := next + gap]: a slow enqueue does not thin the offered load, it
   shows up as lateness (and [lagged] once > 5 ms behind) — the open-loop
   property closed loops lack. Elements are enqueue timestamps, so the
   consumer side prices each element's whole sojourn. Consumers use the
   blocking remove and exit on quiescence: producers deregister at the
   deadline, consumers drain what is left and then a full sweep of
   searching workers confirms emptiness. *)
let worker pool cfg ~arrival ~per_rate role hist tally i barrier deadline_ns =
  let rng = Cpool_util.Rng.create (Int64.of_int ((cfg.seed * 4099) + i + 1)) in
  let h = Mc_pool.register_at pool i in
  Atomic.decr barrier;
  while Atomic.get barrier > 0 do
    Domain.cpu_relax ()
  done;
  let record ts =
    Cpool_metrics.Histogram.add hist
      (float_of_int (Cpool_util.Clock.now_ns () - ts) /. 1e3);
    tally.s_completed <- tally.s_completed + 1
  in
  (match role with
  | Consumer ->
    let rec drain () =
      match Mc_pool.remove pool h with
      | Some ts ->
        record ts;
        drain ()
      | None -> ()
    in
    drain ()
  | Producer | Both ->
    let arr = Arrival.create arrival ~rate:per_rate ~rng in
    let next = ref (Cpool_util.Clock.now_ns ()) in
    let running = ref true in
    while !running do
      next := !next + Arrival.next_gap_ns arr;
      if !next >= deadline_ns then running := false
      else begin
        let rec wait () =
          if Cpool_util.Clock.now_ns () < !next then begin
            (match role with
            | Both -> (
              (* A uniform worker consumes between its own arrivals. *)
              match Mc_pool.try_remove pool h with
              | Some ts -> record ts
              | None -> ())
            | Producer | Consumer -> ());
            if !next - Cpool_util.Clock.now_ns () > 2_000_000 then
              Unix.sleepf 0.0005
            else Domain.cpu_relax ();
            wait ()
          end
        in
        wait ();
        let now = Cpool_util.Clock.now_ns () in
        if now - !next > lag_slack_ns then tally.s_lagged <- tally.s_lagged + 1;
        tally.s_generated <- tally.s_generated + 1;
        if not (Mc_pool.try_add pool h now) then
          tally.s_rejected <- tally.s_rejected + 1
      end
    done);
  Mc_pool.deregister pool h

(* Breaking-point predicate: a point is broken when latency blew through
   the bound, the backlog outgrew any plausible drain, adds started
   bouncing off the capacity, the generator itself could not sustain the
   schedule, or nothing completed at all. *)
let is_broken cfg p =
  (p.generated > 0 && p.completed = 0)
  || p.rejected > p.generated / 20
  || p.backlog > max 64 (p.generated / 5)
  || p.lagged > p.generated / 10
  || ((not (Float.is_nan p.p99_us)) && p.p99_us > cfg.p99_bound_us)

let run_point cfg offered =
  let segments = cfg.pool.Mc_pool.Config.segments in
  let pool : int Mc_pool.t = Mc_pool.of_config cfg.pool in
  let role = roles ~segments cfg.workload.arrangement in
  let producers =
    Array.fold_left (fun n r -> if r = Consumer then n else n + 1) 0 role
  in
  let per_rate = offered /. float_of_int producers in
  let arrival = Workload.(with_rate cfg.workload offered).arrival in
  (* Prefill (siege cells default to 0): stamped at fill time, so leftover
     stock drains first and its sojourn counts from the start of load. *)
  if cfg.workload.initial > 0 then begin
    let now = Cpool_util.Clock.now_ns () in
    for s = 0 to segments - 1 do
      let h = Mc_pool.register_at pool s in
      for _ = 1 to cfg.workload.initial do
        ignore (Mc_pool.try_add pool h now)
      done;
      Mc_pool.deregister pool h
    done
  end;
  let hists = Array.init segments (fun _ -> sojourn_histogram ()) in
  let tallies =
    Array.init segments (fun _ ->
        { s_generated = 0; s_rejected = 0; s_lagged = 0; s_completed = 0 })
  in
  let barrier = Atomic.make segments in
  let t0 = Cpool_util.Clock.now_ns () in
  let deadline_ns = t0 + Cpool_util.Clock.ns_of_s cfg.workload.duration_s in
  let ds =
    List.init segments (fun i ->
        Domain.spawn (fun () ->
            worker pool cfg ~arrival ~per_rate role.(i) hists.(i) tallies.(i) i
              barrier deadline_ns))
  in
  (* Snapshot the backlog at the deadline instant — the consumers drain
     whatever is left afterwards, so only this racy-but-timely read can
     tell a queue that kept up from one that only emptied post-hoc. *)
  let rec sleep () =
    let now = Cpool_util.Clock.now_ns () in
    if now < deadline_ns then begin
      if deadline_ns - now > 2_000_000 then Unix.sleepf 0.001
      else Domain.cpu_relax ();
      sleep ()
    end
  in
  sleep ();
  let backlog = Mc_pool.size pool in
  List.iter Domain.join ds;
  let duration = Cpool_util.Clock.elapsed_s ~since_ns:t0 in
  let hist = sojourn_histogram () in
  Array.iter (Cpool_metrics.Histogram.merge hist) hists;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let pct p = Cpool_metrics.Histogram.percentile hist p in
  let point =
    {
      offered;
      duration;
      generated = sum (fun t -> t.s_generated);
      completed = sum (fun t -> t.s_completed);
      rejected = sum (fun t -> t.s_rejected);
      backlog;
      lagged = sum (fun t -> t.s_lagged);
      throughput =
        float_of_int (sum (fun t -> t.s_completed)) /. Float.max 1e-9 duration;
      p50_us = pct 50.0;
      p90_us = pct 90.0;
      p99_us = pct 99.0;
      p999_us = pct 99.9;
      broken = false;
    }
  in
  { point with broken = is_broken cfg point }

let run cfg =
  validate cfg;
  let start = Option.get (Workload.offered_rate cfg.workload) in
  let points = ref [] in
  let measure rate =
    let p = run_point cfg rate in
    points := p :: !points;
    p
  in
  (* Geometric ramp to the first broken rate (or max_rate), then a
     geometric bisection of the last-good/first-bad bracket: offered loads
     are ratios, so the midpoint lives in log space. *)
  let rec ramp rate last_good =
    let p = measure rate in
    if p.broken then (last_good, Some rate)
    else if rate >= cfg.max_rate then (Some rate, None)
    else ramp (Float.min (rate *. 2.0) cfg.max_rate) (Some rate)
  in
  let good, bad = ramp start None in
  let rec bisect steps lo hi =
    if steps <= 0 then ()
    else begin
      let mid = sqrt (lo *. hi) in
      if mid <= lo || mid >= hi then ()
      else
        let p = measure mid in
        if p.broken then bisect (steps - 1) lo mid else bisect (steps - 1) mid hi
    end
  in
  (match (good, bad) with
  | Some lo, Some hi -> bisect cfg.bisect_steps lo hi
  | _ -> ());
  let points =
    List.sort (fun a b -> Float.compare a.offered b.offered) !points
  in
  let broken_rates =
    List.filter_map (fun p -> if p.broken then Some p.offered else None) points
  in
  let good_rates =
    List.filter_map (fun p -> if p.broken then None else Some p.offered) points
  in
  {
    config = cfg;
    points;
    saturation_rate =
      (match broken_rates with [] -> None | r :: _ -> Some r);
    max_good_rate =
      (match List.rev good_rates with [] -> None | r :: _ -> Some r);
  }

let cell_label o =
  let c = o.config in
  Printf.sprintf "%s/%dd/%s%s"
    (Cpool_intf.to_string c.pool.Mc_pool.Config.kind)
    c.pool.Mc_pool.Config.segments
    (Workload.label c.workload)
    (match c.pool.Mc_pool.Config.topology with
    | None -> ""
    | Some _ ->
      if c.pool.Mc_pool.Config.topology_aware then "/topo" else "/topo-blind")

let render outcomes =
  let buf = Buffer.create 1024 in
  List.iter
    (fun o ->
      let row p =
        [
          Printf.sprintf "%.0f" p.offered;
          Printf.sprintf "%.0f" p.throughput;
          Cpool_metrics.Render.float_cell p.p50_us;
          Cpool_metrics.Render.float_cell p.p99_us;
          Cpool_metrics.Render.float_cell p.p999_us;
          string_of_int p.backlog;
          string_of_int p.rejected;
          string_of_int p.lagged;
          (if p.broken then "BROKEN" else "ok");
        ]
      in
      Buffer.add_string buf
        (Cpool_metrics.Render.table
           ~title:(Printf.sprintf "mc-siege %s" (cell_label o))
           ~headers:
             [
               "offered/s"; "completed/s"; "p50 µs"; "p99 µs"; "p99.9 µs";
               "backlog"; "rejected"; "lagged"; "verdict";
             ]
           ~rows:(List.map row o.points) ());
      (match o.saturation_rate with
      | Some r ->
        Buffer.add_string buf
          (Printf.sprintf "saturation: breaks at %.0f arrivals/s%s\n" r
             (match o.max_good_rate with
             | Some g -> Printf.sprintf " (held %.0f/s)" g
             | None -> ""))
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "saturation: not reached up to %.0f arrivals/s\n"
             o.config.max_rate));
      Buffer.add_char buf '\n')
    outcomes;
  Buffer.contents buf

(* {2 JSON artifact} *)

(* siege-diff thresholds, stored in the artifact itself so the gate and
   the baseline travel together. Generous on purpose: CI machines are
   noisy, and the gate is for collapses (a search regression that halves
   the breaking point), not single-digit scatter. *)
let default_max_throughput_drop_pct = 75.0

let default_max_p99_inflation_pct = 900.0

let json_of_point p =
  let module J = Cpool_util.Json in
  J.Assoc
    [
      ("offered_per_sec", J.Float p.offered);
      ("duration_s", J.Float p.duration);
      ("generated", J.Int p.generated);
      ("completed", J.Int p.completed);
      ("rejected", J.Int p.rejected);
      ("backlog", J.Int p.backlog);
      ("lagged", J.Int p.lagged);
      ("throughput", J.Float p.throughput);
      ("p50_us", J.Float p.p50_us);
      ("p90_us", J.Float p.p90_us);
      ("p99_us", J.Float p.p99_us);
      ("p999_us", J.Float p.p999_us);
      ("broken", J.Bool p.broken);
    ]

let json_of_outcome o =
  let module J = Cpool_util.Json in
  let c = o.config in
  let opt_rate = function None -> J.Null | Some r -> J.Float r in
  J.Assoc
    ([
       ("kind", J.Str (Cpool_intf.to_string c.pool.Mc_pool.Config.kind));
       ("workload", J.Str (Workload.to_string c.workload));
       ("domains", J.Int c.pool.Mc_pool.Config.segments);
       ( "capacity",
         match c.pool.Mc_pool.Config.capacity with
         | None -> J.Null
         | Some cap -> J.Int cap );
       ("seed", J.Int c.seed);
       ("p99_bound_us", J.Float c.p99_bound_us);
       ("max_rate", J.Float c.max_rate);
       ("bisect_steps", J.Int c.bisect_steps);
     ]
    @ (match c.pool.Mc_pool.Config.topology with
      | None -> []
      | Some topo ->
        [
          (* The full config text, not just the label, so siege-diff can
             reconstruct and rerun the exact cell. *)
          ("topology_config", J.Str (Cpool_topology.to_string topo));
          ("topology_aware", J.Bool c.pool.Mc_pool.Config.topology_aware);
        ])
    @ [
        ("points", J.List (List.map json_of_point o.points));
        ("saturation_rate", opt_rate o.saturation_rate);
        ("max_good_rate", opt_rate o.max_good_rate);
      ])

let to_json outcomes =
  let module J = Cpool_util.Json in
  J.Assoc
    [
      ("benchmark", J.Str "mc-siege");
      ("max_throughput_drop_pct", J.Float default_max_throughput_drop_pct);
      ("max_p99_inflation_pct", J.Float default_max_p99_inflation_pct);
      ("cells", J.List (List.map json_of_outcome outcomes));
    ]

(* {2 Validation, reconstruction, regression gate} *)

let field obj name =
  match Cpool_util.Json.member name obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let number obj name =
  Result.bind (field obj name) (fun v ->
      match Cpool_util.Json.to_number v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S is not a number" name))

let validate_json doc =
  let module J = Cpool_util.Json in
  let ( let* ) = Result.bind in
  let* bench = field doc "benchmark" in
  let* () =
    match bench with
    | J.Str "mc-siege" -> Ok ()
    | _ -> Error "field \"benchmark\" is not \"mc-siege\""
  in
  let* _ = number doc "max_throughput_drop_pct" in
  let* _ = number doc "max_p99_inflation_pct" in
  let* cells = field doc "cells" in
  match J.to_list cells with
  | None -> Error "field \"cells\" is not a list"
  | Some cs ->
    let check_point i j p =
      let where e = Printf.sprintf "cell %d point %d: %s" i j e in
      let* offered = Result.map_error where (number p "offered_per_sec") in
      let* completed = Result.map_error where (number p "completed") in
      let* _ = Result.map_error where (number p "generated") in
      let* _ = Result.map_error where (number p "throughput") in
      let* _ = Result.map_error where (number p "backlog") in
      let* () =
        match J.member "broken" p with
        | Some (J.Bool _) -> Ok ()
        | Some _ | None -> Error (where "missing boolean \"broken\"")
      in
      (* A point that completed work must carry real percentiles (an empty
         histogram serialises its NaN as null) in sane order. *)
      let* () =
        if completed <= 0.0 then Ok ()
        else
          let* p50 = Result.map_error where (number p "p50_us") in
          let* p99 = Result.map_error where (number p "p99_us") in
          if p50 > p99 then
            Error (where (Printf.sprintf "p50 %.3f > p99 %.3f" p50 p99))
          else Ok ()
      in
      Ok offered
    in
    let check_cell i c =
      let where e = Printf.sprintf "cell %d: %s" i e in
      let* kind = Result.map_error where (field c "kind") in
      let* () =
        match kind with
        | J.Str s ->
          Result.map_error where
            (Result.map (fun (_ : Cpool_intf.kind) -> ()) (Cpool_intf.of_string s))
        | _ -> Error (where "field \"kind\" is not a string")
      in
      let* wl = Result.map_error where (field c "workload") in
      let* () =
        match wl with
        | J.Str s ->
          let* w = Result.map_error where (Workload.of_string s) in
          if Workload.closed w then
            Error (where "workload is closed-loop in a siege artifact")
          else Ok ()
        | _ -> Error (where "field \"workload\" is not a string")
      in
      let* _ = Result.map_error where (number c "domains") in
      let* max_rate = Result.map_error where (number c "max_rate") in
      let* () =
        match J.member "topology_config" c with
        | None -> Ok ()
        | Some (J.Str s) ->
          Result.map_error
            (fun e -> where ("bad topology_config: " ^ e))
            (Result.map (fun (_ : Cpool_topology.t) -> ()) (Cpool_topology.parse s))
        | Some _ -> Error (where "field \"topology_config\" is not a string")
      in
      let* points = Result.map_error where (field c "points") in
      let* ps =
        match J.to_list points with
        | Some (_ :: _ as ps) -> Ok ps
        | Some [] -> Error (where "empty \"points\"")
        | None -> Error (where "field \"points\" is not a list")
      in
      let* offereds =
        List.fold_left
          (fun acc (j, p) ->
            let* rs = acc in
            let* r = check_point i j p in
            Ok (r :: rs))
          (Ok [])
          (List.mapi (fun j p -> (j, p)) ps)
      in
      let offereds = List.rev offereds in
      (* The curve must sweep strictly upward — duplicated or shuffled
         load points mean the search mis-assembled it. *)
      let rec monotone = function
        | a :: (b :: _ as rest) ->
          if a >= b then
            Error
              (where
                 (Printf.sprintf "offered loads not strictly increasing (%g >= %g)" a b))
          else monotone rest
        | _ -> Ok ()
      in
      let* () = monotone offereds in
      let lo = List.hd offereds and hi = List.nth offereds (List.length offereds - 1) in
      let* () =
        match J.member "saturation_rate" c with
        | Some J.Null | None -> Ok ()
        | Some v -> (
          match J.to_number v with
          | None -> Error (where "field \"saturation_rate\" is not a number or null")
          | Some r ->
            if r < lo || r > hi then
              Error
                (where
                   (Printf.sprintf
                      "saturation_rate %g outside the swept range [%g, %g]" r lo hi))
            else Ok ())
      in
      let* () =
        if hi > max_rate *. 1.000001 then
          Error
            (where (Printf.sprintf "swept load %g exceeds max_rate %g" hi max_rate))
        else Ok ()
      in
      Ok ()
    in
    let rec all i = function
      | [] -> Ok (List.length cs)
      | c :: rest ->
        let* () = check_cell i c in
        all (i + 1) rest
    in
    all 0 cs

let config_of_cell_json c =
  let module J = Cpool_util.Json in
  let ( let* ) = Result.bind in
  let* kind =
    match J.member "kind" c with
    | Some (J.Str s) -> Cpool_intf.of_string s
    | _ -> Error "missing string \"kind\""
  in
  let* workload =
    match J.member "workload" c with
    | Some (J.Str s) -> Workload.of_string s
    | _ -> Error "missing string \"workload\""
  in
  let* domains = number c "domains" in
  let* seed = number c "seed" in
  let* p99_bound_us = number c "p99_bound_us" in
  let* max_rate = number c "max_rate" in
  let* bisect_steps = number c "bisect_steps" in
  let capacity =
    match J.member "capacity" c with
    | Some v -> Option.map int_of_float (J.to_number v)
    | None -> None
  in
  let* topology =
    match J.member "topology_config" c with
    | None -> Ok None
    | Some (J.Str s) -> Result.map Option.some (Cpool_topology.parse s)
    | Some _ -> Error "field \"topology_config\" is not a string"
  in
  let topology_aware =
    match J.member "topology_aware" c with Some (J.Bool b) -> b | _ -> true
  in
  Ok
    {
      pool =
        {
          Mc_pool.Config.default with
          segments = int_of_float domains;
          kind;
          capacity;
          topology;
          topology_aware;
        };
      workload;
      seed = int_of_float seed;
      p99_bound_us;
      max_rate;
      bisect_steps = int_of_float bisect_steps;
    }

(* Cells pair across runs by everything that defines the experiment. *)
let cell_key c =
  let module J = Cpool_util.Json in
  let str name = match J.member name c with Some (J.Str s) -> s | _ -> "" in
  let num name =
    match Option.bind (J.member name c) J.to_number with
    | Some f -> Printf.sprintf "%g" f
    | None -> ""
  in
  let aware =
    match J.member "topology_aware" c with
    | Some (J.Bool b) -> string_of_bool b
    | _ -> ""
  in
  String.concat "|"
    [ str "kind"; str "workload"; num "domains"; str "topology_config"; aware ]

let diff ~baseline ~fresh =
  let module J = Cpool_util.Json in
  let ( let* ) = Result.bind in
  let* _ = validate_json baseline in
  let* _ = validate_json fresh in
  let* drop_pct = number baseline "max_throughput_drop_pct" in
  let* infl_pct = number baseline "max_p99_inflation_pct" in
  let cells doc = Option.get (J.to_list (Option.get (J.member "cells" doc))) in
  let fresh_cells = List.map (fun c -> (cell_key c, c)) (cells fresh) in
  let point_stats c =
    (* (best non-broken throughput, p99 at the lowest offered load) *)
    let ps = Option.get (J.to_list (Option.get (J.member "points" c))) in
    let best =
      List.fold_left
        (fun acc p ->
          match (J.member "broken" p, Option.bind (J.member "throughput" p) J.to_number)
          with
          | Some (J.Bool false), Some t -> Float.max acc t
          | _ -> acc)
        Float.neg_infinity ps
    in
    let first_p99 =
      Option.bind (J.member "p99_us" (List.hd ps)) J.to_number
    in
    (best, first_p99)
  in
  let regressions =
    List.concat_map
      (fun bc ->
        let label = cell_key bc in
        match List.assoc_opt label fresh_cells with
        | None -> [ Printf.sprintf "cell %s: missing from the fresh run" label ]
        | Some fc ->
          let b_best, b_p99 = point_stats bc in
          let f_best, f_p99 = point_stats fc in
          let throughput =
            if Float.is_finite b_best && b_best > 0.0 then
              if not (Float.is_finite f_best) then
                [
                  Printf.sprintf
                    "cell %s: no surviving load point (baseline held %.0f/s)"
                    label b_best;
                ]
              else
                let drop = (b_best -. f_best) /. b_best *. 100.0 in
                if drop > drop_pct then
                  [
                    Printf.sprintf
                      "cell %s: throughput dropped %.0f%% (%.0f -> %.0f per s, \
                       limit %.0f%%)"
                      label drop b_best f_best drop_pct;
                  ]
                else []
            else []
          in
          let latency =
            match (b_p99, f_p99) with
            | Some b, Some f when b > 0.0 ->
              let infl = (f -. b) /. b *. 100.0 in
              if infl > infl_pct then
                [
                  Printf.sprintf
                    "cell %s: p99 at the lightest load inflated %.0f%% (%.1f -> \
                     %.1f µs, limit %.0f%%)"
                    label infl b f infl_pct;
                ]
              else []
            | _ -> []
          in
          throughput @ latency)
      (cells baseline)
  in
  Ok regressions
