(* The hint board for the Hinted search algorithm (paper Section 5), ported
   to shared memory: one claimable slot per segment. A searcher that swept
   every segment empty publishes its slot and parks; an adder claims a
   published slot with one CAS and delivers its element straight into the
   parked searcher's segment (via the segment's spill inbox), skipping its
   own segment entirely.

   The board is atomics-only — no mutex is ever held while touching it, so
   its lock order is trivial: the only lock a hinted hand-off takes is the
   target segment's mutex inside [spill_add], after the board transition
   committed. Slot lifecycle:

     Free --publish (owner store)--> Published
     Published --retract (owner CAS)--> Free
     Published --try_claim (adder CAS)--> Claimed --release (adder store)--> Free

   Only the slot's owner (the one searcher registered on that segment)
   performs Free->Published and the retract CAS; the two CASes on
   [Published] linearize the race between a retracting searcher and a
   claiming adder, so exactly one side wins each published hint. A slot the
   adder holds [Claimed] is owned by that adder until its [release] store —
   the searcher meanwhile waits for [Free] (the adder is one bounded
   [spill_add] away from releasing, never blocked on the searcher).

   [waiting] is a conservative advertisement so adders with no parked
   searchers pay one read, not a board scan. It is bumped after the state
   store and decremented by whichever side consumes the hint, so it can
   momentarily disagree with the number of [Published] slots in either
   direction; both misreadings are benign (a futile scan, or a missed
   hand-off that falls back to a normal add). *)

module type HINTS = sig
  type t

  type retract_outcome = Retracted | Claim_pending

  val create : slots:int -> unit -> t

  val slots : t -> int

  val waiters : t -> int

  val publish : t -> int -> unit

  val try_claim : ?order:int array -> t -> from:int -> int option

  val release : t -> int -> unit

  val retract : t -> int -> retract_outcome

  val is_published : t -> int -> bool

  val is_free : t -> int -> bool

  val published_count : t -> int
end

module Make (P : Mc_prim.S) : HINTS = struct
  type state = Free | Published | Claimed

  type t = { board : state P.Atomic.t array; waiting : int P.Atomic.t }

  type retract_outcome = Retracted | Claim_pending

  let create ~slots () =
    if slots <= 0 then invalid_arg "Mc_hints.create: slots must be positive";
    {
      board = Array.init slots (fun _ -> P.Atomic.make_padded Free);
      waiting = P.Atomic.make_padded 0;
    }

  let slots t = Array.length t.board

  let waiters t = P.Atomic.get t.waiting

  let publish t i =
    (* Owner-only Free -> Published, so a plain store suffices. State
       first, count second: an adder that reads the stale count either
       scans in vain or misses this hint for one round — never claims a
       slot that is not Published. *)
    P.Atomic.set t.board.(i) Published;
    ignore (P.Atomic.fetch_and_add t.waiting 1)

  let try_claim ?order t ~from =
    let p = Array.length t.board in
    (* Visit slots in [order] when given (topology-aware pools pass the
       claimer's near-first permutation so nearby parked searchers win);
       default to the ring from the claimer's own slot, like the spill
       scan. The claimer's own slot is skipped either way — never useful
       to claim. Take the first published hint that the CAS wins. *)
    let slot_at k = match order with None -> (from + k) mod p | Some o -> o.(k) in
    let rec scan k =
      if k = p then None
      else
        let w = slot_at k in
        if
          w <> from
          && P.Atomic.get t.board.(w) == Published
          && P.Atomic.compare_and_set t.board.(w) Published Claimed
        then begin
          ignore (P.Atomic.fetch_and_add t.waiting (-1));
          Some w
        end
        else scan (k + 1)
    in
    scan (match order with None -> 1 | Some _ -> 0)

  let release t w =
    (* Claimed -> Free; only the adder whose CAS won holds the slot, so a
       plain store suffices. The parked owner polls for exactly this. *)
    P.Atomic.set t.board.(w) Free

  let retract t i =
    if P.Atomic.compare_and_set t.board.(i) Published Free then begin
      ignore (P.Atomic.fetch_and_add t.waiting (-1));
      Retracted
    end
    else
      (* The CAS can only lose to an adder's claim: the owner must await
         [is_free] (the adder's release) and then check its own segment —
         a delivery may have landed. *)
      Claim_pending

  let is_published t i = P.Atomic.get t.board.(i) == Published

  let is_free t i = P.Atomic.get t.board.(i) == Free

  let published_count t =
    Array.fold_left
      (fun acc s -> if P.Atomic.get s == Published then acc + 1 else acc)
      0 t.board
end

include Make (Mc_prim.Real)
