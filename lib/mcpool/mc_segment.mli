(** One segment of the multicore concurrent pool.

    A mutex-protected stack with an atomically readable size, so searching
    domains can probe without taking the lock (the same probe-then-lock
    discipline as the simulated pool). Safe for concurrent use from any
    number of domains.

    On a bounded segment the atomic count is the source of truth for
    capacity: it equals the stored element count plus any outstanding
    {!reserve}d headroom and never exceeds the capacity. Every mutation
    adjusts it relatively under the lock, so the bound holds at every
    instant — there is no window in which concurrent deposits or adds can
    overshoot it (the seed version set the count absolutely from the vector
    length, which both erased reservations and let [deposit] blow through
    the bound). *)

type 'a t

val make : ?capacity:int -> id:int -> unit -> 'a t
(** [make ~id ()] is an empty segment; [capacity] bounds it (default
    unbounded). Raises [Invalid_argument] if [capacity <= 0]. *)

val id : 'a t -> int

val capacity : 'a t -> int option
(** [capacity s] is the bound given at creation, if any. *)

val size : 'a t -> int
(** [size s] is an atomic snapshot of the occupied capacity: stored
    elements plus outstanding reservations (may be stale by the time it is
    used — callers re-check under the lock). *)

val add : 'a t -> 'a -> unit
(** [add s x] inserts unconditionally, ignoring any capacity (only safe on
    unbounded segments; the pool uses it for unbounded steal banking). *)

val try_add : 'a t -> 'a -> bool
(** [try_add s x] inserts unless that would exceed the capacity, counting
    reserved headroom as occupied. *)

val spare : 'a t -> int
(** [spare s] is the remaining capacity ([max_int] when unbounded). *)

val try_remove : 'a t -> 'a option
(** [try_remove s] takes the most recently added element, if any. *)

val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
(** [steal_half s] removes [min (ceil n/2) max_take] of the [n] elements under the lock
    (the element to return plus a remainder batch), [Single] for [n = 1],
    [Nothing] for [n = 0]. The caller deposits the remainder into its own
    segment afterwards — victim and thief are never locked together. *)

val deposit : 'a t -> 'a list -> 'a list
(** [deposit s xs] adds elements of [xs] under one lock acquisition, up to
    the segment's remaining capacity, and returns the rejected overflow in
    order (always [[]] when unbounded). Callers on a bounded pool either
    re-spill the overflow or, better, pre-{!reserve} the room so rejection
    cannot happen. *)

val reserve : 'a t -> int -> int
(** [reserve s k] claims up to [k] units of spare capacity and returns the
    amount actually claimed (all of [k] when unbounded). Reserved units
    count as occupied until the matching {!refill}. A thief reserves room
    in its own segment {e before} stealing, so the banked remainder always
    fits — capacity can never be exceeded, even transiently. Raises
    [Invalid_argument] if [k < 0]. *)

val refill : 'a t -> reserved:int -> 'a list -> unit
(** [refill s ~reserved xs] stores [xs] into previously reserved room and
    releases the unused remainder of the reservation. Raises
    [Invalid_argument] if [List.length xs > reserved]. *)

val invariant_ok : 'a t -> bool
(** [invariant_ok s] checks, under the lock, that the atomic count matches
    the stored element count and respects the capacity. Only meaningful at
    quiescence (no outstanding reservations); the stress harness calls it
    after every run. *)
