(** One segment of the multicore concurrent pool.

    A mutex-protected stack with an atomically readable size, so searching
    domains can probe without taking the lock (the same probe-then-lock
    discipline as the simulated pool). Safe for concurrent use from any
    number of domains. *)

type 'a t

val make : ?capacity:int -> id:int -> unit -> 'a t
(** [make ~id ()] is an empty segment; [capacity] bounds it (default
    unbounded). Raises [Invalid_argument] if [capacity <= 0]. *)

val id : 'a t -> int

val size : 'a t -> int
(** [size s] is an atomic snapshot of the element count (may be stale by
    the time it is used — callers re-check under the lock). *)

val add : 'a t -> 'a -> unit
(** [add s x] inserts unconditionally (steal banking ignores capacity). *)

val try_add : 'a t -> 'a -> bool
(** [try_add s x] inserts unless that would exceed the capacity. *)

val spare : 'a t -> int
(** [spare s] is the remaining capacity ([max_int] when unbounded). *)

val try_remove : 'a t -> 'a option
(** [try_remove s] takes the most recently added element, if any. *)

val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
(** [steal_half s] removes [min (ceil n/2) max_take] of the [n] elements under the lock
    (the element to return plus a remainder batch), [Single] for [n = 1],
    [Nothing] for [n = 0]. The caller deposits the remainder into its own
    segment afterwards — victim and thief are never locked together. *)

val deposit : 'a t -> 'a list -> unit
(** [deposit s xs] adds every element of [xs] under one lock acquisition. *)
