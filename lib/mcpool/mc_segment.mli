(** One segment of the multicore concurrent pool.

    A Chase-Lev-style ring deque owned by one domain, plus a small
    mutex-protected inbox for foreign (spill) adds. The {e owner}'s
    {!add}/{!try_add}/{!try_remove} run lock-free on atomics alone in the
    common case; {e stealers} serialize on the segment mutex and move up to
    half the ring in one batched window claim. The layout and the
    memory-ordering argument are documented in DESIGN.md.

    Ownership discipline: exactly one domain at a time may call the owner
    operations ({!add}, {!try_add}, {!try_remove}, {!deposit}, {!reserve},
    {!refill}) on a given segment — [Mc_pool] enforces this by routing them
    through the registered handle of the segment's slot. Any domain may call
    {!spill_add}, {!steal_half}, {!size}, {!spare} concurrently.

    On a bounded segment the atomic count is the source of truth for
    capacity: it equals the stored element count (ring + inbox) plus any
    outstanding {!reserve}d headroom and never exceeds the capacity — every
    increment goes through a compare-and-set that refuses to pass the bound,
    so the limit holds at every instant even against the lock-free owner. *)

type 'a t

val make : ?capacity:int -> ?fast_path:bool -> id:int -> unit -> 'a t
(** [make ~id ()] is an empty segment; [capacity] bounds it (default
    unbounded). [fast_path] (default [true]) enables the owner's lock-free
    ring path; [~fast_path:false] routes every owner operation through the
    mutex instead — the all-mutex baseline the throughput benchmark
    compares against. Raises [Invalid_argument] if [capacity <= 0]. *)

val id : 'a t -> int

val capacity : 'a t -> int option
(** [capacity s] is the bound given at creation, if any. *)

val size : 'a t -> int
(** [size s] is an atomic snapshot of the occupied capacity: stored
    elements plus outstanding reservations (may be stale by the time it is
    used — callers re-check or rely on the CAS claims). *)

val add : 'a t -> 'a -> unit
(** [add s x] inserts unconditionally, ignoring any capacity (only safe on
    unbounded segments; the pool uses it for unbounded adds and banking).
    Owner only. *)

val try_add : 'a t -> 'a -> bool
(** [try_add s x] inserts unless that would exceed the capacity, counting
    reserved headroom as occupied. Owner only. *)

val spill_add : 'a t -> 'a -> bool
(** [spill_add s x] inserts from a {e foreign} domain (the pool's spill
    path): the element goes to the segment's inbox under the mutex, where
    the owner's slow pop and stealers can find it. [false] if the segment
    is full. Safe from any domain. *)

val spare : 'a t -> int
(** [spare s] is the remaining capacity ([max_int] when unbounded). *)

val try_remove : 'a t -> 'a option
(** [try_remove s] takes the most recently added ring element (LIFO), or an
    inbox element once the ring is dry. Lock-free unless the segment is
    nearly empty, a steal is mid-claim, or the ring must grow. Owner
    only. *)

val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
(** [steal_half s] claims [min (ceil n/2) max_take] of the [n] ring
    elements (the oldest ones) in one batched window transfer under the
    mutex — [Single] / [Batch] / [Nothing] as the count dictates. When the
    ring is empty it splits the inbox instead. The caller deposits the
    remainder into its own segment afterwards — victim and thief are never
    locked together. Safe from any domain. *)

val deposit : 'a t -> 'a list -> 'a list
(** [deposit s xs] adds elements of [xs] with one batched publish, up to
    the segment's remaining capacity, and returns the rejected overflow in
    order (always [[]] when unbounded). Owner only. *)

val reserve : 'a t -> int -> int
(** [reserve s k] claims up to [k] units of spare capacity and returns the
    amount actually claimed (all of [k] when unbounded). Reserved units
    count as occupied until the matching {!refill}. A thief reserves room
    in its own segment {e before} stealing, so the banked remainder always
    fits — capacity can never be exceeded, even transiently. Raises
    [Invalid_argument] if [k < 0]. Owner only. *)

val refill : 'a t -> reserved:int -> 'a list -> unit
(** [refill s ~reserved xs] stores [xs] into previously reserved room with
    one batched publish and releases the unused remainder of the
    reservation. Raises [Invalid_argument] if [List.length xs > reserved].
    Owner only. *)

val stats : 'a t -> Mc_stats.t
(** [stats s] is the segment's live path telemetry (fast vs locked
    pushes/pops, inbox adds, batched-steal sizes). Owner-written fields and
    mutex-written fields never share a writer; read racily or merge at
    quiescence. *)

val invariant_ok : 'a t -> bool
(** [invariant_ok s] checks, under the lock, that the atomic count matches
    the stored element count (ring + inbox), that no steal window is left
    claimed, and that the capacity is respected. Only meaningful at
    quiescence (no outstanding reservations); the stress harness calls it
    after every run. *)
