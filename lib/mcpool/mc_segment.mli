(** One segment of the multicore concurrent pool.

    A lock-free SPMC FIFO ring owned by one domain, plus a lock-free MPSC
    inbox (Treiber stack) for foreign (spill) adds. The {e owner} pushes at
    the back of the ring with plain stores published by one atomic bump of
    [bottom]; {e every} consumer — the owner's pop and any number of
    concurrent stealers — takes from the front by copying a window and
    committing it with a single CAS on [top] (stealers claim up to half the
    ring in one such batched claim). No operation takes a mutex on the
    default fast path; the segment mutex exists only for the
    [~fast_path:false] all-mutex baseline twin. The layout and the
    memory-ordering argument are documented in DESIGN.md §12.

    Ownership discipline: exactly one domain at a time may call the owner
    operations ({!add}, {!try_add}, {!try_remove}, {!deposit}, {!reserve},
    {!refill}) on a given segment — [Mc_pool] enforces this by routing them
    through the registered handle of the segment's slot. Any domain may call
    {!spill_add}, {!steal_half}, {!size}, {!spare} concurrently.

    On a bounded segment the atomic count is the source of truth for
    capacity: it equals the stored element count (ring + inbox) plus any
    outstanding {!reserve}d headroom and never exceeds the capacity — every
    increment goes through a compare-and-set that refuses to pass the bound,
    so the limit holds at every instant even against the lock-free owner. *)

type 'a t

val make : ?capacity:int -> ?fast_path:bool -> id:int -> unit -> 'a t
(** [make ~id ()] is an empty segment; [capacity] bounds it (default
    unbounded). [fast_path] (default [true]) enables the lock-free
    protocol; [~fast_path:false] routes every operation — owner, spiller
    and stealer alike — through the segment mutex instead, running the same
    cursor code with each CAS uncontended: the all-mutex baseline the
    throughput benchmark compares against. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val id : 'a t -> int

val capacity : 'a t -> int option
(** [capacity s] is the bound given at creation, if any. *)

val size : 'a t -> int
(** [size s] is an atomic snapshot of the occupied capacity: stored
    elements plus outstanding reservations (may be stale by the time it is
    used — callers re-check or rely on the CAS claims). *)

val add : 'a t -> 'a -> unit
(** [add s x] inserts unconditionally, ignoring any capacity (only safe on
    unbounded segments; the pool uses it for unbounded adds and banking).
    Owner only. *)

val try_add : 'a t -> 'a -> bool
(** [try_add s x] inserts unless that would exceed the capacity, counting
    reserved headroom as occupied. Owner only. *)

val spill_add : 'a t -> 'a -> bool
(** [spill_add s x] inserts from a {e foreign} domain (the pool's spill
    path): the element is CAS-pushed onto the segment's MPSC inbox — no
    lock, any number of concurrent spillers. The owner folds the inbox into
    its ring when the ring runs dry, preserving arrival order (spill
    traffic is FIFO end-to-end); stealers can also lift inbox elements
    directly. [false] if the segment is full. Safe from any domain. *)

val spare : 'a t -> int
(** [spare s] is the remaining capacity ([max_int] when unbounded). *)

val try_remove : 'a t -> 'a option
(** [try_remove s] takes the {e oldest} stored element (FIFO): the front of
    the ring, refilled from the spill inbox when the ring runs dry. Always
    lock-free: the take commits with one CAS on the front cursor, shared
    with stealers. (The pool is unordered — FIFO is a property of this
    implementation, pinned by tests, not of the pool interface.) Owner
    only. *)

val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
(** [steal_half s] claims [min (ceil n/2) max_take] of the [n] ring
    elements (the oldest ones) with one batched CAS claim of the front
    window — no lock, concurrent stealers race on the CAS and retry.
    [Single] / [Batch] / [Nothing] as the count dictates. When the ring is
    empty it lifts up to half the spill inbox instead, one CAS-pop per
    cell. The caller deposits the remainder into its own segment
    afterwards — victim and thief never serialize. Safe from any domain. *)

val deposit : 'a t -> 'a list -> 'a list
(** [deposit s xs] adds elements of [xs] with one batched publish, up to
    the segment's remaining capacity, and returns the rejected overflow in
    order (always [[]] when unbounded). Owner only. *)

val reserve : 'a t -> int -> int
(** [reserve s k] claims up to [k] units of spare capacity and returns the
    amount actually claimed (all of [k] when unbounded). Reserved units
    count as occupied until the matching {!refill}. A thief reserves room
    in its own segment {e before} stealing, so the banked remainder always
    fits — capacity can never be exceeded, even transiently. Raises
    [Invalid_argument] if [k < 0]. Owner only. *)

val refill : 'a t -> reserved:int -> 'a list -> unit
(** [refill s ~reserved xs] stores [xs] into previously reserved room with
    one batched publish and releases the unused remainder of the
    reservation. Raises [Invalid_argument] if [List.length xs > reserved].
    Owner only. *)

val inbox_length : 'a t -> int
(** [inbox_length s] is a racy snapshot of the spill-inbox length (walks
    the stack; telemetry and tests only). *)

val stats : 'a t -> Mc_stats.t
(** [stats s] is the segment's live path telemetry (fast vs locked
    pushes/pops, inbox adds/drains, CAS retries). Owner-written fields have
    a single writer; cross-domain fields are atomic inside [Mc_stats]; read
    racily or merge at quiescence. *)

val invariant_ok : 'a t -> bool
(** [invariant_ok s] checks that the atomic count matches the stored
    element count (ring + inbox), that the cursors satisfy
    [scrub <= top <= bottom], and that the capacity is respected. Lock-free
    and only meaningful at quiescence (no thread mid-operation, no
    outstanding reservations); the stress harness calls it after every
    run. *)
