type config = {
  domains : int;
  kind : Mc_pool.kind;
  capacity : int option;
  workload : Cpool_intf.Workload.t;
  churn : bool;
  seed : int;
  trace : bool;
}

let default =
  {
    domains = 4;
    kind = Mc_pool.Linear;
    capacity = None;
    workload = Cpool_intf.Workload.default;
    churn = true;
    seed = 42;
    trace = false;
  }

let kind_name = Cpool_intf.to_string

let config_name cfg =
  Printf.sprintf "%s/%s" (kind_name cfg.kind)
    (match cfg.capacity with
    | None -> "unbounded"
    | Some c -> Printf.sprintf "capacity=%d" c)

type report = {
  config : config;
  duration : float;
  ops : int;
  initial_added : int;
  adds_ok : int;
  adds_rejected : int;
  removes_ok : int;
  steals : int;
  per_worker : (string * Mc_stats.t) list;
  per_segment : (string * Mc_stats.t) list; (* ring path counters, per segment *)
  merged : Mc_stats.t; (* pool-wide, including the initial fill and churned-away handles *)
  traces : Mc_trace.t list; (* every handle's event ring; empty unless cfg.trace *)
  violations : string list;
}

let passed r = r.violations = []

type worker_tally = {
  mutable w_ops : int;
  mutable w_drains : int; (* drain-phase remove attempts, not in [w_ops] *)
  mutable w_adds : int;
  mutable w_rejects : int;
  mutable w_removes : int;
  mutable w_stats : Mc_stats.t list; (* stats of handles this worker retired *)
}

let validate cfg =
  let w = cfg.workload in
  if cfg.domains <= 0 then invalid_arg "Mc_stress.run: domains must be positive";
  if not (Cpool_intf.Workload.closed w) then
    invalid_arg "Mc_stress.run: the soak harness is closed-loop only";
  if w.arrangement <> Cpool_intf.Workload.Uniform then
    invalid_arg "Mc_stress.run: the soak harness runs a uniform arrangement";
  if w.duration_s < 0.0 then
    invalid_arg "Mc_stress.run: duration must be non-negative";
  if w.mix < 0.0 || w.mix > 1.0 then
    invalid_arg "Mc_stress.run: mix must be in [0, 1]";
  if w.initial < 0 then invalid_arg "Mc_stress.run: initial must be non-negative"

(* Prefill by registering each slot in turn, so elements spread evenly and
   the fill itself exercises register/deregister. [workload.initial] is per
   segment, like every other driver. *)
let prefill pool cfg =
  let p = Mc_pool.segments pool in
  let per_slot =
    match cfg.capacity with
    | None -> cfg.workload.Cpool_intf.Workload.initial
    | Some c -> min cfg.workload.Cpool_intf.Workload.initial c
  in
  let added = ref 0 in
  for s = 0 to p - 1 do
    let h = Mc_pool.register_at pool s in
    for _ = 1 to per_slot do
      if Mc_pool.try_add pool h !added then incr added
    done;
    Mc_pool.deregister pool h
  done;
  !added

let worker pool cfg tally i barrier deadline =
  let rng = Cpool_util.Rng.create (Int64.of_int ((cfg.seed * 7919) + i)) in
  let add_threshold =
    int_of_float (cfg.workload.Cpool_intf.Workload.mix *. 1_000_000.0)
  in
  let h = ref (Mc_pool.register_at pool i) in
  (* Everyone registers before anyone operates, so quiescence accounting
     never sees a partially started fleet. *)
  Atomic.decr barrier;
  while Atomic.get barrier > 0 do
    Domain.cpu_relax ()
  done;
  let churning = cfg.churn && i land 1 = 1 in
  let running = ref true in
  while !running do
    for _ = 1 to 64 do
      tally.w_ops <- tally.w_ops + 1;
      if Cpool_util.Rng.int rng 1_000_000 < add_threshold then begin
        if Mc_pool.try_add pool !h tally.w_ops then tally.w_adds <- tally.w_adds + 1
        else tally.w_rejects <- tally.w_rejects + 1
      end
      else
        match Mc_pool.try_remove pool !h with
        | Some _ -> tally.w_removes <- tally.w_removes + 1
        | None -> ()
    done;
    if churning && tally.w_ops land 4095 < 64 then begin
      (* Retire this identity and claim a fresh slot: the lifecycle churn
         that leaked slots in the seed version. *)
      tally.w_stats <- Mc_pool.stats_of_handle !h :: tally.w_stats;
      Mc_pool.deregister pool !h;
      h := Mc_pool.register pool
    end;
    if Cpool_util.Clock.now_ns () >= deadline then running := false
  done;
  (* Drain phase: blocking removes until the pool confirms empty. *)
  let rec drain () =
    tally.w_drains <- tally.w_drains + 1;
    match Mc_pool.remove pool !h with
    | Some _ ->
      tally.w_removes <- tally.w_removes + 1;
      drain ()
    | None -> ()
  in
  drain ();
  tally.w_stats <- Mc_pool.stats_of_handle !h :: tally.w_stats;
  Mc_pool.deregister pool !h

let run cfg =
  validate cfg;
  let pool : int Mc_pool.t =
    Mc_pool.of_config
      {
        Mc_pool.Config.default with
        segments = cfg.domains;
        kind = cfg.kind;
        capacity = cfg.capacity;
        trace = cfg.trace;
      }
  in
  let initial_added = prefill pool cfg in
  let tallies =
    Array.init cfg.domains (fun _ ->
        { w_ops = 0; w_drains = 0; w_adds = 0; w_rejects = 0; w_removes = 0; w_stats = [] })
  in
  let barrier = Atomic.make cfg.domains in
  let stop_watch = Atomic.make false in
  let capacity_violations = Atomic.make 0 in
  (* A dedicated watcher polls segment sizes concurrently: on a bounded pool
     the capacity invariant must hold at every instant, not just at the end. *)
  let watcher =
    match cfg.capacity with
    | None -> None
    | Some c ->
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_watch) do
               Array.iter
                 (fun size -> if size > c then Atomic.incr capacity_violations)
                 (Mc_pool.segment_sizes pool);
               Domain.cpu_relax ()
             done))
  in
  let t0_ns = Cpool_util.Clock.now_ns () in
  let deadline_ns =
    t0_ns + Cpool_util.Clock.ns_of_s cfg.workload.Cpool_intf.Workload.duration_s
  in
  let ds =
    List.init cfg.domains (fun i ->
        Domain.spawn (fun () -> worker pool cfg tallies.(i) i barrier deadline_ns))
  in
  List.iter Domain.join ds;
  let duration = Cpool_util.Clock.elapsed_s ~since_ns:t0_ns in
  Atomic.set stop_watch true;
  Option.iter Domain.join watcher;
  let per_worker =
    Array.to_list
      (Array.mapi
         (fun i tally -> (Printf.sprintf "d%d" i, Mc_stats.merge_all tally.w_stats))
         tallies)
  in
  let per_segment =
    Array.to_list
      (Array.mapi
         (fun i s -> (Printf.sprintf "s%d" i, s))
         (Mc_pool.segment_stats pool))
  in
  let merged = Mc_pool.stats pool in
  let sum f = Array.fold_left (fun acc tally -> acc + f tally) 0 tallies in
  let adds_ok = sum (fun w -> w.w_adds) in
  let removes_ok = sum (fun w -> w.w_removes) in
  let violations = ref [] in
  let check name ok detail = if not ok then violations := (name ^ ": " ^ detail) :: !violations in
  check "conservation"
    (initial_added + adds_ok = removes_ok && Mc_pool.size pool = 0)
    (Printf.sprintf "initial %d + adds %d <> removes %d (+ %d left in pool)" initial_added
       adds_ok removes_ok (Mc_pool.size pool));
  check "segment consistency" (Mc_pool.check_segments pool)
    "atomic count <> stored elements (or above capacity)";
  check "capacity bound"
    (Atomic.get capacity_violations = 0)
    (Printf.sprintf "%d over-capacity sightings by the watcher" (Atomic.get capacity_violations));
  check "slot leak" (Mc_pool.claimed_count pool = 0)
    (Printf.sprintf "%d slots still claimed after every deregister" (Mc_pool.claimed_count pool));
  check "slot reuse"
    (let h = Mc_pool.register pool in
     let ok = Mc_pool.slot h >= 0 in
     Mc_pool.deregister pool h;
     ok)
    "register after churn failed";
  check "registered accounting" (Mc_pool.registered pool = 0)
    (Printf.sprintf "%d workers still registered" (Mc_pool.registered pool));
  (* The telemetry must agree with the ground truth the tallies recorded. *)
  check "telemetry: removes"
    (Mc_stats.removes merged = removes_ok)
    (Printf.sprintf "stats %d <> tally %d" (Mc_stats.removes merged) removes_ok);
  check "telemetry: adds"
    (Cpool_metrics.Counters.get (Mc_stats.counters merged) "adds"
     + Cpool_metrics.Counters.get (Mc_stats.counters merged) "spill adds"
     = initial_added + adds_ok)
    "stats adds+spills <> tally adds";
  check "telemetry: steals"
    (Cpool_metrics.Counters.get (Mc_stats.counters merged) "steals" = Mc_pool.steals pool)
    (Printf.sprintf "stats %d <> pool counter %d"
       (Cpool_metrics.Counters.get (Mc_stats.counters merged) "steals")
       (Mc_pool.steals pool));
  (* Path-accounting identity: every worker-loop iteration, prefill add and
     drain-phase remove performs at most one ring operation that notes a
     fast or locked path, so the path counters can never exceed the ground
     truth of attempted operations (the bug the seed artifact shipped:
     fast_ops > ops because the two sides counted different populations). *)
  let fast = Mc_stats.fast_path_ops merged in
  let locked = Mc_stats.locked_path_ops merged in
  let ops_attempted =
    initial_added + sum (fun w -> w.w_ops) + sum (fun w -> w.w_drains)
  in
  check "telemetry: path accounting"
    (fast + locked <= ops_attempted)
    (Printf.sprintf "fast %d + locked %d > attempted %d" fast locked ops_attempted);
  (* Every pool-level spill lands in an MPSC inbox and nowhere else, and a
     drain can only move what a spill put there. *)
  let stat name = Cpool_metrics.Counters.get (Mc_stats.counters merged) name in
  check "telemetry: spills = inbox adds"
    (stat "spill adds" = stat "inbox adds")
    (Printf.sprintf "spill adds %d <> inbox adds %d" (stat "spill adds")
       (stat "inbox adds"));
  check "telemetry: inbox drained"
    (stat "inbox drained" <= stat "inbox adds")
    (Printf.sprintf "drained %d > added %d" (stat "inbox drained") (stat "inbox adds"));
  let traces = Mc_pool.traces pool in
  if cfg.trace then begin
    (* The tracer's drop-proof per-tag totals must agree with [Mc_stats]
       exactly: both are single-writer counters bumped at the same source
       lines, so any divergence is a lost event or a miswired hook. *)
    let ev_counts = Mc_trace.counts traces in
    let ev_args = Mc_trace.arg_totals traces in
    let ev tag = List.assoc tag ev_counts in
    let ev_sum tag = List.assoc tag ev_args in
    let stat name = Cpool_metrics.Counters.get (Mc_stats.counters merged) name in
    let reconcile label derived counter =
      check ("trace: " ^ label) (derived = counter)
        (Printf.sprintf "event-derived %d <> stats %d" derived counter)
    in
    reconcile "steals" (ev Mc_trace.Steal_claim) (stat "steals");
    reconcile "elements stolen" (ev_sum Mc_trace.Steal_claim) (stat "elements stolen");
    reconcile "probes" (ev Mc_trace.Steal_probe) (stat "segments examined");
    reconcile "adds" (ev Mc_trace.Add) (stat "adds");
    reconcile "spills" (ev Mc_trace.Spill) (stat "spill adds");
    reconcile "local removes" (ev Mc_trace.Remove) (stat "local removes");
    reconcile "sweeps" (ev Mc_trace.Sweep) (stat "sweeps");
    reconcile "hints published" (ev Mc_trace.Hint_publish) (Mc_stats.hints_published merged);
    reconcile "hints claimed" (ev Mc_trace.Hint_claim) (Mc_stats.hints_claimed merged);
    reconcile "hints delivered" (ev Mc_trace.Hint_deliver) (Mc_stats.hints_delivered merged);
    reconcile "hints expired" (ev Mc_trace.Hint_expire) (Mc_stats.hints_expired merged);
    (* MPSC telemetry: every traced lock-free spill push and every owner
       exchange-drain has a matching segment counter bump. *)
    reconcile "mpsc pushes" (ev Mc_trace.Mpsc_push) (stat "inbox adds");
    reconcile "mpsc drains" (ev Mc_trace.Mpsc_drain) (stat "inbox drains");
    reconcile "mpsc drained elements" (ev_sum Mc_trace.Mpsc_drain) (stat "inbox drained");
    (* Every park resolves: a searcher never returns from a hunt with its
       hint still on the board. *)
    reconcile "park/wake balance" (ev Mc_trace.Park) (ev Mc_trace.Wake)
  end;
  if cfg.kind = Mc_pool.Hinted then begin
    (* Hint-board accounting: at quiescence every published hint was either
       claimed by an adder or retracted (expired) by its searcher, and a
       delivery requires a claim. *)
    check "telemetry: hints"
      (Mc_stats.hints_published merged
      = Mc_stats.hints_claimed merged + Mc_stats.hints_expired merged)
      (Printf.sprintf "published %d <> claimed %d + expired %d"
         (Mc_stats.hints_published merged) (Mc_stats.hints_claimed merged)
         (Mc_stats.hints_expired merged));
    check "telemetry: hint deliveries"
      (Mc_stats.hints_delivered merged <= Mc_stats.hints_claimed merged)
      (Printf.sprintf "delivered %d > claimed %d" (Mc_stats.hints_delivered merged)
         (Mc_stats.hints_claimed merged))
  end;
  {
    config = cfg;
    duration;
    ops = sum (fun w -> w.w_ops);
    initial_added;
    adds_ok;
    adds_rejected = sum (fun w -> w.w_rejects);
    removes_ok;
    steals = Mc_pool.steals pool;
    per_worker;
    per_segment;
    merged;
    traces;
    violations = List.rev !violations;
  }

let elements_histogram r =
  let sample = Mc_stats.elements_per_steal r.merged in
  let hi = Float.max 8.0 (Cpool_metrics.Sample.max_value sample) in
  let h = Cpool_metrics.Histogram.create ~lo:0.0 ~hi:(hi +. 1.0) ~bins:8 in
  List.iter (Cpool_metrics.Histogram.add h) (Cpool_metrics.Sample.values sample);
  h

let render r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "--- mc-stress %s: %d domains, %.2fs%s ---" (config_name r.config) r.config.domains
    r.duration
    (if r.config.churn then ", churn on" else "");
  line "%d ops (%.0f ops/s): %d+%d adds (%d rejected), %d removes, %d steals" r.ops
    (float_of_int r.ops /. Float.max 1e-9 r.duration)
    r.initial_added r.adds_ok r.adds_rejected r.removes_ok r.steals;
  if r.config.trace then
    line "trace: %d events recorded, %d overwritten by ring overflow"
      (Mc_trace.total_recorded r.traces)
      (Mc_trace.total_dropped r.traces);
  Buffer.add_string buf (Mc_stats.render_table ~title:"per-domain telemetry" r.per_worker);
  Buffer.add_char buf '\n';
  if r.config.kind = Mc_pool.Hinted then begin
    line "hint board: %d published, %d claimed, %d delivered, %d expired"
      (Mc_stats.hints_published r.merged)
      (Mc_stats.hints_claimed r.merged)
      (Mc_stats.hints_delivered r.merged)
      (Mc_stats.hints_expired r.merged);
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf
    (Mc_stats.render_path_table ~title:"ring fast/locked paths (per segment)"
       r.per_segment);
  Buffer.add_char buf '\n';
  let segs = Mc_stats.segments_per_steal r.merged in
  let elems = Mc_stats.elements_per_steal r.merged in
  let dist name sample =
    [
      name;
      Cpool_metrics.Render.float_cell (Cpool_metrics.Sample.mean sample);
      Cpool_metrics.Render.float_cell (Cpool_metrics.Sample.median sample);
      Cpool_metrics.Render.float_cell (Cpool_metrics.Sample.percentile sample 95.0);
      Cpool_metrics.Render.float_cell (Cpool_metrics.Sample.max_value sample);
    ]
  in
  Buffer.add_string buf
    (Cpool_metrics.Render.table ~title:"steal distributions (pool-wide)"
       ~headers:[ "metric"; "mean"; "p50"; "p95"; "max" ]
       ~rows:[ dist "segments examined/steal" segs; dist "elements stolen/steal" elems ]
       ());
  Buffer.add_char buf '\n';
  if not (Cpool_metrics.Sample.is_empty elems) then begin
    Buffer.add_string buf
      (Cpool_metrics.Render.table ~title:"elements stolen per steal"
         ~headers:[ "range"; "steals" ]
         ~rows:
           (List.map
              (fun (range, n) -> [ range; string_of_int n ])
              (Cpool_metrics.Histogram.to_rows (elements_histogram r)))
         ());
    Buffer.add_char buf '\n'
  end;
  (match r.violations with
  | [] -> line "invariants: conservation, segment consistency, capacity bound, slot lifecycle all OK"
  | vs ->
    line "INVARIANT VIOLATIONS:";
    List.iter (fun v -> line "  %s" v) vs);
  Buffer.contents buf
