(** Fixed-duration throughput benchmark for {!Mc_pool}: the reproducible
    baseline behind the lock-free owner fast path.

    Runs a grid of cells — search kind × domain count × operation mix ×
    segment protocol — each a wall-clock-bounded randomized add/remove
    workload with one worker domain per segment. The two mixes follow the
    paper's regimes: {e sufficient} (> 50% adds, prefilled, removes almost
    always hit the owner's own segment — non-blocking removes) and
    {e sparse} (< 50% adds, the pool runs dry and steal traffic dominates —
    {e blocking} removes, so what a searcher does about an empty pool,
    spin-searching vs parking on the [Hinted] hint board, is part of the
    measurement). Each (kind, domains, mix)
    cell runs twice when [baseline] is set: once with the segments'
    lock-free owner path and once in the all-mutex configuration
    ([fast_path:false]), so the speedup is measured within one binary on
    identical workloads.

    Reported per cell: throughput (ops/sec), sampled per-op latency (p50
    and p99, in µs — every 8th batch of 16 operations is timed as a group,
    so sub-µs operations still resolve and a slow steal or lock inside the
    window surfaces in the tail), the segments' fast-path vs locked-path
    hit counters, and the batched-steal profile. Results serialize to JSON
    ({!to_json}) for the committed [BENCH_mcpool.json] artifact. *)

type config = {
  kinds : Mc_pool.kind list;
  domain_counts : int list;
  workloads : Cpool_intf.Workload.t list;
      (** Closed-loop scenarios, one grid row per entry. [mix] is the add
          probability, [initial] the prefill per segment, [duration_s] the
          wall-clock length of the cell's mixed-op phase.
          {!Cpool_intf.Workload.sufficient} and
          {!Cpool_intf.Workload.sparse} are the paper's two regimes. *)
  baseline : bool;  (** Also run every cell with [fast_path:false]. *)
  capacity : int option;  (** Per-segment bound; [None] = unbounded. *)
  seed : int;
  trace : bool;
      (** Give every worker an {!Mc_trace} event ring (adds a per-event
          timestamp cost; off for the committed throughput numbers). *)
  topo_of : (int -> (Cpool_topology.t, string) result) option;
      (** Resolve a domain count to the locality model for that column of
          the grid (the [two-group] preset scales with the count; a config
          file only matches its own). When set, the topology cells run
          {e in addition to} the plain grid: every (kind, domains, mix) on
          the lock-free path, once topology-aware and (when [baseline])
          once as the distance-oblivious twin, all into one artifact. *)
}

val default : config
(** Linear kind, 2 and 8 domains, both canonical workloads (sufficient
    and sparse, 1 s cells), baseline on, unbounded, seed 42, tracing off,
    no topology. *)

type cell = {
  kind : Mc_pool.kind;
  domains : int;
  workload : Cpool_intf.Workload.t;
  fast_path : bool;
  topo : Cpool_topology.t option;
      (** Home segment [i] on topology node [i] and emulate remote
          latency; [None] for the plain grid cells. *)
  aware : bool;
      (** Meaningful only with [topo]: [false] is the distance-oblivious
          twin (same emulated machine, distance-blind probe order). *)
}

type result = {
  cell : cell;
  duration : float;  (** Measured wall-clock of the mixed-op phase. *)
  ops : int;  (** Operation attempts across all workers (throughput numerator). *)
  ops_attempted : int;
      (** [ops] plus the prefill's add attempts — the full population of
          operations that can note a fast or locked path, so
          [fast_ops + locked_ops <= ops_attempted] always holds (the seed
          artifact compared [fast_ops] against [ops] alone and shipped a
          cell with [fast_ops > ops]). *)
  ops_per_sec : float;
  adds_ok : int;
  removes_ok : int;
  p50_us : float;  (** Median sampled per-op latency, µs; [nan] if none. *)
  p99_us : float;  (** 99th-percentile sampled per-op latency, µs. *)
  fast_ops : int;  (** Owner pushes + pops that skipped the mutex. *)
  locked_ops : int;  (** Owner pushes + pops that took the mutex. *)
  fast_fraction : float;  (** fast / (fast + locked); [nan] if neither. *)
  steals : int;
  batched_steals : int;  (** Steals that moved >= 2 elements in one claim. *)
  mean_batch : float;  (** Mean elements per steal batch; [nan] if no steals. *)
  hints_published : int;  (** Hints published by parking searchers ([Hinted]). *)
  hints_claimed : int;  (** Hints CAS-claimed by adders. *)
  hints_delivered : int;  (** Claims whose element landed in the parked searcher's segment. *)
  hints_expired : int;  (** Hints retracted unclaimed (backoff or quiescence). *)
  near_steals : int;  (** Steals from the thief's own locality group. *)
  far_steals : int;  (** Steals across groups; [near + far = steals] with a topology. *)
  near_probes : int;
  far_probes : int;
  mean_near_batch : float;  (** Mean elements per near steal; [nan] if none. *)
  mean_far_batch : float;  (** Mean elements per far steal; [nan] if none. *)
  traces : Mc_trace.t list;  (** Per-handle event rings; empty unless traced. *)
}

val run_cell :
  ?seconds:float -> ?capacity:int option -> ?seed:int -> ?trace:bool -> cell -> result
(** Run one cell. [seconds] overrides the workload's [duration_s];
    [capacity = None], [seed = 42], [trace = false]. Raises
    [Invalid_argument] on non-positive [domains] or [seconds], or a
    workload that is not closed-loop. *)

val run : config -> result list
(** Run the whole grid, fast-path cells and (when [config.baseline])
    their all-mutex twins, in a deterministic order. *)

val render : result list -> string
(** Human-readable table of every cell plus, for each (kind, domains, mix)
    pair present in both protocols, the fast-path speedup over the
    baseline, and for each Hinted cell whose Linear twin is present, the
    hinted-over-linear speedup. Topology cells additionally get a near/far
    telemetry table and, twin permitting, the aware-over-oblivious
    speedup. *)

val to_json : config -> result list -> Cpool_util.Json.t
(** The JSON document written to [BENCH_mcpool.json]: benchmark metadata
    (grid, duration, capacity, seed) and one object per cell. *)

val to_chrome : result list -> Cpool_util.Json.t
(** Chrome trace-event JSON of a traced run: one Chrome process per cell
    (named by its cell label), one track per worker domain — the
    [mc-throughput --trace] output. Meaningful only when the cells ran
    with [trace]. *)

val validate_json : Cpool_util.Json.t -> (int, string) Stdlib.result
(** Structural check of a parsed benchmark document (the [json-check]
    subcommand): returns the number of cells, or a description of the
    first malformed field. Beyond field presence it enforces the
    counter-accounting identities
    [fast_ops + locked_ops <= ops_attempted] and [ops <= ops_attempted]
    per cell, so a self-contradictory artifact fails the check. Cells
    carrying a ["topology"] field must also carry a boolean
    ["topology_aware"], numeric near/far probe and steal counters, and
    satisfy [near_steals + far_steals = steals] exactly. *)
