(** Multi-domain soak harness with invariant checking for {!Mc_pool}.

    Spawns one worker domain per segment; each runs a randomized add/remove
    mix against the wall clock, optionally cycling its registration
    (churn), then drains the pool to quiescence through blocking removes.
    A concurrent watcher domain polls segment sizes on bounded pools, so
    the capacity bound is checked at every instant, not just after the
    fact. After the run the harness verifies:

    - {b conservation} — every element added (prefill included) was removed
      exactly once and the pool drained to empty;
    - {b segment consistency} — each segment's atomic count equals its
      stored element count and respects the capacity;
    - {b capacity bound} — the watcher never saw a segment above its
      capacity;
    - {b slot lifecycle} — no claimed slots leak across register/deregister
      churn, a fresh registration still succeeds, and the registered-worker
      count returns to zero;
    - {b telemetry agreement} — the merged {!Mc_stats} counters match the
      ground-truth tallies and the pool's own steal counter;
    - {b trace agreement} (with [trace] on) — the {!Mc_trace} event-derived
      per-tag totals (steals, elements stolen, probes, adds, spills, local
      removes, sweeps, every hint counter) exactly match the merged
      {!Mc_stats}, and every park resolved with a wake. The totals are
      drop-proof, so the checks hold even when the rings overflowed.

    Stress/invariant harnesses of this shape (rather than unit tests
    alone) are how concurrent structures with capacity invariants are
    validated in practice; cf. Blelloch & Wei 2020 on bounded concurrent
    allocation and Kułakowski 2015 on concurrent-array validation. *)

type config = {
  domains : int;  (** Worker domains = pool segments. *)
  kind : Mc_pool.kind;
  capacity : int option;  (** Per-segment bound; [None] = unbounded. *)
  workload : Cpool_intf.Workload.t;
      (** The scenario: [mix] is the add probability, [initial] the
          prefill per segment, [duration_s] the mixed-op phase length.
          Must be closed-loop and uniform — the soak harness drives
          workers as fast as the pool allows. *)
  churn : bool;  (** Odd-numbered workers re-register every ~4096 ops. *)
  seed : int;
  trace : bool;  (** Trace every handle and cross-check events vs stats. *)
}

val default : config
(** 4 domains, linear, unbounded, {!Cpool_intf.Workload.default} (50%
    adds, 32 initial per segment, 1 s), churn on, tracing off. *)

val kind_name : Mc_pool.kind -> string

val config_name : config -> string
(** E.g. ["linear/capacity=64"] — the cell label used by the CLI. *)

type report = {
  config : config;
  duration : float;  (** Measured wall-clock of the mixed-op phase + drain. *)
  ops : int;  (** Operation attempts across all workers. *)
  initial_added : int;
  adds_ok : int;
  adds_rejected : int;
  removes_ok : int;  (** Successful removes, drain included. *)
  steals : int;
  per_worker : (string * Mc_stats.t) list;  (** One entry per worker domain. *)
  per_segment : (string * Mc_stats.t) list;
      (** Each segment's ring path counters (fast vs locked push/pop, inbox
          adds, batched steals). *)
  merged : Mc_stats.t;
      (** Pool-wide telemetry: every handle ever issued, prefill included. *)
  traces : Mc_trace.t list;
      (** Every handle's event ring (empty unless [config.trace]); export
          with {!Mc_trace.to_chrome} — the [mc-trace] subcommand's path. *)
  violations : string list;  (** Empty iff every invariant held. *)
}

val run : config -> report
(** [run cfg] executes one soak cell. Raises [Invalid_argument] on a
    nonsensical config (non-positive domains, negative duration,
    out-of-range mix, or a workload that is not closed-loop uniform). *)

val passed : report -> bool
(** [passed r] is [r.violations = []]. *)

val render : report -> string
(** Human-readable report: throughput, the per-domain telemetry table, the
    per-segment fast/locked path table, the pool-wide steal distributions
    (via {!Cpool_metrics.Render}), and the invariant verdicts. *)
