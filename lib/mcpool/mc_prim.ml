module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val fetch_and_add : int t -> int -> int
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
end

module type S = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
end

module Real = struct
  module Atomic = Atomic
  module Mutex = Mutex
end
