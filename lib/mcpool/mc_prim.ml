module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val make_padded : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val fetch_and_add : int t -> int -> int
  val compare_and_set : 'a t -> 'a -> 'a -> bool
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
end

module type PLAIN = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val racy_get : 'a t -> 'a
  (* A sanctioned racy read: the caller certifies the value is treated as
     garbage unless a subsequent CAS (or equivalent) validates that no
     conflicting write intervened. The checker's shim exempts it from
     happens-before race reporting; [get]/[set] remain fully checked. *)
end

module type S = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
  module Plain : PLAIN
end

module Real = struct
  module Atomic = struct
    include Stdlib.Atomic

    (* An atomic is a one-word heap block: consecutive [make]s land on the
       same cache line and false-share across domains. Re-homing each hot
       atomic in an oversized block keeps them a line apart. *)
    let make_padded v = Cpool_util.Pad.copy_as_padded (Stdlib.Atomic.make v)
  end

  module Mutex = Mutex

  module Plain = struct
    type 'a t = { mutable v : 'a }

    let make v = { v }
    let get c = c.v
    let set c x = c.v <- x
    let racy_get = get
  end
end
