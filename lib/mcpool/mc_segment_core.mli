(** The segment implementation, as a functor over {!Mc_prim.S}.

    {!Mc_segment} is [Make (Mc_prim.Real)] — the hardware instantiation,
    where the operations, the ring protocol and the ownership discipline
    are documented. The interleaving checker instantiates the very same
    code with instrumented shims ([Cpool_analysis.Sched.Prim]) whose every
    atomic and mutex operation is a scheduling point, so the schedule
    enumeration exercises the shipped segment logic — including the
    copy-then-CAS front-window claim shared by owner pops and stealers, and
    the MPSC inbox push/drain — not a hand-written model of it. *)

module type SEG = sig
  type 'a atomic
  type mutex
  type 'a t

  val make : ?capacity:int -> ?fast_path:bool -> id:int -> unit -> 'a t
  val id : 'a t -> int
  val capacity : 'a t -> int option
  val size : 'a t -> int
  val add : 'a t -> 'a -> unit
  val try_add : 'a t -> 'a -> bool
  val spill_add : 'a t -> 'a -> bool
  val spare : 'a t -> int
  val try_remove : 'a t -> 'a option
  val steal_half : ?max_take:int -> 'a t -> 'a Cpool.Steal.loot
  val deposit : 'a t -> 'a list -> 'a list
  val reserve : 'a t -> int -> int
  val refill : 'a t -> reserved:int -> 'a list -> unit

  val inbox_length : 'a t -> int
  (** Racy snapshot of the MPSC spill-inbox length (walks the stack). *)

  val stats : 'a t -> Mc_stats.t
  val invariant_ok : 'a t -> bool

  val debug_counts : 'a t -> int * int
  (** [(count, stored)]: unlocked snapshot of the atomic count and the
      stored element count, for checker invariants ([count <= capacity] at
      every instant; [count = stored] at quiescence). Not linearizable —
      harness use only. *)
end

module Make (P : Mc_prim.S) :
  SEG with type 'a atomic = 'a P.Atomic.t and type mutex = P.Mutex.t
