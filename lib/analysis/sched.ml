type lk = { mutable held : bool }

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Wait : lk -> unit Effect.t

(* True only while the scheduler is stepping a fiber. Outside a run (scenario
   setup, invariant probes) the shims execute directly, with no scheduling
   points — the run is single-threaded there. *)
let active = ref false

let yield () = if !active then Effect.perform Yield

module Prim = struct
  module Atomic = struct
    type 'a t = { mutable v : 'a }

    let make v = { v }

    (* Padding is a hardware layout concern; under the scheduler the plain
       cell is the whole semantics. *)
    let make_padded = make

    let get r =
      yield ();
      r.v

    let set r x =
      yield ();
      r.v <- x

    let exchange r x =
      yield ();
      let old = r.v in
      r.v <- x;
      old

    let fetch_and_add r d =
      yield ();
      let old = r.v in
      r.v <- old + d;
      old

    let compare_and_set r seen x =
      yield ();
      if r.v == seen then begin
        r.v <- x;
        true
      end
      else false
  end

  module Mutex = struct
    type t = lk

    let create () = { held = false }

    let rec lock m =
      if not !active then begin
        if m.held then failwith "Sched.Mutex.lock: deadlock outside a run";
        m.held <- true
      end
      else begin
        Effect.perform Yield;
        if m.held then begin
          Effect.perform (Wait m);
          lock m
        end
        else m.held <- true
      end

    let unlock m =
      yield ();
      m.held <- false
  end
end

type status =
  | Done
  | Ready of (unit -> status)
  | Waiting of lk * (unit -> status)

exception Deadlock
exception Exploded of string

let fiber (f : unit -> unit) : unit -> status =
 fun () ->
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> Done);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, status) Effect.Deep.continuation) ->
                Ready (fun () -> Effect.Deep.continue k ()))
          | Wait m ->
            Some (fun k -> Waiting (m, fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }

type instance = {
  threads : (unit -> unit) list;
  check_step : unit -> unit;
  check_final : unit -> unit;
}

let max_steps = 10_000

(* One complete execution. The first [forced] choices (indices into the
   enabled-thread list) are imposed; after that the first enabled thread
   runs. Returns the full (choice, width) trace for backtracking. *)
let run_once ~forced inst =
  let state = Array.of_list (List.map (fun f -> Ready (fiber f)) inst.threads) in
  let n = Array.length state in
  let choices = ref [] in
  let steps = ref 0 in
  let enabled () =
    let rec go i acc =
      if i < 0 then acc
      else
        let acc =
          match state.(i) with
          | Ready _ -> i :: acc
          | Waiting (m, _) when not m.held -> i :: acc
          | Waiting _ | Done -> acc
        in
        go (i - 1) acc
    in
    go (n - 1) []
  in
  let all_done () =
    Array.for_all (function Done -> true | Ready _ | Waiting _ -> false) state
  in
  let rec loop forced =
    match enabled () with
    | [] -> if all_done () then List.rev !choices else raise Deadlock
    | en ->
      incr steps;
      if !steps > max_steps then raise (Exploded "run exceeded max steps");
      let width = List.length en in
      let pick, forced =
        match forced with c :: rest -> (c, rest) | [] -> (0, [])
      in
      let tid = List.nth en pick in
      let resume =
        match state.(tid) with
        | Ready k | Waiting (_, k) -> k
        | Done -> assert false
      in
      active := true;
      let st = match resume () with
        | st ->
          active := false;
          st
        | exception e ->
          active := false;
          raise e
      in
      state.(tid) <- st;
      inst.check_step ();
      choices := (pick, width) :: !choices;
      loop forced
  in
  let trace = loop forced in
  inst.check_final ();
  trace

(* Bounded DFS over the schedule tree: rerun the (deterministic) instance
   from scratch for each schedule, deepest-first backtracking over the last
   under-explored choice point. *)
let explore ?(max_schedules = 1_000_000) make_instance =
  let schedules = ref 0 in
  let rec go forced =
    let trace = Array.of_list (run_once ~forced (make_instance ())) in
    incr schedules;
    if !schedules > max_schedules then raise (Exploded "too many schedules");
    let rec back i =
      if i < 0 then None
      else
        let pick, width = trace.(i) in
        if pick + 1 < width then Some i else back (i - 1)
    in
    match back (Array.length trace - 1) with
    | None -> ()
    | Some i ->
      let prefix = List.init i (fun j -> fst trace.(j)) @ [ fst trace.(i) + 1 ] in
      go prefix
  in
  go [];
  !schedules
