(* Object identities: every shim atomic, mutex and plain cell gets a small
   integer id at creation. The counter is reset before each instance
   construction inside [explore], and scenarios are deterministic functions
   of their construction, so the k-th object created carries the same id in
   every re-execution — which is what lets choice-point records (accessed
   object per step, sleep-set entries) survive across the stateless
   re-executions of the DFS. *)
let obj_counter = ref 0

let new_oid () =
  incr obj_counter;
  !obj_counter

(* What a scheduled step is about to do, known before it executes: the
   shims label their scheduling points with the accessed object and the
   access kind. [Spawn] is the pseudo-step that starts a fiber (runs its
   thread-local prologue up to the first primitive operation); it touches
   no shared object and conflicts with nothing. *)
type kind = Read | Write | Update | Lock | Unlock | Spawn

type step_info = { oid : int; kind : kind }

(* Two steps conflict (are "dependent" in the Mazurkiewicz sense) when they
   touch the same object and do not trivially commute. Kinds, not dynamic
   outcomes, decide: a failed CAS is still [Update], which over-approximates
   dependence — the safe direction for the reduction. *)
let conflicts a b =
  a.oid = b.oid
  &&
  match (a.kind, b.kind) with
  | Spawn, _ | _, Spawn -> false
  | Read, Read -> false
  | _ -> true

type lk = { mutable held : bool; m_oid : int }

type _ Effect.t += Step : step_info -> unit Effect.t
type _ Effect.t += Wait : lk -> unit Effect.t

(* True only while the scheduler is stepping a fiber. Outside a run
   (scenario setup, invariant probes) the shims execute directly, with no
   scheduling points and no race tracking — the run is single-threaded
   there. *)
let active = ref false

(* The per-run context: the happens-before tracker and the fiber currently
   being stepped, so the plain-cell shims can attribute their accesses. *)
type runctx = { race : Race.t; mutable cur_tid : int }

let ctx : runctx option ref = ref None

let sched_point oid kind = if !active then Effect.perform (Step { oid; kind })

module Prim = struct
  module Atomic = struct
    type 'a t = { mutable v : 'a; a_oid : int }

    let make v = { v; a_oid = new_oid () }

    (* Padding is a hardware layout concern; under the scheduler the plain
       cell is the whole semantics. *)
    let make_padded = make

    let get r =
      sched_point r.a_oid Read;
      r.v

    let set r x =
      sched_point r.a_oid Write;
      r.v <- x

    let exchange r x =
      sched_point r.a_oid Update;
      let old = r.v in
      r.v <- x;
      old

    let fetch_and_add r d =
      sched_point r.a_oid Update;
      let old = r.v in
      r.v <- old + d;
      old

    let compare_and_set r seen x =
      sched_point r.a_oid Update;
      if r.v == seen then begin
        r.v <- x;
        true
      end
      else false
  end

  module Mutex = struct
    type t = lk

    let create () = { held = false; m_oid = new_oid () }

    let rec lock m =
      if not !active then begin
        if m.held then failwith "Sched.Mutex.lock: deadlock outside a run";
        m.held <- true
      end
      else begin
        Effect.perform (Step { oid = m.m_oid; kind = Lock });
        if m.held then begin
          Effect.perform (Wait m);
          lock m
        end
        else m.held <- true
      end

    let unlock m =
      sched_point m.m_oid Unlock;
      m.held <- false
  end

  module Plain = struct
    type 'a t = { mutable pv : 'a; p_oid : int }

    let make v = { pv = v; p_oid = new_oid () }

    (* Plain accesses are NOT scheduling points — they add no schedules to
       the exploration — but each one is checked against the run's
       happens-before clocks, so an access the protocol leaves unordered
       raises [Race.Race] on whichever explored interleaving first exhibits
       the unsynchronized pair. *)
    let get c =
      (match !ctx with
      | Some r when !active -> Race.plain_read r.race ~tid:r.cur_tid ~oid:c.p_oid
      | Some _ | None -> ());
      c.pv

    let set c x =
      (match !ctx with
      | Some r when !active -> Race.plain_write r.race ~tid:r.cur_tid ~oid:c.p_oid
      | Some _ | None -> ());
      c.pv <- x

    (* The sanctioned racy read: unchecked and unrecorded. *)
    let racy_get c = c.pv
  end
end

type status =
  | Done
  | Ready of step_info * (unit -> status)
  | Waiting of lk * (unit -> status)

exception Deadlock
exception Exploded of string

let fiber ~tid (f : unit -> unit) : status =
  let start () =
    Effect.Deep.match_with f ()
      {
        retc = (fun () -> Done);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Step info ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  Ready (info, fun () -> Effect.Deep.continue k ()))
            | Wait m ->
              Some (fun k -> Waiting (m, fun () -> Effect.Deep.continue k ()))
            | _ -> None);
      }
  in
  Ready ({ oid = -1 - tid; kind = Spawn }, start)

let label_of_status = function
  | Ready (info, _) -> info
  | Waiting (m, _) -> { oid = m.m_oid; kind = Lock }
  | Done -> invalid_arg "label_of_status: Done"

type instance = {
  threads : (unit -> unit) list;
  check_step : unit -> unit;
  check_final : unit -> unit;
}

let max_steps = 10_000

type mode = Dpor | Exhaustive

type stats = { schedules : int; pruned : int }

(* One node of the schedule tree currently on the DFS stack: the state
   reached by the stack prefix above it, which thread ran from it in the
   current execution, which alternatives are scheduled ([backtrack]),
   already explored ([done_], with the label of their first step — the
   information sleep sets need), or provably redundant ([sleep0], inherited
   at entry). [step_clock] is the vector clock of the executed step, for
   the happens-before filter of the backtracking rule. *)
type cpoint = {
  cp_enabled : int list;
  mutable chosen : int;
  mutable label : step_info;
  mutable done_ : (int * step_info) list;
  mutable backtrack : int list;
  mutable sleep0 : (int * step_info) list;
  mutable step_clock : Race.Vclock.t;
}

(* Dynamic partial-order reduction (Flanagan–Godefroid style) with sleep
   sets, over stateless re-execution:

   - Each execution replays the forced stack prefix, then extends it by
     always picking the first enabled, non-sleeping thread.
   - When a step executes, every earlier step of the current stack that
     conflicts with it and is not already ordered before the stepping
     thread's clock gets a backtrack point: the stepping thread is
     scheduled for exploration at that earlier state (or every enabled
     thread there, if it was not enabled then).
   - A thread fully explored from a state goes to sleep for the state's
     remaining branches and wakes only when a dependent step executes;
     reaching a state with every enabled thread asleep proves the
     continuation redundant and prunes the execution.

   In [Exhaustive] mode every enabled thread is a backtrack point and sleep
   sets stay empty: the classic full DFS, kept as the ground truth the
   reduction is cross-validated against. *)
let explore_stats ?(mode = Dpor) ?(max_schedules = 1_000_000) make_instance =
  let stack : cpoint option array = Array.make (max_steps + 1) None in
  let stack_get d =
    match stack.(d) with Some cp -> cp | None -> assert false
  in
  let completed = ref 0 in
  let pruned = ref 0 in
  (* Runs one execution; returns [true] if it ran to completion, [false]
     if sleep-blocked. [replay_len] entries of [stack] carry forced
     choices; entries beyond are created (and counted) as the run deepens.
     Returns the final stack length through [stack_len]. *)
  let stack_len = ref 0 in
  let run_one replay_len =
    obj_counter := 0;
    let inst = make_instance () in
    let state =
      Array.of_list (List.mapi (fun tid f -> fiber ~tid f) inst.threads)
    in
    let n = Array.length state in
    let race = Race.create ~nthreads:n in
    let rc = { race; cur_tid = -1 } in
    ctx := Some rc;
    stack_len := replay_len;
    let steps = ref 0 in
    let enabled () =
      let rec go i acc =
        if i < 0 then acc
        else
          let acc =
            match state.(i) with
            | Ready _ -> i :: acc
            | Waiting (m, _) when not m.held -> i :: acc
            | Waiting _ | Done -> acc
          in
          go (i - 1) acc
      in
      go (n - 1) []
    in
    let all_done () =
      Array.for_all (function Done -> true | Ready _ | Waiting _ -> false) state
    in
    let add_backtrack cp t =
      if not (List.mem t cp.backtrack) then cp.backtrack <- t :: cp.backtrack
    in
    let rec loop d sleep =
      match enabled () with
      | [] -> if all_done () then true else raise Deadlock
      | en -> (
        incr steps;
        if !steps > max_steps then
          raise
            (Exploded
               (Printf.sprintf "run exceeded the %d-step bound" max_steps));
        let fresh_choice () =
          match
            List.find_opt (fun t -> not (List.mem_assoc t sleep)) en
          with
          | None -> None
          | Some t ->
            let cp =
              {
                cp_enabled = en;
                chosen = t;
                label = { oid = 0; kind = Spawn };
                done_ = [];
                backtrack = (if mode = Exhaustive then en else []);
                sleep0 = sleep;
                step_clock = Race.Vclock.make 0;
              }
            in
            stack.(d) <- Some cp;
            stack_len := d + 1;
            Some cp
        in
        let cp =
          if d < replay_len then begin
            let cp = stack_get d in
            (* The scenario must be a deterministic function of its
               construction, or forced prefixes would diverge. *)
            if cp.cp_enabled <> en then
              failwith "Sched.explore: nondeterministic scenario (enabled set \
                        changed across re-execution)";
            cp.sleep0 <- sleep;
            Some cp
          end
          else fresh_choice ()
        in
        match cp with
        | None ->
          (* Every enabled thread is asleep: any continuation from here
             only re-orders independent steps of already-explored
             executions. *)
          false
        | Some cp ->
          let tid = cp.chosen in
          let label = label_of_status state.(tid) in
          cp.label <- label;
          if not (List.mem_assoc tid cp.done_) then
            cp.done_ <- (tid, label) :: cp.done_;
          (* Backtrack-point insertion, against the clocks BEFORE this
             step's own updates. *)
          if mode = Dpor && label.kind <> Spawn then
            for i = d - 1 downto 0 do
              let cpi = stack_get i in
              if
                cpi.chosen <> tid
                && conflicts cpi.label label
                && not (Race.ordered_before race cpi.step_clock ~tid)
              then
                if List.mem tid cpi.cp_enabled then add_backtrack cpi tid
                else List.iter (add_backtrack cpi) cpi.cp_enabled
            done;
          Race.step race ~tid;
          (match label.kind with
          | Spawn -> ()
          | Read | Lock -> Race.acquire race ~tid ~oid:label.oid
          | Unlock -> Race.release race ~tid ~oid:label.oid
          | Write | Update ->
            Race.acquire race ~tid ~oid:label.oid;
            Race.release race ~tid ~oid:label.oid);
          cp.step_clock <- Race.snapshot race ~tid;
          let resume =
            match state.(tid) with
            | Ready (_, k) | Waiting (_, k) -> k
            | Done -> assert false
          in
          rc.cur_tid <- tid;
          active := true;
          let st =
            match resume () with
            | st ->
              active := false;
              st
            | exception e ->
              active := false;
              raise e
          in
          state.(tid) <- st;
          inst.check_step ();
          let sleep' =
            if mode = Exhaustive then []
            else
              List.filter
                (fun (t, l) -> t <> tid && not (conflicts l label))
                (cp.sleep0 @ List.filter (fun (t, _) -> t <> tid) cp.done_)
          in
          loop (d + 1) sleep')
    in
    let finished =
      match loop 0 [] with
      | finished ->
        ctx := None;
        finished
      | exception e ->
        ctx := None;
        raise e
    in
    if finished then inst.check_final ();
    finished
  in
  let rec drive replay_len =
    (if run_one replay_len then begin
       incr completed;
       if !completed > max_schedules then
         raise
           (Exploded
              (Printf.sprintf "exceeded the %d-schedule bound" max_schedules))
     end
     else incr pruned);
    (* Deepest-first: find the lowest stack entry with an unexplored,
       non-redundant alternative and redirect it. *)
    let rec back d =
      if d < 0 then None
      else
        let cp = stack_get d in
        let cands =
          List.filter
            (fun t ->
              (not (List.mem_assoc t cp.done_))
              && not (List.mem_assoc t cp.sleep0))
            (List.sort_uniq compare cp.backtrack)
        in
        match cands with [] -> back (d - 1) | t :: _ -> Some (d, t)
    in
    match back (!stack_len - 1) with
    | None -> ()
    | Some (d, t) ->
      let cp = stack_get d in
      cp.chosen <- t;
      drive (d + 1)
  in
  drive 0;
  { schedules = !completed; pruned = !pruned }

let explore ?mode ?max_schedules make_instance =
  (explore_stats ?mode ?max_schedules make_instance).schedules
