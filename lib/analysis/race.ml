(* Vector-clock happens-before tracking for one scheduled execution.

   The scheduler feeds every synchronisation step through [step] +
   [acquire]/[release]; the instrumented plain cells feed their accesses
   through [plain_read]/[plain_write]. Happens-before is the union of
   program order and release/acquire edges:

     release: mutex unlock, atomic write / RMW  (thread clock -> object)
     acquire: mutex lock,  atomic read / RMW    (object clock -> thread)

   Two plain accesses to the same cell from different fibers, at least one
   a write, with neither clock dominating the other, are concurrent — an
   unsynchronized access the shipped code must never perform, reported by
   raising {!Race}.

   Edges are only ever under-approximated with respect to the label-based
   dependence relation the DPOR explorer uses (reads do not release, so no
   read->write edge exists), which is the safe direction for both clients:
   a missing edge can only add backtrack points to the exploration or
   surface a plain access as racy, never hide one behind a fabricated
   ordering. *)

module Vclock = struct
  type t = int array

  let make n = Array.make n 0

  let copy = Array.copy

  let tick c i = c.(i) <- c.(i) + 1

  let merge_into ~into src =
    Array.iteri (fun i v -> if v > into.(i) then into.(i) <- v) src

  let leq a b =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
    go 0
end

exception Race of string

(* Per-cell access summary, FastTrack-style but unoptimised: the last write
   (owner fiber + its clock at the write) and the most recent read per
   fiber. A write that dominates every recorded read empties the read set
   — earlier reads are then ordered through it transitively. *)
type cell = {
  mutable last_write : (int * Vclock.t) option;
  mutable reads : (int * Vclock.t) list;
}

type t = {
  nthreads : int;
  clocks : Vclock.t array; (* current clock of each fiber *)
  objs : (int, Vclock.t) Hashtbl.t; (* release clocks of sync objects *)
  cells : (int, cell) Hashtbl.t; (* plain-cell access summaries *)
}

let create ~nthreads =
  {
    nthreads;
    clocks = Array.init nthreads (fun _ -> Vclock.make nthreads);
    objs = Hashtbl.create 32;
    cells = Hashtbl.create 32;
  }

let step t ~tid = Vclock.tick t.clocks.(tid) tid

let acquire t ~tid ~oid =
  match Hashtbl.find_opt t.objs oid with
  | Some c -> Vclock.merge_into ~into:t.clocks.(tid) c
  | None -> ()

let release t ~tid ~oid =
  match Hashtbl.find_opt t.objs oid with
  | Some c -> Vclock.merge_into ~into:c t.clocks.(tid)
  | None -> Hashtbl.replace t.objs oid (Vclock.copy t.clocks.(tid))

let snapshot t ~tid = Vclock.copy t.clocks.(tid)

let ordered_before t clock ~tid = Vclock.leq clock t.clocks.(tid)

let cell_of t oid =
  match Hashtbl.find_opt t.cells oid with
  | Some c -> c
  | None ->
    let c = { last_write = None; reads = [] } in
    Hashtbl.replace t.cells oid c;
    c

let racef fmt = Printf.ksprintf (fun m -> raise (Race m)) fmt

let plain_read t ~tid ~oid =
  let c = cell_of t oid in
  let clk = t.clocks.(tid) in
  (match c.last_write with
  | Some (wt, wc) when wt <> tid && not (Vclock.leq wc clk) ->
    racef
      "plain cell #%d: read by fiber %d races an unsynchronized write by \
       fiber %d"
      oid tid wt
  | Some _ | None -> ());
  c.reads <- (tid, Vclock.copy clk) :: List.remove_assoc tid c.reads

let plain_write t ~tid ~oid =
  let c = cell_of t oid in
  let clk = t.clocks.(tid) in
  (match c.last_write with
  | Some (wt, wc) when wt <> tid && not (Vclock.leq wc clk) ->
    racef
      "plain cell #%d: write by fiber %d races an unsynchronized write by \
       fiber %d"
      oid tid wt
  | Some _ | None -> ());
  List.iter
    (fun (rt, rc) ->
      if rt <> tid && not (Vclock.leq rc clk) then
        racef
          "plain cell #%d: write by fiber %d races an unsynchronized read by \
           fiber %d"
          oid tid rt)
    c.reads;
  (* Every recorded access is now <= this write's clock: earlier accesses
     are ordered through it, so the summaries can be collapsed. *)
  c.last_write <- Some (tid, Vclock.copy clk);
  c.reads <- []
