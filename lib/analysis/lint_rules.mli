(** The concurrency-discipline rules, as checks over one parsed [.ml].

    Rules (machine names in brackets):
    - R1 [raw-mutex] — no raw [Mutex.lock]/[Mutex.unlock] outside a
      [with_*]-named helper (matched on the last two path components, so
      [Stdlib.Mutex.lock] and functor-parameter mutexes are caught too).
    - R2 [non-atomic-rmw] — no [Atomic.set x (... Atomic.get x ...)]: the
      read and write are separate steps, so a concurrent update between them
      is lost. Also order-aware: an [Atomic.get x] earlier in the same
      function body followed by a blind constant store [Atomic.set x c] is a
      check-then-act with the same lost-update window. Both checks stand
      down for atomics the enclosing structure item drives through
      [compare_and_set] — the CAS-retry idiom is the sanctioned
      read-modify-write, and a plain store next to such a loop is a
      deliberate publish. Gets inside a nested [fun] do not order against
      sets outside it (and vice versa): a closure runs at an unrelated time.
      Use [fetch_and_add]/[compare_and_set]/[exchange], or suppress with
      [(* lint: allow non-atomic-rmw -- <reason> *)] when a lock or
      single-writer phase genuinely protects the window.
    - R3 [blocking-under-lock] — no blocking call ([Mutex.lock],
      [Unix.sleep*], [Domain.join], [Condition.wait], [Thread.delay/join])
      or nested [with_*] call inside the literal callback of a [with_*]
      helper.
    - R4 [ambient-random] — no global [Random.*] (or
      [Random.State.make_self_init]) where [ban_random] is set: the pool,
      simulator and checker must be pure functions of their seeds.
    - R6 [raw-obj] — no [Obj.magic]/[Obj.repr]/[Obj.obj] where [allow_obj]
      is unset. The unsafe casts are confined to the modules that own a
      uniform-representation container and are certified by the interleave
      scenarios ([mc_segment_core], [sched]); anywhere else they must carry
      a [(* lint: allow raw-obj -- <reason> *)].

    R5 [missing-mli] is a filesystem property checked by {!Lint_driver}. *)

type finding = { file : string; line : int; rule : string; message : string }

val raw_mutex : string
val non_atomic_rmw : string
val blocking_under_lock : string
val ambient_random : string
val raw_obj : string
val missing_mli : string
val bad_suppression : string
val parse_error : string

val all_rules : string list
(** Every rule name, for validating suppression comments. *)

val compare_findings : finding -> finding -> int
(** Order by file, then line, then rule. *)

val pp : Format.formatter -> finding -> unit
(** Renders ["file:line: [rule] message"]. *)

val check_source :
  file:string -> ban_random:bool -> allow_obj:bool -> string -> finding list
(** [check_source ~file ~ban_random ~allow_obj source] parses [source]
    (reporting a [parse-error] finding if it does not parse) and returns the
    raw AST-rule findings, before suppression filtering. *)
