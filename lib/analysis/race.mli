(** Vector-clock happens-before tracking and plain-access race detection
    for one scheduled execution.

    {!Sched} creates one {!t} per run and drives it from two sides:
    - every scheduled synchronisation step calls {!step} plus
      {!acquire}/{!release} according to its access kind (atomic reads
      acquire, atomic writes and RMWs acquire and release, mutex lock
      acquires, unlock releases);
    - the instrumented plain cells ([Sched.Prim.Plain]) report their
      accesses through {!plain_read}/{!plain_write}, which raise {!Race}
      when two fibers touch the same cell unsynchronized (at least one
      writing) — the happens-before definition of a data race, caught on
      {e any} explored interleaving, whether or not the racy pair executed
      adjacently.

    The thread clocks double as the happens-before oracle for the DPOR
    backtracking rule ({!snapshot}/{!ordered_before}). Edges are
    under-approximated relative to label-based dependence (reads do not
    release), the safe direction for both uses. *)

module Vclock : sig
  type t

  val make : int -> t
  (** All-zero clock of the given width. *)

  val copy : t -> t
  val tick : t -> int -> unit
  val merge_into : into:t -> t -> unit
  val leq : t -> t -> bool
end

exception Race of string
(** Two unsynchronized plain accesses, at least one a write: a data race in
    code that must be data-race free. The message names the cell and both
    fibers. *)

type t

val create : nthreads:int -> t

val step : t -> tid:int -> unit
(** Advance [tid]'s own clock component (one scheduled step). *)

val acquire : t -> tid:int -> oid:int -> unit
(** Merge sync object [oid]'s release clock into [tid]'s clock. *)

val release : t -> tid:int -> oid:int -> unit
(** Merge [tid]'s clock into sync object [oid]'s release clock. *)

val snapshot : t -> tid:int -> Vclock.t
(** Copy of [tid]'s current clock (the clock of its latest step). *)

val ordered_before : t -> Vclock.t -> tid:int -> bool
(** [ordered_before t c ~tid]: does the step whose clock was [c] happen
    before [tid]'s current point ([c <= clock tid])? The DPOR backtracking
    filter. *)

val plain_read : t -> tid:int -> oid:int -> unit
val plain_write : t -> tid:int -> oid:int -> unit
