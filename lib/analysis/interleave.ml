(* The production segment logic on the instrumented primitives: the checker
   exercises the shipped code, not a model of it. *)
module M = Cpool_mc.Mc_segment_core.Make (Sched.Prim)

type scenario = { name : string; instance : unit -> Sched.instance }

let failf name fmt = Printf.ksprintf (fun m -> failwith (name ^ ": " ^ m)) fmt

(* Always-invariant: the atomic count (stored + reservations) respects the
   bound at every primitive step — the property PR 1's races violated. *)
let bound_ok name seg () =
  let count, _stored = M.debug_counts seg in
  if count < 0 then failf name "count went negative (%d)" count;
  match M.capacity seg with
  | Some b when count > b -> failf name "capacity exceeded: count %d > bound %d" count b
  | Some _ | None -> ()

let all_of checks () = List.iter (fun f -> f ()) checks

(* Quiescent invariant: with no thread mid-operation, the count equals the
   stored length (no reservation leaked) and invariant_ok agrees. *)
let quiescent name seg =
  let count, stored = M.debug_counts seg in
  if count <> stored then
    failf name "reservation leaked: count %d <> stored %d at quiescence" count stored;
  if not (M.invariant_ok seg) then failf name "invariant_ok failed at quiescence"

let stored seg = snd (M.debug_counts seg)

(* Two threads race try_add on a capacity-2 segment: the bound must hold at
   every step and exactly the successful adds must be stored. *)
let try_add_capacity () =
  let name = "try-add capacity race" in
  let seg = M.make ~capacity:2 ~id:0 () in
  let ok = Array.make 2 0 in
  let adder tid xs () =
    List.iter (fun x -> if M.try_add seg x then ok.(tid) <- ok.(tid) + 1) xs
  in
  {
    Sched.threads = [ adder 0 [ 1; 2 ]; adder 1 [ 3 ] ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        let n = stored seg in
        if ok.(0) + ok.(1) <> n then
          failf name "successful adds %d <> stored %d" (ok.(0) + ok.(1)) n;
        if n <> 2 then failf name "expected the segment full (2), stored %d" n);
  }

(* A thief (steal_half + deposit into its own segment, the unbounded pool
   path) races an adder on the victim: no element is lost or duplicated. *)
let steal_vs_add () =
  let name = "steal_half vs add conservation" in
  let victim = M.make ~id:0 () in
  let own = M.make ~id:1 () in
  List.iter (M.add victim) [ 1; 2; 3 ];
  let returned = ref 0 in
  let thief () =
    match M.steal_half victim with
    | Cpool.Steal.Nothing -> ()
    | Cpool.Steal.Single _ -> returned := 1
    | Cpool.Steal.Batch (_, rest) ->
      returned := 1;
      (match M.deposit own rest with
      | [] -> ()
      | _ :: _ -> failf name "unbounded deposit rejected elements")
  in
  let adder () = M.add victim 4 in
  {
    Sched.threads = [ thief; adder ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 4 then failf name "conservation broken: %d elements of 4" total);
  }

(* The bounded steal path (reserve room, steal at most that, refill) racing
   a spill-style try_add into the thief's segment: the reservation must keep
   the bound intact at every instant and release exactly on refill. *)
let reserve_refill_race () =
  let name = "reserve/refill vs try_add" in
  let victim = M.make ~capacity:4 ~id:0 () in
  let own = M.make ~capacity:2 ~id:1 () in
  List.iter (fun x -> assert (M.try_add victim x)) [ 1; 2; 3 ];
  assert (M.try_add own 10);
  let returned = ref 0 in
  let rival_ok = ref 0 in
  let thief () =
    (* Mirrors Mc_pool.attempt_steal's bounded branch. *)
    let want = (M.size victim + 1) / 2 in
    let reserved = M.reserve own (max 0 (want - 1)) in
    match M.steal_half ~max_take:(reserved + 1) victim with
    | Cpool.Steal.Nothing -> M.refill own ~reserved []
    | Cpool.Steal.Single _ ->
      M.refill own ~reserved [];
      returned := 1
    | Cpool.Steal.Batch (_, rest) ->
      M.refill own ~reserved rest;
      returned := 1
  in
  let rival () = if M.try_add own 11 then rival_ok := 1 in
  {
    Sched.threads = [ thief; rival ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 4 + !rival_ok then
          failf name "conservation broken: %d elements of %d" total (4 + !rival_ok));
  }

(* Three threads on one capacity-2 segment: two adders and a stealer. *)
let three_way () =
  let name = "2 adders vs stealer (3 threads)" in
  let seg = M.make ~capacity:2 ~id:0 () in
  assert (M.try_add seg 1);
  let ok = Array.make 2 0 in
  let stolen = ref 0 in
  let adder tid x () = if M.try_add seg x then ok.(tid) <- 1 in
  let stealer () =
    match M.steal_half ~max_take:1 seg with
    | Cpool.Steal.Nothing -> ()
    | Cpool.Steal.Single _ -> stolen := 1
    | Cpool.Steal.Batch (_, rest) -> stolen := 1 + List.length rest
  in
  {
    Sched.threads = [ adder 0 2; adder 1 3; stealer ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        let total = stored seg + !stolen in
        if total <> 1 + ok.(0) + ok.(1) then
          failf name "conservation broken: %d elements of %d" total
            (1 + ok.(0) + ok.(1)));
  }

let scenarios =
  [
    { name = "try-add-capacity"; instance = try_add_capacity };
    { name = "steal-vs-add"; instance = steal_vs_add };
    { name = "reserve-refill"; instance = reserve_refill_race };
    { name = "three-way"; instance = three_way };
  ]

let run_all ppf =
  List.map
    (fun sc ->
      match Sched.explore sc.instance with
      | n ->
        Format.fprintf ppf "interleave: %-18s %6d schedules, all invariants hold@."
          sc.name n;
        (sc.name, n)
      | exception e ->
        failwith
          (Printf.sprintf "interleave %s failed: %s" sc.name (Printexc.to_string e)))
    scenarios
