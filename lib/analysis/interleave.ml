(* The production segment logic on the instrumented primitives: the checker
   exercises the shipped code, not a model of it.

   Ownership discipline (enforced by Mc_pool, assumed by the segment): one
   fiber per segment plays the OWNER and is the only caller of
   add/try_add/try_remove/deposit/reserve/refill on it; every other fiber
   reaches that segment only through spill_add and steal_half. The
   scenarios below respect this, because that is the protocol whose
   interleavings we must certify. *)
module M = Cpool_mc.Mc_segment_core.Make (Sched.Prim)

(* The hint board on the same instrumented primitives: the hinted hand-off
   scenarios below compose it with M's spill inbox exactly as
   Mc_pool.try_deliver / the parked hunt do. *)
module H = Cpool_mc.Mc_hints.Make (Sched.Prim)

type scenario = { name : string; instance : unit -> Sched.instance }

let failf name fmt = Printf.ksprintf (fun m -> failwith (name ^ ": " ^ m)) fmt

(* Always-invariant: the atomic count (stored + reservations) respects the
   bound at every primitive step — the property PR 1's races violated. *)
let bound_ok name seg () =
  let count, _stored = M.debug_counts seg in
  if count < 0 then failf name "count went negative (%d)" count;
  match M.capacity seg with
  | Some b when count > b -> failf name "capacity exceeded: count %d > bound %d" count b
  | Some _ | None -> ()

let all_of checks () = List.iter (fun f -> f ()) checks

(* Quiescent invariant: with no thread mid-operation, the count equals the
   stored length (no reservation leaked) and invariant_ok agrees. *)
let quiescent name seg =
  let count, stored = M.debug_counts seg in
  if count <> stored then
    failf name "reservation leaked: count %d <> stored %d at quiescence" count stored;
  if not (M.invariant_ok seg) then failf name "invariant_ok failed at quiescence"

let stored seg = snd (M.debug_counts seg)

let loot_list = function
  | Cpool.Steal.Nothing -> []
  | Cpool.Steal.Single x -> [ x ]
  | Cpool.Steal.Batch (x, rest) -> x :: rest

(* Linearizability recording: every segment operation a scenario performs
   goes through one of these wrappers, so each explored schedule leaves a
   complete invocation/response history for [Linz.check] (called from the
   scenario's [check_final]). Setup operations before the run record as
   fiber [-1]; their intervals complete before any fiber starts, so the
   oracle orders them first automatically. The wrappers themselves add no
   scheduling points — schedule counts are unchanged by recording. *)
let l_add h f seg s x = Linz.record h ~fiber:f ~seg (Linz.Add x) (fun () -> M.add s x)

let l_try_add h f seg s x =
  Linz.record h ~fiber:f ~seg (Linz.Try_add x) (fun () -> M.try_add s x)

let l_spill h f seg s x =
  Linz.record h ~fiber:f ~seg (Linz.Spill x) (fun () -> M.spill_add s x)

let l_remove h f seg s =
  Linz.record h ~fiber:f ~seg Linz.Remove (fun () -> M.try_remove s)

let l_steal h f seg s max_take =
  Linz.record h ~fiber:f ~seg Linz.Steal (fun () ->
      loot_list (M.steal_half ?max_take s))

let l_reserve h f seg s k =
  Linz.record h ~fiber:f ~seg (Linz.Reserve k) (fun () -> M.reserve s k)

let l_refill h f seg s reserved xs =
  Linz.record h ~fiber:f ~seg
    (Linz.Refill (reserved, xs))
    (fun () -> M.refill s ~reserved xs)

let l_deposit h f seg s xs =
  Linz.record h ~fiber:f ~seg (Linz.Deposit xs) (fun () -> M.deposit s xs)

(* The owner's try_add racing a foreign spill_add on a capacity-2 segment:
   the CAS capacity claims must admit exactly as many elements as fit, at
   most one of the two paths winning the last unit. *)
let try_add_capacity () =
  let name = "try-add capacity race" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:(Some 2);
  let seg = M.make ~capacity:2 ~id:0 () in
  let ok = Array.make 2 0 in
  let owner () =
    List.iter (fun x -> if l_try_add h 0 0 seg x then ok.(0) <- ok.(0) + 1) [ 1; 2 ]
  in
  let spiller () = if l_spill h 1 0 seg 3 then ok.(1) <- 1 in
  {
    Sched.threads = [ owner; spiller ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        let n = stored seg in
        if ok.(0) + ok.(1) <> n then
          failf name "successful adds %d <> stored %d" (ok.(0) + ok.(1)) n;
        if n <> 2 then failf name "expected the segment full (2), stored %d" n;
        Linz.check h);
  }

(* A thief (steal_half + deposit into its own segment, the unbounded pool
   path) races the victim's owner pushing: no element is lost or
   duplicated. *)
let steal_vs_add () =
  let name = "steal_half vs add conservation" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  Linz.declare_seg h ~id:1 ~capacity:None;
  let victim = M.make ~id:0 () in
  let own = M.make ~id:1 () in
  List.iter (l_add h (-1) 0 victim) [ 1; 2; 3 ];
  let returned = ref 0 in
  let thief () =
    match l_steal h 0 0 victim None with
    | [] -> ()
    | [ _ ] -> returned := 1
    | _ :: rest -> (
      returned := 1;
      match l_deposit h 0 1 own rest with
      | [] -> ()
      | _ :: _ -> failf name "unbounded deposit rejected elements")
  in
  let adder () = l_add h 1 0 victim 4 in
  {
    Sched.threads = [ thief; adder ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 4 then failf name "conservation broken: %d elements of 4" total;
        Linz.check h);
  }

(* The bounded steal path (reserve room, steal at most that, refill) racing
   a foreign spill_add into the thief's segment: the reservation must keep
   the bound intact at every instant and release exactly on refill. *)
let reserve_refill_race () =
  let name = "reserve/refill vs spill_add" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:(Some 4);
  Linz.declare_seg h ~id:1 ~capacity:(Some 2);
  let victim = M.make ~capacity:4 ~id:0 () in
  let own = M.make ~capacity:2 ~id:1 () in
  List.iter (fun x -> assert (l_try_add h (-1) 0 victim x)) [ 1; 2; 3 ];
  assert (l_try_add h (-1) 1 own 10);
  let returned = ref 0 in
  let rival_ok = ref 0 in
  let thief () =
    (* Mirrors Mc_pool.attempt_steal's bounded branch. *)
    let want = (M.size victim + 1) / 2 in
    let reserved = l_reserve h 0 1 own (max 0 (want - 1)) in
    match l_steal h 0 0 victim (Some (reserved + 1)) with
    | [] -> l_refill h 0 1 own reserved []
    | [ _ ] ->
      l_refill h 0 1 own reserved [];
      returned := 1
    | _ :: rest ->
      l_refill h 0 1 own reserved rest;
      returned := 1
  in
  let rival () = if l_spill h 1 1 own 11 then rival_ok := 1 in
  {
    Sched.threads = [ thief; rival ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 4 + !rival_ok then
          failf name "conservation broken: %d elements of %d" total (4 + !rival_ok);
        Linz.check h);
  }

(* Three threads on one segment: the owner popping, a foreign spill_add,
   and a stealer that may hit either the ring or steal_half's
   inbox-fallback branch. Baseline mode ([fast_path:false], the
   configuration the throughput benchmark compares against) keeps every
   operation mutex-serialized, which both certifies the all-mutex twin and
   keeps the 3-thread schedule space small even exhaustively. One element
   is preloaded into the ring and one into the inbox, so the stealer's
   ring-claim and inbox-pop branches, the owner's direct claim and its
   exchange-drain are all reachable depending on the schedule. *)
let three_way () =
  let name = "owner pop vs spill vs inbox steal (3 threads)" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~fast_path:false ~id:0 () in
  assert (l_try_add h (-1) 0 seg 1);
  assert (l_spill h (-1) 0 seg 2);
  let popped = ref 0 in
  let stolen = ref 0 in
  let owner () = match l_remove h 0 0 seg with Some _ -> popped := 1 | None -> () in
  let spiller () = ignore (l_spill h 1 0 seg 3) in
  let stealer () =
    match l_steal h 2 0 seg (Some 1) with
    | [] -> ()
    | loot -> stolen := List.length loot
  in
  {
    Sched.threads = [ owner; spiller; stealer ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        (* 2 preloaded + 1 spilled, of which the stealer takes at most one
           and the owner (never finding the segment empty) exactly one. *)
        if !popped <> 1 then failf name "owner pop found the segment empty";
        let total = stored seg + !popped + !stolen in
        if total <> 3 then failf name "conservation broken: %d elements of 3" total;
        Linz.check h);
  }

(* Two stealers racing CAS claims of the same ring front: the loot sets
   must be disjoint and conservation must hold — a claim-arbitration bug
   would hand an element to both thieves (the CAS succeeding twice from
   the same [top]) or strand one below the advanced cursor. *)
let steal_vs_steal () =
  let name = "steal vs steal CAS race" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~id:0 () in
  List.iter (l_add h (-1) 0 seg) [ 1; 2; 3; 4 ];
  let loots = Array.make 2 [] in
  let thief i () = loots.(i) <- l_steal h i 0 seg (Some 2) in
  {
    Sched.threads = [ thief 0; thief 1 ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        let disjoint =
          List.for_all (fun x -> not (List.mem x loots.(1))) loots.(0)
        in
        if not disjoint then
          failf name "loot not disjoint: [%s] vs [%s]"
            (String.concat ";" (List.map string_of_int loots.(0)))
            (String.concat ";" (List.map string_of_int loots.(1)));
        let rec drain acc =
          match M.try_remove seg with Some x -> drain (x :: acc) | None -> acc
        in
        let all = List.sort compare (loots.(0) @ loots.(1) @ drain []) in
        if all <> [ 1; 2; 3; 4 ] then
          failf name "elements lost or duplicated: [%s]"
            (String.concat ";" (List.map string_of_int all));
        Linz.check h);
  }

(* The one-element boundary: an owner pop and a steal racing for the last
   ring element. Both sides claim the same front window with the same CAS,
   so exactly one must win the element and the other must walk away with
   nothing — no duplication, no loss, no deadlock. *)
let pop_vs_steal_one () =
  let name = "one-element owner/stealer boundary" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~id:0 () in
  l_add h (-1) 0 seg 42;
  let popped = ref [] in
  let stolen = ref [] in
  let owner () =
    match l_remove h 0 0 seg with Some x -> popped := [ x ] | None -> ()
  in
  let stealer () = stolen := l_steal h 1 0 seg (Some 1) in
  {
    Sched.threads = [ owner; stealer ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        (match (!popped, !stolen) with
        | [ 42 ], [] | [], [ 42 ] -> ()
        | [], [] -> failf name "element lost: neither side took it"
        | _ ->
          failf name "element duplicated: popped [%s], stolen [%s]"
            (String.concat ";" (List.map string_of_int !popped))
            (String.concat ";" (List.map string_of_int !stolen)));
        if stored seg <> 0 then failf name "segment not empty at quiescence";
        Linz.check h);
  }

(* The MPSC inbox under fire: a foreign spiller CAS-pushing two elements
   while the owner's pop exchange-drains the stack into the ring. The
   drain must never lose a concurrent push (the exchange takes the whole
   stack or leaves the push for the next round), and every element must
   end exactly once in popped + stored. *)
let mpsc_push_vs_drain () =
  let name = "MPSC push vs exchange-drain" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~id:0 () in
  assert (l_spill h (-1) 0 seg 1);
  let popped = ref [] in
  let spilled = ref 1 in
  let owner () =
    match l_remove h 0 0 seg with Some x -> popped := [ x ] | None -> ()
  in
  let spiller () =
    if l_spill h 1 0 seg 2 then incr spilled;
    if l_spill h 1 0 seg 3 then incr spilled
  in
  {
    Sched.threads = [ owner; spiller ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        (* The inbox held an element before the run, so the owner's pop
           must drain and succeed regardless of the schedule. *)
        if !popped = [] then failf name "owner pop lost the drained elements";
        let rec drain acc =
          match M.try_remove seg with Some x -> drain (x :: acc) | None -> acc
        in
        let all = List.sort compare (!popped @ drain []) in
        let expect = List.init !spilled (fun i -> i + 1) in
        if all <> expect then
          failf name "elements lost or duplicated: [%s] of %d spills"
            (String.concat ";" (List.map string_of_int all))
            !spilled;
        Linz.check h);
  }

(* The heart of the new ring protocol: the owner's lock-free pop racing a
   stealer's window claim on the same segment. Checked with element
   identity, not just counts — a claim/revalidate bug would hand the same
   element to both sides (duplication) or to neither (loss). *)
let pop_vs_steal () =
  let name = "owner pop vs steal-claim" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~id:0 () in
  List.iter (l_add h (-1) 0 seg) [ 1; 2; 3 ];
  let popped = ref [] in
  let stolen = ref [] in
  let owner () =
    match l_remove h 0 0 seg with Some x -> popped := [ x ] | None -> ()
  in
  let stealer () = stolen := l_steal h 1 0 seg (Some 2) in
  {
    Sched.threads = [ owner; stealer ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        (* Drain what's left (quiescent, so direct calls are fine) and check
           the multiset: every element accounted for exactly once. *)
        let rec drain acc =
          match M.try_remove seg with Some x -> drain (x :: acc) | None -> acc
        in
        let all = List.sort compare (!popped @ !stolen @ drain []) in
        if all <> [ 1; 2; 3 ] then
          failf name "elements lost or duplicated: [%s]"
            (String.concat ";" (List.map string_of_int all));
        Linz.check h);
  }

(* An owner push racing the full bounded banking dance on two segments: the
   victim's owner pushes while a thief reserves room in its own bounded
   segment, steals a batch from the victim, and refills. Both bounds must
   hold at every step and every element must survive. *)
let push_vs_reserve () =
  let name = "owner push vs bounded reserve/steal/refill" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:(Some 3);
  Linz.declare_seg h ~id:1 ~capacity:(Some 2);
  let victim = M.make ~capacity:3 ~id:0 () in
  let own = M.make ~capacity:2 ~id:1 () in
  List.iter (fun x -> assert (l_try_add h (-1) 0 victim x)) [ 1; 2 ];
  let pushed = ref 0 in
  let returned = ref 0 in
  let owner () = if l_try_add h 0 0 victim 3 then pushed := 1 in
  let thief () =
    let want = (M.size victim + 1) / 2 in
    let reserved = l_reserve h 1 1 own (max 0 (want - 1)) in
    match l_steal h 1 0 victim (Some (reserved + 1)) with
    | [] -> l_refill h 1 1 own reserved []
    | [ _ ] ->
      l_refill h 1 1 own reserved [];
      returned := 1
    | _ :: rest ->
      l_refill h 1 1 own reserved rest;
      returned := 1
  in
  {
    Sched.threads = [ owner; thief ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 2 + !pushed then
          failf name "conservation broken: %d elements of %d" total (2 + !pushed);
        Linz.check h);
  }

(* The hinted hand-off's core race: a searcher publishing its hint and
   retracting it (the park/unpark edge) against an adder trying to claim it
   and deliver into the searcher's segment — Mc_pool.try_deliver vs the
   hinted hunt, on the shipped protocol. The retract CAS and the claim CAS
   linearize on the slot, so exactly one side must win, the element must
   land exactly once (delivered into the searcher's segment, or added to
   the adder's own), and the board must end Free with no waiter count
   leaked. *)
let hint_add_vs_park () =
  let name = "hint add vs park/retract" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  Linz.declare_seg h ~id:1 ~capacity:None;
  let seeker = M.make ~id:0 () in
  let adder_seg = M.make ~id:1 () in
  let board = H.create ~slots:2 () in
  let retracted = ref false in
  let claimed = ref false in
  let searcher () =
    (* Publish, then immediately try to unpark — the tightest
       park-then-retract window. A lost retract means the adder's delivery
       is in flight; the post-run checks absorb it (awaiting the release
       in-fiber would spin the DFS through unbounded schedules). *)
    H.publish board 0;
    match H.retract board 0 with
    | H.Retracted -> retracted := true
    | H.Claim_pending -> ()
  in
  let adder () =
    match H.try_claim board ~from:1 with
    | Some w ->
      claimed := true;
      if w <> 0 then failf name "claimed slot %d, expected 0" w;
      if not (l_spill h 1 0 seeker 7) then failf name "unbounded spill_add rejected";
      H.release board w
    | None -> l_add h 1 1 adder_seg 7
  in
  {
    Sched.threads = [ searcher; adder ];
    check_step =
      (fun () ->
        bound_ok name seeker ();
        bound_ok name adder_seg ();
        (* The waiter count is conservative, not exact: publish stores the
           state and bumps the count in two steps, so a claim landing in
           between decrements first and the count transiently reads -1.
           With one hint it can never leave [-1, 1]; it must be exactly 0
           again at quiescence. *)
        let w = H.waiters board in
        if w < -1 || w > 1 then failf name "waiter count %d out of [-1, 1]" w);
    check_final =
      (fun () ->
        quiescent name seeker;
        quiescent name adder_seg;
        if !retracted && !claimed then failf name "hint both retracted and claimed";
        if (not !retracted) && not !claimed then
          failf name "hint neither retracted nor claimed";
        if H.waiters board <> 0 then
          failf name "waiter count leaked: %d" (H.waiters board);
        if not (H.is_free board 0) then failf name "slot 0 not Free at quiescence";
        let delivered = stored seeker and local = stored adder_seg in
        if delivered + local <> 1 then
          failf name "element lost or duplicated: %d delivered + %d local" delivered
            local;
        if !claimed && delivered <> 1 then failf name "claim won but no delivery landed";
        if !retracted && local <> 1 then
          failf name "retract won but the add left its own segment";
        Linz.check h);
  }

(* Two adders racing to claim the single published hint: the claim CAS must
   admit exactly one winner — the loser falls back to its own segment, the
   winner delivers into the parked searcher's — and the board must end Free
   with the waiter count at zero. The searcher is already parked (the board
   is seeded before the run), which is the state Mc_pool reaches before any
   adder can observe the hint. *)
let hint_double_claim () =
  let name = "hint double-claim" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  Linz.declare_seg h ~id:1 ~capacity:None;
  Linz.declare_seg h ~id:2 ~capacity:None;
  let seeker = M.make ~id:0 () in
  let seg1 = M.make ~id:1 () in
  let seg2 = M.make ~id:2 () in
  let board = H.create ~slots:3 () in
  H.publish board 0;
  let wins = Array.make 2 false in
  let adder seg_id seg slot idx () =
    match H.try_claim board ~from:slot with
    | Some w ->
      wins.(idx) <- true;
      if w <> 0 then failf name "claimed slot %d, expected 0" w;
      if not (l_spill h idx 0 seeker (10 + idx)) then
        failf name "unbounded spill_add rejected";
      H.release board w
    | None -> l_add h idx seg_id seg (10 + idx)
  in
  {
    Sched.threads = [ adder 1 seg1 1 0; adder 2 seg2 2 1 ];
    check_step =
      (fun () ->
        bound_ok name seeker ();
        (* Seeded by a pre-run publish, so both transitions are complete:
           claims only ever decrement from a settled 1. *)
        let w = H.waiters board in
        if w < 0 || w > 1 then failf name "waiter count %d out of [0, 1]" w);
    check_final =
      (fun () ->
        quiescent name seeker;
        quiescent name seg1;
        quiescent name seg2;
        (match wins with
        | [| true; true |] -> failf name "both adders claimed the one hint"
        | [| false; false |] -> failf name "neither adder claimed the published hint"
        | _ -> ());
        if H.waiters board <> 0 then
          failf name "waiter count leaked: %d" (H.waiters board);
        if not (H.is_free board 0) then failf name "slot 0 not Free at quiescence";
        if stored seeker <> 1 then
          failf name "expected exactly one delivery, segment holds %d" (stored seeker);
        if stored seeker + stored seg1 + stored seg2 <> 2 then
          failf name "conservation broken: %d elements of 2"
            (stored seeker + stored seg1 + stored seg2);
        Linz.check h);
  }

(* ---- scenarios only the reduction can enumerate ---------------------- *)

(* Three stealers and the owner's pop converging on one ring: every claim
   CAS contends with every other, the doomed-thief copy window (the
   sanctioned racy read) is actually reachable, and loot disjointness is
   checked pairwise. Exhaustively this explodes past the schedule bound;
   under DPOR it completes, because most step pairs (distinct claim
   buffers, distinct loot cells) commute. *)
let three_stealers () =
  let name = "3 stealers vs owner pop" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~id:0 () in
  List.iter (l_add h (-1) 0 seg) [ 1; 2; 3; 4 ];
  let popped = ref [] in
  let loots = Array.make 3 [] in
  let owner () =
    match l_remove h 0 0 seg with Some x -> popped := [ x ] | None -> ()
  in
  let thief i () = loots.(i) <- l_steal h (i + 1) 0 seg (Some 2) in
  {
    Sched.threads = [ owner; thief 0; thief 1; thief 2 ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        let pairwise_disjoint =
          List.for_all
            (fun (i, j) ->
              List.for_all (fun x -> not (List.mem x loots.(j))) loots.(i))
            [ (0, 1); (0, 2); (1, 2) ]
        in
        if not pairwise_disjoint then failf name "stealer loot not disjoint";
        let rec drain acc =
          match M.try_remove seg with Some x -> drain (x :: acc) | None -> acc
        in
        let all =
          List.sort compare
            (!popped @ loots.(0) @ loots.(1) @ loots.(2) @ drain [])
        in
        if all <> [ 1; 2; 3; 4 ] then
          failf name "elements lost or duplicated: [%s]"
            (String.concat ";" (List.map string_of_int all));
        Linz.check h);
  }

(* The full hint life cycle under three-way contention: a searcher
   publishes and immediately retracts (the park/unpark edge) while two
   adders race each other — and the retract — to claim the hint. At most
   one of the three CASes wins the slot; the element accounting and board
   state must come out exact in every outcome. *)
let hint_three_way () =
  let name = "hint publish/claim/expire three-way" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  Linz.declare_seg h ~id:1 ~capacity:None;
  Linz.declare_seg h ~id:2 ~capacity:None;
  let seeker = M.make ~id:0 () in
  let seg1 = M.make ~id:1 () in
  let seg2 = M.make ~id:2 () in
  let board = H.create ~slots:3 () in
  let retracted = ref false in
  let wins = Array.make 2 false in
  let searcher () =
    H.publish board 0;
    match H.retract board 0 with
    | H.Retracted -> retracted := true
    | H.Claim_pending -> ()
  in
  let adder seg_id seg slot idx () =
    match H.try_claim board ~from:slot with
    | Some w ->
      wins.(idx) <- true;
      if w <> 0 then failf name "claimed slot %d, expected 0" w;
      if not (l_spill h (idx + 1) 0 seeker (10 + idx)) then
        failf name "unbounded spill_add rejected";
      H.release board w
    | None -> l_add h (idx + 1) seg_id seg (10 + idx)
  in
  {
    Sched.threads = [ searcher; adder 1 seg1 1 0; adder 2 seg2 2 1 ];
    check_step =
      (fun () ->
        bound_ok name seeker ();
        let w = H.waiters board in
        if w < -1 || w > 1 then failf name "waiter count %d out of [-1, 1]" w);
    check_final =
      (fun () ->
        quiescent name seeker;
        quiescent name seg1;
        quiescent name seg2;
        let claims = (if wins.(0) then 1 else 0) + if wins.(1) then 1 else 0 in
        if claims > 1 then failf name "both adders claimed the one hint";
        if !retracted && claims > 0 then
          failf name "hint both retracted and claimed";
        if H.waiters board <> 0 then
          failf name "waiter count leaked: %d" (H.waiters board);
        if not (H.is_free board 0) then failf name "slot 0 not Free at quiescence";
        if stored seeker <> claims then
          failf name "claims %d but %d deliveries" claims (stored seeker);
        if stored seeker + stored seg1 + stored seg2 <> 2 then
          failf name "conservation broken: %d elements of 2"
            (stored seeker + stored seg1 + stored seg2);
        Linz.check h);
  }

(* The MPSC inbox with two concurrent spillers against the owner's
   exchange-drain: push CASes contend with each other and with the drain's
   exchange. One spiller alone already saturates the exhaustive bound
   (473k schedules at the seed); two are far beyond it, but commute enough
   for the reduction. *)
let spill_spill_drain () =
  let name = "2 spillers vs exchange-drain" in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  let seg = M.make ~id:0 () in
  assert (l_spill h (-1) 0 seg 1);
  let popped = ref [] in
  let spilled = ref [ 1 ] in
  let spill_ok idx x = if l_spill h idx 0 seg x then spilled := x :: !spilled in
  let owner () =
    match l_remove h 0 0 seg with Some x -> popped := [ x ] | None -> ()
  in
  let spiller_a () =
    spill_ok 1 2;
    spill_ok 1 3
  in
  let spiller_b () =
    spill_ok 2 4;
    spill_ok 2 5
  in
  {
    Sched.threads = [ owner; spiller_a; spiller_b ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        if !popped = [] then failf name "owner pop lost the drained elements";
        let rec drain acc =
          match M.try_remove seg with Some x -> drain (x :: acc) | None -> acc
        in
        let all = List.sort compare (!popped @ drain []) in
        if all <> List.sort compare !spilled then
          failf name "elements lost or duplicated: [%s] of %d spills"
            (String.concat ";" (List.map string_of_int all))
            (List.length !spilled);
        Linz.check h);
  }

(* Topology-aware stealing under the two-group preset: the thief walks the
   probe sequence the shared locality model dictates (own segment first,
   the far one second — exactly Mc_pool's near-first search on a two-node
   machine) while the victim's owner pops. The order is data, not
   synchronization, so the schedule space is pop-vs-steal's; what this
   certifies is that driving the steal from Cpool_topology.near_first_order
   preserves conservation and linearizability on every interleaving. *)
let near_steal_vs_pop () =
  let name = "near-first steal vs owner pop" in
  let topo = Cpool_topology.two_group ~nodes:2 () in
  let order = Cpool_topology.near_first_order topo ~from:1 in
  let h = Linz.create () in
  Linz.declare_seg h ~id:0 ~capacity:None;
  Linz.declare_seg h ~id:1 ~capacity:None;
  let segs = [| M.make ~id:0 (); M.make ~id:1 () |] in
  List.iter (l_add h (-1) 0 segs.(0)) [ 1; 2; 3 ];
  let popped = ref 0 in
  let returned = ref 0 in
  let thief () =
    (* Walks the near-first order like Mc_pool.search_pass: skip the own
       slot, steal from the first non-empty victim, bank the remainder. *)
    Array.iter
      (fun v ->
        if v <> 1 && !returned = 0 then
          match l_steal h 0 v segs.(v) None with
          | [] -> ()
          | [ _ ] -> returned := 1
          | _ :: rest -> (
            returned := 1;
            match l_deposit h 0 1 segs.(1) rest with
            | [] -> ()
            | _ :: _ -> failf name "unbounded deposit rejected elements"))
      order
  in
  let owner () =
    match l_remove h 1 0 segs.(0) with Some _ -> popped := 1 | None -> ()
  in
  {
    Sched.threads = [ thief; owner ];
    check_step = all_of [ bound_ok name segs.(0); bound_ok name segs.(1) ];
    check_final =
      (fun () ->
        quiescent name segs.(0);
        quiescent name segs.(1);
        if order <> [| 1; 0 |] then failf name "near-first order from slot 1 must be [1;0]";
        (* steal_half of 3 takes at most 2, so the owner always finds one. *)
        if !popped <> 1 then failf name "owner pop found its own segment empty";
        let total = stored segs.(0) + stored segs.(1) + !returned + !popped in
        if total <> 3 then failf name "conservation broken: %d elements of 3" total;
        Linz.check h);
  }

let scenarios =
  [
    { name = "try-add-capacity"; instance = try_add_capacity };
    { name = "steal-vs-add"; instance = steal_vs_add };
    { name = "reserve-refill"; instance = reserve_refill_race };
    { name = "three-way"; instance = three_way };
    { name = "pop-vs-steal"; instance = pop_vs_steal };
    { name = "steal-vs-steal"; instance = steal_vs_steal };
    { name = "pop-vs-steal-one"; instance = pop_vs_steal_one };
    { name = "mpsc-push-drain"; instance = mpsc_push_vs_drain };
    { name = "push-vs-reserve"; instance = push_vs_reserve };
    { name = "hint-add-vs-park"; instance = hint_add_vs_park };
    { name = "hint-double-claim"; instance = hint_double_claim };
    { name = "three-stealers"; instance = three_stealers };
    { name = "hint-three-way"; instance = hint_three_way };
    { name = "spill-spill-drain"; instance = spill_spill_drain };
    { name = "near-steal-vs-pop"; instance = near_steal_vs_pop };
  ]

let count = List.length scenarios

let run_all ppf =
  List.map
    (fun sc ->
      match Sched.explore sc.instance with
      | n ->
        Format.fprintf ppf "interleave: %-18s %6d schedules, all invariants hold@."
          sc.name n;
        (sc.name, n)
      | exception e ->
        failwith
          (Printf.sprintf "interleave %s failed: %s" sc.name (Printexc.to_string e)))
    scenarios

(* ---- DPOR instrumentation and cross-validation ----------------------- *)

type stat = {
  s_name : string;
  dpor : int;
  dpor_pruned : int;
  exhaustive : int option;
}

let dpor_stats ?(exhaustive_cap = 1_000_000) () =
  List.map
    (fun sc ->
      let d = Sched.explore_stats ~mode:Dpor sc.instance in
      let exhaustive =
        match
          Sched.explore ~mode:Exhaustive ~max_schedules:exhaustive_cap
            sc.instance
        with
        | n -> Some n
        | exception Sched.Exploded _ -> None
      in
      { s_name = sc.name; dpor = d.schedules; dpor_pruned = d.pruned; exhaustive })
    scenarios

(* A deliberately broken two-fiber lost update on a shim atomic: the
   reduction must reach a failing schedule exactly as the full DFS does.
   (Read-then-write on one object conflicts with itself, so DPOR may not
   collapse the racing orders.) *)
let lost_update_instance () =
  let module A = Sched.Prim.Atomic in
  let c = A.make 0 in
  let bump () =
    let v = A.get c in
    A.set c (v + 1)
  in
  {
    Sched.threads = [ bump; bump ];
    check_step = (fun () -> ());
    check_final =
      (fun () -> if A.get c <> 2 then failwith "lost update");
  }

let cross_validate ppf =
  List.iter
    (fun n ->
      let sc = List.find (fun s -> s.name = n) scenarios in
      let ex = Sched.explore ~mode:Exhaustive sc.instance in
      let dp = Sched.explore ~mode:Dpor sc.instance in
      if dp >= ex then
        failwith
          (Printf.sprintf
             "cross-validate %s: DPOR explored %d schedules, not fewer than \
              the exhaustive %d"
             n dp ex);
      Format.fprintf ppf
        "cross-validate: %-16s verdicts agree (exhaustive %d, dpor %d)@." n ex
        dp)
    [ "reserve-refill"; "pop-vs-steal-one"; "steal-vs-steal" ];
  let fails mode =
    match Sched.explore ~mode lost_update_instance with
    | _ -> false
    | exception Failure _ -> true
  in
  if not (fails Sched.Exhaustive) then
    failwith "cross-validate: exhaustive DFS missed the seeded lost update";
  if not (fails Sched.Dpor) then
    failwith "cross-validate: DPOR missed the seeded lost update";
  Format.fprintf ppf "cross-validate: seeded lost update caught by both modes@."
