(* The production segment logic on the instrumented primitives: the checker
   exercises the shipped code, not a model of it.

   Ownership discipline (enforced by Mc_pool, assumed by the segment): one
   fiber per segment plays the OWNER and is the only caller of
   add/try_add/try_remove/deposit/reserve/refill on it; every other fiber
   reaches that segment only through spill_add and steal_half. The
   scenarios below respect this, because that is the protocol whose
   interleavings we must certify. *)
module M = Cpool_mc.Mc_segment_core.Make (Sched.Prim)

type scenario = { name : string; instance : unit -> Sched.instance }

let failf name fmt = Printf.ksprintf (fun m -> failwith (name ^ ": " ^ m)) fmt

(* Always-invariant: the atomic count (stored + reservations) respects the
   bound at every primitive step — the property PR 1's races violated. *)
let bound_ok name seg () =
  let count, _stored = M.debug_counts seg in
  if count < 0 then failf name "count went negative (%d)" count;
  match M.capacity seg with
  | Some b when count > b -> failf name "capacity exceeded: count %d > bound %d" count b
  | Some _ | None -> ()

let all_of checks () = List.iter (fun f -> f ()) checks

(* Quiescent invariant: with no thread mid-operation, the count equals the
   stored length (no reservation leaked) and invariant_ok agrees. *)
let quiescent name seg =
  let count, stored = M.debug_counts seg in
  if count <> stored then
    failf name "reservation leaked: count %d <> stored %d at quiescence" count stored;
  if not (M.invariant_ok seg) then failf name "invariant_ok failed at quiescence"

let stored seg = snd (M.debug_counts seg)

let loot_list = function
  | Cpool.Steal.Nothing -> []
  | Cpool.Steal.Single x -> [ x ]
  | Cpool.Steal.Batch (x, rest) -> x :: rest

(* The owner's try_add racing a foreign spill_add on a capacity-2 segment:
   the CAS capacity claims must admit exactly as many elements as fit, at
   most one of the two paths winning the last unit. *)
let try_add_capacity () =
  let name = "try-add capacity race" in
  let seg = M.make ~capacity:2 ~id:0 () in
  let ok = Array.make 2 0 in
  let owner () =
    List.iter (fun x -> if M.try_add seg x then ok.(0) <- ok.(0) + 1) [ 1; 2 ]
  in
  let spiller () = if M.spill_add seg 3 then ok.(1) <- 1 in
  {
    Sched.threads = [ owner; spiller ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        let n = stored seg in
        if ok.(0) + ok.(1) <> n then
          failf name "successful adds %d <> stored %d" (ok.(0) + ok.(1)) n;
        if n <> 2 then failf name "expected the segment full (2), stored %d" n);
  }

(* A thief (steal_half + deposit into its own segment, the unbounded pool
   path) races the victim's owner pushing: no element is lost or
   duplicated. *)
let steal_vs_add () =
  let name = "steal_half vs add conservation" in
  let victim = M.make ~id:0 () in
  let own = M.make ~id:1 () in
  List.iter (M.add victim) [ 1; 2; 3 ];
  let returned = ref 0 in
  let thief () =
    match M.steal_half victim with
    | Cpool.Steal.Nothing -> ()
    | Cpool.Steal.Single _ -> returned := 1
    | Cpool.Steal.Batch (_, rest) ->
      returned := 1;
      (match M.deposit own rest with
      | [] -> ()
      | _ :: _ -> failf name "unbounded deposit rejected elements")
  in
  let adder () = M.add victim 4 in
  {
    Sched.threads = [ thief; adder ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 4 then failf name "conservation broken: %d elements of 4" total);
  }

(* The bounded steal path (reserve room, steal at most that, refill) racing
   a foreign spill_add into the thief's segment: the reservation must keep
   the bound intact at every instant and release exactly on refill. *)
let reserve_refill_race () =
  let name = "reserve/refill vs spill_add" in
  let victim = M.make ~capacity:4 ~id:0 () in
  let own = M.make ~capacity:2 ~id:1 () in
  List.iter (fun x -> assert (M.try_add victim x)) [ 1; 2; 3 ];
  assert (M.try_add own 10);
  let returned = ref 0 in
  let rival_ok = ref 0 in
  let thief () =
    (* Mirrors Mc_pool.attempt_steal's bounded branch. *)
    let want = (M.size victim + 1) / 2 in
    let reserved = M.reserve own (max 0 (want - 1)) in
    match M.steal_half ~max_take:(reserved + 1) victim with
    | Cpool.Steal.Nothing -> M.refill own ~reserved []
    | Cpool.Steal.Single _ ->
      M.refill own ~reserved [];
      returned := 1
    | Cpool.Steal.Batch (_, rest) ->
      M.refill own ~reserved rest;
      returned := 1
  in
  let rival () = if M.spill_add own 11 then rival_ok := 1 in
  {
    Sched.threads = [ thief; rival ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 4 + !rival_ok then
          failf name "conservation broken: %d elements of %d" total (4 + !rival_ok));
  }

(* Three threads on one segment, all through the inbox: the owner popping
   (ring dry, so the pop falls back to the inbox), a foreign spill_add, and
   a stealer exercising steal_half's inbox-fallback branch — the one path
   no 2-thread scenario reaches. Baseline mode ([fast_path:false], the
   configuration the throughput benchmark compares against) keeps every
   step mutex-serialized, which both certifies the all-mutex protocol and
   keeps a 3-thread schedule space enumerable — the DFS has no
   partial-order reduction, and the lock-free fast path is covered
   exhaustively by the 2-thread scenarios above. *)
let three_way () =
  let name = "owner pop vs spill vs inbox steal (3 threads)" in
  let seg = M.make ~fast_path:false ~id:0 () in
  assert (M.spill_add seg 1);
  assert (M.spill_add seg 2);
  let popped = ref 0 in
  let stolen = ref 0 in
  let owner () = match M.try_remove seg with Some _ -> popped := 1 | None -> () in
  let spiller () = ignore (M.spill_add seg 3) in
  let stealer () =
    match M.steal_half ~max_take:1 seg with
    | Cpool.Steal.Nothing -> ()
    | Cpool.Steal.Single _ -> stolen := 1
    | Cpool.Steal.Batch (_, rest) -> stolen := 1 + List.length rest
  in
  {
    Sched.threads = [ owner; spiller; stealer ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        (* 2 preloaded + 1 spilled, of which the stealer takes at most one
           and the owner (never finding the segment empty) exactly one. *)
        if !popped <> 1 then failf name "owner pop found the segment empty";
        let total = stored seg + !popped + !stolen in
        if total <> 3 then failf name "conservation broken: %d elements of 3" total);
  }

(* The heart of the new ring protocol: the owner's lock-free pop racing a
   stealer's window claim on the same segment. Checked with element
   identity, not just counts — a claim/revalidate bug would hand the same
   element to both sides (duplication) or to neither (loss). *)
let pop_vs_steal () =
  let name = "owner pop vs steal-claim" in
  let seg = M.make ~id:0 () in
  List.iter (M.add seg) [ 1; 2; 3 ];
  let popped = ref [] in
  let stolen = ref [] in
  let owner () =
    match M.try_remove seg with Some x -> popped := [ x ] | None -> ()
  in
  let stealer () = stolen := loot_list (M.steal_half ~max_take:2 seg) in
  {
    Sched.threads = [ owner; stealer ];
    check_step = bound_ok name seg;
    check_final =
      (fun () ->
        quiescent name seg;
        (* Drain what's left (quiescent, so direct calls are fine) and check
           the multiset: every element accounted for exactly once. *)
        let rec drain acc =
          match M.try_remove seg with Some x -> drain (x :: acc) | None -> acc
        in
        let all = List.sort compare (!popped @ !stolen @ drain []) in
        if all <> [ 1; 2; 3 ] then
          failf name "elements lost or duplicated: [%s]"
            (String.concat ";" (List.map string_of_int all)));
  }

(* An owner push racing the full bounded banking dance on two segments: the
   victim's owner pushes while a thief reserves room in its own bounded
   segment, steals a batch from the victim, and refills. Both bounds must
   hold at every step and every element must survive. *)
let push_vs_reserve () =
  let name = "owner push vs bounded reserve/steal/refill" in
  let victim = M.make ~capacity:3 ~id:0 () in
  let own = M.make ~capacity:2 ~id:1 () in
  List.iter (fun x -> assert (M.try_add victim x)) [ 1; 2 ];
  let pushed = ref 0 in
  let returned = ref 0 in
  let owner () = if M.try_add victim 3 then pushed := 1 in
  let thief () =
    let want = (M.size victim + 1) / 2 in
    let reserved = M.reserve own (max 0 (want - 1)) in
    match M.steal_half ~max_take:(reserved + 1) victim with
    | Cpool.Steal.Nothing -> M.refill own ~reserved []
    | Cpool.Steal.Single _ ->
      M.refill own ~reserved [];
      returned := 1
    | Cpool.Steal.Batch (_, rest) ->
      M.refill own ~reserved rest;
      returned := 1
  in
  {
    Sched.threads = [ owner; thief ];
    check_step = all_of [ bound_ok name victim; bound_ok name own ];
    check_final =
      (fun () ->
        quiescent name victim;
        quiescent name own;
        let total = stored victim + stored own + !returned in
        if total <> 2 + !pushed then
          failf name "conservation broken: %d elements of %d" total (2 + !pushed));
  }

let scenarios =
  [
    { name = "try-add-capacity"; instance = try_add_capacity };
    { name = "steal-vs-add"; instance = steal_vs_add };
    { name = "reserve-refill"; instance = reserve_refill_race };
    { name = "three-way"; instance = three_way };
    { name = "pop-vs-steal"; instance = pop_vs_steal };
    { name = "push-vs-reserve"; instance = push_vs_reserve };
  ]

let run_all ppf =
  List.map
    (fun sc ->
      match Sched.explore sc.instance with
      | n ->
        Format.fprintf ppf "interleave: %-18s %6d schedules, all invariants hold@."
          sc.name n;
        (sc.name, n)
      | exception e ->
        failwith
          (Printf.sprintf "interleave %s failed: %s" sc.name (Printexc.to_string e)))
    scenarios
