type suppression = { supp_line : int; supp_rule : string; has_reason : bool }

(* Built by concatenation so this file's own source does not contain the
   marker text and trip the scanner. *)
let marker = "lint: " ^ "allow "

let is_slug_char c = (c >= 'a' && c <= 'z') || c = '-'

(* A suppression comment names the rule and a reason, e.g.
   [(* lint: allow non-atomic-rmw -- single writer during init *)]; the
   separator may be any punctuation. It silences findings of that rule on
   its own line and on the line below (so it can sit above the flagged
   expression). *)
let scan_suppressions source =
  let out = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match
        (* no String.find_substring in the stdlib: naive scan *)
        let n = String.length line and m = String.length marker in
        let rec find j =
          if j + m > n then None
          else if String.sub line j m = marker then Some (j + m)
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
        let n = String.length line in
        let fin = ref start in
        while !fin < n && is_slug_char line.[!fin] do
          incr fin
        done;
        let rule = String.sub line start (!fin - start) in
        (* A reason must follow the rule name: some word character before
           the closing of the comment. *)
        let rest = String.sub line !fin (n - !fin) in
        let rest =
          match String.index_opt rest '*' with
          | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' ->
            String.sub rest 0 j
          | _ -> rest
        in
        let has_reason =
          String.exists
            (fun c ->
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
            rest
        in
        out := { supp_line = i + 1; supp_rule = rule; has_reason } :: !out)
    lines;
  List.rev !out

let suppressed supps (f : Lint_rules.finding) =
  List.exists
    (fun s ->
      String.equal s.supp_rule f.rule
      && (s.supp_line = f.line || s.supp_line = f.line - 1))
    supps

let suppression_findings ~file supps =
  List.filter_map
    (fun s ->
      if not (List.mem s.supp_rule Lint_rules.all_rules) then
        Some
          {
            Lint_rules.file;
            line = s.supp_line;
            rule = Lint_rules.bad_suppression;
            message =
              Printf.sprintf "suppression names unknown rule %S" s.supp_rule;
          }
      else if not s.has_reason then
        Some
          {
            Lint_rules.file;
            line = s.supp_line;
            rule = Lint_rules.bad_suppression;
            message =
              "suppression carries no reason; write (* lint: "
              ^ "allow <rule> -- <why this is safe> *)";
          }
      else None)
    supps

(* The directories whose randomness must be seed-threaded (R4). The checker
   itself is included: schedule enumeration must be deterministic. *)
let ban_random_for path =
  let has sub =
    let n = String.length path and m = String.length sub in
    let rec find j = j + m <= n && (String.sub path j m = sub || find (j + 1)) in
    find 0
  in
  List.exists has [ "lib/pool"; "lib/sim"; "lib/mcpool"; "lib/analysis" ]

(* The modules sanctioned to use raw [Obj] (R6): the segment core owns the
   ring's uniform-representation slots, and the scheduler's shims must
   mirror them. Matched on the basename so vendored copies and the test
   fixtures stay covered by the rule. *)
let allow_obj_for path =
  match Filename.basename path with
  | "mc_segment_core.ml" | "sched.ml" -> true
  | _ -> false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_source ?ban_random ?allow_obj ~file source =
  let ban_random =
    match ban_random with Some b -> b | None -> ban_random_for file
  in
  let allow_obj =
    match allow_obj with Some b -> b | None -> allow_obj_for file
  in
  let supps = scan_suppressions source in
  let raw = Lint_rules.check_source ~file ~ban_random ~allow_obj source in
  let kept = List.filter (fun f -> not (suppressed supps f)) raw in
  List.sort Lint_rules.compare_findings (kept @ suppression_findings ~file supps)

let lint_file ?ban_random ?allow_obj path =
  lint_source ?ban_random ?allow_obj ~file:path (read_file path)

let is_ml path = Filename.check_suffix path ".ml"

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && entry.[0] = '.' then acc
        else if entry = "_build" then acc
        else walk (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if is_ml path then path :: acc
  else acc

let missing_mli_finding ~file supps =
  let mli = Filename.remove_extension file ^ ".mli" in
  if Sys.file_exists mli then None
  else
    let f =
      {
        Lint_rules.file;
        line = 1;
        rule = Lint_rules.missing_mli;
        message =
          "module has no .mli; every lib/ module must declare its interface";
      }
    in
    (* File-level rule: a suppression anywhere in the file applies. *)
    if List.exists (fun s -> String.equal s.supp_rule f.rule) supps then None
    else Some f

let lint_tree ?(require_mli = true) paths =
  let files =
    List.concat_map
      (fun p -> if Sys.is_directory p then List.rev (walk p []) else [ p ])
      paths
  in
  let findings =
    List.concat_map
      (fun file ->
        let source = read_file file in
        let from_source = lint_source ~file source in
        if require_mli then
          match missing_mli_finding ~file (scan_suppressions source) with
          | Some f -> f :: from_source
          | None -> from_source
        else from_source)
      files
  in
  List.sort Lint_rules.compare_findings findings

let report ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." Lint_rules.pp f) findings
