(* Wing–Gong linearizability checking of one explored execution against a
   sequential multiset-pool specification.

   The recorder timestamps each operation's invocation and response with a
   global logical counter; an execution's history is the set of recorded
   events with their real-time intervals. [check] then searches for a
   linearization: a total order of the events that (a) respects real-time
   precedence (if op1 responded before op2 was invoked, op1 comes first)
   and (b) is a legal sequential history of the spec below. The search is
   the classic Wing–Gong enumeration — repeatedly linearize some minimal
   (in precedence order) unlinearized event whose result the spec can
   produce — with memoization on (linearized-set, spec-state): two search
   branches reaching the same remaining-work-and-state are equivalent, and
   the first failure prunes both. *)

type _ call =
  | Add : int -> unit call
  | Try_add : int -> bool call
  | Spill : int -> bool call
  | Remove : int option call
  | Steal : int list call
  | Reserve : int -> int call
  | Refill : (int * int list) -> unit call
  | Deposit : int list -> int list call

type event =
  | Ev : {
      fiber : int;
      seg : int;
      call : 'r call;
      result : 'r;
      inv : int;
      resp : int;
    }
      -> event

type t = {
  mutable clock : int;
  mutable events : event list;  (* newest first *)
  mutable segs : (int * int option) list;  (* id, capacity *)
}

exception Not_linearizable of string

let create () = { clock = 0; events = []; segs = [] }

let declare_seg t ~id ~capacity =
  if List.mem_assoc id t.segs then
    invalid_arg "Linz.declare_seg: duplicate segment id";
  t.segs <- (id, capacity) :: t.segs

let record (type r) t ~fiber ~seg (call : r call) (f : unit -> r) : r =
  if not (List.mem_assoc seg t.segs) then
    invalid_arg "Linz.record: undeclared segment id";
  t.clock <- t.clock + 1;
  let inv = t.clock in
  let result = f () in
  t.clock <- t.clock + 1;
  let resp = t.clock in
  t.events <- Ev { fiber; seg; call; result; inv; resp } :: t.events;
  result

(* ---- the sequential specification ---------------------------------- *)

(* A segment is a bounded multiset plus a reservation count: [Reserve]
   grants room in advance, [Refill] returns it, and occupancy (size +
   outstanding reservations) never exceeds the capacity. *)
type seg_state = { bag : int list (* sorted *); resv : int; cap : int }

let sorted_insert x l =
  let rec go = function
    | [] -> [ x ]
    | y :: _ as l when x <= y -> x :: l
    | y :: rest -> y :: go rest
  in
  go l

(* Multiset difference: [remove_all xs bag] is [Some bag'] iff every
   element of [xs] occurs in [bag] (with multiplicity). *)
let remove_all xs bag =
  let rec remove1 x = function
    | [] -> None
    | y :: rest when x = y -> Some rest
    | y :: rest -> Option.map (fun r -> y :: r) (remove1 x rest)
  in
  List.fold_left
    (fun acc x -> Option.bind acc (remove1 x))
    (Some bag) xs

let size s = List.length s.bag

let room s = s.cap - size s - s.resv

(* [apply s call result] is [Some s'] iff the spec, in state [s], can
   respond [result] to [call] (yielding [s']). *)
let apply (type r) (s : seg_state) (call : r call) (result : r) :
    seg_state option =
  match call with
  | Add x -> Some { s with bag = sorted_insert x s.bag }
  | Try_add x ->
    if result then
      if room s > 0 then Some { s with bag = sorted_insert x s.bag } else None
    else if room s <= 0 then Some s
    else None
  | Spill x ->
    if result then
      if room s > 0 then Some { s with bag = sorted_insert x s.bag } else None
    else if room s <= 0 then Some s
    else None
  | Remove -> (
    match result with
    | Some x ->
      Option.map (fun bag -> { s with bag }) (remove_all [ x ] s.bag)
    | None -> if s.bag = [] then Some s else None)
  | Steal ->
    (* An empty steal is always legal: the shipped steal_half probes the
       ring and then the inbox in two separate reads, so it can miss
       elements that were always present somewhere — a spurious failure
       the pool's callers must (and do) tolerate. A non-empty loot must
       come out of the bag. *)
    if result = [] then Some s
    else Option.map (fun bag -> { s with bag }) (remove_all result s.bag)
  | Reserve k ->
    if result = min k (max 0 (room s)) then
      Some { s with resv = s.resv + result }
    else None
  | Refill (reserved, xs) ->
    if reserved <= s.resv && List.length xs <= reserved then
      Some
        {
          s with
          resv = s.resv - reserved;
          bag = List.fold_left (fun b x -> sorted_insert x b) s.bag xs;
        }
    else None
  | Deposit xs ->
    let accepted = List.filteri (fun i _ -> i < max 0 (room s)) xs
    and rejected = List.filteri (fun i _ -> i >= max 0 (room s)) xs in
    if result = rejected then
      Some
        {
          s with
          bag = List.fold_left (fun b x -> sorted_insert x b) s.bag accepted;
        }
    else None

(* ---- pretty-printing (for failure reports) -------------------------- *)

let ints l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

let call_to_string (type r) (call : r call) (result : r) =
  match call with
  | Add x -> Printf.sprintf "add %d" x
  | Try_add x -> Printf.sprintf "try_add %d -> %b" x result
  | Spill x -> Printf.sprintf "spill_add %d -> %b" x result
  | Remove ->
    Printf.sprintf "try_remove -> %s"
      (match result with Some x -> "Some " ^ string_of_int x | None -> "None")
  | Steal -> Printf.sprintf "steal_half -> %s" (ints result)
  | Reserve k -> Printf.sprintf "reserve %d -> %d" k result
  | Refill (r, xs) -> Printf.sprintf "refill ~reserved:%d %s" r (ints xs)
  | Deposit xs -> Printf.sprintf "deposit %s -> rejected %s" (ints xs) (ints result)

let event_to_string (Ev e) =
  Printf.sprintf "  [%d,%d] fiber %d seg %d: %s" e.inv e.resp e.fiber e.seg
    (call_to_string e.call e.result)

(* ---- the search ------------------------------------------------------ *)

let check t =
  let events = Array.of_list (List.rev t.events) in
  let n = Array.length events in
  if n > 60 then invalid_arg "Linz.check: history too long";
  let full = (1 lsl n) - 1 in
  let init_states =
    List.map
      (fun (id, cap) ->
        (id, { bag = []; resv = 0; cap = Option.value cap ~default:max_int }))
      t.segs
  in
  (* Memo: states visited and found not to reach [full]. The state key is
     the linearized set plus each segment's (bag, resv) — capacities are
     constant. *)
  let dead : (int * (int * (int list * int)) list, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let key mask states =
    (mask, List.map (fun (id, s) -> (id, (s.bag, s.resv))) states)
  in
  let rec search mask states =
    mask = full
    || (not (Hashtbl.mem dead (key mask states)))
       &&
       let progressed =
         (* Candidates: unlinearized events no unlinearized event fully
            precedes in real time. *)
         let minimal i =
           let (Ev e) = events.(i) in
           let blocked = ref false in
           for j = 0 to n - 1 do
             if mask land (1 lsl j) = 0 && j <> i then begin
               let (Ev e') = events.(j) in
               if e'.resp < e.inv then blocked := true
             end
           done;
           not !blocked
         in
         let rec try_each i =
           i < n
           && ((mask land (1 lsl i) = 0)
               && minimal i
               && (let (Ev e) = events.(i) in
                   match apply (List.assoc e.seg states) e.call e.result with
                   | Some s' ->
                     search
                       (mask lor (1 lsl i))
                       (List.map
                          (fun (id, s) -> if id = e.seg then (id, s') else (id, s))
                          states)
                   | None -> false)
              || try_each (i + 1))
         in
         try_each 0
       in
       if not progressed then Hashtbl.add dead (key mask states) ();
       progressed
  in
  if not (search 0 init_states) then
    raise
      (Not_linearizable
         ("no linearization of the recorded history:\n"
         ^ String.concat "\n"
             (List.map event_to_string (Array.to_list events))))
