(** Runs the {!Lint_rules} over files and trees, applying suppressions.

    A finding is suppressed by [(* lint: allow <rule> -- <reason> *)] on the
    finding's own line or the line directly above it. A suppression without
    a reason, or naming an unknown rule, is itself a [bad-suppression]
    finding. [missing-mli] (a file-level rule) is suppressed by such a
    comment anywhere in the file. *)

val lint_source :
  ?ban_random:bool ->
  ?allow_obj:bool ->
  file:string ->
  string ->
  Lint_rules.finding list
(** [lint_source ~file source] checks [source], applying suppressions found
    in it. [ban_random] defaults from [file]'s path: banned under
    [lib/pool], [lib/sim], [lib/mcpool] and [lib/analysis]. [allow_obj]
    defaults from [file]'s basename: raw [Obj] is sanctioned only in
    [mc_segment_core.ml] and [sched.ml]. Findings are sorted. *)

val lint_file :
  ?ban_random:bool -> ?allow_obj:bool -> string -> Lint_rules.finding list
(** [lint_file path] is {!lint_source} on the contents of [path]. *)

val lint_tree : ?require_mli:bool -> string list -> Lint_rules.finding list
(** [lint_tree paths] lints every [.ml] under the given files/directories
    (skipping [_build] and dotted entries), adding the [missing-mli] check
    when [require_mli] (default [true]). *)

val report : Format.formatter -> Lint_rules.finding list -> unit
(** One finding per line, in [file:line: [rule] message] form. *)
