(** Interleaving scenarios for the multicore segment.

    Each scenario builds a fresh segment (or victim/thief pair), runs 2–3
    fibers of real [Mc_segment_core] operations — owner push/pop, foreign
    spill_add, steal-window claim, reserve, refill — under {!Sched.explore},
    respecting the ownership discipline [Mc_pool] enforces (one owner fiber
    per segment), and asserts:
    - {b capacity}: the atomic count never exceeds the bound, at {e every}
      primitive step of {e every} schedule (reservations included);
    - {b conservation}: once quiescent, no element was lost or duplicated
      and no reservation leaked ([count = stored]) — the pop-vs-steal
      scenario checks element {e identity}, the failure mode of a broken
      steal-window claim.

    This covers both the bug class PR 1 fixed (unreserved deposits
    overfilling a bounded segment) and the lock-free ring protocol's
    characteristic races (owner pop vs steal claim; owner push vs bounded
    reservation), checked exhaustively rather than stochastically. *)

type scenario = { name : string; instance : unit -> Sched.instance }

val scenarios : scenario list

val run_all : Format.formatter -> (string * int) list
(** Explores every scenario, printing one line each; returns
    [(name, schedules)] per scenario. Raises [Failure] naming the scenario
    on the first invariant violation or deadlock. *)
