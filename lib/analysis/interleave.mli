(** Interleaving scenarios for the multicore segment.

    Each scenario builds a fresh segment (or victim/thief group), runs 2–4
    fibers of real [Mc_segment_core] operations — owner push/pop, foreign
    spill_add, steal-window claim, reserve, refill — under {!Sched.explore}
    (DPOR mode), respecting the ownership discipline [Mc_pool] enforces
    (one owner fiber per segment), and asserts:
    - {b capacity}: the atomic count never exceeds the bound, at {e every}
      primitive step of {e every} schedule (reservations included);
    - {b conservation}: once quiescent, no element was lost or duplicated
      and no reservation leaked ([count = stored]);
    - {b linearizability}: the recorded invocation/response history of the
      schedule has a witness order against the sequential multiset-pool
      spec ({!Linz}) — which catches consistency bugs (a stale failure, a
      double-handed element) that counting alone cannot;
    - {b data-race freedom}: every access to the ring's tracked plain cells
      is ordered by the happens-before relation of the schedule ({!Race},
      raised from inside the scheduler, not listed per scenario).

    This covers both the bug class PR 1 fixed (unreserved deposits
    overfilling a bounded segment) and the lock-free ring protocol's
    characteristic races (owner pop vs steal claim; owner push vs bounded
    reservation), checked exhaustively-up-to-commutation rather than
    stochastically. The last scenarios (three stealers on one ring; the
    three-way hint life cycle; dual spillers against the inbox drain) are
    enumerable {e only} with the reduction — their exhaustive schedule
    spaces exceed the explorer's bound. *)

type scenario = { name : string; instance : unit -> Sched.instance }

val scenarios : scenario list

val count : int
(** [List.length scenarios] — the number CI derives its expectations
    from. *)

val run_all : Format.formatter -> (string * int) list
(** Explores every scenario under DPOR, printing one line each; returns
    [(name, schedules)] per scenario. Raises [Failure] naming the scenario
    on the first invariant violation, race, non-linearizable history or
    deadlock. *)

type stat = {
  s_name : string;
  dpor : int;  (** schedules completed by the reduced exploration *)
  dpor_pruned : int;  (** sleep-set-blocked partial executions *)
  exhaustive : int option;
      (** full-DFS schedule count, or [None] if it exceeded the cap *)
}

val dpor_stats : ?exhaustive_cap:int -> unit -> stat list
(** Runs every scenario under both modes (the exhaustive run bounded by
    [exhaustive_cap], default one million) and reports the counts
    side by side. *)

val cross_validate : Format.formatter -> unit
(** The reduction's ground-truth check: on three small scenarios, both
    modes must pass with DPOR exploring strictly fewer schedules; on a
    seeded lost-update bug, both modes must fail. Raises [Failure] on any
    disagreement. *)
