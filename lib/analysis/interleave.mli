(** Interleaving scenarios for the multicore segment.

    Each scenario builds a fresh segment (or victim/thief pair), runs 2–3
    fibers of real [Mc_segment_core] operations — add, steal, reserve,
    refill — under {!Sched.explore}, and asserts:
    - {b capacity}: the atomic count never exceeds the bound, at {e every}
      primitive step of {e every} schedule (reservations included);
    - {b conservation}: once quiescent, no element was lost or duplicated
      and no reservation leaked ([count = stored]).

    This is the bug class PR 1 fixed (unreserved deposits overfilling a
    bounded segment; absolute count writes erasing reservations), checked
    exhaustively rather than stochastically. *)

type scenario = { name : string; instance : unit -> Sched.instance }

val scenarios : scenario list

val run_all : Format.formatter -> (string * int) list
(** Explores every scenario, printing one line each; returns
    [(name, schedules)] per scenario. Raises [Failure] naming the scenario
    on the first invariant violation or deadlock. *)
