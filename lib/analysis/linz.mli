(** A linearizability oracle for segment operations, run over every
    explored schedule.

    Scenarios wrap each segment operation in {!record}, which timestamps
    the invocation and response with a logical clock and stores the call
    and its result. After a schedule completes, {!check} decides whether
    the recorded history is linearizable against a sequential
    multiset-pool specification: every operation must appear to take
    effect atomically at some point between its invocation and response,
    with results a bounded multiset (plus reservation accounting) could
    actually have produced. The decision procedure is Wing–Gong
    enumeration — linearize any real-time-minimal operation the spec can
    accept, backtrack on dead ends — memoized on (linearized-set,
    spec-state).

    This subsumes the conservation checks (a lost or duplicated element
    has no linearization) and additionally rejects histories where each
    individual result is plausible but no single atomic order explains
    them all — e.g. two steals both claiming the same element, or a
    [try_add] failing while the segment verifiably had room for its whole
    duration.

    The one deliberate weakening: an empty steal is always legal, because
    the shipped [steal_half] probes ring and inbox in two separate reads
    and can therefore miss elements that were never absent simultaneously
    — a spurious failure the pool's callers tolerate by design. *)

type _ call =
  | Add : int -> unit call
  | Try_add : int -> bool call
  | Spill : int -> bool call
  | Remove : int option call
  | Steal : int list call
  | Reserve : int -> int call
  | Refill : (int * int list) -> unit call
      (** reservation being returned, elements refilled under it *)
  | Deposit : int list -> int list call
      (** offered elements; the result is the rejected suffix *)

type t

exception Not_linearizable of string
(** No linearization exists; the message dumps the recorded history with
    real-time intervals. *)

val create : unit -> t
(** A fresh, empty history. Scenarios create one per instance, so each
    explored schedule records into its own recorder. *)

val declare_seg : t -> id:int -> capacity:int option -> unit
(** Register a segment before recording operations on it. [capacity]
    [None] means unbounded. *)

val record : t -> fiber:int -> seg:int -> 'r call -> (unit -> 'r) -> 'r
(** [record t ~fiber ~seg call f] runs [f ()] bracketed by invocation and
    response timestamps and appends the completed event. Setup and
    check-time operations recorded outside the scheduled run (use [fiber =
    -1]) order before/after all concurrent events automatically, since the
    clock is global. *)

val check : t -> unit
(** Decide linearizability of everything recorded so far; raise
    {!Not_linearizable} if no witness order exists. *)
