type finding = { file : string; line : int; rule : string; message : string }

let raw_mutex = "raw-mutex"
let non_atomic_rmw = "non-atomic-rmw"
let blocking_under_lock = "blocking-under-lock"
let ambient_random = "ambient-random"
let raw_obj = "raw-obj"
let missing_mli = "missing-mli"
let bad_suppression = "bad-suppression"
let parse_error = "parse-error"

let all_rules =
  [
    raw_mutex;
    non_atomic_rmw;
    blocking_under_lock;
    ambient_random;
    raw_obj;
    missing_mli;
    bad_suppression;
    parse_error;
  ]

let compare_findings a b =
  match String.compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

let pp ppf f = Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

(* ---- longident helpers ------------------------------------------------- *)

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

(* [Mutex.lock] should also match [Stdlib.Mutex.lock] and [P.Mutex.lock]:
   compare the last two path components. *)
let suffix2 path =
  match List.rev path with f :: m :: _ -> Some (m, f) | [ f ] -> Some ("", f) | [] -> None

let is_mutex_op path =
  match suffix2 path with
  | Some ("Mutex", ("lock" | "unlock")) -> true
  | _ -> false

let blocking_name path =
  match suffix2 path with
  | Some ("Mutex", "lock") -> Some "Mutex.lock"
  | Some ("Unix", ("sleep" | "sleepf")) -> Some "Unix.sleep"
  | Some ("Domain", "join") -> Some "Domain.join"
  | Some ("Condition", "wait") -> Some "Condition.wait"
  | Some ("Thread", ("delay" | "join")) -> Some "Thread.delay/join"
  | _ -> None

let starts_with_with name = String.length name >= 5 && String.sub name 0 5 = "with_"

let is_with_helper path =
  match List.rev path with name :: _ -> starts_with_with name | [] -> false

(* Ambient [Random.*] pulls from the global, self-seeding generator; only the
   explicitly seeded [Random.State] escapes the ban (minus make_self_init). *)
let ambient_random_name path =
  let rec after_random = function
    | "Random" :: rest -> Some rest
    | "Stdlib" :: rest -> after_random rest
    | _ -> None
  in
  match after_random path with
  | Some [ "State"; "make_self_init" ] -> Some "Random.State.make_self_init"
  | Some ("State" :: _) -> None
  | Some [ f ] -> Some ("Random." ^ f)
  | Some _ | None -> None

(* ---- the AST pass ------------------------------------------------------ *)

let has_suffix2 e m f =
  match ident_path e with
  | Some p -> ( match suffix2 p with Some (m', f') -> m = m' && f = f' | None -> false)
  | None -> false

let expr_to_string e =
  try Format.asprintf "%a" Pprintast.expression e with _ -> "<unprintable>"

(* A "blind" stored value: a literal constant or (possibly constant-carrying)
   constructor — the shape of a check-then-act reset like
   [Atomic.set flag false] after a read of [flag]. Computed values are judged
   by the taint rule instead, so an unrelated store such as
   [Atomic.set t x] stays out of the order-aware check. *)
let rec is_blind_store (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some arg) -> is_blind_store arg
  | Pexp_tuple es -> List.for_all is_blind_store es
  | _ -> false

(* First arguments of every [compare_and_set] under [item], pretty-printed:
   the atomics this structure item already drives through the CAS-retry
   idiom. A target on this list is exempt from R2 — the item demonstrably
   knows the retry discipline for that atomic, so a plain store next to the
   loop (the publish after a won race, the reset on the fallback arm) is a
   deliberate choice, not an overlooked lost update. This is what keeps the
   lock-free segment's claim loops clean without blanket suppressions. *)
let cas_targets_in (item : Parsetree.structure_item) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply (f, (_, arg) :: _)
      when (match ident_path f with
           | Some p -> ( match suffix2 p with Some (_, "compare_and_set") -> true | _ -> false)
           | None -> false) ->
      acc := expr_to_string arg :: !acc
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure_item it item;
  List.sort_uniq String.compare !acc

(* Which atomics does [value] read? Targets are compared by pretty-printed
   form (identical source prints identically). [lookup] resolves an
   identifier to the targets its let-binding read — the taint environment,
   so a get split from its set by an intermediate binding still registers. *)
let targets_read_by ~lookup value =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply (f, (_, arg) :: _) when has_suffix2 f "Atomic" "get" ->
      acc := expr_to_string arg :: !acc
    | Pexp_ident { txt = Longident.Lident name; _ } -> acc := lookup name @ !acc
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it value;
  List.sort_uniq String.compare !acc

(* R6: the unsafe [Obj] trio. [Obj.magic] is never sanctioned; [repr]/[obj]
   only inside the modules that own a uniform-representation container (the
   ring's [Obj.t] slots) and are certified by the interleave scenarios. *)
let raw_obj_name path =
  match suffix2 path with
  | Some ("Obj", (("magic" | "repr" | "obj") as fn)) -> Some ("Obj." ^ fn)
  | _ -> None

let check_structure ~file ~ban_random ~allow_obj (str : Parsetree.structure) =
  let findings = ref [] in
  let add (loc : Location.t) rule message =
    findings :=
      { file; line = loc.loc_start.Lexing.pos_lnum; rule; message } :: !findings
  in
  (* Lexically enclosing let-binding names: raw Mutex.lock/unlock is legal
     only inside a [with_*] helper, the one place allowed to speak to the
     mutex directly. *)
  let bindings = ref [] in
  (* > 0 while visiting a literal (fun ...) argument of a with_* call: a
     critical section whose body must not block. *)
  let critical = ref 0 in
  let in_with_helper () = List.exists starts_with_with !bindings in
  (* R2 taint environment: innermost-first [(variable, atomics its binding
     read)]. A fresh binding masks an outer one, tainted or not. *)
  let taint : (string * string list) list ref = ref [] in
  let lookup_taint name =
    match List.assoc_opt name !taint with Some ts -> ts | None -> []
  in
  (* R2 order pass: atomics already [Atomic.get]-read earlier in the current
     function body, in traversal (= source) order. Scoped to the innermost
     [fun]: a get inside a spawned closure does not order against a set in
     the enclosing body, and vice versa — crossing that boundary is a
     different program point in time, not a get-then-set window. *)
  let seen_gets : string list ref = ref [] in
  (* Atomics the current structure item drives via [compare_and_set]. *)
  let cas_sanctioned : string list ref = ref [] in
  let super = Ast_iterator.default_iterator in
  let check_ident (e : Parsetree.expression) =
    match ident_path e with
    | None -> ()
    | Some path ->
      if is_mutex_op path && not (in_with_helper ()) then
        add e.pexp_loc raw_mutex
          "raw Mutex.lock/unlock outside a with_* helper; route the critical \
           section through an exception-safe with_lock-style wrapper";
      if !critical > 0 then begin
        (match blocking_name path with
        | Some name ->
          add e.pexp_loc blocking_under_lock
            (Printf.sprintf
               "blocking call %s inside a with_* critical section risks deadlock; \
                move it outside the lock"
               name)
        | None -> ());
        if is_with_helper path then
          add e.pexp_loc blocking_under_lock
            "nested lock acquisition (with_* call) inside a with_* critical \
             section risks deadlock; restructure to decide under one lock"
      end;
      (if ban_random then
         match ambient_random_name path with
         | Some name ->
           add e.pexp_loc ambient_random
             (Printf.sprintf
                "%s draws from ambient global state; all randomness here must flow \
                 through a seeded generator (Cpool_util.Rng / Cpool_sim.Rng)"
                name)
         | None -> ());
      if not allow_obj then
        match raw_obj_name path with
        | Some name ->
          add e.pexp_loc raw_obj
            (Printf.sprintf
               "%s defeats the type system outside the sanctioned \
                uniform-representation modules (mc_segment_core, sched); keep \
                unsafe casts behind their certified boundaries or suppress \
                with (* lint: allow raw-obj -- <reason> *)"
               name)
        | None -> ()
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    check_ident e;
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
      (* Visit the bindings under the outer taint, then the body with each
         [let x = ...Atomic.get t...] recorded as x tainted by t. *)
      List.iter (fun vb -> it.value_binding it vb) vbs;
      let added =
        List.filter_map
          (fun (vb : Parsetree.value_binding) ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } ->
              Some (txt, targets_read_by ~lookup:lookup_taint vb.pvb_expr)
            | _ -> None)
          vbs
      in
      let saved = !taint in
      taint := added @ !taint;
      it.expr it body;
      taint := saved
    | Pexp_fun _ | Pexp_function _ ->
      let saved = !seen_gets in
      seen_gets := [];
      super.expr it e;
      seen_gets := saved
    | Pexp_apply (f, args) ->
      (match args with
      | (_, arg) :: _ when has_suffix2 f "Atomic" "get" ->
        seen_gets := expr_to_string arg :: !seen_gets
      | _ -> ());
      (if has_suffix2 f "Atomic" "set" then
         match args with
         | (_, target) :: (_, value) :: _ ->
           let tstr = expr_to_string target in
           if not (List.mem tstr !cas_sanctioned) then begin
             let reads = targets_read_by ~lookup:lookup_taint value in
             if List.mem tstr reads then
               add e.pexp_loc non_atomic_rmw
                 "non-atomic read-modify-write: Atomic.set of a value derived from \
                  Atomic.get of the same atomic (possibly via intermediate \
                  let-bindings); use fetch_and_add / compare_and_set or suppress \
                  with (* lint: allow non-atomic-rmw -- <reason> *)"
             else if is_blind_store value && List.mem tstr !seen_gets then
               add e.pexp_loc non_atomic_rmw
                 "racy get-then-set: this function reads the atomic with \
                  Atomic.get and later overwrites it with a constant, so a \
                  concurrent update between the two steps is silently lost; \
                  use Atomic.exchange or a compare_and_set retry loop, or \
                  suppress with (* lint: allow non-atomic-rmw -- <reason> *)"
           end
         | _ -> ());
      let callee_is_with =
        match ident_path f with Some p -> is_with_helper p | None -> false
      in
      it.expr it f;
      List.iter
        (fun (_, (a : Parsetree.expression)) ->
          match a.pexp_desc with
          | (Pexp_fun _ | Pexp_function _) when callee_is_with ->
            incr critical;
            it.expr it a;
            decr critical
          | _ -> it.expr it a)
        args
    | _ -> super.expr it e
  in
  let value_binding it (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } ->
      bindings := txt :: !bindings;
      super.value_binding it vb;
      bindings := List.tl !bindings
    | _ -> super.value_binding it vb
  in
  let structure_item it (si : Parsetree.structure_item) =
    (* Per-item R2 state: prescan the item for CAS-driven atomics, start the
       get-order pass fresh. Nested items (module bodies) rescan for their
       own, narrower window — expressions only ever live in leaf items. *)
    cas_sanctioned := cas_targets_in si;
    seen_gets := [];
    super.structure_item it si
  in
  let it = { super with expr; value_binding; structure_item } in
  it.structure it str;
  List.rev !findings

let check_source ~file ~ban_random ~allow_obj source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> check_structure ~file ~ban_random ~allow_obj str
  | exception e ->
    let line =
      match e with
      | Syntaxerr.Error err -> (Syntaxerr.location_of_error err).loc_start.pos_lnum
      | _ -> 1
    in
    [ { file; line; rule = parse_error; message = Printexc.to_string e } ]
