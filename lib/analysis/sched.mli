(** Deterministic stateless model checker: bounded DFS over fiber
    interleavings with dynamic partial-order reduction.

    Threads are cooperative fibers (OCaml effects) whose only scheduling
    points are the shimmed primitive operations in {!Prim}: every
    [Atomic.get]/[set]/[fetch_and_add]/[compare_and_set] and
    [Mutex.lock]/[unlock] yields to the scheduler before executing
    atomically, labelled with the accessed object and access kind.
    {!explore} enumerates schedules of a terminating scenario by rerunning
    it from scratch, forcing a different choice prefix each time.

    Two modes:
    - {!Exhaustive} — the classic full DFS: every schedule of the scenario,
      kept as ground truth.
    - {!Dpor} (default) — Flanagan–Godefroid dynamic partial-order
      reduction with sleep sets: schedules that only commute independent
      (different-object, or read–read) steps are explored once. Sound for
      everything the checks can observe — any invariant violation,
      linearizability failure or data race reachable by the exhaustive DFS
      is reached by the reduced one.

    Plain cells ({!Prim.Plain}) are not scheduling points; their accesses
    are instead checked against a vector-clock happens-before relation
    ({!Race}), so an unsynchronized access pair raises [Race.Race] on any
    explored interleaving, adjacent or not.

    A fiber attempting to lock a held mutex blocks (it is not schedulable
    until the holder unlocks); if no fiber is runnable and some are
    blocked, the run raises {!Deadlock}. *)

type lk

(** Shim primitives satisfying {!Mc_prim.S}; instantiate
    [Mc_segment_core.Make (Sched.Prim)] to run the production segment code
    under the scheduler. Outside a run the operations execute directly, so
    scenario setup and invariant probes can use them freely. *)
module Prim : Cpool_mc.Mc_prim.S with type Mutex.t = lk

exception Deadlock
(** No fiber runnable, but not all are done: the schedule self-deadlocked. *)

exception Exploded of string
(** The step or schedule bound was exceeded — the scenario is too large to
    enumerate; shrink it (or use {!Dpor}). The message names the numeric
    bound that was hit. *)

type instance = {
  threads : (unit -> unit) list;  (** the fibers, started in order *)
  check_step : unit -> unit;
      (** invariant probe, run after every primitive step; raise to fail *)
  check_final : unit -> unit;
      (** conservation check, run once per completed schedule; raise to
          fail *)
}

type mode = Dpor | Exhaustive

type stats = {
  schedules : int;  (** completed schedules (checked to the end) *)
  pruned : int;
      (** executions cut short by sleep-set blocking — redundant
          interleavings detected before completion; always [0] under
          {!Exhaustive} *)
}

val explore_stats :
  ?mode:mode -> ?max_schedules:int -> (unit -> instance) -> stats
(** [explore_stats make] explores [make ()] (a fresh instance per schedule
    — the scenario must be a deterministic function of its construction)
    and returns the exploration counts. Any exception from a fiber or a
    check propagates, failing the exploration. [max_schedules] bounds
    completed schedules (default [1_000_000]); exceeding it raises
    {!Exploded}. *)

val explore : ?mode:mode -> ?max_schedules:int -> (unit -> instance) -> int
(** [explore make] is [(explore_stats make).schedules]. *)
