(** Deterministic bounded-DFS interleaving scheduler.

    Threads are cooperative fibers (OCaml effects) whose only scheduling
    points are the shimmed primitive operations in {!Prim}: every
    [Atomic.get]/[set]/[fetch_and_add]/[compare_and_set] and
    [Mutex.lock]/[unlock] yields to the scheduler before executing
    atomically. {!explore} then enumerates
    {e every} schedule of a terminating scenario by rerunning it from
    scratch, forcing a different choice prefix each time — exhaustive where
    a stochastic stress run is merely probabilistic.

    A fiber attempting to lock a held mutex blocks (it is not schedulable
    until the holder unlocks), so lock-induced pruning keeps the schedule
    tree small; if no fiber is runnable and some are blocked, the run raises
    {!Deadlock}. *)

type lk

(** Shim primitives satisfying {!Mc_prim.S}; instantiate
    [Mc_segment_core.Make (Sched.Prim)] to run the production segment code
    under the scheduler. Outside a run the operations execute directly, so
    scenario setup and invariant probes can use them freely. *)
module Prim : Cpool_mc.Mc_prim.S with type Mutex.t = lk

exception Deadlock
(** No fiber runnable, but not all are done: the schedule self-deadlocked. *)

exception Exploded of string
(** The step or schedule bound was exceeded — the scenario is too large to
    enumerate; shrink it. *)

type instance = {
  threads : (unit -> unit) list;  (** the fibers, started in order *)
  check_step : unit -> unit;
      (** invariant probe, run after every primitive step; raise to fail *)
  check_final : unit -> unit;
      (** conservation check, run once all fibers finished; raise to fail *)
}

val explore : ?max_schedules:int -> (unit -> instance) -> int
(** [explore make] enumerates every schedule of [make ()] (a fresh instance
    per schedule — the scenario must be a deterministic function of its
    construction) and returns the number of schedules explored. Any
    exception from a fiber or a check propagates, failing the exploration. *)
