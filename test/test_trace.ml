(* Tests for Mc_trace: the per-handle lock-free event tracer, its
   ring-overflow semantics, the Chrome exporter, the simulator-compatible
   size series, and the event/telemetry reconciliation in Mc_stress. *)

open Cpool_mc

let kinds =
  [
    ("linear", Mc_pool.Linear);
    ("random", Mc_pool.Random);
    ("tree", Mc_pool.Tree);
    ("hinted", Mc_pool.Hinted);
  ]

(* --- Clock ----------------------------------------------------------- *)

let test_clock_monotonic () =
  let a = Cpool_util.Clock.now_ns () in
  let b = Cpool_util.Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "positive" true (a > 0);
  Alcotest.(check bool) "elapsed non-negative" true
    (Cpool_util.Clock.elapsed_s ~since_ns:a >= 0.0);
  Alcotest.(check int) "ns round-trip" 1_500_000_000 (Cpool_util.Clock.ns_of_s 1.5)

(* --- Ring basics ----------------------------------------------------- *)

let test_create_invalid () =
  Alcotest.check_raises "capacity" (Invalid_argument "Mc_trace.create: capacity must be positive")
    (fun () -> ignore (Mc_trace.create ~capacity:0 ~domain:0 () : Mc_trace.t))

let test_capacity_rounds_to_pow2 () =
  let t = Mc_trace.create ~capacity:100 ~domain:0 () in
  Alcotest.(check int) "rounded up" 128 (Mc_trace.capacity t)

let test_record_and_read () =
  let t = Mc_trace.create ~capacity:8 ~domain:3 () in
  Alcotest.(check bool) "enabled" true (Mc_trace.enabled t);
  Alcotest.(check int) "domain" 3 (Mc_trace.domain t);
  Mc_trace.record t Mc_trace.Add ~a1:0 ~a2:1;
  Mc_trace.record t Mc_trace.Remove ~a1:0 ~a2:0;
  Alcotest.(check int) "recorded" 2 (Mc_trace.recorded t);
  Alcotest.(check int) "dropped" 0 (Mc_trace.dropped t);
  match Mc_trace.events t with
  | [ e1; e2 ] ->
    Alcotest.(check bool) "tags" true
      (e1.Mc_trace.tag = Mc_trace.Add && e2.Mc_trace.tag = Mc_trace.Remove);
    Alcotest.(check bool) "ordered stamps" true (e2.Mc_trace.ts_ns >= e1.Mc_trace.ts_ns);
    Alcotest.(check int) "track" 3 e1.Mc_trace.ev_domain
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_overflow_keeps_newest () =
  let t = Mc_trace.create ~capacity:4 ~domain:0 () in
  for i = 1 to 10 do
    Mc_trace.record t Mc_trace.Add ~a1:i ~a2:0
  done;
  Alcotest.(check int) "recorded survives overflow" 10 (Mc_trace.recorded t);
  Alcotest.(check int) "dropped = recorded - capacity" 6 (Mc_trace.dropped t);
  let evs = Mc_trace.events t in
  Alcotest.(check int) "ring holds capacity" 4 (List.length evs);
  Alcotest.(check (list int)) "newest events, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Mc_trace.a1) evs)

let test_counts_drop_proof () =
  let t = Mc_trace.create ~capacity:4 ~domain:0 () in
  for i = 1 to 9 do
    Mc_trace.record t Mc_trace.Steal_claim ~a1:0 ~a2:i
  done;
  Mc_trace.record t Mc_trace.Sweep ~a1:0 ~a2:0;
  (* The ring only holds 4 records, but the running totals see all 10. *)
  Alcotest.(check int) "count through overflow" 9 (Mc_trace.count t Mc_trace.Steal_claim);
  Alcotest.(check int) "arg_total through overflow" 45 (Mc_trace.arg_total t Mc_trace.Steal_claim);
  Alcotest.(check int) "other tag" 1 (Mc_trace.count t Mc_trace.Sweep);
  Alcotest.(check int) "absent tag" 0 (Mc_trace.count t Mc_trace.Park)

let test_disabled_records_nothing () =
  let t = Mc_trace.disabled in
  Alcotest.(check bool) "disabled" false (Mc_trace.enabled t);
  Mc_trace.record t Mc_trace.Add ~a1:1 ~a2:2;
  Mc_trace.record t Mc_trace.Steal_claim ~a1:1 ~a2:2;
  Alcotest.(check int) "no records" 0 (Mc_trace.recorded t);
  Alcotest.(check int) "no drops" 0 (Mc_trace.dropped t);
  Alcotest.(check int) "no counts" 0 (Mc_trace.count t Mc_trace.Add);
  Alcotest.(check (list reject)) "no events" [] (Mc_trace.events t)

(* --- Merge ----------------------------------------------------------- *)

let test_merge_sorted () =
  let a = Mc_trace.create ~capacity:16 ~domain:0 () in
  let b = Mc_trace.create ~capacity:16 ~domain:1 () in
  (* Interleave writers so neither ring dominates the head of the line. *)
  for _ = 1 to 5 do
    Mc_trace.record a Mc_trace.Add ~a1:0 ~a2:0;
    Mc_trace.record b Mc_trace.Remove ~a1:1 ~a2:0;
    Mc_trace.record a Mc_trace.Sweep ~a1:0 ~a2:0
  done;
  let merged = Mc_trace.merge [ a; b ] in
  Alcotest.(check int) "all events" 15 (List.length merged);
  let rec check_sorted = function
    | e1 :: (e2 :: _ as rest) ->
      Alcotest.(check bool) "timeline sorted" true (e1.Mc_trace.ts_ns <= e2.Mc_trace.ts_ns);
      check_sorted rest
    | _ -> ()
  in
  check_sorted merged;
  let counts = Mc_trace.counts [ a; b ] in
  Alcotest.(check int) "summed adds" 5 (List.assoc Mc_trace.Add counts);
  Alcotest.(check int) "summed removes" 5 (List.assoc Mc_trace.Remove counts);
  Alcotest.(check int) "every tag listed" (List.length Mc_trace.all_tags) (List.length counts)

(* --- Chrome export --------------------------------------------------- *)

let test_chrome_round_trip () =
  let t = Mc_trace.create ~capacity:32 ~domain:2 () in
  Mc_trace.record t Mc_trace.Add ~a1:2 ~a2:1;
  Mc_trace.record t Mc_trace.Steal_probe ~a1:0 ~a2:4;
  Mc_trace.record t Mc_trace.Park ~a1:2 ~a2:64;
  let doc = Mc_trace.to_chrome ~pid:7 [ t ] in
  (* The writer and parser must agree: serialize, re-parse, validate. *)
  match Cpool_util.Json.parse (Cpool_util.Json.to_string doc) with
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg
  | Ok reparsed ->
    (match Mc_trace.validate_chrome reparsed with
    | Error msg -> Alcotest.failf "validation failed: %s" msg
    | Ok n ->
      (* 3 instants + counter events for the two size-carrying tags. *)
      Alcotest.(check int) "event count" 5 n);
    let events =
      match Cpool_util.Json.member "traceEvents" reparsed with
      | Some (Cpool_util.Json.List l) -> l
      | _ -> Alcotest.fail "missing traceEvents"
    in
    List.iter
      (fun ev ->
        let str name =
          match Cpool_util.Json.member name ev with
          | Some (Cpool_util.Json.Str s) -> s
          | _ -> Alcotest.failf "missing string field %s" name
        in
        let num name =
          match Cpool_util.Json.member name ev with
          | Some j -> (
            match Cpool_util.Json.to_number j with
            | Some f -> f
            | None -> Alcotest.failf "non-numeric field %s" name)
          | None -> Alcotest.failf "missing numeric field %s" name
        in
        Alcotest.(check bool) "known phase" true (List.mem (str "ph") [ "i"; "C"; "M" ]);
        Alcotest.(check bool) "ts rebased" true (num "ts" >= 0.0);
        Alcotest.(check (float 0.0)) "pid" 7.0 (num "pid");
        Alcotest.(check (float 0.0)) "tid" 2.0 (num "tid");
        ignore (str "name"))
      events

let test_chrome_labeled_groups () =
  let mk d =
    let t = Mc_trace.create ~capacity:8 ~domain:d () in
    Mc_trace.record t Mc_trace.Sweep ~a1:d ~a2:0;
    t
  in
  let doc = Mc_trace.to_chrome_labeled [ ("cell a", [ mk 0 ]); ("cell b", [ mk 1 ]) ] in
  match Mc_trace.validate_chrome doc with
  | Error msg -> Alcotest.failf "validation failed: %s" msg
  | Ok n ->
    (* 2 sweeps + 2 process_name metadata events. *)
    Alcotest.(check int) "events + metadata" 4 n

let test_validate_rejects_junk () =
  let check_err label doc =
    match Mc_trace.validate_chrome doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected validation failure" label
  in
  check_err "no traceEvents" (Cpool_util.Json.Assoc [ ("x", Cpool_util.Json.Int 1) ]);
  check_err "event missing ph"
    (Cpool_util.Json.Assoc
       [
         ( "traceEvents",
           Cpool_util.Json.List
             [ Cpool_util.Json.Assoc [ ("name", Cpool_util.Json.Str "add") ] ] );
       ])

(* --- Simulator-compatible size series -------------------------------- *)

let test_size_series () =
  let t = Mc_trace.create ~capacity:64 ~domain:0 () in
  Mc_trace.record t Mc_trace.Add ~a1:0 ~a2:1;
  Mc_trace.record t Mc_trace.Add ~a1:0 ~a2:2;
  Mc_trace.record t Mc_trace.Remove ~a1:0 ~a2:1;
  Mc_trace.record t Mc_trace.Spill ~a1:1 ~a2:3;
  let trace = Mc_trace.size_series ~segments:2 [ t ] in
  let grid = Cpool_metrics.Trace.grid trace ~buckets:4 in
  Alcotest.(check int) "one row per segment" 2 (Array.length grid);
  Alcotest.(check int) "bucket count" 4 (Array.length grid.(0));
  (* The last observation of segment 1 was size 3. *)
  Alcotest.(check int) "final size visible" 3 grid.(1).(3);
  Alcotest.check_raises "segment out of range"
    (Invalid_argument "Trace.record: segment out of range") (fun () ->
      ignore (Mc_trace.size_series ~segments:1 [ t ]))

(* --- Pool integration ------------------------------------------------ *)

let test_pool_tracing_disabled_by_default () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  Alcotest.(check bool) "off by default" false (Mc_pool.tracing pool);
  let h = Mc_pool.register pool in
  Mc_pool.add pool h 1;
  ignore (Mc_pool.try_remove pool h);
  Alcotest.(check bool) "handle tracer disabled" false
    (Mc_trace.enabled (Mc_pool.trace_of_handle h));
  Alcotest.(check (list reject)) "no traces collected" [] (Mc_pool.traces pool)

let test_pool_trace_capacity_invalid () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Mc_pool.of_config: trace_capacity must be positive") (fun () ->
      ignore
        (Mc_pool.of_config
           { Mc_pool.Config.default with segments = 1; trace = true; trace_capacity = 0 }
          : unit Mc_pool.t))

let test_pool_records_ops kind () =
  let pool =
    Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 2; trace = true }
  in
  Alcotest.(check bool) "tracing on" true (Mc_pool.tracing pool);
  let h0 = Mc_pool.register_at pool 0 in
  let h1 = Mc_pool.register_at pool 1 in
  for i = 1 to 4 do
    Mc_pool.add pool h1 i
  done;
  (* h0 is empty locally, so this remove must probe and steal. *)
  (match Mc_pool.try_remove pool h0 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a stolen element");
  ignore (Mc_pool.try_remove_local pool h1);
  Mc_pool.deregister pool h0;
  Mc_pool.deregister pool h1;
  let traces = Mc_pool.traces pool in
  Alcotest.(check int) "both handles collected" 2 (List.length traces);
  let counts = Mc_trace.counts traces in
  Alcotest.(check int) "adds traced" 4 (List.assoc Mc_trace.Add counts);
  Alcotest.(check int) "steal traced" 1 (List.assoc Mc_trace.Steal_claim counts);
  Alcotest.(check bool) "probe traced" true (List.assoc Mc_trace.Steal_probe counts >= 1);
  Alcotest.(check bool) "local remove traced" true (List.assoc Mc_trace.Remove counts >= 1);
  (* Event-derived steal count matches the pool's own counter. *)
  Alcotest.(check int) "events agree with pool.steals" (Mc_pool.steals pool)
    (List.assoc Mc_trace.Steal_claim counts)

(* --- Stress reconciliation: events vs telemetry, per kind ------------- *)

let test_stress_reconciles kind () =
  let report =
    Mc_stress.run
      {
        Mc_stress.default with
        Mc_stress.domains = 3;
        kind;
        workload =
          { Cpool_intf.Workload.default with duration_s = 0.15; initial = 11 };
        trace = true;
      }
  in
  Alcotest.(check (list string)) "no violations" [] report.Mc_stress.violations;
  Alcotest.(check bool) "traces collected" true (report.Mc_stress.traces <> [])

let suites =
  let open Alcotest in
  [
    ( "mc_trace",
      [
        test_case "clock monotonic" `Quick test_clock_monotonic;
        test_case "create invalid" `Quick test_create_invalid;
        test_case "capacity pow2" `Quick test_capacity_rounds_to_pow2;
        test_case "record and read" `Quick test_record_and_read;
        test_case "overflow keeps newest" `Quick test_overflow_keeps_newest;
        test_case "counts drop-proof" `Quick test_counts_drop_proof;
        test_case "disabled records nothing" `Quick test_disabled_records_nothing;
        test_case "merge sorted" `Quick test_merge_sorted;
        test_case "chrome round trip" `Quick test_chrome_round_trip;
        test_case "chrome labeled groups" `Quick test_chrome_labeled_groups;
        test_case "validate rejects junk" `Quick test_validate_rejects_junk;
        test_case "size series" `Quick test_size_series;
        test_case "pool tracing off by default" `Quick test_pool_tracing_disabled_by_default;
        test_case "pool trace capacity invalid" `Quick test_pool_trace_capacity_invalid;
      ]
      @ List.map
          (fun (name, kind) ->
            test_case (Printf.sprintf "pool records ops (%s)" name) `Quick
              (test_pool_records_ops kind))
          kinds );
    ( "mc_trace_stress",
      List.map
        (fun (name, kind) ->
          test_case (Printf.sprintf "events reconcile with stats (%s)" name) `Slow
            (test_stress_reconciles kind))
        kinds );
  ]
