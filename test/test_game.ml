(* Tests for the 4x4x4 tic-tac-toe board, sequential minimax, and the
   parallel schedulers. *)

open Cpool_game

(* --- Board --- *)

let play_all board moves = List.fold_left Board.play board moves

let test_line_count () = Alcotest.(check int) "76 winning lines" 76 (Array.length Board.lines)

let test_lines_are_valid () =
  Array.iter
    (fun line ->
      Alcotest.(check int) "line length" 4 (Array.length line);
      Array.iter
        (fun i -> Alcotest.(check bool) "cell in range" true (i >= 0 && i < 64))
        line;
      let sorted = Array.copy line in
      Array.sort compare sorted;
      let distinct = Array.to_list sorted |> List.sort_uniq compare in
      Alcotest.(check int) "cells distinct" 4 (List.length distinct))
    Board.lines

let test_lines_distinct () =
  let canon line =
    let a = Array.copy line in
    Array.sort compare a;
    Array.to_list a
  in
  let all = Array.to_list Board.lines |> List.map canon |> List.sort_uniq compare in
  Alcotest.(check int) "no duplicate lines" 76 (List.length all)

let test_index_coords_roundtrip () =
  for i = 0 to 63 do
    let x, y, z = Board.coords i in
    Alcotest.(check int) "roundtrip" i (Board.index ~x ~y ~z)
  done;
  Alcotest.check_raises "bad coord" (Invalid_argument "Board.index: coordinate out of range")
    (fun () -> ignore (Board.index ~x:4 ~y:0 ~z:0))

let test_alternating_moves () =
  let b = Board.empty in
  Alcotest.(check bool) "X first" true (Board.to_move b = Board.X);
  let b = Board.play b 0 in
  Alcotest.(check bool) "then O" true (Board.to_move b = Board.O);
  Alcotest.(check bool) "stone placed" true (Board.cell b 0 = Some Board.X);
  Alcotest.(check int) "count" 1 (Board.move_count b)

let test_play_occupied_rejected () =
  let b = Board.play Board.empty 5 in
  Alcotest.check_raises "occupied" (Invalid_argument "Board.play: cell occupied") (fun () ->
      ignore (Board.play b 5))

let test_row_win () =
  (* X takes the x-axis row (0,0,0)..(3,0,0) = cells 0,1,2,3; O plays cells
     16.. elsewhere. *)
  let b = play_all Board.empty [ 0; 16; 1; 17; 2; 18; 3 ] in
  Alcotest.(check bool) "X wins" true (Board.winner b = Some Board.X);
  Alcotest.(check (list int)) "no moves after win" [] (Board.legal_moves b)

let test_space_diagonal_win () =
  let diag = List.init 4 (fun i -> Board.index ~x:i ~y:i ~z:i) in
  let fillers = [ 1; 2; 3 ] in
  let moves =
    (* X plays the diagonal, O plays fillers. *)
    List.concat (List.map2 (fun d f -> [ d; f ]) (List.filteri (fun i _ -> i < 3) diag) fillers)
    @ [ List.nth diag 3 ]
  in
  let b = play_all Board.empty moves in
  Alcotest.(check bool) "X wins on space diagonal" true (Board.winner b = Some Board.X)

let test_column_win_for_o () =
  (* O takes the vertical column (0,0,z): cells 0,16,32,48. X wastes moves. *)
  let b = play_all Board.empty [ 1; 0; 2; 16; 3; 32; 5; 48 ] in
  Alcotest.(check bool) "O wins" true (Board.winner b = Some Board.O)

let test_no_winner_initially () =
  Alcotest.(check bool) "empty board no winner" true (Board.winner Board.empty = None);
  Alcotest.(check int) "64 legal moves" 64 (List.length (Board.legal_moves Board.empty))

let test_evaluate_symmetric () =
  Alcotest.(check int) "empty is balanced" 0 (Board.evaluate Board.empty);
  let b = Board.play Board.empty 21 in
  Alcotest.(check bool) "X stone helps X" true (Board.evaluate b > 0);
  Alcotest.(check int) "negamax convention flips" (-Board.evaluate b)
    (Board.evaluate_for_side_to_move b)

let test_evaluate_win_dominates () =
  let b = play_all Board.empty [ 0; 16; 1; 17; 2; 18; 3 ] in
  Alcotest.(check int) "win score" Board.win_score (Board.evaluate b)

let test_to_string_shape () =
  let s = Board.to_string (Board.play Board.empty 0) in
  Alcotest.(check bool) "has X" true (String.contains s 'X');
  Alcotest.(check int) "4 layers" 4
    (List.length (List.filter (fun l -> String.length l > 1 && l.[0] = 'z')
                    (String.split_on_char '\n' s)))

let prop_legal_moves_shrink =
  QCheck.Test.make ~name:"playing reduces legal moves by one" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 20) (int_range 0 63))
    (fun candidate_moves ->
      let rec go board = function
        | [] -> true
        | m :: rest ->
          if Board.winner board <> None then true
          else if Board.cell board m <> None then go board rest
          else begin
            let before = List.length (Board.legal_moves board) in
            let board' = Board.play board m in
            Board.winner board' <> None
            || List.length (Board.legal_moves board') = before - 1 && go board' rest
          end
      in
      go Board.empty candidate_moves)

(* --- Minimax --- *)

let test_positions_count_shallow () =
  Alcotest.(check int) "1 ply" 64 (Minimax.positions_examined ~plies:1 Board.empty);
  Alcotest.(check int) "2 plies" (64 * 63) (Minimax.positions_examined ~plies:2 Board.empty)

let test_paper_position_count () =
  (* "To examine the first three moves of a 4 by 4 by 4 game requires
     examining 249,984 board positions." *)
  Alcotest.(check int) "3 plies = 249,984" 249_984
    (Minimax.positions_examined ~plies:3 Board.empty)

let test_minimax_depth_zero_is_eval () =
  let b = Board.play Board.empty 0 in
  Alcotest.(check int) "depth 0" (Board.evaluate_for_side_to_move b) (Minimax.value ~plies:0 b)

let test_minimax_takes_immediate_win () =
  (* X to move with 0,1,2 on a row: playing 3 wins. *)
  let b = play_all Board.empty [ 0; 16; 1; 17; 2; 18 ] in
  Alcotest.(check int) "win found" Board.win_score (Minimax.value ~plies:1 b);
  (match Minimax.best_move ~plies:1 b with
  | Some 3 -> ()
  | Some m -> Alcotest.failf "expected winning move 3, got %d" m
  | None -> Alcotest.fail "expected a move")

let test_minimax_avoids_loss () =
  (* O to move; X threatens 0,1,2->3. O must block cell 3 (depth 2 sees the
     threat). *)
  let b = play_all Board.empty [ 0; 16; 1; 17; 2 ] in
  (match Minimax.best_move ~plies:2 b with
  | Some 3 -> ()
  | Some m -> Alcotest.failf "expected block at 3, got %d" m
  | None -> Alcotest.fail "expected a move");
  Alcotest.(check bool) "loss foreseen without block" true (Minimax.value ~plies:2 b < 0)

let test_alpha_beta_agrees () =
  (* On a reduced position (few empty cells) alpha-beta must equal plain
     minimax at every depth. *)
  let b = play_all Board.empty [ 0; 1; 2; 3; 16; 17; 18; 19; 32; 33 ] in
  List.iter
    (fun plies ->
      Alcotest.(check int)
        (Printf.sprintf "depth %d" plies)
        (Minimax.value ~plies b)
        (Minimax.alpha_beta_value ~plies b))
    [ 0; 1; 2; 3 ]

(* --- Parallel schedulers --- *)

let small_board =
  (* Four scattered stones, no line threatened: a cheap but non-trivial
     position for the single-worker runs. *)
  let b = play_all Board.empty [ 0; 21; 42; 62 ] in
  assert (Board.winner b = None);
  b

let parallel_cfg ?(workers = 4) ?(scheduler = Parallel.Pool_scheduler Cpool.Pool.Linear)
    ?(plies = 2) () =
  {
    Parallel.default_config with
    workers;
    scheduler;
    plies;
    expand_cost = 2.0;
    leaf_cost = 50.0;
  }

let schedulers =
  [
    Parallel.Pool_scheduler Cpool.Pool.Linear;
    Parallel.Pool_scheduler Cpool.Pool.Random;
    Parallel.Pool_scheduler Cpool.Pool.Tree;
    Parallel.Stack_scheduler;
  ]

let test_parallel_matches_sequential scheduler () =
  let board = Board.play (Board.play Board.empty 0) 21 in
  let plies = 2 in
  let expected = Minimax.value ~plies board in
  let report = Parallel.analyse ~board (parallel_cfg ~scheduler ~plies ()) in
  Alcotest.(check int) "value matches sequential minimax" expected report.Parallel.value;
  Alcotest.(check int) "leaves match"
    (Minimax.positions_examined ~plies board)
    report.Parallel.leaves

let test_parallel_single_worker scheduler () =
  let board = small_board in
  let plies = 2 in
  let expected = Minimax.value ~plies board in
  let report = Parallel.analyse ~board (parallel_cfg ~workers:1 ~scheduler ~plies ()) in
  Alcotest.(check int) "single worker correct" expected report.Parallel.value

let test_parallel_speedup_monotone () =
  (* More workers must not slow the pool scheduler down (within a margin on
     this small workload). *)
  let board = Board.play Board.empty 0 in
  let time workers =
    (Parallel.analyse ~board (parallel_cfg ~workers ())).Parallel.duration
  in
  let t1 = time 1 and t4 = time 4 in
  Alcotest.(check bool) (Printf.sprintf "t1=%.0f > t4=%.0f" t1 t4) true (t1 > t4);
  Alcotest.(check bool) "meaningful speedup" true (t1 /. t4 > 2.0)

let test_parallel_pool_beats_stack_at_scale () =
  (* With 8 workers and modest per-task compute the global lock serialises;
     the pool should finish faster. *)
  let board = Board.play Board.empty 0 in
  let run scheduler =
    (Parallel.analyse ~board (parallel_cfg ~workers:8 ~scheduler ())).Parallel.duration
  in
  let pool_time = run (Parallel.Pool_scheduler Cpool.Pool.Linear) in
  let stack_time = run Parallel.Stack_scheduler in
  Alcotest.(check bool)
    (Printf.sprintf "pool %.0f < stack %.0f" pool_time stack_time)
    true (pool_time < stack_time)

let test_parallel_reports_scheduler_stats () =
  let board = Board.play Board.empty 0 in
  let pool_report = Parallel.analyse ~board (parallel_cfg ()) in
  Alcotest.(check bool) "pool totals present" true (pool_report.Parallel.pool_totals <> None);
  Alcotest.(check bool) "no stack stats" true (pool_report.Parallel.stack_lock = None);
  let stack_report =
    Parallel.analyse ~board (parallel_cfg ~scheduler:Parallel.Stack_scheduler ())
  in
  (match stack_report.Parallel.stack_lock with
  | Some (acquisitions, _) -> Alcotest.(check bool) "lock used" true (acquisitions > 0)
  | None -> Alcotest.fail "expected stack lock stats");
  Alcotest.(check bool) "no pool totals" true (stack_report.Parallel.pool_totals = None)

let test_parallel_deterministic () =
  let board = Board.play Board.empty 7 in
  let run () =
    let r = Parallel.analyse ~board (parallel_cfg ~scheduler:(Parallel.Pool_scheduler Cpool.Pool.Random) ()) in
    (r.Parallel.value, r.Parallel.duration, r.Parallel.tasks)
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let test_parallel_validates () =
  Alcotest.check_raises "workers" (Invalid_argument "Parallel.analyse: workers must be positive")
    (fun () -> ignore (Parallel.analyse { (parallel_cfg ()) with Parallel.workers = 0 }))

let scheduler_cases name f =
  List.map
    (fun s ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Parallel.scheduler_to_string s))
        `Quick (f s))
    schedulers

let suites =
  [
    ( "game.board",
      [
        Alcotest.test_case "76 lines" `Quick test_line_count;
        Alcotest.test_case "lines valid" `Quick test_lines_are_valid;
        Alcotest.test_case "lines distinct" `Quick test_lines_distinct;
        Alcotest.test_case "index/coords roundtrip" `Quick test_index_coords_roundtrip;
        Alcotest.test_case "alternating moves" `Quick test_alternating_moves;
        Alcotest.test_case "occupied rejected" `Quick test_play_occupied_rejected;
        Alcotest.test_case "row win" `Quick test_row_win;
        Alcotest.test_case "space diagonal win" `Quick test_space_diagonal_win;
        Alcotest.test_case "column win for O" `Quick test_column_win_for_o;
        Alcotest.test_case "no winner initially" `Quick test_no_winner_initially;
        Alcotest.test_case "evaluation sign conventions" `Quick test_evaluate_symmetric;
        Alcotest.test_case "win dominates evaluation" `Quick test_evaluate_win_dominates;
        Alcotest.test_case "diagram" `Quick test_to_string_shape;
        QCheck_alcotest.to_alcotest prop_legal_moves_shrink;
      ] );
    ( "game.minimax",
      [
        Alcotest.test_case "position counts" `Quick test_positions_count_shallow;
        Alcotest.test_case "paper's 249,984 positions" `Slow test_paper_position_count;
        Alcotest.test_case "depth zero" `Quick test_minimax_depth_zero_is_eval;
        Alcotest.test_case "takes immediate win" `Quick test_minimax_takes_immediate_win;
        Alcotest.test_case "avoids loss" `Quick test_minimax_avoids_loss;
        Alcotest.test_case "alpha-beta agrees" `Quick test_alpha_beta_agrees;
      ] );
    ( "game.parallel",
      scheduler_cases "matches sequential" test_parallel_matches_sequential
      @ scheduler_cases "single worker" test_parallel_single_worker
      @ [
          Alcotest.test_case "speedup monotone" `Quick test_parallel_speedup_monotone;
          Alcotest.test_case "pool beats stack" `Quick test_parallel_pool_beats_stack_at_scale;
          Alcotest.test_case "scheduler stats" `Quick test_parallel_reports_scheduler_stats;
          Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "validates config" `Quick test_parallel_validates;
        ] );
  ]
