(* Tests for the simulator's event priority queue. *)

open Cpool_sim

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

let test_single () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:1.5 ~seq:0 "a";
  Alcotest.(check int) "length" 1 (Pqueue.length q);
  (match Pqueue.peek q with
  | Some (t, s, v) ->
    Alcotest.(check (float 0.0)) "time" 1.5 t;
    Alcotest.(check int) "seq" 0 s;
    Alcotest.(check string) "payload" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek keeps" 1 (Pqueue.length q);
  (match Pqueue.pop q with
  | Some (_, _, v) -> Alcotest.(check string) "pop payload" "a" v
  | None -> Alcotest.fail "expected pop");
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

let test_time_order () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:3.0 ~seq:0 "c";
  Pqueue.add q ~time:1.0 ~seq:1 "a";
  Pqueue.add q ~time:2.0 ~seq:2 "b";
  let order = List.map (fun (_, _, v) -> v) (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:1.0 ~seq:10 "second";
  Pqueue.add q ~time:1.0 ~seq:5 "first";
  Pqueue.add q ~time:1.0 ~seq:20 "third";
  let order = List.map (fun (_, _, v) -> v) (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "seq breaks ties" [ "first"; "second"; "third" ] order

let test_nan_rejected () =
  let q = Pqueue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Pqueue.add: NaN time") (fun () ->
      Pqueue.add q ~time:Float.nan ~seq:0 ())

let test_clear () =
  let q = Pqueue.create () in
  for i = 0 to 99 do
    Pqueue.add q ~time:(float_of_int i) ~seq:i i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Pqueue.add q ~time:0.5 ~seq:0 7;
  (match Pqueue.pop q with
  | Some (_, _, v) -> Alcotest.(check int) "usable after clear" 7 v
  | None -> Alcotest.fail "expected pop")

let test_interleaved_growth () =
  (* Push and pop in waves to exercise grow/shrink paths. *)
  let q = Pqueue.create () in
  let popped = ref [] in
  for wave = 0 to 9 do
    for i = 0 to 199 do
      let key = float_of_int ((wave * 200) + ((i * 7) mod 200)) in
      Pqueue.add q ~time:key ~seq:((wave * 200) + i) i
    done;
    for _ = 0 to 99 do
      match Pqueue.pop q with
      | Some (t, _, _) -> popped := t :: !popped
      | None -> Alcotest.fail "unexpected empty"
    done
  done;
  let remaining = List.length (Pqueue.to_sorted_list q) in
  Alcotest.(check int) "popped count" 1000 (List.length !popped);
  Alcotest.(check int) "remaining count" 1000 remaining

let prop_sorts_any_sequence =
  QCheck.Test.make ~name:"pqueue sorts any keyed sequence" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_nat))
    (fun pairs ->
      let q = Pqueue.create () in
      List.iteri (fun i (t, _) -> Pqueue.add q ~time:t ~seq:i i) pairs;
      let out = Pqueue.to_sorted_list q in
      let keys = List.map (fun (t, s, _) -> (t, s)) out in
      keys = List.sort compare keys && List.length out = List.length pairs)

let prop_pop_is_minimum =
  QCheck.Test.make ~name:"pop always returns current minimum" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun i t -> Pqueue.add q ~time:t ~seq:i ()) times;
      match Pqueue.pop q with
      | None -> false
      | Some (t, _, _) -> List.for_all (fun u -> t <= u) times)

let suites =
  [
    ( "pqueue",
      [
        Alcotest.test_case "empty queue" `Quick test_empty;
        Alcotest.test_case "single element" `Quick test_single;
        Alcotest.test_case "time ordering" `Quick test_time_order;
        Alcotest.test_case "FIFO on equal times" `Quick test_fifo_ties;
        Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
        Alcotest.test_case "clear resets" `Quick test_clear;
        Alcotest.test_case "interleaved growth" `Quick test_interleaved_growth;
        QCheck_alcotest.to_alcotest prop_sorts_any_sequence;
        QCheck_alcotest.to_alcotest prop_pop_is_minimum;
      ] );
  ]
