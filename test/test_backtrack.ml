(* Tests for the backtracking application (DIB shape) and N-Queens. *)

open Cpool_game

let test_nqueens_known_counts () =
  List.iter
    (fun n ->
      let expected = Option.get (Nqueens.known_solutions n) in
      let solutions, nodes = Backtrack.sequential (Nqueens.problem ~n) in
      Alcotest.(check int) (Printf.sprintf "%d-queens solutions" n) expected solutions;
      Alcotest.(check bool) "visited at least the solutions" true (nodes >= solutions))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_nqueens_initial () =
  Alcotest.(check int) "no queens" 0 (Nqueens.row (Nqueens.initial ~n:8));
  Alcotest.check_raises "n range" (Invalid_argument "Nqueens.initial: n out of [1, 30]")
    (fun () -> ignore (Nqueens.initial ~n:0))

let test_sequential_shape () =
  (* A synthetic problem with a known count: a binary tree of depth d has
     2^(d+1)-1 nodes and 2^d leaves. *)
  let depth = 6 in
  let p =
    {
      Backtrack.roots = [ 0 ];
      children = (fun d -> if d >= depth then [] else [ d + 1; d + 1 ]);
      is_solution = (fun d -> d = depth);
    }
  in
  let solutions, nodes = Backtrack.sequential p in
  Alcotest.(check int) "leaves" (1 lsl depth) solutions;
  Alcotest.(check int) "nodes" ((2 lsl depth) - 1) nodes

let schedulers =
  [
    Parallel.Pool_scheduler Cpool.Pool.Linear;
    Parallel.Pool_scheduler Cpool.Pool.Random;
    Parallel.Pool_scheduler Cpool.Pool.Tree;
    Parallel.Stack_scheduler;
  ]

let quick_config ?(workers = 4) scheduler =
  { Backtrack.default_config with workers; scheduler; visit_cost = 50.0; expand_cost = 4.0 }

let test_parallel_matches_sequential scheduler () =
  let p = Nqueens.problem ~n:6 in
  let expected_solutions, expected_nodes = Backtrack.sequential p in
  let report = Backtrack.solve p (quick_config scheduler) in
  Alcotest.(check int) "solutions" expected_solutions report.Backtrack.solutions;
  Alcotest.(check int) "nodes" expected_nodes report.Backtrack.nodes

let test_parallel_single_worker () =
  let p = Nqueens.problem ~n:5 in
  let report =
    Backtrack.solve p (quick_config ~workers:1 (Parallel.Pool_scheduler Cpool.Pool.Linear))
  in
  Alcotest.(check int) "solutions" 10 report.Backtrack.solutions

let test_parallel_speedup () =
  let p = Nqueens.problem ~n:7 in
  let time workers =
    (Backtrack.solve p (quick_config ~workers (Parallel.Pool_scheduler Cpool.Pool.Linear)))
      .Backtrack.duration
  in
  let t1 = time 1 and t8 = time 8 in
  Alcotest.(check bool)
    (Printf.sprintf "t1=%.0f much greater than t8=%.0f" t1 t8)
    true
    (t1 /. t8 > 3.0)

let test_parallel_deterministic () =
  let p = Nqueens.problem ~n:6 in
  let run () =
    let r = Backtrack.solve p (quick_config (Parallel.Pool_scheduler Cpool.Pool.Random)) in
    (r.Backtrack.solutions, r.Backtrack.nodes, r.Backtrack.duration)
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let test_pool_totals_exposed () =
  let p = Nqueens.problem ~n:5 in
  let pooled = Backtrack.solve p (quick_config (Parallel.Pool_scheduler Cpool.Pool.Linear)) in
  Alcotest.(check bool) "pool totals" true (pooled.Backtrack.pool_totals <> None);
  let stacked = Backtrack.solve p (quick_config Parallel.Stack_scheduler) in
  Alcotest.(check bool) "no totals for stack" true (stacked.Backtrack.pool_totals = None)

let test_validates () =
  Alcotest.check_raises "workers" (Invalid_argument "Backtrack.solve: workers must be positive")
    (fun () ->
      ignore
        (Backtrack.solve (Nqueens.problem ~n:4)
           { Backtrack.default_config with workers = 0 }))

let prop_nqueens_children_valid =
  (* Every child of a reachable state has one more queen and at most n
     children exist per state. *)
  QCheck.Test.make ~name:"nqueens successor sanity" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, path_seed) ->
      let p = Nqueens.problem ~n in
      let rec walk state seed depth =
        if depth = 0 then true
        else begin
          match p.Backtrack.children state with
          | [] -> true
          | kids ->
            List.length kids <= n
            && List.for_all (fun k -> Nqueens.row k = Nqueens.row state + 1) kids
            && walk (List.nth kids (seed mod List.length kids)) (seed / 7) (depth - 1)
        end
      in
      walk (Nqueens.initial ~n) path_seed n)

let prop_parallel_equals_sequential =
  (* Random irregular task trees: node [seed] spawns [seed mod k] children
     with derived seeds, bounded by depth. Parallel counts must equal
     sequential counts for every scheduler-ish shape (pool linear used;
     the per-scheduler unit tests cover the rest). *)
  QCheck.Test.make ~name:"parallel backtracking equals sequential on random trees" ~count:25
    QCheck.(triple (int_range 2 5) (int_range 2 4) (int_bound 1000))
    (fun (depth, fanout, salt) ->
      let p =
        {
          Backtrack.roots = [ (depth, salt) ];
          children =
            (fun (d, s) ->
              if d = 0 then []
              else
                List.init
                  ((s mod fanout) + 1)
                  (fun i -> (d - 1, ((s * 31) + i) mod 10_007)));
          is_solution = (fun (d, s) -> d = 0 && s land 1 = 0);
        }
      in
      let seq_solutions, seq_nodes = Backtrack.sequential p in
      let report =
        Backtrack.solve p (quick_config ~workers:3 (Parallel.Pool_scheduler Cpool.Pool.Linear))
      in
      report.Backtrack.solutions = seq_solutions && report.Backtrack.nodes = seq_nodes)

let scheduler_cases name f =
  List.map
    (fun s ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Parallel.scheduler_to_string s))
        `Quick (f s))
    schedulers

let suites =
  [
    ( "backtrack",
      [
        Alcotest.test_case "nqueens known counts" `Quick test_nqueens_known_counts;
        Alcotest.test_case "nqueens initial" `Quick test_nqueens_initial;
        Alcotest.test_case "sequential shape" `Quick test_sequential_shape;
        Alcotest.test_case "single worker" `Quick test_parallel_single_worker;
        Alcotest.test_case "speedup" `Quick test_parallel_speedup;
        Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
        Alcotest.test_case "scheduler stats" `Quick test_pool_totals_exposed;
        Alcotest.test_case "validates" `Quick test_validates;
        QCheck_alcotest.to_alcotest prop_nqueens_children_valid;
        QCheck_alcotest.to_alcotest prop_parallel_equals_sequential;
      ]
      @ scheduler_cases "matches sequential" test_parallel_matches_sequential );
  ]
