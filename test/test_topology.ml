(* Tests for the shared locality model (Cpool_topology) and the probe
   orders it hands the searchers — including the property that every
   topology-aware search kind still visits each segment exactly once. *)

let get = function
  | Ok t -> t
  | Error msg -> Alcotest.failf "unexpected topology error: %s" msg

let err = function
  | Ok _ -> Alcotest.fail "expected the topology to be rejected"
  | Error msg -> msg

(* --- validation ------------------------------------------------------- *)

let test_matrix_rejects_asymmetric () =
  let m = [| [| 1.0; 2.0 |]; [| 3.0; 1.0 |] |] in
  Alcotest.(check string)
    "asymmetric" "matrix must be symmetric"
    (err (Cpool_topology.of_matrix m))

let test_matrix_rejects_non_square () =
  let m = [| [| 1.0; 2.0 |]; [| 2.0 |] |] in
  Alcotest.(check string)
    "non-square" "matrix must be square"
    (err (Cpool_topology.of_matrix m));
  Alcotest.(check string)
    "empty" "matrix must be non-empty"
    (err (Cpool_topology.of_matrix [||]))

let test_matrix_rejects_bad_entries () =
  let diag = [| [| 2.0; 2.0 |]; [| 2.0; 2.0 |] |] in
  Alcotest.(check string)
    "diagonal" "diagonal entries must be 1.0 and finite"
    (err (Cpool_topology.of_matrix diag));
  let sub = [| [| 1.0; 0.5 |]; [| 0.5; 1.0 |] |] in
  Alcotest.(check string)
    "sub-unit remote" "off-diagonal distances must be >= 1.0"
    (err (Cpool_topology.of_matrix sub))

let test_groups_reject_bad_shapes () =
  Alcotest.(check string)
    "empty" "groups must be non-empty"
    (err (Cpool_topology.of_groups []));
  Alcotest.(check string)
    "zero size" "group sizes must be positive"
    (err (Cpool_topology.of_groups [ 2; 0 ]));
  Alcotest.(check string)
    "inverted" "far distance must be >= the near distance"
    (err (Cpool_topology.of_groups ~near:2.0 ~far:1.5 [ 2; 2 ]))

(* --- groups derived from a matrix ------------------------------------- *)

let test_matrix_groups_derived () =
  (* Distance-1.0 components: {0,1} and {2}. *)
  let m =
    [|
      [| 1.0; 1.0; 3.0 |];
      [| 1.0; 1.0; 3.0 |];
      [| 3.0; 3.0; 1.0 |];
    |]
  in
  let t = get (Cpool_topology.of_matrix m) in
  Alcotest.(check int) "groups" 2 (Cpool_topology.groups t);
  Alcotest.(check bool) "0~1 near" true (Cpool_topology.near t 0 1);
  Alcotest.(check bool) "0~2 far" false (Cpool_topology.near t 0 2);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Cpool_topology.max_distance t)

(* --- config round-trip ------------------------------------------------ *)

let test_group_round_trip () =
  let t = get (Cpool_topology.of_groups ~near:1.0 ~far:2.5 ~unit_ns:500 [ 3; 2 ]) in
  let t' = get (Cpool_topology.parse (Cpool_topology.to_string t)) in
  Alcotest.(check bool) "round-trips" true (Cpool_topology.equal t t');
  Alcotest.(check int) "unit_ns survives" 500 (Cpool_topology.unit_ns t')

let test_matrix_round_trip () =
  let m = [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  let t = get (Cpool_topology.of_matrix m) in
  let t' = get (Cpool_topology.parse (Cpool_topology.to_string t)) in
  Alcotest.(check bool) "round-trips" true (Cpool_topology.equal t t')

let test_parse_rejects_garbage () =
  (match Cpool_topology.parse "groups 2 2\nmatrix\n1 1\n1 1\n" with
  | Ok _ -> Alcotest.fail "groups+matrix accepted"
  | Error _ -> ());
  match Cpool_topology.parse "# nothing here\n" with
  | Ok _ -> Alcotest.fail "empty config accepted"
  | Error _ -> ()

(* --- the two-group CI preset ------------------------------------------ *)

let test_two_group_invariants () =
  let t = Cpool_topology.two_group ~penalty:4.0 ~nodes:5 () in
  Alcotest.(check int) "nodes" 5 (Cpool_topology.nodes t);
  Alcotest.(check int) "groups" 2 (Cpool_topology.groups t);
  for i = 0 to 4 do
    for j = 0 to 4 do
      let d = Cpool_topology.distance t ~from:i ~to_:j in
      let expected =
        if i = j then 1.0
        else if Cpool_topology.group t i = Cpool_topology.group t j then 1.0
        else 4.0
      in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "d(%d,%d)" i j) expected d
    done
  done;
  Alcotest.check_raises "too small"
    (Invalid_argument "Cpool_topology.two_group: nodes must be >= 2") (fun () ->
      ignore (Cpool_topology.two_group ~nodes:1 ()))

let test_scale_remote () =
  let t = Cpool_topology.two_group ~penalty:4.0 ~nodes:4 () in
  let flat = Cpool_topology.scale_remote t 0.0 in
  Alcotest.(check (float 1e-9)) "flat" 1.0 (Cpool_topology.max_distance flat);
  let doubled = Cpool_topology.scale_remote t 2.0 in
  Alcotest.(check (float 1e-9)) "doubled" 7.0 (Cpool_topology.max_distance doubled);
  Alcotest.(check int) "groups preserved" 2 (Cpool_topology.groups doubled)

(* --- probe orders ----------------------------------------------------- *)

let check_permutation what n (a : int array) =
  let seen = Array.make n false in
  Alcotest.(check int) (what ^ " length") n (Array.length a);
  Array.iter
    (fun v ->
      if v < 0 || v >= n then Alcotest.failf "%s: out of range %d" what v;
      if seen.(v) then Alcotest.failf "%s: duplicate %d" what v;
      seen.(v) <- true)
    a

let test_near_first_order () =
  let t = Cpool_topology.two_group ~nodes:4 () in
  (* Groups {0,1} and {2,3}: from node 2, own slot first, then its group
     peer, then the far group in ring order. *)
  Alcotest.(check (array int))
    "from 2" [| 2; 3; 0; 1 |]
    (Cpool_topology.near_first_order t ~from:2);
  let order = Cpool_topology.near_first_order t ~from:0 in
  Alcotest.(check (array int)) "from 0" [| 0; 1; 2; 3 |] order;
  (* The only shuffleable span is the far pair: position 0 and the
     length-1 near remainder are excluded. *)
  Alcotest.(check (list (pair int int)))
    "spans" [ (2, 2) ]
    (Cpool_topology.distance_spans t ~from:0 order)

let test_group_major_order () =
  let t = get (Cpool_topology.of_groups [ 2; 3 ]) in
  check_permutation "group-major" 5 (Cpool_topology.group_major_order t);
  let gm = Cpool_topology.group_major_order t in
  let g i = Cpool_topology.group t gm.(i) in
  for i = 1 to 4 do
    if g i < g (i - 1) then Alcotest.fail "group-major order not grouped"
  done

(* Property: for every search kind, a topology-aware pool's probe order is
   a permutation of all segments — no segment is skipped or visited twice,
   whatever the group shapes. *)
let prop_probe_order_permutes =
  QCheck.Test.make ~name:"aware probe order is a permutation for every kind"
    ~count:100
    QCheck.(
      triple (int_range 2 9) (int_range 0 8) (int_range 0 1000))
    (fun (nodes, slot_raw, seed) ->
      let slot = slot_raw mod nodes in
      let topo = Cpool_topology.two_group ~nodes ~penalty:4.0 () in
      List.for_all
        (fun kind ->
          let pool =
            Cpool_mc.Mc_pool.of_config
              {
                Cpool_mc.Mc_pool.Config.default with
                kind;
                seed = Int64.of_int seed;
                topology = Some topo;
                segments = nodes;
              }
          in
          let order = Cpool_mc.Mc_pool.probe_order pool ~slot in
          check_permutation
            (Cpool_intf.to_string kind ^ " order")
            nodes order;
          (* Near segments must precede far ones (modulo the own slot
             leading) for the deterministic kinds and the bucket-shuffled
             Random alike. *)
          let d i = Cpool_topology.distance topo ~from:slot ~to_:order.(i) in
          let ok = ref true in
          (match kind with
          | Cpool_intf.Tree -> ()
          | _ ->
            for i = 2 to nodes - 1 do
              if d i < d (i - 1) then ok := false
            done);
          !ok)
        Cpool_intf.all)

let test_oblivious_order_is_ring () =
  let topo = Cpool_topology.two_group ~nodes:4 () in
  let pool =
    Cpool_mc.Mc_pool.of_config
      {
        Cpool_mc.Mc_pool.Config.default with
        topology = Some topo;
        topology_aware = false;
        segments = 4;
      }
  in
  Alcotest.(check (array int))
    "ring from 2" [| 2; 3; 0; 1 |]
    (Cpool_mc.Mc_pool.probe_order pool ~slot:2)

(* --- the same model in the simulator cost model ----------------------- *)

let test_sim_access_cost_uses_topology () =
  let topo = Cpool_topology.two_group ~penalty:4.0 ~nodes:4 () in
  let m = Cpool_sim.Topology.with_topology topo Cpool_sim.Topology.butterfly in
  let local = Cpool_sim.Topology.access_cost m ~from:0 ~home:0 in
  let near = Cpool_sim.Topology.access_cost m ~from:0 ~home:1 in
  let far = Cpool_sim.Topology.access_cost m ~from:0 ~home:2 in
  (* Same-group access costs like local (distance 1.0); only crossing a
     group boundary pays the declared penalty. *)
  Alcotest.(check (float 1e-9)) "near equals local" local near;
  Alcotest.(check (float 1e-9)) "far pays the penalty" (4.0 *. local) far

let suites =
  [
    ( "topology",
      [
        Alcotest.test_case "matrix rejects asymmetric" `Quick
          test_matrix_rejects_asymmetric;
        Alcotest.test_case "matrix rejects non-square" `Quick
          test_matrix_rejects_non_square;
        Alcotest.test_case "matrix rejects bad entries" `Quick
          test_matrix_rejects_bad_entries;
        Alcotest.test_case "groups reject bad shapes" `Quick
          test_groups_reject_bad_shapes;
        Alcotest.test_case "matrix groups derived" `Quick test_matrix_groups_derived;
        Alcotest.test_case "group config round-trips" `Quick test_group_round_trip;
        Alcotest.test_case "matrix config round-trips" `Quick test_matrix_round_trip;
        Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
        Alcotest.test_case "two-group preset invariants" `Quick
          test_two_group_invariants;
        Alcotest.test_case "scale_remote" `Quick test_scale_remote;
        Alcotest.test_case "near-first order" `Quick test_near_first_order;
        Alcotest.test_case "group-major order" `Quick test_group_major_order;
        QCheck_alcotest.to_alcotest prop_probe_order_permutes;
        Alcotest.test_case "oblivious order is the ring" `Quick
          test_oblivious_order_is_ring;
        Alcotest.test_case "sim access cost uses topology" `Quick
          test_sim_access_cost_uses_topology;
      ] );
  ]
