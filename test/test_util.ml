(* Tests for the growable array underlying segments and work lists. *)

open Cpool_util

let test_empty () =
  let v : int Vec.t = Vec.create () in
  Alcotest.(check int) "length" 0 (Vec.length v);
  Alcotest.(check bool) "is_empty" true (Vec.is_empty v);
  Alcotest.(check bool) "pop none" true (Vec.pop v = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Vec.pop_exn: empty") (fun () ->
      ignore (Vec.pop_exn v))

let test_push_pop_order () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check (option int)) "lifo 3" (Some 3) (Vec.pop v);
  Alcotest.(check (option int)) "lifo 2" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "lifo 1" (Some 1) (Vec.pop v);
  Alcotest.(check bool) "drained" true (Vec.is_empty v)

let test_of_list_to_list () =
  let v = Vec.of_list [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "roundtrip" [ "a"; "b"; "c" ] (Vec.to_list v)

let test_get_set_bounds () =
  let v = Vec.of_list [ 10; 20 ] in
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 2));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_take_last () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "takes most recent first" [ 5; 4 ] (Vec.take_last v 2);
  Alcotest.(check int) "shrunk" 3 (Vec.length v);
  Alcotest.(check (list int)) "over-take clamps" [ 3; 2; 1 ] (Vec.take_last v 10);
  Alcotest.(check bool) "now empty" true (Vec.is_empty v)

let test_append_list_and_clear () =
  let v = Vec.create () in
  Vec.append_list v [ 1; 2 ];
  Vec.append_list v [ 3 ];
  Alcotest.(check (list int)) "appended" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v);
  Vec.push v 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Vec.to_list v)

let test_iter_order () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  let seen = ref [] in
  Vec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "index order" [ 1; 2; 3 ] (List.rev !seen)

let test_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "removes requested" 2 (Vec.swap_remove v 1);
  Alcotest.(check (list int)) "last swapped in" [ 1; 4; 3 ] (Vec.to_list v);
  Alcotest.(check int) "remove last" 3 (Vec.swap_remove v 2);
  Alcotest.(check (list int)) "tail removal" [ 1; 4 ] (Vec.to_list v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.swap_remove: index out of bounds")
    (fun () -> ignore (Vec.swap_remove v 5))

let test_growth () =
  let v = Vec.create () in
  for i = 1 to 10_000 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 10_000 (Vec.length v);
  Alcotest.(check int) "first" 1 (Vec.get v 0);
  Alcotest.(check int) "last" 10_000 (Vec.get v 9_999)

let prop_push_pop_roundtrip =
  QCheck.Test.make ~name:"pushes pop in reverse order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      let rec drain acc = match Vec.pop v with None -> acc | Some x -> drain (x :: acc) in
      drain [] = xs)

let prop_take_last_conserves =
  QCheck.Test.make ~name:"take_last conserves elements" ~count:200
    QCheck.(pair (list small_nat) small_nat)
    (fun (xs, k) ->
      let v = Vec.of_list xs in
      let taken = Vec.take_last v k in
      List.length taken = min k (List.length xs)
      && List.sort compare (taken @ Vec.to_list v) = List.sort compare xs)

let suites =
  [
    ( "util.vec",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "push/pop order" `Quick test_push_pop_order;
        Alcotest.test_case "of_list/to_list" `Quick test_of_list_to_list;
        Alcotest.test_case "get/set bounds" `Quick test_get_set_bounds;
        Alcotest.test_case "take_last" `Quick test_take_last;
        Alcotest.test_case "append/clear" `Quick test_append_list_and_clear;
        Alcotest.test_case "iter order" `Quick test_iter_order;
        Alcotest.test_case "swap_remove" `Quick test_swap_remove;
        Alcotest.test_case "growth" `Quick test_growth;
        QCheck_alcotest.to_alcotest prop_push_pop_roundtrip;
        QCheck_alcotest.to_alcotest prop_take_last_conserves;
      ] );
  ]
