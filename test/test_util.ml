(* Tests for the growable array underlying segments and work lists. *)

open Cpool_util

let test_empty () =
  let v : int Vec.t = Vec.create () in
  Alcotest.(check int) "length" 0 (Vec.length v);
  Alcotest.(check bool) "is_empty" true (Vec.is_empty v);
  Alcotest.(check bool) "pop none" true (Vec.pop v = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Vec.pop_exn: empty") (fun () ->
      ignore (Vec.pop_exn v))

let test_push_pop_order () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check (option int)) "lifo 3" (Some 3) (Vec.pop v);
  Alcotest.(check (option int)) "lifo 2" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "lifo 1" (Some 1) (Vec.pop v);
  Alcotest.(check bool) "drained" true (Vec.is_empty v)

let test_of_list_to_list () =
  let v = Vec.of_list [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "roundtrip" [ "a"; "b"; "c" ] (Vec.to_list v)

let test_get_set_bounds () =
  let v = Vec.of_list [ 10; 20 ] in
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 2));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_take_last () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "takes most recent first" [ 5; 4 ] (Vec.take_last v 2);
  Alcotest.(check int) "shrunk" 3 (Vec.length v);
  Alcotest.(check (list int)) "over-take clamps" [ 3; 2; 1 ] (Vec.take_last v 10);
  Alcotest.(check bool) "now empty" true (Vec.is_empty v)

let test_append_list_and_clear () =
  let v = Vec.create () in
  Vec.append_list v [ 1; 2 ];
  Vec.append_list v [ 3 ];
  Alcotest.(check (list int)) "appended" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v);
  Vec.push v 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Vec.to_list v)

let test_iter_order () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  let seen = ref [] in
  Vec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "index order" [ 1; 2; 3 ] (List.rev !seen)

let test_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "removes requested" 2 (Vec.swap_remove v 1);
  Alcotest.(check (list int)) "last swapped in" [ 1; 4; 3 ] (Vec.to_list v);
  Alcotest.(check int) "remove last" 3 (Vec.swap_remove v 2);
  Alcotest.(check (list int)) "tail removal" [ 1; 4 ] (Vec.to_list v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.swap_remove: index out of bounds")
    (fun () -> ignore (Vec.swap_remove v 5))

let test_growth () =
  let v = Vec.create () in
  for i = 1 to 10_000 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 10_000 (Vec.length v);
  Alcotest.(check int) "first" 1 (Vec.get v 0);
  Alcotest.(check int) "last" 10_000 (Vec.get v 9_999)

let prop_push_pop_roundtrip =
  QCheck.Test.make ~name:"pushes pop in reverse order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      let rec drain acc = match Vec.pop v with None -> acc | Some x -> drain (x :: acc) in
      drain [] = xs)

let prop_take_last_conserves =
  QCheck.Test.make ~name:"take_last conserves elements" ~count:200
    QCheck.(pair (list small_nat) small_nat)
    (fun (xs, k) ->
      let v = Vec.of_list xs in
      let taken = Vec.take_last v k in
      List.length taken = min k (List.length xs)
      && List.sort compare (taken @ Vec.to_list v) = List.sort compare xs)

(* Space-leak regression: pop/pop_exn/take_last/swap_remove/clear used to
   leave removed elements reachable from the backing array, keeping them
   alive until the slot was overwritten by a later push. Weak pointers see
   whether the GC can actually reclaim a removed element. *)
let test_removal_releases_references () =
  let v : int ref Vec.t = Vec.create () in
  let w = Weak.create 4 in
  (* No local bindings to the elements survive this block. *)
  (let fill slot =
     let r = ref slot in
     Weak.set w slot (Some r);
     Vec.push v r
   in
   List.iter fill [ 0; 1; 2; 3 ]);
  (* pop removes r3: [r0; r1; r2]. swap_remove 0 removes r0 and moves the
     last element into slot 0: [r2; r1]. take_last 1 removes r1: [r2]. *)
  ignore (Vec.pop v : int ref option);
  ignore (Vec.swap_remove v 0 : int ref);
  ignore (Vec.take_last v 1 : int ref list);
  Gc.full_major ();
  let collected slot = Weak.get w slot = None in
  Alcotest.(check bool) "popped element collected" true (collected 3);
  Alcotest.(check bool) "swap-removed element collected" true (collected 0);
  Alcotest.(check bool) "take_last element collected" true (collected 1);
  Alcotest.(check bool) "remaining element alive" false (collected 2);
  Alcotest.(check int) "one element left" 1 (Vec.length v);
  Vec.clear v;
  Gc.full_major ();
  Alcotest.(check bool) "cleared element collected" true (collected 2)

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    Json.Assoc
      [
        ("n", Json.Int 42);
        ("x", Json.Float 1.5);
        ("neg", Json.Float (-0.25));
        ("s", Json.Str "he said \"hi\"\n\t\xe2\x9c\x93");
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Assoc [ ("empty_list", Json.List []); ("empty_obj", Json.Assoc []) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trips" true (doc = doc')
  | Error e -> Alcotest.fail ("re-parse failed: " ^ e)

let test_json_nonfinite_floats_are_null () =
  let doc = Json.List [ Json.Float Float.nan; Json.Float Float.infinity ] in
  match Json.parse (Json.to_string doc) with
  | Ok (Json.List [ Json.Null; Json.Null ]) -> ()
  | Ok _ -> Alcotest.fail "expected [null, null]"
  | Error e -> Alcotest.fail e

let test_json_parse_numbers () =
  (match Json.parse "7" with
  | Ok (Json.Int 7) -> ()
  | _ -> Alcotest.fail "int");
  match Json.parse "[7.0, 2e3, -1.5]" with
  | Ok (Json.List [ Json.Float 7.0; Json.Float 2000.0; Json.Float (-1.5) ]) -> ()
  | _ -> Alcotest.fail "floats"

let test_json_parse_rejects () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" src)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "[1 2]"; "nan" ]

let test_json_accessors () =
  let doc = Json.Assoc [ ("xs", Json.List [ Json.Int 1 ]); ("f", Json.Float 2.5) ] in
  Alcotest.(check bool) "member hit" true (Json.member "xs" doc <> None);
  Alcotest.(check bool) "member miss" true (Json.member "nope" doc = None);
  Alcotest.(check bool) "to_list" true
    (match Option.bind (Json.member "xs" doc) Json.to_list with
    | Some [ Json.Int 1 ] -> true
    | _ -> false);
  Alcotest.(check bool) "to_number of int" true (Json.to_number (Json.Int 3) = Some 3.0);
  Alcotest.(check bool) "to_number of float" true
    (Option.bind (Json.member "f" doc) Json.to_number = Some 2.5);
  Alcotest.(check bool) "to_number of string" true (Json.to_number (Json.Str "3") = None)

let suites =
  [
    ( "util.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats_are_null;
        Alcotest.test_case "number parsing" `Quick test_json_parse_numbers;
        Alcotest.test_case "rejects malformed" `Quick test_json_parse_rejects;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "util.vec",
      [
        Alcotest.test_case "removal releases references" `Quick
          test_removal_releases_references;
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "push/pop order" `Quick test_push_pop_order;
        Alcotest.test_case "of_list/to_list" `Quick test_of_list_to_list;
        Alcotest.test_case "get/set bounds" `Quick test_get_set_bounds;
        Alcotest.test_case "take_last" `Quick test_take_last;
        Alcotest.test_case "append/clear" `Quick test_append_list_and_clear;
        Alcotest.test_case "iter order" `Quick test_iter_order;
        Alcotest.test_case "swap_remove" `Quick test_swap_remove;
        Alcotest.test_case "growth" `Quick test_growth;
        QCheck_alcotest.to_alcotest prop_push_pop_roundtrip;
        QCheck_alcotest.to_alcotest prop_take_last_conserves;
      ] );
  ]
