(* Tests for the hint board and the hinted search algorithm (the paper's
   Section 5 extension). *)

open Cpool
open Cpool_sim

let mk_hints ?(p = 4) () = Hints.create ~home:0 ~home_of:Fun.id ~participants:p

let test_hints_validated () =
  Alcotest.check_raises "participants" (Invalid_argument "Hints.create: participants must be positive")
    (fun () -> ignore (Hints.create ~home:0 ~home_of:Fun.id ~participants:0))

let test_announce_retract () =
  Sim_harness.in_proc (fun () ->
      let h = mk_hints () in
      Alcotest.(check int) "no waiters" 0 (Hints.waiters_free h);
      Hints.announce h ~me:2;
      Alcotest.(check int) "one waiter" 1 (Hints.waiters_free h);
      Alcotest.(check bool) "flag set" true (Hints.announced_free h 2);
      Alcotest.(check bool) "retract clears" true (Hints.retract h ~me:2);
      Alcotest.(check int) "count restored" 0 (Hints.waiters_free h);
      Alcotest.(check bool) "second retract is a no-op" false (Hints.retract h ~me:2);
      Alcotest.(check int) "count not double-decremented" 0 (Hints.waiters_free h))

let test_claim_waiter () =
  Sim_harness.in_proc (fun () ->
      let h = mk_hints () in
      Hints.announce h ~me:1;
      Hints.announce h ~me:3;
      (* Claim from participant 2: ring order 3, 0, 1 -> claims 3. *)
      (match Hints.claim_waiter h ~me:2 with
      | Some 3 -> ()
      | Some w -> Alcotest.failf "claimed %d, expected 3" w
      | None -> Alcotest.fail "expected a claim");
      Alcotest.(check int) "one left" 1 (Hints.waiters_free h);
      (match Hints.claim_waiter h ~me:2 with
      | Some 1 -> ()
      | _ -> Alcotest.fail "expected to claim 1");
      Alcotest.(check bool) "nothing left" true (Hints.claim_waiter h ~me:2 = None))

let test_claim_skips_self () =
  Sim_harness.in_proc (fun () ->
      let h = mk_hints () in
      Hints.announce h ~me:2;
      Alcotest.(check bool) "own flag never claimed" true (Hints.claim_waiter h ~me:2 = None);
      Alcotest.(check bool) "still announced" true (Hints.announced_free h 2))

let hinted_cfg ?(segments = 4) () =
  { Pool.default_config with segments; kind = Pool.Hinted }

let test_hinted_pool_local_ops () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (hinted_cfg ()) in
      Pool.join pool;
      Pool.add pool ~me:0 "x";
      (match Pool.remove pool ~me:0 with
      | Pool.Local "x" -> ()
      | _ -> Alcotest.fail "expected local removal");
      Pool.leave pool)

let test_hinted_search_finds_remote () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (hinted_cfg ()) in
      Pool.join pool;
      Pool.join pool;
      (* phantom, so the searcher does not abort *)
      for i = 1 to 6 do
        Pool.prefill_segment pool ~seg:2 i
      done;
      (match Pool.remove pool ~me:0 with
      | Pool.Stolen (_, stats) ->
        Alcotest.(check int) "stole half" 3 stats.Cpool.Steal.elements_stolen
      | _ -> Alcotest.fail "expected steal");
      Pool.leave pool;
      Pool.leave pool)

let test_delivery_to_waiting_searcher () =
  (* A consumer searches an empty pool while a producer adds: the add must
     be delivered into the consumer's segment and counted. *)
  let e = Engine.create ~nodes:4 ~seed:3L () in
  let pool = Pool.create (hinted_cfg ()) in
  let got = ref None in
  let _ =
    Engine.spawn e ~node:0 ~name:"consumer" (fun () ->
        Pool.join pool;
        (match Pool.remove pool ~me:0 with
        | Pool.Stolen (x, _) | Pool.Local x -> got := Some x
        | Pool.Empty _ -> ());
        Pool.leave pool)
  in
  let _ =
    Engine.spawn e ~node:1 ~name:"producer" (fun () ->
        Pool.join pool;
        (* Give the consumer time to start searching. *)
        Engine.delay 2_000.0;
        Pool.add pool ~me:1 42;
        Pool.leave pool)
  in
  Sim_harness.expect_completed e;
  Alcotest.(check (option int)) "consumer got the element" (Some 42) !got;
  let t = Pool.totals pool in
  Alcotest.(check int) "delivery counted" 1 t.Pool.deliveries;
  Alcotest.(check int) "add counted" 1 t.Pool.adds

let test_add_outcome_delivered () =
  let e = Engine.create ~nodes:4 ~seed:5L () in
  let pool = Pool.create (hinted_cfg ()) in
  let outcome = ref Pool.Rejected in
  let _ =
    Engine.spawn e ~node:0 ~name:"consumer" (fun () ->
        Pool.join pool;
        ignore (Pool.remove pool ~me:0);
        Pool.leave pool)
  in
  let _ =
    Engine.spawn e ~node:1 ~name:"producer" (fun () ->
        Pool.join pool;
        Engine.delay 2_000.0;
        outcome := Pool.add_bounded pool ~me:1 7;
        Pool.leave pool)
  in
  Sim_harness.expect_completed e;
  match !outcome with
  | Pool.Delivered 0 -> ()
  | Pool.Delivered w -> Alcotest.failf "delivered to %d, expected 0" w
  | _ -> Alcotest.fail "expected a delivery"

let test_no_delivery_without_waiters () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (hinted_cfg ()) in
      Pool.join pool;
      Alcotest.(check bool) "plain local add" true
        (Pool.add_bounded pool ~me:1 1 = Pool.Added_locally);
      Alcotest.(check int) "no deliveries" 0 (Pool.totals pool).Pool.deliveries;
      Pool.leave pool)

let test_hinted_conservation () =
  (* Mixed concurrent traffic on a hinted pool conserves elements. *)
  let pool = ref None in
  let _ =
    Sim_harness.run_procs ~nodes:8 ~seed:41L 8 (fun i ->
        let p =
          match !pool with
          | Some p -> p
          | None ->
            let p = Pool.create (hinted_cfg ~segments:8 ()) in
            Pool.prefill p (fun j -> j) ~per_segment:3;
            pool := Some p;
            p
        in
        Pool.join p;
        for k = 1 to 150 do
          if k land 1 = 0 then Pool.add p ~me:i k else ignore (Pool.remove p ~me:i)
        done;
        Pool.leave p)
  in
  let p = Option.get !pool in
  let t = Pool.totals p in
  Alcotest.(check int) "conservation" (24 + t.Pool.adds - t.Pool.removes) (Pool.total_size p)

let test_hinted_sparse_characteristics () =
  (* The measured answer to the paper's open question: under a sparse
     producer/consumer workload almost every add is delivered directly to a
     waiting consumer — which forfeits the steal-half batching (elements
     arrive one at a time instead of being banked), so hints do NOT beat
     the plain linear algorithm. The test pins the mechanism: deliveries
     dominate, and the per-steal haul shrinks versus linear. *)
  let run kind =
    let spec =
      {
        Cpool_workload.Driver.default_spec with
        pool = { Pool.default_config with segments = 8; kind };
        roles = Cpool_workload.Role.balanced_producers ~participants:8 ~producers:2;
        total_ops = 1200;
        initial_elements = 24;
        seed = 77L;
      }
    in
    Cpool_workload.Driver.run spec
  in
  let hinted = run Pool.Hinted and linear = run Pool.Linear in
  let ht = hinted.Cpool_workload.Driver.pool_totals in
  Alcotest.(check bool) "most adds are delivered" true
    (ht.Pool.deliveries * 2 > ht.Pool.adds);
  let haul r =
    Cpool_metrics.Sample.mean r.Cpool_workload.Driver.elements_per_steal
  in
  Alcotest.(check bool)
    (Printf.sprintf "delivery forfeits batching: hinted %.2f <= linear %.2f elems/steal"
       (haul hinted) (haul linear))
    true
    (haul hinted <= haul linear +. 0.01)

let test_delivery_to_full_segment_falls_back () =
  (* Bounded hinted pool: if the claimed waiter's segment is full, the hint
     is consumed but the add falls back to the normal (local) path — the
     element must not be lost or duplicated. *)
  let e = Engine.create ~nodes:4 ~seed:9L () in
  let pool =
    Pool.create { (hinted_cfg ()) with Pool.capacity = Some 2 }
  in
  let outcome = ref Pool.Rejected in
  let _ =
    Engine.spawn e ~node:0 ~name:"consumer" (fun () ->
        Pool.join pool;
        (* Fill our own segment to capacity, then empty... no: keep it full
           so a delivery to us must fail. We search because our segment is
           empty — so instead fill segment 0 via another participant after
           we start searching. The simplest deterministic arrangement:
           consumer searches with an empty segment; producer first fills
           segment 0 to capacity remotely (spills), then adds — the claim
           of consumer 0 then finds a full segment. *)
        (match Pool.remove pool ~me:0 with
        | Pool.Stolen _ | Pool.Local _ -> ()
        | Pool.Empty _ -> ());
        Pool.leave pool)
  in
  let _ =
    Engine.spawn e ~node:1 ~name:"producer" (fun () ->
        Pool.join pool;
        Engine.delay 2_000.0;
        (* Fill the consumer's segment directly (bypassing hints) so the
           upcoming delivery attempt finds it full. *)
        Pool.prefill_segment pool ~seg:0 901;
        Pool.prefill_segment pool ~seg:0 902;
        outcome := Pool.add_bounded pool ~me:1 7;
        Pool.leave pool)
  in
  Sim_harness.expect_completed e;
  (* The delivery was refused (segment 0 full), so the add landed locally;
     the hint was consumed without effect. *)
  (match !outcome with
  | Pool.Added_locally -> ()
  | Pool.Delivered _ -> Alcotest.fail "delivery should have been refused"
  | Pool.Spilled _ -> ()
  | Pool.Rejected -> Alcotest.fail "unexpected reject");
  Alcotest.(check int) "no deliveries" 0 (Pool.totals pool).Pool.deliveries

let test_lock_stats_accessor () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (hinted_cfg ()) in
      Pool.join pool;
      Pool.add pool ~me:1 ();
      let acquisitions, contended = Pool.segment_lock_stats pool 1 in
      Alcotest.(check bool) "lock used" true (acquisitions >= 1);
      Alcotest.(check int) "uncontended" 0 contended;
      Alcotest.check_raises "range"
        (Invalid_argument "Pool.segment_lock_stats: out of range") (fun () ->
          ignore (Pool.segment_lock_stats pool 9));
      Pool.leave pool)

let suites =
  [
    ( "hinted",
      [
        Alcotest.test_case "hints validated" `Quick test_hints_validated;
        Alcotest.test_case "announce/retract" `Quick test_announce_retract;
        Alcotest.test_case "claim waiter" `Quick test_claim_waiter;
        Alcotest.test_case "claim skips self" `Quick test_claim_skips_self;
        Alcotest.test_case "pool local ops" `Quick test_hinted_pool_local_ops;
        Alcotest.test_case "search finds remote" `Quick test_hinted_search_finds_remote;
        Alcotest.test_case "delivery to waiting searcher" `Quick test_delivery_to_waiting_searcher;
        Alcotest.test_case "add outcome Delivered" `Quick test_add_outcome_delivered;
        Alcotest.test_case "no delivery without waiters" `Quick test_no_delivery_without_waiters;
        Alcotest.test_case "conservation" `Quick test_hinted_conservation;
        Alcotest.test_case "sparse delivery characteristics" `Quick
          test_hinted_sparse_characteristics;
        Alcotest.test_case "delivery to full segment falls back" `Quick
          test_delivery_to_full_segment_falls_back;
        Alcotest.test_case "lock stats accessor" `Quick test_lock_stats_accessor;
      ] );
  ]
