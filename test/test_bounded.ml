(* Tests for capacity-bounded segments and pools (the paper's footnote:
   adds that meet a full segment spill "in a symmetric fashion" to a
   segment with spare capacity). *)

open Cpool

let bounded_cfg ?(segments = 4) ?(kind = Pool.Linear) ~capacity () =
  { Pool.default_config with segments; kind; capacity = Some capacity }

let test_segment_capacity_validated () =
  Alcotest.check_raises "zero" (Invalid_argument "Segment.make: capacity must be positive")
    (fun () -> ignore (Segment.make ~capacity:0 ~home:0 ~id:0 Segment.Counting : unit Segment.t))

let test_segment_try_add_respects_capacity () =
  Sim_harness.in_proc (fun () ->
      let s = Segment.make ~capacity:2 ~home:0 ~id:0 Segment.Counting in
      Alcotest.(check bool) "first" true (Segment.try_add s 1);
      Alcotest.(check bool) "second" true (Segment.try_add s 2);
      Alcotest.(check bool) "third refused" false (Segment.try_add s 3);
      Alcotest.(check int) "size capped" 2 (Segment.size_free s);
      ignore (Segment.try_remove s);
      Alcotest.(check bool) "room again" true (Segment.try_add s 4))

let test_segment_probe_spare () =
  Sim_harness.in_proc (fun () ->
      let bounded = Segment.make ~capacity:3 ~home:0 ~id:0 Segment.Counting in
      let unbounded = Segment.make ~home:0 ~id:1 Segment.Counting in
      Alcotest.(check int) "fresh spare" 3 (Segment.probe_spare bounded);
      Segment.add bounded ();
      Alcotest.(check int) "one used" 2 (Segment.probe_spare bounded);
      Alcotest.(check int) "unbounded" max_int (Segment.probe_spare unbounded))

let test_segment_steal_max_take () =
  Sim_harness.in_proc (fun () ->
      let s = Segment.make ~home:0 ~id:0 Segment.Counting in
      for i = 1 to 10 do
        Segment.prefill_one s i
      done;
      (match Segment.steal_half ~max_take:2 s with
      | Steal.Batch (_, rest) -> Alcotest.(check int) "capped at 2" 1 (List.length rest)
      | _ -> Alcotest.fail "expected batch");
      Alcotest.(check int) "victim keeps the rest" 8 (Segment.size_free s);
      Alcotest.check_raises "max_take >= 1"
        (Invalid_argument "Segment.steal_half: max_take must be >= 1") (fun () ->
          ignore (Segment.steal_half ~max_take:0 s)))

let test_pool_add_spills () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (bounded_cfg ~capacity:2 ()) in
      Pool.join pool;
      (* Fill segment 0, then the third add must spill to segment 1. *)
      Alcotest.(check bool) "local 1" true (Pool.add_bounded pool ~me:0 1 = Pool.Added_locally);
      Alcotest.(check bool) "local 2" true (Pool.add_bounded pool ~me:0 2 = Pool.Added_locally);
      (match Pool.add_bounded pool ~me:0 3 with
      | Pool.Spilled 1 -> ()
      | Pool.Spilled n -> Alcotest.failf "spilled to %d, expected 1" n
      | _ -> Alcotest.fail "expected spill");
      Alcotest.(check int) "segment 1 got it" 1 (Pool.size_of_segment pool 1);
      let t = Pool.totals pool in
      Alcotest.(check int) "spills counted" 1 t.Pool.spills;
      Alcotest.(check int) "adds counted" 3 t.Pool.adds;
      Pool.leave pool)

let test_pool_add_rejects_when_full () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (bounded_cfg ~segments:2 ~capacity:1 ()) in
      Pool.join pool;
      ignore (Pool.add_bounded pool ~me:0 1);
      ignore (Pool.add_bounded pool ~me:0 2);
      Alcotest.(check bool) "rejected" true (Pool.add_bounded pool ~me:0 3 = Pool.Rejected);
      Alcotest.(check int) "rejects counted" 1 (Pool.totals pool).Pool.rejected_adds;
      Alcotest.(check int) "nothing inserted" 2 (Pool.total_size pool);
      (* The raising variant. *)
      (match Pool.add pool ~me:0 4 with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "expected Failure");
      Pool.leave pool)

let test_pool_unbounded_never_spills () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create { Pool.default_config with segments = 2 } in
      Pool.join pool;
      for i = 1 to 100 do
        Alcotest.(check bool) "local" true (Pool.add_bounded pool ~me:0 i = Pool.Added_locally)
      done;
      Pool.leave pool)

let test_steal_capped_by_spare kind () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (bounded_cfg ~kind ~capacity:4 ()) in
      Pool.join pool;
      (* Victim holds 4 (its full capacity); the thief is empty with spare
         4, so an uncapped steal of ceil(4/2)=2 fits anyway; make the
         thief nearly full to force the cap. *)
      for i = 1 to 4 do
        Pool.prefill_segment pool ~seg:2 i
      done;
      for i = 1 to 3 do
        Pool.prefill_segment pool ~seg:0 (100 + i)
      done;
      (* Drain our 3 local ones, then the next remove steals: spare is 4-0=4
         after draining... fill again to leave spare = 1. *)
      for _ = 1 to 3 do
        ignore (Pool.remove pool ~me:0)
      done;
      for i = 1 to 3 do
        ignore (Pool.add_bounded pool ~me:0 (200 + i))
      done;
      for _ = 1 to 3 do
        ignore (Pool.remove pool ~me:0)
      done;
      (* Now empty with spare 4: steal caps at min(ceil(4/2), 4+1) = 2. *)
      (match Pool.remove pool ~me:0 with
      | Pool.Stolen (_, stats) ->
        Alcotest.(check bool) "take within cap" true (stats.Steal.elements_stolen <= 5)
      | _ -> Alcotest.fail "expected steal");
      Pool.leave pool)

let test_bounded_conservation kind () =
  (* Random traffic on a tightly bounded pool conserves elements:
     total = adds - removes, with rejects not inserted. *)
  let total = 4 in
  let pool = ref None in
  let _ =
    Sim_harness.run_procs ~nodes:total ~seed:31L total (fun i ->
        let p =
          match !pool with
          | Some p -> p
          | None ->
            let p = Pool.create (bounded_cfg ~segments:total ~kind ~capacity:5 ()) in
            pool := Some p;
            p
        in
        Pool.join p;
        for k = 1 to 120 do
          if k land 3 <> 0 then ignore (Pool.add_bounded p ~me:i k)
          else ignore (Pool.remove p ~me:i)
        done;
        Pool.leave p)
  in
  let p = Option.get !pool in
  let t = Pool.totals p in
  Alcotest.(check int) "conservation" (t.Pool.adds - t.Pool.removes) (Pool.total_size p);
  Alcotest.(check bool) "pressure caused spills or rejects" true
    (t.Pool.spills > 0 || t.Pool.rejected_adds > 0);
  Alcotest.(check bool) "capacity never exceeded by adds" true (Pool.total_size p <= total * 5 + 8)

let per_kind name f =
  List.map
    (fun kind ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name (Pool.kind_to_string kind)) `Quick (f kind))
    Pool.all_kinds

let suites =
  [
    ( "bounded",
      [
        Alcotest.test_case "capacity validated" `Quick test_segment_capacity_validated;
        Alcotest.test_case "try_add respects capacity" `Quick test_segment_try_add_respects_capacity;
        Alcotest.test_case "probe_spare" `Quick test_segment_probe_spare;
        Alcotest.test_case "steal max_take" `Quick test_segment_steal_max_take;
        Alcotest.test_case "add spills" `Quick test_pool_add_spills;
        Alcotest.test_case "add rejects when full" `Quick test_pool_add_rejects_when_full;
        Alcotest.test_case "unbounded never spills" `Quick test_pool_unbounded_never_spills;
      ]
      @ per_kind "steal capped by spare" test_steal_capped_by_spare
      @ per_kind "bounded conservation" test_bounded_conservation );
  ]
