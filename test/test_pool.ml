(* Integration tests for the whole pool: local ops, steals, abort behaviour,
   conservation under concurrent workloads, per-algorithm smoke checks. *)

open Cpool_sim
open Cpool

let cfg ?(segments = 4) ?(kind = Pool.Linear) () =
  { Pool.default_config with segments; kind }

let test_local_add_remove () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (cfg ()) in
      Pool.join pool;
      Pool.add pool ~me:0 "x";
      (match Pool.remove pool ~me:0 with
      | Pool.Local "x" -> ()
      | _ -> Alcotest.fail "expected local removal");
      Pool.leave pool;
      let t = Pool.totals pool in
      Alcotest.(check int) "adds" 1 t.Pool.adds;
      Alcotest.(check int) "removes" 1 t.Pool.removes;
      Alcotest.(check int) "steals" 0 t.Pool.steals)

let test_remove_steals_when_local_empty () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (cfg ()) in
      Pool.join pool;
      Pool.prefill pool (fun i -> i) ~per_segment:0;
      (* Put 6 elements in segment 2 only. *)
      for i = 1 to 6 do
        Pool.add pool ~me:2 i
      done;
      (match Pool.remove pool ~me:0 with
      | Pool.Stolen (_, stats) ->
        Alcotest.(check int) "stole half" 3 stats.Steal.elements_stolen;
        Alcotest.(check int) "examined 0,1,2" 3 stats.Steal.segments_examined
      | _ -> Alcotest.fail "expected steal");
      (* The remainder landed in segment 0: next removes are local. *)
      Alcotest.(check int) "banked remainder" 2 (Pool.size_of_segment pool 0);
      (match Pool.remove pool ~me:0 with
      | Pool.Local _ -> ()
      | _ -> Alcotest.fail "expected local after banking");
      Pool.leave pool)

let test_remove_aborts_on_truly_empty_pool () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (cfg ()) in
      Pool.join pool;
      (match Pool.remove pool ~me:0 with
      | Pool.Empty _ -> ()
      | _ -> Alcotest.fail "expected abort on empty pool");
      Pool.leave pool;
      let t = Pool.totals pool in
      Alcotest.(check int) "abort counted" 1 t.Pool.aborts)

let test_prefill () =
  let pool = Pool.create (cfg ~segments:16 ()) in
  Pool.prefill pool (fun i -> i) ~per_segment:20;
  Alcotest.(check int) "320 elements" 320 (Pool.total_size pool);
  for i = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "segment %d" i) 20 (Pool.size_of_segment pool i)
  done

let test_participant_range_checked () =
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (cfg ()) in
      Alcotest.check_raises "add range" (Invalid_argument "Pool.add: participant out of range")
        (fun () -> Pool.add pool ~me:4 ());
      Alcotest.check_raises "remove range"
        (Invalid_argument "Pool.remove: participant out of range") (fun () ->
          ignore (Pool.remove pool ~me:(-1))))

let test_bad_config_rejected () =
  Alcotest.check_raises "segments" (Invalid_argument "Pool.create: segments must be positive")
    (fun () -> ignore (Pool.create (cfg ~segments:0 ())))

let test_trace_callback () =
  let events = ref [] in
  Sim_harness.in_proc (fun () ->
      let pool =
        Pool.create
          ~on_size_change:(fun ~seg ~size -> events := (seg, size) :: !events)
          (cfg ())
      in
      Pool.join pool;
      Pool.add pool ~me:1 ();
      ignore (Pool.remove pool ~me:1);
      Pool.leave pool);
  Alcotest.(check (list (pair int int))) "trace" [ (1, 1); (1, 0) ] (List.rev !events)

(* Run a concurrent workload: [n] processes, each performing [ops] random
   operations biased to [add_percent]% adds; returns the pool. *)
let concurrent_workload ?(participants = 8) ?(ops = 200) ?(add_percent = 50) ~kind ~seed () =
  let pool = ref None in
  let _ =
    Sim_harness.run_procs ~nodes:participants ~seed participants (fun i ->
        let p =
          match !pool with
          | Some p -> p
          | None ->
            let p = Pool.create (cfg ~segments:participants ~kind ()) in
            Pool.prefill p (fun j -> j) ~per_segment:5;
            pool := Some p;
            p
        in
        Pool.join p;
        for _ = 1 to ops do
          if Engine.random_int 100 < add_percent then Pool.add p ~me:i (Engine.random_int 1000)
          else ignore (Pool.remove p ~me:i)
        done;
        Pool.leave p)
  in
  Option.get !pool

let test_conservation kind () =
  let pool = concurrent_workload ~kind ~seed:11L () in
  let t = Pool.totals pool in
  let expected = (8 * 5) + t.Pool.adds - t.Pool.removes in
  Alcotest.(check int) "size = prefill + adds - removes" expected (Pool.total_size pool);
  Alcotest.(check bool) "ops happened" true (t.Pool.adds > 0 && t.Pool.removes > 0)

let test_sparse_mix_steals kind () =
  (* 30% adds forces steals for every algorithm. *)
  let pool = concurrent_workload ~add_percent:30 ~kind ~seed:13L () in
  let t = Pool.totals pool in
  Alcotest.(check bool) "steals happened" true (t.Pool.steals > 0);
  Alcotest.(check bool) "stats consistent" true
    (t.Pool.elements_stolen >= t.Pool.steals && t.Pool.segments_examined >= t.Pool.steals)

let test_sufficient_local_only () =
  (* A process that alternates add/remove never needs to steal. *)
  Sim_harness.in_proc (fun () ->
      let pool = Pool.create (cfg ()) in
      Pool.join pool;
      for i = 1 to 50 do
        Pool.add pool ~me:0 i;
        match Pool.remove pool ~me:0 with
        | Pool.Local _ -> ()
        | _ -> Alcotest.fail "expected all-local traffic"
      done;
      Pool.leave pool;
      Alcotest.(check int) "no steals" 0 (Pool.totals pool).Pool.steals)

let test_all_consumers_abort_cleanly kind () =
  (* Pool with a few elements, all processes only remove: once drained,
     every process must abort (not deadlock) and the run completes. *)
  let pool = ref None in
  let _ =
    Sim_harness.run_procs ~nodes:4 ~seed:17L 4 (fun i ->
        let p =
          match !pool with
          | Some p -> p
          | None ->
            let p = Pool.create (cfg ~kind ()) in
            Pool.prefill p (fun j -> j) ~per_segment:2;
            pool := Some p;
            p
        in
        Pool.join p;
        let aborted = ref false in
        while not !aborted do
          match Pool.remove p ~me:i with
          | Pool.Empty _ -> aborted := true
          | Pool.Local _ | Pool.Stolen _ -> ()
        done;
        Pool.leave p)
  in
  let p = Option.get !pool in
  Alcotest.(check int) "fully drained" 0 (Pool.total_size p);
  Alcotest.(check int) "8 removes" 8 (Pool.totals p).Pool.removes;
  Alcotest.(check int) "4 aborts" 4 (Pool.totals p).Pool.aborts

let test_deterministic_runs () =
  let run () =
    let pool = concurrent_workload ~add_percent:40 ~kind:Pool.Tree ~seed:23L () in
    Pool.totals pool
  in
  Alcotest.(check bool) "identical totals" true (run () = run ())

let prop_conservation_all_kinds =
  QCheck.Test.make ~name:"pool conserves elements for every algorithm and mix" ~count:40
    QCheck.(triple (int_range 0 100) (int_range 1 12) (int_range 0 2))
    (fun (add_percent, participants, kind_idx) ->
      let kind = List.nth Pool.all_kinds kind_idx in
      let pool =
        concurrent_workload ~participants ~ops:60 ~add_percent ~kind
          ~seed:(Int64.of_int (add_percent + (participants * 1000)))
          ()
      in
      let t = Pool.totals pool in
      Pool.total_size pool = (participants * 5) + t.Pool.adds - t.Pool.removes)

let per_kind name f =
  List.map
    (fun kind ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name (Pool.kind_to_string kind)) `Quick (f kind))
    Pool.all_kinds

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "local add/remove" `Quick test_local_add_remove;
        Alcotest.test_case "steal when local empty" `Quick test_remove_steals_when_local_empty;
        Alcotest.test_case "abort on empty pool" `Quick test_remove_aborts_on_truly_empty_pool;
        Alcotest.test_case "prefill" `Quick test_prefill;
        Alcotest.test_case "participant range" `Quick test_participant_range_checked;
        Alcotest.test_case "bad config" `Quick test_bad_config_rejected;
        Alcotest.test_case "trace callback" `Quick test_trace_callback;
        Alcotest.test_case "sufficient mix stays local" `Quick test_sufficient_local_only;
        Alcotest.test_case "deterministic totals" `Quick test_deterministic_runs;
      ]
      @ per_kind "conservation" test_conservation
      @ per_kind "sparse mix steals" test_sparse_mix_steals
      @ per_kind "drain aborts cleanly" test_all_consumers_abort_cleanly
      @ [ QCheck_alcotest.to_alcotest prop_conservation_all_kinds ] );
  ]
