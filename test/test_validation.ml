(* Validation of the simulator against closed-form expectations: perfect
   parallelism for independent work, serialisation bounds for a shared
   lock, and throughput consistency of the experiment driver. *)

open Cpool_sim

let test_independent_work_is_parallel () =
  (* P processes each doing W us of local compute finish at exactly W. *)
  let e = Engine.create ~nodes:8 ~seed:1L () in
  for i = 0 to 7 do
    ignore (Engine.spawn e ~node:i ~name:(string_of_int i) (fun () -> Engine.delay 1000.0))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "perfect overlap" 1000.0 (Engine.now e)

let test_lock_serialisation_bound () =
  (* P x N critical sections of h us: the makespan is at least P*N*h (the
     serial floor) and, with FIFO handoff, within the floor plus lock
     overheads (2 accesses per acquisition for the holder). *)
  let p = 4 and n = 25 in
  let h = 20.0 in
  let e = Engine.create ~nodes:p ~seed:2L () in
  let lock = Lock.make ~home:0 in
  for i = 0 to p - 1 do
    ignore
      (Engine.spawn e ~node:i ~name:(string_of_int i) (fun () ->
           for _ = 1 to n do
             Lock.with_lock lock (fun () -> Engine.delay h)
           done))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  let serial_floor = float_of_int (p * n) *. h in
  let makespan = Engine.now e in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.0f >= serial floor %.0f" makespan serial_floor)
    true (makespan >= serial_floor);
  (* Overhead per handoff is bounded by a few accesses (~16 us each side). *)
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.0f within overheads of floor" makespan)
    true
    (makespan <= serial_floor +. (float_of_int (p * n) *. 40.0))

let test_driver_throughput_consistency () =
  (* At a sufficient mix there is no contention to speak of: the run's
     duration should be close to total_ops * mean_op_time / participants. *)
  let participants = 8 in
  let spec =
    {
      Cpool_workload.Driver.default_spec with
      pool = { Cpool.Pool.default_config with segments = participants };
      roles = Cpool_workload.Role.uniform_mix ~participants ~add_percent:70;
      total_ops = 2000;
      initial_elements = 80;
    }
  in
  let r = Cpool_workload.Driver.run spec in
  let mean_op = Cpool_metrics.Sample.mean r.Cpool_workload.Driver.op_time in
  let predicted = 2000.0 *. mean_op /. float_of_int participants in
  let ratio = r.Cpool_workload.Driver.duration /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf "duration %.0f within 25%% of predicted %.0f (ratio %.2f)"
       r.Cpool_workload.Driver.duration predicted ratio)
    true
    (ratio > 0.8 && ratio < 1.25)

let test_speedup_scales_with_compute () =
  (* The application's speedup at fixed workers improves as per-task compute
     grows relative to scheduling overheads — the basic Amdahl shape. *)
  let board = Cpool_game.Board.play Cpool_game.Board.empty 0 in
  let speedup leaf_cost =
    let run workers =
      (Cpool_game.Parallel.analyse ~board
         {
           Cpool_game.Parallel.default_config with
           workers;
           plies = 1;
           leaf_cost;
           expand_cost = 2.0;
         })
        .Cpool_game.Parallel.duration
    in
    run 1 /. run 8
  in
  let cheap = speedup 50.0 and costly = speedup 2000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "speedup grows with grain: %.2f < %.2f" cheap costly)
    true (cheap < costly);
  Alcotest.(check bool) "costly grain near-linear" true (costly > 6.0)

(* --- Golden regression pin --- *)

let test_golden_run () =
  (* A fully deterministic reference run; these exact numbers pin the cost
     model and scheduling order. If a deliberate model change moves them,
     update the constants and re-derive the EXPERIMENTS.md numbers too. *)
  let spec =
    {
      Cpool_workload.Driver.default_spec with
      pool = { Cpool.Pool.default_config with segments = 16; kind = Cpool.Pool.Tree };
      roles = Cpool_workload.Role.uniform_mix ~participants:16 ~add_percent:30;
      total_ops = 1000;
      initial_elements = 64;
      seed = 12345L;
    }
  in
  let r = Cpool_workload.Driver.run spec in
  let t = r.Cpool_workload.Driver.pool_totals in
  Alcotest.(check int) "adds" 262 t.Cpool.Pool.adds;
  Alcotest.(check int) "removes" 326 t.Cpool.Pool.removes;
  Alcotest.(check int) "steals" 127 t.Cpool.Pool.steals;
  Alcotest.(check int) "aborts" 412 r.Cpool_workload.Driver.aborts;
  Alcotest.(check int) "segments examined" 9455 t.Cpool.Pool.segments_examined;
  Alcotest.(check int) "elements stolen" 131 t.Cpool.Pool.elements_stolen;
  Alcotest.(check (float 0.001)) "duration" 33766.0 r.Cpool_workload.Driver.duration

let suites =
  [
    ( "validation",
      [
        Alcotest.test_case "independent work overlaps perfectly" `Quick
          test_independent_work_is_parallel;
        Alcotest.test_case "lock serialisation bound" `Quick test_lock_serialisation_bound;
        Alcotest.test_case "driver throughput consistency" `Quick
          test_driver_throughput_consistency;
        Alcotest.test_case "speedup scales with compute grain" `Quick
          test_speedup_scales_with_compute;
        Alcotest.test_case "golden reference run" `Quick test_golden_run;
      ] );
  ]

