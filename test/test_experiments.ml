(* Integration tests: each experiment runs on a small configuration and the
   paper's qualitative findings must hold. *)

open Cpool_experiments

(* Small but not degenerate: 16 processors (the tree and arrangement
   effects need width), fewer ops and a single trial. *)
let tiny =
  {
    Exp_config.quick with
    Exp_config.trials = 1;
    total_ops = 1500;
    initial_elements = 96;
    app_plies = 1;
    app_workers = [ 1; 4 ];
  }

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

(* --- fig2 --- *)

let fig2 = lazy (Fig2.run tiny)

let test_fig2_sparse_slower () =
  let r = Lazy.force fig2 in
  let series_mean lo hi series =
    List.filter_map
      (fun p ->
        if p.Fig2.x_add_percent >= lo && p.Fig2.x_add_percent <= hi
           && Float.is_finite p.Fig2.op_time
        then Some p.Fig2.op_time
        else None)
      series
    |> mean
  in
  let sparse = series_mean 5.0 45.0 r.Fig2.random_series in
  let sufficient = series_mean 55.0 100.0 r.Fig2.random_series in
  Alcotest.(check bool)
    (Printf.sprintf "sparse (%.0f us) slower than sufficient (%.0f us)" sparse sufficient)
    true (sparse > sufficient);
  (* "the performance generally levels off when more than 50% of the
     operations are adds": the sufficient side stays near the uncontended
     operation cost. *)
  Alcotest.(check bool) "sufficient mixes near uncontended cost" true (sufficient < 300.0)

let test_fig2_no_steals_when_sufficient () =
  let r = Lazy.force fig2 in
  List.iter
    (fun p ->
      if p.Fig2.x_add_percent > 55.0 && Float.is_finite p.Fig2.steal_fraction then
        Alcotest.(check bool)
          (Printf.sprintf "steals rare at %s" p.Fig2.label)
          true (p.Fig2.steal_fraction < 0.02))
    r.Fig2.random_series

let test_fig2_pc_measured_mix_monotone () =
  let r = Lazy.force fig2 in
  (* More producers -> higher measured add percentage. *)
  let xs = List.map (fun p -> p.Fig2.x_add_percent) r.Fig2.producer_consumer_series in
  let finite = List.filter Float.is_finite xs in
  Alcotest.(check bool) "measured mix increases with producers" true
    (List.sort compare finite = finite)

(* --- traces (figs 3-6) --- *)

let spread_of_first_steals r =
  let times = List.filter_map snd r.Traces.first_steal_time in
  match times with
  | [] -> 0.0
  | _ -> List.fold_left Float.max Float.neg_infinity times
         -. List.fold_left Float.min Float.infinity times

let test_traces_bunching kind () =
  (* Contiguous producers are first stolen from in a staggered sequence;
     balanced producers are hit nearly simultaneously. *)
  let unbalanced = Traces.run ~kind ~balanced:false tiny in
  let balanced = Traces.run ~kind ~balanced:true tiny in
  let su = spread_of_first_steals unbalanced and sb = spread_of_first_steals balanced in
  Alcotest.(check bool)
    (Printf.sprintf "first-steal spread: unbalanced %.0f us > balanced %.0f us" su sb)
    true (su > sb);
  Alcotest.(check int) "five producers traced" 5 (List.length unbalanced.Traces.producers)

let test_traces_record_steals () =
  let r = Traces.run ~kind:Cpool.Pool.Linear ~balanced:false tiny in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Traces.producer_steals in
  Alcotest.(check bool) "producers were stolen from" true (total > 0);
  Alcotest.(check bool) "trace has events" true
    (Cpool_metrics.Trace.event_count r.Traces.trace > 0)

(* --- fig7 --- *)

let test_fig7_balanced_steals_more () =
  let r = Fig7.run tiny in
  (* Sum over the mid-range where the effect lives (paper Figure 7). *)
  let mid =
    List.filter
      (fun p -> p.Fig7.producers >= 5 && p.Fig7.producers <= 12
                && Float.is_finite p.Fig7.balanced && Float.is_finite p.Fig7.unbalanced)
      r.Fig7.points
  in
  let b = mean (List.map (fun p -> p.Fig7.balanced) mid) in
  let u = mean (List.map (fun p -> p.Fig7.unbalanced) mid) in
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%.1f) > unbalanced (%.1f) elements per steal" b u)
    true (b > u)

(* --- comparison --- *)

let comparison = lazy (Comparison.run tiny)

let test_comparison_identical_when_sufficient () =
  let r = Lazy.force comparison in
  List.iter
    (fun row ->
      if row.Comparison.add_percent >= 60 then begin
        let times =
          List.map (fun (_, c) -> c.Comparison.op_time) row.Comparison.by_kind
          |> List.filter Float.is_finite
        in
        let lo = List.fold_left Float.min Float.infinity times in
        let hi = List.fold_left Float.max Float.neg_infinity times in
        Alcotest.(check bool)
          (Printf.sprintf "%s: algorithms within 25%%" row.Comparison.condition)
          true (hi /. lo < 1.25)
      end)
    r.Comparison.random_rows

let test_comparison_tree_examines_fewer () =
  (* "The tree algorithm, however, examines many fewer segments in the
     course of a steal than do either the linear or random algorithms" —
     most pronounced in the producer/consumer model with few producers,
     where the tree's empty-subtree marks steer consumers straight to the
     producers while linear/random walk through empty consumer segments. *)
  let r = Lazy.force comparison in
  let collect kind =
    List.filter_map
      (fun row ->
        (* Sparse side: 1..5 producers of 16 = up to ~31% adds. *)
        if row.Comparison.add_percent >= 1 && row.Comparison.add_percent <= 31 then begin
          let c = List.assoc kind row.Comparison.by_kind in
          if Float.is_finite c.Comparison.segments_per_steal then
            Some c.Comparison.segments_per_steal
          else None
        end
        else None)
      r.Comparison.balanced_pc_rows
  in
  let tree = mean (collect Cpool.Pool.Tree) in
  let linear = mean (collect Cpool.Pool.Linear) in
  let random = mean (collect Cpool.Pool.Random) in
  Alcotest.(check bool)
    (Printf.sprintf "tree %.1f < linear %.1f segments per steal" tree linear)
    true (tree < linear);
  Alcotest.(check bool)
    (Printf.sprintf "tree %.1f < random %.1f segments per steal" tree random)
    true (tree < random)

let test_comparison_tree_not_faster_sparse () =
  (* "the operation times in the tree search algorithm did not compare
     favorably for steal-intensive workloads" *)
  let r = Lazy.force comparison in
  let mean_time kind =
    List.filter_map
      (fun row ->
        if row.Comparison.add_percent <= 40 then begin
          let c = List.assoc kind row.Comparison.by_kind in
          if Float.is_finite c.Comparison.op_time then Some c.Comparison.op_time else None
        end
        else None)
      r.Comparison.random_rows
    |> mean
  in
  Alcotest.(check bool) "tree not faster than linear at sparse mixes" true
    (mean_time Cpool.Pool.Tree >= mean_time Cpool.Pool.Linear)

(* --- delay sweep --- *)

let test_delay_convergence () =
  let r = Delay_sweep.run ~delays:[ 0.0; 1_000.0; 100_000.0 ] tiny in
  match r.Delay_sweep.random_model with
  | [ zero; _; highest ] ->
    let s0 = Delay_sweep.convergence_ratio zero in
    let s2 = Delay_sweep.convergence_ratio highest in
    Alcotest.(check bool)
      (Printf.sprintf "spread shrinks: %.2f -> %.2f" s0 s2)
      true (s2 < s0);
    Alcotest.(check bool) "near-identical at extreme delay" true (s2 < 0.25)
  | _ -> Alcotest.fail "expected three delay points"

let test_delay_tree_never_wins () =
  let r = Delay_sweep.run ~delays:[ 0.0; 10_000.0 ] tiny in
  List.iter
    (fun pt ->
      let v kind = List.assoc kind pt.Delay_sweep.by_kind in
      Alcotest.(check bool)
        (Printf.sprintf "tree not fastest at delay %g" pt.Delay_sweep.delay)
        true
        (v Cpool.Pool.Tree >= Float.min (v Cpool.Pool.Linear) (v Cpool.Pool.Random) *. 0.99))
    r.Delay_sweep.random_model

(* --- steal stats --- *)

let test_balancing_improves_steals () =
  let r = Steal_stats.run ~producer_counts:[ 3; 5; 8 ] tiny in
  let wins, total = Steal_stats.balanced_wins r in
  Alcotest.(check bool)
    (Printf.sprintf "balancing helped at %d of %d producer counts" wins total)
    true (wins * 2 >= total)

(* --- application --- *)

let test_application_shapes () =
  let r = Application.run tiny in
  (* Leaf count at 1 ply from the empty board. *)
  Alcotest.(check int) "positions" 64 r.Application.positions;
  let speedup scheduler workers =
    match
      List.find_opt
        (fun row -> row.Application.scheduler = scheduler && row.Application.workers = workers)
        r.Application.rows
    with
    | Some row -> row.Application.speedup
    | None -> Float.nan
  in
  let pool4 = speedup (Cpool_game.Parallel.Pool_scheduler Cpool.Pool.Linear) 4 in
  Alcotest.(check bool) (Printf.sprintf "pool speeds up (%.2f)" pool4) true (pool4 > 1.5)

let test_application_checks_values () =
  (* Application.run raises if any scheduler disagrees with sequential
     minimax; reaching here is the assertion. *)
  ignore (Application.run tiny)

(* --- ablation + registry --- *)

let test_ablation_ranking () =
  let r = Ablation.run tiny in
  Alcotest.(check bool) "profiles preserve ranking" true (Ablation.ranking_preserved r);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Cpool.Pool.kind_to_string row.Ablation.kind ^ ": boxed not cheaper")
        true
        (row.Ablation.boxed.Ablation.op_time >= row.Ablation.counting.Ablation.op_time *. 0.98))
    r.Ablation.rows

let test_extension_experiments_smoke () =
  (* Every extension/ablation experiment runs end to end on a micro config
     and renders something substantial. *)
  let micro =
    {
      tiny with
      Exp_config.total_ops = 600;
      initial_elements = 48;
      dib_n = 6;
      app_workers = [ 1; 4 ];
    }
  in
  List.iter
    (fun id ->
      match Registry.find id with
      | Some entry ->
        let out = entry.Registry.run micro in
        Alcotest.(check bool) (id ^ " renders") true (String.length out > 100)
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "lockprobe"; "hints"; "bounded"; "phases"; "dib"; "classed" ]

let test_registry_ids_unique () =
  let ids = Registry.ids in
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "18 experiments" true (List.length ids = 18);
  Alcotest.(check bool) "find works" true (Registry.find "fig2" <> None);
  Alcotest.(check bool) "find misses" true (Registry.find "nope" = None)

let test_presets () =
  Alcotest.(check string) "paper" "paper" (Exp_config.name Exp_config.paper);
  Alcotest.(check string) "quick" "quick" (Exp_config.name Exp_config.quick);
  Alcotest.(check int) "paper trials" 10 Exp_config.paper.Exp_config.trials;
  Alcotest.(check int) "paper ops" 5000 Exp_config.paper.Exp_config.total_ops;
  Alcotest.(check int) "paper fill" 320 Exp_config.paper.Exp_config.initial_elements

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "fig2: sparse slower" `Slow test_fig2_sparse_slower;
        Alcotest.test_case "fig2: no steals when sufficient" `Slow
          test_fig2_no_steals_when_sufficient;
        Alcotest.test_case "fig2: p/c mix monotone" `Slow test_fig2_pc_measured_mix_monotone;
        Alcotest.test_case "traces: bunching (linear)" `Slow
          (test_traces_bunching Cpool.Pool.Linear);
        Alcotest.test_case "traces: bunching (tree)" `Slow (test_traces_bunching Cpool.Pool.Tree);
        Alcotest.test_case "traces: steals recorded" `Slow test_traces_record_steals;
        Alcotest.test_case "fig7: balanced steals more" `Slow test_fig7_balanced_steals_more;
        Alcotest.test_case "compare: identical when sufficient" `Slow
          test_comparison_identical_when_sufficient;
        Alcotest.test_case "compare: tree examines fewer" `Slow test_comparison_tree_examines_fewer;
        Alcotest.test_case "compare: tree not faster sparse" `Slow
          test_comparison_tree_not_faster_sparse;
        Alcotest.test_case "delay: convergence" `Slow test_delay_convergence;
        Alcotest.test_case "delay: tree never wins" `Slow test_delay_tree_never_wins;
        Alcotest.test_case "steals: balancing improves" `Slow test_balancing_improves_steals;
        Alcotest.test_case "app: shapes" `Slow test_application_shapes;
        Alcotest.test_case "app: values checked" `Slow test_application_checks_values;
        Alcotest.test_case "ablation: ranking preserved" `Slow test_ablation_ranking;
        Alcotest.test_case "extension experiments smoke" `Slow test_extension_experiments_smoke;
        Alcotest.test_case "registry: ids" `Quick test_registry_ids_unique;
        Alcotest.test_case "presets" `Quick test_presets;
      ] );
  ]
