(* Tests for the classed (distinguishable-elements) pool. *)

open Cpool
open Cpool_sim

let mk ?(classes = 3) ?(participants = 4) () = Classed.create ~classes ~participants ()

let test_validation () =
  Alcotest.check_raises "classes" (Invalid_argument "Classed.create: classes must be positive")
    (fun () -> ignore (mk ~classes:0 () : unit Classed.t));
  Alcotest.check_raises "participants"
    (Invalid_argument "Classed.create: participants must be positive") (fun () ->
      ignore (mk ~participants:0 () : unit Classed.t));
  let t : int Classed.t = mk () in
  Alcotest.(check int) "classes" 3 (Classed.classes t);
  Alcotest.(check int) "participants" 4 (Classed.participants t)

let test_local_class_roundtrip () =
  Sim_harness.in_proc (fun () ->
      let t = mk () in
      Classed.join t;
      Classed.add t ~me:0 ~cls:1 "b";
      Classed.add t ~me:0 ~cls:0 "a";
      Alcotest.(check int) "class 0 size" 1 (Classed.size_of_class t 0);
      Alcotest.(check int) "class 1 size" 1 (Classed.size_of_class t 1);
      Alcotest.(check (option string)) "typed remove" (Some "b") (Classed.try_remove t ~me:0 ~cls:1);
      Alcotest.(check (option string)) "class 1 now empty" None (Classed.try_remove t ~me:0 ~cls:1);
      Alcotest.(check (option string)) "class 0 untouched" (Some "a")
        (Classed.try_remove t ~me:0 ~cls:0);
      Classed.leave t)

let test_class_isolation () =
  (* Removing class 0 never returns class-1 elements, even via steals. *)
  Sim_harness.in_proc (fun () ->
      let t = mk () in
      Classed.join t;
      for i = 1 to 5 do
        Classed.add t ~me:2 ~cls:1 i
      done;
      Alcotest.(check (option int)) "class 0 absent" None (Classed.try_remove t ~me:0 ~cls:0);
      Alcotest.(check int) "class 1 intact" 5 (Classed.size_of_class t 1);
      Classed.leave t)

let test_typed_steal () =
  Sim_harness.in_proc (fun () ->
      let t = mk () in
      Classed.join t;
      for i = 1 to 6 do
        Classed.add t ~me:2 ~cls:1 i
      done;
      (match Classed.try_remove t ~me:0 ~cls:1 with
      | Some _ -> ()
      | None -> Alcotest.fail "expected a typed steal");
      Alcotest.(check int) "one steal" 1 (Classed.steals t);
      (* Half was banked at home in the same class. *)
      Alcotest.(check bool) "banked locally" true
        (Classed.try_remove t ~me:0 ~cls:1 <> None);
      Classed.leave t)

let test_remove_any_prefers_local_rotation () =
  Sim_harness.in_proc (fun () ->
      let t = mk () in
      Classed.join t;
      Classed.add t ~me:0 ~cls:0 "zero";
      Classed.add t ~me:0 ~cls:2 "two";
      (* First remove_any starts its rotation at class 0. *)
      (match Classed.remove_any t ~me:0 with
      | Some ("zero", 0) -> ()
      | Some (x, c) -> Alcotest.failf "got %s of class %d" x c
      | None -> Alcotest.fail "expected an element");
      (match Classed.remove_any t ~me:0 with
      | Some ("two", 2) -> ()
      | Some (x, c) -> Alcotest.failf "got %s of class %d" x c
      | None -> Alcotest.fail "expected the other element");
      Classed.leave t)

let test_remove_any_steals_remote () =
  Sim_harness.in_proc (fun () ->
      let t = mk () in
      Classed.join t;
      Classed.join t;
      (* phantom participant to keep the search alive *)
      for i = 1 to 4 do
        Classed.add t ~me:3 ~cls:2 i
      done;
      (match Classed.remove_any t ~me:0 with
      | Some (_, 2) -> ()
      | Some (_, c) -> Alcotest.failf "class %d" c
      | None -> Alcotest.fail "expected steal");
      Classed.leave t;
      Classed.leave t)

let test_remove_any_aborts_empty () =
  Sim_harness.in_proc (fun () ->
      let t = mk () in
      Classed.join t;
      Alcotest.(check bool) "empty pool" true (Classed.remove_any t ~me:0 = None);
      Classed.leave t)

let test_bounds_checked () =
  Sim_harness.in_proc (fun () ->
      let t : int Classed.t = mk () in
      Alcotest.check_raises "class range" (Invalid_argument "Classed.add: class out of range")
        (fun () -> Classed.add t ~me:0 ~cls:3 1);
      Alcotest.check_raises "participant range"
        (Invalid_argument "Classed.try_remove: participant out of range") (fun () ->
          ignore (Classed.try_remove t ~me:9 ~cls:0)))

let test_concurrent_conservation () =
  (* Multi-process traffic over classes conserves per-class counts. *)
  let t = ref None in
  let produced = Array.make 3 0 in
  let consumed = Array.make 3 0 in
  let _ =
    Sim_harness.run_procs ~nodes:4 ~seed:61L 4 (fun i ->
        let pool =
          match !t with
          | Some p -> p
          | None ->
            let p = mk () in
            t := Some p;
            p
        in
        Classed.join pool;
        for k = 1 to 120 do
          let cls = (i + k) mod 3 in
          if k land 1 = 0 then begin
            Classed.add pool ~me:i ~cls k;
            produced.(cls) <- produced.(cls) + 1
          end
          else begin
            match Classed.try_remove pool ~me:i ~cls with
            | Some _ -> consumed.(cls) <- consumed.(cls) + 1
            | None -> ()
          end
        done;
        Classed.leave pool)
  in
  let pool = Option.get !t in
  for cls = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "class %d conserved" cls)
      (produced.(cls) - consumed.(cls))
      (Classed.size_of_class pool cls)
  done

let test_producer_consumer_classes () =
  (* A producer of class 0 and a consumer looping on try_remove of class 0,
     while another producer floods class 1: the consumer gets exactly the
     class-0 stream. *)
  let e = Engine.create ~nodes:4 ~seed:71L () in
  let pool : int Classed.t = mk () in
  let got = ref [] in
  let _ =
    Engine.spawn e ~node:0 ~name:"consumer" (fun () ->
        Classed.join pool;
        let received = ref 0 in
        while !received < 10 do
          match Classed.try_remove pool ~me:0 ~cls:0 with
          | Some x ->
            got := x :: !got;
            incr received
          | None -> Engine.delay 50.0
        done;
        Classed.leave pool)
  in
  let _ =
    Engine.spawn e ~node:1 ~name:"producer0" (fun () ->
        Classed.join pool;
        for k = 1 to 10 do
          Classed.add pool ~me:1 ~cls:0 k;
          Engine.delay 200.0
        done;
        Classed.leave pool)
  in
  let _ =
    Engine.spawn e ~node:2 ~name:"producer1" (fun () ->
        Classed.join pool;
        for k = 100 to 140 do
          Classed.add pool ~me:2 ~cls:1 k
        done;
        Classed.leave pool)
  in
  Sim_harness.expect_completed e;
  Alcotest.(check int) "ten class-0 elements" 10 (List.length !got);
  Alcotest.(check bool) "only class-0 values" true (List.for_all (fun x -> x <= 10) !got);
  Alcotest.(check int) "class 1 untouched" 41 (Classed.size_of_class pool 1)

let test_remove_any_drains_to_quiescence () =
  (* Several processes drain a classed pool with remove_any until it
     confirms emptiness; every element is consumed exactly once. *)
  let t = ref None in
  let consumed = Atomic.make 0 in
  let _ =
    Sim_harness.run_procs ~nodes:4 ~seed:83L 4 (fun i ->
        let pool =
          match !t with
          | Some p -> p
          | None ->
            let p = mk () in
            t := Some p;
            p
        in
        Classed.join pool;
        if i = 0 then
          for k = 1 to 30 do
            Classed.add pool ~me:0 ~cls:(k mod 3) k
          done;
        let rec drain () =
          match Classed.remove_any pool ~me:i with
          | Some _ ->
            Atomic.incr consumed;
            drain ()
          | None -> ()
        in
        drain ();
        Classed.leave pool)
  in
  let pool = Option.get !t in
  Alcotest.(check int) "all consumed" 30 (Atomic.get consumed);
  Alcotest.(check int) "empty" 0 (Classed.total_size pool)

let suites =
  [
    ( "classed",
      [
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "local class roundtrip" `Quick test_local_class_roundtrip;
        Alcotest.test_case "class isolation" `Quick test_class_isolation;
        Alcotest.test_case "typed steal" `Quick test_typed_steal;
        Alcotest.test_case "remove_any rotation" `Quick test_remove_any_prefers_local_rotation;
        Alcotest.test_case "remove_any steals" `Quick test_remove_any_steals_remote;
        Alcotest.test_case "remove_any aborts" `Quick test_remove_any_aborts_empty;
        Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
        Alcotest.test_case "concurrent conservation" `Quick test_concurrent_conservation;
        Alcotest.test_case "producer/consumer classes" `Quick test_producer_consumer_classes;
        Alcotest.test_case "remove_any drains to quiescence" `Quick
          test_remove_any_drains_to_quiescence;
      ] );
  ]
