(* Tests for samples, histograms, traces and text rendering. *)

open Cpool_metrics

let feed xs =
  let s = Sample.create () in
  List.iter (Sample.add s) xs;
  s

let test_sample_empty () =
  let s = Sample.create () in
  Alcotest.(check int) "n" 0 (Sample.n s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Sample.mean s));
  Alcotest.(check bool) "stddev nan" true (Float.is_nan (Sample.stddev s));
  Alcotest.(check bool) "min nan" true (Float.is_nan (Sample.min_value s));
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Sample.percentile s 50.0))

let test_sample_basic_stats () =
  let s = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "n" 8 (Sample.n s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Sample.mean s);
  (* Sample stddev with n-1: variance = 32/7. *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (32.0 /. 7.0)) (Sample.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Sample.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Sample.max_value s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Sample.total s)

let test_sample_single () =
  let s = feed [ 3.5 ] in
  Alcotest.(check (float 0.0)) "mean" 3.5 (Sample.mean s);
  Alcotest.(check (float 0.0)) "stddev" 0.0 (Sample.stddev s);
  Alcotest.(check (float 0.0)) "median" 3.5 (Sample.median s)

let test_sample_percentiles () =
  let s = feed [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Sample.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Sample.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "median interpolates" 2.5 (Sample.median s);
  Alcotest.(check (float 1e-9)) "p25" 1.75 (Sample.percentile s 25.0);
  Alcotest.check_raises "out of range" (Invalid_argument "Sample.percentile: p out of [0, 100]")
    (fun () -> ignore (Sample.percentile s 101.0))

let test_sample_add_int_and_merge () =
  let a = Sample.create () in
  Sample.add_int a 1;
  Sample.add_int a 2;
  let b = feed [ 3.0 ] in
  let m = Sample.merge a b in
  Alcotest.(check int) "merged n" 3 (Sample.n m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.0 (Sample.mean m);
  (* Merge copies: mutating m must not affect a. *)
  Sample.add m 100.0;
  Alcotest.(check int) "a untouched" 2 (Sample.n a)

let test_sample_percentile_after_add () =
  (* The sorted cache must invalidate on add. *)
  let s = feed [ 1.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "median" 2.0 (Sample.median s);
  Sample.add s 5.0;
  Alcotest.(check (float 1e-9)) "median updated" 3.0 (Sample.median s)

let test_sample_nan_flagged () =
  (* Regression: percentiles used to sort with polymorphic [compare], so a
     single NaN observation silently corrupted every percentile. NaN is now
     excluded and flagged instead. *)
  let s = feed [ 5.0; Float.nan; 1.0; 3.0 ] in
  Alcotest.(check int) "nan excluded from n" 3 (Sample.n s);
  Alcotest.(check int) "nan flagged" 1 (Sample.nan_count s);
  Alcotest.(check (float 1e-9)) "median uncorrupted" 3.0 (Sample.median s);
  Alcotest.(check (float 1e-9)) "p100 uncorrupted" 5.0 (Sample.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "mean over finite data" 3.0 (Sample.mean s);
  Alcotest.(check (float 1e-9)) "max uncorrupted" 5.0 (Sample.max_value s);
  let m = Sample.merge s (feed [ Float.nan ]) in
  Alcotest.(check int) "merge sums nan flags" 2 (Sample.nan_count m);
  Alcotest.(check int) "merge keeps finite data" 3 (Sample.n m)

let test_counters_basics () =
  let c = Counters.of_list [ ("adds", 2); ("steals", 1); ("adds", 3) ] in
  Alcotest.(check int) "duplicates sum" 5 (Counters.get c "adds");
  Alcotest.(check int) "get" 1 (Counters.get c "steals");
  Alcotest.(check int) "absent is zero" 0 (Counters.get c "spills");
  Alcotest.(check (list string)) "first occurrence keeps order" [ "adds"; "steals" ]
    (Counters.labels c);
  Alcotest.(check bool) "not empty" false (Counters.is_empty c)

let test_counters_merge () =
  let a = Counters.of_list [ ("adds", 2); ("steals", 1) ] in
  let b = Counters.of_list [ ("steals", 4); ("spins", 7) ] in
  let m = Counters.merge a b in
  Alcotest.(check (list (pair string int))) "sums matching, appends new"
    [ ("adds", 2); ("steals", 5); ("spins", 7) ]
    (Counters.to_rows m);
  let all = Counters.merge_all [ a; b; b ] in
  Alcotest.(check int) "merge_all" 9 (Counters.get all "steals");
  Alcotest.(check bool) "merge_all of none is empty" true (Counters.is_empty (Counters.merge_all []));
  Alcotest.(check bool) "renders a table" true
    (String.length (Counters.render ~title:"t" m) > 0)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = feed xs in
      Sample.mean s >= Sample.min_value s -. 1e-9
      && Sample.mean s <= Sample.max_value s +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_bound_exclusive 10.0))
              (pair (int_range 0 100) (int_range 0 100)))
    (fun (xs, (p1, p2)) ->
      let s = feed xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Sample.percentile s (float_of_int lo) <= Sample.percentile s (float_of_int hi) +. 1e-9)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.9; 2.0; 9.9; 15.0; -3.0 ];
  Alcotest.(check int) "total" 6 (Histogram.count h);
  Alcotest.(check int) "bin 0 gets 0.5, 1.9 and clamped -3" 3 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1 gets 2.0" 1 (Histogram.bin_count h 1);
  Alcotest.(check int) "last bin gets 9.9 and clamped 15" 2 (Histogram.bin_count h 4);
  let lo, hi = Histogram.bin_bounds h 1 in
  Alcotest.(check (float 1e-9)) "bounds lo" 2.0 lo;
  Alcotest.(check (float 1e-9)) "bounds hi" 4.0 hi

let test_histogram_invalid () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3))

let test_trace_events_and_duration () =
  let t = Trace.create ~segments:2 in
  Trace.record t ~time:1.0 ~seg:0 ~size:3;
  Trace.record t ~time:2.0 ~seg:1 ~size:5;
  Trace.record t ~time:4.0 ~seg:0 ~size:1;
  Alcotest.(check int) "count" 3 (Trace.event_count t);
  Alcotest.(check (float 0.0)) "duration" 4.0 (Trace.duration t);
  Alcotest.(check int) "peak" 5 (Trace.peak_size t)

let test_trace_grid_carries_forward () =
  let t = Trace.create ~segments:1 in
  Trace.record t ~time:0.0 ~seg:0 ~size:4;
  Trace.record t ~time:10.0 ~seg:0 ~size:2;
  let g = Trace.grid t ~buckets:4 in
  (* Size 4 recorded in bucket 0 carries through buckets 1-2; the drop to 2
     lands in the last bucket. *)
  Alcotest.(check (array int)) "carried" [| 4; 4; 4; 2 |] g.(0)

let test_trace_grid_empty () =
  let t = Trace.create ~segments:2 in
  let g = Trace.grid t ~buckets:3 in
  Alcotest.(check (array int)) "all zero" [| 0; 0; 0 |] g.(0)

let test_trace_steal_detection () =
  let t = Trace.create ~segments:1 in
  (* Grow to 5, plain remove to 4, steal drops to 2. *)
  List.iteri (fun i size -> Trace.record t ~time:(float_of_int i) ~seg:0 ~size)
    [ 1; 2; 3; 4; 5; 4; 2 ];
  Alcotest.(check int) "one steal seen" 1 (Trace.steals_observed t ~seg:0)

let test_trace_bad_segment () =
  let t = Trace.create ~segments:1 in
  Alcotest.check_raises "range" (Invalid_argument "Trace.record: segment out of range")
    (fun () -> Trace.record t ~time:0.0 ~seg:1 ~size:0)

let test_table_layout () =
  let s = Render.table ~headers:[ "a"; "bbb" ] ~rows:[ [ "1"; "2" ]; [ "10"; "20" ] ] () in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check string) "header" "a   bbb" (List.nth lines 0);
  Alcotest.(check bool) "rule present" true (String.length (List.nth lines 1) > 0);
  Alcotest.(check string) "row" "10  20" (List.nth lines 3)

let test_table_pads_short_rows () =
  let s = Render.table ~headers:[ "x"; "y" ] ~rows:[ [ "only" ] ] () in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_chart_renders_points () =
  let s =
    Render.chart ~width:40 ~height:10
      [ ("up", [ (0.0, 0.0); (1.0, 1.0) ]); ("down", [ (0.0, 1.0); (1.0, 0.0) ]) ]
  in
  Alcotest.(check bool) "has first marker" true (String.contains s '*');
  Alcotest.(check bool) "has second marker" true (String.contains s 'o');
  Alcotest.(check bool) "has legend" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "  * = up") lines)

let test_chart_empty () =
  Alcotest.(check string) "graceful" "(chart: no data)\n" (Render.chart [ ("none", []) ])

let test_strip_chart () =
  let s = Render.strip_chart ~width:8 ~labels:[| "c0"; "p1" |] [| [| 0; 0 |]; [| 4; 8 |] |] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "two strips + footer" true (List.length lines >= 3);
  Alcotest.(check bool) "empty row blank" true
    (String.for_all (fun c -> c = ' ' || c = '|' || c = 'c' || c = '0') (List.nth lines 0))

let test_strip_chart_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Render.strip_chart: labels/grid mismatch")
    (fun () -> ignore (Render.strip_chart ~labels:[| "a" |] [||]))

let test_float_cell () =
  Alcotest.(check string) "nan" "-" (Render.float_cell Float.nan);
  Alcotest.(check string) "small" "1.25" (Render.float_cell 1.25);
  Alcotest.(check string) "mid" "12.5" (Render.float_cell 12.5);
  Alcotest.(check string) "big" "1250" (Render.float_cell 1250.0)

let suites =
  [
    ( "metrics.sample",
      [
        Alcotest.test_case "empty" `Quick test_sample_empty;
        Alcotest.test_case "basic stats" `Quick test_sample_basic_stats;
        Alcotest.test_case "single value" `Quick test_sample_single;
        Alcotest.test_case "percentiles" `Quick test_sample_percentiles;
        Alcotest.test_case "add_int and merge" `Quick test_sample_add_int_and_merge;
        Alcotest.test_case "percentile cache invalidation" `Quick test_sample_percentile_after_add;
        Alcotest.test_case "nan flagged not absorbed" `Quick test_sample_nan_flagged;
        QCheck_alcotest.to_alcotest prop_mean_bounded;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
      ] );
    ( "metrics.counters",
      [
        Alcotest.test_case "labels and sums" `Quick test_counters_basics;
        Alcotest.test_case "merge" `Quick test_counters_merge;
      ] );
    ( "metrics.histogram",
      [
        Alcotest.test_case "binning and clamping" `Quick test_histogram_basic;
        Alcotest.test_case "invalid construction" `Quick test_histogram_invalid;
      ] );
    ( "metrics.trace",
      [
        Alcotest.test_case "events and duration" `Quick test_trace_events_and_duration;
        Alcotest.test_case "grid carries forward" `Quick test_trace_grid_carries_forward;
        Alcotest.test_case "empty grid" `Quick test_trace_grid_empty;
        Alcotest.test_case "steal detection" `Quick test_trace_steal_detection;
        Alcotest.test_case "segment range" `Quick test_trace_bad_segment;
      ] );
    ( "metrics.render",
      [
        Alcotest.test_case "table layout" `Quick test_table_layout;
        Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
        Alcotest.test_case "chart renders" `Quick test_chart_renders_points;
        Alcotest.test_case "chart empty" `Quick test_chart_empty;
        Alcotest.test_case "strip chart" `Quick test_strip_chart;
        Alcotest.test_case "strip chart mismatch" `Quick test_strip_chart_mismatch;
        Alcotest.test_case "float cell" `Quick test_float_cell;
      ] );
  ]
