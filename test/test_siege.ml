(* The open-loop siege harness: log-histogram percentile accuracy, the
   arrival-process generators, the shared Workload spec parser, and a tiny
   end-to-end breaking-point search on 2 domains. *)

open Cpool_mc
module Workload = Cpool_intf.Workload
module Histogram = Cpool_metrics.Histogram

(* --- log-scaled histogram percentiles --------------------------------- *)

(* 160 bins over [0.1, 1e7] is a 10^0.05 ~ 12% geometric bin width, so the
   interpolated percentile of a smooth distribution should land within a
   bin of the analytic value; 15% relative tolerance covers it. *)
let close name expected got =
  let rel = abs_float (got -. expected) /. expected in
  if rel > 0.15 then
    Alcotest.failf "%s: expected ~%g, got %g (%.1f%% off)" name expected got (100.0 *. rel)

let sojourn_histogram () = Histogram.create_log ~lo:0.1 ~hi:1e7 ~bins:160

let test_histogram_uniform () =
  let h = sojourn_histogram () in
  let rng = Cpool_util.Rng.create 7L in
  for _ = 1 to 100_000 do
    Histogram.add h (10.0 +. Cpool_util.Rng.float rng 990.0)
  done;
  (* Uniform on [10, 1000]: p = 10 + 990*q. *)
  close "uniform p50" 505.0 (Histogram.percentile h 50.0);
  close "uniform p90" 901.0 (Histogram.percentile h 90.0);
  close "uniform p99" 990.1 (Histogram.percentile h 99.0)

let test_histogram_exponential () =
  let h = sojourn_histogram () in
  let rng = Cpool_util.Rng.create 11L in
  for _ = 1 to 100_000 do
    Histogram.add h (-100.0 *. log (1.0 -. Cpool_util.Rng.float rng 1.0))
  done;
  (* Exponential, mean 100: p_q = -100 ln(1-q). *)
  close "exp p50" 69.31 (Histogram.percentile h 50.0);
  close "exp p99" 460.5 (Histogram.percentile h 99.0)

let test_histogram_merge () =
  let a = sojourn_histogram () and b = sojourn_histogram () in
  let rng = Cpool_util.Rng.create 13L in
  for _ = 1 to 10_000 do
    Histogram.add a (1.0 +. Cpool_util.Rng.float rng 9.0);
    Histogram.add b (100.0 +. Cpool_util.Rng.float rng 900.0)
  done;
  Histogram.merge a b;
  Alcotest.(check int) "merged total" 20_000 (Histogram.count a);
  (* Half the mass below 10, half above 100: the median sits in the gap. *)
  let p50 = Histogram.percentile a 50.0 in
  Alcotest.(check bool) "median in the gap" true (p50 >= 9.0 && p50 <= 110.0);
  close "upper tail from b" 991.0 (Histogram.percentile a 99.5);
  let tiny = Histogram.create_log ~lo:0.1 ~hi:10.0 ~bins:8 in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Histogram.merge: histograms have different shapes") (fun () ->
      Histogram.merge a tiny)

let test_histogram_empty_and_bounds () =
  let h = sojourn_histogram () in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Histogram.percentile h 50.0));
  Histogram.add h 0.0;
  (* Below-range samples clamp into the first bin. *)
  Alcotest.(check int) "clamped sample counted" 1 (Histogram.count h);
  Alcotest.(check bool) "clamped percentile at lo" true (Histogram.percentile h 50.0 <= 0.2)

(* --- arrival generators ------------------------------------------------ *)

let test_poisson_mean_variance () =
  let rng = Cpool_util.Rng.create 42L in
  let rate = 10_000.0 in
  let a = Mc_siege.Arrival.create (Workload.Poisson rate) ~rate ~rng in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = float_of_int (Mc_siege.Arrival.next_gap_ns a) in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  let expected = 1e9 /. rate in
  (* Exponential gaps: mean = 1/rate, std = mean. 50k draws put the sample
     mean within ~1% and the std within a few %; 5% is comfortable. *)
  Alcotest.(check bool) "mean ~ 1/rate" true (abs_float (mean -. expected) /. expected < 0.05);
  let cv = sqrt var /. mean in
  Alcotest.(check bool) "coefficient of variation ~ 1" true (cv > 0.9 && cv < 1.1)

let test_bursty_long_run_rate () =
  let rng = Cpool_util.Rng.create 42L in
  let rate = 10_000.0 in
  let a =
    Mc_siege.Arrival.create
      (Workload.Bursty { rate; on_ms = 2.0; off_ms = 6.0 })
      ~rate ~rng
  in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. float_of_int (Mc_siege.Arrival.next_gap_ns a)
  done;
  let mean = !sum /. float_of_int n in
  let expected = 1e9 /. rate in
  (* Off-windows stretch some gaps, the 4x burst rate shrinks the rest; the
     long-run average must still meet the offered rate. The off-window sum
     is noisier than plain exponential gaps, hence the looser 15%. *)
  Alcotest.(check bool) "long-run rate preserved" true
    (abs_float (mean -. expected) /. expected < 0.15)

let test_arrival_rejects_closed () =
  let rng = Cpool_util.Rng.create 1L in
  (match Mc_siege.Arrival.create Workload.Closed ~rate:100.0 ~rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Closed must be rejected");
  match Mc_siege.Arrival.create (Workload.Poisson 0.0) ~rate:0.0 ~rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive rate must be rejected"

(* --- the shared Workload spec parser ----------------------------------- *)

let workload = Alcotest.testable (Fmt.of_to_string Workload.to_string) Workload.equal

let test_workload_round_trip () =
  let cases =
    [
      Workload.default;
      Workload.sufficient;
      Workload.sparse;
      Workload.siege;
      {
        Workload.mix = 0.25;
        initial = 7;
        arrival = Workload.Bursty { rate = 1500.0; on_ms = 2.0; off_ms = 8.0 };
        duration_s = 0.75;
        arrangement = Workload.Unbalanced 3;
      };
    ]
  in
  List.iter
    (fun w ->
      match Workload.of_string (Workload.to_string w) with
      | Ok w' -> Alcotest.check workload (Workload.to_string w) w w'
      | Error e -> Alcotest.failf "%s did not re-parse: %s" (Workload.to_string w) e)
    cases

let test_workload_presets_and_overrides () =
  (match Workload.of_string "sparse" with
  | Ok w -> Alcotest.check workload "sparse preset" Workload.sparse w
  | Error e -> Alcotest.fail e);
  (match Workload.of_string "siege,arrival=poisson:500,duration=0.05" with
  | Ok w ->
    Alcotest.check workload "preset with overrides"
      { Workload.siege with arrival = Workload.Poisson 500.0; duration_s = 0.05 }
      w
  | Error e -> Alcotest.fail e);
  match Workload.of_string "MIX=0.6,Initial=4" with
  | Ok w ->
    Alcotest.check workload "case-insensitive keys"
      { Workload.default with mix = 0.6; initial = 4 }
      w
  | Error e -> Alcotest.fail e

let test_workload_bad_specs () =
  let expect_error spec =
    match Workload.of_string spec with
    | Ok w ->
      Alcotest.failf "%S parsed to %s but must be rejected" spec (Workload.to_string w)
    | Error msg ->
      (* Every parse error teaches the valid forms (the CLI shows it on
         exit 2). *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S error lists valid forms" spec)
        true
        (contains msg "mix=" && contains msg "arrival=")
  in
  List.iter expect_error
    [
      "";
      "bogus";
      "mix=1.5";
      "mix=nope";
      "initial=-1";
      "arrival=poisson:0";
      "arrival=bursty:100:0:5";
      "duration=-2";
      "arrangement=balanced:0";
      "sufficient,unknown=3";
    ]

(* --- end-to-end: a tiny siege on 2 domains ----------------------------- *)

let tiny_config =
  {
    Mc_siege.default with
    pool = { Mc_pool.Config.default with segments = 2 };
    workload =
      {
        Workload.siege with
        arrival = Workload.Poisson 500.0;
        duration_s = 0.05;
        arrangement = Workload.Balanced 1;
      };
    max_rate = 1000.0;
    bisect_steps = 0;
  }

let test_siege_smoke () =
  let outcome = Mc_siege.run tiny_config in
  Alcotest.(check bool) "swept at least one point" true (outcome.Mc_siege.points <> []);
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      a.Mc_siege.offered < b.Mc_siege.offered && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "curve ascends" true (ascending outcome.Mc_siege.points);
  List.iter
    (fun (p : Mc_siege.point) ->
      Alcotest.(check bool) "generated arrivals" true (p.generated > 0);
      Alcotest.(check bool) "recorded sojourns" true (p.completed > 0);
      if not (Float.is_nan p.p50_us) then
        Alcotest.(check bool) "p50 <= p99" true (p.p50_us <= p.p99_us))
    outcome.Mc_siege.points;
  Alcotest.(check bool) "renders" true (String.length (Mc_siege.render [ outcome ]) > 0);
  (* The artifact round-trips through the strict validator. *)
  let doc = Mc_siege.to_json [ outcome ] in
  match Cpool_util.Json.parse (Cpool_util.Json.to_string doc) with
  | Error e -> Alcotest.fail ("emitted JSON does not re-parse: " ^ e)
  | Ok doc' -> (
    (match Mc_siege.validate_json doc' with
    | Ok 1 -> ()
    | Ok n -> Alcotest.failf "expected 1 cell, validator saw %d" n
    | Error e -> Alcotest.fail ("validator rejected the artifact: " ^ e));
    (* And the cell reconstructs into the config that produced it. *)
    let cells =
      Option.get (Cpool_util.Json.to_list (Option.get (Cpool_util.Json.member "cells" doc')))
    in
    match Mc_siege.config_of_cell_json (List.hd cells) with
    | Error e -> Alcotest.fail ("cell does not reconstruct: " ^ e)
    | Ok cfg ->
      Alcotest.(check int) "domains survive" 2 cfg.Mc_siege.pool.Mc_pool.Config.segments;
      Alcotest.check workload "workload survives" tiny_config.Mc_siege.workload
        cfg.Mc_siege.workload)

let test_siege_rejects_closed_loop () =
  match
    Mc_siege.run { tiny_config with workload = Workload.sufficient }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a closed-loop workload must be rejected"

let test_broken_predicate () =
  let base =
    {
      Mc_siege.offered = 100.0;
      duration = 1.0;
      generated = 1000;
      completed = 1000;
      rejected = 0;
      backlog = 0;
      lagged = 0;
      throughput = 1000.0;
      p50_us = 50.0;
      p90_us = 80.0;
      p99_us = 100.0;
      p999_us = 200.0;
      broken = false;
    }
  in
  let cfg = tiny_config in
  Alcotest.(check bool) "healthy point holds" false (Mc_siege.is_broken cfg base);
  Alcotest.(check bool) "p99 over bound breaks" true
    (Mc_siege.is_broken cfg { base with p99_us = cfg.Mc_siege.p99_bound_us *. 2.0 });
  Alcotest.(check bool) "growing backlog breaks" true
    (Mc_siege.is_broken cfg { base with backlog = 300 });
  Alcotest.(check bool) "mass rejection breaks" true
    (Mc_siege.is_broken cfg { base with rejected = 100 });
  Alcotest.(check bool) "lagging generator breaks" true
    (Mc_siege.is_broken cfg { base with lagged = 200 });
  Alcotest.(check bool) "nothing completing breaks" true
    (Mc_siege.is_broken cfg { base with completed = 0; throughput = 0.0 })

let test_validate_rejects_junk () =
  let expect_error doc =
    match Mc_siege.validate_json doc with
    | Ok _ -> Alcotest.fail "junk accepted"
    | Error _ -> ()
  in
  expect_error (Cpool_util.Json.Assoc []);
  expect_error
    (Cpool_util.Json.Assoc [ ("benchmark", Cpool_util.Json.Str "mc-siege") ]);
  expect_error
    (Cpool_util.Json.Assoc
       [
         ("benchmark", Cpool_util.Json.Str "mc-siege");
         ("max_throughput_drop_pct", Cpool_util.Json.Float 75.0);
         ("max_p99_inflation_pct", Cpool_util.Json.Float 900.0);
         ("cells", Cpool_util.Json.List [ Cpool_util.Json.Assoc [] ]);
       ])

let test_diff_self_is_clean () =
  let outcome = Mc_siege.run tiny_config in
  let doc = Mc_siege.to_json [ outcome ] in
  match Mc_siege.diff ~baseline:doc ~fresh:doc with
  | Ok [] -> ()
  | Ok regressions ->
    Alcotest.failf "self-diff regressed: %s" (String.concat "; " regressions)
  | Error e -> Alcotest.fail e

let test_diff_flags_collapse () =
  let outcome = Mc_siege.run tiny_config in
  let doc = Mc_siege.to_json [ outcome ] in
  (* A fresh run that lost the cell entirely must regress. *)
  let empty = Mc_siege.to_json [] in
  match Mc_siege.diff ~baseline:doc ~fresh:empty with
  | Ok (_ :: _) -> ()
  | Ok [] -> Alcotest.fail "missing cell not flagged"
  | Error e -> Alcotest.fail e

let suites =
  [
    ( "mc_siege",
      [
        Alcotest.test_case "histogram: uniform percentiles" `Quick test_histogram_uniform;
        Alcotest.test_case "histogram: exponential percentiles" `Quick
          test_histogram_exponential;
        Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
        Alcotest.test_case "histogram: empty + clamping" `Quick
          test_histogram_empty_and_bounds;
        Alcotest.test_case "poisson gaps: mean and variance" `Quick
          test_poisson_mean_variance;
        Alcotest.test_case "bursty gaps: long-run rate" `Quick test_bursty_long_run_rate;
        Alcotest.test_case "arrival rejects closed/zero" `Quick test_arrival_rejects_closed;
        Alcotest.test_case "workload spec round-trip" `Quick test_workload_round_trip;
        Alcotest.test_case "workload presets + overrides" `Quick
          test_workload_presets_and_overrides;
        Alcotest.test_case "workload bad specs list valid forms" `Quick
          test_workload_bad_specs;
        Alcotest.test_case "siege smoke (2 domains)" `Quick test_siege_smoke;
        Alcotest.test_case "siege rejects closed loop" `Quick test_siege_rejects_closed_loop;
        Alcotest.test_case "breaking-point predicate" `Quick test_broken_predicate;
        Alcotest.test_case "validate rejects junk" `Quick test_validate_rejects_junk;
        Alcotest.test_case "siege-diff: self is clean" `Quick test_diff_self_is_clean;
        Alcotest.test_case "siege-diff: missing cell flagged" `Quick
          test_diff_flags_collapse;
      ] );
  ]
