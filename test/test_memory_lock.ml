(* Tests for simulated shared memory cells and FIFO locks. *)

open Cpool_sim

let in_sim ?(nodes = 4) ?(seed = 1L) ?cost body =
  let e = Engine.create ?cost ~nodes ~seed () in
  let _ = Engine.spawn e ~node:0 ~name:"main" (fun () -> body e) in
  match Engine.run e with
  | Engine.Completed -> ()
  | Engine.Deadlocked names -> Alcotest.failf "deadlock: %s" (String.concat "," names)
  | Engine.Hit_limit -> Alcotest.fail "hit limit"

let test_read_write () =
  in_sim (fun _ ->
      let c = Memory.make ~home:0 10 in
      Alcotest.(check int) "initial" 10 (Memory.read c);
      Memory.write c 20;
      Alcotest.(check int) "written" 20 (Memory.read c);
      Alcotest.(check int) "accesses" 3 (Memory.accesses c))

let test_read_charges_time () =
  in_sim (fun _ ->
      let local = Memory.make ~home:0 () and remote = Memory.make ~home:2 () in
      let t0 = Engine.clock () in
      Memory.read local;
      let t1 = Engine.clock () in
      Memory.read remote;
      let t2 = Engine.clock () in
      Alcotest.(check (float 1e-9)) "local cost" 2.0 (t1 -. t0);
      Alcotest.(check (float 1e-9)) "remote cost" 8.0 (t2 -. t1))

let test_fetch_add () =
  in_sim (fun _ ->
      let c = Memory.make ~home:1 5 in
      Alcotest.(check int) "returns old" 5 (Memory.fetch_add c 3);
      Alcotest.(check int) "applied" 8 (Memory.peek c);
      Alcotest.(check int) "negative delta" 8 (Memory.fetch_add c (-10));
      Alcotest.(check int) "applied again" (-2) (Memory.peek c))

let test_update () =
  in_sim (fun _ ->
      let c = Memory.make ~home:0 "x" in
      let old = Memory.update c (fun s -> s ^ "y") in
      Alcotest.(check string) "old" "x" old;
      Alcotest.(check string) "new" "xy" (Memory.peek c))

let test_compare_and_set () =
  in_sim (fun _ ->
      let c = Memory.make ~home:0 1 in
      Alcotest.(check bool) "succeeds" true (Memory.compare_and_set c ~expected:1 ~desired:2);
      Alcotest.(check bool) "fails" false (Memory.compare_and_set c ~expected:1 ~desired:3);
      Alcotest.(check int) "value" 2 (Memory.peek c))

let test_peek_poke_free () =
  in_sim (fun _ ->
      let c = Memory.make ~home:3 0 in
      let t0 = Engine.clock () in
      Memory.poke c 9;
      Alcotest.(check int) "poked" 9 (Memory.peek c);
      Alcotest.(check (float 0.0)) "no time" t0 (Engine.clock ());
      Alcotest.(check int) "no accesses" 0 (Memory.accesses c))

let test_fetch_add_contention_atomic () =
  (* 8 processes each add 100 to a shared counter; every increment must
     survive despite the interleaving that charging introduces. *)
  let e = Engine.create ~nodes:4 ~seed:5L () in
  let c = Memory.make ~home:0 0 in
  for i = 0 to 7 do
    ignore
      (Engine.spawn e ~node:(i mod 4) ~name:(string_of_int i) (fun () ->
           for _ = 1 to 100 do
             ignore (Memory.fetch_add c 1)
           done))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check int) "all increments applied" 800 (Memory.peek c)

let test_plain_rmw_races () =
  (* The same workload with separate read and write does lose updates —
     demonstrating that the interleaving model is honest. *)
  let e = Engine.create ~nodes:4 ~seed:5L () in
  let c = Memory.make ~home:0 0 in
  for i = 0 to 7 do
    ignore
      (Engine.spawn e ~node:(i mod 4) ~name:(string_of_int i) (fun () ->
           for _ = 1 to 100 do
             let v = Memory.read c in
             Memory.write c (v + 1)
           done))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check bool) "updates lost" true (Memory.peek c < 800)

let test_lock_mutual_exclusion () =
  let e = Engine.create ~nodes:4 ~seed:9L () in
  let lock = Lock.make ~home:0 in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for i = 0 to 7 do
    ignore
      (Engine.spawn e ~node:(i mod 4) ~name:(string_of_int i) (fun () ->
           for _ = 1 to 20 do
             Lock.with_lock lock (fun () ->
                 incr inside;
                 max_inside := max !max_inside !inside;
                 Engine.delay 1.0;
                 decr inside)
           done))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "all acquisitions" 160 (Lock.acquisitions lock);
  Alcotest.(check bool) "contention occurred" true (Lock.contended_acquisitions lock > 0)

let test_lock_fifo_grant () =
  let e = Engine.create ~nodes:4 ~seed:9L () in
  let lock = Lock.make ~home:0 in
  let order = ref [] in
  let _ =
    Engine.spawn e ~node:0 ~name:"holder" (fun () ->
        Lock.acquire lock;
        Engine.delay 100.0;
        Lock.release lock)
  in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e ~node:(i mod 4) ~name:(string_of_int i) (fun () ->
           (* Stagger arrival so the FIFO order is i = 1, 2, 3. *)
           Engine.delay (float_of_int i);
           Lock.acquire lock;
           order := Engine.self_name () :: !order;
           Lock.release lock))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (list string)) "FIFO grant order" [ "1"; "2"; "3" ] (List.rev !order)

let test_lock_reentry_rejected () =
  in_sim (fun _ ->
      let lock = Lock.make ~home:0 in
      Lock.acquire lock;
      Alcotest.check_raises "reentry" (Invalid_argument "Lock.acquire: lock already held")
        (fun () -> Lock.acquire lock);
      Lock.release lock)

let test_release_without_hold_rejected () =
  in_sim (fun _ ->
      let lock = Lock.make ~home:0 in
      Alcotest.check_raises "release free"
        (Invalid_argument "Lock.release: lock not held by caller") (fun () ->
          Lock.release lock))

let test_with_lock_releases_on_exception () =
  in_sim (fun _ ->
      let lock = Lock.make ~home:0 in
      (try Lock.with_lock lock (fun () -> failwith "inner") with Failure _ -> ());
      Alcotest.(check bool) "released" true (Lock.holder lock = None);
      (* Still usable. *)
      Lock.with_lock lock (fun () -> ()))

let test_lock_holder_instrumentation () =
  in_sim (fun _ ->
      let lock = Lock.make ~home:0 in
      Alcotest.(check bool) "free" true (Lock.holder lock = None);
      Lock.acquire lock;
      Alcotest.(check bool) "held by self" true (Lock.holder lock = Some (Engine.self_pid ()));
      Lock.release lock;
      Alcotest.(check bool) "free again" true (Lock.holder lock = None))

let test_lock_serialises_time () =
  (* Two processes each hold the lock for 10 us starting at the same instant:
     the second must finish at >= 20 us. *)
  let cost =
    { Topology.local_cost = 0.0; remote_ratio = 1.0; remote_extra = 0.0; compute_per_op = 0.0; topo = None }
  in
  let e = Engine.create ~cost ~nodes:2 ~seed:2L () in
  let lock = Lock.make ~home:0 in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    ignore
      (Engine.spawn e ~node:i ~name:(string_of_int i) (fun () ->
           Lock.with_lock lock (fun () -> Engine.delay 10.0);
           finish.(i) <- Engine.clock ()))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "first" 10.0 (min finish.(0) finish.(1));
  Alcotest.(check (float 1e-9)) "second serialised" 20.0 (max finish.(0) finish.(1))

let suites =
  [
    ( "memory",
      [
        Alcotest.test_case "read/write" `Quick test_read_write;
        Alcotest.test_case "access costs time" `Quick test_read_charges_time;
        Alcotest.test_case "fetch_add" `Quick test_fetch_add;
        Alcotest.test_case "update" `Quick test_update;
        Alcotest.test_case "compare_and_set" `Quick test_compare_and_set;
        Alcotest.test_case "peek/poke are free" `Quick test_peek_poke_free;
        Alcotest.test_case "fetch_add atomic under contention" `Quick
          test_fetch_add_contention_atomic;
        Alcotest.test_case "plain read-modify-write races" `Quick test_plain_rmw_races;
      ] );
    ( "lock",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
        Alcotest.test_case "FIFO grant order" `Quick test_lock_fifo_grant;
        Alcotest.test_case "reentry rejected" `Quick test_lock_reentry_rejected;
        Alcotest.test_case "release without hold" `Quick test_release_without_hold_rejected;
        Alcotest.test_case "with_lock releases on exception" `Quick
          test_with_lock_releases_on_exception;
        Alcotest.test_case "holder instrumentation" `Quick test_lock_holder_instrumentation;
        Alcotest.test_case "lock serialises virtual time" `Quick test_lock_serialises_time;
      ] );
  ]
