let () =
  Alcotest.run "concurrent_pools"
    (List.concat
       [
         Test_util.suites;
         Test_pqueue.suites;
         Test_rng.suites;
         Test_engine.suites;
         Test_memory_lock.suites;
         Test_segment.suites;
         Test_termination.suites;
         Test_search.suites;
         Test_pool.suites;
         Test_metrics.suites;
         Test_workload.suites;
         Test_game.suites;
         Test_topology.suites;
         Test_mcpool.suites;
         Test_trace.suites;
         Test_bounded.suites;
         Test_hinted.suites;
         Test_classed.suites;
         Test_coverage.suites;
         Test_validation.suites;
         Test_backtrack.suites;
         Test_experiments.suites;
         Test_lint.suites;
       ])
