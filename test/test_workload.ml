(* Tests for roles, arrangements and the experiment driver. *)

open Cpool
open Cpool_metrics
open Cpool_workload

(* --- Roles --- *)

let test_uniform_mix () =
  let roles = Role.uniform_mix ~participants:4 ~add_percent:30 in
  Alcotest.(check int) "length" 4 (Array.length roles);
  Array.iter
    (fun r -> if r <> Role.Mixed 30 then Alcotest.fail "expected Mixed 30")
    roles

let test_uniform_mix_invalid () =
  Alcotest.check_raises "percent" (Invalid_argument "Role: add_percent out of [0, 100]")
    (fun () -> ignore (Role.uniform_mix ~participants:4 ~add_percent:101));
  Alcotest.check_raises "participants" (Invalid_argument "Role: participants must be positive")
    (fun () -> ignore (Role.uniform_mix ~participants:0 ~add_percent:50))

let test_contiguous () =
  let roles = Role.contiguous_producers ~participants:16 ~producers:5 in
  Alcotest.(check (list int)) "first five" [ 0; 1; 2; 3; 4 ] (Role.producer_positions roles)

let test_balanced () =
  let roles = Role.balanced_producers ~participants:16 ~producers:5 in
  let positions = Role.producer_positions roles in
  Alcotest.(check int) "five producers" 5 (List.length positions);
  (* Spread: no two producers adjacent when 5 of 16. *)
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "spaced" true (b - a >= 2);
      pairwise rest
    | _ -> ()
  in
  pairwise positions;
  Alcotest.(check (list int)) "positions" [ 0; 3; 6; 9; 12 ] positions

let test_balanced_extremes () =
  Alcotest.(check (list int)) "zero producers" []
    (Role.producer_positions (Role.balanced_producers ~participants:8 ~producers:0));
  Alcotest.(check int) "all producers" 8
    (List.length (Role.producer_positions (Role.balanced_producers ~participants:8 ~producers:8)))

let prop_balanced_distinct_positions =
  QCheck.Test.make ~name:"balanced arrangement places each producer once" ~count:200
    QCheck.(pair (int_range 1 64) (int_range 0 64))
    (fun (participants, producers_raw) ->
      let producers = min producers_raw participants in
      let roles = Role.balanced_producers ~participants ~producers in
      List.length (Role.producer_positions roles) = producers)

let test_effective_mix () =
  Alcotest.(check int) "5 of 16 producers" 31
    (Role.effective_add_percent (Role.contiguous_producers ~participants:16 ~producers:5));
  Alcotest.(check int) "uniform 40" 40
    (Role.effective_add_percent (Role.uniform_mix ~participants:16 ~add_percent:40));
  Alcotest.(check int) "all producers" 100
    (Role.effective_add_percent (Role.contiguous_producers ~participants:4 ~producers:4))

(* --- Driver --- *)

let quick_spec ?(segments = 8) ?(kind = Pool.Linear) ?(roles = None) ?(total_ops = 400)
    ?(initial_elements = 40) ?(seed = 42L) ?(record_trace = false) () =
  let roles =
    match roles with
    | Some r -> r
    | None -> Role.uniform_mix ~participants:segments ~add_percent:50
  in
  {
    Driver.default_spec with
    pool = { Pool.default_config with segments; kind };
    roles;
    total_ops;
    initial_elements;
    seed;
    record_trace;
  }

let test_driver_runs_quota () =
  let r = Driver.run (quick_spec ()) in
  Alcotest.(check int) "all ops performed" 400 r.Driver.ops_performed;
  let t = r.Driver.pool_totals in
  Alcotest.(check int) "ops partition" 400
    (t.Pool.adds + t.Pool.removes + r.Driver.aborts)

let test_driver_conservation () =
  let r = Driver.run (quick_spec ~seed:7L ()) in
  let t = r.Driver.pool_totals in
  let final_total = Array.fold_left ( + ) 0 r.Driver.final_sizes in
  Alcotest.(check int) "elements conserved" (40 + t.Pool.adds - t.Pool.removes) final_total

let test_driver_sufficient_mix_no_steals () =
  (* 70% adds: segments keep growing, steals should be (almost) absent; the
     paper: "no steals are performed with a sufficient mix". *)
  let roles = Role.uniform_mix ~participants:8 ~add_percent:70 in
  let r = Driver.run (quick_spec ~roles:(Some roles) ()) in
  Alcotest.(check int) "no steals" 0 r.Driver.pool_totals.Pool.steals;
  Alcotest.(check int) "no aborts" 0 r.Driver.aborts

let test_driver_sparse_mix_steals () =
  let roles = Role.uniform_mix ~participants:8 ~add_percent:20 in
  let r = Driver.run (quick_spec ~roles:(Some roles) ~initial_elements:16 ()) in
  Alcotest.(check bool) "steals happen" true (r.Driver.pool_totals.Pool.steals > 0)

let test_driver_producer_consumer () =
  let roles = Role.contiguous_producers ~participants:8 ~producers:4 in
  let r = Driver.run (quick_spec ~roles:(Some roles) ()) in
  let t = r.Driver.pool_totals in
  Alcotest.(check bool) "consumers always steal or drain prefill" true (t.Pool.steals > 0);
  Alcotest.(check bool) "producers added" true (t.Pool.adds > 0)

let test_driver_all_consumers_abort () =
  let roles = Role.contiguous_producers ~participants:8 ~producers:0 in
  let r = Driver.run (quick_spec ~roles:(Some roles) ~total_ops:200 ~initial_elements:24 ()) in
  let t = r.Driver.pool_totals in
  Alcotest.(check int) "removed exactly the prefill" 24 t.Pool.removes;
  Alcotest.(check int) "rest aborted" (200 - 24) r.Driver.aborts;
  Alcotest.(check int) "pool empty" 0 (Array.fold_left ( + ) 0 r.Driver.final_sizes)

let test_driver_all_producers () =
  let roles = Role.contiguous_producers ~participants:8 ~producers:8 in
  let r = Driver.run (quick_spec ~roles:(Some roles) ~total_ops:200 ()) in
  Alcotest.(check int) "all adds" 200 r.Driver.pool_totals.Pool.adds;
  Alcotest.(check int) "no removes" 0 r.Driver.pool_totals.Pool.removes

let test_driver_trace () =
  let r = Driver.run (quick_spec ~record_trace:true ()) in
  match r.Driver.trace with
  | Some trace ->
    Alcotest.(check bool) "events recorded" true (Trace.event_count trace > 0);
    Alcotest.(check bool) "duration sane" true (Trace.duration trace <= r.Driver.duration)
  | None -> Alcotest.fail "expected a trace"

let test_driver_no_trace_by_default () =
  let r = Driver.run (quick_spec ()) in
  Alcotest.(check bool) "no trace" true (r.Driver.trace = None)

let test_driver_deterministic () =
  let run () =
    let r = Driver.run (quick_spec ~kind:Pool.Tree ~seed:5L ()) in
    (r.Driver.duration, r.Driver.pool_totals, Sample.mean r.Driver.op_time)
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let test_driver_seeds_differ () =
  let dur seed = (Driver.run (quick_spec ~seed ())).Driver.duration in
  Alcotest.(check bool) "different seeds, different runs" true (dur 1L <> dur 2L)

let test_driver_role_length_checked () =
  let spec = quick_spec () in
  let bad = { spec with roles = Role.uniform_mix ~participants:3 ~add_percent:50 } in
  Alcotest.check_raises "mismatch" (Invalid_argument "Driver.run: one role per participant required")
    (fun () -> ignore (Driver.run bad))

let test_uncontended_calibration () =
  (* A single participant alternating add/remove, everything local: the
     uncontended operation times should sit near the paper's reported
     ~70 us adds and ~110 us removes (Section 4.3). *)
  let spec =
    {
      (quick_spec ~segments:1 ~total_ops:100 ~initial_elements:10
         ~roles:(Some (Role.uniform_mix ~participants:1 ~add_percent:50))
         ())
      with
      pool = { Pool.default_config with segments = 1 };
    }
  in
  let r = Driver.run spec in
  let add = Sample.mean r.Driver.add_time and remove = Sample.mean r.Driver.remove_time in
  Alcotest.(check bool) (Printf.sprintf "add ~70us (got %.1f)" add) true
    (add > 60.0 && add < 80.0);
  Alcotest.(check bool) (Printf.sprintf "remove ~110us (got %.1f)" remove) true
    (remove > 100.0 && remove < 120.0)

let test_steal_fraction () =
  let roles = Role.contiguous_producers ~participants:8 ~producers:4 in
  let r = Driver.run (quick_spec ~roles:(Some roles) ~initial_elements:0 ()) in
  (* With no prefill, every element a consumer removes was stolen at least
     once (directly or banked from an earlier steal's batch). *)
  let t = r.Driver.pool_totals in
  Alcotest.(check bool) "every consumed element was stolen" true
    (t.Pool.elements_stolen >= t.Pool.removes);
  let f = Driver.steal_fraction r in
  Alcotest.(check bool) "fraction in (0, 1]" true (f > 0.0 && f <= 1.0)

let test_run_trials_and_mean_of () =
  let results = Driver.run_trials ~trials:3 (quick_spec ()) in
  Alcotest.(check int) "three trials" 3 (List.length results);
  let m = Driver.mean_of (fun r -> r.Driver.op_time) results in
  Alcotest.(check bool) "mean finite" true (Float.is_finite m);
  (* Trials use distinct seeds. *)
  let durations = List.map (fun r -> r.Driver.duration) results in
  Alcotest.(check bool) "trials differ" true (List.sort_uniq compare durations = List.sort compare durations)

(* --- phased runs --- *)

let test_phases_basic () =
  let spec = quick_spec ~segments:4 ~total_ops:0 () in
  let results =
    Driver.run_phases spec
      [
        (100, Role.contiguous_producers ~participants:4 ~producers:4);
        (100, Role.uniform_mix ~participants:4 ~add_percent:50);
        (100, Role.contiguous_producers ~participants:4 ~producers:0);
      ]
  in
  (match results with
  | [ fill; stable; drain ] ->
    Alcotest.(check int) "fill: all adds" 100 fill.Driver.pool_totals.Pool.adds;
    Alcotest.(check int) "fill: no removes" 0 fill.Driver.pool_totals.Pool.removes;
    Alcotest.(check int) "fill ops" 100 fill.Driver.ops_performed;
    Alcotest.(check bool) "stable: both kinds" true
      (stable.Driver.pool_totals.Pool.adds > 0 && stable.Driver.pool_totals.Pool.removes > 0);
    Alcotest.(check int) "drain: no adds" 0 drain.Driver.pool_totals.Pool.adds;
    (* Conservation across the whole run: prefill + all adds - all removes
       equals the final phase's leftover pool. *)
    let adds r = r.Driver.pool_totals.Pool.adds and removes r = r.Driver.pool_totals.Pool.removes in
    let total_final = Array.fold_left ( + ) 0 drain.Driver.final_sizes in
    Alcotest.(check int) "conservation across phases"
      (40 + adds fill + adds stable + adds drain - removes fill - removes stable
     - removes drain)
      total_final
  | _ -> Alcotest.fail "expected three phase results")

let test_phases_empty_rejected () =
  let spec = quick_spec () in
  Alcotest.check_raises "no phases" (Invalid_argument "Driver.run_phases: no phases") (fun () ->
      ignore (Driver.run_phases spec []))

let test_phases_role_length_checked () =
  let spec = quick_spec ~segments:4 () in
  Alcotest.check_raises "phase 1 roles"
    (Invalid_argument "Driver: phase 1 needs one role per participant") (fun () ->
      ignore
        (Driver.run_phases spec
           [
             (10, Role.uniform_mix ~participants:4 ~add_percent:50);
             (10, Role.uniform_mix ~participants:3 ~add_percent:50);
           ]))

let test_phases_deterministic () =
  let run () =
    let spec = quick_spec ~segments:4 ~seed:9L () in
    Driver.run_phases spec
      [
        (150, Role.uniform_mix ~participants:4 ~add_percent:70);
        (150, Role.uniform_mix ~participants:4 ~add_percent:30);
      ]
    |> List.map (fun r -> (r.Driver.ops_performed, r.Driver.pool_totals))
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let test_phases_single_equals_run_shape () =
  (* One phase through run_phases matches the plain run on the measured
     sample counts (totals bookkeeping differs only in pool-level counters). *)
  let spec = quick_spec ~segments:4 ~seed:21L () in
  let phased =
    List.hd
      (Driver.run_phases spec [ (400, Role.uniform_mix ~participants:4 ~add_percent:50) ])
  in
  let plain =
    Driver.run { spec with roles = Role.uniform_mix ~participants:4 ~add_percent:50 }
  in
  Alcotest.(check int) "same op count" plain.Driver.ops_performed phased.Driver.ops_performed;
  Alcotest.(check int) "same adds"
    plain.Driver.pool_totals.Pool.adds
    phased.Driver.pool_totals.Pool.adds

let per_kind name f =
  List.map
    (fun kind ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name (Pool.kind_to_string kind)) `Quick
        (fun () -> f kind))
    Pool.all_kinds

let test_driver_kind_smoke kind =
  let roles = Role.balanced_producers ~participants:8 ~producers:3 in
  let r = Driver.run (quick_spec ~kind ~roles:(Some roles) ()) in
  Alcotest.(check bool) "ops done" true (r.Driver.ops_performed = 400);
  Alcotest.(check bool) "steal stats consistent" true
    (Sample.n r.Driver.segments_per_steal = r.Driver.pool_totals.Pool.steals)

let suites =
  [
    ( "workload.role",
      [
        Alcotest.test_case "uniform mix" `Quick test_uniform_mix;
        Alcotest.test_case "uniform mix invalid" `Quick test_uniform_mix_invalid;
        Alcotest.test_case "contiguous producers" `Quick test_contiguous;
        Alcotest.test_case "balanced producers" `Quick test_balanced;
        Alcotest.test_case "balanced extremes" `Quick test_balanced_extremes;
        Alcotest.test_case "effective mix" `Quick test_effective_mix;
        QCheck_alcotest.to_alcotest prop_balanced_distinct_positions;
      ] );
    ( "workload.driver",
      [
        Alcotest.test_case "quota honoured" `Quick test_driver_runs_quota;
        Alcotest.test_case "conservation" `Quick test_driver_conservation;
        Alcotest.test_case "sufficient mix: no steals" `Quick test_driver_sufficient_mix_no_steals;
        Alcotest.test_case "sparse mix: steals" `Quick test_driver_sparse_mix_steals;
        Alcotest.test_case "producer/consumer" `Quick test_driver_producer_consumer;
        Alcotest.test_case "all consumers abort" `Quick test_driver_all_consumers_abort;
        Alcotest.test_case "all producers" `Quick test_driver_all_producers;
        Alcotest.test_case "trace recording" `Quick test_driver_trace;
        Alcotest.test_case "no trace by default" `Quick test_driver_no_trace_by_default;
        Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_driver_seeds_differ;
        Alcotest.test_case "role length checked" `Quick test_driver_role_length_checked;
        Alcotest.test_case "uncontended calibration" `Quick test_uncontended_calibration;
        Alcotest.test_case "steal fraction" `Quick test_steal_fraction;
        Alcotest.test_case "trials and averaging" `Quick test_run_trials_and_mean_of;
        Alcotest.test_case "phases: basic" `Quick test_phases_basic;
        Alcotest.test_case "phases: empty rejected" `Quick test_phases_empty_rejected;
        Alcotest.test_case "phases: role length" `Quick test_phases_role_length_checked;
        Alcotest.test_case "phases: deterministic" `Quick test_phases_deterministic;
        Alcotest.test_case "phases: single phase matches run" `Quick
          test_phases_single_equals_run_shape;
      ]
      @ per_kind "kind smoke" test_driver_kind_smoke );
  ]
