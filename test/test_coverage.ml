(* Edge-case coverage across modules: cost-model validation, engine corner
   cases, driver abort timing, renderer degenerate inputs, mcpool steal
   variants. *)

open Cpool_sim

(* --- Topology --- *)

let test_validate_ok () =
  Alcotest.(check bool) "butterfly valid" true (Topology.validate Topology.butterfly = Ok ())

let test_validate_rejections () =
  let expect_error m = Alcotest.(check bool) "rejected" true (Topology.validate m <> Ok ()) in
  expect_error { Topology.butterfly with Topology.local_cost = -1.0 };
  expect_error { Topology.butterfly with Topology.local_cost = Float.nan };
  expect_error { Topology.butterfly with Topology.remote_ratio = 0.5 };
  expect_error { Topology.butterfly with Topology.remote_extra = -2.0 };
  expect_error { Topology.butterfly with Topology.compute_per_op = Float.nan }

let test_engine_rejects_bad_cost () =
  let cost = { Topology.butterfly with Topology.remote_ratio = 0.0 } in
  Alcotest.check_raises "invalid cost model"
    (Invalid_argument "Engine.create: remote_ratio must be >= 1.0") (fun () ->
      ignore (Engine.create ~cost ~nodes:2 ~seed:1L ()))

let test_with_remote_extra () =
  let m = Topology.with_remote_extra 50.0 Topology.butterfly in
  Alcotest.(check (float 0.0)) "extra set" 50.0 m.Topology.remote_extra;
  Alcotest.(check (float 0.0)) "local untouched" Topology.butterfly.Topology.local_cost
    m.Topology.local_cost;
  Alcotest.(check (float 1e-9)) "remote cost includes extra" 58.0
    (Topology.access_cost m ~from:0 ~home:1)

(* --- Engine corner cases --- *)

let test_engine_zero_nodes_rejected () =
  Alcotest.check_raises "nodes" (Invalid_argument "Engine.create: nodes must be positive")
    (fun () -> ignore (Engine.create ~nodes:0 ~seed:1L ()))

let test_zero_delay_still_fifo () =
  (* Zero-length delays preserve deterministic FIFO order between peers. *)
  let e = Engine.create ~nodes:1 ~seed:1L () in
  let log = ref [] in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~node:0 ~name:(string_of_int i) (fun () ->
           Engine.delay 0.0;
           log := i :: !log;
           Engine.delay 0.0;
           log := (10 + i) :: !log))
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "two rounds in spawn order" [ 0; 1; 2; 10; 11; 12 ]
    (List.rev !log)

let test_run_twice_idempotent () =
  let e = Engine.create ~nodes:1 ~seed:1L () in
  let _ = Engine.spawn e ~node:0 ~name:"p" (fun () -> Engine.delay 1.0) in
  Alcotest.(check bool) "first" true (Engine.run e = Engine.Completed);
  Alcotest.(check bool) "second run is a no-op" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 0.0)) "time unchanged" 1.0 (Engine.now e)

let test_nested_spawn_from_process () =
  let e = Engine.create ~nodes:2 ~seed:1L () in
  let child_ran = ref false in
  let _ =
    Engine.spawn e ~node:0 ~name:"parent" (fun () ->
        Engine.delay 5.0;
        ignore
          (Engine.spawn e ~node:1 ~name:"child" (fun () ->
               Alcotest.(check (float 0.0)) "child starts at spawn time" 5.0 (Engine.clock ());
               child_ran := true)))
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check bool) "child ran" true !child_ran

(* --- Driver: abort timing --- *)

let test_driver_abort_time_sampled () =
  let spec =
    {
      Cpool_workload.Driver.default_spec with
      pool = { Cpool.Pool.default_config with segments = 4 };
      roles = Cpool_workload.Role.contiguous_producers ~participants:4 ~producers:0;
      total_ops = 60;
      initial_elements = 8;
    }
  in
  let r = Cpool_workload.Driver.run spec in
  Alcotest.(check int) "aborts recorded" r.Cpool_workload.Driver.aborts
    (Cpool_metrics.Sample.n r.Cpool_workload.Driver.abort_time);
  Alcotest.(check bool) "abort times positive" true
    (Cpool_metrics.Sample.min_value r.Cpool_workload.Driver.abort_time > 0.0);
  (* op_time includes the aborted attempts. *)
  Alcotest.(check int) "op samples = quota" 60
    (Cpool_metrics.Sample.n r.Cpool_workload.Driver.op_time)

(* --- Render: degenerate inputs --- *)

let test_chart_single_point () =
  let s = Cpool_metrics.Render.chart [ ("dot", [ (1.0, 2.0) ]) ] in
  Alcotest.(check bool) "renders" true (String.contains s '*')

let test_chart_ignores_nan_points () =
  let s =
    Cpool_metrics.Render.chart
      [ ("mixed", [ (Float.nan, 1.0); (0.0, Float.nan); (1.0, 1.0) ]) ]
  in
  Alcotest.(check bool) "renders the finite point" true (String.contains s '*')

let test_chart_all_nan () =
  let s = Cpool_metrics.Render.chart [ ("void", [ (Float.nan, Float.nan) ]) ] in
  Alcotest.(check string) "graceful" "(chart: no data)\n" s

let test_strip_chart_zero_width_grid () =
  let s = Cpool_metrics.Render.strip_chart ~width:4 ~labels:[| "a" |] [| [||] |] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* --- Mc_pool steal variants --- *)

let test_mcpool_single_element_steal () =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with segments = 2 } in
  let h0 = Cpool_mc.Mc_pool.register_at pool 0 in
  let h1 = Cpool_mc.Mc_pool.register_at pool 1 in
  Cpool_mc.Mc_pool.add pool h1 42;
  Alcotest.(check (option int)) "steals the single element" (Some 42)
    (Cpool_mc.Mc_pool.try_remove pool h0);
  Alcotest.(check int) "empty" 0 (Cpool_mc.Mc_pool.size pool)

let test_mcpool_steal_banks_remainder () =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with segments = 2 } in
  let h0 = Cpool_mc.Mc_pool.register_at pool 0 in
  let h1 = Cpool_mc.Mc_pool.register_at pool 1 in
  for i = 1 to 9 do
    Cpool_mc.Mc_pool.add pool h1 i
  done;
  (* ceil(9/2) = 5 claimed from the victim's ring front — the OLDEST
     elements (1..5), leaving the victim's recent end untouched: element 1
     is returned, 2..5 banked locally in arrival order, so the thief's own
     FIFO pop sees 2 first. *)
  Alcotest.(check (option int)) "steal returns victim's oldest" (Some 1)
    (Cpool_mc.Mc_pool.try_remove pool h0);
  Alcotest.(check (option int)) "local after banking" (Some 2)
    (Cpool_mc.Mc_pool.try_remove_local pool h0);
  Alcotest.(check int) "conserved" 7 (Cpool_mc.Mc_pool.size pool)

(* --- Sim pool: deposit respects trace ordering --- *)

let test_pool_trace_monotone_times () =
  let events = ref [] in
  Sim_harness.in_proc (fun () ->
      let pool =
        Cpool.Pool.create
          ~on_size_change:(fun ~seg:_ ~size:_ ->
            events := Cpool_sim.Engine.clock () :: !events)
          { Cpool.Pool.default_config with segments = 2 }
      in
      Cpool.Pool.join pool;
      for i = 1 to 5 do
        Cpool.Pool.add pool ~me:0 i
      done;
      for _ = 1 to 5 do
        ignore (Cpool.Pool.remove pool ~me:0)
      done;
      Cpool.Pool.leave pool);
  let times = List.rev !events in
  Alcotest.(check bool) "non-decreasing timestamps" true
    (List.sort compare times = times)

let base_suites =
  [
    ( "coverage",
      [
        Alcotest.test_case "topology validate ok" `Quick test_validate_ok;
        Alcotest.test_case "topology validate rejects" `Quick test_validate_rejections;
        Alcotest.test_case "engine rejects bad cost" `Quick test_engine_rejects_bad_cost;
        Alcotest.test_case "with_remote_extra" `Quick test_with_remote_extra;
        Alcotest.test_case "engine zero nodes" `Quick test_engine_zero_nodes_rejected;
        Alcotest.test_case "zero delay FIFO" `Quick test_zero_delay_still_fifo;
        Alcotest.test_case "run twice" `Quick test_run_twice_idempotent;
        Alcotest.test_case "nested spawn" `Quick test_nested_spawn_from_process;
        Alcotest.test_case "driver abort times" `Quick test_driver_abort_time_sampled;
        Alcotest.test_case "chart single point" `Quick test_chart_single_point;
        Alcotest.test_case "chart ignores NaN" `Quick test_chart_ignores_nan_points;
        Alcotest.test_case "chart all NaN" `Quick test_chart_all_nan;
        Alcotest.test_case "strip chart empty row" `Quick test_strip_chart_zero_width_grid;
        Alcotest.test_case "mcpool single steal" `Quick test_mcpool_single_element_steal;
        Alcotest.test_case "mcpool banks remainder" `Quick test_mcpool_steal_banks_remainder;
        Alcotest.test_case "pool trace monotone" `Quick test_pool_trace_monotone_times;
      ] );
  ]

(* --- Engine logging --- *)

let test_engine_logging_captures_events () =
  (* Install a counting reporter, enable debug on the engine source, run a
     small simulation, and check events were reported without perturbing
     the simulation itself. *)
  let count = ref 0 in
  let reporter =
    {
      Logs.report =
        (fun _src _level ~over k msgf ->
          incr count;
          msgf (fun ?header:_ ?tags:_ fmt -> Format.ikfprintf (fun _ -> over (); k ()) Format.std_formatter fmt));
    }
  in
  let saved = Logs.reporter () in
  Logs.set_reporter reporter;
  Logs.Src.set_level Engine.log_src (Some Logs.Debug);
  let run () =
    let e = Engine.create ~nodes:2 ~seed:4L () in
    let slot = ref None in
    let _ = Engine.spawn e ~node:0 ~name:"sleeper" (fun () -> Engine.suspend (fun w -> slot := Some w)) in
    let _ =
      Engine.spawn e ~node:1 ~name:"waker" (fun () ->
          Engine.delay 3.0;
          Engine.wake (Option.get !slot))
    in
    ignore (Engine.run e);
    Engine.now e
  in
  let t_logged = run () in
  let events_logged = !count in
  Logs.Src.set_level Engine.log_src None;
  let t_silent = run () in
  Logs.set_reporter saved;
  Alcotest.(check bool) "events reported" true (events_logged >= 6);
  Alcotest.(check (float 0.0)) "logging does not perturb virtual time" t_silent t_logged

let suites =
  base_suites
  @ [
      ( "coverage.logging",
        [ Alcotest.test_case "engine logging" `Quick test_engine_logging_captures_events ] );
    ]
