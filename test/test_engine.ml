(* Tests for the discrete-event engine: scheduling, virtual time, locks,
   memory costing, determinism. *)

open Cpool_sim

let mk ?(nodes = 4) ?(seed = 1L) ?cost () = Engine.create ?cost ~nodes ~seed ()

let test_empty_run () =
  let e = mk () in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 0.0)) "time stays 0" 0.0 (Engine.now e)

let test_single_process_delay () =
  let e = mk () in
  let finished_at = ref 0.0 in
  let _ =
    Engine.spawn e ~node:0 ~name:"p" (fun () ->
        Engine.delay 5.0;
        Engine.delay 2.5;
        finished_at := Engine.clock ())
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "virtual time advanced" 7.5 !finished_at;
  Alcotest.(check (float 1e-9)) "engine time" 7.5 (Engine.now e)

let test_negative_delay_clamped () =
  let e = mk () in
  let _ =
    Engine.spawn e ~node:0 ~name:"p" (fun () ->
        Engine.delay (-3.0);
        Alcotest.(check (float 0.0)) "no time travel" 0.0 (Engine.clock ()))
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed)

let test_interleaving_order () =
  let e = mk () in
  let log = ref [] in
  let note tag = log := tag :: !log in
  let _ =
    Engine.spawn e ~node:0 ~name:"a" (fun () ->
        note "a0";
        Engine.delay 10.0;
        note "a10")
  in
  let _ =
    Engine.spawn e ~node:1 ~name:"b" (fun () ->
        note "b0";
        Engine.delay 5.0;
        note "b5")
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (list string)) "virtual-time order" [ "a0"; "b0"; "b5"; "a10" ]
    (List.rev !log)

let test_fifo_at_same_time () =
  let e = mk () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore
      (Engine.spawn e ~node:0 ~name:(string_of_int i) (fun () ->
           Engine.delay 1.0;
           log := Engine.self_name () :: !log))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (list string)) "spawn order preserved at ties"
    [ "0"; "1"; "2"; "3"; "4" ] (List.rev !log)

let test_self_identities () =
  let e = mk ~nodes:3 () in
  let seen = ref [] in
  for n = 0 to 2 do
    ignore
      (Engine.spawn e ~node:n ~name:(Printf.sprintf "w%d" n) (fun () ->
           seen := (Engine.self_pid (), Engine.self_node (), Engine.self_name ()) :: !seen))
  done;
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  let seen = List.sort compare !seen in
  Alcotest.(check bool) "pids, nodes, names" true
    (seen = [ (0, 0, "w0"); (1, 1, "w1"); (2, 2, "w2") ])

let test_spawn_bad_node () =
  let e = mk ~nodes:2 () in
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Engine.spawn: node out of range") (fun () ->
      ignore (Engine.spawn e ~node:2 ~name:"x" (fun () -> ())))

let test_context_outside_process () =
  Alcotest.check_raises "clock outside" Engine.Not_in_process (fun () ->
      ignore (Engine.clock ()));
  Alcotest.check_raises "delay outside" Engine.Not_in_process (fun () ->
      Engine.delay 1.0)

let test_process_failure_propagates () =
  let e = mk () in
  let _ = Engine.spawn e ~node:0 ~name:"boom" (fun () -> failwith "crash") in
  match Engine.run e with
  | exception Engine.Process_failure (name, Failure msg) ->
    Alcotest.(check string) "process name" "boom" name;
    Alcotest.(check string) "message" "crash" msg
  | exception other -> Alcotest.failf "unexpected exception %s" (Printexc.to_string other)
  | _ -> Alcotest.fail "expected Process_failure"

let test_time_limit () =
  let e = mk () in
  let _ =
    Engine.spawn e ~node:0 ~name:"slow" (fun () ->
        Engine.delay 100.0;
        Alcotest.fail "should not run past limit")
  in
  Alcotest.(check bool) "hit limit" true (Engine.run ~limit:50.0 e = Engine.Hit_limit)

let test_resume_after_limit () =
  let e = mk () in
  let done_ = ref false in
  let _ =
    Engine.spawn e ~node:0 ~name:"slow" (fun () ->
        Engine.delay 100.0;
        done_ := true)
  in
  ignore (Engine.run ~limit:50.0 e);
  Alcotest.(check bool) "resumable" true (Engine.run e = Engine.Completed);
  Alcotest.(check bool) "eventually ran" true !done_

let test_deadlock_detection () =
  let e = mk () in
  let _ = Engine.spawn e ~node:0 ~name:"waiter" (fun () -> Engine.suspend (fun _ -> ())) in
  match Engine.run e with
  | Engine.Deadlocked [ "waiter" ] -> ()
  | _ -> Alcotest.fail "expected deadlock naming the waiter"

let test_suspend_wake () =
  let e = mk () in
  let slot = ref None in
  let resumed_at = ref (-1.0) in
  let _ =
    Engine.spawn e ~node:0 ~name:"sleeper" (fun () ->
        Engine.suspend (fun w -> slot := Some w);
        resumed_at := Engine.clock ())
  in
  let _ =
    Engine.spawn e ~node:1 ~name:"waker" (fun () ->
        Engine.delay 42.0;
        match !slot with
        | Some w -> Engine.wake w
        | None -> Alcotest.fail "sleeper did not register")
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "resumed at waker's time" 42.0 !resumed_at

let test_double_wake_rejected () =
  let e = mk () in
  let slot = ref None in
  let _ = Engine.spawn e ~node:0 ~name:"sleeper" (fun () -> Engine.suspend (fun w -> slot := Some w)) in
  let _ =
    Engine.spawn e ~node:1 ~name:"waker" (fun () ->
        Engine.delay 1.0;
        let w = Option.get !slot in
        Engine.wake w;
        Alcotest.check_raises "double wake"
          (Invalid_argument "Engine.wake: wakeup already fired") (fun () -> Engine.wake w))
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed)

let test_charge_costs () =
  let cost =
    { Topology.local_cost = 2.0; remote_ratio = 4.0; remote_extra = 0.0; compute_per_op = 0.0; topo = None }
  in
  let e = mk ~cost () in
  let local = ref 0.0 and remote = ref 0.0 in
  let _ =
    Engine.spawn e ~node:0 ~name:"p" (fun () ->
        let t0 = Engine.clock () in
        Engine.charge ~home:0;
        local := Engine.clock () -. t0;
        let t1 = Engine.clock () in
        Engine.charge ~home:3;
        remote := Engine.clock () -. t1)
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "local access" 2.0 !local;
  Alcotest.(check (float 1e-9)) "remote access 4x" 8.0 !remote

let test_charge_with_extra_delay () =
  let cost = Topology.with_remote_extra 100.0 Topology.butterfly in
  let e = mk ~cost () in
  let remote = ref 0.0 and local = ref 0.0 in
  let _ =
    Engine.spawn e ~node:0 ~name:"p" (fun () ->
        let t0 = Engine.clock () in
        Engine.charge ~home:1;
        remote := Engine.clock () -. t0;
        let t1 = Engine.clock () in
        Engine.charge ~home:0;
        local := Engine.clock () -. t1)
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "remote includes extra" 108.0 !remote;
  Alcotest.(check (float 1e-9)) "local unaffected" 2.0 !local

let test_charge_n () =
  let e = mk () in
  let elapsed = ref 0.0 in
  let _ =
    Engine.spawn e ~node:0 ~name:"p" (fun () ->
        let t0 = Engine.clock () in
        Engine.charge_n ~home:0 5;
        elapsed := Engine.clock () -. t0)
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "5 local accesses" 10.0 !elapsed

let test_random_reproducible () =
  let draw () =
    let e = mk ~seed:77L () in
    let out = ref [] in
    let _ =
      Engine.spawn e ~node:0 ~name:"p" (fun () ->
          for _ = 1 to 10 do
            out := Engine.random_int 1000 :: !out
          done)
    in
    ignore (Engine.run e);
    !out
  in
  Alcotest.(check (list int)) "same seed, same draws" (draw ()) (draw ())

let test_random_streams_differ_by_pid () =
  let e = mk ~seed:77L () in
  let a = ref [] and b = ref [] in
  let body out () =
    for _ = 1 to 10 do
      out := Engine.random_int 1_000_000 :: !out
    done
  in
  let _ = Engine.spawn e ~node:0 ~name:"a" (body a) in
  let _ = Engine.spawn e ~node:1 ~name:"b" (body b) in
  ignore (Engine.run e);
  Alcotest.(check bool) "distinct streams" true (!a <> !b)

let test_events_counted () =
  let e = mk () in
  let _ = Engine.spawn e ~node:0 ~name:"p" (fun () -> Engine.delay 1.0) in
  ignore (Engine.run e);
  Alcotest.(check bool) "counted" true (Engine.events_executed e >= 2)

let test_spawn_after_run () =
  let e = mk () in
  let _ = Engine.spawn e ~node:0 ~name:"first" (fun () -> Engine.delay 3.0) in
  ignore (Engine.run e);
  let second_started = ref (-1.0) in
  let _ =
    Engine.spawn e ~node:0 ~name:"second" (fun () -> second_started := Engine.clock ())
  in
  Alcotest.(check bool) "completed" true (Engine.run e = Engine.Completed);
  Alcotest.(check (float 1e-9)) "starts at current time" 3.0 !second_started

let prop_determinism =
  (* A small random process soup produces the identical event count and final
     clock for the same seed. *)
  QCheck.Test.make ~name:"engine runs are reproducible" ~count:30
    QCheck.(pair int64 (int_range 1 8))
    (fun (seed, nprocs) ->
      let run () =
        let e = Engine.create ~nodes:4 ~seed () in
        for i = 0 to nprocs - 1 do
          ignore
            (Engine.spawn e ~node:(i mod 4) ~name:(string_of_int i) (fun () ->
                 for _ = 1 to 20 do
                   match Engine.random_int 3 with
                   | 0 -> Engine.delay (Engine.random_float 5.0)
                   | 1 -> Engine.charge ~home:(Engine.random_int 4)
                   | _ -> Engine.delay 0.0
                 done))
        done;
        ignore (Engine.run e);
        (Engine.now e, Engine.events_executed e)
      in
      run () = run ())

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "empty run" `Quick test_empty_run;
        Alcotest.test_case "delay advances time" `Quick test_single_process_delay;
        Alcotest.test_case "negative delay clamped" `Quick test_negative_delay_clamped;
        Alcotest.test_case "interleaving order" `Quick test_interleaving_order;
        Alcotest.test_case "FIFO at equal times" `Quick test_fifo_at_same_time;
        Alcotest.test_case "self identities" `Quick test_self_identities;
        Alcotest.test_case "spawn node range" `Quick test_spawn_bad_node;
        Alcotest.test_case "context outside process" `Quick test_context_outside_process;
        Alcotest.test_case "process failure" `Quick test_process_failure_propagates;
        Alcotest.test_case "time limit" `Quick test_time_limit;
        Alcotest.test_case "resume after limit" `Quick test_resume_after_limit;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
        Alcotest.test_case "double wake rejected" `Quick test_double_wake_rejected;
        Alcotest.test_case "charge costs" `Quick test_charge_costs;
        Alcotest.test_case "charge with extra delay" `Quick test_charge_with_extra_delay;
        Alcotest.test_case "charge_n" `Quick test_charge_n;
        Alcotest.test_case "random reproducible" `Quick test_random_reproducible;
        Alcotest.test_case "random per-pid streams" `Quick test_random_streams_differ_by_pid;
        Alcotest.test_case "events counted" `Quick test_events_counted;
        Alcotest.test_case "spawn after run" `Quick test_spawn_after_run;
        QCheck_alcotest.to_alcotest prop_determinism;
      ] );
  ]
