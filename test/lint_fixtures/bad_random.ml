(* R4 known-bad: ambient randomness makes runs irreproducible. *)
let () = Random.self_init ()

let pick n = Random.int n

let jitter () = Random.State.make_self_init ()
