(* R3 known-bad: blocking while holding a lock. *)
let m1 = Mutex.create ()

let m2 = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let slow_nested () =
  with_lock m1 (fun () ->
      Unix.sleepf 0.1;
      with_lock m2 (fun () -> ()))
