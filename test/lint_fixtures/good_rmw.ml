(* R2 known-good: a real atomic RMW, plus a documented suppression for a
   genuinely single-writer window. *)
let total = Atomic.make 0

let bump d = ignore (Atomic.fetch_and_add total d)

let scale k =
  (* lint: allow non-atomic-rmw -- init phase, single writer by construction *)
  Atomic.set total (Atomic.get total * k)

(* Distinct atomics on the two sides is not an RMW at all. *)
let mirror = Atomic.make 0

let publish () = Atomic.set mirror (Atomic.get total)
