(* R2 known-good: a real atomic RMW, plus a documented suppression for a
   genuinely single-writer window. *)
let total = Atomic.make 0

let bump d = ignore (Atomic.fetch_and_add total d)

let scale k =
  (* lint: allow non-atomic-rmw -- init phase, single writer by construction *)
  Atomic.set total (Atomic.get total * k)

(* Distinct atomics on the two sides is not an RMW at all. *)
let mirror = Atomic.make 0

let publish () = Atomic.set mirror (Atomic.get total)

(* Ditto through a let-binding: [x] is tainted by [total], not [mirror]. *)
let publish_split () =
  let x = Atomic.get total in
  Atomic.set mirror (x + 1)

(* Shadowing scrubs taint: the inner [x] no longer carries [total]. *)
let shadowed d =
  let x = Atomic.get total in
  ignore x;
  let x = d in
  Atomic.set total x

(* The CAS-retry idiom: get + compare_and_set in a loop is the sanctioned
   read-modify-write — no plain store involved, nothing to flag. *)
let rec bump_cas d =
  let cur = Atomic.get total in
  if not (Atomic.compare_and_set total cur (cur + d)) then bump_cas d

(* A compare_and_set on [total] in this item sanctions the fallback blind
   store: the item demonstrably drives this atomic through the CAS
   discipline, so the constant reset is a deliberate publish, not an
   overlooked check-then-act window. *)
let drain_or_clear () =
  let n = Atomic.get total in
  if Atomic.compare_and_set total n 0 then n
  else begin
    Atomic.set total 0;
    n
  end

(* A get inside a spawned closure does not order against a set in the
   enclosing body: the two run at unrelated times, and the store is the
   signal the closure polls for. *)
let stop_flag = Atomic.make false

let signal_watcher () =
  let d = Domain.spawn (fun () -> while not (Atomic.get stop_flag) do Domain.cpu_relax () done) in
  Atomic.set stop_flag true;
  Domain.join d
