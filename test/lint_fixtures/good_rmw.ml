(* R2 known-good: a real atomic RMW, plus a documented suppression for a
   genuinely single-writer window. *)
let total = Atomic.make 0

let bump d = ignore (Atomic.fetch_and_add total d)

let scale k =
  (* lint: allow non-atomic-rmw -- init phase, single writer by construction *)
  Atomic.set total (Atomic.get total * k)

(* Distinct atomics on the two sides is not an RMW at all. *)
let mirror = Atomic.make 0

let publish () = Atomic.set mirror (Atomic.get total)

(* Ditto through a let-binding: [x] is tainted by [total], not [mirror]. *)
let publish_split () =
  let x = Atomic.get total in
  Atomic.set mirror (x + 1)

(* Shadowing scrubs taint: the inner [x] no longer carries [total]. *)
let shadowed d =
  let x = Atomic.get total in
  ignore x;
  let x = d in
  Atomic.set total x
