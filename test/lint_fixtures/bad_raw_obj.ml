(* R6 known-bad: raw Obj casts outside the sanctioned modules. *)

(* The classic type-system escape hatch. *)
let coerce (x : int) : bool = Obj.magic x

(* repr/obj round-trips are just as unsafe outside a certified container:
   nothing here proves the tag and layout assumptions hold. *)
let smuggle (x : string) = Obj.repr x

let unsmuggle (r : Obj.t) : string = Obj.obj r

(* Qualified access is the same call. *)
let coerce_std (x : int) : bool = Stdlib.Obj.magic x
