(* R4 known-good: every draw flows through an explicitly seeded stream. *)
let pick rng n = Cpool_util.Rng.int rng n

let coin rng = Cpool_util.Rng.bool rng

let replayable seed = Random.State.make [| seed |]
