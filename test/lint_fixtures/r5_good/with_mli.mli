val answer : int
