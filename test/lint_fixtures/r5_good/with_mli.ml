let answer = 42
