(* R1 known-bad: raw lock/unlock leaks the mutex if the body raises. *)
let m = Mutex.create ()

let counter = ref 0

let bump () =
  Mutex.lock m;
  incr counter;
  Mutex.unlock m
