(* R6 known-good: benign Obj uses, and a documented suppression where a
   cast is genuinely required. *)

(* Inspection-only Obj functions are not casts and stay legal. *)
let is_boxed (x : 'a) =
  (* lint: allow raw-obj -- repr feeds is_int only; never reinterpreted *)
  not (Obj.is_int (Obj.repr x))

let tag_of (x : 'a) =
  (* lint: allow raw-obj -- tag inspection, no reinterpretation *)
  Obj.tag (Obj.repr x)

(* No Obj at all: ordinary polymorphism needs no casts. *)
let id (x : 'a) : 'a = x
