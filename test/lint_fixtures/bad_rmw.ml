(* R2 known-bad: a concurrent increment between the get and the set is
   silently lost. *)
let total = Atomic.make 0

let bump d = Atomic.set total (Atomic.get total + d)

(* Splitting the get from the set behind a let-binding is the same lost
   update; the taint tracking must see through the intermediate name. *)
let bump_split d =
  let seen = Atomic.get total in
  let next = seen + d in
  Atomic.set total next
