(* R2 known-bad: a concurrent increment between the get and the set is
   silently lost. *)
let total = Atomic.make 0

let bump d = Atomic.set total (Atomic.get total + d)

(* Splitting the get from the set behind a let-binding is the same lost
   update; the taint tracking must see through the intermediate name. *)
let bump_split d =
  let seen = Atomic.get total in
  let next = seen + d in
  Atomic.set total next

(* Order-aware R2: a check-then-act reset. The read and the constant store
   are separate steps, so a concurrent bump between them is wiped out even
   though the stored value derives from nothing. *)
let drain_if_positive () =
  let n = Atomic.get total in
  if n > 0 then Atomic.set total 0;
  n
