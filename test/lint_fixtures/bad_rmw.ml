(* R2 known-bad: a concurrent increment between the get and the set is
   silently lost. *)
let total = Atomic.make 0

let bump d = Atomic.set total (Atomic.get total + d)
