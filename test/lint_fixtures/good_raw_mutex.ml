(* R1 known-good: the only raw lock/unlock lives in the with_* helper. *)
let m = Mutex.create ()

let counter = ref 0

let with_lock f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let bump () = with_lock (fun () -> incr counter)
