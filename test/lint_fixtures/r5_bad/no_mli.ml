(* R5 known-bad: no sibling .mli. *)
let answer = 42
