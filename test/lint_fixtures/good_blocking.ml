(* R3 known-good: the critical section only touches state; the sleep and
   the second lock happen outside it. *)
let m1 = Mutex.create ()

let m2 = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let staged () =
  let a = with_lock m1 (fun () -> 1 + 2) in
  Unix.sleepf 0.1;
  let b = with_lock m2 (fun () -> a + 1) in
  b
