(* Tests for the three search algorithms, exercised directly on segment
   arrays inside the simulator. *)

open Cpool

let mk_segments ?(profile = Segment.Counting) p =
  Array.init p (fun i -> Segment.make ~home:i ~id:i profile)

(* Build segments + termination, prefill [filled] with [per] elements each,
   and run [body segments termination] in process 0. By default a phantom
   second participant is registered so the livelock detector (which fires
   as soon as every participant is searching) stays quiet and the pure
   search walk is observable; abort tests pass [~phantom:false]. *)
let scenario ?(p = 4) ?(filled = []) ?(per = 4) ?(seed = 1L) ?(phantom = true) body =
  Sim_harness.in_proc ~nodes:(max p 1) ~seed (fun () ->
      let segments = mk_segments p in
      let termination = Termination.create ~home:0 in
      List.iter
        (fun j ->
          for k = 1 to per do
            Segment.prefill_one segments.(j) ((100 * j) + k)
          done)
        filled;
      Termination.join termination;
      if phantom then Termination.join termination;
      let r = body segments termination in
      Termination.leave termination;
      if phantom then Termination.leave termination;
      r)

let check_found ?expect_stolen ?expect_examined name outcome =
  match outcome with
  | Steal.Found { stats; _ } ->
    Option.iter
      (fun n -> Alcotest.(check int) (name ^ ": elements stolen") n stats.Steal.elements_stolen)
      expect_stolen;
    Option.iter
      (fun n ->
        Alcotest.(check int) (name ^ ": segments examined") n stats.Steal.segments_examined)
      expect_examined
  | Steal.Aborted _ -> Alcotest.fail (name ^ ": unexpected abort")

(* --- Linear --- *)

let test_linear_finds_next () =
  scenario ~p:4 ~filled:[ 2 ] ~per:4 (fun segments termination ->
      let s = Search_linear.create segments termination in
      (* Process 0 searches: ring 0 -> 1 -> 2; 3 probes; steals ceil(4/2). *)
      check_found ~expect_stolen:2 ~expect_examined:3 "linear" (Search_linear.search s ~me:0))

let test_linear_remembers_last_found () =
  scenario ~p:4 ~filled:[ 2 ] ~per:8 (fun segments termination ->
      let s = Search_linear.create segments termination in
      check_found ~expect_examined:3 "first" (Search_linear.search s ~me:0);
      (* Second search starts at segment 2, which still has elements. *)
      check_found ~expect_examined:1 "second" (Search_linear.search s ~me:0))

let test_linear_wraps_ring () =
  scenario ~p:4 ~filled:[ 0 ] ~per:4 (fun segments termination ->
      let s = Search_linear.create segments termination in
      (* Process 3 searches: ring 3 -> 0. (Own start is its leaf 3.) *)
      check_found ~expect_examined:2 "wrap" (Search_linear.search s ~me:3))

let test_linear_own_segment_first () =
  scenario ~p:4 ~filled:[ 0 ] ~per:4 (fun segments termination ->
      let s = Search_linear.create segments termination in
      (* Elements in the searcher's own segment are found immediately —
         the first search starts at MyLeaf. *)
      check_found ~expect_examined:1 "own" (Search_linear.search s ~me:0))

let test_linear_aborts_alone () =
  scenario ~p:4 ~filled:[] ~phantom:false (fun segments termination ->
      let s = Search_linear.create segments termination in
      match Search_linear.search s ~me:0 with
      | Steal.Aborted stats ->
        Alcotest.(check int) "stole nothing" 0 stats.Steal.elements_stolen;
        Alcotest.(check bool) "examined >= 1" true (stats.Steal.segments_examined >= 1)
      | Steal.Found _ -> Alcotest.fail "expected abort")

(* --- Random --- *)

let test_random_finds () =
  scenario ~p:8 ~filled:[ 5 ] ~per:6 (fun segments termination ->
      let s = Search_random.create segments termination in
      check_found ~expect_stolen:3 "random" (Search_random.search s ~me:0))

let test_random_aborts_alone () =
  scenario ~p:8 ~filled:[] ~phantom:false (fun segments termination ->
      let s = Search_random.create segments termination in
      match Search_random.search s ~me:0 with
      | Steal.Aborted _ -> ()
      | Steal.Found _ -> Alcotest.fail "expected abort")

let test_random_all_segments_reachable () =
  (* Over many single-element searches, every victim position gets hit. *)
  scenario ~p:4 ~filled:[] (fun segments termination ->
      let s = Search_random.create segments termination in
      let hit = Array.make 4 false in
      for round = 0 to 63 do
        let victim = round mod 4 in
        Segment.prefill_one segments.(victim) round;
        match Search_random.search s ~me:0 with
        | Steal.Found _ -> hit.(victim) <- true
        | Steal.Aborted _ -> Alcotest.fail "unexpected abort"
      done;
      Alcotest.(check bool) "all positions stolen from" true (Array.for_all Fun.id hit))

(* --- Tree --- *)

let test_tree_finds_and_skips_marked_subtrees () =
  scenario ~p:4 ~filled:[ 3 ] ~per:4 (fun segments termination ->
      let s = Search_tree.create segments termination in
      (* Deterministic walk for process 0 with the element at leaf 3:
         leaf 0 (empty) -> mark, leaf 1 (empty) -> mark subtree -> case 1 at
         root jumps to matching descendant 3 — leaf 2 is never examined. *)
      check_found ~expect_stolen:2 ~expect_examined:3 "tree" (Search_tree.search s ~me:0))

let test_tree_matching_descendant_symmetry () =
  scenario ~p:8 ~filled:[ 4 ] ~per:2 (fun segments termination ->
      let s = Search_tree.create segments termination in
      (* Matching-descendant traversal from leaf 0 visits leaves in the
         reflected order 0, 1, 3, 2, 6, 7, 5, 4: after exhausting {0,1} the
         jump is to 1 xor 2 = 3, after {0..3} to 2 xor 4 = 6, and so on —
         the element at leaf 4 is examined last, on the 8th probe. *)
      match Search_tree.search s ~me:0 with
      | Steal.Found { stats; _ } ->
        Alcotest.(check int) "examined 0,1,3,2,6,7,5,4" 8 stats.Steal.segments_examined
      | Steal.Aborted _ -> Alcotest.fail "unexpected abort")

let test_tree_padded_to_power_of_two () =
  scenario ~p:3 ~filled:[ 2 ] ~per:2 (fun segments termination ->
      let s = Search_tree.create segments termination in
      Alcotest.(check int) "padded leaves" 4 (Search_tree.leaf_count s);
      check_found ~expect_stolen:1 "padded search" (Search_tree.search s ~me:0))

let test_tree_single_leaf () =
  scenario ~p:1 ~filled:[ 0 ] ~per:3 (fun segments termination ->
      let s = Search_tree.create segments termination in
      Alcotest.(check int) "one leaf" 1 (Search_tree.leaf_count s);
      check_found ~expect_stolen:2 "sole leaf" (Search_tree.search s ~me:0))

let test_tree_round_advances_on_empty_tree () =
  scenario ~p:4 ~filled:[] ~phantom:false (fun segments termination ->
      let s = Search_tree.create segments termination in
      Alcotest.(check int) "initial round" 1 (Search_tree.my_round_free s 0);
      (match Search_tree.search s ~me:0 with
      | Steal.Aborted _ -> ()
      | Steal.Found _ -> Alcotest.fail "expected abort");
      (* The abort happens during the first pass, before a full round
         completes, or after marking the root — either way the process's
         round never goes backwards. *)
      Alcotest.(check bool) "round monotonic" true (Search_tree.my_round_free s 0 >= 1))

let test_tree_leaf_counters_marked () =
  scenario ~p:4 ~filled:[ 3 ] ~per:2 (fun segments termination ->
      let s = Search_tree.create segments termination in
      (match Search_tree.search s ~me:0 with
      | Steal.Found _ -> ()
      | Steal.Aborted _ -> Alcotest.fail "unexpected abort");
      (* Leaves 0 and 1 were found empty and marked with round 1. *)
      Alcotest.(check int) "leaf 0 marked" 1 (Search_tree.round_of_leaf_free s 0);
      Alcotest.(check int) "leaf 1 marked" 1 (Search_tree.round_of_leaf_free s 1);
      Alcotest.(check int) "leaf 3 not marked" 0 (Search_tree.round_of_leaf_free s 3))

let test_tree_aborts_alone () =
  scenario ~p:4 ~filled:[] ~phantom:false (fun segments termination ->
      let s = Search_tree.create segments termination in
      match Search_tree.search s ~me:2 with
      | Steal.Aborted _ -> ()
      | Steal.Found _ -> Alcotest.fail "expected abort")

let test_tree_second_search_starts_at_last_leaf () =
  scenario ~p:4 ~filled:[ 3 ] ~per:8 (fun segments termination ->
      let s = Search_tree.create segments termination in
      check_found ~expect_examined:3 "first" (Search_tree.search s ~me:0);
      (* LastLeaf is now 3, which still holds elements: found immediately. *)
      check_found ~expect_examined:1 "second" (Search_tree.search s ~me:0))

(* --- Cross-strategy properties --- *)

let prop_search_finds_when_nonempty kind_name create search =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s search always finds an element if one exists" kind_name)
    ~count:60
    QCheck.(pair (int_range 1 16) (pair (int_range 0 15) (int_range 1 20)))
    (fun (p, (victim_raw, per)) ->
      let victim = victim_raw mod p in
      scenario ~p ~filled:[ victim ] ~per (fun segments termination ->
          let s = create segments termination in
          match search s ~me:0 with
          | Steal.Found { stats; _ } -> stats.Steal.elements_stolen = (per + 1) / 2
          | Steal.Aborted _ -> false))

let prop_linear = prop_search_finds_when_nonempty "linear" Search_linear.create Search_linear.search
let prop_random = prop_search_finds_when_nonempty "random" Search_random.create Search_random.search
let prop_tree = prop_search_finds_when_nonempty "tree" Search_tree.create Search_tree.search

let suites =
  [
    ( "search.linear",
      [
        Alcotest.test_case "finds next non-empty" `Quick test_linear_finds_next;
        Alcotest.test_case "remembers last found" `Quick test_linear_remembers_last_found;
        Alcotest.test_case "wraps the ring" `Quick test_linear_wraps_ring;
        Alcotest.test_case "own segment first" `Quick test_linear_own_segment_first;
        Alcotest.test_case "aborts when alone" `Quick test_linear_aborts_alone;
        QCheck_alcotest.to_alcotest prop_linear;
      ] );
    ( "search.random",
      [
        Alcotest.test_case "finds" `Quick test_random_finds;
        Alcotest.test_case "aborts when alone" `Quick test_random_aborts_alone;
        Alcotest.test_case "all segments reachable" `Quick test_random_all_segments_reachable;
        QCheck_alcotest.to_alcotest prop_random;
      ] );
    ( "search.tree",
      [
        Alcotest.test_case "skips marked subtrees" `Quick test_tree_finds_and_skips_marked_subtrees;
        Alcotest.test_case "matching descendant order" `Quick test_tree_matching_descendant_symmetry;
        Alcotest.test_case "padding to power of two" `Quick test_tree_padded_to_power_of_two;
        Alcotest.test_case "single leaf tree" `Quick test_tree_single_leaf;
        Alcotest.test_case "round monotonic on empty" `Quick test_tree_round_advances_on_empty_tree;
        Alcotest.test_case "leaf counters marked" `Quick test_tree_leaf_counters_marked;
        Alcotest.test_case "aborts when alone" `Quick test_tree_aborts_alone;
        Alcotest.test_case "second search from last leaf" `Quick
          test_tree_second_search_starts_at_last_leaf;
        QCheck_alcotest.to_alcotest prop_tree;
      ] );
  ]
