(* Shared helpers for tests that run bodies inside the simulator. *)

open Cpool_sim

let zero_cost =
  { Topology.local_cost = 0.0; remote_ratio = 1.0; remote_extra = 0.0; compute_per_op = 0.0; topo = None }

let expect_completed e =
  match Engine.run e with
  | Engine.Completed -> ()
  | Engine.Deadlocked names -> Alcotest.failf "deadlock: %s" (String.concat "," names)
  | Engine.Hit_limit -> Alcotest.fail "unexpected time limit"

(* Run [body] in a single simulated process and return its result. *)
let in_proc ?(nodes = 16) ?(seed = 1L) ?cost body =
  let e = Engine.create ?cost ~nodes ~seed () in
  let result = ref None in
  let _ = Engine.spawn e ~node:0 ~name:"main" (fun () -> result := Some (body ())) in
  expect_completed e;
  Option.get !result

(* Spawn [n] processes, process [i] on node [i mod nodes] running [body i]. *)
let run_procs ?(nodes = 16) ?(seed = 1L) ?cost n body =
  let e = Engine.create ?cost ~nodes ~seed () in
  for i = 0 to n - 1 do
    ignore (Engine.spawn e ~node:(i mod nodes) ~name:(string_of_int i) (fun () -> body i))
  done;
  expect_completed e;
  e
